// Command benchfmt converts `go test -bench` output into the repository's
// machine-readable benchmark format: a JSON document with one record per
// benchmark (name, iterations, ns/op, B/op, allocs/op), so CI can archive
// BENCH_sim.json / BENCH_shm.json and the perf trajectory has data points
// (format documented in EXPERIMENTS.md).
//
//	go test -run '^$' -bench . -benchmem . | benchfmt -o BENCH_sim.json
//
// With -o the JSON goes to the named file and the raw bench output is
// echoed to stdout, so logs keep the human view; without -o the JSON
// document itself is stdout and nothing is echoed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

// Record is one benchmark measurement. Metrics carries any custom
// b.ReportMetric columns (e.g. the stress benchmarks' walkops/s and
// the combining funnel's hitrate) keyed by their unit.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the file layout.
type Document struct {
	Benchmarks []Record `json:"benchmarks"`
}

// benchLine matches e.g.
// "BenchmarkNet-8   1000000   1234 ns/op   56 B/op   3 allocs/op"
// (the -benchmem columns are optional).
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// metricCol matches one trailing "<value> <unit>" column; custom
// ReportMetric units sort between ns/op and the -benchmem columns, so
// B/op and allocs/op are folded back into their dedicated fields here.
var metricCol = regexp.MustCompile(`([\d.eE+-]+)\s+([A-Za-z][\w/%.-]*)`)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, echo io.Writer) error {
	fs := flag.NewFlagSet("benchfmt", flag.ContinueOnError)
	out := fs.String("o", "", "write the JSON document to this file (default stdout, suppressing the echo)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var doc Document
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if *out != "" {
			fmt.Fprintln(echo, line)
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rec := Record{Name: m[1]}
		rec.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		rec.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			rec.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			rec.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		for _, col := range metricCol.FindAllStringSubmatch(line[len(m[0]):], -1) {
			v, err := strconv.ParseFloat(col[1], 64)
			if err != nil {
				continue
			}
			switch col[2] {
			case "B/op":
				rec.BytesPerOp = int64(v)
			case "allocs/op":
				rec.AllocsPerOp = int64(v)
			default:
				if rec.Metrics == nil {
					rec.Metrics = map[string]float64{}
				}
				rec.Metrics[col[2]] = v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = echo.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
