package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: countnet
BenchmarkAtomicCounter-8   	12345678	        95.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetwork/bitonic8-8         	  500000	      2410 ns/op	     128 B/op	       2 allocs/op
BenchmarkNoMem-8   	 1000000	      1234 ns/op
BenchmarkStressCombined-8 	       3	1671763894 ns/op	         0.9928 hitrate	      9513 walkops/s	      64 B/op	       1 allocs/op
PASS
ok  	countnet	3.210s
`

func TestParse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var echo bytes.Buffer
	if err := run([]string{"-o", path}, strings.NewReader(sample), &echo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(echo.String(), "BenchmarkAtomicCounter-8") {
		t.Fatal("raw bench output not echoed")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("parsed %d records, want 4", len(doc.Benchmarks))
	}
	want := Document{Benchmarks: []Record{
		{Name: "BenchmarkAtomicCounter-8", Iterations: 12345678, NsPerOp: 95.2},
		{Name: "BenchmarkNetwork/bitonic8-8", Iterations: 500000, NsPerOp: 2410, BytesPerOp: 128, AllocsPerOp: 2},
		{Name: "BenchmarkNoMem-8", Iterations: 1000000, NsPerOp: 1234},
		{Name: "BenchmarkStressCombined-8", Iterations: 3, NsPerOp: 1671763894,
			BytesPerOp: 64, AllocsPerOp: 1,
			Metrics: map[string]float64{"hitrate": 0.9928, "walkops/s": 9513}},
	}}
	for i, rec := range doc.Benchmarks {
		w := want.Benchmarks[i]
		if rec.Name != w.Name || rec.Iterations != w.Iterations || rec.NsPerOp != w.NsPerOp ||
			rec.BytesPerOp != w.BytesPerOp || rec.AllocsPerOp != w.AllocsPerOp ||
			len(rec.Metrics) != len(w.Metrics) {
			t.Errorf("record %d = %+v, want %+v", i, rec, w)
			continue
		}
		for unit, v := range w.Metrics {
			if rec.Metrics[unit] != v {
				t.Errorf("record %d metric %s = %v, want %v", i, unit, rec.Metrics[unit], v)
			}
		}
	}
}

func TestNoBenchmarks(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("expected error on input without benchmark lines")
	}
}
