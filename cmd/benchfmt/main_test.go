package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: countnet
BenchmarkAtomicCounter-8   	12345678	        95.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetwork/bitonic8-8         	  500000	      2410 ns/op	     128 B/op	       2 allocs/op
BenchmarkNoMem-8   	 1000000	      1234 ns/op
PASS
ok  	countnet	3.210s
`

func TestParse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var echo bytes.Buffer
	if err := run([]string{"-o", path}, strings.NewReader(sample), &echo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(echo.String(), "BenchmarkAtomicCounter-8") {
		t.Fatal("raw bench output not echoed")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d records, want 3", len(doc.Benchmarks))
	}
	want := Document{Benchmarks: []Record{
		{Name: "BenchmarkAtomicCounter-8", Iterations: 12345678, NsPerOp: 95.2},
		{Name: "BenchmarkNetwork/bitonic8-8", Iterations: 500000, NsPerOp: 2410, BytesPerOp: 128, AllocsPerOp: 2},
		{Name: "BenchmarkNoMem-8", Iterations: 1000000, NsPerOp: 1234},
	}}
	for i, rec := range doc.Benchmarks {
		if rec != want.Benchmarks[i] {
			t.Errorf("record %d = %+v, want %+v", i, rec, want.Benchmarks[i])
		}
	}
}

func TestNoBenchmarks(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("expected error on input without benchmark lines")
	}
}
