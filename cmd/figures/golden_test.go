package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// TestFigure7Golden pins the rendered Figure 7 table for a fixed seed and a
// small grid. The simulator is deterministic, so any diff means either the
// simulation or the report rendering changed; regenerate intentionally with
// `go test ./cmd/figures -run Figure7Golden -update`.
func TestFigure7Golden(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "7", "-ops", "60", "-width", "8", "-seed", "7"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "figure7.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("figure 7 output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\nregenerate with -update if the change is intentional", got, want)
	}
}
