package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFigure5Small(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "5", "-ops", "60", "-width", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 5", "bitonic", "dtree", "n=256", "F=25%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigure7Small(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "7", "-ops", "60", "-width", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Average c2/c1") {
		t.Errorf("output missing table header:\n%s", sb.String())
	}
}

func TestRunControlsSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-controls", "-ops", "60", "-width", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "violations=") {
		t.Errorf("output missing violations:\n%s", sb.String())
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "out.csv")
	var sb strings.Builder
	if err := run([]string{"-fig", "6", "-ops", "60", "-width", "8", "-csv", csv}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "network,frac,wait,procs,") {
		t.Errorf("csv header missing:\n%s", s)
	}
	if lines := strings.Count(s, "\n"); lines != 1+2*4*5 {
		t.Errorf("csv has %d lines, want %d", lines, 1+2*4*5)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "9"}, &sb); err == nil {
		t.Error("fig 9 accepted")
	}
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Error("bogus flag accepted")
	}
}
