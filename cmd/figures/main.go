// Command figures regenerates the Section 5 evaluation of "Counting
// Networks are Practically Linearizable" on the simulated multiprocessor:
//
//	figures -fig 5        non-linearizability ratios, F=25% (Figure 5)
//	figures -fig 6        non-linearizability ratios, F=50% (Figure 6)
//	figures -fig 7        average c2/c1 table (Figure 7)
//	figures -controls     the F=0%/100%, W=0 and random-wait control runs
//	figures -all          everything
//
// Use -ops / -seed / -width to vary the workload from the paper's defaults.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"countnet/internal/report"
	"countnet/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		fig      = fs.Int("fig", 0, "figure to regenerate: 5, 6, or 7")
		controls = fs.Bool("controls", false, "run the zero-violation control experiments")
		all      = fs.Bool("all", false, "regenerate every figure and the controls")
		ops      = fs.Int("ops", workload.PaperOps, "operations per run")
		width    = fs.Int("width", workload.PaperWidth, "network width")
		seed     = fs.Int64("seed", 1, "simulation seed")
		csvPath  = fs.String("csv", "", "also write the measured grid as CSV to this file")
		seeds    = fs.Int("seeds", 1, "independent seeds to average per cell")
		extended = fs.Bool("extended", false, "include the periodic network (extension; the paper evaluates bitonic and dtree)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *all {
		for _, f := range []int{5, 6, 7} {
			if err := figure(w, f, *ops, *width, *seed, *seeds, *csvPath, *extended); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return controlRuns(w, *ops, *width, *seed)
	}
	if *controls {
		return controlRuns(w, *ops, *width, *seed)
	}
	switch *fig {
	case 5, 6, 7:
		return figure(w, *fig, *ops, *width, *seed, *seeds, *csvPath, *extended)
	default:
		return fmt.Errorf("choose -fig 5|6|7, -controls, or -all")
	}
}

// figure measures the grid for one figure and renders it, optionally
// averaging several seeds per cell and appending the cells to a CSV file.
func figure(w io.Writer, fig, ops, width int, seed int64, seeds int, csvPath string, extended bool) error {
	fracs := []float64{0.25}
	switch fig {
	case 6:
		fracs = []float64{0.50}
	case 7:
		fracs = workload.PaperFracs
	}
	var tbl report.Table
	for _, frac := range fracs {
		specs := workload.FigureGrid(frac, seed)
		if extended {
			for _, wait := range workload.PaperWaits {
				for _, n := range workload.PaperProcs {
					specs = append(specs, workload.Spec{
						Net: workload.Periodic, Width: workload.PaperWidth,
						Procs: n, Ops: workload.PaperOps, Frac: frac, Wait: wait, Seed: seed,
					})
				}
			}
		}
		for _, spec := range specs {
			spec.Ops = ops
			spec.Width = width
			agg, err := spec.RunSeeds(seeds)
			if err != nil {
				return fmt.Errorf("%s: %w", spec, err)
			}
			tbl.Add(report.Cell{
				Net:      string(spec.Net),
				Procs:    spec.Procs,
				Wait:     spec.Wait,
				Frac:     spec.Frac,
				Ratio:    agg.RatioMean,
				AvgRatio: agg.AvgC2C1Mean,
				Tog:      agg.TogMean,
			})
		}
	}
	if csvPath != "" {
		f, err := os.OpenFile(csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		tbl.WriteCSV(f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	nets := []string{string(workload.Bitonic), string(workload.DTree)}
	if extended {
		nets = append(nets, string(workload.Periodic))
	}
	switch fig {
	case 5, 6:
		fmt.Fprintf(w, "== Figure %d ==\n", fig)
		tbl.WriteFigure(w, nets, workload.PaperProcs, workload.PaperWaits, fracs[0])
	case 7:
		fmt.Fprintln(w, "== Figure 7 ==")
		tbl.WriteAvgRatio(w, nets, workload.PaperProcs, workload.PaperWaits, fracs)
	}
	return nil
}

// controlRuns executes the paper's zero-violation controls.
func controlRuns(w io.Writer, ops, width int, seed int64) error {
	fmt.Fprintln(w, "== Controls (paper: no non-linearizable operations detected) ==")
	for _, spec := range workload.ControlGrid(seed) {
		spec.Ops = ops
		spec.Width = width
		res, err := spec.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", spec, err)
		}
		fmt.Fprintf(w, "%-40s violations=%d avg c2/c1=%.2f\n", spec, res.Report.NonLinearizable, res.AvgRatio)
	}
	return nil
}
