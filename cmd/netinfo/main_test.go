package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"countnet/internal/topo"
)

func TestRunLinearizableBound(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-net", "bitonic", "-width", "8", "-c1", "100", "-c2", "200", "-verify"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "linearizable in every execution") {
		t.Errorf("missing Corollary 3.9 verdict:\n%s", out)
	}
	if !strings.Contains(out, "counting-property check: ok") {
		t.Errorf("missing verification line:\n%s", out)
	}
}

func TestRunRender(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-net", "dtree", "-width", "4", "-render", "-verify"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "layer 1:") || !strings.Contains(out, "counters:") {
		t.Errorf("render output missing:\n%s", out)
	}
	if !strings.Contains(out, "exhaustive") {
		t.Errorf("small tree should certify exhaustively:\n%s", out)
	}
}

func TestRunAboveBoundWithExports(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "net.dot")
	js := filepath.Join(dir, "net.json")
	var sb strings.Builder
	args := []string{"-net", "dtree", "-width", "8", "-c1", "100", "-c2", "300", "-pad", "-dot", dot, "-json", js}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"NOT guaranteed linearizable", "padding fix", "padded:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	dotData, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dotData), "digraph") {
		t.Error("dot file malformed")
	}
	jsData, err := os.ReadFile(js)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topo.Decode(jsData)
	if err != nil {
		t.Fatalf("exported JSON does not decode: %v", err)
	}
	if g.OutWidth() != 8 {
		t.Errorf("decoded width %d", g.OutWidth())
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-net", "bogus"}, &sb); err == nil {
		t.Error("bogus network accepted")
	}
	if err := run([]string{"-c1", "0"}, &sb); err == nil {
		t.Error("c1=0 accepted")
	}
}
