// Command netinfo inspects counting-network constructions: shape, depth,
// uniformity, a randomized counting-property check, the paper's timing
// bounds for a given c1/c2, and optional Graphviz output.
//
//	netinfo -net bitonic -width 32 -c1 100 -c2 250 [-dot out.dot] [-verify]
//	netinfo -net bitonic -width 8 -measure
//
// -measure runs a small instrumented workload through each engine — cycle
// simulator, shared-memory goroutines plain, behind the combining funnel,
// behind the contention-adaptive front-end (free-running, and pinned to
// its guaranteed-linearizable waiting regime), message-passing channels —
// and prints the measured Tog, W, and (Tog+W)/Tog timing ratio per engine
// (the paper's Section 5 measure, live rather than offline), plus the
// funnel's combine hit rate and the adaptive engine's regime tallies.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"countnet/internal/core"
	"countnet/internal/msgnet"
	"countnet/internal/obs"
	"countnet/internal/shm"
	"countnet/internal/shm/adaptive"
	"countnet/internal/topo"
	"countnet/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netinfo:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("netinfo", flag.ContinueOnError)
	var (
		net     = fs.String("net", "bitonic", "bitonic, periodic, or dtree")
		width   = fs.Int("width", 8, "network width (power of two)")
		c1      = fs.Int64("c1", 100, "minimum link-traversal time")
		c2      = fs.Int64("c2", 200, "maximum link-traversal time")
		dot     = fs.String("dot", "", "write Graphviz output to this file")
		jsonP   = fs.String("json", "", "write the network encoding to this JSON file")
		verify  = fs.Bool("verify", false, "certify the counting property (exhaustive for small networks, randomized otherwise)")
		render  = fs.Bool("render", false, "print a layer-by-layer ASCII rendering")
		pad     = fs.Bool("pad", false, "also show the Corollary 3.12 padded network")
		measure = fs.Bool("measure", false, "run an instrumented workload and print the measured (Tog+W)/Tog per engine")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := workload.NetKind(*net).Build(*width)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s[%d]: %s\n", *net, *width, topo.Summary(g))

	tm := core.Timing{C1: *c1, C2: *c2}
	if err := tm.Validate(); err != nil {
		return err
	}
	h := g.Depth()
	fmt.Fprintf(w, "timing c1=%d c2=%d: ratio %.2f\n", tm.C1, tm.C2, tm.Ratio())
	if tm.Linearizable() {
		fmt.Fprintf(w, "  linearizable in every execution (c2 <= 2*c1, Corollary 3.9)\n")
	} else {
		fmt.Fprintf(w, "  NOT guaranteed linearizable (c2 > 2*c1; Theorems 4.1/4.3 give violating executions)\n")
		fmt.Fprintf(w, "  ordered anyway if separated by > %d (start-start, Lemma 3.7) or > %d (finish-start, Theorem 3.6)\n",
			tm.StartStartGap(h), tm.FinishStartGap(h))
		k := tm.K()
		fmt.Fprintf(w, "  padding fix (Corollary 3.12): k=%d -> %d pass-through balancers per input, depth %d -> %d\n",
			k, core.PaddingLength(h, k), h, core.PaddedDepth(h, k))
	}

	if *render {
		fmt.Fprint(w, topo.Render(g))
	}
	if *verify {
		how, err := topo.Certify(g, 4_000_000, 25, 1)
		if err != nil {
			return fmt.Errorf("counting-property check FAILED: %w", err)
		}
		fmt.Fprintf(w, "counting-property check: ok (%s)\n", how)
	}
	if *pad && !tm.Linearizable() {
		padded, err := topo.Pad(g, core.PaddingLength(h, tm.K()))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "padded: %s\n", topo.Summary(padded))
	}
	if *dot != "" {
		if err := os.WriteFile(*dot, []byte(topo.Dot(g, *net)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *dot)
	}
	if *jsonP != "" {
		data, err := topo.Encode(g)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonP, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *jsonP)
	}
	if *measure {
		return measureEngines(w, workload.NetKind(*net), *width)
	}
	return nil
}

// measureEngines runs the same modest workload (8 processors, 2000
// operations, F=25% delayed) through the engines with live metrics and
// prints one measured-ratio row per engine. The sim row injects W=1000
// cycles, the shm rows (plain and combining-funnel) W=20µs; msgnet has no
// delay-injection hook, so its W is 0 and the ratio degenerates to 1 —
// its Tog column is still the real measured hop wait.
func measureEngines(w io.Writer, net workload.NetKind, width int) error {
	const procs, ops, frac = 8, 2000, 0.25
	fmt.Fprintf(w, "measured timing ratio, Section 5's (Tog+W)/Tog (%d procs, %d ops, F=%.0f%%)\n",
		procs, ops, 100.0*frac)
	fmt.Fprintf(w, "%-8s %-7s %14s %14s %14s\n", "engine", "unit", "Tog", "W", "(Tog+W)/Tog")

	simRes, err := workload.Spec{Net: net, Width: width, Procs: procs, Ops: ops,
		Frac: frac, Wait: 1000, Seed: 1}.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-7s %14.1f %14.0f %14.3f\n", "sim", "cycles", simRes.Tog, 1000.0, simRes.AvgRatio)

	g, err := net.Build(width)
	if err != nil {
		return err
	}
	n, err := shm.Compile(g, shm.Options{Diffract: net == workload.DTree})
	if err != nil {
		return err
	}
	shmCfg := shm.StressConfig{Net: n, Workers: procs, Ops: ops, DelayedFrac: frac,
		Delay: 20 * time.Microsecond, Seed: 1, Metrics: obs.NewRegistry()}
	shmRes, err := shm.Stress(shmCfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-7s %14.1f %14.0f %14.3f\n", "shm", "ns", shmRes.Tog, shmCfg.EffWait(), shmRes.AvgRatio)

	combCfg := shmCfg
	combCfg.Net, err = shm.Compile(g, shm.Options{Diffract: net == workload.DTree})
	if err != nil {
		return err
	}
	combCfg.Combine = true
	combCfg.Metrics = obs.NewRegistry()
	combRes, err := shm.Stress(combCfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-7s %14.1f %14.0f %14.3f   combine hit rate %.2f\n",
		"shm+cmb", "ns", combRes.Tog, combCfg.EffWait(), combRes.AvgRatio, combRes.Combine.HitRate())

	adNet, err := shm.Compile(g, shm.Options{Diffract: net == workload.DTree})
	if err != nil {
		return err
	}
	adCfg := shmCfg
	adCfg.Net = adNet
	adCfg.Metrics = obs.NewRegistry()
	front, err := adaptive.New(adNet, adaptive.Options{
		EffWait: adCfg.EffWait(), Metrics: adCfg.Metrics,
	})
	if err != nil {
		return err
	}
	adCfg.Front = front
	if _, err := shm.Stress(adCfg); err != nil {
		return err
	}
	ast := front.Stats()
	// The front-end's own estimator is the adaptive row's ratio: it is
	// what drives the regime (and Corollary 3.12 padding) decisions, and
	// unlike the network-side gauge it also samples direct-mode tokens.
	adTog := 0.0
	if r := front.Ratio(); r != nil {
		adTog = r.Tog()
	}
	fmt.Fprintf(w, "%-8s %-7s %14.1f %14.0f %14.3f   modes d/c/n/l %d/%d/%d/%d, %d switches\n",
		"adaptive", "ns", adTog, adCfg.EffWait(), ast.Ratio,
		ast.PerMode[adaptive.ModeDirect], ast.PerMode[adaptive.ModeCombine],
		ast.PerMode[adaptive.ModeNetwork], ast.PerMode[adaptive.ModeLinear], ast.Switches)

	// The adaptive+wait row pins the front-end to the guaranteed-
	// linearizable waiting regime (ModeLinear) via a LinearBelow band no
	// occupancy can exceed — the measured cost of holding every response
	// until all smaller values have been returned.
	linNet, err := shm.Compile(g, shm.Options{Diffract: net == workload.DTree})
	if err != nil {
		return err
	}
	linCfg := shmCfg
	linCfg.Net = linNet
	linCfg.Metrics = obs.NewRegistry()
	linFront, err := adaptive.New(linNet, adaptive.Options{
		LinearBelow: 1 << 20,
		EffWait:     linCfg.EffWait(), Metrics: linCfg.Metrics,
	})
	if err != nil {
		return err
	}
	linCfg.Front = linFront
	if _, err := shm.Stress(linCfg); err != nil {
		return err
	}
	lst := linFront.Stats()
	linTog := 0.0
	if r := linFront.Ratio(); r != nil {
		linTog = r.Tog()
	}
	fmt.Fprintf(w, "%-8s %-7s %14.1f %14.0f %14.3f   modes d/c/n/l %d/%d/%d/%d, %d switches\n",
		"adp+wait", "ns", linTog, linCfg.EffWait(), lst.Ratio,
		lst.PerMode[adaptive.ModeDirect], lst.PerMode[adaptive.ModeCombine],
		lst.PerMode[adaptive.ModeNetwork], lst.PerMode[adaptive.ModeLinear], lst.Switches)

	reg := obs.NewRegistry()
	mn, err := msgnet.StartOpts(g, msgnet.Options{Buffer: 1, Metrics: reg})
	if err != nil {
		return err
	}
	defer mn.Close()
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < ops/procs; i++ {
				if _, err := mn.Traverse(p % g.InWidth()); err != nil {
					errs[p] = err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	var tog, val float64
	if r := mn.Ratio(); r != nil {
		tog, val = r.Tog(), r.Value()
	}
	fmt.Fprintf(w, "%-8s %-7s %14.1f %14.0f %14.3f\n", "msgnet", "ns", tog, 0.0, val)
	return nil
}
