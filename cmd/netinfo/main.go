// Command netinfo inspects counting-network constructions: shape, depth,
// uniformity, a randomized counting-property check, the paper's timing
// bounds for a given c1/c2, and optional Graphviz output.
//
//	netinfo -net bitonic -width 32 -c1 100 -c2 250 [-dot out.dot] [-verify]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"countnet/internal/core"
	"countnet/internal/topo"
	"countnet/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netinfo:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("netinfo", flag.ContinueOnError)
	var (
		net    = fs.String("net", "bitonic", "bitonic, periodic, or dtree")
		width  = fs.Int("width", 8, "network width (power of two)")
		c1     = fs.Int64("c1", 100, "minimum link-traversal time")
		c2     = fs.Int64("c2", 200, "maximum link-traversal time")
		dot    = fs.String("dot", "", "write Graphviz output to this file")
		jsonP  = fs.String("json", "", "write the network encoding to this JSON file")
		verify = fs.Bool("verify", false, "certify the counting property (exhaustive for small networks, randomized otherwise)")
		render = fs.Bool("render", false, "print a layer-by-layer ASCII rendering")
		pad    = fs.Bool("pad", false, "also show the Corollary 3.12 padded network")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := workload.NetKind(*net).Build(*width)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s[%d]: %s\n", *net, *width, topo.Summary(g))

	tm := core.Timing{C1: *c1, C2: *c2}
	if err := tm.Validate(); err != nil {
		return err
	}
	h := g.Depth()
	fmt.Fprintf(w, "timing c1=%d c2=%d: ratio %.2f\n", tm.C1, tm.C2, tm.Ratio())
	if tm.Linearizable() {
		fmt.Fprintf(w, "  linearizable in every execution (c2 <= 2*c1, Corollary 3.9)\n")
	} else {
		fmt.Fprintf(w, "  NOT guaranteed linearizable (c2 > 2*c1; Theorems 4.1/4.3 give violating executions)\n")
		fmt.Fprintf(w, "  ordered anyway if separated by > %d (start-start, Lemma 3.7) or > %d (finish-start, Theorem 3.6)\n",
			tm.StartStartGap(h), tm.FinishStartGap(h))
		k := tm.K()
		fmt.Fprintf(w, "  padding fix (Corollary 3.12): k=%d -> %d pass-through balancers per input, depth %d -> %d\n",
			k, core.PaddingLength(h, k), h, core.PaddedDepth(h, k))
	}

	if *render {
		fmt.Fprint(w, topo.Render(g))
	}
	if *verify {
		how, err := topo.Certify(g, 4_000_000, 25, 1)
		if err != nil {
			return fmt.Errorf("counting-property check FAILED: %w", err)
		}
		fmt.Fprintf(w, "counting-property check: ok (%s)\n", how)
	}
	if *pad && !tm.Linearizable() {
		padded, err := topo.Pad(g, core.PaddingLength(h, tm.K()))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "padded: %s\n", topo.Summary(padded))
	}
	if *dot != "" {
		if err := os.WriteFile(*dot, []byte(topo.Dot(g, *net)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *dot)
	}
	if *jsonP != "" {
		data, err := topo.Encode(g)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonP, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *jsonP)
	}
	return nil
}
