// Command countnetvet is the repo's multichecker: it runs stock go vet
// and the seven countnet domain analyzers over the requested packages
// and exits nonzero on any finding.
//
// Usage:
//
//	countnetvet [-novet] [-json] [packages]
//
// Packages default to ./... resolved against the enclosing module. The
// analyzers:
//
//	detvet    seed-reproducibility in //countnet:deterministic packages
//	atomicvet no plain access to fields used with sync/atomic
//	obsvet    nil-guarded observability so disabled obs costs nothing
//	lockvet   lock copies, leaked critical sections, undeclared nesting
//	hotvet    //countnet:hotpath call trees free of blocking and allocation
//	gatevet   seqlock epoch-gate protocol on marked fields
//	escvet    compiler escape/inline decisions pinned to escapes.golden
//
// The suite runs over the whole loaded program at once, so hotvet's
// interprocedural walk crosses package boundaries wherever source was
// loaded. Findings are suppressed by `//countnet:allow <analyzer> --
// <reason>` on the offending line or the line above (resolved against
// the package owning the finding); an empty reason or an unknown
// directive verb is itself a finding (analyzer name "directive") so CI
// rejects justification-free suppressions and typoed laws.
//
// escvet needs a toolchain that can replay `go build -gcflags=-m`; when
// it cannot, countnetvet logs a notice and continues without escvet,
// unless LINT_STRICT=1 makes the degradation fatal.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"

	"countnet/internal/analysis"
	"countnet/internal/analysis/atomicvet"
	"countnet/internal/analysis/detvet"
	"countnet/internal/analysis/escvet"
	"countnet/internal/analysis/gatevet"
	"countnet/internal/analysis/hotvet"
	"countnet/internal/analysis/lockvet"
	"countnet/internal/analysis/obsvet"
)

// analyzers is the countnetvet suite, in report order.
var analyzers = []*analysis.Analyzer{
	detvet.Analyzer,
	atomicvet.Analyzer,
	obsvet.Analyzer,
	lockvet.Analyzer,
	hotvet.Analyzer,
	gatevet.Analyzer,
	escvet.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("countnetvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	noVet := fs.Bool("novet", false, "skip the stock `go vet` pass")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the domain analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: countnetvet [-novet] [-json] [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	modRoot, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	vetFailed := false
	if !*noVet {
		cmd := exec.Command("go", "vet", "-C", modRoot)
		cmd.Args = append(cmd.Args, patterns...)
		cmd.Stdout = stderr // vet findings are diagnostics, not data
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			vetFailed = true
		}
	}

	diags, err := runAnalyzers(modRoot, patterns, analyzers)
	if err != nil && errors.Is(err, escvet.ErrToolchain) && os.Getenv("LINT_STRICT") != "1" {
		fmt.Fprintf(stderr, "countnetvet: notice: escvet skipped (set LINT_STRICT=1 to make this fatal): %v\n", err)
		diags, err = runAnalyzers(modRoot, patterns, withoutEscvet(analyzers))
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(toJSON(diags)); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	return exitCode(vetFailed, diags)
}

// exitCode is the contract CI relies on: nonzero iff stock vet failed
// or findings remain after allows.
func exitCode(vetFailed bool, diags []analysis.Diagnostic) int {
	if vetFailed || len(diags) > 0 {
		return 1
	}
	return 0
}

// withoutEscvet filters the suite for toolchains that cannot replay
// -gcflags=-m output.
func withoutEscvet(suite []*analysis.Analyzer) []*analysis.Analyzer {
	out := make([]*analysis.Analyzer, 0, len(suite))
	for _, a := range suite {
		if a != escvet.Analyzer {
			out = append(out, a)
		}
	}
	return out
}

// runAnalyzers loads the packages and applies the suite to the whole
// program at once, so interprocedural walks cross package boundaries.
// The returned findings are in the stable (file, line, column, analyzer,
// message) order.
func runAnalyzers(modRoot string, patterns []string, suite []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	pkgs, err := analysis.Load(modRoot, patterns)
	if err != nil {
		return nil, err
	}
	return analysis.RunProgram(analysis.NewProgram(pkgs), suite)
}

// finding is the stable JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func toJSON(diags []analysis.Diagnostic) []finding {
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, finding{
			File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	return out
}
