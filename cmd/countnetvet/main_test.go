package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"countnet/internal/analysis"
	"countnet/internal/analysis/escvet"
)

// TestRepoClean is the self-hosting gate: the countnetvet suite must
// report zero findings over the whole module. Every intentional
// exception in the tree carries a reasoned //countnet:allow, so a
// failure here is either a real regression or a new exception that
// needs a justification.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	_, file, _, _ := runtime.Caller(0)
	modRoot, err := analysis.FindModuleRoot(filepath.Dir(file))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runAnalyzers(modRoot, []string{"./..."}, analyzers)
	if errors.Is(err, escvet.ErrToolchain) {
		t.Skipf("escvet toolchain probe failed, self-hosting without it: %v", err)
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestJSONShape keeps the -json output schema stable for the CI
// summary step.
func TestJSONShape(t *testing.T) {
	fs := toJSON([]analysis.Diagnostic{})
	if fs == nil || len(fs) != 0 {
		t.Fatalf("toJSON(nil) = %#v, want empty non-nil slice", fs)
	}
}

// TestExitCode pins the contract: nonzero iff stock vet failed or
// findings remain after allows.
func TestExitCode(t *testing.T) {
	d := analysis.Diagnostic{Analyzer: "detvet", Message: "x"}
	for _, tc := range []struct {
		vetFailed bool
		diags     []analysis.Diagnostic
		want      int
	}{
		{false, nil, 0},
		{false, []analysis.Diagnostic{d}, 1},
		{true, nil, 1},
		{true, []analysis.Diagnostic{d}, 1},
	} {
		if got := exitCode(tc.vetFailed, tc.diags); got != tc.want {
			t.Errorf("exitCode(%v, %d findings) = %d, want %d", tc.vetFailed, len(tc.diags), got, tc.want)
		}
	}
}

// TestJSONStableOrder runs the real driver over a seeded-violation
// testdata package twice and requires byte-identical, totally ordered
// JSON — including ties where several analyzers hit the same position.
func TestJSONStableOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	runOnce := func() ([]byte, int) {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-novet", "-json", "./internal/analysis/testdata/src/gatevet"}, &stdout, &stderr)
		if stderr.Len() > 0 {
			t.Logf("stderr: %s", stderr.String())
		}
		return stdout.Bytes(), code
	}
	out1, code1 := runOnce()
	out2, code2 := runOnce()
	if code1 != 1 || code2 != 1 {
		t.Fatalf("exit codes %d, %d; want 1 (the package seeds findings)", code1, code2)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatalf("JSON output not stable across runs:\n%s\n--- vs ---\n%s", out1, out2)
	}
	var fs []finding
	if err := json.Unmarshal(out1, &fs); err != nil {
		t.Fatal(err)
	}
	if len(fs) == 0 {
		t.Fatal("no findings decoded; the seeded package should produce some")
	}
	sorted := sort.SliceIsSorted(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	if !sorted {
		t.Errorf("findings not in (file, line, column, analyzer, message) order: %+v", fs)
	}
}

// TestSortTieBreak pins the total order two analyzers reporting the
// same position rely on.
func TestSortTieBreak(t *testing.T) {
	pos := analysis.Diagnostic{}.Pos
	pos.Filename, pos.Line, pos.Column = "a.go", 3, 7
	ds := []analysis.Diagnostic{
		{Pos: pos, Analyzer: "hotvet", Message: "b"},
		{Pos: pos, Analyzer: "gatevet", Message: "z"},
		{Pos: pos, Analyzer: "hotvet", Message: "a"},
	}
	analysis.Sort(ds)
	got := []string{ds[0].Analyzer + "/" + ds[0].Message, ds[1].Analyzer + "/" + ds[1].Message, ds[2].Analyzer + "/" + ds[2].Message}
	want := []string{"gatevet/z", "hotvet/a", "hotvet/b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie-break order %v, want %v", got, want)
		}
	}
}
