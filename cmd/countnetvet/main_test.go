package main

import (
	"path/filepath"
	"runtime"
	"testing"

	"countnet/internal/analysis"
)

// TestRepoClean is the self-hosting gate: the countnetvet suite must
// report zero findings over the whole module. Every intentional
// exception in the tree carries a reasoned //countnet:allow, so a
// failure here is either a real regression or a new exception that
// needs a justification.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	_, file, _, _ := runtime.Caller(0)
	modRoot, err := analysis.FindModuleRoot(filepath.Dir(file))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runAnalyzers(modRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestJSONShape keeps the -json output schema stable for the CI
// summary step.
func TestJSONShape(t *testing.T) {
	fs := toJSON([]analysis.Diagnostic{})
	if fs == nil || len(fs) != 0 {
		t.Fatalf("toJSON(nil) = %#v, want empty non-nil slice", fs)
	}
}
