package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"countnet/internal/conformance"
	"countnet/internal/faults"
	"countnet/internal/obs"
	"countnet/internal/workload"
)

// writeTrace serializes a synthetic trace to a temp file and returns its
// path.
func writeTrace(t *testing.T, meta obs.Meta, events []obs.Event) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(f, meta, events); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// syntheticChaos builds a two-token trace: token 1 suffers a three-retry
// storm and a dedup conflict, token 2 is clean.
func syntheticChaos() (obs.Meta, []obs.Event) {
	meta := obs.Meta{Engine: "msgnet", Unit: "ns", Net: "bitonic", Width: 2}
	events := []obs.Event{
		{T: 10, Kind: obs.KindEnter, P: 0, Tok: 1, Node: -1, Value: -1, Span: 1},
		{T: 30, Dur: 15, Kind: obs.KindBalancer, Tok: 1, Node: 0, Value: -1, Span: 2, Parent: 1},
		{T: 40, Dur: 8, Kind: obs.KindRetry, Tok: 1, Node: 1, Value: 3, Span: 3, Parent: 2},
		{T: 52, Dur: 10, Kind: obs.KindRetry, Tok: 1, Node: 1, Value: 3, Span: 4, Parent: 3},
		{T: 70, Dur: 14, Kind: obs.KindRetry, Tok: 1, Node: 1, Value: 3, Span: 5, Parent: 4},
		{T: 90, Dur: 45, Kind: obs.KindBalancer, Tok: 1, Node: 1, Value: -1, Span: 6, Parent: 5},
		{T: 95, Kind: obs.KindDedup, Tok: 1, Node: 1, Value: -1, Span: 7, Parent: 5},
		{T: 110, Dur: 12, Kind: obs.KindCounter, Tok: 1, Node: 2, Value: 0, Span: 8, Parent: 6},
		{T: 120, Dur: 110, Kind: obs.KindExit, Tok: 1, Node: -1, Value: 0, Span: 9, Parent: 8},

		{T: 15, Kind: obs.KindEnter, P: 1, Tok: 2, Node: -1, Value: -1, Span: 10},
		{T: 35, Dur: 12, Kind: obs.KindBalancer, P: 1, Tok: 2, Node: 0, Value: -1, Span: 11, Parent: 10},
		{T: 60, Dur: 9, Kind: obs.KindCounter, P: 1, Tok: 2, Node: 3, Value: 1, Span: 12, Parent: 11},
		{T: 70, Dur: 55, Kind: obs.KindExit, P: 1, Tok: 2, Node: -1, Value: 1, Span: 13, Parent: 12},
	}
	return meta, events
}

func runTool(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	anomalies, err := run(args, &buf)
	if err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String(), anomalies
}

func TestReportDeterministicAndFlagsStorm(t *testing.T) {
	meta, events := syntheticChaos()
	path := writeTrace(t, meta, events)

	out1, anomalies := runTool(t, "-in", path, "-storm", "3")
	out2, _ := runTool(t, "-in", path, "-storm", "3")
	if out1 != out2 {
		t.Fatalf("report not deterministic:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	if !strings.Contains(out1, "retry storm") {
		t.Fatalf("three consecutive retries not flagged as a storm:\n%s", out1)
	}
	if !strings.Contains(out1, "dedup conflicts") {
		t.Fatalf("dedup event not flagged:\n%s", out1)
	}
	if anomalies < 2 {
		t.Fatalf("anomalies = %d, want >= 2 (storm + dedup)", anomalies)
	}
	if strings.Contains(out1, "causality inversion") {
		t.Fatalf("clean trace flagged an inversion:\n%s", out1)
	}
	// tokens: both reconstructed; token 1's breakdown includes the backoff.
	if !strings.Contains(out1, "tokens: 2") {
		t.Fatalf("expected 2 tokens:\n%s", out1)
	}
}

func TestStormThresholdRespected(t *testing.T) {
	meta, events := syntheticChaos()
	path := writeTrace(t, meta, events)
	out, _ := runTool(t, "-in", path, "-storm", "4")
	if strings.Contains(out, "retry storm") {
		t.Fatalf("run of 3 retries flagged with -storm 4:\n%s", out)
	}
}

func TestCausalityInversionFlagged(t *testing.T) {
	meta := obs.Meta{Engine: "sim", Unit: "cycles", Net: "bitonic", Width: 2}
	events := []obs.Event{
		{T: 100, Kind: obs.KindEnter, Tok: 1, Node: -1, Value: -1, Span: 1},
		// Completed before its causal parent: a broken stamp.
		{T: 50, Dur: 5, Kind: obs.KindBalancer, Tok: 1, Node: 0, Value: -1, Span: 2, Parent: 1},
		{T: 120, Dur: 4, Kind: obs.KindCounter, Tok: 1, Node: 1, Value: 0, Span: 3, Parent: 2},
	}
	path := writeTrace(t, meta, events)
	out, anomalies := runTool(t, "-in", path)
	if !strings.Contains(out, "causality inversion") {
		t.Fatalf("inversion not flagged:\n%s", out)
	}
	if anomalies == 0 {
		t.Fatal("anomalies = 0, want > 0")
	}
}

func TestWindowRatioThreshold(t *testing.T) {
	meta := obs.Meta{Engine: "shm", Unit: "ns", Net: "periodic", Width: 2}
	// Two windows: the first with tiny toggle waits (ratio blows up), the
	// second with large ones (ratio near 1).
	events := []obs.Event{
		{T: 0, Dur: 10, Kind: obs.KindBalancer, Tok: 1, Node: 0, Value: -1},
		{T: 10, Dur: 10, Kind: obs.KindBalancer, Tok: 2, Node: 0, Value: -1},
		{T: 1000, Dur: 4000, Kind: obs.KindBalancer, Tok: 3, Node: 0, Value: -1},
		{T: 1999, Dur: 4000, Kind: obs.KindBalancer, Tok: 4, Node: 0, Value: -1},
	}
	path := writeTrace(t, meta, events)
	out, anomalies := runTool(t, "-in", path, "-windows", "2", "-w", "1us", "-ratio-threshold", "2")
	if !strings.Contains(out, "over the (Tog+W)/Tog threshold") {
		t.Fatalf("small-Tog window not flagged:\n%s", out)
	}
	if anomalies != 1 {
		t.Fatalf("anomalies = %d, want exactly 1 flagged window", anomalies)
	}
}

func TestJourneyListing(t *testing.T) {
	meta, events := syntheticChaos()
	path := writeTrace(t, meta, events)
	out, _ := runTool(t, "-in", path, "-tokens", "1")
	if !strings.Contains(out, "journey tok 1") {
		t.Fatalf("journey for token 1 missing:\n%s", out)
	}
	if strings.Contains(out, "journey tok 2") {
		t.Fatalf("journey for token 2 printed but not requested:\n%s", out)
	}
	// The chain is printed in causal (span) order: the retries sit between
	// the two balancer hops.
	section := out[strings.Index(out, "journey tok 1"):]
	iBal := strings.Index(section, "balancer")
	iRetry := strings.Index(section, "retry")
	if iBal < 0 || iRetry < 0 || iRetry < iBal {
		t.Fatalf("journey not in causal order:\n%s", out)
	}
}

// TestMsgnetChaosTraceEndToEnd is the acceptance path in miniature: run
// the real msgnet engine under a lossy fault plan with tracing, feed the
// JSONL through the tool twice, and require a byte-identical report that
// flags the injected retry storms.
func TestMsgnetChaosTraceEndToEnd(t *testing.T) {
	spec := workload.Spec{Net: workload.Bitonic, Width: 2, Procs: 4, Ops: 64, Seed: 7}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{
		Net: string(spec.Net), Width: spec.Width, Procs: spec.Procs, Ops: spec.Ops,
		Seed:    7,
		Default: faults.Rule{Drop: 0.6},
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(spec.Procs, 1<<14)
	exec, err := conformance.RunMsgnetPlanTraced(spec, plan, ring, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Ops) != spec.Ops {
		t.Fatalf("completed %d of %d ops", len(exec.Ops), spec.Ops)
	}
	meta := obs.Meta{Engine: "msgnet-faults", Unit: "ns", Net: string(spec.Net), Width: spec.Width}
	path := writeTrace(t, meta, ring.Events())

	out1, anomalies := runTool(t, "-in", path, "-storm", "3")
	out2, _ := runTool(t, "-in", path, "-storm", "3")
	if out1 != out2 {
		t.Fatal("report on real chaos trace not deterministic")
	}
	if !strings.Contains(out1, "retry storm") {
		t.Fatalf("no retry storm flagged at drop=0.6:\n%s", out1)
	}
	if strings.Contains(out1, "causality inversion") {
		t.Fatalf("engine trace has causality inversions:\n%s", out1)
	}
	if anomalies == 0 {
		t.Fatal("anomalies = 0 on a lossy chaos run")
	}
}
