// Command tracetool analyzes JSONL token traces produced by the engines
// (sim, shm stress, msgnet, flight-recorder dumps): it reconstructs each
// token's journey from the causal span chains, breaks the critical path
// down into queue/toggle wait, counter time, link time, and retry
// backoff, and flags anomalies — retry storms, dedup conflicts,
// causality inversions, and time windows whose (Tog+W)/Tog exceeds a
// threshold.
//
//	tracetool -in run.jsonl
//	tracetool -in chaos.jsonl -top 5 -storm 3
//	tracetool -in run.jsonl -w 200us -windows 10 -ratio-threshold 3
//	tracetool -in flight.jsonl -tokens 17,42
//	tracetool -in chaos.jsonl -fail-on-anomaly
//
// Output is a deterministic function of the trace file: two invocations
// on the same input produce byte-identical reports, so CI can diff them.
// With -fail-on-anomaly the exit status is 1 when any anomaly was
// flagged, letting chaos pipelines gate on trace health.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"countnet/internal/obs"
)

func main() {
	anomalies, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(2)
	}
	if anomalies > 0 && failOnAnomaly {
		os.Exit(1)
	}
}

// failOnAnomaly is set by run from the flag; main turns it into the exit
// status so run stays testable.
var failOnAnomaly bool

// journeyKey identifies one operation's token: the engines keep (proc,
// tok) constant along a token's path.
type journeyKey struct {
	p, tok int32
}

// journey is one token's reconstructed path through the network.
type journey struct {
	key    journeyKey
	events []obs.Event // causal order: by span id, spanless events by T
	total  int64       // end-to-end duration (exit Dur, else T extent)

	queue, counter, link, retry, other int64

	retries, dedups int
	maxStorm        int // longest run of consecutive retry events
}

func run(args []string, w io.Writer) (anomalies int, err error) {
	fs := flag.NewFlagSet("tracetool", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "JSONL trace to analyze (required; \"-\" for stdin)")
		top      = fs.Int("top", 10, "how many slowest tokens to list")
		wFlag    = fs.Duration("w", 0, "the run's injected per-node delay W, for the per-window (Tog+W)/Tog column")
		windows  = fs.Int("windows", 8, "time windows for the per-window Tog breakdown (0 disables)")
		ratioThr = fs.Float64("ratio-threshold", 0, "flag windows whose (Tog+W)/Tog exceeds this (0 disables; needs -w)")
		stormLen = fs.Int("storm", 3, "consecutive retries on one token counting as a retry storm")
		tokens   = fs.String("tokens", "", "comma-separated token ids to print full journeys for")
		failAnom = fs.Bool("fail-on-anomaly", false, "exit 1 when any anomaly is flagged")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	failOnAnomaly = *failAnom
	if *in == "" {
		return 0, fmt.Errorf("-in is required")
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		r = f
	}
	meta, events, err := obs.ReadJSONL(r)
	if err != nil {
		return 0, err
	}
	if len(events) == 0 {
		return 0, fmt.Errorf("%s: trace has no events", *in)
	}

	unit := meta.Unit
	if unit == "" {
		unit = "units"
	}
	fmt.Fprintf(w, "trace: engine=%s net=%s[%d] unit=%s events=%d",
		meta.Engine, meta.Net, meta.Width, unit, len(events))
	if meta.Reason != "" {
		fmt.Fprintf(w, " reason=%s", meta.Reason)
	}
	fmt.Fprintln(w)

	journeys := buildJourneys(events)
	fmt.Fprintf(w, "tokens: %d\n", len(journeys))

	printBreakdown(w, journeys, unit)
	printSlowest(w, journeys, *top, unit)
	if *tokens != "" {
		if err := printJourneys(w, journeys, *tokens, unit); err != nil {
			return 0, err
		}
	}

	anomalies += reportStorms(w, journeys, *stormLen)
	anomalies += reportDedups(w, events)
	anomalies += reportInversions(w, events)
	anomalies += reportWindows(w, events, *windows, float64(wFlag.Nanoseconds()), *ratioThr, unit)
	if anomalies == 0 {
		fmt.Fprintln(w, "anomalies: none")
	} else {
		fmt.Fprintf(w, "anomalies: %d flagged\n", anomalies)
	}
	return anomalies, nil
}

// buildJourneys groups events per token and orders each group causally:
// by span id when stamped (ids increase along causal edges), by timestamp
// for unstamped traces.
func buildJourneys(events []obs.Event) []*journey {
	byKey := make(map[journeyKey]*journey)
	var order []journeyKey
	for _, ev := range events {
		k := journeyKey{p: ev.P, tok: ev.Tok}
		j := byKey[k]
		if j == nil {
			j = &journey{key: k}
			byKey[k] = j
			order = append(order, k)
		}
		j.events = append(j.events, ev)
	}
	journeys := make([]*journey, 0, len(byKey))
	for _, k := range order {
		j := byKey[k]
		sort.SliceStable(j.events, func(a, b int) bool {
			ea, eb := j.events[a], j.events[b]
			if ea.Span != 0 && eb.Span != 0 {
				return ea.Span < eb.Span
			}
			return ea.T < eb.T
		})
		analyzeJourney(j)
		journeys = append(journeys, j)
	}
	return journeys
}

// analyzeJourney computes the critical-path breakdown of one token:
// every traced duration is attributed to its category, and whatever the
// end-to-end time does not account for (scheduling, reply delivery,
// untraced links) lands in "other".
func analyzeJourney(j *journey) {
	storm := 0
	// Hop waits are measured from enqueue at the sender, so on the faulty
	// path a hop's Dur includes the backoff pauses of the retries that
	// preceded it in the chain; pending carries that backoff forward so it
	// is deducted from the hop it delayed, keeping the categories disjoint.
	var pending int64
	deduct := func(dur int64) int64 {
		dur -= pending
		pending = 0
		if dur < 0 {
			dur = 0
		}
		return dur
	}
	var first, last int64
	for i, ev := range j.events {
		if i == 0 || ev.T-ev.Dur < first {
			first = ev.T - ev.Dur
		}
		if ev.T > last {
			last = ev.T
		}
		switch ev.Kind {
		case obs.KindBalancer, obs.KindDiffract:
			j.queue += deduct(ev.Dur)
		case obs.KindCounter:
			j.counter += deduct(ev.Dur)
		case obs.KindLink:
			j.link += ev.Dur
		case obs.KindRetry:
			j.retry += ev.Dur
			pending += ev.Dur
			j.retries++
		case obs.KindDedup:
			j.dedups++
		case obs.KindExit:
			j.total = ev.Dur
		}
		if ev.Kind == obs.KindRetry {
			storm++
			if storm > j.maxStorm {
				j.maxStorm = storm
			}
		} else {
			storm = 0
		}
	}
	if j.total == 0 {
		j.total = last - first
	}
	j.other = j.total - j.queue - j.counter - j.link - j.retry
	if j.other < 0 {
		j.other = 0
	}
}

// printBreakdown aggregates the per-category critical path over all
// journeys.
func printBreakdown(w io.Writer, journeys []*journey, unit string) {
	var total, queue, counter, link, retry, other int64
	for _, j := range journeys {
		total += j.total
		queue += j.queue
		counter += j.counter
		link += j.link
		retry += j.retry
		other += j.other
	}
	if total == 0 {
		fmt.Fprintln(w, "critical path: no measured durations")
		return
	}
	n := int64(len(journeys))
	fmt.Fprintf(w, "critical path (%s, aggregated over %d tokens, mean end-to-end %d):\n",
		unit, n, total/n)
	row := func(name string, v int64) {
		fmt.Fprintf(w, "  %-14s %6.1f%%  total %-12d mean/token %d\n",
			name, 100*float64(v)/float64(total), v, v/n)
	}
	row("queue+toggle", queue)
	row("counter", counter)
	row("link", link)
	row("retry backoff", retry)
	row("other", other)
}

// printSlowest lists the top-N tokens by end-to-end time.
func printSlowest(w io.Writer, journeys []*journey, top int, unit string) {
	if top <= 0 || len(journeys) == 0 {
		return
	}
	sorted := make([]*journey, len(journeys))
	copy(sorted, journeys)
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].total != sorted[b].total {
			return sorted[a].total > sorted[b].total
		}
		if sorted[a].key.tok != sorted[b].key.tok {
			return sorted[a].key.tok < sorted[b].key.tok
		}
		return sorted[a].key.p < sorted[b].key.p
	})
	if top > len(sorted) {
		top = len(sorted)
	}
	fmt.Fprintf(w, "slowest %d tokens (%s):\n", top, unit)
	for _, j := range sorted[:top] {
		fmt.Fprintf(w, "  tok %-6d p%-4d total %-10d queue %3.0f%% counter %3.0f%% link %3.0f%% retry %3.0f%% other %3.0f%%  hops %d retries %d\n",
			j.key.tok, j.key.p, j.total,
			pct(j.queue, j.total), pct(j.counter, j.total), pct(j.link, j.total),
			pct(j.retry, j.total), pct(j.other, j.total),
			len(j.events), j.retries)
	}
}

func pct(v, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(v) / float64(total)
}

// printJourneys dumps the full causal chain of the requested token ids.
func printJourneys(w io.Writer, journeys []*journey, spec, unit string) error {
	want := map[int32]bool{}
	for _, part := range strings.Split(spec, ",") {
		id, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return fmt.Errorf("-tokens: %w", err)
		}
		want[int32(id)] = true
	}
	for _, j := range journeys {
		if !want[j.key.tok] {
			continue
		}
		fmt.Fprintf(w, "journey tok %d (p%d), %d events, total %d %s:\n",
			j.key.tok, j.key.p, len(j.events), j.total, unit)
		for _, ev := range j.events {
			fmt.Fprintf(w, "  t=%-12d %-8s node=%-4d dur=%-10d span=%d parent=%d",
				ev.T, ev.Kind, ev.Node, ev.Dur, ev.Span, ev.Parent)
			if ev.Value >= 0 {
				fmt.Fprintf(w, " value=%d", ev.Value)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// reportStorms flags tokens whose causal chain contains a run of
// consecutive retry events at least stormLen long: the signature of a
// partitioned or heavily dropping link holding one token hostage.
func reportStorms(w io.Writer, journeys []*journey, stormLen int) int {
	if stormLen <= 0 {
		return 0
	}
	var stormy []*journey
	for _, j := range journeys {
		if j.maxStorm >= stormLen {
			stormy = append(stormy, j)
		}
	}
	if len(stormy) == 0 {
		return 0
	}
	sort.SliceStable(stormy, func(a, b int) bool {
		if stormy[a].maxStorm != stormy[b].maxStorm {
			return stormy[a].maxStorm > stormy[b].maxStorm
		}
		if stormy[a].key.tok != stormy[b].key.tok {
			return stormy[a].key.tok < stormy[b].key.tok
		}
		return stormy[a].key.p < stormy[b].key.p
	})
	fmt.Fprintf(w, "anomaly: retry storm on %d tokens (>= %d consecutive retries):\n",
		len(stormy), stormLen)
	show := stormy
	if len(show) > 5 {
		show = show[:5]
	}
	for _, j := range show {
		fmt.Fprintf(w, "  tok %-6d p%-4d longest run %d, %d retries total, %d backoff\n",
			j.key.tok, j.key.p, j.maxStorm, j.retries, j.retry)
	}
	if len(stormy) > len(show) {
		fmt.Fprintf(w, "  ... and %d more\n", len(stormy)-len(show))
	}
	return len(stormy)
}

// reportDedups flags duplicate-suppression conflicts grouped by node.
func reportDedups(w io.Writer, events []obs.Event) int {
	perNode := map[int32]int{}
	total := 0
	for _, ev := range events {
		if ev.Kind == obs.KindDedup {
			perNode[ev.Node]++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	nodes := make([]int32, 0, len(perNode))
	for n := range perNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(a, b int) bool {
		if perNode[nodes[a]] != perNode[nodes[b]] {
			return perNode[nodes[a]] > perNode[nodes[b]]
		}
		return nodes[a] < nodes[b]
	})
	fmt.Fprintf(w, "anomaly: %d dedup conflicts across %d nodes:", total, len(nodes))
	show := nodes
	if len(show) > 5 {
		show = show[:5]
	}
	for _, n := range show {
		fmt.Fprintf(w, " n%d:%d", n, perNode[n])
	}
	if len(nodes) > len(show) {
		fmt.Fprintf(w, " ...")
	}
	fmt.Fprintln(w)
	return 1
}

// reportInversions flags causality inversions: events whose recorded
// completion time precedes their causal parent's. A healthy single-clock
// trace has none; one appearing means clock skew or a broken stamp.
func reportInversions(w io.Writer, events []obs.Event) int {
	bySpan := make(map[uint64]obs.Event, len(events))
	for _, ev := range events {
		if ev.Span != 0 {
			bySpan[ev.Span] = ev
		}
	}
	count := 0
	for _, ev := range events {
		if ev.Span == 0 || ev.Parent == 0 {
			continue
		}
		parent, ok := bySpan[ev.Parent]
		if !ok {
			continue
		}
		if ev.T < parent.T || ev.Span <= parent.Span {
			count++
			if count <= 5 {
				fmt.Fprintf(w, "anomaly: causality inversion: %s span %d at t=%d precedes parent %s span %d at t=%d (tok %d)\n",
					ev.Kind, ev.Span, ev.T, parent.Kind, parent.Span, parent.T, ev.Tok)
			}
		}
	}
	if count > 5 {
		fmt.Fprintf(w, "  ... %d causality inversions total\n", count)
	}
	return count
}

// reportWindows splits the trace's time extent into equal windows,
// computes each window's mean balancer wait (its Tog), and — when W and a
// threshold are given — flags windows whose (Tog+W)/Tog exceeds the
// threshold: phases of the run where the linearizability-gap measure was
// worst.
func reportWindows(w io.Writer, events []obs.Event, windows int, effW, threshold float64, unit string) int {
	if windows <= 0 {
		return 0
	}
	var lo, hi int64
	first := true
	for _, ev := range events {
		if ev.Kind != obs.KindBalancer && ev.Kind != obs.KindDiffract {
			continue
		}
		if first || ev.T < lo {
			lo = ev.T
		}
		if first || ev.T > hi {
			hi = ev.T
		}
		first = false
	}
	if first || hi == lo {
		return 0
	}
	span := hi - lo + 1
	sums := make([]int64, windows)
	counts := make([]int64, windows)
	for _, ev := range events {
		if ev.Kind != obs.KindBalancer && ev.Kind != obs.KindDiffract {
			continue
		}
		idx := int((ev.T - lo) * int64(windows) / span)
		sums[idx] += ev.Dur
		counts[idx]++
	}
	fmt.Fprintf(w, "per-window Tog (%s, %d windows over [%d, %d]):\n", unit, windows, lo, hi)
	flagged := 0
	for i := 0; i < windows; i++ {
		from := lo + int64(i)*span/int64(windows)
		to := lo + int64(i+1)*span/int64(windows)
		if counts[i] == 0 {
			fmt.Fprintf(w, "  [%d, %d) no balancer events\n", from, to)
			continue
		}
		tog := float64(sums[i]) / float64(counts[i])
		line := fmt.Sprintf("  [%d, %d) tog %.0f over %d waits", from, to, tog, counts[i])
		if effW > 0 && tog > 0 {
			ratio := (tog + effW) / tog
			line += fmt.Sprintf(", (Tog+W)/Tog %.2f", ratio)
			if threshold > 0 && ratio > threshold {
				line += fmt.Sprintf("  << over threshold %.2f", threshold)
				flagged++
			}
		}
		fmt.Fprintln(w, line)
	}
	if flagged > 0 {
		fmt.Fprintf(w, "anomaly: %d of %d windows over the (Tog+W)/Tog threshold\n", flagged, windows)
	}
	return flagged
}
