package main

import (
	"strings"
	"testing"
)

func TestRunStressSmall(t *testing.T) {
	var sb strings.Builder
	args := []string{"-net", "dtree", "-width", "8", "-workers", "8", "-ops", "2000", "-frac", "0.25", "-delay", "20us"}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"dtree[8]", "ops/s", "linearizability:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunCompareSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-compare", "-width", "8", "-workers", "8", "-ops", "5000"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"bitonic[8]+mcs", "dtree[8]+prism", "mutex counter", "atomic counter"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadBalancer(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-balancer", "bogus", "-ops", "10", "-workers", "1"}, &sb); err == nil {
		t.Error("bogus balancer accepted")
	}
}

func TestRunMsgnetEngineFaultFree(t *testing.T) {
	var sb strings.Builder
	args := []string{"-engine", "msgnet", "-net", "bitonic", "-width", "4", "-workers", "4", "-ops", "400"}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"bitonic[4] msgnet", "faults=0", "ops/s", "linearizability:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// No injector means no fault/recovery tallies to report.
	if strings.Contains(out, "recovery:") {
		t.Errorf("fault-free run printed recovery stats:\n%s", out)
	}
}

func TestRunMsgnetEngineWithFaults(t *testing.T) {
	var sb strings.Builder
	args := []string{"-engine", "msgnet", "-net", "bitonic", "-width", "4", "-workers", "4",
		"-ops", "400", "-faults", "0.1", "-fault-seed", "7"}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"faults=0.1 (seed 7)", "faults:", "recovery:", "retries", "duplicates suppressed"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsFaultsOnSHMEngine(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-faults", "0.1", "-ops", "10", "-workers", "1"}, &sb); err == nil {
		t.Error("-faults accepted on the shm engine")
	}
	if err := run([]string{"-engine", "bogus", "-ops", "10", "-workers", "1"}, &sb); err == nil {
		t.Error("bogus engine accepted")
	}
}
