package main

import (
	"strings"
	"testing"
)

func TestRunStressSmall(t *testing.T) {
	var sb strings.Builder
	args := []string{"-net", "dtree", "-width", "8", "-workers", "8", "-ops", "2000", "-frac", "0.25", "-delay", "20us"}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"dtree[8]", "ops/s", "linearizability:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunCompareSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-compare", "-width", "8", "-workers", "8", "-ops", "5000"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"bitonic[8]+mcs", "dtree[8]+prism", "mutex counter", "atomic counter"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadBalancer(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-balancer", "bogus", "-ops", "10", "-workers", "1"}, &sb); err == nil {
		t.Error("bogus balancer accepted")
	}
}
