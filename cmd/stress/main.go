// Command stress runs the real-goroutine counterpart of the paper's
// benchmark: workers traverse a compiled counting network on the actual Go
// runtime, optionally pausing after every node (the paper's W delay), and
// the run is checked for linearizability violations against the monotonic
// clock. It also compares throughput against single-point counters.
//
//	stress -net dtree -width 32 -workers 64 -ops 100000 -frac 0.25 -delay 200us
//	stress -compare -workers 64 -ops 200000
//	stress -trace run.json -metrics - -pprof :6060
//	stress -combine -workers 256 -width 8 -frac 1 -delay 20us -burn
//	stress -engine adaptive -workers 256 -width 8 -linearizable
//	stress -engine msgnet -faults 0.05 -fault-seed 7 -delay 10us
//
// With -engine msgnet the workload runs on the message-passing runtime
// instead of the shared-memory one, and -faults turns on deterministic
// chaos (internal/faults): drop rate = the given intensity, duplication
// and reordering at half of it, all seeded by -fault-seed so two runs
// inject the identical fault sequence. -delay then becomes the plan's
// per-hop link latency (the paper's W on the wire) and the run report
// gains the fault/retry tallies next to the usual (Tog+W)/Tog measure.
//
// With -combine, tokens rendezvous in an elimination/combining funnel in
// front of the network and a representative walks once for a whole group
// (internal/shm/combine); the run report then includes the funnel's hit
// rate and combining degree, and the same counters appear in /metrics.
//
// With -engine adaptive the workload runs behind the contention-adaptive
// front-end (internal/shm/adaptive): tokens route through a direct
// counter, the combining funnel, or the full network as the measured
// load changes, and the report gains the regime history (per-mode token
// tallies, switch count, live (Tog+W)/Tog estimate). -linearizable turns
// on the Corollary 3.12 prefix padding whenever the measured ratio
// implies k > 2. -linear-below sets the occupancy band under which the
// front-end runs the guaranteed-linearizable waiting regime (ModeLinear:
// traverse the network, then hold the response until every smaller value
// has been returned); the counter starts in that regime, so a large band
// pins the whole run to it:
//
//	stress -engine adaptive -linear-below 1048576 -workers 64 -width 8
//
// With -trace the run's token events (enter, per-balancer traversal with
// wait duration, counter, exit) are exported as JSONL (.jsonl) or Chrome
// trace_event format (anything else; open in Perfetto). With -metrics the
// live metric family — toggle-wait histogram, (Tog+W)/Tog ratio gauge,
// per-balancer depth, prism CAS retries — is dumped as plain text. -pprof
// serves net/http/pprof plus the same metrics at /metrics while running.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"countnet/internal/faults"
	"countnet/internal/lincheck"
	"countnet/internal/msgnet"
	"countnet/internal/obs"
	"countnet/internal/shm"
	"countnet/internal/shm/adaptive"
	funnel "countnet/internal/shm/combine"
	"countnet/internal/stats"
	"countnet/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stress:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("stress", flag.ContinueOnError)
	var (
		net     = fs.String("net", "bitonic", "bitonic, periodic, or dtree")
		width   = fs.Int("width", 32, "network width")
		workers = fs.Int("workers", 64, "concurrent goroutines")
		ops     = fs.Int("ops", 100000, "total operations")
		frac    = fs.Float64("frac", 0, "fraction of workers delayed after every node (paper's F)")
		delay   = fs.Duration("delay", 0, "per-node delay for delayed workers (paper's W)")
		random  = fs.Bool("random", false, "all workers pause uniform [0,delay] per node")
		burn    = fs.Bool("burn", false, "burn delays as busy work occupying the processor (models coherence stalls) instead of a cooperative pause")
		kind    = fs.String("balancer", "mcs", "toggle implementation: mcs, mutex, atomic")
		combine = fs.Bool("combine", false, "route tokens through the elimination/combining funnel in front of the network")
		combW   = fs.Int("combine-width", 0, fmt.Sprintf("combining funnel exchanger slots (0 = default, %d)", funnel.DefaultWidth))
		combWin = fs.Duration("combine-window", 0, fmt.Sprintf("how long a token camps for partners before traversing alone (0 = default, %v)", funnel.DefaultWindow))
		compare = fs.Bool("compare", false, "compare network throughput against single-point counters")
		grid    = fs.Bool("grid", false, "run the wall-clock analogue of the paper's Figure 5/6 grid")
		engine  = fs.String("engine", "shm", "execution engine: shm, adaptive, or msgnet")
		linear  = fs.Bool("linearizable", false, "adaptive engine: insert Corollary 3.12 prefix padding when the measured ratio implies k > 2")
		linBand = fs.Int("linear-below", 0, "adaptive engine: occupancy band below which the guaranteed-linearizable waiting regime (ModeLinear) is used; 0 disables")
		faultsF = fs.Float64("faults", 0, "msgnet fault intensity in [0,1]: drop rate, with dup/reorder at half (msgnet engine only)")
		faultSd = fs.Int64("fault-seed", 1, "seed for the deterministic fault plan")
		seed    = fs.Int64("seed", 1, "workload seed")
		trace   = fs.String("trace", "", "export token trace to this file (.jsonl, or Chrome trace_event otherwise)")
		flight  = fs.String("flight", "", "arm a flight recorder dumping the last events to this JSONL file on a liveness-valve trip or panic (msgnet engine)")
		metrics = fs.String("metrics", "", `write the plain-text metrics dump to this file ("-" for stdout)`)
		pprofA  = fs.String("pprof", "", "serve net/http/pprof and /metrics on this address while running")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		return compareCounters(w, *width, *workers, *ops)
	}
	if *grid {
		return realGrid(w, *frac, *ops, *seed)
	}
	g, err := workload.NetKind(*net).Build(*width)
	if err != nil {
		return err
	}
	switch *engine {
	case "msgnet":
		return runMsgnetStress(w, msgnetStressConfig{
			net: *net, width: *width, workers: *workers, ops: *ops,
			delay: *delay, intensity: *faultsF, faultSeed: *faultSd,
			trace: *trace, flight: *flight, metrics: *metrics,
		})
	case "shm", "adaptive":
		if *faultsF != 0 {
			return fmt.Errorf("-faults requires -engine msgnet")
		}
		if *flight != "" {
			return fmt.Errorf("-flight requires -engine msgnet")
		}
		if *engine == "adaptive" && *combine {
			return fmt.Errorf("-combine conflicts with -engine adaptive (the adaptive engine owns its own funnel)")
		}
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}
	if *linear && *engine != "adaptive" {
		return fmt.Errorf("-linearizable requires -engine adaptive")
	}
	if *linBand != 0 && *engine != "adaptive" {
		return fmt.Errorf("-linear-below requires -engine adaptive")
	}
	var k shm.Kind
	switch *kind {
	case "mcs":
		k = shm.KindMCS
	case "mutex":
		k = shm.KindMutex
	case "atomic":
		k = shm.KindAtomic
	default:
		return fmt.Errorf("unknown balancer %q", *kind)
	}
	n, err := shm.Compile(g, shm.Options{Kind: k, Diffract: *net == "dtree"})
	if err != nil {
		return err
	}
	cfg := shm.StressConfig{
		Net: n, Workers: *workers, Ops: *ops,
		DelayedFrac: *frac, Delay: *delay, RandomDelay: *random, BurnDelay: *burn, Seed: *seed,
		Combine: *combine, CombineWidth: *combW, CombineWindow: *combWin,
	}
	var ring *obs.Ring
	if *trace != "" {
		ring = obs.NewRing(*workers, 1<<16)
		cfg.Tracer = ring
	}
	if *trace != "" || *metrics != "" || *pprofA != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	var front *adaptive.Counter
	if *engine == "adaptive" {
		front, err = adaptive.New(n, adaptive.Options{
			Kind:          k,
			Linearizable:  *linear,
			LinearBelow:   *linBand,
			CombineWidth:  *combW,
			CombineWindow: *combWin,
			EffWait:       cfg.EffWait(),
			Metrics:       cfg.Metrics,
		})
		if err != nil {
			return err
		}
		cfg.Front = front
	}
	if *pprofA != "" {
		addr, stop, err := obs.Serve(*pprofA, cfg.Metrics)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(w, "pprof+metrics on http://%s (/debug/pprof/, /metrics)\n", addr)
	}
	res, err := shm.Stress(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s[%d] %s balancers, %d workers, %d ops, F=%.0f%%, W=%v\n",
		*net, *width, *kind, *workers, *ops, 100**frac, *delay)
	fmt.Fprintf(w, "elapsed %v, %.0f ops/s\n", res.Elapsed.Round(time.Millisecond), res.Throughput)
	lat := make([]int64, len(res.Ops))
	for i, op := range res.Ops {
		lat[i] = op.End - op.Start
	}
	fmt.Fprintf(w, "latency (ns): %s\n", stats.Summarize(lat))
	fmt.Fprintf(w, "linearizability: %s\n", res.Report)
	if cfg.Metrics != nil {
		fmt.Fprintf(w, "measured Tog %.0fns, (Tog+W)/Tog = %.3f\n", res.Tog, res.AvgRatio)
	}
	if c := res.Combine; c != nil {
		deg := 0.0
		if c.Pairs > 0 {
			deg = 1 + float64(c.Partners)/float64(c.Pairs)
		}
		fmt.Fprintf(w, "combine: hit rate %.2f, %d combined walks (avg degree %.1f), %d partners, %d timeouts, %d idle, %d races\n",
			c.HitRate(), c.Pairs, deg, c.Partners, c.Timeouts, c.Idle, c.Races)
	}
	if front != nil {
		st := front.Stats()
		fmt.Fprintf(w, "adaptive: ended in %s after %d switches, tokens direct/combine/network/linear = %d/%d/%d/%d, (Tog+W)/Tog est %.3f\n",
			st.Mode, st.Switches, st.PerMode[adaptive.ModeDirect], st.PerMode[adaptive.ModeCombine], st.PerMode[adaptive.ModeNetwork], st.PerMode[adaptive.ModeLinear], st.Ratio)
		if st.PadK > 1 {
			fmt.Fprintf(w, "adaptive: running Corollary 3.12 padded network, k=%d\n", st.PadK)
		}
		if eps := front.Epochs(); len(eps) > 0 {
			fmt.Fprintf(w, "adaptive: regime history:")
			for _, e := range eps {
				fmt.Fprintf(w, " %s×%d", e.Mode, e.Tokens)
			}
			fmt.Fprintf(w, " %s×%d(live)\n", st.Mode, st.PerMode[st.Mode]-liveAdjust(eps, st.Mode))
		}
	}
	if ring != nil {
		if dropped := ring.Overwritten(); dropped > 0 {
			fmt.Fprintf(w, "trace ring overwrote %d events (oldest dropped)\n", dropped)
		}
		meta := obs.Meta{Engine: "shm", Unit: "ns", Net: *net, Width: *width}
		if err := exportTrace(*trace, meta, ring.Events()); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written to %s\n", *trace)
	}
	if *metrics != "" {
		dest := w
		if *metrics != "-" {
			f, err := os.Create(*metrics)
			if err != nil {
				return err
			}
			defer f.Close()
			dest = f
		}
		cfg.Metrics.WriteText(dest)
		if *metrics != "-" {
			fmt.Fprintf(w, "metrics written to %s\n", *metrics)
		}
	}
	return nil
}

// msgnetStressConfig carries the msgnet-engine knobs from the flag set.
type msgnetStressConfig struct {
	net                 string
	width, workers, ops int
	delay               time.Duration
	intensity           float64
	faultSeed           int64
	trace, flight       string
	metrics             string
}

// runMsgnetStress drives the workload through the message-passing engine,
// optionally under a deterministic chaos plan, and reports the same
// throughput/latency/linearizability summary as the shm path plus the
// fault and retry tallies.
func runMsgnetStress(w io.Writer, cfg msgnetStressConfig) error {
	g, err := workload.NetKind(cfg.net).Build(cfg.width)
	if err != nil {
		return err
	}
	plan := faults.Chaos(cfg.faultSeed, cfg.intensity, cfg.delay.Nanoseconds())
	plan.Net, plan.Width, plan.Procs, plan.Ops = cfg.net, cfg.width, cfg.workers, cfg.ops
	reg := obs.NewRegistry()
	meta := obs.Meta{Engine: "msgnet", Unit: "ns", Net: cfg.net, Width: cfg.width}
	var ring *obs.Ring
	if cfg.trace != "" {
		ring = obs.NewRing(cfg.workers, 1<<16)
	}
	var flight *obs.Flight
	if cfg.flight != "" {
		flight = obs.NewFlight(meta, cfg.workers, 1<<12)
		flight.SetAutoDump(cfg.flight)
		// A panic anywhere below still leaves the black box on disk.
		defer flight.RecoverDump()
	}
	mopts := msgnet.Options{
		Buffer:  1,
		Flight:  flight,
		Metrics: reg,
		EffWait: float64(cfg.delay.Nanoseconds()),
		Faults:  plan,
	}
	if ring != nil {
		mopts.Tracer = ring
	}
	n, err := msgnet.StartOpts(g, mopts)
	if err != nil {
		return err
	}
	defer n.Close()
	traced := ring != nil || flight != nil
	rec := lincheck.NewRecorder(cfg.ops)
	base := time.Now()
	errs := make(chan error, cfg.workers)
	per := cfg.ops / cfg.workers
	extra := cfg.ops % cfg.workers
	for p := 0; p < cfg.workers; p++ {
		ops := per
		if p < extra {
			ops++
		}
		// Worker p owns a contiguous token-id block, so traced identities
		// are unique without coordination.
		tokBase := p * per
		if p < extra {
			tokBase += p
		} else {
			tokBase += extra
		}
		go func(p, ops, tokBase int) {
			input := p % g.InWidth()
			for i := 0; i < ops; i++ {
				start := time.Since(base)
				var v int64
				var err error
				if traced {
					v, err = n.TraverseObs(input, int32(p), int32(tokBase+i))
				} else {
					v, err = n.Traverse(input)
				}
				if err != nil {
					errs <- err
					return
				}
				rec.Record(int64(start), int64(time.Since(base)), v)
			}
			errs <- nil
		}(p, ops, tokBase)
	}
	for p := 0; p < cfg.workers; p++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	elapsed := time.Since(base)
	ops := rec.Ops()
	fmt.Fprintf(w, "%s[%d] msgnet, %d workers, %d ops, faults=%.3g (seed %d), W=%v\n",
		cfg.net, cfg.width, cfg.workers, cfg.ops, cfg.intensity, cfg.faultSeed, cfg.delay)
	fmt.Fprintf(w, "elapsed %v, %.0f ops/s\n",
		elapsed.Round(time.Millisecond), float64(len(ops))/elapsed.Seconds())
	lat := make([]int64, len(ops))
	for i, op := range ops {
		lat[i] = op.End - op.Start
	}
	fmt.Fprintf(w, "latency (ns): %s\n", stats.Summarize(lat))
	fmt.Fprintf(w, "linearizability: %s\n", lincheck.Analyze(ops))
	if r := n.Ratio(); r != nil {
		fmt.Fprintf(w, "measured Tog %.0fns, (Tog+W)/Tog = %.3f\n", r.Tog(), r.Value())
	}
	if inj := n.Faults(); inj != nil {
		st := inj.Stats()
		fmt.Fprintf(w, "faults: %d drops, %d dups, %d reorders, %d delays, %d partition-drops, %d crash-drops, %d stalls, %d forced\n",
			st.Drops, st.Dups, st.Reorders, st.Delays, st.PartitionDrops, st.CrashDrops, st.Stalled, st.Forced)
		fmt.Fprintf(w, "recovery: %d retries, %d duplicates suppressed\n", n.Retries(), n.Dedups())
	}
	if ring != nil {
		if dropped := ring.Overwritten(); dropped > 0 {
			fmt.Fprintf(w, "trace ring overwrote %d events (oldest dropped)\n", dropped)
		}
		if err := exportTrace(cfg.trace, meta, ring.Events()); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written to %s\n", cfg.trace)
	}
	if flight != nil {
		if reason := flight.Tripped(); reason != "" {
			fmt.Fprintf(w, "flight recorder tripped (%s): dump at %s\n", reason, cfg.flight)
		} else {
			fmt.Fprintf(w, "flight recorder armed, never tripped (no dump written)\n")
		}
	}
	if cfg.metrics != "" {
		dest := w
		if cfg.metrics != "-" {
			f, err := os.Create(cfg.metrics)
			if err != nil {
				return err
			}
			defer f.Close()
			dest = f
		}
		reg.WriteText(dest)
		if cfg.metrics != "-" {
			fmt.Fprintf(w, "metrics written to %s\n", cfg.metrics)
		}
	}
	return nil
}

// liveAdjust returns the closed-epoch token total for the given mode, so
// the live epoch's share can be split out of the cumulative per-mode
// tally in the regime-history line.
func liveAdjust(eps []adaptive.EpochStat, m adaptive.Mode) int64 {
	var n int64
	for _, e := range eps {
		if e.Mode == m {
			n += e.Tokens
		}
	}
	return n
}

// exportTrace writes events to path in the format implied by its extension.
func exportTrace(path string, meta obs.Meta, events []obs.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.ExportFile(f, path, meta, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// realGrid runs the wall-clock analogue of the paper's benchmark grid and
// prints one row per cell.
func realGrid(w io.Writer, frac float64, ops int, seed int64) error {
	if frac == 0 {
		frac = 0.25
	}
	fmt.Fprintf(w, "wall-clock grid (goroutines), F=%.0f%%, %d ops per cell\n", 100*frac, ops)
	fmt.Fprintf(w, "%-34s %12s %10s %12s\n", "cell", "ops/s", "viol%", "p99-latency")
	for _, spec := range workload.RealGrid(frac, ops, seed) {
		res, err := spec.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", spec, err)
		}
		lat := make([]int64, len(res.Ops))
		for i, op := range res.Ops {
			lat[i] = op.End - op.Start
		}
		sum := stats.Summarize(lat)
		fmt.Fprintf(w, "%-34s %12.0f %9.3f%% %12v\n",
			spec, res.Throughput, 100*res.Report.Ratio(), time.Duration(sum.P99).Round(time.Microsecond))
	}
	return nil
}

// compareCounters races the counting networks against a mutex counter and a
// bare atomic fetch-and-add, the classic motivation for counting networks.
func compareCounters(w io.Writer, width, workers, ops int) error {
	type result struct {
		name string
		tput float64
	}
	var results []result

	runNet := func(name string, kind workload.NetKind, diffract bool) error {
		g, err := kind.Build(width)
		if err != nil {
			return err
		}
		n, err := shm.Compile(g, shm.Options{Kind: shm.KindMCS, Diffract: diffract})
		if err != nil {
			return err
		}
		res, err := shm.Stress(shm.StressConfig{Net: n, Workers: workers, Ops: ops, Seed: 1})
		if err != nil {
			return err
		}
		results = append(results, result{name, res.Throughput})
		return nil
	}
	if err := runNet(fmt.Sprintf("bitonic[%d]+mcs", width), workload.Bitonic, false); err != nil {
		return err
	}
	if err := runNet(fmt.Sprintf("dtree[%d]+prism", width), workload.DTree, true); err != nil {
		return err
	}
	results = append(results,
		result{"mutex counter", pointCounter(workers, ops, func(c *int64, mu *sync.Mutex) {
			mu.Lock()
			*c++
			mu.Unlock()
		})},
		result{"atomic counter", pointCounterAtomic(workers, ops)},
	)
	fmt.Fprintf(w, "shared-counter throughput, %d workers, %d ops\n", workers, ops)
	for _, r := range results {
		fmt.Fprintf(w, "  %-22s %12.0f ops/s\n", r.name, r.tput)
	}
	return nil
}

// pointCounter measures a critical-section counter.
func pointCounter(workers, ops int, inc func(*int64, *sync.Mutex)) float64 {
	var c int64
	var mu sync.Mutex
	var remaining atomic.Int64
	remaining.Store(int64(ops))
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for remaining.Add(-1) >= 0 {
				inc(&c, &mu)
			}
		}()
	}
	wg.Wait()
	return float64(ops) / time.Since(start).Seconds()
}

// pointCounterAtomic measures a bare fetch-and-add.
func pointCounterAtomic(workers, ops int) float64 {
	var c atomic.Int64
	var remaining atomic.Int64
	remaining.Store(int64(ops))
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for remaining.Add(-1) >= 0 {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	return float64(ops) / time.Since(start).Seconds()
}
