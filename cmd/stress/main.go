// Command stress runs the real-goroutine counterpart of the paper's
// benchmark: workers traverse a compiled counting network on the actual Go
// runtime, optionally pausing after every node (the paper's W delay), and
// the run is checked for linearizability violations against the monotonic
// clock. It also compares throughput against single-point counters.
//
//	stress -net dtree -width 32 -workers 64 -ops 100000 -frac 0.25 -delay 200us
//	stress -compare -workers 64 -ops 200000
//	stress -trace run.json -metrics - -pprof :6060
//	stress -combine -workers 256 -width 8 -frac 1 -delay 20us -burn
//
// With -combine, tokens rendezvous in an elimination/combining funnel in
// front of the network and a representative walks once for a whole group
// (internal/shm/combine); the run report then includes the funnel's hit
// rate and combining degree, and the same counters appear in /metrics.
//
// With -trace the run's token events (enter, per-balancer traversal with
// wait duration, counter, exit) are exported as JSONL (.jsonl) or Chrome
// trace_event format (anything else; open in Perfetto). With -metrics the
// live metric family — toggle-wait histogram, (Tog+W)/Tog ratio gauge,
// per-balancer depth, prism CAS retries — is dumped as plain text. -pprof
// serves net/http/pprof plus the same metrics at /metrics while running.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"countnet/internal/obs"
	"countnet/internal/shm"
	funnel "countnet/internal/shm/combine"
	"countnet/internal/stats"
	"countnet/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stress:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("stress", flag.ContinueOnError)
	var (
		net     = fs.String("net", "bitonic", "bitonic, periodic, or dtree")
		width   = fs.Int("width", 32, "network width")
		workers = fs.Int("workers", 64, "concurrent goroutines")
		ops     = fs.Int("ops", 100000, "total operations")
		frac    = fs.Float64("frac", 0, "fraction of workers delayed after every node (paper's F)")
		delay   = fs.Duration("delay", 0, "per-node delay for delayed workers (paper's W)")
		random  = fs.Bool("random", false, "all workers pause uniform [0,delay] per node")
		burn    = fs.Bool("burn", false, "burn delays as busy work occupying the processor (models coherence stalls) instead of a cooperative pause")
		kind    = fs.String("balancer", "mcs", "toggle implementation: mcs, mutex, atomic")
		combine = fs.Bool("combine", false, "route tokens through the elimination/combining funnel in front of the network")
		combW   = fs.Int("combine-width", 0, fmt.Sprintf("combining funnel exchanger slots (0 = default, %d)", funnel.DefaultWidth))
		combWin = fs.Duration("combine-window", 0, fmt.Sprintf("how long a token camps for partners before traversing alone (0 = default, %v)", funnel.DefaultWindow))
		compare = fs.Bool("compare", false, "compare network throughput against single-point counters")
		grid    = fs.Bool("grid", false, "run the wall-clock analogue of the paper's Figure 5/6 grid")
		seed    = fs.Int64("seed", 1, "workload seed")
		trace   = fs.String("trace", "", "export token trace to this file (.jsonl, or Chrome trace_event otherwise)")
		metrics = fs.String("metrics", "", `write the plain-text metrics dump to this file ("-" for stdout)`)
		pprofA  = fs.String("pprof", "", "serve net/http/pprof and /metrics on this address while running")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		return compareCounters(w, *width, *workers, *ops)
	}
	if *grid {
		return realGrid(w, *frac, *ops, *seed)
	}
	g, err := workload.NetKind(*net).Build(*width)
	if err != nil {
		return err
	}
	var k shm.Kind
	switch *kind {
	case "mcs":
		k = shm.KindMCS
	case "mutex":
		k = shm.KindMutex
	case "atomic":
		k = shm.KindAtomic
	default:
		return fmt.Errorf("unknown balancer %q", *kind)
	}
	n, err := shm.Compile(g, shm.Options{Kind: k, Diffract: *net == "dtree"})
	if err != nil {
		return err
	}
	cfg := shm.StressConfig{
		Net: n, Workers: *workers, Ops: *ops,
		DelayedFrac: *frac, Delay: *delay, RandomDelay: *random, BurnDelay: *burn, Seed: *seed,
		Combine: *combine, CombineWidth: *combW, CombineWindow: *combWin,
	}
	var ring *obs.Ring
	if *trace != "" {
		ring = obs.NewRing(*workers, 1<<16)
		cfg.Tracer = ring
	}
	if *trace != "" || *metrics != "" || *pprofA != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	if *pprofA != "" {
		addr, stop, err := obs.Serve(*pprofA, cfg.Metrics)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(w, "pprof+metrics on http://%s (/debug/pprof/, /metrics)\n", addr)
	}
	res, err := shm.Stress(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s[%d] %s balancers, %d workers, %d ops, F=%.0f%%, W=%v\n",
		*net, *width, *kind, *workers, *ops, 100**frac, *delay)
	fmt.Fprintf(w, "elapsed %v, %.0f ops/s\n", res.Elapsed.Round(time.Millisecond), res.Throughput)
	lat := make([]int64, len(res.Ops))
	for i, op := range res.Ops {
		lat[i] = op.End - op.Start
	}
	fmt.Fprintf(w, "latency (ns): %s\n", stats.Summarize(lat))
	fmt.Fprintf(w, "linearizability: %s\n", res.Report)
	if cfg.Metrics != nil {
		fmt.Fprintf(w, "measured Tog %.0fns, (Tog+W)/Tog = %.3f\n", res.Tog, res.AvgRatio)
	}
	if c := res.Combine; c != nil {
		deg := 0.0
		if c.Pairs > 0 {
			deg = 1 + float64(c.Partners)/float64(c.Pairs)
		}
		fmt.Fprintf(w, "combine: hit rate %.2f, %d combined walks (avg degree %.1f), %d partners, %d timeouts, %d idle, %d races\n",
			c.HitRate(), c.Pairs, deg, c.Partners, c.Timeouts, c.Idle, c.Races)
	}
	if ring != nil {
		if dropped := ring.Overwritten(); dropped > 0 {
			fmt.Fprintf(w, "trace ring overwrote %d events (oldest dropped)\n", dropped)
		}
		meta := obs.Meta{Engine: "shm", Unit: "ns", Net: *net, Width: *width}
		if err := exportTrace(*trace, meta, ring.Events()); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written to %s\n", *trace)
	}
	if *metrics != "" {
		dest := w
		if *metrics != "-" {
			f, err := os.Create(*metrics)
			if err != nil {
				return err
			}
			defer f.Close()
			dest = f
		}
		cfg.Metrics.WriteText(dest)
		if *metrics != "-" {
			fmt.Fprintf(w, "metrics written to %s\n", *metrics)
		}
	}
	return nil
}

// exportTrace writes events to path in the format implied by its extension.
func exportTrace(path string, meta obs.Meta, events []obs.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.ExportFile(f, path, meta, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// realGrid runs the wall-clock analogue of the paper's benchmark grid and
// prints one row per cell.
func realGrid(w io.Writer, frac float64, ops int, seed int64) error {
	if frac == 0 {
		frac = 0.25
	}
	fmt.Fprintf(w, "wall-clock grid (goroutines), F=%.0f%%, %d ops per cell\n", 100*frac, ops)
	fmt.Fprintf(w, "%-34s %12s %10s %12s\n", "cell", "ops/s", "viol%", "p99-latency")
	for _, spec := range workload.RealGrid(frac, ops, seed) {
		res, err := spec.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", spec, err)
		}
		lat := make([]int64, len(res.Ops))
		for i, op := range res.Ops {
			lat[i] = op.End - op.Start
		}
		sum := stats.Summarize(lat)
		fmt.Fprintf(w, "%-34s %12.0f %9.3f%% %12v\n",
			spec, res.Throughput, 100*res.Report.Ratio(), time.Duration(sum.P99).Round(time.Microsecond))
	}
	return nil
}

// compareCounters races the counting networks against a mutex counter and a
// bare atomic fetch-and-add, the classic motivation for counting networks.
func compareCounters(w io.Writer, width, workers, ops int) error {
	type result struct {
		name string
		tput float64
	}
	var results []result

	runNet := func(name string, kind workload.NetKind, diffract bool) error {
		g, err := kind.Build(width)
		if err != nil {
			return err
		}
		n, err := shm.Compile(g, shm.Options{Kind: shm.KindMCS, Diffract: diffract})
		if err != nil {
			return err
		}
		res, err := shm.Stress(shm.StressConfig{Net: n, Workers: workers, Ops: ops, Seed: 1})
		if err != nil {
			return err
		}
		results = append(results, result{name, res.Throughput})
		return nil
	}
	if err := runNet(fmt.Sprintf("bitonic[%d]+mcs", width), workload.Bitonic, false); err != nil {
		return err
	}
	if err := runNet(fmt.Sprintf("dtree[%d]+prism", width), workload.DTree, true); err != nil {
		return err
	}
	results = append(results,
		result{"mutex counter", pointCounter(workers, ops, func(c *int64, mu *sync.Mutex) {
			mu.Lock()
			*c++
			mu.Unlock()
		})},
		result{"atomic counter", pointCounterAtomic(workers, ops)},
	)
	fmt.Fprintf(w, "shared-counter throughput, %d workers, %d ops\n", workers, ops)
	for _, r := range results {
		fmt.Fprintf(w, "  %-22s %12.0f ops/s\n", r.name, r.tput)
	}
	return nil
}

// pointCounter measures a critical-section counter.
func pointCounter(workers, ops int, inc func(*int64, *sync.Mutex)) float64 {
	var c int64
	var mu sync.Mutex
	var remaining atomic.Int64
	remaining.Store(int64(ops))
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for remaining.Add(-1) >= 0 {
				inc(&c, &mu)
			}
		}()
	}
	wg.Wait()
	return float64(ops) / time.Since(start).Seconds()
}

// pointCounterAtomic measures a bare fetch-and-add.
func pointCounterAtomic(workers, ops int) float64 {
	var c atomic.Int64
	var remaining atomic.Int64
	remaining.Store(int64(ops))
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for remaining.Add(-1) >= 0 {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	return float64(ops) / time.Since(start).Seconds()
}
