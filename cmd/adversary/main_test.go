package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"countnet/internal/faults"
	"countnet/internal/schedule"
)

func TestRunAllScenarios(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "all", "-width", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"section1", "Theorem 4.1", "Theorem 4.3", "Theorem 4.4",
		"padding (Corollary 3.12)", "non-linearizable",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The padding block must report zero violations on the padded network.
	if !strings.Contains(out, "padded:   0/") {
		t.Errorf("padded run not clean:\n%s", out)
	}
}

func TestRunSingleScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "section1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "token  2") {
		t.Errorf("token table missing:\n%s", sb.String())
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "nonsense"}, &sb); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestRunTraceExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	var sb strings.Builder
	if err := run([]string{"-scenario", "tree", "-width", "4", "-trace", path}, &sb); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := schedule.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	// 5 tokens (w=4 scenario: T0, T1, 3 wave) each transit depth+1 = 3 nodes.
	if len(events) != 5*3 {
		t.Errorf("trace has %d events, want 15", len(events))
	}
	if err := run([]string{"-scenario", "all", "-trace", path}, &sb); err == nil {
		t.Error("-trace with -scenario all accepted")
	}
}

func TestRunWavesWideShowsViolatedOps(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "waves", "-width", "16"}, &sb); err != nil {
		t.Fatal(err)
	}
	// 24 tokens: the token table is elided and violated ops are listed.
	if !strings.Contains(sb.String(), "violated op:") {
		t.Errorf("wide scenario did not list violations:\n%s", sb.String())
	}
}

func TestRunSweep(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-sweep", "-width", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "separation sweep") || !strings.Contains(sb.String(), "gap/bound") {
		t.Errorf("sweep output:\n%s", sb.String())
	}
}

func TestRunSearch(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-search", "-width", "4", "-ratio", "5"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "adversary synthesis") {
		t.Errorf("search output:\n%s", sb.String())
	}
}

func TestRunSearchBelowBoundFindsNothing(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-search", "-width", "4", "-ratio", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Corollary 3.9") {
		t.Errorf("below-bound search output:\n%s", sb.String())
	}
}

func TestRunReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sched.jsonl")
	sched := &schedule.Concrete{
		Net: "bitonic", Width: 2, C1: 100, C2: 1000,
		Tokens: []schedule.ConcreteToken{
			{Time: 0, Input: 0, Delays: []int64{1000}},
			{Time: 1, Input: 0, Delays: []int64{100}},
			{Time: 110, Input: 0, Delays: []int64{100}},
		},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.WriteConcrete(f, sched); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-replay", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"replay", "ratio 10.00", "non-linearizable", "witness:"} {
		if !strings.Contains(out, want) {
			t.Errorf("replay output missing %q:\n%s", want, out)
		}
	}
	// Replay with trace export.
	trace := filepath.Join(dir, "trace.jsonl")
	sb.Reset()
	if err := run([]string{"-replay", path, "-trace", trace}, &sb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(trace); err != nil {
		t.Fatalf("trace not written: %v", err)
	}
}

func TestRunDerivedFaultSeed(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fault-seed", "7", "-net", "bitonic", "-width", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"chaos run (derived from fault-seed 7)",
		"plan:",
		"quiescent invariants hold",
		"lincheck:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunFaultPlanReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.jsonl")
	plan := faults.Chaos(3, 0.15, 2000)
	plan.Net, plan.Width, plan.Procs, plan.Ops = "dtree", 4, 4, 200
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := faults.WritePlan(f, plan); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-faults", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"chaos replay", "workload: 4 procs, 200 ops", "quiescent invariants hold"} {
		if !strings.Contains(out, want) {
			t.Errorf("replay output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFaultPlanRejectsMissingWorkload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "anon-plan.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := faults.WritePlan(f, faults.Chaos(1, 0.1, 0)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var sb strings.Builder
	if err := run([]string{"-faults", path}, &sb); err == nil {
		t.Error("plan without workload hints accepted")
	}
}

func TestRunReplayRejectsMissingNetwork(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "anon.jsonl")
	sched := &schedule.Concrete{
		C1: 10, C2: 20,
		Tokens: []schedule.ConcreteToken{{Time: 0, Input: 0}},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.WriteConcrete(f, sched); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var sb strings.Builder
	if err := run([]string{"-replay", path}, &sb); err == nil {
		t.Error("schedule without a network hint accepted")
	}
}
