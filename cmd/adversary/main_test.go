package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"countnet/internal/schedule"
)

func TestRunAllScenarios(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "all", "-width", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"section1", "Theorem 4.1", "Theorem 4.3", "Theorem 4.4",
		"padding (Corollary 3.12)", "non-linearizable",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The padding block must report zero violations on the padded network.
	if !strings.Contains(out, "padded:   0/") {
		t.Errorf("padded run not clean:\n%s", out)
	}
}

func TestRunSingleScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "section1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "token  2") {
		t.Errorf("token table missing:\n%s", sb.String())
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "nonsense"}, &sb); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestRunTraceExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	var sb strings.Builder
	if err := run([]string{"-scenario", "tree", "-width", "4", "-trace", path}, &sb); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := schedule.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	// 5 tokens (w=4 scenario: T0, T1, 3 wave) each transit depth+1 = 3 nodes.
	if len(events) != 5*3 {
		t.Errorf("trace has %d events, want 15", len(events))
	}
	if err := run([]string{"-scenario", "all", "-trace", path}, &sb); err == nil {
		t.Error("-trace with -scenario all accepted")
	}
}

func TestRunWavesWideShowsViolatedOps(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "waves", "-width", "16"}, &sb); err != nil {
		t.Fatal(err)
	}
	// 24 tokens: the token table is elided and violated ops are listed.
	if !strings.Contains(sb.String(), "violated op:") {
		t.Errorf("wide scenario did not list violations:\n%s", sb.String())
	}
}

func TestRunSweep(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-sweep", "-width", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "separation sweep") || !strings.Contains(sb.String(), "gap/bound") {
		t.Errorf("sweep output:\n%s", sb.String())
	}
}

func TestRunSearch(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-search", "-width", "4", "-ratio", "5"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "adversary synthesis") {
		t.Errorf("search output:\n%s", sb.String())
	}
}

func TestRunSearchBelowBoundFindsNothing(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-search", "-width", "4", "-ratio", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Corollary 3.9") {
		t.Errorf("below-bound search output:\n%s", sb.String())
	}
}
