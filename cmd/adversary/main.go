// Command adversary replays the scripted worst-case executions of
// "Counting Networks are Practically Linearizable": the introduction's
// depth-1 example and the Section 4 constructions (Theorems 4.1, 4.3, 4.4),
// plus the Corollary 3.12 padding fix. For each scenario it prints the
// timing parameters, the per-token values, and the linearizability report.
//
//	adversary -scenario section1|tree|bitonic|waves|padding|all [-width w]
//	adversary -faults chaos-plan.jsonl
//	adversary -fault-seed 7 -width 4 -net bitonic
//
// With -faults the command replays a serialized chaos plan (a
// faults.WritePlan JSONL file, e.g. a shrunken reproducer from the
// conformance chaos soak) against the message-passing engine and checks
// the quiescent invariants; with -fault-seed it derives the plan
// deterministically from the seed instead, the generate-and-check twin of
// replay.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"countnet/internal/conformance"
	"countnet/internal/core"
	"countnet/internal/dtree"
	"countnet/internal/faults"
	"countnet/internal/lincheck"
	"countnet/internal/obs"
	"countnet/internal/schedule"
	"countnet/internal/topo"
	"countnet/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "adversary:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("adversary", flag.ContinueOnError)
	var (
		name    = fs.String("scenario", "all", "section1, tree, bitonic, waves, padding, or all")
		width   = fs.Int("width", 8, "network width for the Section 4 scenarios")
		trace   = fs.String("trace", "", "write the execution trace (JSONL) to this file (single scenarios only)")
		sweep   = fs.Bool("sweep", false, "run the Lemma 3.7 start-separation sweep instead of a scenario")
		search  = fs.Bool("search", false, "synthesize an adversarial schedule by hill climbing instead of replaying a scripted one")
		ratio   = fs.Int64("ratio", 5, "c2/c1 ratio budget for -search")
		replay  = fs.String("replay", "", "replay a serialized concrete schedule (JSONL, e.g. a conformance shrinker reproducer) instead of a scripted scenario")
		faultsP = fs.String("faults", "", "replay a serialized chaos plan (JSONL from faults.WritePlan) on the msgnet engine")
		faultSd = fs.Int64("fault-seed", 0, "derive a chaos plan from this seed and run it on the msgnet engine (0 = off)")
		net     = fs.String("net", "bitonic", "network family for -fault-seed: bitonic, periodic, or dtree")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *faultsP != "" {
		return replayFaultPlan(w, *faultsP, *trace)
	}
	if *faultSd != 0 {
		return derivedFaultRun(w, *net, *width, *faultSd, *trace)
	}
	if *replay != "" {
		return replaySchedule(w, *replay, *trace)
	}
	if *sweep {
		return gapSweep(w, *width)
	}
	if *search {
		return searchAdversary(w, *width, *ratio)
	}
	names := []string{*name}
	if *name == "all" {
		names = []string{"section1", "tree", "bitonic", "waves", "padding"}
	}
	if *trace != "" && len(names) > 1 {
		return fmt.Errorf("-trace requires a single -scenario")
	}
	for _, n := range names {
		if err := runOne(w, n, *width, *trace); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runOne(w io.Writer, name string, width int, tracePath string) error {
	if name == "padding" {
		return padding(w, width)
	}
	var (
		sc  *schedule.Scenario
		err error
	)
	switch name {
	case "section1":
		sc, err = schedule.Section1()
	case "tree":
		sc, err = schedule.Tree(width)
	case "bitonic":
		sc, err = schedule.Bitonic(width)
	case "waves":
		sc, err = schedule.Waves(width)
	default:
		return fmt.Errorf("unknown scenario %q", name)
	}
	if err != nil {
		return err
	}
	res, err := schedule.Run(sc.Graph, sc.Arrive, sc.Delays, schedule.Options{Trace: tracePath != ""})
	if err != nil {
		return err
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := schedule.WriteTrace(f, sc.Graph, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written to %s (%d events)\n", tracePath, len(res.Events))
	}
	rep := res.Report()
	fmt.Fprintf(w, "== %s ==\n%s\n", sc.Name, sc.Claim)
	fmt.Fprintf(w, "network: %s\n", topo.Summary(sc.Graph))
	fmt.Fprintf(w, "timing:  c1=%d c2=%d (ratio %.2f, linearizable bound is 2)\n",
		sc.C1, sc.C2, float64(sc.C2)/float64(sc.C1))
	fmt.Fprintf(w, "result:  %s\n", rep)
	if len(res.Values) <= 12 {
		for k, v := range res.Values {
			fmt.Fprintf(w, "  token %2d: [%6d, %6d] -> %d\n", k, res.Ops[k].Start, res.Ops[k].End, v)
		}
	} else {
		for _, viol := range topViolations(res) {
			fmt.Fprintf(w, "  violated op: [%d, %d] -> %d (preceded by value %d)\n",
				viol.start, viol.end, viol.value, viol.prev)
		}
	}
	return nil
}

// replaySchedule reruns a concrete schedule serialized by the conformance
// shrinker (schedule.WriteConcrete) and prints its linearizability report,
// optionally exporting the transition trace.
func replaySchedule(w io.Writer, path, tracePath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	sched, err := schedule.ReadConcrete(f)
	f.Close()
	if err != nil {
		return err
	}
	if sched.Net == "" || sched.Width == 0 {
		return fmt.Errorf("replay: schedule %s names no network (net=%q width=%d)", path, sched.Net, sched.Width)
	}
	if len(sched.Tokens) == 0 {
		return fmt.Errorf("replay: schedule %s has no tokens", path)
	}
	g, err := workload.NetKind(sched.Net).Build(sched.Width)
	if err != nil {
		return err
	}
	res, err := sched.Run(g, schedule.Options{Trace: tracePath != ""})
	if err != nil {
		return err
	}
	if tracePath != "" {
		tf, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := schedule.WriteTrace(tf, g, res); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written to %s (%d events)\n", tracePath, len(res.Events))
	}
	fmt.Fprintf(w, "== replay %s ==\n", path)
	fmt.Fprintf(w, "network: %s\n", topo.Summary(g))
	fmt.Fprintf(w, "timing:  c1=%d c2=%d (ratio %.2f, linearizable bound is 2)\n",
		sched.C1, sched.C2, float64(sched.C2)/float64(sched.C1))
	fmt.Fprintf(w, "result:  %s\n", res.Report())
	for k, v := range res.Values {
		fmt.Fprintf(w, "  token %2d: [%6d, %6d] -> %d\n", k, res.Ops[k].Start, res.Ops[k].End, v)
	}
	if wit, ok := lincheck.FirstWitness(res.Ops); ok {
		fmt.Fprintf(w, "witness: %s\n", wit)
	}
	return nil
}

// replayFaultPlan reruns a serialized chaos plan on the msgnet engine —
// the fault-layer twin of replaySchedule — and reports whether the
// quiescent invariants survive it.
func replayFaultPlan(w io.Writer, path, tracePath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	plan, err := faults.ReadPlan(f)
	f.Close()
	if err != nil {
		return err
	}
	if plan.Net == "" || plan.Width == 0 {
		return fmt.Errorf("faults: plan %s names no workload (net=%q width=%d)", path, plan.Net, plan.Width)
	}
	fmt.Fprintf(w, "== chaos replay %s ==\n", path)
	return runFaultPlan(w, plan, tracePath)
}

// derivedFaultRun generates the deterministic chaos plan for (net, width,
// seed) — the same derivation the conformance chaos engine uses — and
// runs it.
func derivedFaultRun(w io.Writer, net string, width int, seed int64, tracePath string) error {
	spec := workload.Spec{Net: workload.NetKind(net), Width: width, Procs: 4, Ops: 256, Seed: seed}
	if err := spec.Validate(); err != nil {
		return err
	}
	plan, err := conformance.DerivePlan(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== chaos run (derived from fault-seed %d) ==\n", seed)
	return runFaultPlan(w, plan, tracePath)
}

// runFaultPlan executes one plan against its embedded workload hints and
// prints the plan, the invariant verdict, and the linearizability report.
// With tracePath the run is traced and the span-stamped causal trace is
// exported (JSONL or Chrome, by extension) for tracetool/Perfetto.
func runFaultPlan(w io.Writer, plan *faults.Plan, tracePath string) error {
	spec := workload.Spec{
		Net: workload.NetKind(plan.Net), Width: plan.Width,
		Procs: plan.Procs, Ops: plan.Ops, Seed: plan.Seed,
	}
	if spec.Procs <= 0 {
		spec.Procs = 4
	}
	if spec.Ops <= 0 {
		spec.Ops = 256
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	g, err := spec.Net.Build(spec.Width)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "network: %s\n", topo.Summary(g))
	fmt.Fprintf(w, "plan:    %v\n", plan)
	fmt.Fprintf(w, "workload: %d procs, %d ops\n", spec.Procs, spec.Ops)
	var ring *obs.Ring
	if tracePath != "" {
		ring = obs.NewRing(spec.Procs, 1<<16)
	}
	var exec *conformance.Execution
	if ring != nil {
		exec, err = conformance.RunMsgnetPlanTraced(spec, plan, ring, nil)
	} else {
		exec, err = conformance.RunMsgnetPlan(spec, plan)
	}
	if err != nil {
		return err
	}
	if ring != nil {
		meta := obs.Meta{Engine: "msgnet-faults", Unit: "ns", Net: plan.Net, Width: plan.Width}
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := obs.ExportFile(f, tracePath, meta, ring.Events()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written to %s (%d events, %d overwritten; analyze with: tracetool -in %s)\n",
			tracePath, len(ring.Events()), ring.Overwritten(), tracePath)
	}
	if len(exec.Ops) != spec.Ops {
		return fmt.Errorf("chaos: completed %d of %d operations", len(exec.Ops), spec.Ops)
	}
	if err := exec.CheckUniversal(g.OutWidth()); err != nil {
		fmt.Fprintf(w, "result:  INVARIANT BREACH: %v\n", err)
		return err
	}
	fmt.Fprintf(w, "result:  quiescent invariants hold (gapless permutation, exact step tallies)\n")
	fmt.Fprintf(w, "lincheck: %s\n", lincheck.Analyze(exec.Ops))
	return nil
}

type violRow struct{ start, end, value, prev int64 }

// topViolations lists up to five violated operations.
func topViolations(res *schedule.Result) []violRow {
	var out []violRow
	for k, op := range res.Ops {
		var prevMax int64 = -1
		for j, other := range res.Ops {
			if j != k && other.End < op.Start && other.Value > prevMax {
				prevMax = other.Value
			}
		}
		if prevMax > op.Value {
			out = append(out, violRow{op.Start, op.End, op.Value, prevMax})
			if len(out) == 5 {
				break
			}
		}
	}
	return out
}

// searchAdversary synthesizes a violating schedule for the counting tree
// under the given ratio budget and prints what it found.
func searchAdversary(w io.Writer, width int, ratio int64) error {
	g, err := dtree.New(width)
	if err != nil {
		return err
	}
	const c1 = 10
	c2 := ratio * c1
	res, err := schedule.Search(g, schedule.SearchSpec{
		C1: c1, C2: c2, Tokens: 14, Horizon: 8 * c2, Rounds: 1500, Restarts: 8, Seed: 1,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== adversary synthesis (dtree[%d], c2 = %d*c1) ==\n", width, ratio)
	fmt.Fprintf(w, "%d schedules evaluated; best has %d non-linearizable operations\n", res.Evaluated, res.Violations)
	if res.Violations == 0 {
		if c2 <= 2*c1 {
			fmt.Fprintln(w, "none found — as Corollary 3.9 guarantees for c2 <= 2*c1")
		} else {
			fmt.Fprintln(w, "none found within the search budget (violations above 2*c1 exist but are rare)")
		}
		return nil
	}
	replay, err := res.Replay(g)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replayed: %s\n", replay.Report())
	for k, a := range res.Arrivals {
		fmt.Fprintf(w, "  token %2d: enter t=%-6d delays %v -> value %d [%d,%d]\n",
			k, a.Time, res.LinkDelays[k], replay.Values[k], replay.Ops[k].Start, replay.Ops[k].End)
	}
	return nil
}

// gapSweep prints violations against the start-separation fraction of the
// Lemma 3.7 bound 2h(c2-c1): zero at and above 1.0, growing below it.
func gapSweep(w io.Writer, width int) error {
	g, err := dtree.New(width)
	if err != nil {
		return err
	}
	const c1, c2 = 10, 100
	fracs := []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.12, 0.25, 0.5, 1.0}
	pts, err := schedule.GapSweep(g, c1, c2, fracs, 24, 60, 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Lemma 3.7 separation sweep (dtree[%d], c2/c1 = %d) ==\n", width, c2/c1)
	fmt.Fprintf(w, "bound: start-start gap 2h(c2-c1) = %d\n", 2*int64(g.Depth())*(c2-c1))
	fmt.Fprintf(w, "%-12s %-10s %s\n", "gap/bound", "pairs", "inversions")
	for _, pt := range pts {
		fmt.Fprintf(w, "%-12.2f %-10d %d (%.3f%%)\n", pt.Frac, pt.Pairs, pt.Inversions,
			100*float64(pt.Inversions)/float64(pt.Pairs))
	}
	return nil
}

// padding demonstrates Corollary 3.12: the tree scenario violates at
// c2 = 2.5*c1; the padded network under the same adversary does not.
func padding(w io.Writer, width int) error {
	sc, err := schedule.Tree(width)
	if err != nil {
		return err
	}
	before, err := sc.Run()
	if err != nil {
		return err
	}
	h := sc.Graph.Depth()
	k := int((sc.C2 + sc.C1 - 1) / sc.C1)
	padLen := core.PaddingLength(h, k)
	padded, err := topo.Pad(sc.Graph, padLen)
	if err != nil {
		return err
	}
	after, err := schedule.Run(padded, sc.Arrive, sc.Delays, schedule.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== padding (Corollary 3.12) ==\n")
	fmt.Fprintf(w, "tree width %d, depth %d, ratio bound k=%d -> prefix %d pass-through balancers per input\n",
		width, h, k, padLen)
	fmt.Fprintf(w, "unpadded: %s\n", before.Report())
	fmt.Fprintf(w, "padded:   %s (depth %d)\n", after.Report(), padded.Depth())
	return nil
}
