package main

import (
	"strings"
	"testing"
)

func TestRunCrossMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "cross", "-widths", "2,4", "-ops", "24"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "cross-engine conformance") {
		t.Errorf("missing header:\n%s", out)
	}
	if got := strings.Count(out, "8 engines agree"); got != 6 { // 3 nets x 2 widths
		t.Errorf("%d agreement lines, want 6:\n%s", got, out)
	}
}

func TestRunSoakMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "soak", "-nets", "bitonic", "-widths", "2", "-rounds", "8", "-shrink"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "soak clean: 16 schedules") {
		t.Errorf("soak summary wrong:\n%s", out)
	}
}

func TestRunChaosMode(t *testing.T) {
	var sb strings.Builder
	args := []string{"-mode", "chaos", "-nets", "bitonic", "-widths", "2", "-rounds", "4", "-fault-seed", "1", "-shrink"}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "chaos soak (fault-plan fuzzing, 4 plans per cell, fault-seed 1)") {
		t.Errorf("missing chaos header:\n%s", out)
	}
	if !strings.Contains(out, "chaos clean: 4 fault plans, zero invariant breaches") {
		t.Errorf("chaos summary wrong:\n%s", out)
	}

	// Same fault-seed, same output: the chaos run is deterministic end
	// to end, so a CI failure is always reproducible from the flags.
	var again strings.Builder
	if err := run(args, &again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Errorf("chaos mode not reproducible:\n--- first ---\n%s--- second ---\n%s", out, again.String())
	}
}

func TestRunAllModeSmall(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nets", "dtree", "-widths", "2", "-rounds", "3", "-ops", "12"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "8 engines agree") || !strings.Contains(out, "soak clean") {
		t.Errorf("all mode output:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "bogus"}, &sb); err == nil {
		t.Error("bogus mode accepted")
	}
	if err := run([]string{"-nets", "torus"}, &sb); err == nil {
		t.Error("bogus net accepted")
	}
	if err := run([]string{"-widths", "1"}, &sb); err == nil {
		t.Error("width 1 accepted")
	}
	if err := run([]string{"-widths", "x"}, &sb); err == nil {
		t.Error("width x accepted")
	}
}
