// Command conformance runs the cross-engine conformance harness: the
// deterministic corpus (every network family and width through the
// quiescent executor, the cycle simulator, the shared-memory runtime —
// plain, behind the combining funnel, and behind the contention-adaptive
// front-end — and the message-passing runtime both fault-free and
// fault-injected) and long schedule-fuzzing soaks against the Section 3
// theorems (Corollaries 3.9 and 3.12).
//
//	conformance                       corpus + a short soak
//	conformance -mode soak -rounds 5000 -shrink -out fail.jsonl
//	conformance -mode cross -widths 2,4,8,16
//	conformance -mode chaos -rounds 25 -fault-seed 1 -shrink -out plan.jsonl
//
// -mode chaos fuzzes whole fault plans (internal/faults) against the
// message-passing engine: random drop/dup/reorder/delay rates, link
// partitions, and node stall/crash windows, all derived deterministically
// from -fault-seed. A failing plan is shrunk (with -shrink) to a minimal
// chaos reproducer and serialized to -out; replay it with
// `adversary -faults <file>`.
//
// On an invariant breach the offending schedule is shrunk (with -shrink)
// to a minimal reproducer, serialized as JSONL to -out (default stdout),
// and the process exits non-zero; replay it with
// `adversary -replay <file>`. When the breach is a linearizability
// violation, -trace (default `<out>.trace.json`) additionally writes the
// execution trace sliced to the minimal window covering the violating
// operation pair, in Chrome trace_event format for Perfetto. -metrics
// dumps run counters as plain text and -pprof serves net/http/pprof plus
// /metrics while the harness runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"countnet/internal/conformance"
	"countnet/internal/faults"
	"countnet/internal/obs"
	"countnet/internal/schedule"
	"countnet/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "conformance:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("conformance", flag.ContinueOnError)
	var (
		mode    = fs.String("mode", "all", "all, cross (engine corpus), soak (schedule fuzzing), or chaos (fault-plan fuzzing)")
		nets    = fs.String("nets", "bitonic,periodic,dtree", "comma-separated network families")
		widths  = fs.String("widths", "2,4,8", "comma-separated network widths")
		rounds  = fs.Int("rounds", 100, "fuzzed schedules per (net, width, regime) cell")
		ops     = fs.Int("ops", 64, "operations per cross-engine run")
		procs   = fs.Int("procs", 4, "workers per cross-engine run")
		seed    = fs.Int64("seed", 1, "fuzzing seed")
		faultSd = fs.Int64("fault-seed", 1, "seed for -mode chaos fault plans")
		shrink  = fs.Bool("shrink", false, "minimize a failing schedule before reporting it")
		out     = fs.String("out", "", "write the failing schedule (JSONL) to this file instead of stdout")
		trace   = fs.String("trace", "", "write the witness-correlated trace slice to this file (default <out>.trace.json)")
		flight  = fs.String("flight", "", "write the violation's flight-recorder dump (full causal trace, JSONL) to this file (default <out>.flight.jsonl)")
		metrics = fs.String("metrics", "", `write the plain-text metrics dump to this file ("-" for stdout)`)
		pprofA  = fs.String("pprof", "", "serve net/http/pprof and /metrics on this address while running")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := obs.NewRegistry()
	if *pprofA != "" {
		addr, stop, err := obs.Serve(*pprofA, reg)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(w, "pprof+metrics on http://%s (/debug/pprof/, /metrics)\n", addr)
	}
	if *trace == "" && *out != "" {
		*trace = *out + ".trace.json"
	}
	if *flight == "" && *out != "" {
		*flight = *out + ".flight.jsonl"
	}
	kinds, err := parseNets(*nets)
	if err != nil {
		return err
	}
	sizes, err := parseWidths(*widths)
	if err != nil {
		return err
	}
	switch *mode {
	case "all", "cross", "soak", "chaos":
	default:
		return fmt.Errorf("unknown -mode %q (want all, cross, soak, or chaos)", *mode)
	}
	var runErr error
	if *mode == "all" || *mode == "cross" {
		runErr = crossEngine(w, reg, kinds, sizes, *procs, *ops, *seed)
	}
	if runErr == nil && (*mode == "all" || *mode == "soak") {
		runErr = soak(w, reg, kinds, sizes, *rounds, *seed, *shrink, *out, *trace, *flight)
	}
	if runErr == nil && *mode == "chaos" {
		runErr = chaos(w, reg, kinds, sizes, *rounds, *ops, *procs, *faultSd, *shrink, *out)
	}
	if *metrics != "" {
		dest := w
		if *metrics != "-" {
			f, err := os.Create(*metrics)
			if err != nil {
				return err
			}
			defer f.Close()
			dest = f
		}
		reg.WriteText(dest)
	}
	return runErr
}

// crossEngine runs the differential corpus and reports per-cell agreement.
func crossEngine(w io.Writer, reg *obs.Registry, nets []workload.NetKind, widths []int, procs, ops int, seed int64) error {
	fmt.Fprintln(w, "== cross-engine conformance (quiescent / sim / shm / shm-combine / shm-adaptive / shm-adaptive-linear / msgnet / msgnet-faults) ==")
	cells := reg.Counter("conformance_cross_cells_total")
	for _, net := range nets {
		for _, width := range widths {
			spec := workload.Spec{
				Net:   net,
				Width: width,
				Procs: procs,
				Ops:   ops,
				Frac:  0.25,
				Wait:  200,
				Seed:  seed,
			}
			if err := conformance.CrossCheck(spec); err != nil {
				return fmt.Errorf("ENGINES DISAGREE on %s: %w", spec, err)
			}
			cells.Inc()
			fmt.Fprintf(w, "%-32s 8 engines agree (%d ops)\n", spec, ops)
		}
	}
	return nil
}

// soak fuzzes random timing schedules and reports, or serializes, the
// first invariant breach, with its witness-correlated trace slice when the
// breach is a linearizability violation.
func soak(w io.Writer, reg *obs.Registry, nets []workload.NetKind, widths []int, rounds int, seed int64, shrink bool, outPath, tracePath, flightPath string) error {
	fmt.Fprintf(w, "== schedule-fuzzing soak (%d rounds per cell, seed %d) ==\n", rounds, seed)
	roundsMetric := reg.Counter("conformance_soak_rounds_total")
	failures := reg.Counter("conformance_soak_failures_total")
	fail, total, err := conformance.Soak(conformance.SoakConfig{
		Nets:   nets,
		Widths: widths,
		Rounds: rounds,
		Seed:   seed,
		Shrink: shrink,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	})
	roundsMetric.Add(int64(total))
	if err != nil {
		return err
	}
	if fail == nil {
		fmt.Fprintf(w, "soak clean: %d schedules, zero invariant breaches\n", total)
		return nil
	}
	failures.Inc()
	fmt.Fprintf(w, "INVARIANT BREACH after %d schedules: %v\n", total, fail)
	dest := w
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		dest = f
		fmt.Fprintf(w, "reproducer written to %s (replay with: adversary -replay %s)\n", outPath, outPath)
	}
	if err := schedule.WriteConcrete(dest, fail.Sched); err != nil {
		return err
	}
	if tracePath != "" || flightPath != "" {
		if err := writeWitnessTrace(w, fail, tracePath, flightPath); err != nil {
			fmt.Fprintf(w, "witness trace: %v\n", err)
		}
	}
	return fmt.Errorf("conformance failed: %s", fail.Error())
}

// chaos fuzzes whole fault plans against the message-passing engine and
// reports, or serializes, the first invariant breach with its (shrunk)
// plan reproducer.
func chaos(w io.Writer, reg *obs.Registry, nets []workload.NetKind, widths []int, rounds, ops, procs int, faultSeed int64, shrink bool, outPath string) error {
	fmt.Fprintf(w, "== chaos soak (fault-plan fuzzing, %d plans per cell, fault-seed %d) ==\n", rounds, faultSeed)
	roundsMetric := reg.Counter("conformance_chaos_rounds_total")
	failures := reg.Counter("conformance_chaos_failures_total")
	fail, total, err := conformance.ChaosSoak(conformance.ChaosConfig{
		Nets:   nets,
		Widths: widths,
		Rounds: rounds,
		Seed:   faultSeed,
		Ops:    ops,
		Procs:  procs,
		Shrink: shrink,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	})
	roundsMetric.Add(int64(total))
	if err != nil {
		return err
	}
	if fail == nil {
		fmt.Fprintf(w, "chaos clean: %d fault plans, zero invariant breaches\n", total)
		return nil
	}
	failures.Inc()
	fmt.Fprintf(w, "INVARIANT BREACH after %d plans: %v\n", total, fail.Err)
	dest := w
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		dest = f
		fmt.Fprintf(w, "fault-plan reproducer written to %s (replay with: adversary -faults %s)\n", outPath, outPath)
	}
	if err := faults.WritePlan(dest, fail.Plan); err != nil {
		return err
	}
	return fmt.Errorf("chaos conformance failed: %s", fail.Error())
}

// writeWitnessTrace reruns the reproducer with tracing and writes the
// violation-window slice next to it, plus (when flightPath is set) the
// flight-recorder dump carrying the full causal trace with reason
// "lincheck-violation"; a breach of a non-linearizability invariant has
// no witness pair and is reported as such.
func writeWitnessTrace(w io.Writer, fail *conformance.SoakFailure, path, flightPath string) error {
	g, err := fail.Net.Build(fail.Width)
	if err != nil {
		return err
	}
	wt, ok, err := conformance.TraceWitness(g, fail.Sched)
	if err != nil {
		return err
	}
	if !ok {
		fmt.Fprintf(w, "breach has no linearizability witness; no trace slice written\n")
		return nil
	}
	fmt.Fprintf(w, "witness %s\n", wt.Witness)
	if path != "" {
		if err := wt.WriteFile(path); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace slice [%d,%d] (%d events) written to %s (open in Perfetto)\n",
			wt.From, wt.To, len(wt.Events), path)
	}
	if flightPath != "" {
		dumped, err := wt.DumpFlight(flightPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "flight dump written to %s (analyze with: tracetool -in %s)\n", dumped, dumped)
	}
	return nil
}

func parseNets(s string) ([]workload.NetKind, error) {
	var out []workload.NetKind
	for _, part := range strings.Split(s, ",") {
		kind := workload.NetKind(strings.TrimSpace(part))
		switch kind {
		case workload.Bitonic, workload.Periodic, workload.DTree:
			out = append(out, kind)
		default:
			return nil, fmt.Errorf("unknown network family %q", part)
		}
	}
	return out, nil
}

func parseWidths(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad width %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
