// Command conformance runs the cross-engine conformance harness: the
// deterministic corpus (every network family and width through the
// quiescent executor, the cycle simulator, the shared-memory runtime, and
// the message-passing runtime) and long schedule-fuzzing soaks against the
// Section 3 theorems (Corollaries 3.9 and 3.12).
//
//	conformance                       corpus + a short soak
//	conformance -mode soak -rounds 5000 -shrink -out fail.jsonl
//	conformance -mode cross -widths 2,4,8,16
//
// On an invariant breach the offending schedule is shrunk (with -shrink)
// to a minimal reproducer, serialized as JSONL to -out (default stdout),
// and the process exits non-zero; replay it with
// `adversary -replay <file>`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"countnet/internal/conformance"
	"countnet/internal/schedule"
	"countnet/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "conformance:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("conformance", flag.ContinueOnError)
	var (
		mode   = fs.String("mode", "all", "all, cross (engine corpus), or soak (schedule fuzzing)")
		nets   = fs.String("nets", "bitonic,periodic,dtree", "comma-separated network families")
		widths = fs.String("widths", "2,4,8", "comma-separated network widths")
		rounds = fs.Int("rounds", 100, "fuzzed schedules per (net, width, regime) cell")
		ops    = fs.Int("ops", 64, "operations per cross-engine run")
		procs  = fs.Int("procs", 4, "workers per cross-engine run")
		seed   = fs.Int64("seed", 1, "fuzzing seed")
		shrink = fs.Bool("shrink", false, "minimize a failing schedule before reporting it")
		out    = fs.String("out", "", "write the failing schedule (JSONL) to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	kinds, err := parseNets(*nets)
	if err != nil {
		return err
	}
	sizes, err := parseWidths(*widths)
	if err != nil {
		return err
	}
	switch *mode {
	case "all", "cross", "soak":
	default:
		return fmt.Errorf("unknown -mode %q (want all, cross, or soak)", *mode)
	}
	if *mode != "soak" {
		if err := crossEngine(w, kinds, sizes, *procs, *ops, *seed); err != nil {
			return err
		}
	}
	if *mode != "cross" {
		if err := soak(w, kinds, sizes, *rounds, *seed, *shrink, *out); err != nil {
			return err
		}
	}
	return nil
}

// crossEngine runs the differential corpus and reports per-cell agreement.
func crossEngine(w io.Writer, nets []workload.NetKind, widths []int, procs, ops int, seed int64) error {
	fmt.Fprintln(w, "== cross-engine conformance (quiescent / sim / shm / msgnet) ==")
	for _, net := range nets {
		for _, width := range widths {
			spec := workload.Spec{
				Net:   net,
				Width: width,
				Procs: procs,
				Ops:   ops,
				Frac:  0.25,
				Wait:  200,
				Seed:  seed,
			}
			if err := conformance.CrossCheck(spec); err != nil {
				return fmt.Errorf("ENGINES DISAGREE on %s: %w", spec, err)
			}
			fmt.Fprintf(w, "%-32s 4 engines agree (%d ops)\n", spec, ops)
		}
	}
	return nil
}

// soak fuzzes random timing schedules and reports, or serializes, the
// first invariant breach.
func soak(w io.Writer, nets []workload.NetKind, widths []int, rounds int, seed int64, shrink bool, outPath string) error {
	fmt.Fprintf(w, "== schedule-fuzzing soak (%d rounds per cell, seed %d) ==\n", rounds, seed)
	fail, total, err := conformance.Soak(conformance.SoakConfig{
		Nets:   nets,
		Widths: widths,
		Rounds: rounds,
		Seed:   seed,
		Shrink: shrink,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	if fail == nil {
		fmt.Fprintf(w, "soak clean: %d schedules, zero invariant breaches\n", total)
		return nil
	}
	fmt.Fprintf(w, "INVARIANT BREACH after %d schedules: %v\n", total, fail)
	dest := w
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		dest = f
		fmt.Fprintf(w, "reproducer written to %s (replay with: adversary -replay %s)\n", outPath, outPath)
	}
	if err := schedule.WriteConcrete(dest, fail.Sched); err != nil {
		return err
	}
	return fmt.Errorf("conformance failed: %s", fail.Error())
}

func parseNets(s string) ([]workload.NetKind, error) {
	var out []workload.NetKind
	for _, part := range strings.Split(s, ",") {
		kind := workload.NetKind(strings.TrimSpace(part))
		switch kind {
		case workload.Bitonic, workload.Periodic, workload.DTree:
			out = append(out, kind)
		default:
			return nil, fmt.Errorf("unknown network family %q", part)
		}
	}
	return out, nil
}

func parseWidths(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad width %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
