module countnet

go 1.22
