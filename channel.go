package countnet

import (
	"countnet/internal/msgnet"
)

// ChannelCounter is a counting network run as a message-passing system: one
// goroutine per balancer, tokens as channel messages. Section 2 of the
// paper notes the balancer model covers message passing as well as shared
// memory; this is that implementation. Close it when done to stop the node
// goroutines.
type ChannelCounter struct {
	net *msgnet.Network
}

// NewChannelCounter launches the message-passing runtime for t. buffer is
// each node's inbox capacity (0 means synchronous hand-offs).
func NewChannelCounter(t Topology, buffer int) (*ChannelCounter, error) {
	if !t.Valid() {
		return nil, errZeroTopology
	}
	n, err := msgnet.Start(t.g, buffer)
	if err != nil {
		return nil, err
	}
	return &ChannelCounter{net: n}, nil
}

// NextAt draws the next value entering at a specific network input.
func (c *ChannelCounter) NextAt(input int) (int64, error) {
	return c.net.Traverse(input)
}

// Close stops the node goroutines and waits for them to exit.
func (c *ChannelCounter) Close() { c.net.Close() }
