// idserver: concurrent unique-ID (timestamp) generation with an online
// linearizability monitor — the paper's motivating application and its
// "practically linearizable" message, live.
//
// A pool of handler goroutines serves ID requests from a shared queue,
// drawing IDs from a width-32 diffracting-tree counter. The service is run
// twice: once calm, and once with a fraction F of the handlers pausing W
// after traversing every node of the network (think garbage collection,
// page faults, noisy neighbours — the paper's Section 5 anomaly, verbatim).
// The monitor counts non-linearizable responses: requests that started
// after another finished, yet returned a smaller ID.
//
// The punchline mirrors the paper: even under heavy anomalies the violation
// rate is a fraction of a percent, while the padding that would *guarantee*
// linearizability for the measured timing ratio is absurdly deep — the
// "linear time cost ... may prove an unnecessary burden".
//
//	go run ./examples/idserver
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"countnet"
)

const (
	handlers = 32
	requests = 8000
	frac     = 0.25                   // F: fraction of stalling handlers
	stall    = 200 * time.Microsecond // W: pause after each node
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tree, err := countnet.TreeTopology(32)
	if err != nil {
		return err
	}
	fmt.Printf("ID server on a diffracting tree: %s\n", tree)
	fmt.Printf("%d handlers, %d requests\n\n", handlers, requests)

	calm, calmDur, err := serve(tree, 0)
	if err != nil {
		return err
	}
	fmt.Printf("calm run:                    %s\n", calm)

	noisy, noisyDur, err := serve(tree, stall)
	if err != nil {
		return err
	}
	fmt.Printf("F=%.0f%% stall W=%v per node: %s\n\n", 100*frac, stall, noisy)

	// What would guaranteed linearizability cost? Probe the uncontended
	// per-node time; the anomalous per-node time is roughly nodeTime + W.
	nodeTime := probeNodeTime(tree)
	tm := countnet.Timing{C1: int64(nodeTime), C2: int64(nodeTime + stall)}
	k := tm.K()
	fmt.Printf("measured ratio under anomalies: c2/c1 ≈ %.0f\n", tm.Ratio())
	fmt.Printf("padding for a guarantee (Corollary 3.12) would need %d pass-through\n",
		tree.Depth()*(k-2))
	fmt.Printf("balancers per input (depth %d -> %d) — the paper's point: trade the\n",
		tree.Depth(), tree.Depth()*(k-1))
	fmt.Printf("guarantee for speed when violations are this rare (%s vs %s elapsed).\n",
		noisyDur.Round(time.Millisecond), calmDur.Round(time.Millisecond))
	return nil
}

// probeNodeTime measures the fast uncontended per-node traversal time.
func probeNodeTime(t countnet.Topology) time.Duration {
	ctr, err := countnet.NewCounter(t)
	if err != nil {
		return time.Microsecond
	}
	const probes = 2000
	start := time.Now()
	for i := 0; i < probes; i++ {
		ctr.Next()
	}
	d := time.Since(start) / time.Duration(probes*(t.Depth()+1))
	if d <= 0 {
		d = time.Nanosecond
	}
	return d
}

// serve runs the request pool against a counter built on t; stalling
// handlers pause w after every node when w > 0.
func serve(t countnet.Topology, w time.Duration) (countnet.Report, time.Duration, error) {
	ctr, err := countnet.NewCounter(t, countnet.WithDiffraction(8, 3*time.Microsecond))
	if err != nil {
		return countnet.Report{}, 0, err
	}
	mon := countnet.NewMonitor(requests)
	queue := make(chan int, handlers)
	start := time.Now()
	var wg sync.WaitGroup
	for h := 0; h < handlers; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			var pauseFn func()
			if w > 0 && h < int(frac*handlers) {
				pauseFn = func() { busyWait(w) }
			}
			for range queue {
				mon.Observe(func() int64 {
					id, err := ctr.NextInstrumented(0, pauseFn)
					if err != nil {
						panic(err) // impossible: input 0 always exists
					}
					return id
				})
			}
		}(h)
	}
	for r := 0; r < requests; r++ {
		queue <- r
	}
	close(queue)
	wg.Wait()
	return mon.Report(), time.Since(start), nil
}

// busyWait spins to keep microsecond precision (sleep granularity is too
// coarse for the stall we are modeling).
func busyWait(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
