package main

import "testing"

// TestRunSmall drives the producer/consumer pipeline end to end with tiny
// parameters: the exactly-once accounting inside run is the assertion.
func TestRunSmall(t *testing.T) {
	if err := run(2, 2, 20, 8); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsUnevenSplit covers the divisibility guard.
func TestRunRejectsUnevenSplit(t *testing.T) {
	if err := run(2, 3, 5, 8); err == nil {
		t.Fatal("uneven consumer split accepted")
	}
}
