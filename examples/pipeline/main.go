// pipeline: a producer/consumer stage connected by a counting-network FIFO
// buffer — the "FIFO buffers" application of linearizable counting from the
// paper's introduction.
//
// Producers enqueue work items, consumers dequeue and check them off. The
// queue's enqueue and dequeue tickets come from two bitonic counting
// networks, so neither end has a single hot-spot word; every item is
// delivered exactly once. The run also demonstrates what the queue does
// NOT promise without linearizable counting: cross-producer real-time FIFO
// order (items enqueued later can be delivered earlier), which the run
// measures and prints.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"countnet"
)

type item struct {
	producer int
	seq      int
	enqueued time.Duration
}

func main() {
	if err := run(8, 8, 5000, 128); err != nil {
		log.Fatal(err)
	}
}

func run(producers, consumers, perProducer, capacity int) error {
	if producers*perProducer%consumers != 0 {
		return fmt.Errorf("total items %d not divisible by %d consumers",
			producers*perProducer, consumers)
	}
	topo, err := countnet.BitonicTopology(16)
	if err != nil {
		return err
	}
	q, err := countnet.NewQueue[item](topo, capacity)
	if err != nil {
		return err
	}
	total := producers * perProducer
	base := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(item{producer: p, seq: i, enqueued: time.Since(base)})
			}
		}(p)
	}

	type delivery struct {
		it    item
		order int
	}
	deliveries := make([][]delivery, consumers)
	var order int64
	var orderMu sync.Mutex
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			got := make([]delivery, 0, total/consumers)
			for i := 0; i < total/consumers; i++ {
				it := q.Dequeue()
				orderMu.Lock()
				o := order
				order++
				orderMu.Unlock()
				got = append(got, delivery{it: it, order: int(o)})
			}
			deliveries[c] = got
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(base)

	// Exactly-once accounting.
	seen := make(map[[2]int]bool, total)
	perProducerOrder := make([]int, producers) // last seq seen per producer
	for i := range perProducerOrder {
		perProducerOrder[i] = -1
	}
	outOfOrderSameProducer := 0
	for _, got := range deliveries {
		for _, d := range got {
			key := [2]int{d.it.producer, d.it.seq}
			if seen[key] {
				return fmt.Errorf("duplicate delivery %v", key)
			}
			seen[key] = true
		}
	}
	if len(seen) != total {
		return fmt.Errorf("delivered %d of %d items", len(seen), total)
	}
	// Same-producer inversions across the global delivery order.
	byOrder := make([]item, total)
	for _, got := range deliveries {
		for _, d := range got {
			byOrder[d.order] = d.it
		}
	}
	last := make([]int, producers)
	for i := range last {
		last[i] = -1
	}
	for _, it := range byOrder {
		if it.seq < last[it.producer] {
			outOfOrderSameProducer++
		}
		if it.seq > last[it.producer] {
			last[it.producer] = it.seq
		}
	}

	fmt.Printf("pipeline: %d producers -> counting-network queue(cap %d) -> %d consumers\n",
		producers, capacity, consumers)
	fmt.Printf("%d items in %v (%.0f items/s), every item delivered exactly once\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("same-producer order inversions observed: %d (%.3f%%)\n",
		outOfOrderSameProducer, 100*float64(outOfOrderSameProducer)/float64(total))
	fmt.Println("\n(the counting network is quiescently consistent, not linearizable:")
	fmt.Println(" rare inversions under scheduling anomalies are exactly the trade-off")
	fmt.Println(" the paper's c2/c1 measure quantifies)")
	return nil
}
