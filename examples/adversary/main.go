// adversary: the paper's timing measure, end to end on the public API.
//
// The example measures a counting tree's fast per-link time c1, then walks
// two anomaly budgets through the theory:
//
//   - c2/c1 <= 2: linearizable, full stop (Corollary 3.9) — no padding, no
//     separation requirement, regardless of depth.
//   - c2/c1 >  2: violating executions exist (Theorems 4.1/4.3), but any
//     two operations separated by Lemma 3.7's start-start gap stay ordered,
//     and Corollary 3.12's padding restores linearizability at a known
//     depth cost.
//
// It then injects anomalies far beyond both budgets (a GC-scale stall after
// every node for a quarter of the workers) and lets the monitor show that
// violations do occur — and how rare they are.
//
//	go run ./examples/adversary
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"countnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tree, err := countnet.TreeTopology(16)
	if err != nil {
		return err
	}
	ctr, err := countnet.NewCounter(tree)
	if err != nil {
		return err
	}

	// Measure the fast path: per-link time of an uncontended traversal.
	const probes = 2000
	start := time.Now()
	for i := 0; i < probes; i++ {
		ctr.Next()
	}
	c1 := time.Since(start) / time.Duration(probes*tree.Depth())
	if c1 <= 0 {
		c1 = time.Nanosecond
	}
	fmt.Printf("network: %s\n", tree)
	fmt.Printf("measured fast path: c1 ≈ %v per link\n\n", c1)

	for _, k := range []int{2, 4} {
		c2 := time.Duration(k) * c1
		tm := countnet.Timing{C1: int64(c1), C2: int64(c2)}
		fmt.Printf("anomaly budget c2 = %d*c1 = %v (ratio %.1f)\n", k, c2, tm.Ratio())
		if tm.Linearizable() {
			fmt.Println("  theory: linearizable in every execution (Corollary 3.9)")
		} else {
			fmt.Printf("  theory: violations possible; operations separated by > %v stay ordered (Lemma 3.7)\n",
				time.Duration(tm.StartStartGap(tree.Depth())))
			padded, err := tree.Pad(k)
			if err != nil {
				return err
			}
			fmt.Printf("  theory: padding to depth %d restores linearizability (Corollary 3.12)\n",
				padded.Depth())
		}
		fmt.Println()
	}

	// Now blow past any reasonable budget: stall 100µs per node (a ratio
	// in the thousands) for a quarter of the workers.
	const anomaly = 100 * time.Microsecond
	rep, err := anomalyRun(tree, anomaly)
	if err != nil {
		return err
	}
	fmt.Printf("measured with 25%% of workers stalling %v per node: %s\n", anomaly, rep)
	fmt.Println("(as Theorem 4.1 predicts, once the budget is blown the tree's low depth")
	fmt.Println(" gives little padding effect and violations show up in volume)")
	return nil
}

// anomalyRun traverses with a quarter of the workers stalling `extra` per
// node, and reports the observed violations.
func anomalyRun(t countnet.Topology, extra time.Duration) (countnet.Report, error) {
	ctr, err := countnet.NewCounter(t)
	if err != nil {
		return countnet.Report{}, err
	}
	const workersN = 16
	const perWorker = 1500
	mon := countnet.NewMonitor(workersN * perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workersN; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var pauseFn func()
			if w < workersN/4 && extra > 0 {
				pauseFn = func() {
					deadline := time.Now().Add(extra)
					for time.Now().Before(deadline) {
					}
				}
			}
			for i := 0; i < perWorker; i++ {
				mon.Observe(func() int64 {
					v, err := ctr.NextInstrumented(0, pauseFn)
					if err != nil {
						panic(err) // impossible: input 0 always exists
					}
					return v
				})
			}
		}(w)
	}
	wg.Wait()
	return mon.Report(), nil
}
