// loadbalance: striping work across workers with a counting network.
//
// Producers assign each job to a worker queue using a counting-network
// counter modulo the worker count. Because the network's outputs satisfy
// the step property, the assignment is perfectly balanced (within one job
// per worker at every instant) — like a shared round-robin counter, but
// with no single contended location. The example compares the resulting
// distribution and throughput against random assignment and a mutex-guarded
// round-robin.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"countnet"
)

const (
	producers = 16
	workers   = 8
	jobs      = 80000
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topo, err := countnet.BitonicTopology(16)
	if err != nil {
		return err
	}
	ctr, err := countnet.NewCounter(topo)
	if err != nil {
		return err
	}

	netAssign := func(p int, rng *rand.Rand) int { return int(ctr.Next() % workers) }
	var mu sync.Mutex
	var rr int
	mutexAssign := func(p int, rng *rand.Rand) int {
		mu.Lock()
		w := rr % workers
		rr++
		mu.Unlock()
		return w
	}
	randAssign := func(p int, rng *rand.Rand) int { return rng.Intn(workers) }

	for _, c := range []struct {
		name   string
		assign func(int, *rand.Rand) int
	}{
		{"counting network", netAssign},
		{"mutex round-robin", mutexAssign},
		{"random", randAssign},
	} {
		counts, elapsed := distribute(c.assign)
		fmt.Printf("%-18s %v for %d jobs (%.0f jobs/s)\n", c.name,
			elapsed.Round(time.Millisecond), jobs, float64(jobs)/elapsed.Seconds())
		fmt.Printf("%-18s per-worker load: %v (spread %d)\n\n", "", counts, spread(counts))
	}
	return nil
}

// distribute runs the producers and tallies jobs per worker.
func distribute(assign func(int, *rand.Rand) int) ([]int64, time.Duration) {
	counts := make([]atomic.Int64, workers)
	var remaining atomic.Int64
	remaining.Store(jobs)
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for remaining.Add(-1) >= 0 {
				counts[assign(p, rng)].Add(1)
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	out := make([]int64, workers)
	for i := range counts {
		out[i] = counts[i].Load()
	}
	return out, elapsed
}

// spread returns max - min of the per-worker tallies.
func spread(counts []int64) int64 {
	lo, hi := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return hi - lo
}
