package main

import "testing"

// TestRunSmall exercises the full example path — topology construction,
// the MCS-locked counter, and the permutation check — with tiny
// parameters so it runs in milliseconds under `go test ./...`.
func TestRunSmall(t *testing.T) {
	if err := run(2, 50); err != nil {
		t.Fatal(err)
	}
}
