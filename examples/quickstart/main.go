// Quickstart: a counting network as a scalable shared counter.
//
// Eight goroutines draw 1000 values each from a width-8 bitonic counting
// network. The values form an exact permutation of 0..7999 — no duplicates,
// no gaps — without any single hot-spot location.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"countnet"
)

func main() {
	if err := run(8, 1000); err != nil {
		log.Fatal(err)
	}
}

func run(workers, perWorker int) error {
	topo, err := countnet.BitonicTopology(8)
	if err != nil {
		return err
	}
	fmt.Printf("network: %s\n", topo)

	ctr, err := countnet.NewCounter(topo) // MCS-locked toggles, the paper's setup
	if err != nil {
		return err
	}

	start := time.Now()
	var wg sync.WaitGroup
	results := make([][]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := make([]int64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				vals = append(vals, ctr.Next())
			}
			results[w] = vals
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Verify the permutation property.
	total := workers * perWorker
	seen := make([]bool, total)
	for _, vals := range results {
		for _, v := range vals {
			if v < 0 || int(v) >= total || seen[v] {
				return fmt.Errorf("counting broke: value %d", v)
			}
			seen[v] = true
		}
	}
	fmt.Printf("%d goroutines drew %d values in %v (%.0f ops/s): exact permutation of 0..%d\n",
		workers, total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), total-1)
	fmt.Printf("per-output tallies (step property): %v\n", ctr.OutputCounts())
	return nil
}
