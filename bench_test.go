package countnet

// Benchmark harness for the paper's evaluation (Section 5) and the repo's
// ablations. One benchmark family per table/figure:
//
//	BenchmarkFig5NonLinRatio    Figure 5: non-linearizability ratio, F=25%
//	BenchmarkFig6NonLinRatio    Figure 6: non-linearizability ratio, F=50%
//	BenchmarkFig7AvgRatio       Figure 7: average c2/c1 = (Tog+W)/Tog
//	BenchmarkControls           Section 5 controls (zero-violation runs)
//
// Each reports the paper's measured quantity as a custom metric
// (violation percentage `viol%`, average ratio `c2/c1`) alongside the
// simulation cost. The cmd/figures tool prints the same grids as
// paper-shaped tables at full 5000-op scale.
//
// Extension and ablation benches:
//
//	BenchmarkThroughput         real goroutines: networks vs point counters
//	BenchmarkAblationPrism      diffraction on/off on the tree
//	BenchmarkAblationMemory     memory-interference model on/off
//	BenchmarkAblationPadding    Corollary 3.12 padding under an adversary
//	BenchmarkLincheckAlgorithms sweep vs quadratic oracle
//	BenchmarkScheduleEngine     timed executor event throughput
//	BenchmarkConstruct          network construction cost

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"countnet/internal/lincheck"
	"countnet/internal/schedule"
	"countnet/internal/sim"
	"countnet/internal/topo"
	"countnet/internal/workload"
)

// benchOps keeps one simulated iteration around 50-300ms; cmd/figures runs
// the paper's full 5000.
const benchOps = 1500

// figureBench runs the Figures 5/6 grid at the given delayed fraction.
func figureBench(b *testing.B, frac float64) {
	for _, net := range []workload.NetKind{workload.Bitonic, workload.DTree} {
		for _, wait := range workload.PaperWaits {
			for _, n := range workload.PaperProcs {
				spec := workload.Spec{
					Net: net, Width: workload.PaperWidth,
					Procs: n, Ops: benchOps, Frac: frac, Wait: wait, Seed: 1,
				}
				b.Run(fmt.Sprintf("%s/W=%d/n=%d", net, wait, n), func(b *testing.B) {
					var lastRatio float64
					for i := 0; i < b.N; i++ {
						res, err := spec.Run()
						if err != nil {
							b.Fatal(err)
						}
						lastRatio = res.Report.Ratio()
					}
					b.ReportMetric(100*lastRatio, "viol%")
				})
			}
		}
	}
}

func BenchmarkFig5NonLinRatio(b *testing.B) { figureBench(b, 0.25) }

func BenchmarkFig6NonLinRatio(b *testing.B) { figureBench(b, 0.50) }

func BenchmarkFig7AvgRatio(b *testing.B) {
	for _, net := range []workload.NetKind{workload.Bitonic, workload.DTree} {
		for _, frac := range workload.PaperFracs {
			for _, wait := range workload.PaperWaits {
				for _, n := range workload.PaperProcs {
					spec := workload.Spec{
						Net: net, Width: workload.PaperWidth,
						Procs: n, Ops: benchOps, Frac: frac, Wait: wait, Seed: 1,
					}
					b.Run(fmt.Sprintf("%s/F=%.0f%%/W=%d/n=%d", net, 100*frac, wait, n), func(b *testing.B) {
						var ratio float64
						for i := 0; i < b.N; i++ {
							res, err := spec.Run()
							if err != nil {
								b.Fatal(err)
							}
							ratio = res.AvgRatio
						}
						b.ReportMetric(ratio, "c2/c1")
					})
				}
			}
		}
	}
}

func BenchmarkControls(b *testing.B) {
	for _, spec := range workload.ControlGrid(1) {
		spec.Ops = benchOps
		b.Run(spec.String(), func(b *testing.B) {
			var viol int
			for i := 0; i < b.N; i++ {
				res, err := spec.Run()
				if err != nil {
					b.Fatal(err)
				}
				viol = res.Report.NonLinearizable
			}
			b.ReportMetric(float64(viol), "violations")
		})
	}
}

// BenchmarkThroughput compares real-goroutine shared counters: counting
// networks against single-point counters (the networks win once the point
// counter saturates; extension experiment E13).
func BenchmarkThroughput(b *testing.B) {
	mk := func(name string, next func() int64) {
		b.Run(name, func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					next()
				}
			})
		})
	}
	bt, err := BitonicTopology(32)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := TreeTopology(32)
	if err != nil {
		b.Fatal(err)
	}
	bc, err := NewCounter(bt)
	if err != nil {
		b.Fatal(err)
	}
	ba, err := NewCounter(bt, WithBalancer(Atomic))
	if err != nil {
		b.Fatal(err)
	}
	dt, err := NewCounter(tr, WithDiffraction(8, 2*time.Microsecond))
	if err != nil {
		b.Fatal(err)
	}
	dm, err := NewCounter(tr)
	if err != nil {
		b.Fatal(err)
	}
	mk("bitonic32/mcs", bc.Next)
	mk("bitonic32/atomic", ba.Next)
	mk("dtree32/prism", dt.Next)
	mk("dtree32/mcs", dm.Next)

	var mu sync.Mutex
	var c int64
	mk("mutex-counter", func() int64 {
		mu.Lock()
		c++
		v := c
		mu.Unlock()
		return v
	})
}

// BenchmarkAblationPrism isolates the diffraction design choice at full
// contention (256 processors funneling into the tree's single root, no
// injected delays): without prisms every token serializes through the root
// toggle's queue, so the simulated makespan per operation explodes; with
// prisms pairs collide and leave without touching the toggle. Tog alone
// understates this (it averages over all nodes), so the makespan is the
// headline metric.
func BenchmarkAblationPrism(b *testing.B) {
	for _, diffract := range []bool{true, false} {
		b.Run(fmt.Sprintf("diffract=%v", diffract), func(b *testing.B) {
			var tog, cyclesPerOp float64
			for i := 0; i < b.N; i++ {
				g, err := workload.DTree.Build(32)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(sim.Config{
					Net: g, Procs: 256, Ops: benchOps,
					Diffract: diffract, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				tog = res.Tog
				cyclesPerOp = float64(res.Cycles) / float64(len(res.Ops))
			}
			b.ReportMetric(tog, "Tog")
			b.ReportMetric(cyclesPerOp, "simCycles/op")
		})
	}
}

// BenchmarkAblationAdmission compares FIFO (MCS) node admission with a
// barging lock — the implementation choice the paper calls out ("to reduce
// contention on the nodes which would have attenuated the influence of the
// W-waiting periods").
func BenchmarkAblationAdmission(b *testing.B) {
	for _, unfair := range []bool{false, true} {
		name := "fifo-mcs"
		if unfair {
			name = "barging"
		}
		b.Run(name, func(b *testing.B) {
			m := sim.DefaultMachine()
			m.UnfairLocks = unfair
			var p99 int64
			var viol float64
			for i := 0; i < b.N; i++ {
				g, err := workload.Bitonic.Build(32)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(sim.Config{
					Net: g, Procs: 128, Ops: benchOps,
					DelayedFrac: 0.25, Wait: 10000, Seed: 1, Machine: m,
				})
				if err != nil {
					b.Fatal(err)
				}
				p99 = res.Latency.P99
				viol = 100 * res.Report.Ratio()
			}
			b.ReportMetric(float64(p99), "p99-cycles")
			b.ReportMetric(viol, "viol%")
		})
	}
}

// BenchmarkAblationMemory isolates the global memory-interference term of
// the machine model (the knob that reproduces Figure 7's Tog growth).
func BenchmarkAblationMemory(b *testing.B) {
	for _, memCycles := range []int64{0, 380} {
		b.Run(fmt.Sprintf("memCycles=%d", memCycles), func(b *testing.B) {
			m := sim.DefaultMachine()
			m.MemCycles = memCycles
			var tog float64
			for i := 0; i < b.N; i++ {
				g, err := workload.Bitonic.Build(32)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(sim.Config{
					Net: g, Procs: 256, Ops: benchOps,
					DelayedFrac: 0.25, Wait: 100, Seed: 1, Machine: m,
				})
				if err != nil {
					b.Fatal(err)
				}
				tog = res.Tog
			}
			b.ReportMetric(tog, "Tog")
		})
	}
}

// BenchmarkAblationPadding measures the Corollary 3.12 trade: violations
// drop to zero on the padded network while the depth (and so latency) grows.
func BenchmarkAblationPadding(b *testing.B) {
	sc, err := schedule.Tree(8)
	if err != nil {
		b.Fatal(err)
	}
	padded, err := topo.Pad(sc.Graph, sc.Graph.Depth()*(3-2)) // k = 3 covers c2 = 2.5*c1
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		g    *topo.Graph
	}{{"bare", sc.Graph}, {"padded", padded}} {
		b.Run(cfg.name, func(b *testing.B) {
			var viol int
			for i := 0; i < b.N; i++ {
				res, err := schedule.Run(cfg.g, sc.Arrive, sc.Delays, schedule.Options{})
				if err != nil {
					b.Fatal(err)
				}
				viol = res.Report().NonLinearizable
			}
			b.ReportMetric(float64(viol), "violations")
		})
	}
}

// BenchmarkLincheckAlgorithms compares the O(n log n) sweep with the
// quadratic oracle.
func BenchmarkLincheckAlgorithms(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ops := make([]lincheck.Op, 3000)
	for i := range ops {
		s := int64(rng.Intn(100000))
		ops[i] = lincheck.Op{Start: s, End: s + int64(rng.Intn(3000)), Value: int64(rng.Intn(50000))}
	}
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lincheck.Analyze(ops)
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lincheck.AnalyzeBrute(ops)
		}
	})
}

// BenchmarkScheduleEngine measures the timed executor itself.
func BenchmarkScheduleEngine(b *testing.B) {
	g, err := workload.Bitonic.Build(32)
	if err != nil {
		b.Fatal(err)
	}
	arr := make([]schedule.Arrival, 2000)
	for k := range arr {
		arr[k] = schedule.Arrival{Time: int64(k % 499), Input: k % 32}
	}
	d := schedule.UniformRandom(10, 20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schedule.Run(g, arr, d, schedule.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConstruct measures building the networks themselves.
func BenchmarkConstruct(b *testing.B) {
	for _, kind := range []workload.NetKind{workload.Bitonic, workload.Periodic, workload.DTree} {
		for _, w := range []int{32, 256} {
			b.Run(fmt.Sprintf("%s/%d", kind, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := kind.Build(w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLinearizableFilter quantifies the price of guaranteed
// linearizability (the Herlihy-Shavit-Waarts-style waiting filter) against
// the bare counting network — the trade-off at the heart of the paper.
func BenchmarkLinearizableFilter(b *testing.B) {
	tp, err := TreeTopology(32)
	if err != nil {
		b.Fatal(err)
	}
	bare, err := NewCounter(tp, WithDiffraction(8, 2*time.Microsecond))
	if err != nil {
		b.Fatal(err)
	}
	filtered, err := NewLinearizableCounter(tp, WithDiffraction(8, 2*time.Microsecond))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bare", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				bare.Next()
			}
		})
	})
	b.Run("filtered", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				filtered.Next()
			}
		})
	})
}
