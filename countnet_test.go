package countnet

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTopologies(t *testing.T) {
	cases := []struct {
		name       string
		mk         func(int) (Topology, error)
		width      int
		depth, inW int
	}{
		{"bitonic", BitonicTopology, 8, 6, 8},
		{"periodic", PeriodicTopology, 8, 9, 8},
		{"tree", TreeTopology, 8, 3, 1},
	}
	for _, c := range cases {
		tp, err := c.mk(c.width)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !tp.Valid() || !tp.Uniform() {
			t.Errorf("%s: valid=%v uniform=%v", c.name, tp.Valid(), tp.Uniform())
		}
		if tp.Depth() != c.depth || tp.Width() != c.width || tp.InWidth() != c.inW {
			t.Errorf("%s: depth=%d width=%d in=%d", c.name, tp.Depth(), tp.Width(), tp.InWidth())
		}
		if tp.Balancers() == 0 {
			t.Errorf("%s: no balancers", c.name)
		}
		if !strings.Contains(tp.String(), "uniform") {
			t.Errorf("%s: String() = %q", c.name, tp.String())
		}
		if !strings.Contains(tp.Dot(c.name), "digraph") {
			t.Errorf("%s: Dot output malformed", c.name)
		}
	}
	for _, w := range []int{0, 1, 3, 12} {
		if _, err := BitonicTopology(w); err == nil {
			t.Errorf("BitonicTopology(%d) accepted", w)
		}
	}
}

func TestZeroTopology(t *testing.T) {
	var tp Topology
	if tp.Valid() {
		t.Error("zero Topology claims valid")
	}
	if _, err := NewCounter(tp); err == nil {
		t.Error("NewCounter accepted zero Topology")
	}
	if _, err := tp.Pad(3); err == nil {
		t.Error("Pad accepted zero Topology")
	}
	if !strings.Contains(tp.String(), "zero") {
		t.Errorf("String() = %q", tp.String())
	}
}

func TestPadDepth(t *testing.T) {
	tp, err := TreeTopology(8) // depth 3
	if err != nil {
		t.Fatal(err)
	}
	padded, err := tp.Pad(4) // k=4: prefix 3*(4-2)=6, depth 3*(4-1)=9
	if err != nil {
		t.Fatal(err)
	}
	if padded.Depth() != 9 {
		t.Errorf("padded depth = %d, want 9", padded.Depth())
	}
	same, err := tp.Pad(2)
	if err != nil {
		t.Fatal(err)
	}
	if same.Depth() != tp.Depth() {
		t.Errorf("Pad(2) changed depth to %d", same.Depth())
	}
}

func TestCounterImplementations(t *testing.T) {
	tp, err := BitonicTopology(4)
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string][]CounterOption{
		"default-mcs": nil,
		"mutex":       {WithBalancer(Mutex)},
		"atomic":      {WithBalancer(Atomic)},
	} {
		ctr, err := NewCounter(tp, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkCounter(t, name, ctr, 8, 250)
	}
	if _, err := NewCounter(tp, WithBalancer(BalancerImpl(9))); err == nil {
		t.Error("unknown implementation accepted")
	}
}

func TestDiffractingTreeCounter(t *testing.T) {
	tp, err := TreeTopology(8)
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := NewCounter(tp, WithDiffraction(4, 3*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	checkCounter(t, "diffracting-tree", ctr, 8, 250)
}

// checkCounter draws values from several goroutines and verifies the
// permutation property and quiescent step property.
func checkCounter(t *testing.T, name string, ctr *Counter, workers, perWorker int) {
	t.Helper()
	var wg sync.WaitGroup
	results := make([][]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := make([]int64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				vals = append(vals, ctr.Next())
			}
			results[w] = vals
		}(w)
	}
	wg.Wait()
	total := workers * perWorker
	seen := make([]bool, total)
	for _, vals := range results {
		for _, v := range vals {
			if v < 0 || int(v) >= total || seen[v] {
				t.Fatalf("%s: bad or duplicate value %d", name, v)
			}
			seen[v] = true
		}
	}
	counts := ctr.OutputCounts()
	for i := 1; i < len(counts); i++ {
		d := counts[i-1] - counts[i]
		if d < 0 || d > 1 {
			t.Fatalf("%s: counter counts %v violate step property", name, counts)
		}
	}
}

func TestNextAt(t *testing.T) {
	tp, err := BitonicTopology(4)
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := NewCounter(tp)
	if err != nil {
		t.Fatal(err)
	}
	if ctr.InWidth() != 4 {
		t.Fatalf("InWidth = %d", ctr.InWidth())
	}
	for k := 0; k < 8; k++ {
		v, err := ctr.NextAt(k % 4)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(k) {
			t.Errorf("sequential NextAt %d = %d", k, v)
		}
	}
	if _, err := ctr.NextAt(-1); err == nil {
		t.Error("NextAt(-1) accepted")
	}
	if _, err := ctr.NextAt(4); err == nil {
		t.Error("NextAt(width) accepted")
	}
}

func TestMonitor(t *testing.T) {
	tp, err := TreeTopology(4)
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := NewCounter(tp)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(100)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				m.Observe(ctr.Next)
			}
		}()
	}
	wg.Wait()
	if m.Len() != 100 {
		t.Fatalf("observed %d ops", m.Len())
	}
	rep := m.Report()
	if rep.Total != 100 {
		t.Errorf("report total %d", rep.Total)
	}
	if len(m.Ops()) != 100 {
		t.Errorf("Ops len %d", len(m.Ops()))
	}
}

func TestTimingAlias(t *testing.T) {
	tm := Timing{C1: 100, C2: 200}
	if !tm.Linearizable() {
		t.Error("2*c1 bound not recognized through the alias")
	}
	if AnalyzeOps([]Op{{Start: 0, End: 1, Value: 1}, {Start: 2, End: 3, Value: 0}}).NonLinearizable != 1 {
		t.Error("AnalyzeOps missed an inversion")
	}
}
