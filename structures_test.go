package countnet

import (
	"sync"
	"testing"
	"time"
)

func TestQueueEndToEnd(t *testing.T) {
	tp, err := BitonicTopology(8)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue[int](tp, 32)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 32 {
		t.Fatalf("Cap = %d", q.Cap())
	}
	const producers = 4
	const perProducer = 1000
	total := producers * perProducer
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(p*perProducer + i)
			}
		}(p)
	}
	seen := make([]bool, total)
	var mu sync.Mutex
	for c := 0; c < producers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := q.Dequeue()
				mu.Lock()
				if v < 0 || v >= total || seen[v] {
					t.Errorf("lost or duplicated %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestQueueValidation(t *testing.T) {
	if _, err := NewQueue[int](Topology{}, 4); err == nil {
		t.Error("zero topology accepted")
	}
	tp, err := TreeTopology(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewQueue[int](tp, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewQueue[int](tp, 4, WithBalancer(BalancerImpl(42))); err == nil {
		t.Error("bad balancer impl accepted")
	}
}

func TestStackEndToEnd(t *testing.T) {
	s := NewStack[string](4, 20*time.Microsecond)
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop on empty succeeded")
	}
	s.Push("a")
	s.Push("b")
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if v, ok := s.Pop(); !ok || v != "b" {
		t.Fatalf("Pop = %q,%v", v, ok)
	}
	if v, ok := s.Pop(); !ok || v != "a" {
		t.Fatalf("Pop = %q,%v", v, ok)
	}
	if s.Eliminated() < 0 {
		t.Fatal("negative elimination count")
	}
}

func TestTreeTopologyArity(t *testing.T) {
	tp, err := TreeTopologyArity(27, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Depth() != 3 || tp.Width() != 27 {
		t.Fatalf("depth=%d width=%d", tp.Depth(), tp.Width())
	}
	ctr, err := NewCounter(tp)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 30; k++ {
		if v := ctr.Next(); v != int64(k) {
			t.Fatalf("sequential value %d != %d", v, k)
		}
	}
	if _, err := TreeTopologyArity(10, 3); err == nil {
		t.Error("bad width accepted")
	}
}

func TestChannelCounter(t *testing.T) {
	tp, err := TreeTopology(8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChannelCounter(tp, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for k := 0; k < 20; k++ {
		v, err := c.NextAt(0)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(k) {
			t.Fatalf("sequential value %d != %d", v, k)
		}
	}
	if _, err := NewChannelCounter(Topology{}, 0); err == nil {
		t.Error("zero topology accepted")
	}
}

func TestChannelCounterConcurrent(t *testing.T) {
	tp, err := BitonicTopology(4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChannelCounter(tp, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const workers = 4
	const perWorker = 200
	seen := make([]bool, workers*perWorker)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v, err := c.NextAt(w % 4)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if v < 0 || int(v) >= len(seen) || seen[v] {
					t.Errorf("bad value %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
}

func TestLinearizableCounter(t *testing.T) {
	tp, err := TreeTopology(8)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := NewLinearizableCounter(tp)
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(800)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				mon.Observe(lc.Next)
			}
		}()
	}
	wg.Wait()
	if rep := mon.Report(); !rep.Linearizable() {
		t.Errorf("linearizable counter violated: %v", rep)
	}
	if _, err := lc.NextAt(99); err == nil {
		t.Error("bad input accepted")
	}
	if _, err := NewLinearizableCounter(Topology{}); err == nil {
		t.Error("zero topology accepted")
	}
}
