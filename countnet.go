// Package countnet implements counting networks — bitonic networks,
// periodic networks, and counting (diffracting) trees — together with the
// timing-based linearizability theory of Lynch, Shavit, Shvartsman, and
// Touitou, "Counting Networks are Practically Linearizable" (PODC 1996).
//
// A counting network is a low-contention concurrent counter: tokens enter a
// network of balancers and leave with globally consistent values, with no
// central hot spot. Counting networks guarantee the quiescent step property
// but not linearizability: an operation can return a smaller value than an
// operation that finished before it started. The paper's contribution,
// exposed here as the Timing measure, is that the ratio c2/c1 between the
// longest and shortest link-traversal times bounds when that can happen:
//
//   - c2 <= 2*c1: every uniform counting network is linearizable
//     (use Timing.Linearizable).
//   - c2 = k*c1, k > 2: operations separated by more than
//     Timing.StartStartGap are still ordered, and Topology.Pad buys full
//     linearizability back with h*(k-2) prefix balancers per input.
//
// Construct a Topology, compile it into a Counter, and draw values from
// any number of goroutines:
//
//	topo, _ := countnet.BitonicTopology(8)
//	ctr, _ := countnet.NewCounter(topo)
//	v := ctr.Next()
//
// Use Monitor to check real executions for linearizability violations, and
// see the internal packages (via the cmd tools and benchmarks) for the
// paper's simulator-based evaluation.
package countnet

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"countnet/internal/bitonic"
	"countnet/internal/core"
	"countnet/internal/dtree"
	"countnet/internal/lincheck"
	"countnet/internal/periodic"
	"countnet/internal/shm"
	"countnet/internal/topo"
)

// errZeroTopology reports use of the zero Topology value.
var errZeroTopology = errors.New("countnet: zero Topology")

// Topology is an immutable balancing-network layout.
type Topology struct {
	g *topo.Graph
}

// BitonicTopology returns the Aspnes-Herlihy-Shavit bitonic counting
// network of width w (a power of two >= 2), depth log2(w)*(log2(w)+1)/2.
func BitonicTopology(w int) (Topology, error) {
	g, err := bitonic.New(w)
	if err != nil {
		return Topology{}, err
	}
	return Topology{g: g}, nil
}

// PeriodicTopology returns the Aspnes-Herlihy-Shavit periodic counting
// network of width w (a power of two >= 2), depth log2(w)^2.
func PeriodicTopology(w int) (Topology, error) {
	g, err := periodic.New(w)
	if err != nil {
		return Topology{}, err
	}
	return Topology{g: g}, nil
}

// TreeTopology returns the Shavit-Zemach counting tree with w leaves (a
// power of two >= 2), depth log2(w), with a single input at the root.
func TreeTopology(w int) (Topology, error) {
	g, err := dtree.New(w)
	if err != nil {
		return Topology{}, err
	}
	return Topology{g: g}, nil
}

// TreeTopologyArity returns a counting tree of 1-input arity-output
// balancers with w leaves (w a positive power of arity >= 2), depth
// log_arity(w). Higher arity trades per-node fan-out for depth — the knob
// the Theorem 3.6 padding effect depends on.
func TreeTopologyArity(w, arity int) (Topology, error) {
	g, err := dtree.NewArity(w, arity)
	if err != nil {
		return Topology{}, err
	}
	return Topology{g: g}, nil
}

// Valid reports whether the topology was produced by a constructor.
func (t Topology) Valid() bool { return t.g != nil }

// InWidth returns the number of network inputs.
func (t Topology) InWidth() int { return t.g.InWidth() }

// Width returns the number of output counters (the network width w).
func (t Topology) Width() int { return t.g.OutWidth() }

// Depth returns the number of links on every input-to-counter path.
func (t Topology) Depth() int { return t.g.Depth() }

// Uniform reports whether all input-to-output paths have equal length
// (Definition 2.1 of the paper); all built-in constructions are uniform.
func (t Topology) Uniform() bool { return t.g.Uniform() }

// Balancers returns the number of balancing nodes.
func (t Topology) Balancers() int { return t.g.NumBalancers() }

// Pad returns the Corollary 3.12 transform of t for a known timing-ratio
// bound k (c2 <= k*c1): each input is prefixed with Depth()*(k-2)
// pass-through balancers, making every pair of non-overlapping operations
// ordered under any schedule respecting the bound. k <= 2 returns an
// identical copy (no padding is needed).
func (t Topology) Pad(k int) (Topology, error) {
	if !t.Valid() {
		return Topology{}, errZeroTopology
	}
	g, err := topo.Pad(t.g, core.PaddingLength(t.g.Depth(), k))
	if err != nil {
		return Topology{}, err
	}
	return Topology{g: g}, nil
}

// Dot renders the network in Graphviz format.
func (t Topology) Dot(name string) string { return topo.Dot(t.g, name) }

// String summarizes the topology.
func (t Topology) String() string {
	if !t.Valid() {
		return "countnet.Topology(zero)"
	}
	return topo.Summary(t.g)
}

// Graph exposes the underlying graph to the internal engines (tests,
// benchmarks, and cmd tools within this module).
func (t Topology) Graph() *topo.Graph { return t.g }

// BalancerImpl selects the toggle implementation of a Counter.
type BalancerImpl int

// Toggle implementations for NewCounter.
const (
	// MCS protects each toggle with a Mellor-Crummey-Scott queue lock,
	// the implementation evaluated in the paper.
	MCS BalancerImpl = iota + 1
	// Mutex protects each toggle with a sync.Mutex.
	Mutex
	// Atomic implements each balancer with one atomic fetch-and-add.
	Atomic
)

// CounterOption configures NewCounter.
type CounterOption func(*counterConfig)

type counterConfig struct {
	impl     BalancerImpl
	diffract bool
	prismW   int
	window   time.Duration
}

// WithBalancer selects the toggle implementation (default MCS).
func WithBalancer(impl BalancerImpl) CounterOption {
	return func(c *counterConfig) { c.impl = impl }
}

// WithDiffraction wraps every two-output balancer with a prism of the given
// width in which concurrent tokens collide and skip the toggle; window is
// how long a token waits for a partner. Use with TreeTopology for a
// diffracting tree.
func WithDiffraction(prismWidth int, window time.Duration) CounterOption {
	return func(c *counterConfig) {
		c.diffract = true
		c.prismW = prismWidth
		c.window = window
	}
}

// Counter is a concurrent shared counter backed by a counting network. All
// methods are safe for concurrent use by any number of goroutines.
type Counter struct {
	net  *shm.Network
	next atomic.Int64
}

// NewCounter compiles the topology into a runnable concurrent counter.
func NewCounter(t Topology, opts ...CounterOption) (*Counter, error) {
	if !t.Valid() {
		return nil, errZeroTopology
	}
	shmOpts, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	net, err := shm.Compile(t.g, shmOpts)
	if err != nil {
		return nil, err
	}
	return &Counter{net: net}, nil
}

// Next draws the next value, entering the network on round-robin inputs.
// Values across all goroutines form a permutation of 0, 1, 2, ...; see the
// package comment for the exact ordering guarantees.
func (c *Counter) Next() int64 {
	in := int(c.next.Add(1)-1) % c.net.InWidth()
	if in < 0 {
		in += c.net.InWidth()
	}
	return c.net.Traverse(in)
}

// NextAt draws the next value entering at a specific network input, which
// callers can use to pin goroutines to inputs (lower contention than the
// shared round-robin cursor).
func (c *Counter) NextAt(input int) (int64, error) {
	if input < 0 || input >= c.net.InWidth() {
		return 0, fmt.Errorf("countnet: input %d out of range [0,%d)", input, c.net.InWidth())
	}
	return c.net.Traverse(input), nil
}

// NextInstrumented draws a value entering at input and calls afterNode
// after every node transition (balancers and the final counter). It exists
// for timing experiments: pausing in afterNode reproduces the paper's
// "wait W after traversing a node" anomaly exactly, which is what turns a
// counting network's weak ordering into observable linearizability
// violations.
func (c *Counter) NextInstrumented(input int, afterNode func()) (int64, error) {
	if input < 0 || input >= c.net.InWidth() {
		return 0, fmt.Errorf("countnet: input %d out of range [0,%d)", input, c.net.InWidth())
	}
	if afterNode == nil {
		return c.net.Traverse(input), nil
	}
	return c.net.TraverseHook(input, func(topo.NodeID) { afterNode() }), nil
}

// InWidth returns the number of network inputs accepted by NextAt.
func (c *Counter) InWidth() int { return c.net.InWidth() }

// OutputCounts returns how many values each output counter has handed out;
// in a quiescent state they satisfy the step property.
func (c *Counter) OutputCounts() []int64 { return c.net.CounterCounts() }

// Timing is the paper's measure: bounds [C1, C2] on link-traversal time.
// See internal/core for the full derivations.
type Timing = core.Timing

// Report is a linearizability analysis (Definition 2.4 of the paper).
type Report = lincheck.Report

// AnalyzeOps computes the non-linearizability report of a recorded
// execution.
func AnalyzeOps(ops []Op) Report { return lincheck.Analyze(ops) }

// Op is one timed counting operation.
type Op = lincheck.Op

// Monitor timestamps operations against the monotonic clock and reports
// linearizability violations, the real-time analogue of the paper's
// simulator instrumentation.
type Monitor struct {
	rec  *lincheck.Recorder
	base time.Time
}

// NewMonitor returns a Monitor expecting about n operations.
func NewMonitor(n int) *Monitor {
	return &Monitor{rec: lincheck.NewRecorder(n), base: time.Now()}
}

// Observe times fn and records its returned value as one operation. Safe
// for concurrent use.
func (m *Monitor) Observe(fn func() int64) int64 {
	start := time.Since(m.base)
	v := fn()
	end := time.Since(m.base)
	m.rec.Record(int64(start), int64(end), v)
	return v
}

// Len returns the number of observed operations.
func (m *Monitor) Len() int { return m.rec.Len() }

// Report analyzes everything observed so far.
func (m *Monitor) Report() Report { return m.rec.Analyze() }

// Ops returns a copy of the observed operations.
func (m *Monitor) Ops() []Op { return m.rec.Ops() }
