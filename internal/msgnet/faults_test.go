package msgnet

import (
	"bytes"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"countnet/internal/bitonic"
	"countnet/internal/faults"
	"countnet/internal/obs"
	"countnet/internal/topo"
)

// startFaulty launches g under the given plan and registers cleanup.
func startFaulty(t *testing.T, g *topo.Graph, p *faults.Plan, m *obs.Registry) *Network {
	t.Helper()
	n, err := StartOpts(g, Options{Buffer: 1, Faults: p, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

// runAll drives ops concurrent traversals across every input and returns
// the sorted counter values.
func runAll(t *testing.T, n *Network, g *topo.Graph, ops int) []int64 {
	t.Helper()
	vals := make([]int64, ops)
	var wg sync.WaitGroup
	for k := 0; k < ops; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := n.Traverse(k % g.InWidth())
			if err != nil {
				t.Error(err)
				return
			}
			vals[k] = v
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// requirePermutation asserts the values are exactly 0..ops-1: every faulted
// traversal produced exactly one counter value, none lost, none doubled.
func requirePermutation(t *testing.T, vals []int64) {
	t.Helper()
	for i, v := range vals {
		if v != int64(i) {
			t.Fatalf("value[%d] = %d, want %d (gap or duplicate under faults)", i, v, i)
		}
	}
}

// TestHeavyChaosPermutation hits every fault kind at once — drops, dups,
// reordering, jittered delays, a partition, a crash window, and a stall —
// and requires the network to still hand out a gapless permutation.
func TestHeavyChaosPermutation(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	links := NumLinks(g)
	plan := &faults.Plan{
		Seed:    42,
		Default: faults.Rule{Drop: 0.3, Dup: 0.2, Reorder: 0.2, DelayNs: 500, JitterNs: 2_000},
		Links: []faults.LinkRule{
			{Link: 0, Rule: faults.Rule{Drop: 0.9, Dup: 0.5}},
		},
		Partitions: []faults.Partition{
			{Links: []int{1, 2, links - 1}, From: 5, To: 40},
		},
		Stalls: []faults.Stall{
			{Node: 0, From: 3, To: 30, Crash: true},
			{Node: int(g.NumNodes()) - 1, From: 0, To: 50, PauseNs: 1_000},
		},
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	n := startFaulty(t, g, plan, nil)
	const ops = 300
	requirePermutation(t, runAll(t, n, g, ops))
	if n.Faults() == nil {
		t.Fatal("active plan but nil injector")
	}
	if n.Faults().Stats().Faults() == 0 {
		t.Error("heavy chaos plan injected zero faults")
	}
}

// TestCertainDropStillDelivers sets Drop = 1.0 on every link: only the
// MaxAttempts forced-delivery valve can ever let a token through, so this
// is the liveness test for the retry loop.
func TestCertainDropStillDelivers(t *testing.T) {
	g, err := bitonic.New(2)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Seed: 7, Default: faults.Rule{Drop: 1}}
	n := startFaulty(t, g, plan, nil)
	requirePermutation(t, runAll(t, n, g, 40))
	st := n.Faults().Stats()
	if st.Forced == 0 {
		t.Error("drop=1.0 run recorded no forced deliveries")
	}
	if n.Retries() == 0 {
		t.Error("drop=1.0 run recorded no retries")
	}
}

// TestCertainDupIsDeduplicated sets Dup = 1.0: every hop delivers twice,
// and only receiver-side dedup keeps the count gapless.
func TestCertainDupIsDeduplicated(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Seed: 11, Default: faults.Rule{Dup: 1}}
	n := startFaulty(t, g, plan, nil)
	requirePermutation(t, runAll(t, n, g, 100))
	if n.Dedups() == 0 {
		t.Error("dup=1.0 run suppressed no duplicates")
	}
}

// TestInactivePlanZeroOverhead: a plan with no faults must leave the
// engine on the fault-free path (no injector, no token ids).
func TestInactivePlanZeroOverhead(t *testing.T) {
	g, err := bitonic.New(2)
	if err != nil {
		t.Fatal(err)
	}
	n := startFaulty(t, g, &faults.Plan{Seed: 9}, nil)
	if n.Faults() != nil {
		t.Fatal("inactive plan built an injector")
	}
	requirePermutation(t, runAll(t, n, g, 20))
}

// TestInvalidPlanRejected: StartOpts must refuse a plan that fails
// validation instead of running it.
func TestInvalidPlanRejected(t *testing.T) {
	g, err := bitonic.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StartOpts(g, Options{Faults: &faults.Plan{Default: faults.Rule{Drop: 1.5}}}); err == nil {
		t.Error("invalid plan accepted")
	}
}

// TestFaultMetricsRegistered checks the fault metric family appears on the
// registry and reflects the run.
func TestFaultMetricsRegistered(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewRegistry()
	plan := &faults.Plan{Seed: 3, Default: faults.Rule{Drop: 0.5, Dup: 0.3, DelayNs: 200}}
	n := startFaulty(t, g, plan, m)
	requirePermutation(t, runAll(t, n, g, 120))
	var buf bytes.Buffer
	m.WriteText(&buf)
	text := buf.String()
	for _, name := range []string{
		"msgnet_fault_drops_total", "msgnet_fault_dups_total",
		"msgnet_fault_delays_total", "msgnet_fault_forced_total",
		"msgnet_retries_total", "msgnet_dedup_total", "msgnet_retry_wait_ns",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s not registered", name)
		}
	}
	if n.Faults().Stats().Drops == 0 {
		t.Error("drop tally stayed zero under drop=0.5")
	}
}

// TestNumLinks checks the link numbering covers inputs plus every output
// port exactly once.
func TestNumLinks(t *testing.T) {
	g, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	want := g.InWidth()
	for id := 0; id < g.NumNodes(); id++ {
		want += g.FanOut(topo.NodeID(id))
	}
	if got := NumLinks(g); got != want {
		t.Fatalf("NumLinks = %d, want %d", got, want)
	}
	base, dests := linkTables(g)
	if len(dests) != want {
		t.Fatalf("linkTables dests = %d links, want %d", len(dests), want)
	}
	for id := 0; id < g.NumNodes(); id++ {
		for p := 0; p < g.FanOut(topo.NodeID(id)); p++ {
			l := base[id] + p
			if dests[l] != int(g.OutDest(topo.NodeID(id), p).Node) {
				t.Fatalf("link %d dest = %d, want %d", l, dests[l],
					g.OutDest(topo.NodeID(id), p).Node)
			}
		}
	}
}

// TestCloseUnderFaults: Close during a chaos run must terminate every
// node and courier goroutine (the test would hang or leak otherwise).
func TestCloseUnderFaults(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Seed: 5, Default: faults.Rule{Drop: 0.6, Dup: 0.6, Reorder: 0.6, DelayNs: 5_000}}
	n, err := StartOpts(g, Options{Buffer: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for k := 0; k < 32; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = n.Traverse(k % g.InWidth())
		}()
	}
	time.Sleep(2 * time.Millisecond)
	n.Close()
	wg.Wait() // every Traverse must return (value or closed error)
}
