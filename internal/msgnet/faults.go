package msgnet

// Fault wiring for the message-passing engine: link numbering, the
// retrying send path, and asynchronous (duplicate / reordered) delivery.
//
// Links are numbered deterministically from the topology alone, so a
// faults.Plan written for a graph applies identically across runs and
// processes: network input i is link i, and output port p of node id is
// link InWidth + offset(id) + p, where offset is the running sum of
// fan-outs over the nodes before id. Counter replies are not links —
// the model injects faults on the wires between balancers, not on the
// final hand-back to the requesting processor.
//
// A Drop verdict is handled entirely at the sender: the message was
// "lost", so the sender pauses for a capped exponential backoff
// (backoff.Exp) and retransmits. Retransmission is idempotent because
// every token carries a unique id and each node deduplicates arrivals,
// so a duplicate produced by a Dup verdict — or by any future
// retransmit-after-successful-delivery policy — cannot double-count or
// double-reply.

import (
	"time"

	"countnet/internal/faults"
	"countnet/internal/obs"
	"countnet/internal/shm/backoff"
	"countnet/internal/topo"
)

// Retry policy of the faulty send path: backoff.Exp(retryBase, retryCap,
// attempt) between retransmissions. The cap keeps the worst-case wait per
// hop at retryCap * faults.MaxAttempts, well under a millisecond.
const (
	retryBase = 2 * time.Microsecond
	retryCap  = 256 * time.Microsecond
)

// reorderHold is how long an async reordered delivery is held back so
// later sends on the same link can overtake it.
const reorderHold = 10 * time.Microsecond

// NumLinks returns the number of fault-injectable links in g: one per
// network input plus one per node output port. faults.Plan link ids for
// this engine lie in [0, NumLinks(g)).
func NumLinks(g *topo.Graph) int {
	n := g.InWidth()
	for id := 0; id < g.NumNodes(); id++ {
		n += g.FanOut(topo.NodeID(id))
	}
	return n
}

// linkTables computes the link numbering for g: base[id] is the link id
// of node id's output port 0, and dests[l] is the node link l delivers
// into (the injector's per-node clock index).
func linkTables(g *topo.Graph) (base []int, dests []int) {
	dests = make([]int, 0, NumLinks(g))
	for i := 0; i < g.InWidth(); i++ {
		dests = append(dests, int(g.Input(i).Node))
	}
	base = make([]int, g.NumNodes())
	for id := 0; id < g.NumNodes(); id++ {
		base[id] = len(dests)
		for p := 0; p < g.FanOut(topo.NodeID(id)); p++ {
			dests = append(dests, int(g.OutDest(topo.NodeID(id), p).Node))
		}
	}
	return base, dests
}

// forward delivers t into dest over the numbered link, consulting the
// injector when one is active. It returns false when the network stopped
// before delivery. Fault-free networks take the two-case select and
// nothing else.
func (n *Network) forward(link int, dest chan token, t token) bool {
	if n.inj == nil {
		select {
		case dest <- t:
			return true
		case <-n.stop:
			return false
		}
	}
	for attempt := 0; ; attempt++ {
		v := n.inj.Next(link, attempt)
		if v.Forced {
			// The liveness valve overrode a loss: the network is degraded
			// enough that a plan exhausted MaxAttempts, which is exactly
			// the moment a black box should preserve.
			if f := n.flight; f != nil {
				f.Trip("liveness-valve")
			}
		}
		if v.Drop {
			// Lost on the wire: back off and retransmit. The injector
			// guarantees at most faults.MaxAttempts consecutive drops.
			n.retries.Add(1)
			d := backoff.Exp(retryBase, retryCap, attempt)
			if o := n.obs; o != nil && o.retry != nil {
				o.retry.Observe(int64(d))
			}
			backoff.Pause(d)
			if o := n.obs; o != nil && o.tr != nil {
				// The retry is a causal hop of its own: Dur is the backoff
				// pause, Node the destination the token is stuck short of,
				// Value the link id. Chaining t.span through it makes storms
				// legible as span runs in the dump.
				sp := o.spans.Tick()
				o.tr.Record(obs.Event{T: o.clock(), Dur: int64(d), Kind: obs.KindRetry,
					P: t.proc, Tok: t.tok, Node: int32(n.inj.Dest(link)), Value: int64(link),
					Span: sp, Parent: t.span})
				t.span = sp
			}
			select {
			case <-n.stop:
				return false
			default:
			}
			continue
		}
		if v.DelayNs > 0 {
			// Link latency and stall pauses block the sender: a slow wire
			// is head-of-line blocking, not a free-running buffer.
			backoff.Pause(time.Duration(v.DelayNs))
		}
		if v.Dup {
			n.deliverAsync(dest, t, 0)
		}
		if v.Reorder {
			// Hand the token to a held-back courier and return: sends the
			// node issues next can overtake this one.
			n.deliverAsync(dest, t, reorderHold)
			return true
		}
		select {
		case dest <- t:
			return true
		case <-n.stop:
			return false
		}
	}
}

// deliverAsync delivers a copy of t from its own goroutine after an
// optional hold. The goroutine is tracked by n.done so Close still waits
// for every in-flight delivery attempt, and it aborts on n.stop.
func (n *Network) deliverAsync(dest chan token, t token, hold time.Duration) {
	n.done.Add(1)
	go func() {
		defer n.done.Done()
		if hold > 0 {
			backoff.Pause(hold)
		}
		select {
		case dest <- t:
		case <-n.stop:
		}
	}()
}

// Faults returns the live fault injector, or nil when the network runs
// fault-free.
func (n *Network) Faults() *faults.Injector { return n.inj }

// Retries returns how many hop retransmissions the send paths have
// performed (zero on a fault-free network).
func (n *Network) Retries() int64 { return n.retries.Load() }

// Dedups returns how many duplicate token arrivals receivers have
// suppressed (zero on a fault-free network).
func (n *Network) Dedups() int64 { return n.dedups.Load() }

// registerFaultMetrics exposes the injector's tallies and the engine's
// retry/dedup counters on the registry. Everything is a GaugeFunc over
// an atomic, so the hot paths never touch the registry.
func registerFaultMetrics(m *obs.Registry, n *Network) {
	in := n.inj
	m.GaugeFunc("msgnet_fault_drops_total", func() float64 { return float64(in.Stats().Drops) })
	m.GaugeFunc("msgnet_fault_dups_total", func() float64 { return float64(in.Stats().Dups) })
	m.GaugeFunc("msgnet_fault_delays_total", func() float64 { return float64(in.Stats().Delays) })
	m.GaugeFunc("msgnet_fault_reorders_total", func() float64 { return float64(in.Stats().Reorders) })
	m.GaugeFunc("msgnet_fault_partition_drops_total", func() float64 { return float64(in.Stats().PartitionDrops) })
	m.GaugeFunc("msgnet_fault_crash_drops_total", func() float64 { return float64(in.Stats().CrashDrops) })
	m.GaugeFunc("msgnet_fault_stalls_total", func() float64 { return float64(in.Stats().Stalled) })
	m.GaugeFunc("msgnet_fault_forced_total", func() float64 { return float64(in.Stats().Forced) })
	m.GaugeFunc("msgnet_retries_total", func() float64 { return float64(n.retries.Load()) })
	m.GaugeFunc("msgnet_dedup_total", func() float64 { return float64(n.dedups.Load()) })
}
