package msgnet

import (
	"sort"
	"sync"
	"testing"

	"countnet/internal/bitonic"
	"countnet/internal/obs"
)

// TestTracedTraversals runs concurrent traced traversals and checks the
// trace records every token's enter, per-hop balancer events, counter
// event, and exit, with exit values forming a permutation.
func TestTracedTraversals(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(8, 1<<13)
	reg := obs.NewRegistry()
	n, err := StartOpts(g, Options{Buffer: 1, Tracer: ring, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	const workers, per = 8, 25
	const ops = workers * per
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tok := int32(w*per + i)
				if _, err := n.TraverseObs(w%g.InWidth(), int32(w), tok); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	events := ring.Events()
	counts := map[obs.Kind]int{}
	var values []int64
	perTok := map[int32]int{}
	for _, ev := range events {
		counts[ev.Kind]++
		if ev.Kind == obs.KindBalancer {
			if ev.Dur < 0 {
				t.Fatalf("negative hop wait: %+v", ev)
			}
			perTok[ev.Tok]++
		}
		if ev.Kind == obs.KindExit {
			values = append(values, ev.Value)
		}
	}
	if counts[obs.KindEnter] != ops || counts[obs.KindExit] != ops || counts[obs.KindCounter] != ops {
		t.Fatalf("trace kind counts wrong: %v, want %d enter/exit/counter", counts, ops)
	}
	depth := g.Depth()
	for tok, hops := range perTok {
		if hops != depth {
			t.Fatalf("token %d traversed %d balancers, network depth is %d", tok, hops, depth)
		}
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for i, v := range values {
		if v != int64(i) {
			t.Fatalf("traced exit values are not a permutation at %d: %d", i, v)
		}
	}

	// Metrics saw every hop; the ratio with EffWait=0 degenerates to 1.
	if got := reg.Histogram("msgnet_hop_wait_ns").Count(); got != int64(ops*depth) {
		t.Fatalf("hop histogram has %d samples, want %d", got, ops*depth)
	}
	if r := n.Ratio(); r == nil || r.Value() != 1 {
		t.Fatalf("W=0 ratio should be exactly 1, got %v", r)
	}
}

// TestUntracedUnaffected pins that plain Start/Traverse still works and
// records nothing.
func TestUntracedUnaffected(t *testing.T) {
	g, err := bitonic.New(2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Start(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Ratio() != nil {
		t.Fatal("untraced network has obs state")
	}
	for i := 0; i < 16; i++ {
		if _, err := n.Traverse(i % g.InWidth()); err != nil {
			t.Fatal(err)
		}
	}
}
