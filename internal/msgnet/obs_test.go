package msgnet

import (
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"countnet/internal/bitonic"
	"countnet/internal/faults"
	"countnet/internal/obs"
)

// TestTracedTraversals runs concurrent traced traversals and checks the
// trace records every token's enter, per-hop balancer events, counter
// event, and exit, with exit values forming a permutation.
func TestTracedTraversals(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(8, 1<<13)
	reg := obs.NewRegistry()
	n, err := StartOpts(g, Options{Buffer: 1, Tracer: ring, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	const workers, per = 8, 25
	const ops = workers * per
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tok := int32(w*per + i)
				if _, err := n.TraverseObs(w%g.InWidth(), int32(w), tok); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	events := ring.Events()
	counts := map[obs.Kind]int{}
	var values []int64
	perTok := map[int32]int{}
	for _, ev := range events {
		counts[ev.Kind]++
		if ev.Kind == obs.KindBalancer {
			if ev.Dur < 0 {
				t.Fatalf("negative hop wait: %+v", ev)
			}
			perTok[ev.Tok]++
		}
		if ev.Kind == obs.KindExit {
			values = append(values, ev.Value)
		}
	}
	if counts[obs.KindEnter] != ops || counts[obs.KindExit] != ops || counts[obs.KindCounter] != ops {
		t.Fatalf("trace kind counts wrong: %v, want %d enter/exit/counter", counts, ops)
	}
	depth := g.Depth()
	for tok, hops := range perTok {
		if hops != depth {
			t.Fatalf("token %d traversed %d balancers, network depth is %d", tok, hops, depth)
		}
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for i, v := range values {
		if v != int64(i) {
			t.Fatalf("traced exit values are not a permutation at %d: %d", i, v)
		}
	}

	// Metrics saw every hop; the ratio with EffWait=0 degenerates to 1.
	if got := reg.Histogram("msgnet_hop_wait_ns").Count(); got != int64(ops*depth) {
		t.Fatalf("hop histogram has %d samples, want %d", got, ops*depth)
	}
	if r := n.Ratio(); r == nil || r.Value() != 1 {
		t.Fatalf("W=0 ratio should be exactly 1, got %v", r)
	}
}

// TestUntracedUnaffected pins that plain Start/Traverse still works and
// records nothing.
func TestUntracedUnaffected(t *testing.T) {
	g, err := bitonic.New(2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Start(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Ratio() != nil {
		t.Fatal("untraced network has obs state")
	}
	for i := 0; i < 16; i++ {
		if _, err := n.Traverse(i % g.InWidth()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCausalSpansFaultFree runs traced traversals and checks the span
// graph: every event carries a unique span id, every token's journey is a
// single parent chain enter → balancers → counter → exit with span ids
// strictly increasing along it, and the trace is causally closed.
func TestCausalSpansFaultFree(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(4, 1<<13)
	n, err := StartOpts(g, Options{Buffer: 1, Tracer: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	const workers, per = 4, 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := n.TraverseObs(w%g.InWidth(), int32(w), int32(w*per+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	events := ring.Events()
	if closed, orphans := obs.CausalClosure(events); orphans != 0 || len(closed) != len(events) {
		t.Fatalf("fault-free trace not causally closed: %d orphans", orphans)
	}
	spans := map[uint64]obs.Event{}
	for _, ev := range events {
		if ev.Span == 0 {
			t.Fatalf("unstamped event in traced run: %+v", ev)
		}
		if prev, dup := spans[ev.Span]; dup {
			t.Fatalf("span id %d reused: %+v and %+v", ev.Span, prev, ev)
		}
		spans[ev.Span] = ev
	}
	// Group per token and walk each chain.
	byTok := map[int32][]obs.Event{}
	for _, ev := range events {
		byTok[ev.Tok] = append(byTok[ev.Tok], ev)
	}
	depth := g.Depth()
	for tok, chain := range byTok {
		sort.Slice(chain, func(i, j int) bool { return chain[i].Span < chain[j].Span })
		if len(chain) != depth+3 {
			t.Fatalf("token %d has %d events, want enter+%d balancers+counter+exit", tok, len(chain), depth)
		}
		if chain[0].Kind != obs.KindEnter || chain[0].Parent != 0 {
			t.Fatalf("token %d chain does not start at a root enter: %+v", tok, chain[0])
		}
		for i := 1; i < len(chain); i++ {
			if chain[i].Parent != chain[i-1].Span {
				t.Fatalf("token %d causal chain broken at %d: %+v after %+v", tok, i, chain[i], chain[i-1])
			}
		}
		if chain[len(chain)-1].Kind != obs.KindExit || chain[len(chain)-2].Kind != obs.KindCounter {
			t.Fatalf("token %d chain does not end counter → exit: %+v", tok, chain)
		}
	}
}

// TestCausalSpansUnderFaults checks the faulty paths stay on the causal
// graph: retries and dedups appear as stamped events chained into their
// token's journey, and the full trace still closes.
func TestCausalSpansUnderFaults(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(4, 1<<15)
	plan := &faults.Plan{Seed: 11, Default: faults.Rule{Drop: 0.3, Dup: 0.3}}
	n, err := StartOpts(g, Options{Buffer: 1, Tracer: ring, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	const workers, per = 4, 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := n.TraverseObs(w%g.InWidth(), int32(w), int32(w*per+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n.Retries() == 0 || n.Dedups() == 0 {
		t.Skipf("plan injected no retries/dedups (retries=%d dedups=%d)", n.Retries(), n.Dedups())
	}

	events := ring.Events()
	if _, orphans := obs.CausalClosure(events); orphans != 0 {
		t.Fatalf("faulty trace not causally closed: %d orphans", orphans)
	}
	spans := map[uint64]obs.Event{}
	kinds := map[obs.Kind]int{}
	for _, ev := range events {
		if ev.Span == 0 {
			t.Fatalf("unstamped event in traced faulty run: %+v", ev)
		}
		spans[ev.Span] = ev
		kinds[ev.Kind]++
	}
	if kinds[obs.KindRetry] == 0 || kinds[obs.KindDedup] == 0 {
		t.Fatalf("faulty events not traced: %v (engine counted retries=%d dedups=%d)",
			kinds, n.Retries(), n.Dedups())
	}
	for _, ev := range events {
		if ev.Parent == 0 {
			if ev.Kind != obs.KindEnter {
				t.Fatalf("non-enter root event: %+v", ev)
			}
			continue
		}
		parent, ok := spans[ev.Parent]
		if !ok {
			t.Fatalf("event references missing parent: %+v", ev)
		}
		if parent.Span >= ev.Span {
			t.Fatalf("span ids not increasing along causal edge: %+v -> %+v", parent, ev)
		}
		if parent.Tok != ev.Tok {
			t.Fatalf("causal edge crosses tokens: %+v -> %+v", parent, ev)
		}
		if ev.Kind == obs.KindRetry && ev.Dur <= 0 {
			t.Fatalf("retry event without backoff duration: %+v", ev)
		}
	}
}

// TestFlightValveTrip runs a plan whose partition window is long enough
// to exhaust MaxAttempts and checks the teed flight recorder trips with
// reason "liveness-valve" and leaves a causally closed dump.
func TestFlightValveTrip(t *testing.T) {
	g, err := bitonic.New(2)
	if err != nil {
		t.Fatal(err)
	}
	flight := obs.NewFlight(obs.Meta{Engine: "msgnet", Unit: "ns", Net: "bitonic", Width: 2}, 2, 256)
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	flight.SetAutoDump(path)
	// Every delivery on link 0 inside a huge window is dropped; the sender
	// must exhaust MaxAttempts and get forced through.
	plan := &faults.Plan{Seed: 3,
		Partitions: []faults.Partition{{Links: []int{0}, From: 0, To: faults.MaxWindow}}}
	n, err := StartOpts(g, Options{Buffer: 1, Faults: plan, Flight: flight})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for i := 0; i < 4; i++ {
		if _, err := n.TraverseObs(0, 0, int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if flight.Tripped() != "liveness-valve" {
		t.Fatalf("flight not tripped by valve: %q", flight.Tripped())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	meta, events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Reason != "liveness-valve" {
		t.Fatalf("dump reason = %q", meta.Reason)
	}
	if len(events) == 0 {
		t.Fatal("valve dump is empty")
	}
	retries := 0
	for _, ev := range events {
		if ev.Kind == obs.KindRetry {
			retries++
		}
	}
	if retries < faults.MaxAttempts {
		t.Fatalf("dump shows %d retries before the valve, want >= %d", retries, faults.MaxAttempts)
	}
}
