// Package msgnet runs a balancing network as a message-passing system: one
// goroutine per node, tokens as messages on channels. Section 2 of the
// paper notes its balancer model "is consistent with both the message
// passing and shared memory ... implementations"; this package is the
// message-passing half, with channel hops playing the role of links (their
// scheduling jitter is exactly the c2/c1 variability the measure bounds).
package msgnet

import (
	"fmt"
	"sync"

	"countnet/internal/topo"
)

// token is one counting request in flight.
type token struct {
	reply chan int64
}

// Network is a running message-passing balancing network. Create with
// Start, use Traverse from any number of goroutines, and Close when done.
type Network struct {
	g      *topo.Graph
	inbox  []chan token // one per node
	stop   chan struct{}
	done   sync.WaitGroup
	closed sync.Once
}

// Start launches one goroutine per node of g. buffer is the capacity of
// each node's inbox (0 for fully synchronous hand-off).
func Start(g *topo.Graph, buffer int) (*Network, error) {
	if g == nil {
		return nil, fmt.Errorf("msgnet: nil graph")
	}
	if buffer < 0 {
		return nil, fmt.Errorf("msgnet: negative buffer %d", buffer)
	}
	n := &Network{
		g:     g,
		inbox: make([]chan token, g.NumNodes()),
		stop:  make(chan struct{}),
	}
	for id := range n.inbox {
		n.inbox[id] = make(chan token, buffer)
	}
	for id := 0; id < g.NumNodes(); id++ {
		id := topo.NodeID(id)
		n.done.Add(1)
		switch g.KindOf(id) {
		case topo.KindBalancer:
			go n.balancer(id)
		case topo.KindCounter:
			go n.counter(id)
		}
	}
	return n, nil
}

// balancer routes arriving tokens round-robin over its output destinations.
func (n *Network) balancer(id topo.NodeID) {
	defer n.done.Done()
	fanOut := n.g.FanOut(id)
	dests := make([]chan token, fanOut)
	for p := 0; p < fanOut; p++ {
		dests[p] = n.inbox[n.g.OutDest(id, p).Node]
	}
	toggle := 0
	for {
		select {
		case t := <-n.inbox[id]:
			dest := dests[toggle]
			toggle = (toggle + 1) % fanOut
			select {
			case dest <- t:
			case <-n.stop:
				return
			}
		case <-n.stop:
			return
		}
	}
}

// counter assigns i + w*a to the a-th arriving token and replies.
func (n *Network) counter(id topo.NodeID) {
	defer n.done.Done()
	idx := int64(n.g.CounterIndex(id))
	w := int64(n.g.OutWidth())
	var count int64
	for {
		select {
		case t := <-n.inbox[id]:
			t.reply <- idx + w*count
			count++
		case <-n.stop:
			return
		}
	}
}

// Traverse sends one token into network input `input` and returns its
// counter value. It must not be called after Close.
func (n *Network) Traverse(input int) (int64, error) {
	if input < 0 || input >= n.g.InWidth() {
		return 0, fmt.Errorf("msgnet: input %d out of range [0,%d)", input, n.g.InWidth())
	}
	t := token{reply: make(chan int64, 1)}
	entry := n.inbox[n.g.Input(input).Node]
	select {
	case entry <- t:
	case <-n.stop:
		return 0, fmt.Errorf("msgnet: network closed")
	}
	select {
	case v := <-t.reply:
		return v, nil
	case <-n.stop:
		return 0, fmt.Errorf("msgnet: network closed")
	}
}

// Close stops every node goroutine and waits for them to exit. Tokens in
// flight are dropped; their Traverse calls return an error.
func (n *Network) Close() {
	n.closed.Do(func() { close(n.stop) })
	n.done.Wait()
}
