// Package msgnet runs a balancing network as a message-passing system: one
// goroutine per node, tokens as messages on channels. Section 2 of the
// paper notes its balancer model "is consistent with both the message
// passing and shared memory ... implementations"; this package is the
// message-passing half, with channel hops playing the role of links (their
// scheduling jitter is exactly the c2/c1 variability the measure bounds).
package msgnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"countnet/internal/faults"
	"countnet/internal/obs"
	"countnet/internal/topo"
)

// token is one counting request in flight.
type token struct {
	reply chan reply
	// id is the token's network-unique identity, used by receivers to
	// deduplicate faulty deliveries; 0 on fault-free networks (no dedup).
	id uint64
	// Tracing identity and the enqueue timestamp of the current hop;
	// proc/tok are -1 for untraced traversals.
	proc, tok int32
	enq       int64
	// span is the id of the token's most recent causal event — the parent
	// of whatever the token does next. 0 when tracing is off.
	span uint64
}

// reply is a counter's answer: the value plus the span id of the counting
// event, so the requester's exit event can chain onto it causally.
type reply struct {
	v    int64
	span uint64
}

// Options configures Start.
type Options struct {
	// Buffer is the capacity of each node's inbox (0 for fully
	// synchronous hand-off).
	Buffer int
	// Tracer, when non-nil, receives per-hop balancer/counter events (and
	// enter/exit events from TraverseObs).
	Tracer obs.Tracer
	// Metrics, when non-nil, receives the msgnet metric family: hop-wait
	// histogram, live (Tog+W)/Tog, per-node queue-depth gauges.
	Metrics *obs.Registry
	// EffWait is the W (in nanoseconds) of the live (Tog+W)/Tog gauge —
	// whatever per-node delay the driver injects; zero when none.
	EffWait float64
	// Faults, when non-nil and active, runs the network under the plan's
	// deterministic fault injection: link drops with retransmission,
	// duplicates, reordering, delays, partitions, and node stalls or
	// crash windows. The plan is validated; a plan with no faults at all
	// leaves the engine on its zero-overhead path.
	Faults *faults.Plan
	// Flight, when non-nil, receives every event the tracer would (teed
	// with Tracer if both are set) and is tripped automatically when the
	// fault plan's liveness valve forces a delivery through — arm it with
	// SetAutoDump to get a black-box dump of the moments before.
	Flight *obs.Flight
}

// netObs is the observability state of a running network.
type netObs struct {
	tr    obs.Tracer
	clock func() int64
	spans *obs.Clock // causal span ids; non-nil exactly when tr is
	tog   *obs.Histogram
	ratio *obs.Ratio
	retry *obs.Histogram // backoff waits of fault retransmissions
}

// Network is a running message-passing balancing network. Create with
// Start, use Traverse from any number of goroutines, and Close when done.
type Network struct {
	g      *topo.Graph
	inbox  []chan token // one per node
	stop   chan struct{}
	done   sync.WaitGroup
	closed sync.Once
	obs    *netObs     // nil when neither tracer nor metrics configured
	flight *obs.Flight // nil unless Options.Flight was set

	// Fault-injection state; inj is nil on fault-free networks and the
	// rest is untouched.
	inj      *faults.Injector
	linkBase []int // link id of each node's output port 0
	nextID   atomic.Uint64
	retries  atomic.Int64
	dedups   atomic.Int64
}

// Start launches one goroutine per node of g. buffer is the capacity of
// each node's inbox (0 for fully synchronous hand-off).
func Start(g *topo.Graph, buffer int) (*Network, error) {
	return StartOpts(g, Options{Buffer: buffer})
}

// StartOpts is Start with tracing and metrics.
func StartOpts(g *topo.Graph, opts Options) (*Network, error) {
	if g == nil {
		return nil, fmt.Errorf("msgnet: nil graph")
	}
	if opts.Buffer < 0 {
		return nil, fmt.Errorf("msgnet: negative buffer %d", opts.Buffer)
	}
	buffer := opts.Buffer
	n := &Network{
		g:     g,
		inbox: make([]chan token, g.NumNodes()),
		stop:  make(chan struct{}),
	}
	if p := opts.Faults; p != nil && p.Active() {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		var dests []int
		n.linkBase, dests = linkTables(g)
		n.inj = faults.NewInjector(p, dests)
	}
	if opts.Tracer != nil || opts.Metrics != nil || opts.Flight != nil {
		base := time.Now()
		// The assignment through a local interface keeps a nil *Flight from
		// becoming a non-nil Tracer inside Tee.
		var ft obs.Tracer
		if opts.Flight != nil {
			ft = opts.Flight
			n.flight = opts.Flight
		}
		o := &netObs{tr: obs.Tee(opts.Tracer, ft), clock: func() int64 { return int64(time.Since(base)) }}
		if o.tr != nil {
			o.spans = obs.NewClock()
		}
		if opts.Metrics != nil {
			o.tog = opts.Metrics.Histogram("msgnet_hop_wait_ns")
			o.ratio = opts.Metrics.Ratio("msgnet_avg_c2c1", opts.EffWait)
			for id := 0; id < g.NumNodes(); id++ {
				id := id
				opts.Metrics.GaugeFunc(fmt.Sprintf("msgnet_node%03d_queue", id),
					func() float64 { return float64(len(n.inbox[id])) })
			}
			if n.inj != nil {
				o.retry = opts.Metrics.Histogram("msgnet_retry_wait_ns")
				registerFaultMetrics(opts.Metrics, n)
			}
		}
		n.obs = o
	}
	for id := range n.inbox {
		n.inbox[id] = make(chan token, buffer)
	}
	for id := 0; id < g.NumNodes(); id++ {
		id := topo.NodeID(id)
		n.done.Add(1)
		switch g.KindOf(id) {
		case topo.KindBalancer:
			go n.balancer(id)
		case topo.KindCounter:
			go n.counter(id)
		}
	}
	return n, nil
}

// balancer routes arriving tokens round-robin over its output destinations.
func (n *Network) balancer(id topo.NodeID) {
	defer n.done.Done()
	fanOut := n.g.FanOut(id)
	dests := make([]chan token, fanOut)
	for p := 0; p < fanOut; p++ {
		dests[p] = n.inbox[n.g.OutDest(id, p).Node]
	}
	toggle := 0
	o := n.obs
	var seen map[uint64]struct{}
	if n.inj != nil {
		seen = make(map[uint64]struct{})
	}
	for {
		select {
		case t := <-n.inbox[id]:
			if seen != nil && t.id != 0 {
				// The topology is a DAG, so a token reaches each node at
				// most once: a repeated id here is a faulty duplicate.
				if _, dup := seen[t.id]; dup {
					n.dedups.Add(1)
					n.recordDedup(id, t)
					continue
				}
				seen[t.id] = struct{}{}
			}
			if o != nil {
				now := o.clock()
				wait := now - t.enq
				if o.tog != nil {
					o.tog.Observe(wait)
					o.ratio.Observe(wait)
				}
				if o.tr != nil {
					o.spans.Witness(t.span)
					sp := o.spans.Tick()
					o.tr.Record(obs.Event{T: now, Dur: wait, Kind: obs.KindBalancer,
						P: t.proc, Tok: t.tok, Node: int32(id), Value: -1,
						Span: sp, Parent: t.span})
					t.span = sp
				}
				t.enq = o.clock()
			}
			port := toggle
			toggle = (toggle + 1) % fanOut
			if !n.forward(n.linkOf(id, port), dests[port], t) {
				return
			}
		case <-n.stop:
			return
		}
	}
}

// linkOf returns the link id of node id's output port p; meaningful only
// while fault injection is active (linkBase is nil otherwise).
func (n *Network) linkOf(id topo.NodeID, p int) int {
	if n.linkBase == nil {
		return 0
	}
	return n.linkBase[id] + p
}

// counter assigns i + w*a to the a-th arriving token and replies.
func (n *Network) counter(id topo.NodeID) {
	defer n.done.Done()
	idx := int64(n.g.CounterIndex(id))
	w := int64(n.g.OutWidth())
	var count int64
	o := n.obs
	var seen map[uint64]struct{}
	if n.inj != nil {
		seen = make(map[uint64]struct{})
	}
	for {
		select {
		case t := <-n.inbox[id]:
			if seen != nil && t.id != 0 {
				// Deduplicate before taking a count: a faulty duplicate
				// must neither consume a value nor double-reply on the
				// token's capacity-1 reply channel.
				if _, dup := seen[t.id]; dup {
					n.dedups.Add(1)
					n.recordDedup(id, t)
					continue
				}
				seen[t.id] = struct{}{}
			}
			v := idx + w*count
			count++
			sp := t.span
			if o != nil && o.tr != nil {
				now := o.clock()
				o.spans.Witness(t.span)
				sp = o.spans.Tick()
				o.tr.Record(obs.Event{T: now, Dur: now - t.enq, Kind: obs.KindCounter,
					P: t.proc, Tok: t.tok, Node: int32(id), Value: v,
					Span: sp, Parent: t.span})
			}
			t.reply <- reply{v: v, span: sp}
		case <-n.stop:
			return
		}
	}
}

// recordDedup traces a suppressed duplicate arrival at node id: the
// conflict is part of the token's causal story (a dedup racing the
// original is how a faulty network shows up in a witness trace), so it
// gets its own span parented on the duplicate's last hop.
func (n *Network) recordDedup(id topo.NodeID, t token) {
	o := n.obs
	if o == nil || o.tr == nil {
		return
	}
	o.spans.Witness(t.span)
	o.tr.Record(obs.Event{T: o.clock(), Kind: obs.KindDedup,
		P: t.proc, Tok: t.tok, Node: int32(id), Value: -1,
		Span: o.spans.Tick(), Parent: t.span})
}

// Traverse sends one token into network input `input` and returns its
// counter value. It must not be called after Close.
func (n *Network) Traverse(input int) (int64, error) {
	return n.TraverseObs(input, -1, -1)
}

// TraverseObs is Traverse carrying a (proc, tok) tracing identity: when the
// network was started with a tracer, the token's hops are recorded under
// that identity along with enter/exit events.
func (n *Network) TraverseObs(input int, proc, tok int32) (int64, error) {
	if input < 0 || input >= n.g.InWidth() {
		return 0, fmt.Errorf("msgnet: input %d out of range [0,%d)", input, n.g.InWidth())
	}
	t := token{reply: make(chan reply, 1), proc: proc, tok: tok}
	if n.inj != nil {
		t.id = n.nextID.Add(1)
	}
	o := n.obs
	var start int64
	if o != nil {
		start = o.clock()
		t.enq = start
		if o.tr != nil && tok >= 0 {
			sp := o.spans.Tick()
			o.tr.Record(obs.Event{T: start, Kind: obs.KindEnter,
				P: proc, Tok: tok, Node: -1, Value: -1, Span: sp})
			t.span = sp
		}
	}
	// Input i rides link i; the entry hop is fault-injectable like any
	// other wire.
	if !n.forward(input, n.inbox[n.g.Input(input).Node], t) {
		return 0, fmt.Errorf("msgnet: network closed")
	}
	select {
	case r := <-t.reply:
		if o != nil && o.tr != nil && tok >= 0 {
			now := o.clock()
			o.spans.Witness(r.span)
			o.tr.Record(obs.Event{T: now, Dur: now - start, Kind: obs.KindExit,
				P: proc, Tok: tok, Node: -1, Value: r.v,
				Span: o.spans.Tick(), Parent: r.span})
		}
		return r.v, nil
	case <-n.stop:
		return 0, fmt.Errorf("msgnet: network closed")
	}
}

// Ratio returns the live (Tog+W)/Tog estimator, or nil when the network
// was started without metrics.
func (n *Network) Ratio() *obs.Ratio {
	if n.obs == nil {
		return nil
	}
	return n.obs.ratio
}

// Close stops every node goroutine and waits for them to exit. Tokens in
// flight are dropped; their Traverse calls return an error.
func (n *Network) Close() {
	n.closed.Do(func() { close(n.stop) })
	n.done.Wait()
}
