package msgnet

import (
	"sync"
	"testing"

	"countnet/internal/bitonic"
	"countnet/internal/dtree"
	"countnet/internal/topo"
)

func start(t *testing.T, g *topo.Graph, buffer int) *Network {
	t.Helper()
	n, err := Start(g, buffer)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(nil, 0); err == nil {
		t.Error("nil graph accepted")
	}
	g, err := dtree.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Start(g, -1); err == nil {
		t.Error("negative buffer accepted")
	}
}

func TestSequentialValues(t *testing.T) {
	g, err := dtree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	n := start(t, g, 1)
	for k := 0; k < 20; k++ {
		v, err := n.Traverse(0)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(k) {
			t.Fatalf("sequential token %d received %d", k, v)
		}
	}
	if _, err := n.Traverse(5); err == nil {
		t.Error("out-of-range input accepted")
	}
}

// TestConcurrentPermutation checks end-to-end counting across goroutines on
// both buffered and unbuffered channels.
func TestConcurrentPermutation(t *testing.T) {
	g, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, buffer := range []int{0, 4} {
		n := start(t, g, buffer)
		const workers = 8
		const perWorker = 300
		total := workers * perWorker
		got := make([][]int64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				vals := make([]int64, 0, perWorker)
				for i := 0; i < perWorker; i++ {
					v, err := n.Traverse(w % g.InWidth())
					if err != nil {
						t.Error(err)
						return
					}
					vals = append(vals, v)
				}
				got[w] = vals
			}(w)
		}
		wg.Wait()
		seen := make([]bool, total)
		for _, vals := range got {
			for _, v := range vals {
				if v < 0 || int(v) >= total || seen[v] {
					t.Fatalf("buffer %d: bad or duplicate value %d", buffer, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestCloseIdempotentAndUnblocks(t *testing.T) {
	g, err := dtree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Start(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close() // must not panic or hang
	if _, err := n.Traverse(0); err == nil {
		t.Error("Traverse after Close succeeded")
	}
}

func BenchmarkTraverse(b *testing.B) {
	g, err := dtree.New(8)
	if err != nil {
		b.Fatal(err)
	}
	n, err := Start(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := n.Traverse(0); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
