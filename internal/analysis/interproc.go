package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Program is the whole-program view interprocedural analyzers walk: every
// loaded package plus a cross-package function index. Packages are
// type-checked independently against compiler export data, so the same
// function is represented by distinct *types.Func objects in each
// importer's universe; the index therefore keys functions by their
// universe-independent path "pkgpath.(Recv).Name" rather than by object
// identity.
type Program struct {
	// Packages are the loaded packages, sorted by import path.
	Packages []*Package

	byPath map[string]*Package
	byFile map[string]*Package
	funcs  map[string]*FuncNode
	// concrete lists every non-generic named non-interface type declared
	// in a loaded package — the devirtualization candidate set.
	concrete []concreteType
}

type concreteType struct {
	named *types.Named
	pkg   *Package
}

// FuncNode is one function with loaded source: the declaration, its
// package, and its (defining universe) object.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// NewProgram indexes the loaded packages for interprocedural analysis.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Packages: pkgs,
		byPath:   make(map[string]*Package, len(pkgs)),
		byFile:   make(map[string]*Package),
		funcs:    make(map[string]*FuncNode),
	}
	for _, pkg := range pkgs {
		p.byPath[pkg.Path] = pkg
		for _, f := range pkg.Files {
			p.byFile[pkg.Fset.Position(f.Pos()).Filename] = pkg
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok || d.Body == nil {
						continue
					}
					p.funcs[FuncKey(fn)] = &FuncNode{Fn: fn, Decl: d, Pkg: pkg}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
						if !ok {
							continue
						}
						named, ok := obj.Type().(*types.Named)
						if !ok || named.TypeParams().Len() > 0 {
							continue // aliases and uninstantiated generics
						}
						if types.IsInterface(named) {
							continue
						}
						p.concrete = append(p.concrete, concreteType{named: named, pkg: pkg})
					}
				}
			}
		}
	}
	return p
}

// PackageFor returns the loaded package owning the given source file, or
// nil for files outside the program.
func (p *Program) PackageFor(filename string) *Package { return p.byFile[filename] }

// PackageAt returns the loaded package with the given import path, or nil.
func (p *Program) PackageAt(path string) *Package { return p.byPath[path] }

// FuncOf resolves any universe's *types.Func to its loaded declaration,
// or nil when the function's source is not part of the program (stdlib,
// export-data-only dependencies, function literals).
func (p *Program) FuncOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return p.funcs[FuncKey(fn)]
}

// FuncKey returns fn's universe-independent index key,
// "pkgpath.(Recv).Name". Functions without a package (error.Error,
// builtins) key to "".
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := types.Unalias(sig.Recv().Type())
		if ptr, ok := t.(*types.Pointer); ok {
			t = types.Unalias(ptr.Elem())
		}
		if n, ok := t.(*types.Named); ok {
			recv = n.Obj().Name()
		}
	}
	return fn.Pkg().Path() + ".(" + recv + ")." + fn.Name()
}

// FuncDisplay renders fn for diagnostics: "Traverse" for functions,
// "(*Network).Traverse" for methods.
func FuncDisplay(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := types.Unalias(sig.Recv().Type())
		star := ""
		if ptr, ok := t.(*types.Pointer); ok {
			t = types.Unalias(ptr.Elem())
			star = "*"
		}
		if n, ok := t.(*types.Named); ok {
			return fmt.Sprintf("(%s%s).%s", star, n.Obj().Name(), fn.Name())
		}
	}
	return fn.Name()
}

// sigKey renders a method signature (receiver excluded) with
// package-path-qualified type names, so signatures from different
// importer universes compare equal exactly when the compiler would
// consider them identical.
func sigKey(sig *types.Signature) string {
	noRecv := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(noRecv, func(p *types.Package) string { return p.Path() })
}

// Devirtualize resolves an interface-method call to every loaded
// implementation: the method named name on each concrete program type
// whose method set structurally satisfies all of iface's methods
// (matching by name and qualified signature, which is universe-safe).
// The ok result is false when iface is declared outside the program —
// its implementations cannot be enumerated, so the caller must treat the
// call as opaque.
func (p *Program) Devirtualize(iface *types.Named, name string) (impls []*FuncNode, ok bool) {
	if iface == nil || p.byPath[iface.Obj().Pkg().Path()] == nil {
		return nil, false
	}
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil, false
	}
	for _, ct := range p.concrete {
		m, implements := implementation(ct.named, it, name)
		if !implements || m == nil {
			continue
		}
		if node := p.FuncOf(m); node != nil {
			impls = append(impls, node)
		}
	}
	return impls, true
}

// implementation reports whether *T's method set satisfies every method
// of it, and returns T's method matching the queried name. Matching is
// by name and qualified signature; unexported interface methods
// additionally require the same declaring package, mirroring the
// compiler's rule.
func implementation(named *types.Named, it *types.Interface, name string) (*types.Func, bool) {
	mset := types.NewMethodSet(types.NewPointer(named))
	var match *types.Func
	for i := 0; i < it.NumMethods(); i++ {
		im := it.Method(i)
		cm := methodNamed(mset, im)
		if cm == nil {
			return nil, false
		}
		if sigKey(cm.Type().(*types.Signature)) != sigKey(im.Type().(*types.Signature)) {
			return nil, false
		}
		if im.Name() == name {
			match = cm
		}
	}
	return match, true
}

// methodNamed finds im's counterpart in a concrete method set, crossing
// importer universes by matching package paths instead of objects.
func methodNamed(mset *types.MethodSet, im *types.Func) *types.Func {
	for i := 0; i < mset.Len(); i++ {
		obj, ok := mset.At(i).Obj().(*types.Func)
		if !ok || obj.Name() != im.Name() {
			continue
		}
		if !im.Exported() {
			if obj.Pkg() == nil || im.Pkg() == nil || obj.Pkg().Path() != im.Pkg().Path() {
				continue
			}
		}
		return obj
	}
	return nil
}

// InterfaceReceiver returns the named interface type a method call is
// dispatched through, or nil when call is not an interface-method call.
// Unnamed interface receivers report the sentinel anonInterface.
func InterfaceReceiver(info *types.Info, call *ast.CallExpr) (*types.Named, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil, false
	}
	recv := types.Unalias(selection.Recv())
	if !types.IsInterface(recv) {
		return nil, false
	}
	if n, ok := recv.(*types.Named); ok {
		return n, true
	}
	return nil, true // anonymous interface
}
