// Package hotvet enforces the wait-free discipline the paper's
// practical-linearizability argument assumes: Corollary 3.9/3.12 bound
// the reordering window by the balancer traversal time, so a counting
// hot path that blocks on a channel, parks on a mutex, sleeps, defers,
// or allocates silently destroys the (Tog+W)/Tog regime every
// measurement in this repo reports. Functions marked //countnet:hotpath
// — and everything they transitively call within the analyzed program —
// must stay free of:
//
//   - channel operations (send, receive, select, range over a channel)
//     and goroutine spawns;
//   - blocking sync calls (Lock, RLock, Wait, Once.Do) and
//     time.Sleep / runtime.Gosched;
//   - defer (a hot path has no cleanup to schedule, and defer pins the
//     frame);
//   - the cheap static signals of heap allocation: address-taken
//     composite literals, new, make of a map or channel (the compiler's
//     full escape verdict is escvet's job);
//   - interface-method calls that cannot be resolved: calls through
//     interfaces declared outside the program, or with no loaded
//     implementation. Calls through program-declared interfaces are
//     devirtualized — every loaded implementation is walked instead, so
//     `Balancer.Traverse` is checked through each toggle kind rather
//     than flagged.
//
// The walk stops at functions marked //countnet:coldpath (a sampled
// controller, a switch slow path — the annotation is the reviewed
// boundary), at program boundaries (a call into a package whose source
// was not loaded is not followed), and at calls through plain function
// values (those are the workload's own injection hooks; the W they add
// is the experiment's variable, not a violation, and escvet still sees
// their allocation). Findings carry the call depth and chain from the
// annotated root, and land at the offending construct — which may be in
// another package, whose own //countnet:allow directives then apply.
package hotvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"countnet/internal/analysis"
)

// Analyzer is the hotvet pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotvet",
	Doc:  "//countnet:hotpath functions and their program-local callees must not block, defer, or allocate",
	Run:  run,
}

// maxDepth bounds the interprocedural walk; a hot path deeper than this
// is itself a finding (the discipline is unreviewable at that depth).
const maxDepth = 12

// blockingSync are the method names on sync package types that park the
// calling goroutine.
var blockingSync = map[string]bool{"Lock": true, "RLock": true, "Wait": true, "Do": true}

func run(pass *analysis.Pass) error {
	if pass.Prog == nil {
		return fmt.Errorf("hotvet requires a program (RunProgram)")
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pass.Dirs.MarkedFunc("hotpath", pass.Fset, fd) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			root := pass.Prog.FuncOf(fn)
			if root == nil {
				continue
			}
			w := &walker{
				pass:    pass,
				root:    analysis.FuncDisplay(fn),
				visited: map[*analysis.FuncNode]bool{},
			}
			w.walk(root, nil)
		}
	}
	return nil
}

// walker is one hot-path root's interprocedural traversal state.
type walker struct {
	pass *analysis.Pass
	root string
	// visited guards against cycles and re-walking shared helpers; it is
	// per root, so every root reports its own view of a shared callee.
	visited map[*analysis.FuncNode]bool
}

// report emits one finding with the root, depth, and call chain.
func (w *walker) report(pos token.Pos, fset *token.FileSet, chain []string, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	where := fmt.Sprintf("depth %d", len(chain))
	if len(chain) > 0 {
		where += ", via " + strings.Join(chain, " → ")
	}
	w.pass.ReportAtf(fset.Position(pos), "hot path %s: %s (%s)", w.root, msg, where)
}

// walk checks one function body and descends into its program-local
// callees. chain lists the functions between the root and node
// (node included unless it is the root itself).
func (w *walker) walk(node *analysis.FuncNode, chain []string) {
	if w.visited[node] {
		return
	}
	w.visited[node] = true
	info := node.Pkg.Info
	fset := node.Pkg.Fset
	// Channel operations appearing as a select's comm clause are part of
	// the select finding, not a second one each.
	inSelect := map[ast.Node]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectStmt:
			w.report(x.Pos(), fset, chain, "select statement (channel rendezvous)")
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					inSelect[commOp(cc.Comm)] = true
				}
			}
		case *ast.SendStmt:
			if !inSelect[x] {
				w.report(x.Pos(), fset, chain, "channel send")
			}
		case *ast.UnaryExpr:
			switch {
			case x.Op == token.ARROW && !inSelect[x]:
				w.report(x.Pos(), fset, chain, "channel receive")
			case x.Op == token.AND:
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					w.report(x.Pos(), fset, chain, "address-taken composite literal (heap allocation)")
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					w.report(x.Pos(), fset, chain, "range over channel")
				}
			}
		case *ast.GoStmt:
			w.report(x.Pos(), fset, chain, "goroutine spawn")
			return false // the spawned body runs off the hot path
		case *ast.DeferStmt:
			w.report(x.Pos(), fset, chain, "defer (schedules work and pins the frame)")
			return false // the deferred body is already covered by the defer finding
		case *ast.CallExpr:
			w.checkCall(node, info, fset, x, chain)
		}
		return true
	})
}

// commOp returns the channel-op node a select comm clause wraps, so the
// generic send/receive cases can skip it.
func commOp(s ast.Stmt) ast.Node {
	switch st := s.(type) {
	case *ast.SendStmt:
		return st
	case *ast.ExprStmt:
		return ast.Unparen(st.X)
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			return ast.Unparen(st.Rhs[0])
		}
	}
	return s
}

// checkCall classifies one call: a known-blocking callee is a finding,
// a program-local callee is walked, an interface call is devirtualized
// over the program's implementations, and everything else (stdlib,
// export-data-only packages, function values, builtins except the
// allocating ones) is a boundary the walk does not cross.
func (w *walker) checkCall(node *analysis.FuncNode, info *types.Info, fset *token.FileSet, call *ast.CallExpr, chain []string) {
	prog := w.pass.Prog
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "new":
				w.report(call.Pos(), fset, chain, "new (heap allocation)")
			case "make":
				switch info.TypeOf(call).Underlying().(type) {
				case *types.Chan:
					w.report(call.Pos(), fset, chain, "make(chan) (heap allocation)")
				case *types.Map:
					w.report(call.Pos(), fset, chain, "make(map) (heap allocation)")
				}
			}
			return
		}
	}
	if iface, isIfaceCall := analysis.InterfaceReceiver(info, call); isIfaceCall {
		name := ast.Unparen(call.Fun).(*ast.SelectorExpr).Sel.Name
		if iface == nil {
			w.report(call.Pos(), fset, chain, "interface-method call %s through an anonymous interface (cannot verify the implementation)", name)
			return
		}
		impls, ok := prog.Devirtualize(iface, name)
		if !ok {
			w.report(call.Pos(), fset, chain, "interface-method call %s.%s on an interface declared outside the program (cannot verify the implementation)", iface.Obj().Name(), name)
			return
		}
		if len(impls) == 0 {
			w.report(call.Pos(), fset, chain, "interface-method call %s.%s with no implementation in the analyzed program", iface.Obj().Name(), name)
			return
		}
		for _, impl := range impls {
			w.descend(impl, fset, call, chain)
		}
		return
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return // function value, conversion, or universe builtin: not followed
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			w.report(call.Pos(), fset, chain, "time.Sleep (parks the goroutine)")
			return
		}
	case "runtime":
		if fn.Name() == "Gosched" {
			w.report(call.Pos(), fset, chain, "runtime.Gosched (scheduler yield)")
			return
		}
	case "sync":
		if blockingSync[fn.Name()] {
			w.report(call.Pos(), fset, chain, "blocking sync call %s", analysis.FuncDisplay(fn))
			return
		}
	}
	if callee := prog.FuncOf(fn); callee != nil {
		w.descend(callee, fset, call, chain)
	}
}

// descend walks into a resolved callee unless it is marked coldpath or
// the chain is already at the depth bound.
func (w *walker) descend(callee *analysis.FuncNode, fset *token.FileSet, call *ast.CallExpr, chain []string) {
	if callee.Pkg.Directives.MarkedFunc("coldpath", callee.Pkg.Fset, callee.Decl) {
		return
	}
	if len(chain)+1 > maxDepth {
		w.report(call.Pos(), fset, chain, "call depth exceeds %d; annotate a //countnet:coldpath boundary or restructure", maxDepth)
		return
	}
	w.walk(callee, append(chain[:len(chain):len(chain)], analysis.FuncDisplay(callee.Fn)))
}
