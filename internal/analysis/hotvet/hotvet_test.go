package hotvet_test

import (
	"testing"

	"countnet/internal/analysis/antest"
	"countnet/internal/analysis/hotvet"
)

func TestHotvet(t *testing.T) {
	antest.Run(t, "../testdata/src/hotvet", hotvet.Analyzer)
}
