// Package antest is the golden-test harness for countnet analyzers, in
// the spirit of golang.org/x/tools/go/analysis/analysistest but built on
// the offline loader. A testdata package seeds known violations and
// annotates each expected finding in a comment:
//
//	t := time.Now() // want `time\.Now in deterministic package`
//
// The back-quoted strings are regexps matched against the diagnostic
// message; several may follow one want. Because an expectation cannot
// share a line with a //countnet: directive (the directive comment runs
// to end of line), `// wantbelow` registers its expectations for the
// NEXT source line — used for the empty-reason directive finding, which
// is reported at the directive itself:
//
//	// wantbelow `empty reason`
//	//countnet:allow detvet --
//
// Run fails the test on any unmatched expectation or unexpected
// diagnostic, printing both sides.
package antest

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"countnet/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*(want|wantbelow)((?:\s+` + "`[^`]*`" + `)+)`)
var patRE = regexp.MustCompile("`([^`]*)`")

// expectation is one want pattern awaiting a diagnostic on its line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the testdata package rooted at dir (relative to the calling
// test, e.g. "../testdata/src/detvet"), applies the analyzers through
// the same RunPackage pipeline countnetvet uses (so suppression
// directives are honored), and diffs the findings against the want
// annotations.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	modRoot, err := analysis.FindModuleRoot(abs)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadDir(modRoot, abs)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	var wants []*expectation
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		ws, err := parseWants(name)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}
	diags, err := analysis.RunPackage(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts the want/wantbelow expectations from one source file.
func parseWants(path string) ([]*expectation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []*expectation
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		m := wantRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		target := line
		if m[1] == "wantbelow" {
			target = line + 1
		}
		for _, pm := range patRE.FindAllStringSubmatch(m[2], -1) {
			re, err := regexp.Compile(pm[1])
			if err != nil {
				return nil, err
			}
			out = append(out, &expectation{file: path, line: target, re: re})
		}
	}
	return out, sc.Err()
}
