// Package analysis is the repository's static-analysis framework: a
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) over the standard library's
// go/ast + go/types, plus the countnet directive language that turns the
// paper's invariants into CI-enforced law:
//
//	//countnet:deterministic
//	    marks a package as seed-reproducible: detvet forbids wall-clock
//	    reads, unseeded global randomness, map-iteration ordering, and
//	    goroutine-spawn-order dependence inside it (PR 2's bit-identical
//	    runs per seed rest on this).
//
//	//countnet:allow <analyzer>[,<analyzer>...] -- <reason>
//	    suppresses findings of the named analyzers on the same source
//	    line or the line directly below. An empty reason is itself a
//	    finding, so every suppression carries its justification.
//
//	//countnet:lockorder <A> < <B>
//	    declares that lock A may be held while acquiring lock B; lockvet
//	    flags any nested acquisition without a declared order.
//
// The concrete analyzers live in the subpackages detvet, atomicvet,
// obsvet, and lockvet; cmd/countnetvet runs them all (alongside the
// stock `go vet` suite) over any package pattern.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in findings and allow directives.
	Name string
	// Doc is the one-line description shown by countnetvet's usage.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dirs holds the package's parsed countnet directives.
	Dirs *Directives

	report func(pos token.Pos, msg string)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// Allow is one parsed //countnet:allow directive.
type Allow struct {
	// Analyzers are the suppressed analyzer names.
	Analyzers []string
	// Reason is the justification after the "--" separator.
	Reason string
	// File and Line locate the directive.
	File string
	Line int
	Pos  token.Pos
}

// Covers reports whether the directive suppresses the named analyzer.
func (a Allow) Covers(analyzer string) bool {
	for _, n := range a.Analyzers {
		if n == analyzer {
			return true
		}
	}
	return false
}

// LockOrder declares that Before may be held while acquiring After.
type LockOrder struct {
	Before, After string
}

// Directives is a package's parsed countnet directive set.
type Directives struct {
	// Deterministic is true when any file carries //countnet:deterministic.
	Deterministic bool
	// LockOrders lists the declared nested-acquisition orders.
	LockOrders []LockOrder
	// allows maps "file:line" of the directive to the parsed form.
	allows map[string][]Allow
}

// allowRE parses "//countnet:allow detvet,obsvet -- reason text". The
// reason separator is mandatory so a missing justification is detectable.
var allowRE = regexp.MustCompile(`^//countnet:allow\s+([\w,\s]+?)\s*--\s*(.*)$`)

// lockOrderRE parses "//countnet:lockorder A < B".
var lockOrderRE = regexp.MustCompile(`^//countnet:lockorder\s+(\S+)\s*<\s*(\S+)\s*$`)

// ParseDirectives scans every comment of the package's files.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{allows: make(map[string][]Allow)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.parseComment(fset, c)
			}
		}
	}
	return d
}

func (d *Directives) parseComment(fset *token.FileSet, c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	if !strings.HasPrefix(text, "//countnet:") {
		return
	}
	pos := fset.Position(c.Pos())
	switch {
	case text == "//countnet:deterministic":
		d.Deterministic = true
	case strings.HasPrefix(text, "//countnet:lockorder"):
		if m := lockOrderRE.FindStringSubmatch(text); m != nil {
			d.LockOrders = append(d.LockOrders, LockOrder{Before: m[1], After: m[2]})
		}
	case strings.HasPrefix(text, "//countnet:allow"):
		a := Allow{File: pos.Filename, Line: pos.Line, Pos: c.Pos()}
		if m := allowRE.FindStringSubmatch(text); m != nil {
			for _, name := range strings.Split(m[1], ",") {
				if name = strings.TrimSpace(name); name != "" {
					a.Analyzers = append(a.Analyzers, name)
				}
			}
			a.Reason = strings.TrimSpace(m[2])
		}
		key := allowKey(pos.Filename, pos.Line)
		d.allows[key] = append(d.allows[key], a)
	}
}

func allowKey(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// Allowed reports whether a finding of the named analyzer at pos is
// suppressed: an allow directive covering the analyzer sits on the same
// line or the line directly above, and carries a non-empty reason.
func (d *Directives) Allowed(analyzer string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, a := range d.allows[allowKey(pos.Filename, line)] {
			if a.Covers(analyzer) && a.Reason != "" {
				return true
			}
		}
	}
	return false
}

// HasLockOrder reports whether holding `before` while acquiring `after`
// was declared legal.
func (d *Directives) HasLockOrder(before, after string) bool {
	for _, lo := range d.LockOrders {
		if lo.Before == before && lo.After == after {
			return true
		}
	}
	return false
}

// DirectiveCheckName is the pseudo-analyzer name under which malformed
// directives (an allow with an empty reason) are reported. It cannot be
// suppressed.
const DirectiveCheckName = "directive"

// RunPackage runs the analyzers over one loaded package and returns the
// surviving findings: suppressed diagnostics are dropped, and every allow
// directive with an empty reason becomes a finding of its own, so a
// justification-free suppression fails CI.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Dirs:      pkg.Directives,
		}
		name := a.Name
		pass.report = func(pos token.Pos, msg string) {
			p := pkg.Fset.Position(pos)
			if pkg.Directives.Allowed(name, p) {
				return
			}
			out = append(out, Diagnostic{Pos: p, Analyzer: name, Message: msg})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	for _, allows := range pkg.Directives.allows {
		for _, a := range allows {
			if a.Reason == "" || len(a.Analyzers) == 0 {
				out = append(out, Diagnostic{
					Pos:      pkg.Fset.Position(a.Pos),
					Analyzer: DirectiveCheckName,
					Message:  "countnet:allow directive with empty reason (write `//countnet:allow <analyzer> -- <why>`)",
				})
			}
		}
	}
	sortDiagnostics(out)
	return out, nil
}

// sortDiagnostics orders findings by file, line, column, then analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
