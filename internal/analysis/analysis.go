// Package analysis is the repository's static-analysis framework: a
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) over the standard library's
// go/ast + go/types, plus the countnet directive language that turns the
// paper's invariants into CI-enforced law:
//
//	//countnet:deterministic
//	    marks a package as seed-reproducible: detvet forbids wall-clock
//	    reads, unseeded global randomness, map-iteration ordering, and
//	    goroutine-spawn-order dependence inside it (PR 2's bit-identical
//	    runs per seed rest on this).
//
//	//countnet:allow <analyzer>[,<analyzer>...] -- <reason>
//	    suppresses findings of the named analyzers on the same source
//	    line or the line directly below. An empty reason is itself a
//	    finding, so every suppression carries its justification.
//
//	//countnet:lockorder <A> < <B>
//	    declares that lock A may be held while acquiring lock B; lockvet
//	    flags any nested acquisition without a declared order.
//
//	//countnet:hotpath
//	    marks a function as a counting hot path: hotvet requires it — and
//	    everything it transitively calls within the analyzed program — to
//	    stay free of blocking and heap-allocating constructs, and escvet
//	    diffs the compiler's escape/inline decisions on it against the
//	    package's escapes.golden.
//
//	//countnet:coldpath
//	    marks a function as deliberately off the per-token path (a
//	    sampled controller, a switch slow path): hotvet stops its
//	    interprocedural descent at the call, treating the annotation as
//	    the reviewed boundary.
//
//	//countnet:gate / gated / gatecensus / gatelock / gateheld
//	    declare the seqlock-style epoch-gate protocol gatevet checks: the
//	    gate word itself, the fields it guards, the in-flight census
//	    stripes, the mutex a switch runs under, and the functions that
//	    assume the switch lock is already held.
//
// Several directives may share one comment line (each starts its own
// `//countnet:` token; an `allow` consumes the rest of the line and so
// must come last). An unknown verb after `countnet:` is a diagnostic,
// not a silent no-op — a typo in a directive must not disable the law it
// meant to invoke.
//
// The concrete analyzers live in the subpackages detvet, atomicvet,
// obsvet, lockvet, hotvet, gatevet, and escvet; cmd/countnetvet runs
// them all (alongside the stock `go vet` suite) over any package
// pattern.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in findings and allow directives.
	Name string
	// Doc is the one-line description shown by countnetvet's usage.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dirs holds the package's parsed countnet directives.
	Dirs *Directives
	// Dir is the package's source directory and ModRoot the enclosing
	// module root (escvet shells out to the go tool from there).
	Dir     string
	ModRoot string
	// Prog is the whole-program view interprocedural analyzers walk; it
	// always contains at least the package under analysis.
	Prog *Program

	reportAt func(pos token.Position, msg string)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.reportAt(p.Fset.Position(pos), fmt.Sprintf(format, args...))
}

// ReportAtf records one finding at an already-resolved file position —
// for diagnostics anchored in files outside the FileSet, like a stale
// entry in an escapes.golden.
func (p *Pass) ReportAtf(pos token.Position, format string, args ...any) {
	p.reportAt(pos, fmt.Sprintf(format, args...))
}

// Allow is one parsed //countnet:allow directive.
type Allow struct {
	// Analyzers are the suppressed analyzer names.
	Analyzers []string
	// Reason is the justification after the "--" separator.
	Reason string
	// File and Line locate the directive.
	File string
	Line int
	Pos  token.Pos
}

// Covers reports whether the directive suppresses the named analyzer.
func (a Allow) Covers(analyzer string) bool {
	for _, n := range a.Analyzers {
		if n == analyzer {
			return true
		}
	}
	return false
}

// LockOrder declares that Before may be held while acquiring After.
type LockOrder struct {
	Before, After string
}

// Mark is one parsed annotation-style directive (hotpath, coldpath,
// gate, gated, gatecensus, gatelock, gateheld): a verb attached to the
// declaration on its line, the line below, or — for functions — the
// doc comment it appears in.
type Mark struct {
	// Verb is the directive name after "countnet:".
	Verb string
	// Args is the free text after the verb (unused by the current verbs;
	// kept so a future verb can take parameters without a grammar break).
	Args string
	// File and Line locate the directive.
	File string
	Line int
	Pos  token.Pos
}

// Directives is a package's parsed countnet directive set.
type Directives struct {
	// Deterministic is true when any file carries //countnet:deterministic.
	Deterministic bool
	// LockOrders lists the declared nested-acquisition orders.
	LockOrders []LockOrder
	// Marks lists the parsed annotation directives (hotpath, gate, ...).
	Marks []Mark
	// Unknown lists directives whose verb no analyzer understands; each
	// becomes a finding, so a typo cannot silently disable a check.
	Unknown []Mark
	// allows maps "file:line" of the directive to the parsed form.
	allows map[string][]Allow
}

// markVerbs are the annotation verbs analyzers look up through Marked*.
var markVerbs = map[string]bool{
	"hotpath":    true,
	"coldpath":   true,
	"gate":       true,
	"gated":      true,
	"gatecensus": true,
	"gatelock":   true,
	"gateheld":   true,
}

// allowRE parses "allow detvet,obsvet -- reason text" (the segment after
// "//countnet:"). The reason separator is mandatory so a missing
// justification is detectable.
var allowRE = regexp.MustCompile(`^allow\s+([\w,\s]+?)\s*--\s*(.*)$`)

// lockOrderRE parses "lockorder A < B".
var lockOrderRE = regexp.MustCompile(`^lockorder\s+(\S+)\s*<\s*(\S+)\s*$`)

// ParseDirectives scans every comment of the package's files.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{allows: make(map[string][]Allow)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.parseComment(fset, c)
			}
		}
	}
	return d
}

// parseComment parses every directive in one comment. A line may carry
// several (`//countnet:gate //countnet:gated` is two); each "//countnet:"
// token starts a new one, so an `allow` — whose reason runs to end of
// line — must be the last directive on its line.
func (d *Directives) parseComment(fset *token.FileSet, c *ast.Comment) {
	// Directive position only: the comment must begin "//countnet:" with
	// no space, like any Go tool directive. Prose and indented doc
	// examples that merely mention a directive are not directives.
	text := c.Text
	if !strings.HasPrefix(text, "//countnet:") {
		return
	}
	pos := fset.Position(c.Pos())
	for _, seg := range strings.Split(text, "//countnet:")[1:] {
		seg = strings.TrimSpace(seg)
		verb, args := seg, ""
		if i := strings.IndexAny(seg, " \t"); i >= 0 {
			verb, args = seg[:i], strings.TrimSpace(seg[i+1:])
		}
		d.parseDirective(verb, args, pos, c.Pos())
	}
}

func (d *Directives) parseDirective(verb, args string, pos token.Position, tpos token.Pos) {
	switch {
	case verb == "deterministic":
		d.Deterministic = true
	case verb == "lockorder":
		if m := lockOrderRE.FindStringSubmatch(verb + " " + args); m != nil {
			d.LockOrders = append(d.LockOrders, LockOrder{Before: m[1], After: m[2]})
		}
	case verb == "allow":
		a := Allow{File: pos.Filename, Line: pos.Line, Pos: tpos}
		if m := allowRE.FindStringSubmatch(verb + " " + args); m != nil {
			for _, name := range strings.Split(m[1], ",") {
				if name = strings.TrimSpace(name); name != "" {
					a.Analyzers = append(a.Analyzers, name)
				}
			}
			a.Reason = strings.TrimSpace(m[2])
		}
		key := allowKey(pos.Filename, pos.Line)
		d.allows[key] = append(d.allows[key], a)
	case markVerbs[verb]:
		d.Marks = append(d.Marks, Mark{Verb: verb, Args: args, File: pos.Filename, Line: pos.Line, Pos: tpos})
	default:
		d.Unknown = append(d.Unknown, Mark{Verb: verb, Args: args, File: pos.Filename, Line: pos.Line, Pos: tpos})
	}
}

// MarkedFunc reports whether decl carries the verb directive: in its doc
// comment, on the line of the declaration itself, or the line directly
// above it.
func (d *Directives) MarkedFunc(verb string, fset *token.FileSet, decl *ast.FuncDecl) bool {
	declPos := fset.Position(decl.Pos())
	lo := declPos.Line - 1
	if decl.Doc != nil {
		if p := fset.Position(decl.Doc.Pos()); p.Line < lo {
			lo = p.Line
		}
	}
	return d.markedIn(verb, declPos.Filename, lo, declPos.Line)
}

// MarkedField reports whether the struct field (or value spec) carries
// the verb directive on its own line or the line directly above.
func (d *Directives) MarkedField(verb string, fset *token.FileSet, n ast.Node) bool {
	p := fset.Position(n.Pos())
	return d.markedIn(verb, p.Filename, p.Line-1, p.Line)
}

func (d *Directives) markedIn(verb, file string, lo, hi int) bool {
	for _, m := range d.Marks {
		if m.Verb == verb && m.File == file && m.Line >= lo && m.Line <= hi {
			return true
		}
	}
	return false
}

func allowKey(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// Allowed reports whether a finding of the named analyzer at pos is
// suppressed: an allow directive covering the analyzer sits on the same
// line or the line directly above, and carries a non-empty reason.
func (d *Directives) Allowed(analyzer string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, a := range d.allows[allowKey(pos.Filename, line)] {
			if a.Covers(analyzer) && a.Reason != "" {
				return true
			}
		}
	}
	return false
}

// HasLockOrder reports whether holding `before` while acquiring `after`
// was declared legal.
func (d *Directives) HasLockOrder(before, after string) bool {
	for _, lo := range d.LockOrders {
		if lo.Before == before && lo.After == after {
			return true
		}
	}
	return false
}

// DirectiveCheckName is the pseudo-analyzer name under which malformed
// directives (an allow with an empty reason) are reported. It cannot be
// suppressed.
const DirectiveCheckName = "directive"

// RunPackage runs the analyzers over one loaded package and returns the
// surviving findings. It is RunProgram over a single-package program —
// interprocedural analyzers see exactly that package.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunProgram(NewProgram([]*Package{pkg}), analyzers)
}

// RunProgram runs the analyzers over every package of the program and
// returns the surviving findings: suppressed diagnostics are dropped
// (an allow is resolved against the directives of the package owning
// the finding's file, so interprocedural findings positioned in a
// callee's package honor that package's allows), duplicates from
// overlapping walks are folded, every allow directive with an empty
// reason becomes a finding of its own, and so does every directive
// whose verb no analyzer knows — a justification-free suppression or a
// typoed directive fails CI.
func RunProgram(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	seen := map[Diagnostic]bool{}
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Dirs:      pkg.Directives,
				Dir:       pkg.Dir,
				ModRoot:   pkg.ModRoot,
				Prog:      prog,
			}
			name := a.Name
			pass.reportAt = func(pos token.Position, msg string) {
				dirs := pkg.Directives
				if owner := prog.PackageFor(pos.Filename); owner != nil {
					dirs = owner.Directives
				}
				if dirs.Allowed(name, pos) {
					return
				}
				d := Diagnostic{Pos: pos, Analyzer: name, Message: msg}
				if seen[d] {
					return
				}
				seen[d] = true
				out = append(out, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		for _, allows := range pkg.Directives.allows {
			for _, a := range allows {
				if a.Reason == "" || len(a.Analyzers) == 0 {
					out = append(out, Diagnostic{
						Pos:      pkg.Fset.Position(a.Pos),
						Analyzer: DirectiveCheckName,
						Message:  "countnet:allow directive with empty reason (write `//countnet:allow <analyzer> -- <why>`)",
					})
				}
			}
		}
		for _, u := range pkg.Directives.Unknown {
			out = append(out, Diagnostic{
				Pos:      token.Position{Filename: u.File, Line: u.Line},
				Analyzer: DirectiveCheckName,
				Message:  fmt.Sprintf("unknown countnet directive %q (known verbs: allow, coldpath, deterministic, gate, gatecensus, gated, gateheld, gatelock, hotpath, lockorder)", u.Verb),
			})
		}
	}
	Sort(out)
	return out, nil
}

// Sort orders findings by file, line, column, analyzer, then message —
// a total order, so merged outputs (several analyzers hitting the same
// position) render identically run to run.
func Sort(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
