package lockvet_test

import (
	"testing"

	"countnet/internal/analysis/antest"
	"countnet/internal/analysis/lockvet"
)

func TestGolden(t *testing.T) {
	antest.Run(t, "../testdata/src/lockvet", lockvet.Analyzer)
}
