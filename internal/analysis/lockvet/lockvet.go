// Package lockvet checks the hand-rolled locking discipline of the shm
// engine: mutexes (and MCS queue locks) copied by value, critical
// sections abandoned on early-return paths, and nested lock acquisition
// without a declared order. The paper's Tog measurements assume every
// balancer critical section is entered and left exactly once per
// traversal; a leaked lock stalls the whole network rather than one
// token, and an undeclared nesting is a deadlock waiting for the right
// schedule.
//
// The early-return and nesting checks are linear source-order scans per
// function (no CFG): `X.Lock()` opens a critical section, a matching
// `defer X.Unlock()` closes it for the whole function, `X.Unlock()`
// closes it at that point, and any `return` while a section is open is
// flagged. Conditional locking patterns that confuse the scan can be
// annotated with `//countnet:allow lockvet -- <reason>`. Nested
// acquisitions must be declared with `//countnet:lockorder A < B` at
// package level.
package lockvet

import (
	"fmt"
	"go/ast"
	"go/types"

	"countnet/internal/analysis"
)

// Analyzer is the lockvet pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockvet",
	Doc:  "no lock copies, no early return with a lock held, no undeclared nested acquisition",
	Run:  run,
}

// mcsPath is the MCS queue-lock package; its Lock participates like
// sync.Mutex (Acquire/Release pair with an explicit queue node).
const mcsPath = "countnet/internal/shm/mcs"

var acquireNames = map[string]bool{"Lock": true, "RLock": true, "Acquire": true}
var releaseNames = map[string]bool{"Unlock": true, "RUnlock": true, "Release": true}

// isLockType reports whether t is one of the checked lock types.
func isLockType(t types.Type) bool {
	return analysis.IsNamed(t, "sync", "Mutex") ||
		analysis.IsNamed(t, "sync", "RWMutex") ||
		analysis.IsNamed(t, mcsPath, "Lock")
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCopies(pass, fd)
			if fd.Body != nil {
				checkSections(pass, fd)
			}
		}
	}
	return nil
}

// containsLock reports whether a value of type t embeds a lock (so
// copying t copies lock state). The seen set breaks type cycles.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	// Copying a pointer never copies the lock it points at (isLockType
	// unwraps pointers because mu.Lock() through a *Mutex is fine; copy
	// analysis must not).
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return false
	}
	if isLockType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

func copiesLock(t types.Type) bool { return containsLock(t, map[types.Type]bool{}) }

// checkCopies flags lock-bearing values passed or bound by value:
// parameters, value receivers, assignments from a dereference, and call
// arguments that dereference a pointer to a lock-bearing value.
func checkCopies(pass *analysis.Pass, fd *ast.FuncDecl) {
	flagField := func(fl *ast.Field, what string) {
		t := pass.TypesInfo.TypeOf(fl.Type)
		if t == nil {
			return
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return
		}
		if copiesLock(t) {
			pass.Reportf(fl.Pos(), "%s copies a lock: pass *%s instead",
				what, types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
	if fd.Recv != nil {
		for _, fl := range fd.Recv.List {
			flagField(fl, "value receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, fl := range fd.Type.Params.List {
			flagField(fl, "parameter")
		}
	}
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		star, ok := n.(*ast.StarExpr)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(star)
		if t != nil && copiesLock(t) {
			pass.Reportf(star.Pos(), "dereference copies a lock held in %s",
				types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
		return true
	})
}

// event is one lock-relevant point in a function, in source order.
type event struct {
	pos  ast.Node
	kind string // "acquire", "release", "defer-release", "return"
	key  string
}

// checkSections runs the linear critical-section scan over one function.
func checkSections(pass *analysis.Pass, fd *ast.FuncDecl) {
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // closures have their own discipline; scanning across them lies
		case *ast.ReturnStmt:
			events = append(events, event{pos: x, kind: "return"})
		case *ast.DeferStmt:
			if key, ok := lockCall(pass, x.Call, releaseNames); ok {
				events = append(events, event{pos: x, kind: "defer-release", key: key})
			}
			return false
		case *ast.CallExpr:
			if key, ok := lockCall(pass, x, acquireNames); ok {
				events = append(events, event{pos: x, kind: "acquire", key: key})
			} else if key, ok := lockCall(pass, x, releaseNames); ok {
				events = append(events, event{pos: x, kind: "release", key: key})
			}
		}
		return true
	})
	held := []string{}
	holds := func(k string) bool {
		for _, h := range held {
			if h == k {
				return true
			}
		}
		return false
	}
	drop := func(k string) {
		for i, h := range held {
			if h == k {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	for _, ev := range events {
		switch ev.kind {
		case "acquire":
			if holds(ev.key) {
				pass.Reportf(ev.pos.Pos(), "%s acquired while already held: self-deadlock", ev.key)
				continue
			}
			for _, h := range held {
				if !pass.Dirs.HasLockOrder(h, ev.key) {
					pass.Reportf(ev.pos.Pos(),
						"%s acquired while %s is held without a declared order (add `//countnet:lockorder %s < %s` if intended)",
						ev.key, h, h, ev.key)
				}
			}
			held = append(held, ev.key)
		case "release", "defer-release":
			drop(ev.key)
		case "return":
			for _, h := range held {
				pass.Reportf(ev.pos.Pos(), "return with %s held: early-return path leaks the critical section", h)
			}
		}
	}
	if len(held) > 0 && !acquireNames[fd.Name.Name] {
		for _, h := range held {
			pass.Reportf(fd.Body.Rbrace, "%s still held at function end: no release on this path", h)
		}
	}
}

// lockCall reports whether call is <lock>.<method>() for a checked lock
// type and a method in names, returning the lock's canonical key.
func lockCall(pass *analysis.Pass, call *ast.CallExpr, names map[string]bool) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !names[sel.Sel.Name] {
		return "", false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil || !isLockType(t) {
		return "", false
	}
	return lockKey(pass, sel.X), true
}

// lockKey canonicalizes a lock expression: struct fields become
// "OwnerType.field" (stable across receiver names, matching the
// lockorder directive grammar), everything else its source text.
func lockKey(pass *analysis.Pass, e ast.Expr) string {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		if s, ok := pass.TypesInfo.Selections[sel]; ok {
			if n := analysis.NamedType(s.Recv()); n != nil {
				return n.Obj().Name() + "." + sel.Sel.Name
			}
		}
	}
	return exprText(e)
}

// exprText renders a reference expression compactly.
func exprText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	default:
		return fmt.Sprintf("%T", e)
	}
}
