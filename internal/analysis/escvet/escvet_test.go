package escvet_test

import (
	"path/filepath"
	"strings"
	"testing"

	"countnet/internal/analysis"
	"countnet/internal/analysis/antest"
	"countnet/internal/analysis/escvet"
)

func TestEscvet(t *testing.T) {
	antest.Run(t, "../testdata/src/escvet", escvet.Analyzer)
}

// TestEscvetStale covers the allowlist-rot direction: a golden entry the
// compiler no longer emits must be reported at the golden file itself.
// antest cannot express this (want annotations live in Go sources), so
// the finding is asserted directly.
func TestEscvetStale(t *testing.T) {
	abs, err := filepath.Abs("../testdata/src/escvetstale")
	if err != nil {
		t.Fatal(err)
	}
	modRoot, err := analysis.FindModuleRoot(abs)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadDir(modRoot, abs)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{escvet.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the stale-entry one: %v", len(diags), diags)
	}
	d := diags[0]
	if filepath.Base(d.Pos.Filename) != escvet.GoldenName {
		t.Errorf("finding positioned at %s, want the %s file", d.Pos.Filename, escvet.GoldenName)
	}
	if d.Pos.Line != 2 {
		t.Errorf("finding at line %d, want 2 (the stale entry's line)", d.Pos.Line)
	}
	want := `stale escapes.golden entry "a.go:Clean: moved to heap: x"`
	if !strings.Contains(d.Message, want) {
		t.Errorf("message %q does not contain %q", d.Message, want)
	}
}
