// Package escvet pins the compiler's escape and inline decisions on
// //countnet:hotpath functions to a per-package golden allowlist. The
// static discipline hotvet enforces is necessary but not sufficient: a
// perfectly channel-free, lock-free hot path can still start allocating
// because a closure grew a captured variable or an inlining budget
// tipped over, and the regression then surfaces only as a benchmark
// mystery weeks later. escvet re-runs the compiler with -gcflags=-m,
// keeps every "escapes to heap" / "moved to heap" / "cannot inline"
// verdict that lands inside a hotpath-annotated function, and diffs the
// set against escapes.golden in the package directory:
//
//   - a verdict not in the golden is a finding at the offending source
//     line (fix it, or vet the allocation and add the golden entry);
//   - a golden entry the compiler no longer emits is a finding at the
//     golden file's line (the allowlist must not rot into fiction).
//
// Golden entries are one per line, "file.go:Func: verdict" ("#" starts
// a comment); "cannot inline" verdicts are truncated before the
// compiler's cost explanation so a one-point cost drift does not churn
// the file. Packages with no hotpath marks are skipped entirely —
// except that a leftover escapes.golden there is itself reported.
//
// escvet shells out to the go tool (from the module root, against the
// package's source directory, so it works for testdata trees too); when
// the toolchain cannot produce -m output the error wraps ErrToolchain,
// which countnetvet downgrades to a logged skip unless LINT_STRICT=1.
package escvet

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"countnet/internal/analysis"
)

// Analyzer is the escvet pass.
var Analyzer = &analysis.Analyzer{
	Name: "escvet",
	Doc:  "compiler escape/inline decisions on //countnet:hotpath functions must match escapes.golden",
	Run:  run,
}

// ErrToolchain wraps failures of the `go build -gcflags=-m` probe, so
// the driver can distinguish "toolchain cannot do this" from findings.
var ErrToolchain = errors.New("toolchain cannot produce -gcflags=-m output")

// GoldenName is the per-package allowlist filename.
const GoldenName = "escapes.golden"

// diagRE parses one compiler diagnostic line: path:line:col: message.
var diagRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// hotRange is one hotpath function's extent.
type hotRange struct {
	file       string // absolute path
	base       string // basename, used in golden entries
	start, end int    // line range, inclusive
	display    string // (*T).Name or Name
}

func run(pass *analysis.Pass) error {
	hot := hotRanges(pass)
	goldenPath := filepath.Join(pass.Dir, GoldenName)
	golden, goldenExists, err := readGolden(goldenPath)
	if err != nil {
		return err
	}
	if len(hot) == 0 {
		if goldenExists {
			pass.ReportAtf(token.Position{Filename: goldenPath, Line: 1},
				"escapes.golden present but the package has no //countnet:hotpath functions; delete it")
		}
		return nil
	}
	verdicts, err := compilerVerdicts(pass.ModRoot, pass.Dir, hot)
	if err != nil {
		return err
	}
	matched := map[string]bool{}
	for _, v := range verdicts {
		if _, ok := golden[v.entry]; ok {
			matched[v.entry] = true
			continue
		}
		pass.ReportAtf(v.pos, "hot path %s: compiler verdict not in %s: %s", v.display, GoldenName, v.msg)
	}
	for entry, line := range golden {
		if !matched[entry] {
			pass.ReportAtf(token.Position{Filename: goldenPath, Line: line},
				"stale %s entry %q: the compiler no longer reports it", GoldenName, entry)
		}
	}
	return nil
}

// hotRanges collects the package's hotpath-marked function extents.
func hotRanges(pass *analysis.Pass) []hotRange {
	var out []hotRange
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pass.Dirs.MarkedFunc("hotpath", pass.Fset, fd) {
				continue
			}
			start := pass.Fset.Position(fd.Pos())
			end := pass.Fset.Position(fd.End())
			out = append(out, hotRange{
				file:    start.Filename,
				base:    filepath.Base(start.Filename),
				start:   start.Line,
				end:     end.Line,
				display: declDisplay(fd),
			})
		}
	}
	return out
}

// declDisplay renders a declaration like FuncDisplay does, from syntax
// alone: "(*Network).Traverse" or "Traverse".
func declDisplay(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	star := ""
	if p, ok := t.(*ast.StarExpr); ok {
		t = p.X
		star = "*"
	}
	name := "?"
	switch x := t.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := x.X.(*ast.Ident); ok {
			name = id.Name
		}
	}
	return fmt.Sprintf("(%s%s).%s", star, name, fd.Name.Name)
}

// verdict is one compiler decision inside a hotpath function.
type verdict struct {
	entry   string // normalized golden-entry form
	msg     string
	display string
	pos     token.Position
}

// compilerVerdicts builds the package with -gcflags=-m and keeps the
// escape/inline decisions landing inside the given hot ranges.
func compilerVerdicts(modRoot, dir string, hot []hotRange) ([]verdict, error) {
	rel, err := filepath.Rel(modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("escvet: %s is outside module root %s", dir, modRoot)
	}
	cmd := exec.Command("go", "build", "-gcflags=-m", "./"+filepath.ToSlash(rel))
	cmd.Dir = modRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("%w: go build -gcflags=-m: %v\n%s", ErrToolchain, err, out)
	}
	var verdicts []verdict
	for _, line := range strings.Split(string(out), "\n") {
		m := diagRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := normalize(m[4])
		if msg == "" {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(modRoot, file)
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		for _, h := range hot {
			if file == h.file && ln >= h.start && ln <= h.end {
				verdicts = append(verdicts, verdict{
					entry:   fmt.Sprintf("%s:%s: %s", h.base, h.display, msg),
					msg:     msg,
					display: h.display,
					pos:     token.Position{Filename: file, Line: ln, Column: col},
				})
				break
			}
		}
	}
	return verdicts, nil
}

// normalize keeps only the verdict kinds escvet pins, and strips the
// inliner's cost explanation (which drifts with every edit).
func normalize(msg string) string {
	switch {
	case strings.Contains(msg, "escapes to heap"):
		return strings.TrimSuffix(msg, ":")
	case strings.HasPrefix(msg, "moved to heap"):
		return msg
	case strings.HasPrefix(msg, "cannot inline "):
		if i := strings.Index(msg, ":"); i >= 0 {
			return msg[:i]
		}
		return msg
	}
	return ""
}

// readGolden loads the allowlist: entry -> line number.
func readGolden(path string) (map[string]int, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]int{}, false, nil
		}
		return nil, false, err
	}
	golden := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		golden[line] = i + 1
	}
	return golden, true, nil
}
