package gatevet_test

import (
	"testing"

	"countnet/internal/analysis/antest"
	"countnet/internal/analysis/gatevet"
)

func TestGatevet(t *testing.T) {
	antest.Run(t, "../testdata/src/gatevet", gatevet.Analyzer)
}
