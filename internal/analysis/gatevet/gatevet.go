// Package gatevet checks the seqlock-style epoch-gate protocol the
// adaptive counter's exact-counting argument rests on (and that PR 8
// fixed by hand once): a switch closes the gate (odd), drains the
// in-flight census, swaps the epoch state, and reopens the gate (next
// even); tokens check the gate, register in the census, re-check, and
// only then read the epoch. Four field marks and one function mark
// declare the protocol roles:
//
//	//countnet:gate       the gate word itself (even = open, odd = switching)
//	//countnet:gated      epoch state guarded by the gate
//	//countnet:gatecensus the in-flight census stripes
//	//countnet:gatelock   the mutex a switch runs under
//	//countnet:gateheld   a function that runs with the gate closed
//
// gatevet then flags, per function:
//
//   - any plain (non-atomic-method) access of the gate or a gated field
//     — copying an atomic or taking its address bypasses the protocol
//     entirely;
//   - a write (Store/Swap/CompareAndSwap/Add) to the gate or a gated
//     field outside a //countnet:gateheld function — epoch state may
//     only change while the gate is held odd;
//   - an atomic read of a gated field in a function that neither loads
//     the gate first, nor acquires the gate lock, nor is gateheld —
//     the load/validate pair is what makes a read safe;
//   - a census increment sequenced before the function's first gate
//     load (the PR 8 bug class): a token that bumps the census before
//     checking the gate can hold a switcher's drain scan hostage or
//     slip into a retiring epoch. Decrements (back-out, exit) are free.
//
// The analysis is lexical within one function body — the protocol is
// deliberately written so each role transition is visible in a single
// function, and the checker enforces that shape rather than chasing
// aliases. Intentional exceptions (a constructor storing the first
// epoch before any reader exists, an advisory snapshot read) carry
// //countnet:allow gatevet directives with their justification.
package gatevet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"countnet/internal/analysis"
)

// Analyzer is the gatevet pass.
var Analyzer = &analysis.Analyzer{
	Name: "gatevet",
	Doc:  "epoch-gate protocol: gated state only behind a load/validate pair, writes only gateheld, census increments after the gate check",
	Run:  run,
}

// Field roles, from the countnet mark verbs.
const (
	roleGate   = "gate"
	roleGated  = "gated"
	roleCensus = "gatecensus"
	roleLock   = "gatelock"
)

// event is one protocol-relevant access, ordered by source position.
type event struct {
	pos  token.Pos
	kind int
	name string // field name, for the message
}

// Event kinds.
const (
	evGateLoad = iota
	evGateWrite
	evGatedRead
	evGatedWrite
	evGatedPlain
	evCensusInc
	evLockAcquire
)

// atomicWrites are the sync/atomic method names that mutate the value.
var atomicWrites = map[string]bool{"Store": true, "Swap": true, "CompareAndSwap": true, "Add": true, "Or": true, "And": true}

func run(pass *analysis.Pass) error {
	fields := markedFields(pass)
	if len(fields) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fields, fd)
		}
	}
	return nil
}

// markedFields collects the package's protocol fields: struct fields
// carrying one of the gate role marks, keyed by their types.Var.
func markedFields(pass *analysis.Pass) map[*types.Var]string {
	fields := map[*types.Var]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					for _, role := range []string{roleGate, roleGated, roleCensus, roleLock} {
						if pass.Dirs.MarkedField(role, pass.Fset, fld) {
							fields[v] = role
						}
					}
				}
			}
			return true
		})
	}
	return fields
}

// checkFunc applies the protocol rules to one function body.
func checkFunc(pass *analysis.Pass, fields map[*types.Var]string, fd *ast.FuncDecl) {
	gateheld := pass.Dirs.MarkedFunc("gateheld", pass.Fset, fd)
	// consumed marks selector nodes that belong to a classified atomic
	// method call, so the plain-access sweep does not re-flag them.
	consumed := map[ast.Node]bool{}
	var events []event

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fld, role := baseField(pass.TypesInfo, fields, sel.X, consumed)
		if fld == nil {
			return true
		}
		method := sel.Sel.Name
		switch role {
		case roleGate:
			if method == "Load" {
				events = append(events, event{call.Pos(), evGateLoad, fld.Name()})
			} else if atomicWrites[method] {
				events = append(events, event{call.Pos(), evGateWrite, fld.Name()})
			}
		case roleGated:
			if method == "Load" {
				events = append(events, event{call.Pos(), evGatedRead, fld.Name()})
			} else if atomicWrites[method] {
				events = append(events, event{call.Pos(), evGatedWrite, fld.Name()})
			}
		case roleCensus:
			if method == "Add" && !isDecrement(call) {
				events = append(events, event{call.Pos(), evCensusInc, fld.Name()})
			}
		case roleLock:
			if method == "Lock" {
				events = append(events, event{call.Pos(), evLockAcquire, fld.Name()})
			}
		}
		return true
	})

	// Plain accesses: any remaining selection of the gate or a gated
	// field outside the classified atomic calls.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || consumed[sel] {
			return true
		}
		v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		if role := fields[v]; role == roleGate || role == roleGated {
			events = append(events, event{sel.Pos(), evGatedPlain, v.Name()})
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	gateLoaded, lockHeld := false, false
	for _, e := range events {
		switch e.kind {
		case evGateLoad:
			gateLoaded = true
		case evLockAcquire:
			lockHeld = true
		case evGatedPlain:
			pass.Reportf(e.pos, "plain access of gate-guarded field %s bypasses the epoch gate (use its atomic methods)", e.name)
		case evGateWrite:
			if !gateheld {
				pass.Reportf(e.pos, "write to epoch gate %s outside a //countnet:gateheld switch path", e.name)
			}
		case evGatedWrite:
			if !gateheld {
				pass.Reportf(e.pos, "write to gate-guarded field %s without the gate held odd (mark the function //countnet:gateheld or fix the protocol)", e.name)
			}
		case evGatedRead:
			if !gateheld && !gateLoaded && !lockHeld {
				pass.Reportf(e.pos, "read of gate-guarded field %s outside a gate load/validate pair", e.name)
			}
		case evCensusInc:
			if !gateheld && !gateLoaded {
				pass.Reportf(e.pos, "census increment on %s sequenced before the gate check (a token could enter a retiring epoch)", e.name)
			}
		}
	}
}

// baseField walks a selector/index chain (c.inflight[slot].v, c.gate)
// down to the first protocol field it selects, recording the traversed
// selectors as consumed.
func baseField(info *types.Info, fields map[*types.Var]string, e ast.Expr, consumed map[ast.Node]bool) (*types.Var, string) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if v, ok := info.Uses[x.Sel].(*types.Var); ok {
				if role, ok := fields[v]; ok {
					consumed[x] = true
					return v, role
				}
			}
			e = x.X
		default:
			return nil, ""
		}
	}
}

// isDecrement reports whether an Add call's argument is a negative
// constant; anything else is conservatively treated as an increment.
func isDecrement(call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || u.Op != token.SUB {
		return false
	}
	_, isLit := ast.Unparen(u.X).(*ast.BasicLit)
	return isLit
}
