// Package obsvet protects the Section 5 measurement-non-perturbation
// invariant: observability disabled must cost nothing on the hot path
// (PR 2 locks this down with 0 allocs/op benchmarks). Engines hold nil
// Tracer/metric pointers when disabled, so every call on an obs-typed
// value must be provably guarded. A call site is accepted when any of
// these hold:
//
//   - it sits in the body of an `if X != nil` (or the else of an
//     `if X == nil`) where X is the receiver or one of its prefixes
//     (`if s.tr != nil { s.tr.Record(...) }`, `if o.depth != nil {
//     o.depth[id].Add(1) }`);
//   - an earlier statement in an enclosing block is a terminating nil
//     guard on a prefix (`o := n.obs; if o == nil { return ... }` — this
//     is also how nil-safe wrapper methods like simMetrics pass: the
//     receiver's own `if m == nil { return }` guard covers every
//     `m.<metric>` call after it);
//   - the receiver roots in a value bound from a *obs.Registry method
//     call (`cells := reg.Counter("x")`) or an obs.New* constructor
//     (`clock := obs.NewClock()`), which never return nil;
//   - a field in the receiver chain carries a field-declaration
//     `//countnet:allow obsvet -- <reason>` stating the field is never
//     nil by construction (the combine.Funnel pattern, where New
//     substitutes no-op instances when metrics are disabled).
//
// The obs package itself is exempt: implementations cannot nil-guard
// their own receivers.
package obsvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"countnet/internal/analysis"
)

// Analyzer is the obsvet pass.
var Analyzer = &analysis.Analyzer{
	Name: "obsvet",
	Doc:  "every Tracer/metrics call must be nil-guarded so disabled observability costs nothing",
	Run:  run,
}

// ObsPath is the import path of the observability package whose types
// are hot-path hazards.
const ObsPath = "countnet/internal/obs"

// checkedTypes are the obs types whose methods must only be called
// behind a guard. Registry is deliberately absent: registration happens
// on setup paths, not hot paths, and a nil registry panics loudly in
// tests rather than silently perturbing measurement.
var checkedTypes = map[string]bool{
	"Tracer": true, "Ring": true, "Counter": true, "Gauge": true,
	"MinMax": true, "Histogram": true, "Ratio": true,
	// The causal span layer: engines hold a nil *Clock when tracing is
	// off and a nil *Flight when the black box is not armed, so span
	// stamping and flight recording sit under the same zero-cost rule.
	"Clock": true, "Flight": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == ObsPath {
		return nil
	}
	fromReg := registrySourced(pass)
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := sel.X
			t := pass.TypesInfo.TypeOf(recv)
			if t == nil || !isCheckedObsType(t) {
				return true
			}
			if guarded(pass, recv, stack) || fieldAllowed(pass, recv) ||
				registrySafe(pass, recv, fromReg) {
				return true
			}
			pass.Reportf(call.Pos(),
				"unguarded %s call on %s: guard with a nil check (or an EnableObs gate) so disabled observability costs nothing",
				sel.Sel.Name, types.TypeString(t, shortQualifier(pass.Pkg)))
			return true
		})
	}
	return nil
}

// registrySourced collects the variables bound directly from a
// *obs.Registry method call (m := reg.Counter("x")) or an obs.New*
// constructor (clock := obs.NewClock()). Neither ever returns nil — the
// registry substitutes a live metric on first use, constructors allocate
// — so calls through such variables need no guard.
func registrySourced(pass *analysis.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isNonNilSource(pass, call) {
			return
		}
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			out[obj] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						mark(x.Lhs[i], x.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(x.Names) == len(x.Values) {
					for i := range x.Names {
						mark(x.Names[i], x.Values[i])
					}
				}
			}
			return true
		})
	}
	return out
}

// isNonNilSource reports whether call provably returns a non-nil obs
// value: a method call on *obs.Registry, or an obs package-level New*
// constructor (NewClock, NewFlight, NewRing, ...).
func isNonNilSource(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if analysis.IsNamed(pass.TypesInfo.TypeOf(sel.X), ObsPath, "Registry") {
		return true
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == ObsPath && len(fn.Name()) > 3 && fn.Name()[:3] == "New"
}

// registrySafe reports whether the receiver chain roots in a value that
// cannot be nil: a variable bound from a Registry call or obs.New*
// constructor, or such a call chained directly (reg.Counter("x").Inc()).
func registrySafe(pass *analysis.Pass, recv ast.Expr, fromReg map[types.Object]bool) bool {
	for _, p := range analysis.ExprPrefixes(recv) {
		switch x := p.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.ObjectOf(x); obj != nil && fromReg[obj] {
				return true
			}
		case *ast.CallExpr:
			if isNonNilSource(pass, x) {
				return true
			}
		}
	}
	return false
}

// shortQualifier renders foreign types as pkgname.Type (not the full
// import path) and local types bare.
func shortQualifier(local *types.Package) types.Qualifier {
	return func(p *types.Package) string {
		if p == local {
			return ""
		}
		return p.Name()
	}
}

func isCheckedObsType(t types.Type) bool {
	n := analysis.NamedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == ObsPath && checkedTypes[obj.Name()]
}

// guarded reports whether some prefix of recv is nil-checked on the path
// to the call: an enclosing if/else arm, or an earlier terminating
// `if X == nil` guard in an enclosing block.
func guarded(pass *analysis.Pass, recv ast.Expr, stack []ast.Node) bool {
	prefixes := analysis.ExprPrefixes(recv)
	covers := func(e ast.Expr) bool {
		for _, p := range prefixes {
			if analysis.SameExpr(pass.TypesInfo, e, p) {
				return true
			}
		}
		return false
	}
	for i, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		// Which arm is the call in?
		var arm ast.Node
		if i+1 < len(stack) {
			arm = stack[i+1]
		}
		op := token.NEQ // body arm: `if X != nil { call }`
		if arm == ifs.Else {
			op = token.EQL // else arm: `if X == nil {} else { call }`
		}
		for _, e := range analysis.NilComparisons(ifs.Cond, op) {
			if covers(e) {
				return true
			}
		}
	}
	// Early-return guards in enclosing blocks.
	for i, n := range stack {
		block, ok := n.(*ast.BlockStmt)
		if !ok || i+1 >= len(stack) {
			continue
		}
		for _, stmt := range block.List {
			if stmt == stack[i+1] {
				break // statements past the call site cannot guard it
			}
			ifs, ok := stmt.(*ast.IfStmt)
			if !ok || ifs.Else != nil || len(ifs.Body.List) == 0 {
				continue
			}
			if !analysis.Terminates(ifs.Body.List[len(ifs.Body.List)-1]) {
				continue
			}
			for _, e := range analysis.NilComparisons(ifs.Cond, token.EQL) {
				if covers(e) {
					return true
				}
			}
		}
	}
	return false
}

// fieldAllowed reports whether any field in the receiver chain carries a
// same-package field-declaration allow for obsvet, sanctioning every use
// of that field.
func fieldAllowed(pass *analysis.Pass, recv ast.Expr) bool {
	for _, p := range analysis.ExprPrefixes(recv) {
		sel, ok := p.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		v, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var)
		if !ok || !v.IsField() || v.Pkg() != pass.Pkg {
			continue
		}
		if pass.Dirs.Allowed("obsvet", pass.Fset.Position(v.Pos())) {
			return true
		}
	}
	return false
}
