package obsvet_test

import (
	"testing"

	"countnet/internal/analysis/antest"
	"countnet/internal/analysis/obsvet"
)

func TestGolden(t *testing.T) {
	antest.Run(t, "../testdata/src/obsvet", obsvet.Analyzer)
}
