package atomicvet_test

import (
	"testing"

	"countnet/internal/analysis/antest"
	"countnet/internal/analysis/atomicvet"
)

func TestGolden(t *testing.T) {
	antest.Run(t, "../testdata/src/atomicvet", atomicvet.Analyzer)
}
