// Package atomicvet enforces the toggle discipline behind Theorem 3.6:
// a field (or package-level variable) that is accessed through sync/atomic
// anywhere in a package is an atomic field everywhere — one plain read of
// a balancer toggle or prism slot is a data race the race detector only
// catches when the schedule cooperates, and a silently stale read breaks
// the step property that all linearizability evidence builds on.
//
// Fields of the atomic.Int64-style wrapper types are safe by construction
// (the type system forbids plain access); this analyzer covers the
// function-style API, where the compiler accepts both access modes.
package atomicvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"countnet/internal/analysis"
)

// Analyzer is the atomicvet pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicvet",
	Doc:  "a field accessed via sync/atomic must never be read or written plainly",
	Run:  run,
}

// atomicOps are the sync/atomic function-name prefixes that take the
// address of the shared word.
var atomicOps = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"}

func isAtomicOp(name string) bool {
	for _, p := range atomicOps {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	// Pass 1: every &x passed to a sync/atomic function marks x's field
	// (or package-level var) as atomic, and the address expression itself
	// as sanctioned.
	atomicVars := map[*types.Var]token.Pos{}
	sanctioned := map[ast.Expr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := analysis.PkgFunc(pass.TypesInfo, call, "sync/atomic")
			if !ok || !isAtomicOp(name) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				target := ast.Unparen(un.X)
				v := analysis.FieldOf(pass.TypesInfo, target)
				if v == nil {
					continue
				}
				if _, seen := atomicVars[v]; !seen {
					atomicVars[v] = call.Pos()
				}
				sanctioned[target] = true
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}
	// Pass 2: any other reference to those vars is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var v *types.Var
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if fv, ok := pass.TypesInfo.ObjectOf(x.Sel).(*types.Var); ok && fv.IsField() {
					v = fv
				}
			case *ast.Ident:
				if fv, ok := pass.TypesInfo.ObjectOf(x).(*types.Var); ok && !fv.IsField() {
					v = fv
				}
			default:
				return true
			}
			if v == nil {
				return true
			}
			first, isAtomic := atomicVars[v]
			if !isAtomic || sanctioned[n.(ast.Expr)] {
				return true
			}
			// The declaration site and struct literals keyed by the field
			// are not accesses.
			if pass.Fset.Position(n.Pos()) == pass.Fset.Position(v.Pos()) {
				return true
			}
			pass.Reportf(n.Pos(),
				"plain access to %s, which is accessed atomically at %s; every access must go through sync/atomic",
				v.Name(), pass.Fset.Position(first))
			return false
		})
	}
	return nil
}
