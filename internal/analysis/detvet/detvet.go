// Package detvet enforces seed-reproducibility in packages marked
// //countnet:deterministic: the simulator's acceptance test (bit-identical
// runs per seed) and every scripted-schedule experiment rest on those
// packages being pure functions of their seeds. The analyzer forbids the
// four ways Go code silently picks up ambient nondeterminism:
//
//   - wall-clock reads (time.Now, time.Since, ...) and timer construction;
//   - the global math/rand source (seeded from runtime entropy) — only
//     explicitly seeded *rand.Rand values are allowed;
//   - ranging over a map, whose iteration order is randomized per run;
//   - spawning goroutines or selecting over multiple ready channels,
//     which hand ordering decisions to the scheduler.
package detvet

import (
	"go/ast"
	"go/types"

	"countnet/internal/analysis"
)

// Analyzer is the detvet pass.
var Analyzer = &analysis.Analyzer{
	Name: "detvet",
	Doc:  "forbid wall-clock, global rand, map-order, and scheduler dependence in //countnet:deterministic packages",
	Run:  run,
}

// wallClock lists the time package functions that read the wall clock or
// create runtime timers; any of them makes a run irreproducible.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandOK lists math/rand package functions that do NOT draw from
// the global source and are therefore allowed (constructors for
// explicitly seeded generators).
var seededRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !pass.Dirs.Deterministic {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, x)
			case *ast.RangeStmt:
				checkRange(pass, x)
			case *ast.GoStmt:
				pass.Reportf(x.Pos(), "goroutine spawn in deterministic package: completion order depends on the scheduler")
			case *ast.SelectStmt:
				checkSelect(pass, x)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if name, ok := analysis.PkgFunc(pass.TypesInfo, call, "time"); ok && wallClock[name] {
		pass.Reportf(call.Pos(), "time.%s in deterministic package: wall-clock reads break same-seed reproducibility", name)
		return
	}
	for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
		if name, ok := analysis.PkgFunc(pass.TypesInfo, call, randPkg); ok && !seededRandOK[name] {
			pass.Reportf(call.Pos(), "%s.%s draws from the global (runtime-seeded) source; use an explicitly seeded *rand.Rand", randPkg, name)
			return
		}
	}
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		pass.Reportf(rng.Pos(), "map iteration order is randomized per run; iterate a sorted slice of keys instead")
	}
}

func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	comms := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms >= 2 {
		pass.Reportf(sel.Pos(), "select over %d channels picks a ready case at random; deterministic code must not race channels", comms)
	}
}
