package detvet_test

import (
	"testing"

	"countnet/internal/analysis/antest"
	"countnet/internal/analysis/detvet"
)

func TestGolden(t *testing.T) {
	antest.Run(t, "../testdata/src/detvet", detvet.Analyzer)
}
