// Package obsvetdata seeds guarded and unguarded observability call
// sites for obsvet: the engine-style struct holds nil obs pointers when
// observability is disabled, so every call must be provably guarded.
package obsvetdata

import "countnet/internal/obs"

type engine struct {
	tr    obs.Tracer
	tog   *obs.Counter
	ratio *obs.Ratio
	//countnet:allow obsvet -- New substitutes a no-op counter when metrics are off; never nil
	safe *obs.Counter
	mx   *metrics
}

type metrics struct {
	depth *obs.Gauge
}

func (e *engine) Unguarded() {
	e.tog.Inc() // want `unguarded Inc call on \*obs\.Counter`
}

func (e *engine) SiblingGuard(wait int64) {
	if e.tog != nil {
		e.tog.Inc()
		e.ratio.Observe(wait) // want `unguarded Observe call on \*obs\.Ratio`
	}
}

func (e *engine) Guarded(wait int64) {
	if e.tog != nil {
		e.tog.Inc()
	}
	if e.ratio != nil {
		e.ratio.Observe(wait)
	}
	if e.tr != nil {
		e.tr.Record(obs.Event{})
	}
}

func (e *engine) ElseArm() {
	if e.tog == nil {
		return
	} else {
		e.tog.Inc()
	}
}

func (e *engine) EarlyReturnGuard() {
	if e.tog == nil {
		return
	}
	e.tog.Inc()
}

func (e *engine) FieldAllow() {
	e.safe.Inc() // sanctioned by the field-declaration allow
}

// observeDepth is a nil-safe wrapper (the simMetrics pattern): the
// receiver guard covers the m.depth call, and unguarded call sites are
// out of obsvet's scope because *metrics is not an obs type.
func (m *metrics) observeDepth(v int64) {
	if m == nil {
		return
	}
	m.depth.Set(v)
}

func (e *engine) NilSafeCallee() {
	e.mx.observeDepth(3)
}

// Registry-sourced metrics are never nil: both the bound-variable and
// the chained-call form need no guard.
func RegistrySourced(reg *obs.Registry) {
	c := reg.Counter("cells")
	c.Inc()
	reg.Histogram("wait").Observe(1)
}

// The causal span layer follows the same rule: a traced engine holds a
// nil *Clock / *Flight when observability is off, so span stamping and
// flight recording must be guarded too.
type spanEngine struct {
	clock  *obs.Clock
	flight *obs.Flight
}

func (e *spanEngine) UnguardedSpans() {
	e.clock.Tick()               // want `unguarded Tick call on \*obs\.Clock`
	e.flight.Record(obs.Event{}) // want `unguarded Record call on \*obs\.Flight`
}

func (e *spanEngine) GuardedSpans(remote uint64) {
	if e.clock != nil {
		e.clock.Witness(remote)
		_ = e.clock.Tick()
	}
	if e.flight != nil {
		e.flight.Trip("liveness-valve")
	}
}

// Constructor-sourced values are never nil: both the bound-variable and
// the chained-call form need no guard.
func ConstructorSourced(meta obs.Meta) {
	clock := obs.NewClock()
	_ = clock.Tick()
	f := obs.NewFlight(meta, 1, 8)
	f.Record(obs.Event{})
	obs.NewRing(1, 8).Record(obs.Event{})
}
