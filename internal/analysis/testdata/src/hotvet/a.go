// Package hotvetdata seeds hot-path violations for the hotvet golden
// test: blocking calls at several interprocedural depths, devirtualized
// interface dispatch, a coldpath boundary that stops the walk, and
// stdlib calls that must NOT be followed (their source is outside the
// loaded program).
package hotvetdata

import (
	"io"
	"sort"
	"sync"
	"time"
)

type ring struct {
	mu  sync.Mutex
	buf []int
	ch  chan int
}

//countnet:hotpath
func (r *ring) Next() int {
	r.mu.Lock() // want `hot path \(\*ring\)\.Next: blocking sync call \(\*Mutex\)\.Lock \(depth 0\)`
	v := helper(r)
	sort.Ints(r.buf) // cross-module call: not followed, no findings from sort's internals
	control(r)       // coldpath boundary: control's Sleep is not reported
	return v
}

func helper(r *ring) int {
	time.Sleep(time.Nanosecond) // want `hot path \(\*ring\)\.Next: time\.Sleep \(parks the goroutine\) \(depth 1, via helper\)`
	return deep(r)
}

func deep(r *ring) int {
	r.ch <- 1     // want `hot path \(\*ring\)\.Next: channel send \(depth 2, via helper → deep\)`
	return <-r.ch // want `channel receive \(depth 2, via helper → deep\)`
}

//countnet:coldpath
func control(r *ring) {
	time.Sleep(time.Millisecond) // reviewed boundary: no finding
}

type stepper interface{ step() int }

type fast struct{ n int }

func (f *fast) step() int { return f.n } // clean implementation: no findings

type slow struct{ mu sync.Mutex }

func (s *slow) step() int {
	s.mu.Lock()         // want `hot path Run: blocking sync call \(\*Mutex\)\.Lock \(depth 1, via \(\*slow\)\.step\)`
	defer s.mu.Unlock() // want `hot path Run: defer \(schedules work and pins the frame\) \(depth 1, via \(\*slow\)\.step\)`
	return 0
}

//countnet:hotpath
func Run(s stepper) int {
	return s.step() // devirtualized: walked through both *fast and *slow
}

//countnet:hotpath
func Flush(w io.Writer) {
	w.Write(nil) // want `hot path Flush: interface-method call Writer\.Write on an interface declared outside the program`
}

//countnet:hotpath
func Alloc(n int) *ring {
	m := make(map[int]int) // want `hot path Alloc: make\(map\) \(heap allocation\) \(depth 0\)`
	m[n] = n
	c := make(chan int) // want `make\(chan\) \(heap allocation\)`
	go drain(c)         // want `goroutine spawn`
	buf := make([]int, n)
	_ = buf        // make of a slice is not flagged here; escvet owns the compiler's verdict
	p := new(ring) // want `new \(heap allocation\)`
	_ = &ring{}    // want `address-taken composite literal \(heap allocation\)`
	return p
}

func drain(c chan int) {
	for range c { // only reachable through `go`: the spawned body is off the hot path
	}
}

//countnet:hotpath
func Mix(c chan int) int {
	select { // want `hot path Mix: select statement \(channel rendezvous\) \(depth 0\)`
	case v := <-c:
		return v
	case c <- 1:
	}
	s := 0
	for v := range c { // want `range over channel`
		s += v
	}
	return s
}

//countnet:hotpath
func Park(r *ring) {
	//countnet:allow hotvet -- seeded example of intentional backoff parking
	time.Sleep(time.Microsecond)
}
