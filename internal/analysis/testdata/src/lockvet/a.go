// Package lockvetdata seeds lock-discipline violations for lockvet:
// copies, leaked critical sections, and undeclared nested acquisition.
//
//countnet:lockorder T.outer < T.inner
package lockvetdata

import (
	"sync"

	"countnet/internal/shm/mcs"
)

type T struct {
	a, b         sync.Mutex
	outer, inner sync.Mutex
	n            int
}

func ByValue(mu sync.Mutex) {} // want `parameter copies a lock`

func ByPointer(mu *sync.Mutex, c *int) {
	mu.Lock()
	*c++ // dereferencing a non-lock pointer is fine
	mu.Unlock()
}

func (t T) ValueRecv() {} // want `value receiver copies a lock`

func Deref(t *T) {
	u := *t // want `dereference copies a lock`
	_ = u
}

func (t *T) EarlyReturnLeak(x int) int {
	t.a.Lock()
	if x < 0 {
		return -1 // want `return with T\.a held`
	}
	t.a.Unlock()
	return x
}

func (t *T) DeferIsSafe(x int) int {
	t.a.Lock()
	defer t.a.Unlock()
	if x < 0 {
		return -1
	}
	return x
}

func (t *T) UnlockBeforeReturn(x int) int {
	t.a.Lock()
	if x < 0 {
		t.a.Unlock()
		return -1
	}
	t.a.Unlock()
	return x
}

func (t *T) UndeclaredNesting() {
	t.a.Lock()
	t.b.Lock() // want `T\.b acquired while T\.a is held without a declared order`
	t.b.Unlock()
	t.a.Unlock()
}

func (t *T) DeclaredNesting() {
	t.outer.Lock()
	t.inner.Lock()
	t.inner.Unlock()
	t.outer.Unlock()
}

func (t *T) SelfDeadlock() {
	t.a.Lock()
	t.a.Lock() // want `T\.a acquired while already held`
	t.a.Unlock()
	t.a.Unlock()
}

func (t *T) NeverReleased() {
	t.a.Lock()
	t.n++
} // want `T\.a still held at function end`

type Q struct {
	lock mcs.Lock
	pool mcs.Pool
	v    int
}

func (q *Q) MCSLeak(x int) int {
	n := q.pool.Get()
	q.lock.Acquire(n)
	if x < 0 {
		return -1 // want `return with Q\.lock held`
	}
	q.lock.Release(n)
	q.pool.Put(n)
	return q.v
}

func (q *Q) MCSBalanced() int {
	n := q.pool.Get()
	q.lock.Acquire(n)
	v := q.v
	q.lock.Release(n)
	q.pool.Put(n)
	return v
}

func (t *T) SuppressedLeak() {
	t.a.Lock()
	//countnet:allow lockvet -- handed to the caller, released in MustUnlock
}

func (t *T) MustUnlock() { t.a.Unlock() }
