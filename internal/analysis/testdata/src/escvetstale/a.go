// Package escvetstale has a clean hot path but a rotten allowlist: its
// escapes.golden still claims an escape the compiler no longer reports.
package escvetstale

//countnet:hotpath
func Clean(a, b int64) int64 {
	return a + b
}
