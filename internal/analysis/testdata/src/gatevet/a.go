// Package gatevetdata seeds epoch-gate protocol violations for the
// gatevet golden test, including the PR 8 bug class: a census increment
// sequenced before the gate check.
package gatevetdata

import (
	"sync"
	"sync/atomic"
)

type state struct{ base int64 }

type pad struct {
	v atomic.Int64
	_ [56]byte
}

type counter struct {
	gate     atomic.Int64          //countnet:gate
	cur      atomic.Pointer[state] //countnet:gated
	inflight [4]pad                //countnet:gatecensus
	mu       sync.Mutex            //countnet:gatelock
}

// goodEnter is the canonical check → census → re-check → read sequence.
func (c *counter) goodEnter(slot int) *state {
	if c.gate.Load()&1 == 0 {
		c.inflight[slot].v.Add(1)
		if c.gate.Load()&1 == 0 {
			return c.cur.Load()
		}
		c.inflight[slot].v.Add(-1)
	}
	return nil
}

// badEnter registers in the census before ever checking the gate — the
// exact ordering bug the drain scan cannot survive.
func (c *counter) badEnter(slot int) *state {
	c.inflight[slot].v.Add(1) // want `census increment on inflight sequenced before the gate check`
	if c.gate.Load()&1 == 0 {
		return c.cur.Load()
	}
	c.inflight[slot].v.Add(-1)
	return nil
}

// badRead loads epoch state with no gate validation at all.
func (c *counter) badRead() *state {
	return c.cur.Load() // want `read of gate-guarded field cur outside a gate load/validate pair`
}

// lockedRead is legal: the switch lock excludes any concurrent switch.
func (c *counter) lockedRead() *state {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur.Load()
}

// plainRead copies the atomic wrapper, bypassing the protocol entirely.
func (c *counter) plainRead() any {
	p := &c.cur // want `plain access of gate-guarded field cur bypasses the epoch gate`
	return p
}

// badWrite installs a new epoch without holding the gate odd.
func (c *counter) badWrite(s *state) {
	c.cur.Store(s) // want `write to gate-guarded field cur without the gate held odd`
}

// badGateTouch flips the gate from a function not marked gateheld.
func (c *counter) badGateTouch() {
	c.gate.Add(1) // want `write to epoch gate gate outside a //countnet:gateheld switch path`
}

// switchLocked is the sanctioned switch path.
//
//countnet:gateheld
func (c *counter) switchLocked(s *state) {
	c.gate.Add(1)
	for c.census() > 0 {
	}
	c.cur.Store(s)
	c.gate.Add(1)
}

// census only reads the stripes; reads are free.
func (c *counter) census() int64 {
	var n int64
	for i := range c.inflight {
		n += c.inflight[i].v.Load()
	}
	return n
}

// snapshot is an intentionally advisory read, carrying its reason.
func (c *counter) snapshot() *state {
	//countnet:allow gatevet -- advisory snapshot; epochs are immutable once published
	return c.cur.Load()
}
