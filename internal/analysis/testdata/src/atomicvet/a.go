// Package atomicvetdata seeds mixed atomic/plain accesses for atomicvet.
package atomicvetdata

import "sync/atomic"

type toggle struct {
	state int64
	wire  int // never touched atomically: plain access fine
}

func (t *toggle) Flip() int64 {
	return atomic.AddInt64(&t.state, 1)
}

func (t *toggle) Peek() int64 {
	return t.state // want `plain access to state, which is accessed atomically`
}

func (t *toggle) Set(v int64) {
	t.state = v // want `plain access to state, which is accessed atomically`
}

func (t *toggle) Wire() int {
	return t.wire
}

var visits int64

func Visit() { atomic.AddInt64(&visits, 1) }

func PeekVisits() int64 {
	return visits // want `plain access to visits, which is accessed atomically`
}

func SnapshotForTest(t *toggle) int64 {
	//countnet:allow atomicvet -- read under quiescence in the harness, no concurrent writers
	return t.state
}
