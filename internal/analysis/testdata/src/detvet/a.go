// Package detvetdata seeds every violation class detvet must catch,
// plus the suppression forms it must honor.
//
//countnet:deterministic
package detvetdata

import (
	"math/rand"
	"time"
)

func Clocks() time.Duration {
	t := time.Now()     // want `time\.Now in deterministic package`
	d := time.Since(t)  // want `time\.Since in deterministic package`
	time.Sleep(d)       // want `time\.Sleep in deterministic package`
	_ = time.Unix(0, 0) // construction from a constant is fine
	return time.Duration(1)
}

func Rand() int {
	x := rand.Int() // want `math/rand\.Int draws from the global`
	r := rand.New(rand.NewSource(7))
	x += r.Intn(10) // explicitly seeded generator: allowed
	return x
}

func MapOrder(m map[int]int) int {
	sum := 0
	for k := range m { // want `map iteration order is randomized`
		sum += k
	}
	return sum
}

func Scheduler(ch1, ch2 chan int) {
	go func() {}() // want `goroutine spawn in deterministic package`
	select {       // want `select over 2 channels`
	case <-ch1:
	case <-ch2:
	}
}

func SingleCaseSelectOK(ch chan int) {
	select {
	case <-ch:
	}
}

func Suppressed() {
	//countnet:allow detvet -- wall clock feeds a progress log line, not the schedule
	_ = time.Now()
}

func EmptyReason() {
	// wantbelow `empty reason`
	//countnet:allow detvet --
	_ = time.Now() // want `time\.Now in deterministic package`
}
