// Package suppress exercises the countnet directive grammar.
//
//countnet:deterministic
//countnet:lockorder T.a < T.b
package suppress

import "sync"

// T carries two ordered locks.
type T struct {
	a, b sync.Mutex
}
