// Package suppress exercises the countnet directive grammar.
//
//countnet:deterministic
//countnet:lockorder T.a < T.b
package suppress

import "sync"

// T carries two ordered locks, plus a field claiming two protocol roles
// with two directives on one comment line.
type T struct {
	a, b sync.Mutex
	g    int64 //countnet:gate //countnet:gated
}

// mistyped carries a typoed verb: a diagnostic, never a silent no-op.
//
//countnet:hotpathh // want `unknown countnet directive "hotpathh"`
func mistyped() {}

var _ = mistyped
