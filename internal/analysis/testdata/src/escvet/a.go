// Package escvetdata seeds one vetted and one unvetted escape on a hot
// path for the escvet golden test.
package escvetdata

type node struct {
	next *node
	val  int64
}

//countnet:hotpath
func Covered() *node {
	return &node{val: 1}
}

//countnet:hotpath
func Leaky(n int) *node {
	x := node{val: int64(n)} // want `hot path Leaky: compiler verdict not in escapes\.golden: moved to heap: x`
	return &x
}

func cold() *node {
	return &node{val: 2}
}

var _ = cold
