package analysis_test

import (
	"testing"

	"countnet/internal/analysis/antest"
)

// TestDirectiveFindings runs the suppress package through the golden
// harness with no analyzers at all: the findings it asserts are the
// directive pseudo-analyzer's own (an unknown verb must be reported,
// well-formed directives must not be).
func TestDirectiveFindings(t *testing.T) {
	antest.Run(t, "testdata/src/suppress")
}
