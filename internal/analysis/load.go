package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked analysis target.
type Package struct {
	// Path is the import path; Dir the source directory; ModRoot the
	// enclosing module root the package was loaded relative to.
	Path    string
	Dir     string
	ModRoot string

	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Directives *Directives
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (relative to modRoot)
// and returns them ready for analysis. It resolves every import from the
// compiler's export data via `go list -export`, so it needs no network
// and no third-party loader; only non-test files are analyzed, matching
// the paper-invariant scope (hot paths live in library code).
func Load(modRoot string, patterns []string) ([]*Package, error) {
	pkgs, exports, err := goList(modRoot, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, lp := range pkgs {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		p, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		p.ModRoot = modRoot
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir type-checks the single package rooted at dir (used by the
// analyzer golden tests over testdata trees, which `go list` does not
// see). Imports are resolved from export data listed via modRoot.
func LoadDir(modRoot, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	var parsed []*ast.File
	importSet := map[string]bool{}
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
		for _, im := range f.Imports {
			importSet[strings.Trim(im.Path.Value, `"`)] = true
		}
	}
	var imports []string
	for path := range importSet {
		if path != "unsafe" {
			imports = append(imports, path)
		}
	}
	sort.Strings(imports)
	exports := map[string]string{}
	if len(imports) > 0 {
		_, exports, err = goList(modRoot, imports)
		if err != nil {
			return nil, err
		}
	}
	lp := listPkg{ImportPath: parsed[0].Name.Name, Dir: dir, GoFiles: files}
	p, err := typecheckParsed(fset, newExportImporter(fset, exports), lp, parsed)
	if err != nil {
		return nil, err
	}
	p.ModRoot = modRoot
	return p, nil
}

// goList runs `go list -export -deps -json` over the patterns and returns
// the listed packages plus the import-path -> export-data-file map.
func goList(modRoot string, patterns []string) ([]listPkg, map[string]string, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = modRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, err
	}
	dec := json.NewDecoder(out)
	var pkgs []listPkg
	exports := map[string]string{}
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("analysis: go list: %w", err)
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("analysis: go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		pkgs = append(pkgs, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, nil, fmt.Errorf("analysis: go list: %w\n%s", err, stderr.String())
	}
	return pkgs, exports, nil
}

// newExportImporter returns a types.Importer that reads compiler export
// data from the files `go list -export` produced.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// typecheck parses lp's files and type-checks them.
func typecheck(fset *token.FileSet, imp types.Importer, lp listPkg) (*Package, error) {
	var parsed []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	return typecheckParsed(fset, imp, lp, parsed)
}

func typecheckParsed(fset *token.FileSet, imp types.Importer, lp listPkg, parsed []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:       lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      parsed,
		Types:      tpkg,
		Info:       info,
		Directives: ParseDirectives(fset, parsed),
	}, nil
}

// FindModuleRoot walks up from dir to the enclosing go.mod directory.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}
