package analysis

import (
	"go/token"
	"testing"
)

// TestLoadRepoPackage exercises the export-data loader end to end on a
// real package of this module (one that imports both stdlib and module
// packages), proving the offline import resolution works.
func TestLoadRepoPackage(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"countnet/internal/sim"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "countnet/internal/sim" {
		t.Fatalf("path %q", p.Path)
	}
	if p.Types.Scope().Lookup("Run") == nil {
		t.Errorf("sim.Run not found in type-checked package")
	}
	if len(p.Info.Uses) == 0 {
		t.Errorf("no uses recorded")
	}
}

// TestDirectiveParsing covers the directive grammar: allow lists,
// reasons, empty reasons, lockorder, and the deterministic marker.
func TestDirectiveParsing(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(root, "testdata/src/suppress")
	if err != nil {
		t.Fatal(err)
	}
	d := pkg.Directives
	if !d.Deterministic {
		t.Errorf("deterministic directive not seen")
	}
	if !d.HasLockOrder("T.a", "T.b") {
		t.Errorf("lockorder T.a < T.b not parsed")
	}
	if d.HasLockOrder("T.b", "T.a") {
		t.Errorf("lockorder is not symmetric")
	}
	// Two directives share one comment line on field g.
	var verbs []string
	for _, m := range d.Marks {
		verbs = append(verbs, m.Verb)
	}
	for _, want := range []string{"gate", "gated"} {
		found := false
		for _, v := range verbs {
			if v == want {
				found = true
			}
		}
		if !found {
			t.Errorf("mark %q not parsed from the multi-directive line (got %v)", want, verbs)
		}
	}
	if len(d.Unknown) != 1 || d.Unknown[0].Verb != "hotpathh" {
		t.Errorf("unknown-verb capture: got %+v, want one entry with verb hotpathh", d.Unknown)
	}
}

func TestAllowedLineScope(t *testing.T) {
	d := &Directives{allows: map[string][]Allow{
		"f.go:10": {{Analyzers: []string{"detvet"}, Reason: "why", File: "f.go", Line: 10}},
	}}
	for _, tc := range []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"detvet", 10, true},  // same line
		{"detvet", 11, true},  // directive on preceding line
		{"detvet", 12, false}, // too far
		{"detvet", 9, false},  // directive below the finding does not count
		{"obsvet", 10, false}, // different analyzer
	} {
		got := d.Allowed(tc.analyzer, token.Position{Filename: "f.go", Line: tc.line})
		if got != tc.want {
			t.Errorf("Allowed(%s, line %d) = %v, want %v", tc.analyzer, tc.line, got, tc.want)
		}
	}
}
