package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WalkStack traverses the file like ast.Inspect while maintaining the
// ancestor stack: fn is called with each node and its ancestors
// (outermost first, not including n). Returning false skips the subtree.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// CalleeFunc resolves the called function or method of a call expression,
// or nil for calls through function values and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// PkgFunc reports whether call invokes the package-level function
// pkgPath.name, returning the function name on match.
func PkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "", false // method, not package function
	}
	return fn.Name(), true
}

// NamedType unwraps pointers and aliases to the underlying named type of
// t, or nil when t is not (a pointer to) a named type.
func NamedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t is (a pointer to) the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := NamedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// ExprPrefixes returns e and every selector/index base it is built from,
// innermost last: for o.depth[id] it returns [o.depth[id], o.depth, o].
func ExprPrefixes(e ast.Expr) []ast.Expr {
	var out []ast.Expr
	for e != nil {
		e = ast.Unparen(e)
		out = append(out, e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			e = nil
		}
	}
	return out
}

// SameExpr reports whether a and b are structurally the same reference
// chain: identical identifiers (by resolved object) connected by the
// same selections and (ignored) index positions — the equality notion
// guard analysis needs, not general expression equivalence.
func SameExpr(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		xo, yo := info.ObjectOf(x), info.ObjectOf(y)
		return xo != nil && xo == yo
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		xo, yo := info.ObjectOf(x.Sel), info.ObjectOf(y.Sel)
		return xo != nil && xo == yo && SameExpr(info, x.X, y.X)
	case *ast.IndexExpr:
		y, ok := b.(*ast.IndexExpr)
		if !ok {
			return false
		}
		return SameExpr(info, x.X, y.X)
	case *ast.StarExpr:
		y, ok := b.(*ast.StarExpr)
		if !ok {
			return false
		}
		return SameExpr(info, x.X, y.X)
	}
	return false
}

// NilComparisons collects every expression compared against nil with the
// given operator (token.NEQ or token.EQL) anywhere inside cond,
// traversing && and || arms.
func NilComparisons(cond ast.Expr, op token.Token) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != op {
			return true
		}
		if isNilIdent(b.Y) {
			out = append(out, b.X)
		} else if isNilIdent(b.X) {
			out = append(out, b.Y)
		}
		return true
	})
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// Terminates reports whether the statement unconditionally leaves the
// enclosing block: a return, a branch (break/continue/goto), or a call
// to panic / (*testing.common).Fatal-style is approximated by return and
// branch statements plus panic calls.
func Terminates(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// FieldOf resolves the struct field (or package-level variable) that a
// reference expression ultimately denotes: x.f -> field f, pkgvar -> the
// var. Returns nil for locals and non-var references.
func FieldOf(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.ObjectOf(x.Sel).(*types.Var); ok && v.IsField() {
			return v
		}
	case *ast.Ident:
		if v, ok := info.ObjectOf(x).(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	}
	return nil
}
