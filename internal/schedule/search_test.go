package schedule

import (
	"testing"

	"countnet/internal/bitonic"
	"countnet/internal/dtree"
)

func TestSearchValidation(t *testing.T) {
	g, err := dtree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Search(g, SearchSpec{C1: 0, C2: 10, Tokens: 4}); err == nil {
		t.Error("c1=0 accepted")
	}
	if _, err := Search(g, SearchSpec{C1: 10, C2: 5, Tokens: 4}); err == nil {
		t.Error("c2<c1 accepted")
	}
	if _, err := Search(g, SearchSpec{C1: 10, C2: 20, Tokens: 1}); err == nil {
		t.Error("1 token accepted")
	}
}

// TestSearchRediscoversTreeViolation checks the synthesizer finds a
// violating execution for the counting tree at c2 = 5*c1 without being
// given the Theorem 4.1 construction.
func TestSearchRediscoversTreeViolation(t *testing.T) {
	g, err := dtree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(g, SearchSpec{
		C1: 10, C2: 50, Tokens: 14, Horizon: 400, Rounds: 800, Restarts: 6, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations < 1 {
		t.Fatalf("search found no violations at ratio 5 after %d evaluations", res.Evaluated)
	}
	// The found schedule must replay to the same violation count.
	replay, err := res.Replay(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := replay.Report().NonLinearizable; got != res.Violations {
		t.Errorf("replay violations %d != search %d", got, res.Violations)
	}
}

// TestSearchRediscoversBitonicViolation does the same for Bitonic[4].
func TestSearchRediscoversBitonicViolation(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(g, SearchSpec{
		C1: 10, C2: 40, Tokens: 10, Rounds: 400, Restarts: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations < 1 {
		t.Fatalf("search found no violations at ratio 4 after %d evaluations", res.Evaluated)
	}
}

// TestSearchCannotBeatCorollary39 is the converse cross-check: with
// c2 <= 2*c1 even the adversary synthesizer must come up empty.
func TestSearchCannotBeatCorollary39(t *testing.T) {
	g, err := dtree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(g, SearchSpec{
		C1: 10, C2: 20, Tokens: 12, Rounds: 300, Restarts: 3, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("search beat Corollary 3.9: %d violations (either the theory or an engine is broken)", res.Violations)
	}
}
