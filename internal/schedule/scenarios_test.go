package schedule

import (
	"testing"

	"countnet/internal/topo"
)

func TestSection1Scenario(t *testing.T) {
	sc, err := Section1()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// T0 returns 2, T1 returns 1, T2 returns 0.
	want := []int64{2, 1, 0}
	for k, v := range res.Values {
		if v != want[k] {
			t.Errorf("token %d value = %d, want %d", k, v, want[k])
		}
	}
	rep := res.Report()
	if rep.NonLinearizable != 1 {
		t.Errorf("violations = %d, want exactly 1 (%v)", rep.NonLinearizable, rep)
	}
}

// requireWaveViolation asserts at least one token of the scenario's final
// wave is non-linearizable.
func requireWaveViolation(t *testing.T, sc *Scenario) *Result {
	t.Helper()
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Linearizable() {
		t.Fatalf("%s: no violations (claim: %s)", sc.Name, sc.Claim)
	}
	found := false
	for k := sc.WaveStart; k < len(res.Ops); k++ {
		op := res.Ops[k]
		for j := 0; j < sc.WaveStart; j++ {
			if res.Ops[j].End < op.Start && res.Ops[j].Value > op.Value {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("%s: no wave token is violated by a pre-wave token", sc.Name)
	}
	return res
}

func TestTheorem41Tree(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16, 32} {
		sc, err := Tree(w)
		if err != nil {
			t.Fatal(err)
		}
		res := requireWaveViolation(t, sc)
		// T1 must race to value 1 as the proof requires.
		if res.Values[1] != 1 {
			t.Errorf("w=%d: T1 value = %d, want 1", w, res.Values[1])
		}
		// Some wave token returns 0 after T1's exit.
		ok := false
		for k := sc.WaveStart; k < len(res.Values); k++ {
			if res.Values[k] == 0 && res.Ops[k].Start > res.Ops[1].End {
				ok = true
			}
		}
		if !ok {
			t.Errorf("w=%d: no wave token returned 0", w)
		}
	}
}

func TestTheorem43Bitonic(t *testing.T) {
	for _, w := range []int{4, 8, 16, 32} {
		sc, err := Bitonic(w)
		if err != nil {
			t.Fatal(err)
		}
		res := requireWaveViolation(t, sc)
		if res.Values[0] != 0 {
			t.Errorf("w=%d: T0 value = %d, want 0", w, res.Values[0])
		}
		if res.Values[2] != 2 {
			t.Errorf("w=%d: T2 value = %d, want 2", w, res.Values[2])
		}
		// T2 completely precedes a wave token that returned less than 2.
		ok := false
		for k := sc.WaveStart; k < len(res.Values); k++ {
			if res.Ops[2].End < res.Ops[k].Start && res.Values[k] < 2 {
				ok = true
			}
		}
		if !ok {
			t.Errorf("w=%d: no wave token undercut T2's value", w)
		}
	}
}

func TestTheorem44Waves(t *testing.T) {
	for _, w := range []int{8, 16, 32} {
		sc, err := Waves(w)
		if err != nil {
			t.Fatal(err)
		}
		res := requireWaveViolation(t, sc)
		rep := res.Report()
		// A large fraction — at least a fifth — of all operations must be
		// non-linearizable (the construction violates about w/2 of 3w/2).
		if rep.Ratio() < 0.20 {
			t.Errorf("w=%d: non-linearizable ratio %.3f, want >= 0.20 (%v)", w, rep.Ratio(), rep)
		}
	}
}

// TestCorollary312Padding checks the padding construction: the tree
// scenario violates linearizability at c2 = 2.5*c1, but after prefixing
// each input with h*(k-2) pass-through balancers (k = ceil(c2/c1) = 3) the
// same adversary can no longer produce violations, under both the scripted
// schedule and randomized bimodal schedules.
func TestCorollary312Padding(t *testing.T) {
	sc, err := Tree(8)
	if err != nil {
		t.Fatal(err)
	}
	// Unpadded: violation (sanity, also covered above).
	requireWaveViolation(t, sc)

	h := sc.Graph.Depth()
	k := 3 // c2 = 2.5*c1 < 3*c1
	padded, err := topo.Pad(sc.Graph, h*(k-2))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := padded.Depth(), h*(k-1); got != want {
		t.Fatalf("padded depth = %d, want %d", got, want)
	}

	// The scripted adversary, replayed on the padded network.
	res, err := Run(padded, sc.Arrive, sc.Delays, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := res.Report(); !rep.Linearizable() {
		t.Errorf("padded network violated by the scripted schedule: %v", rep)
	}

	// Randomized bimodal adversaries bounded by c2 <= k*c1.
	const c1 = 100
	for seed := int64(0); seed < 20; seed++ {
		arr := make([]Arrival, 40)
		for i := range arr {
			arr[i] = Arrival{Time: int64(i%10) * 37 * int64(seed+1) % 2000}
		}
		res, err := Run(padded, arr, Bimodal(c1, int64(k)*c1, 0.3, seed), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep := res.Report(); !rep.Linearizable() {
			t.Errorf("padded network violated by bimodal seed %d: %v", seed, rep)
		}
	}
}

// TestUnpaddedBimodalViolationExists documents that the bare tree does
// exhibit violations under some bimodal adversary with c2 = 3*c1 — the
// padding in TestCorollary312Padding is doing real work.
func TestUnpaddedBimodalViolationExists(t *testing.T) {
	sc, err := Tree(8)
	if err != nil {
		t.Fatal(err)
	}
	const c1 = 100
	found := false
	for seed := int64(0); seed < 200 && !found; seed++ {
		arr := make([]Arrival, 40)
		for i := range arr {
			arr[i] = Arrival{Time: int64(i%10) * 37 * int64(seed+1) % 2000}
		}
		res, err := Run(sc.Graph, arr, Bimodal(c1, 3*c1, 0.3, seed), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Report().Linearizable() {
			found = true
		}
	}
	if !found {
		t.Skip("no bimodal violation found on the bare tree within 200 seeds; padding test remains valid but weaker")
	}
}
