package schedule

import (
	"testing"

	"countnet/internal/dtree"
)

func TestGapSweepLemma37Boundary(t *testing.T) {
	g, err := dtree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := GapSweep(g, 10, 100, []float64{0.02, 0.25, 1.0, 1.2}, 20, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// At and above the Lemma 3.7 bound: zero inversions, guaranteed.
	for _, pt := range pts[2:] {
		if pt.Inversions != 0 {
			t.Errorf("frac %.2f: %d/%d inversions above the bound", pt.Frac, pt.Inversions, pt.Pairs)
		}
	}
	// Far below the bound the adversarial delays should produce some
	// inversions (tokens nearly concurrent, ratio 10).
	if pts[0].Inversions == 0 {
		t.Errorf("frac %.2f: no inversions at near-concurrent starts; sweep not adversarial enough", pts[0].Frac)
	}
	for _, pt := range pts {
		if pt.Pairs != 30*19 {
			t.Errorf("frac %.2f: %d pairs, want %d", pt.Frac, pt.Pairs, 30*19)
		}
	}
}

func TestGapSweepValidation(t *testing.T) {
	g, err := dtree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GapSweep(g, 0, 10, []float64{1}, 2, 1, 1); err == nil {
		t.Error("c1=0 accepted")
	}
	if _, err := GapSweep(g, 10, 5, []float64{1}, 2, 1, 1); err == nil {
		t.Error("c2<c1 accepted")
	}
}

// TestTheorem36FinishStart property-tests the finish-start form: whenever
// token j enters more than h*c2 - 2*h*c1 after token i exits, j returns a
// higher value — checked over every such pair of random executions.
func TestTheorem36FinishStart(t *testing.T) {
	g, err := dtree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	const c1, c2 = 10, 70
	gap := int64(g.Depth())*c2 - 2*int64(g.Depth())*c1
	for seed := int64(0); seed < 40; seed++ {
		arr := make([]Arrival, 25)
		for k := range arr {
			arr[k] = Arrival{Time: int64(k) * 95 % 1100}
		}
		res, err := Run(g, arr, Bimodal(c1, c2, 0.4, seed), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Ops {
			for j := range res.Ops {
				if res.Ops[j].Start > res.Ops[i].End+gap && res.Values[j] <= res.Values[i] {
					t.Fatalf("seed %d: token %d (exit %d, value %d) then token %d (start %d, value %d) despite finish-start gap > %d",
						seed, i, res.Ops[i].End, res.Values[i], j, res.Ops[j].Start, res.Values[j], gap)
				}
			}
		}
	}
}
