package schedule

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	sc, err := Section1()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc.Graph, sc.Arrive, sc.Delays, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sc.Graph, res); err != nil {
		t.Fatal(err)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(res.Events) {
		t.Fatalf("round trip: %d events, want %d", len(events), len(res.Events))
	}
	for i := range events {
		if events[i] != res.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, events[i], res.Events[i])
		}
	}
}

func TestTraceContainsKindsAndValues(t *testing.T) {
	sc, err := Section1()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc.Graph, sc.Arrive, sc.Delays, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sc.Graph, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"kind":"balancer"`, `"kind":"counter"`, `"value":`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	backwards := `{"t":10,"tok":0,"node":0,"kind":"balancer"}
{"t":5,"tok":1,"node":0,"kind":"balancer"}
`
	if _, err := ReadTrace(strings.NewReader(backwards)); err == nil {
		t.Error("time-reversed trace accepted")
	}
	if err := WriteTrace(&strings.Builder{}, nil, nil); err == nil {
		t.Error("nil result accepted")
	}
}
