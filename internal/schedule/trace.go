package schedule

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"countnet/internal/topo"
)

// traceRecord is the JSONL form of one transition event.
type traceRecord struct {
	Time  int64  `json:"t"`
	Tok   int    `json:"tok"`
	Node  int32  `json:"node"`
	Kind  string `json:"kind"`
	Value *int64 `json:"value,omitempty"`
}

// WriteTrace emits the execution's transition events as JSON Lines, one
// event per line in execution order, for external analysis or replay. The
// Result must have been produced with Options.Trace set.
func WriteTrace(w io.Writer, g *topo.Graph, res *Result) error {
	if res == nil {
		return fmt.Errorf("schedule: nil result")
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range res.Events {
		rec := traceRecord{
			Time: ev.Time,
			Tok:  ev.Tok,
			Node: int32(ev.Node),
			Kind: g.KindOf(ev.Node).String(),
		}
		if ev.Value >= 0 {
			v := ev.Value
			rec.Value = &v
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL trace back into events (values re-attached,
// node kinds discarded). It validates monotone timestamps.
func ReadTrace(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	last := int64(-1 << 62)
	for {
		var rec traceRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("schedule: trace line %d: %w", len(out)+1, err)
		}
		if rec.Time < last {
			return nil, fmt.Errorf("schedule: trace goes backwards at line %d (%d < %d)", len(out)+1, rec.Time, last)
		}
		last = rec.Time
		ev := Event{Time: rec.Time, Tok: rec.Tok, Node: topo.NodeID(rec.Node), Value: -1}
		if rec.Value != nil {
			ev.Value = *rec.Value
		}
		out = append(out, ev)
	}
	return out, nil
}
