package schedule

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"countnet/internal/bitonic"
)

func sampleConcrete() *Concrete {
	return &Concrete{
		Net:   "bitonic",
		Width: 4,
		C1:    10,
		C2:    20,
		Tokens: []ConcreteToken{
			{Time: 0, Input: 0, Delays: []int64{10, 20, 10}},
			{Time: 5, Input: 3, Delays: []int64{20}},
			{Time: 40, Input: 1},
		},
	}
}

func TestConcreteRoundTrip(t *testing.T) {
	c := sampleConcrete()
	var buf bytes.Buffer
	if err := WriteConcrete(&buf, c); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if lines := strings.Count(text, "\n"); lines != 1+len(c.Tokens) {
		t.Fatalf("serialized %d lines, want %d:\n%s", lines, 1+len(c.Tokens), text)
	}
	got, err := ReadConcrete(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", c, got)
	}
}

func TestConcreteRunMatchesExplicit(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	c := &Concrete{
		Net: "bitonic", Width: 4, C1: 10, C2: 20,
		Tokens: []ConcreteToken{
			{Time: 0, Input: 0, Delays: []int64{10, 20, 10}},
			{Time: 3, Input: 1, Delays: []int64{20, 20, 20}},
			{Time: 7, Input: 2, Delays: []int64{10, 10, 10}},
		},
	}
	res, err := c.Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Run(g, c.Arrivals(), c.Delays(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Values, explicit.Values) {
		t.Fatalf("concrete run %v != explicit run %v", res.Values, explicit.Values)
	}
}

func TestConcreteDelaysClampAndDefault(t *testing.T) {
	c := sampleConcrete()
	d := c.Delays()
	if got := d.Link(0, 2); got != 20 {
		t.Errorf("token 0 link 2 = %d, want 20", got)
	}
	if got := d.Link(1, 5); got != 20 {
		t.Errorf("past-end delay should repeat last entry, got %d", got)
	}
	if got := d.Link(2, 1); got != c.C1 {
		t.Errorf("empty delay list should default to c1, got %d", got)
	}
}

func TestConcreteValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Concrete)
	}{
		{"bad bounds", func(c *Concrete) { c.C2 = c.C1 - 1 }},
		{"zero c1", func(c *Concrete) { c.C1 = 0 }},
		{"negative time", func(c *Concrete) { c.Tokens[0].Time = -1 }},
		{"negative input", func(c *Concrete) { c.Tokens[1].Input = -2 }},
		{"delay below c1", func(c *Concrete) { c.Tokens[0].Delays[0] = 1 }},
		{"delay above c2", func(c *Concrete) { c.Tokens[0].Delays[2] = 999 }},
	}
	for _, tc := range cases {
		c := sampleConcrete()
		tc.mut(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
	if err := sampleConcrete().Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestSearchResultConcrete(t *testing.T) {
	r := &SearchResult{
		Arrivals:   []Arrival{{Time: 1, Input: 0}, {Time: 2, Input: 1}},
		LinkDelays: [][]int64{{10, 20}, {20, 10}},
	}
	c := r.Concrete("dtree", 4, 10, 20)
	if len(c.Tokens) != 2 || c.Tokens[1].Delays[0] != 20 {
		t.Fatalf("conversion mangled: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
