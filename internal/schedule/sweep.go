package schedule

import (
	"fmt"

	"countnet/internal/topo"
)

// GapPoint is one cell of a separation sweep: with consecutive token starts
// separated by Frac * (2h(c2-c1)), the fraction of ordered-pair inversions
// observed over all trials.
type GapPoint struct {
	Frac       float64
	Pairs      int // ordered (non-overlapping, gap-separated) pairs checked
	Inversions int // pairs returning out-of-order values
}

// GapSweep quantifies the tightness of Lemma 3.7 empirically: it runs
// trials of `tokens` tokens whose consecutive start times are separated by
// frac * StartStartGap for each frac, and counts value inversions among
// consecutive token pairs. Each trial alternates between two adversaries —
// per-token slow/fast alternation (a slow token followed by a fast
// overtaker, the Section 4 shape, violating up to gap ≈ h*(c2-c1), i.e.
// frac 0.5) and bimodal per-link delays — so the sweep exercises both the
// structured and the random ends. The lemma guarantees zero inversions for
// frac >= 1.
func GapSweep(g *topo.Graph, c1, c2 int64, fracs []float64, tokens, trials int, seed int64) ([]GapPoint, error) {
	if c1 <= 0 || c2 < c1 {
		return nil, fmt.Errorf("schedule: bad timing c1=%d c2=%d", c1, c2)
	}
	bound := 2 * int64(g.Depth()) * (c2 - c1)
	alternating := DelayFunc(func(tok, _ int) int64 {
		if tok%2 == 0 {
			return c2
		}
		return c1
	})
	out := make([]GapPoint, 0, len(fracs))
	for _, frac := range fracs {
		gap := int64(frac * float64(bound))
		if gap < 1 {
			gap = 1
		}
		pt := GapPoint{Frac: frac}
		for trial := 0; trial < trials; trial++ {
			arr := make([]Arrival, tokens)
			next := int64(0)
			for k := range arr {
				arr[k] = Arrival{Time: next, Input: k % g.InWidth()}
				next += gap
			}
			delays := Delays(alternating)
			if trial%2 == 1 {
				delays = Bimodal(c1, c2, 0.5, seed+int64(trial)*7919)
			}
			res, err := Run(g, arr, delays, Options{})
			if err != nil {
				return nil, err
			}
			for k := 1; k < tokens; k++ {
				pt.Pairs++
				if res.Values[k] <= res.Values[k-1] {
					pt.Inversions++
				}
			}
		}
		out = append(out, pt)
	}
	return out, nil
}
