package schedule

import (
	"math/rand"
	"testing"

	"countnet/internal/bitonic"
	"countnet/internal/dtree"
	"countnet/internal/periodic"
	"countnet/internal/topo"
)

func TestRunRejectsBadInput(t *testing.T) {
	g, err := dtree.New(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, []Arrival{{Time: 0, Input: 5}}, Constant(1), Options{}); err == nil {
		t.Error("Run accepted an out-of-range input")
	}
	if _, err := Run(g, []Arrival{{Time: 0, Input: 0}}, Constant(0), Options{}); err == nil {
		t.Error("Run accepted a zero link delay")
	}
}

func TestRunSequentialSpacedTokens(t *testing.T) {
	// Tokens spaced far apart must count 0,1,2,... on any network.
	for name, mk := range map[string]func() (*topo.Graph, error){
		"bitonic8":  func() (*topo.Graph, error) { return bitonic.New(8) },
		"periodic4": func() (*topo.Graph, error) { return periodic.New(4) },
		"dtree8":    func() (*topo.Graph, error) { return dtree.New(8) },
	} {
		g, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		var arr []Arrival
		for k := 0; k < 20; k++ {
			arr = append(arr, Arrival{Time: int64(k) * 100000, Input: k % g.InWidth()})
		}
		res, err := Run(g, arr, UniformRandom(10, 20, 1), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range res.Values {
			if v != int64(k) {
				t.Errorf("%s: token %d got value %d", name, k, v)
			}
		}
		if rep := res.Report(); !rep.Linearizable() {
			t.Errorf("%s: %v", name, rep)
		}
	}
}

func TestRunExitTimesRespectDelays(t *testing.T) {
	g, err := dtree.New(8) // depth 3
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, []Arrival{{Time: 50, Input: 0}}, Constant(7), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(50 + 3*7); res.Exits[0] != want {
		t.Errorf("exit at %d, want %d", res.Exits[0], want)
	}
	if res.Ops[0].Start != 50 || res.Ops[0].End != res.Exits[0] {
		t.Errorf("op = %+v", res.Ops[0])
	}
}

func TestRunTrace(t *testing.T) {
	g, err := dtree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	var observed int
	res, err := Run(g, []Arrival{{Time: 0, Input: 0}, {Time: 3, Input: 0}},
		Constant(10), Options{Trace: true, Observer: func(Event) { observed++ }})
	if err != nil {
		t.Fatal(err)
	}
	// Each token transits depth()+1 = 3 nodes (2 balancers + counter).
	if len(res.Events) != 6 || observed != 6 {
		t.Fatalf("events = %d, observed = %d, want 6", len(res.Events), observed)
	}
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].Time < res.Events[i-1].Time {
			t.Errorf("events out of order at %d: %+v", i, res.Events)
		}
	}
	last := res.Events[len(res.Events)-1]
	if last.Value < 0 {
		t.Errorf("final event should be a counter transition: %+v", last)
	}
}

func TestUniformRandomDeterministicAndBounded(t *testing.T) {
	d := UniformRandom(10, 30, 42)
	for tok := 0; tok < 50; tok++ {
		for link := 1; link <= 20; link++ {
			v := d.Link(tok, link)
			if v < 10 || v > 30 {
				t.Fatalf("delay %d out of [10,30]", v)
			}
			if v != d.Link(tok, link) {
				t.Fatal("UniformRandom is not deterministic")
			}
		}
	}
	if UniformRandom(10, 5, 1).Link(0, 1) != 10 {
		t.Error("degenerate range not clamped to c1")
	}
}

func TestBimodalBounds(t *testing.T) {
	d := Bimodal(10, 100, 0.3, 7)
	slow := 0
	for tok := 0; tok < 1000; tok++ {
		v := d.Link(tok, 1)
		switch v {
		case 10:
		case 100:
			slow++
		default:
			t.Fatalf("bimodal delay %d", v)
		}
	}
	if slow < 200 || slow > 400 {
		t.Errorf("slow fraction %d/1000, want ~300", slow)
	}
}

// TestCorollary39 property-tests Corollary 3.9: with c2 <= 2*c1, every
// uniform counting network is linearizable, under random arrivals and
// random link delays.
func TestCorollary39(t *testing.T) {
	nets := map[string]*topo.Graph{}
	for _, w := range []int{2, 4, 8} {
		g, err := bitonic.New(w)
		if err != nil {
			t.Fatal(err)
		}
		nets["bitonic"+string(rune('0'+w))] = g
		g, err = dtree.New(w)
		if err != nil {
			t.Fatal(err)
		}
		nets["dtree"+string(rune('0'+w))] = g
	}
	g, err := periodic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	nets["periodic4"] = g

	rng := rand.New(rand.NewSource(11))
	for name, g := range nets {
		for trial := 0; trial < 30; trial++ {
			const c1 = 10
			c2 := int64(c1 + rng.Intn(c1+1)) // c2 in [c1, 2*c1]
			n := 2 + rng.Intn(40)
			arr := make([]Arrival, n)
			for k := range arr {
				arr[k] = Arrival{
					Time:  int64(rng.Intn(30 * n)),
					Input: rng.Intn(g.InWidth()),
				}
			}
			res, err := Run(g, arr, UniformRandom(c1, c2, rng.Int63()), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep := res.Report(); !rep.Linearizable() {
				t.Errorf("%s trial %d: violation with c2=%d <= 2*c1: %v", name, trial, c2, rep)
			}
		}
	}
}

// TestLemma37 property-tests Lemma 3.7: tokens whose start times are
// separated by more than 2*h*(c2-c1) return increasing values even for
// arbitrary c2/c1 ratios.
func TestLemma37(t *testing.T) {
	g, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	const c1, c2 = 10, 100 // ratio 10, far beyond 2
	gap := 2*int64(g.Depth())*(c2-c1) + 1
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		arr := make([]Arrival, n)
		next := int64(0)
		for k := range arr {
			arr[k] = Arrival{Time: next, Input: rng.Intn(g.InWidth())}
			next += gap + int64(rng.Intn(50))
		}
		res, err := Run(g, arr, UniformRandom(c1, c2, rng.Int63()), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k < n; k++ {
			if res.Values[k] <= res.Values[k-1] {
				t.Fatalf("trial %d: token %d value %d <= token %d value %d despite gap > 2h(c2-c1)",
					trial, k, res.Values[k], k-1, res.Values[k-1])
			}
		}
	}
}
