package schedule

import (
	"fmt"
	"math/rand"

	"countnet/internal/topo"
)

// SearchSpec configures the adversary synthesizer.
type SearchSpec struct {
	// C1, C2 bound the per-link delays the adversary may choose.
	C1, C2 int64
	// Tokens is how many tokens the adversary controls.
	Tokens int
	// Horizon bounds arrival times to [0, Horizon].
	Horizon int64
	// Rounds is the hill-climbing budget (candidate mutations tried).
	Rounds int
	// Restarts is how many independent random starting points to try.
	Restarts int
	// Seed drives the search.
	Seed int64
}

// SearchResult is the best adversarial schedule found.
type SearchResult struct {
	Arrivals   []Arrival
	LinkDelays [][]int64 // [token][link-1] in [C1, C2]
	Violations int
	Evaluated  int
}

// Search synthesizes an adversarial timing schedule for g: a randomized
// hill climb over arrival times and per-token-per-link delays maximizing
// the number of non-linearizable operations (Definition 2.4). Section 4 of
// the paper hand-builds such schedules; the search rediscovers them
// automatically — with c2 > 2*c1 it finds violating executions for trees
// and bitonic networks without being told the constructions, and with
// c2 <= 2*c1 it provably cannot find any (Corollary 3.9), which the tests
// use as a cross-check of both the search and the theory.
func Search(g *topo.Graph, spec SearchSpec) (*SearchResult, error) {
	if spec.C1 <= 0 || spec.C2 < spec.C1 {
		return nil, fmt.Errorf("schedule: bad timing c1=%d c2=%d", spec.C1, spec.C2)
	}
	if spec.Tokens < 2 {
		return nil, fmt.Errorf("schedule: %d tokens", spec.Tokens)
	}
	if spec.Horizon < 1 {
		spec.Horizon = int64(g.Depth()) * spec.C2
	}
	if spec.Rounds < 1 {
		spec.Rounds = 200
	}
	if spec.Restarts < 1 {
		spec.Restarts = 3
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	links := g.Depth()
	best := &SearchResult{Violations: -1}

	evaluate := func(arr []Arrival, d [][]int64) (int, error) {
		res, err := Run(g, arr, matrixDelays(d), Options{})
		if err != nil {
			return 0, err
		}
		best.Evaluated++
		return res.Report().NonLinearizable, nil
	}

	for restart := 0; restart < spec.Restarts; restart++ {
		arr := make([]Arrival, spec.Tokens)
		d := make([][]int64, spec.Tokens)
		for k := range arr {
			arr[k] = Arrival{
				Time:  rng.Int63n(spec.Horizon + 1),
				Input: rng.Intn(g.InWidth()),
			}
			d[k] = make([]int64, links)
			for l := range d[k] {
				d[k][l] = pick(rng, spec.C1, spec.C2)
			}
		}
		score, err := evaluate(arr, d)
		if err != nil {
			return nil, err
		}
		for round := 0; round < spec.Rounds; round++ {
			// Mutate one aspect of one token.
			k := rng.Intn(spec.Tokens)
			var undo func()
			switch rng.Intn(3) {
			case 0:
				old := arr[k].Time
				arr[k].Time = rng.Int63n(spec.Horizon + 1)
				undo = func() { arr[k].Time = old }
			case 1:
				old := arr[k].Input
				arr[k].Input = rng.Intn(g.InWidth())
				undo = func() { arr[k].Input = old }
			default:
				l := rng.Intn(links)
				old := d[k][l]
				d[k][l] = pick(rng, spec.C1, spec.C2)
				undo = func() { d[k][l] = old }
			}
			cand, err := evaluate(arr, d)
			if err != nil {
				return nil, err
			}
			if cand >= score {
				score = cand // accept (plateau moves allowed)
			} else {
				undo()
			}
		}
		if score > best.Violations {
			best.Violations = score
			best.Arrivals = cloneArrivals(arr)
			best.LinkDelays = cloneMatrix(d)
		}
	}
	return best, nil
}

// pick draws an adversarial delay: the extremes with high probability,
// uniform otherwise — worst cases live at the boundary.
func pick(rng *rand.Rand, c1, c2 int64) int64 {
	switch rng.Intn(4) {
	case 0:
		return c1
	case 1:
		return c2
	default:
		return c1 + rng.Int63n(c2-c1+1)
	}
}

// matrixDelays adapts a [token][link-1] matrix to the Delays interface.
func matrixDelays(d [][]int64) Delays {
	return DelayFunc(func(tok, link int) int64 {
		return d[tok][link-1]
	})
}

func cloneArrivals(a []Arrival) []Arrival {
	out := make([]Arrival, len(a))
	copy(out, a)
	return out
}

func cloneMatrix(d [][]int64) [][]int64 {
	out := make([][]int64, len(d))
	for i := range d {
		out[i] = append([]int64(nil), d[i]...)
	}
	return out
}

// Replay runs the found schedule again and returns the full result.
func (r *SearchResult) Replay(g *topo.Graph) (*Result, error) {
	return Run(g, r.Arrivals, matrixDelays(r.LinkDelays), Options{})
}
