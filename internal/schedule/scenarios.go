package schedule

import (
	"fmt"

	"countnet/internal/bitonic"
	"countnet/internal/dtree"
	"countnet/internal/topo"
)

// Scenario is a fully scripted adversarial execution: a network, a timing
// schedule, and the claim it demonstrates.
type Scenario struct {
	Name   string
	Claim  string
	Graph  *topo.Graph
	Arrive []Arrival
	Delays Delays
	C1, C2 int64
	// WaveStart indexes the first token of the final fast wave, where the
	// scenario has one; violated operations are expected among these.
	WaveStart int
}

// Run executes the scenario.
func (s *Scenario) Run() (*Result, error) {
	return Run(s.Graph, s.Arrive, s.Delays, Options{})
}

// Section1 scripts the introduction's example on the width-2 network
// (depth 1): T0 toggles the balancer and stalls on its output link; T1
// passes and returns 1; T2 enters after T1 exits, overtakes T0, and returns
// 0 — a non-linearizable operation on a network of depth one.
func Section1() (*Scenario, error) {
	b := topo.NewBuilder()
	in := b.Inputs(1)
	o0, o1 := b.Balancer12(in[0])
	b.Terminate([]topo.Out{o0, o1})
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	const c1, c2 = 100, 1000
	delays := []int64{c2, c1, c1} // T0 slow, T1 and T2 fast
	return &Scenario{
		Name:  "section1",
		Claim: "a depth-1 counting network exhibits a non-linearizable execution",
		Graph: g,
		Arrive: []Arrival{
			{Time: 0, Input: 0},       // T0
			{Time: 1, Input: 0},       // T1: exits at 1 + c1
			{Time: c1 + 10, Input: 0}, // T2: enters after T1 exits
		},
		Delays:    PerToken(delays),
		C1:        c1,
		C2:        c2,
		WaveStart: 2,
	}, nil
}

// Tree scripts the Theorem 4.1 execution on the counting (diffracting) tree
// of width w, with c2 = (2+eps)*c1 for eps = 1/2: two tokens enter together;
// the one routed toward Y_1 races ahead and returns 1; the other crawls at
// c2 per link; a wave of w-1 fast tokens enters just after the fast token
// exits and one of them reaches Y_0 ahead of the crawler, returning 0.
func Tree(w int) (*Scenario, error) {
	g, err := dtree.New(w)
	if err != nil {
		return nil, err
	}
	const c1 = 100
	const c2 = 250 // (2 + 1/2) * c1
	h := int64(g.Depth())
	arrive := []Arrival{
		{Time: 0, Input: 0}, // T0: slow
		{Time: 0, Input: 0}, // T1: fast, exits at h*c1 with value 1
	}
	t2 := h*c1 + 1 // delta = 1 < eps*c1*h
	for i := 0; i < w-1; i++ {
		arrive = append(arrive, Arrival{Time: t2, Input: 0})
	}
	delays := DelayFunc(func(tok, _ int) int64 {
		if tok == 0 {
			return c2
		}
		return c1
	})
	return &Scenario{
		Name:      "tree",
		Claim:     fmt.Sprintf("counting trees are not linearizable for c2 > 2*c1 (Theorem 4.1, w=%d)", w),
		Graph:     g,
		Arrive:    arrive,
		Delays:    delays,
		C1:        c1,
		C2:        c2,
		WaveStart: 2,
	}, nil
}

// Bitonic scripts the Theorem 4.3 execution on Bitonic[w] with
// c2 = 2*c1 + eps: T0 traverses alone via x0; T1 enters via x0 and crawls;
// T2 follows immediately at full speed, exits via y2 with value 2; then w
// fast tokens flood the network and exit before T1 — one of them exits via
// y1 with value 1 < 2 although T2 completely preceded it.
func Bitonic(w int) (*Scenario, error) {
	g, err := bitonic.New(w)
	if err != nil {
		return nil, err
	}
	const c1 = 100
	const c2 = 2*c1 + 30 // eps = 30
	h := int64(g.Depth())
	t1 := h*c1 + 10 // T1 enters after T0 has exited
	arrive := []Arrival{
		{Time: 0, Input: 0},      // T0
		{Time: t1, Input: 0},     // T1: slow
		{Time: t1 + 1, Input: 0}, // T2: fast, exits t1 + 1 + h*c1
	}
	t3 := t1 + 1 + h*c1 + 1 // delta1 + delta2 = 2 < h*eps
	for i := 0; i < w; i++ {
		arrive = append(arrive, Arrival{Time: t3, Input: i % w})
	}
	delays := DelayFunc(func(tok, _ int) int64 {
		if tok == 1 {
			return c2
		}
		return c1
	})
	return &Scenario{
		Name:      "bitonic",
		Claim:     fmt.Sprintf("bitonic networks are not linearizable for c2 > 2*c1 (Theorem 4.3, w=%d)", w),
		Graph:     g,
		Arrive:    arrive,
		Delays:    delays,
		C1:        c1,
		C2:        c2,
		WaveStart: 3,
	}, nil
}

// Waves scripts the Theorem 4.4 execution on Bitonic[w] with
// c2 > ((3+log2 w)/2)*c1, in which a large constant fraction of the
// operations is non-linearizable: wave 1 (w/2 tokens) crawls through the
// final Merger[w] stage at c2 per link; wave 2 races through and exits;
// wave 3 enters right after and overtakes wave 1 entirely, returning values
// below wave 2's.
func Waves(w int) (*Scenario, error) {
	g, err := bitonic.New(w)
	if err != nil {
		return nil, err
	}
	lg := 0
	for v := w; v > 1; v >>= 1 {
		lg++
	}
	const c1 = 100
	c2 := int64((3+lg)*c1/2 + 10) // just above the threshold
	h := int64(g.Depth())
	mergerStart := int(h) - lg // wave 1 slows down on links inside Merger[w]
	var arrive []Arrival
	half := w / 2
	for i := 0; i < half; i++ {
		arrive = append(arrive, Arrival{Time: 0, Input: i}) // wave 1
	}
	for i := 0; i < half; i++ {
		arrive = append(arrive, Arrival{Time: 1, Input: i}) // wave 2
	}
	t3 := 1 + h*c1 + 1 // just after wave 2 exits
	for i := 0; i < half; i++ {
		arrive = append(arrive, Arrival{Time: t3, Input: i}) // wave 3
	}
	delays := DelayFunc(func(tok, link int) int64 {
		if tok < half && link > mergerStart {
			return c2
		}
		return c1
	})
	return &Scenario{
		Name:      "waves",
		Claim:     fmt.Sprintf("bitonic networks admit a large non-linearizable fraction for c2 > ((3+log w)/2)*c1 (Theorem 4.4, w=%d)", w),
		Graph:     g,
		Arrive:    arrive,
		Delays:    delays,
		C1:        c1,
		C2:        c2,
		WaveStart: w,
	}, nil
}
