package schedule

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"countnet/internal/topo"
)

// Concrete is a fully materialized timing schedule: every arrival time and
// every per-token per-link delay is an explicit number, so the schedule can
// be serialized, shrunk, and replayed bit-for-bit. It is the exchange
// format between the conformance fuzzer, the shrinker, and
// `cmd/adversary -replay`.
type Concrete struct {
	// Net and Width name the network family the schedule was generated
	// for (e.g. "bitonic", 8), so replay tools can rebuild the graph.
	Net   string
	Width int
	// C1 and C2 are the link-delay bounds every entry of Tokens[i].Delays
	// is expected to respect; they drive the Corollary 3.9/3.12 checks.
	C1, C2 int64
	// Tokens is the schedule itself, one entry per token in injection
	// order.
	Tokens []ConcreteToken
}

// ConcreteToken schedules one token: it enters input port Input at time
// Time, and its g-th link traversal (1-based) takes Delays[g-1]. When a
// token traverses more links than len(Delays) — for example after the
// network was padded — the last entry repeats; an empty slice means C1
// everywhere.
type ConcreteToken struct {
	Time   int64   `json:"t"`
	Input  int     `json:"input"`
	Delays []int64 `json:"delays,omitempty"`
}

// Validate checks internal consistency: sane bounds and every delay within
// [C1, C2].
func (c *Concrete) Validate() error {
	if c.C1 <= 0 || c.C2 < c.C1 {
		return fmt.Errorf("schedule: bad timing bounds c1=%d c2=%d", c.C1, c.C2)
	}
	for k, tok := range c.Tokens {
		if tok.Time < 0 {
			return fmt.Errorf("schedule: token %d arrives at negative time %d", k, tok.Time)
		}
		if tok.Input < 0 {
			return fmt.Errorf("schedule: token %d enters negative input %d", k, tok.Input)
		}
		for l, d := range tok.Delays {
			if d < c.C1 || d > c.C2 {
				return fmt.Errorf("schedule: token %d link %d delay %d outside [%d, %d]",
					k, l+1, d, c.C1, c.C2)
			}
		}
	}
	return nil
}

// Arrivals converts the schedule's tokens to executor arrivals.
func (c *Concrete) Arrivals() []Arrival {
	out := make([]Arrival, len(c.Tokens))
	for k, tok := range c.Tokens {
		out[k] = Arrival{Time: tok.Time, Input: tok.Input}
	}
	return out
}

// Delays adapts the schedule's delay lists to the executor's Delays
// interface, repeating the last entry past the end of a token's list.
func (c *Concrete) Delays() Delays {
	return DelayFunc(func(tok, link int) int64 {
		d := c.Tokens[tok].Delays
		if len(d) == 0 {
			return c.C1
		}
		if link-1 < len(d) {
			return d[link-1]
		}
		return d[len(d)-1]
	})
}

// Run executes the schedule on g.
func (c *Concrete) Run(g *topo.Graph, opts Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return Run(g, c.Arrivals(), c.Delays(), opts)
}

// concreteHeader is the first JSONL line of a serialized schedule.
type concreteHeader struct {
	Net    string `json:"net,omitempty"`
	Width  int    `json:"width,omitempty"`
	C1     int64  `json:"c1"`
	C2     int64  `json:"c2"`
	Tokens int    `json:"tokens"`
}

// WriteConcrete serializes the schedule as JSON Lines: a header line with
// the network hint, timing bounds, and token count, then one line per
// token. The format is the reproducer emitted by the conformance shrinker
// and accepted by `cmd/adversary -replay`.
func WriteConcrete(w io.Writer, c *Concrete) error {
	if c == nil {
		return fmt.Errorf("schedule: nil concrete schedule")
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(concreteHeader{
		Net: c.Net, Width: c.Width, C1: c.C1, C2: c.C2, Tokens: len(c.Tokens),
	}); err != nil {
		return err
	}
	for k := range c.Tokens {
		if err := enc.Encode(&c.Tokens[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadConcrete parses a schedule serialized by WriteConcrete and validates
// it.
func ReadConcrete(r io.Reader) (*Concrete, error) {
	dec := json.NewDecoder(r)
	var hdr concreteHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("schedule: concrete header: %w", err)
	}
	if hdr.Tokens < 0 {
		return nil, fmt.Errorf("schedule: negative token count %d", hdr.Tokens)
	}
	c := &Concrete{Net: hdr.Net, Width: hdr.Width, C1: hdr.C1, C2: hdr.C2}
	for k := 0; k < hdr.Tokens; k++ {
		var tok ConcreteToken
		if err := dec.Decode(&tok); err != nil {
			return nil, fmt.Errorf("schedule: concrete token %d: %w", k, err)
		}
		c.Tokens = append(c.Tokens, tok)
	}
	// A hand-edited file whose header count disagrees with its token lines
	// would otherwise be silently truncated.
	var extra ConcreteToken
	if err := dec.Decode(&extra); err != io.EOF {
		return nil, fmt.Errorf("schedule: trailing data after %d tokens (header count mismatch?)", hdr.Tokens)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Clone deep-copies the schedule; the shrinker mutates clones.
func (c *Concrete) Clone() *Concrete {
	out := &Concrete{Net: c.Net, Width: c.Width, C1: c.C1, C2: c.C2}
	out.Tokens = make([]ConcreteToken, len(c.Tokens))
	for k, tok := range c.Tokens {
		out.Tokens[k] = ConcreteToken{
			Time:   tok.Time,
			Input:  tok.Input,
			Delays: append([]int64(nil), tok.Delays...),
		}
	}
	return out
}

// Concrete converts a search result into a serializable concrete schedule.
func (r *SearchResult) Concrete(net string, width int, c1, c2 int64) *Concrete {
	c := &Concrete{Net: net, Width: width, C1: c1, C2: c2}
	for k, a := range r.Arrivals {
		c.Tokens = append(c.Tokens, ConcreteToken{
			Time:   a.Time,
			Input:  a.Input,
			Delays: append([]int64(nil), r.LinkDelays[k]...),
		})
	}
	return c
}
