// Package schedule executes balancing networks under explicit timing
// schedules (Definition 2.2 of the paper): each token k enters the network
// at a chosen time Q(k,1) and traverses each link in a chosen time within
// [c1, c2]; balancer transitions are instantaneous. The engine is fully
// deterministic, which makes it possible to script the adversarial
// executions of Section 4 exactly and to property-test the Section 3
// theorems (see scenarios.go and the package tests).
//
//countnet:deterministic
package schedule

import (
	"container/heap"
	"fmt"

	"countnet/internal/lincheck"
	"countnet/internal/topo"
)

// Arrival schedules one token: it enters the network at input port Input and
// transitions its input node at time Time (= Q(k, 1)).
type Arrival struct {
	Time  int64
	Input int
}

// Delays chooses the traversal time of each link for each token. Link is
// called with the 1-based index of the link the token is about to traverse:
// link g connects layer g to layer g+1 (link Depth() leads to the counter).
// Returned delays must be positive; the minimum over all calls plays the
// role of c1 and the maximum of c2.
type Delays interface {
	Link(tok, link int) int64
}

// DelayFunc adapts a function to the Delays interface.
type DelayFunc func(tok, link int) int64

// Link implements Delays.
func (f DelayFunc) Link(tok, link int) int64 { return f(tok, link) }

// Constant returns Delays taking exactly d on every link (c1 == c2 == d).
func Constant(d int64) Delays {
	return DelayFunc(func(int, int) int64 { return d })
}

// PerToken returns Delays where token k takes d[k] on every link: the
// slow-token/fast-token schedules of Section 4.
func PerToken(d []int64) Delays {
	return DelayFunc(func(tok, _ int) int64 { return d[tok] })
}

// UniformRandom returns deterministic pseudo-random Delays uniform over
// [c1, c2], keyed by (seed, token, link) so a given token's link time is
// stable no matter the call order.
func UniformRandom(c1, c2, seed int64) Delays {
	if c2 < c1 {
		c2 = c1
	}
	span := uint64(c2 - c1 + 1)
	return DelayFunc(func(tok, link int) int64 {
		x := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(tok)<<20 ^ uint64(link))
		return c1 + int64(x%span)
	})
}

// Bimodal returns deterministic pseudo-random Delays that are c1 with
// probability 1-p and c2 with probability p — the bursty "timing anomaly"
// distribution that maximizes inversions for a given c2/c1 ratio.
func Bimodal(c1, c2 int64, p float64, seed int64) Delays {
	return DelayFunc(func(tok, link int) int64 {
		x := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(tok)<<20 ^ uint64(link))
		if float64(x%1_000_000)/1_000_000 < p {
			return c2
		}
		return c1
	})
}

// splitmix64 is the SplitMix64 mixing function, used for stateless
// deterministic pseudo-randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Event records one instantaneous transition of the execution, in the sense
// of the paper's execution model E = e1, e2, ...: token Tok passed node Node
// at time Time; Value is the assigned counter value for counter transitions
// and -1 otherwise.
type Event struct {
	Time  int64
	Tok   int
	Node  topo.NodeID
	Value int64
}

// Result is the outcome of running a timing schedule.
type Result struct {
	// Ops holds one lincheck operation per token, indexed by token id:
	// Start is the arrival time Q(k,1), End the counter transition time.
	Ops []lincheck.Op
	// Values[k] is the counter value token k received.
	Values []int64
	// Exits[k] is the time token k transited its counter.
	Exits []int64
	// Events is the full transition trace, in execution order, when
	// Options.Trace is set.
	Events []Event
}

// Report analyzes the execution's linearizability (Definition 2.4).
func (r *Result) Report() lincheck.Report { return lincheck.Analyze(r.Ops) }

// Options tunes Run.
type Options struct {
	// Trace records every transition event in Result.Events.
	Trace bool
	// Observer, when non-nil, is invoked on every transition event in
	// execution order (used by the histvar tracker).
	Observer func(Event)
}

// Run executes the timing schedule (arrivals, delays) on network g and
// returns the per-token results. Tokens are numbered by their index in
// arrivals; equal-time transitions are ordered by scheduling order (tokens
// entering earlier in the slice transition first), which the Section 4
// scenarios rely on.
func Run(g *topo.Graph, arrivals []Arrival, delays Delays, opts Options) (*Result, error) {
	n := len(arrivals)
	st := topo.NewStepper(g)
	res := &Result{
		Ops:    make([]lincheck.Op, n),
		Values: make([]int64, n),
		Exits:  make([]int64, n),
	}
	var pq eventHeap
	var seq int64
	for k, a := range arrivals {
		if a.Input < 0 || a.Input >= g.InWidth() {
			return nil, fmt.Errorf("schedule: token %d arrives at input %d of %d", k, a.Input, g.InWidth())
		}
		tok := st.Inject(a.Input)
		if tok != k {
			return nil, fmt.Errorf("schedule: token numbering skew (%d != %d)", tok, k)
		}
		res.Ops[k].Start = a.Time
		heap.Push(&pq, item{time: a.Time, seq: seq, tok: k})
		seq++
	}
	hops := make([]int, n) // links traversed so far per token
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(item)
		node := st.At(it.tok).Node
		done, err := st.Step(it.tok)
		if err != nil {
			return nil, err
		}
		if opts.Trace || opts.Observer != nil {
			v := int64(-1)
			if done {
				v, _ = st.Value(it.tok)
			}
			ev := Event{Time: it.time, Tok: it.tok, Node: node, Value: v}
			if opts.Trace {
				res.Events = append(res.Events, ev)
			}
			if opts.Observer != nil {
				opts.Observer(ev)
			}
		}
		if done {
			v, _ := st.Value(it.tok)
			res.Values[it.tok] = v
			res.Exits[it.tok] = it.time
			res.Ops[it.tok].End = it.time
			res.Ops[it.tok].Value = v
			continue
		}
		hops[it.tok]++
		d := delays.Link(it.tok, hops[it.tok])
		if d <= 0 {
			return nil, fmt.Errorf("schedule: non-positive link delay %d for token %d link %d", d, it.tok, hops[it.tok])
		}
		heap.Push(&pq, item{time: it.time + d, seq: seq, tok: it.tok})
		seq++
	}
	return res, nil
}

// item is one pending transition in the event queue.
type item struct {
	time int64
	seq  int64
	tok  int
}

// eventHeap is a min-heap on (time, seq).
type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
