package periodic

import (
	"testing"

	"countnet/internal/topo"
)

func TestNewRejectsBadWidth(t *testing.T) {
	for _, w := range []int{0, 1, 3, 10, -2} {
		if _, err := New(w); err == nil {
			t.Errorf("New(%d) succeeded", w)
		}
	}
}

func TestShape(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16, 32} {
		g, err := New(w)
		if err != nil {
			t.Fatalf("New(%d): %v", w, err)
		}
		if g.InWidth() != w || g.OutWidth() != w {
			t.Errorf("width %d: in=%d out=%d", w, g.InWidth(), g.OutWidth())
		}
		if got, want := g.Depth(), Depth(w); got != want {
			t.Errorf("width %d: depth %d, want %d", w, got, want)
		}
		if !g.Uniform() {
			t.Errorf("width %d: not uniform", w)
		}
		if got, want := g.NumBalancers(), w/2*Depth(w); got != want {
			t.Errorf("width %d: %d balancers, want %d", w, got, want)
		}
	}
}

func TestDepthFormula(t *testing.T) {
	want := map[int]int{2: 1, 4: 4, 8: 9, 16: 16, 32: 25}
	for w, d := range want {
		if got := Depth(w); got != d {
			t.Errorf("Depth(%d) = %d, want %d", w, got, d)
		}
	}
}

func TestCountingProperty(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16} {
		g, err := New(w)
		if err != nil {
			t.Fatal(err)
		}
		if err := topo.VerifyCounting(g, 6*w, 40, int64(w)+1); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

// TestExhaustiveWidth4 model-checks Periodic[4] over every interleaving of
// up to 4 tokens.
func TestExhaustiveWidth4(t *testing.T) {
	g, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, per := range [][]int64{
		{1, 1, 0, 0}, {2, 0, 1, 0}, {1, 1, 1, 1},
	} {
		if err := topo.ExhaustiveCheck(g, per, 8_000_000); err != nil {
			t.Errorf("tokens %v: %v", per, err)
		}
	}
}
