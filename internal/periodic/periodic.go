// Package periodic constructs the periodic counting network of Aspnes,
// Herlihy, and Shavit: log2(w) cascaded Block[w] networks, total depth
// log2(w)^2. Corollary 3.10 of the paper shows it, like the bitonic
// network, is linearizable whenever c2 <= 2*c1.
package periodic

import (
	"fmt"

	"countnet/internal/topo"
)

// New returns the periodic counting network of width w, which must be a
// power of two and at least 2.
func New(w int) (*topo.Graph, error) {
	if w < 2 || w&(w-1) != 0 {
		return nil, fmt.Errorf("periodic: width %d is not a power of two >= 2", w)
	}
	b := topo.NewBuilder()
	cur := b.Inputs(w)
	for s := 0; s < log2(w); s++ {
		cur = block(b, cur)
	}
	b.Terminate(cur)
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("periodic: width %d: %w", w, err)
	}
	return g, nil
}

// Depth returns the depth of Periodic[w]: log2(w)^2.
func Depth(w int) int {
	lg := log2(w)
	return lg * lg
}

// block wires one Block[len(in)] network, the balancer analogue of the
// Dowd-Perl-Rudolph-Saks balanced merging block: a first layer of mirror
// balancers pairing wire i with wire n-1-i, followed by two parallel
// Block[n/2] networks on the halves.
func block(b *topo.Builder, in []topo.Out) []topo.Out {
	n := len(in)
	if n == 2 {
		o0, o1 := b.Balancer2(in[0], in[1])
		return []topo.Out{o0, o1}
	}
	k := n / 2
	mid := make([]topo.Out, n)
	for i := 0; i < k; i++ {
		o0, o1 := b.Balancer2(in[i], in[n-1-i])
		mid[i], mid[n-1-i] = o0, o1
	}
	top := block(b, mid[:k])
	bot := block(b, mid[k:])
	return append(top, bot...)
}

func log2(w int) int {
	lg := 0
	for v := w; v > 1; v >>= 1 {
		lg++
	}
	return lg
}
