// Package core implements the paper's primary contribution: a local timing
// measure for uniform counting networks — the ratio c2/c1 between the
// maximum and minimum link-traversal times — together with the
// linearizability bounds it yields (Section 3) and the padding transform of
// Corollary 3.12 that buys linearizability back for a known ratio bound.
//
// The measure is local to links and independent of network depth: any
// uniform counting network whatsoever is linearizable when c2 <= 2*c1
// (Corollary 3.9), and when c2 = k*c1 for k > 2, two operations separated in
// time by more than 2*h*(c2-c1) are still ordered (Lemma 3.7).
//
//countnet:deterministic
package core

import (
	"fmt"
	"math"
)

// Timing describes measured or assumed link-traversal time bounds: every
// link takes between C1 and C2 time units.
type Timing struct {
	C1 int64
	C2 int64
}

// Validate reports whether the timing bounds are sensible.
func (t Timing) Validate() error {
	if t.C1 <= 0 {
		return fmt.Errorf("core: c1 = %d, want > 0", t.C1)
	}
	if t.C2 < t.C1 {
		return fmt.Errorf("core: c2 = %d < c1 = %d", t.C2, t.C1)
	}
	return nil
}

// Ratio returns the measure c2/c1.
func (t Timing) Ratio() float64 { return float64(t.C2) / float64(t.C1) }

// Linearizable reports whether the Corollary 3.9 condition c2 <= 2*c1
// holds, under which every uniform counting network is linearizable in
// every execution, regardless of depth.
func (t Timing) Linearizable() bool { return t.C2 <= 2*t.C1 }

// FinishStartGap returns the Theorem 3.6 bound for a uniform network of
// depth h: if token T2 enters more than this long after token T1 exits,
// T2 returns a higher value. The gap is h*c2 - 2*h*c1; it is negative
// exactly when c2 < 2*c1, meaning even overlapping-by-less-than-the-slack
// operations stay ordered.
func (t Timing) FinishStartGap(h int) int64 {
	return int64(h)*t.C2 - 2*int64(h)*t.C1
}

// StartStartGap returns the Lemma 3.7 bound for a uniform network of depth
// h: if T2 enters more than 2*h*(c2-c1) after T1 entered, T2 returns a
// higher value. The paper shows this bound is tight.
func (t Timing) StartStartGap(h int) int64 {
	return 2 * int64(h) * (t.C2 - t.C1)
}

// K returns the smallest integer k with c2 <= k*c1 — the a-priori ratio
// bound used by the padding construction.
func (t Timing) K() int {
	return int((t.C2 + t.C1 - 1) / t.C1)
}

// PaddingLength returns the Corollary 3.12 prefix length for a depth-h
// uniform counting network under a known bound c2 < k*c1: prefixing each
// input with h*(k-2) one-input one-output balancers yields a linearizable
// network of depth h*(k-1). For k <= 2 no padding is needed.
func PaddingLength(h, k int) int {
	if k <= 2 {
		return 0
	}
	return h * (k - 2)
}

// PaddedDepth returns the depth of the padded network: h*(k-1) for k > 2.
func PaddedDepth(h, k int) int { return h + PaddingLength(h, k) }

// TreeViolationThreshold returns the c2 bound from Theorem 4.1: counting
// (diffracting) trees are not linearizable once c2 exceeds 2*c1.
func TreeViolationThreshold(c1 int64) int64 { return 2 * c1 }

// BitonicViolationThreshold returns the c2 bound from Theorem 4.3: bitonic
// networks are not linearizable once c2 exceeds 2*c1.
func BitonicViolationThreshold(c1 int64) int64 { return 2 * c1 }

// BitonicMassViolationThreshold returns the Theorem 4.4 bound for
// Bitonic[w]: above ((3+log2 w)/2)*c1 there are executions in which a large
// constant fraction of operations is non-linearizable.
func BitonicMassViolationThreshold(w int, c1 int64) float64 {
	return (3 + math.Log2(float64(w))) / 2 * float64(c1)
}

// AvgRatio is the empirical measure reported in Figure 7 of the paper:
// (Tog + W) / Tog, where Tog is the average time a token waits before
// toggling a balancer and W the injected per-node delay. It estimates the
// average c2/c1 of the execution: a fast token's effective link time is
// about Tog, a delayed token's about Tog + W.
func AvgRatio(tog, w float64) float64 {
	if tog <= 0 {
		return math.Inf(1)
	}
	return (tog + w) / tog
}

// TogFor inverts AvgRatio: the average toggle wait that would yield the
// given measured ratio under delay W. Useful for calibrating simulations
// against the paper's Figure 7 table.
func TogFor(ratio, w float64) float64 {
	if ratio <= 1 {
		return math.Inf(1)
	}
	return w / (ratio - 1)
}
