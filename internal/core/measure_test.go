package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimingValidate(t *testing.T) {
	cases := []struct {
		tm Timing
		ok bool
	}{
		{Timing{C1: 1, C2: 1}, true},
		{Timing{C1: 1, C2: 100}, true},
		{Timing{C1: 0, C2: 5}, false},
		{Timing{C1: -1, C2: 5}, false},
		{Timing{C1: 10, C2: 5}, false},
	}
	for _, c := range cases {
		err := c.tm.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.tm, err, c.ok)
		}
	}
}

func TestLinearizableBound(t *testing.T) {
	if !(Timing{C1: 100, C2: 200}).Linearizable() {
		t.Error("c2 = 2*c1 must be linearizable (Corollary 3.9)")
	}
	if (Timing{C1: 100, C2: 201}).Linearizable() {
		t.Error("c2 > 2*c1 must not be guaranteed linearizable")
	}
}

func TestGaps(t *testing.T) {
	tm := Timing{C1: 100, C2: 250}
	if got := tm.FinishStartGap(5); got != 5*250-2*5*100 {
		t.Errorf("FinishStartGap = %d", got)
	}
	if got := tm.StartStartGap(5); got != 2*5*150 {
		t.Errorf("StartStartGap = %d", got)
	}
	// c2 < 2*c1 makes the finish-start gap negative: any non-overlapping
	// pair is ordered with slack.
	if got := (Timing{C1: 100, C2: 150}).FinishStartGap(4); got >= 0 {
		t.Errorf("FinishStartGap = %d, want negative", got)
	}
	if got := tm.Ratio(); got != 2.5 {
		t.Errorf("Ratio = %f", got)
	}
}

func TestK(t *testing.T) {
	cases := []struct {
		c1, c2 int64
		want   int
	}{
		{100, 100, 1},
		{100, 200, 2},
		{100, 201, 3},
		{100, 250, 3},
		{100, 300, 3},
		{100, 301, 4},
	}
	for _, c := range cases {
		if got := (Timing{C1: c.c1, C2: c.c2}).K(); got != c.want {
			t.Errorf("K(%d,%d) = %d, want %d", c.c1, c.c2, got, c.want)
		}
	}
}

func TestKCoversRatioQuick(t *testing.T) {
	f := func(c1Raw, c2Raw uint16) bool {
		c1 := int64(c1Raw%1000) + 1
		c2 := c1 + int64(c2Raw%5000)
		k := (Timing{C1: c1, C2: c2}).K()
		return int64(k)*c1 >= c2 && int64(k-1)*c1 < c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPadding(t *testing.T) {
	if got := PaddingLength(5, 2); got != 0 {
		t.Errorf("PaddingLength(5,2) = %d", got)
	}
	if got := PaddingLength(5, 1); got != 0 {
		t.Errorf("PaddingLength(5,1) = %d", got)
	}
	if got := PaddingLength(5, 4); got != 10 {
		t.Errorf("PaddingLength(5,4) = %d, want h*(k-2) = 10", got)
	}
	if got := PaddedDepth(5, 4); got != 15 {
		t.Errorf("PaddedDepth(5,4) = %d, want h*(k-1) = 15", got)
	}
}

func TestThresholds(t *testing.T) {
	if TreeViolationThreshold(100) != 200 || BitonicViolationThreshold(100) != 200 {
		t.Error("section 4 thresholds must be 2*c1")
	}
	// Theorem 4.4 for w=32: (3+5)/2 * c1 = 4*c1.
	if got := BitonicMassViolationThreshold(32, 100); math.Abs(got-400) > 1e-9 {
		t.Errorf("BitonicMassViolationThreshold(32) = %f, want 400", got)
	}
}

func TestAvgRatio(t *testing.T) {
	// Figure 7 calibration: bitonic, n=4, W=100 reports 1.45, so
	// Tog = 100/0.45 ≈ 222.
	tog := TogFor(1.45, 100)
	if math.Abs(tog-222.22) > 0.5 {
		t.Errorf("TogFor(1.45, 100) = %f", tog)
	}
	if r := AvgRatio(tog, 100); math.Abs(r-1.45) > 1e-9 {
		t.Errorf("AvgRatio round-trip = %f", r)
	}
	if !math.IsInf(AvgRatio(0, 100), 1) {
		t.Error("AvgRatio with zero Tog should be +Inf")
	}
	if !math.IsInf(TogFor(1, 100), 1) {
		t.Error("TogFor with ratio 1 should be +Inf")
	}
}
