package sim

import (
	"fmt"
	"math/rand"

	"countnet/internal/core"
	"countnet/internal/lincheck"
	"countnet/internal/obs"
	"countnet/internal/stats"
	"countnet/internal/topo"
)

// Machine holds the cycle costs of the simulated multiprocessor. They are
// calibrated so the bitonic network's uncontended toggle wait lands near the
// paper's Figure 7 values (Tog ≈ 200 cycles at n=4) and the diffracting
// tree's prism path near Tog ≈ 900 cycles; see EXPERIMENTS.md.
type Machine struct {
	// AcquireCycles is the fixed cost of reaching a node and acquiring its
	// uncontended MCS lock (shared-memory round trips).
	AcquireCycles int64
	// ToggleCycles is the critical-section occupancy of one toggle.
	ToggleCycles int64
	// LinkCycles is the base wire time between nodes.
	LinkCycles int64
	// LinkJitter is the maximum extra wire time; each traversal adds a
	// uniform random amount in [0, LinkJitter] (network-on-chip and cache
	// variability). Zero means perfectly regular links.
	LinkJitter int64
	// CounterCycles is the occupancy of the output counter fetch-and-add.
	CounterCycles int64
	// PrismWindow is how long a token waits in a diffracting prism for a
	// partner before falling back to the toggle (diffracting trees only).
	PrismWindow int64
	// PairCycles is the shared-memory negotiation time of a diffracted pair.
	PairCycles int64
	// MemCycles adds global memory-system interference: every node access
	// costs an extra MemCycles * (tokens in flight) / 256 cycles, modeling
	// the Alewife directory and interconnect saturating as concurrency
	// grows (the paper's Figure 7 shows Tog rising ~2.5x from n=4 to
	// n=256 on the bitonic network).
	MemCycles int64
	// StartStagger spreads processor start times uniformly over
	// [0, StartStagger] cycles; zero starts all processors in lockstep.
	StartStagger int64
	// UnfairLocks replaces the FIFO (MCS) admission at every node with a
	// barging lock: the most recent arrival wins the next critical
	// section. The paper used MCS locks precisely to avoid this, "to
	// reduce contention on the nodes which would have attenuated the
	// influence of the W-waiting periods"; the ablation quantifies that
	// choice.
	UnfairLocks bool
}

// DefaultMachine returns the calibrated Alewife-like cost model.
func DefaultMachine() Machine {
	return Machine{
		AcquireCycles: 150,
		ToggleCycles:  50,
		LinkCycles:    10,
		LinkJitter:    300,
		CounterCycles: 50,
		PrismWindow:   700,
		PairCycles:    850,
		MemCycles:     380,
		StartStagger:  150,
	}
}

// Config describes one simulated benchmark run, mirroring the Section 5
// setup.
type Config struct {
	// Net is the balancing network to execute.
	Net *topo.Graph
	// Procs is the number of simulated processors (the paper's n).
	Procs int
	// Ops stops the run once this many operations completed (paper: 5000).
	Ops int
	// DelayedFrac is F: the fraction of processors that wait W cycles
	// after traversing each node.
	DelayedFrac float64
	// Wait is W, in cycles.
	Wait int64
	// RandomWait, when set, makes every processor wait a uniform random
	// number of cycles in [0, Wait] after each node instead (the paper's
	// final control experiment).
	RandomWait bool
	// Diffract enables the prism model on 2-output balancers (diffracting
	// trees).
	Diffract bool
	// Seed drives all pseudo-randomness (initial stagger, random waits).
	Seed int64
	// Machine is the cost model; zero value means DefaultMachine.
	Machine Machine
	// Tracer, when non-nil, receives one structured event per token
	// transition (enter, balancer/diffract/counter traverse, link hop,
	// exit) with cycle timestamps. Nil costs nothing on the hot path.
	Tracer obs.Tracer
	// Metrics, when non-nil, registers the simulator's live metric family
	// (sim_avg_c2c1, sim_tog_wait_cycles, per-wire min/max, ...) on the
	// registry and keeps it updated during the run.
	Metrics *obs.Registry
}

// Result aggregates one run's measurements.
type Result struct {
	// Ops holds every completed operation.
	Ops []lincheck.Op
	// Report is the linearizability analysis of Ops.
	Report lincheck.Report
	// Tog is the average time a token waited before passing a balancer
	// (queue wait + toggle, or prism wait + pairing), the paper's Tog.
	Tog float64
	// AvgRatio is the paper's Figure 7 measure (Tog + W) / Tog.
	AvgRatio float64
	// Toggles counts balancer traversals that went through the toggle;
	// Diffracted counts traversals resolved by prism pairing.
	Toggles    int64
	Diffracted int64
	// Cycles is the simulated time at which the last operation completed.
	Cycles int64
	// Latency summarizes per-operation durations in cycles.
	Latency stats.Summary
}

// Run simulates the configured benchmark and returns its measurements.
func Run(cfg Config) (*Result, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("sim: nil network")
	}
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("sim: %d processors", cfg.Procs)
	}
	if cfg.Ops < 1 {
		return nil, fmt.Errorf("sim: %d target operations", cfg.Ops)
	}
	if cfg.DelayedFrac < 0 || cfg.DelayedFrac > 1 {
		return nil, fmt.Errorf("sim: delayed fraction %f", cfg.DelayedFrac)
	}
	if cfg.Wait < 0 {
		return nil, fmt.Errorf("sim: negative wait %d", cfg.Wait)
	}
	if (cfg.Machine == Machine{}) {
		cfg.Machine = DefaultMachine()
	}
	// The Figure 7 formula (Tog+W)/Tog with W as configured; when nobody
	// actually waits (F=0) or everyone waits a random amount (mean W/2),
	// use the effective wait so the reported measure reflects the run.
	// Computed up front so the live estimator and the final Result agree.
	effW := float64(cfg.Wait)
	switch {
	case cfg.RandomWait:
		effW = float64(cfg.Wait) / 2
	case cfg.DelayedFrac == 0:
		effW = 0
	}
	s := &sim{
		cfg:      cfg,
		m:        cfg.Machine,
		st:       topo.NewStepper(cfg.Net),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		stations: make([]station, cfg.Net.NumNodes()),
		prisms:   make([]prism, cfg.Net.NumNodes()),
		delayed:  make([]bool, cfg.Procs),
		tr:       cfg.Tracer,
	}
	if cfg.Metrics != nil {
		s.mx = newSimMetrics(cfg.Metrics, cfg.Net, effW)
	}
	// The first F*n processors are the delayed ones, as in the paper's
	// fixed fraction; which processors they are does not matter since all
	// processors are symmetric.
	nd := int(cfg.DelayedFrac * float64(cfg.Procs))
	for p := 0; p < nd; p++ {
		s.delayed[p] = true
	}
	for p := 0; p < cfg.Procs; p++ {
		p := p
		start := int64(0)
		if s.m.StartStagger > 0 {
			start = s.rng.Int63n(s.m.StartStagger + 1)
		}
		s.eng.at(start, func() { s.startOp(p) })
	}
	s.eng.run()
	res := &Result{
		Ops:        s.ops,
		Tog:        0,
		Toggles:    s.toggles,
		Diffracted: s.diffracted,
		Cycles:     s.lastDone,
	}
	if s.nodeVisits > 0 {
		res.Tog = float64(s.nodeWaitSum) / float64(s.nodeVisits)
	}
	res.AvgRatio = core.AvgRatio(res.Tog, effW)
	res.Report = lincheck.Analyze(res.Ops)
	lat := make([]int64, len(res.Ops))
	for i, op := range res.Ops {
		lat[i] = op.End - op.Start
	}
	res.Latency = stats.Summarize(lat)
	return res, nil
}

// station models the lock serializing one node. In FIFO (MCS) mode,
// because arrivals are processed in time order, greedy slot assignment
// (start no earlier than the previous service's end) is exactly FIFO
// admission and no explicit queue is needed. In unfair (barging) mode an
// explicit waiter stack is kept and the most recent arrival is admitted on
// each release.
type station struct {
	nextFree int64    // FIFO mode
	busy     bool     // unfair mode
	waiting  []waiter // unfair mode, admitted LIFO
}

// waiter is one token parked at an unfair lock.
type waiter struct {
	proc    int
	tok     int
	arrival int64
}

// prism is the diffraction state of one node: at most one token waits for a
// partner at a time; gen invalidates stale timeout events.
type prism struct {
	waiting   int // waiting token id, valid when hasWaiter
	waitedAt  int64
	hasWaiter bool
	gen       int64
	waitProc  int
}

type sim struct {
	cfg Config
	m   Machine
	eng engine
	st  *topo.Stepper
	rng *rand.Rand

	stations []station
	prisms   []prism
	delayed  []bool

	tr obs.Tracer  // nil when tracing is disabled
	mx *simMetrics // nil when metrics are disabled

	// Causal span state, populated only when tracing: the engine is
	// single-threaded, so a plain counter issues ids and a map keyed by
	// token carries each token's previous span (keyed access only — never
	// iterated — so runs stay deterministic).
	spanSeq  uint64
	lastSpan map[int]uint64

	ops         []lincheck.Op
	opStart     map[int]int64 // token id -> start time
	started     int
	completed   int
	inflight    int64
	lastDone    int64
	nodeWaitSum int64
	nodeVisits  int64
	toggles     int64
	diffracted  int64
}

// startOp begins a new operation for processor p, unless the target has
// been reached.
func (s *sim) startOp(p int) {
	if s.started >= s.cfg.Ops {
		return
	}
	s.started++
	input := p % s.cfg.Net.InWidth()
	tok := s.st.Inject(input)
	if s.opStart == nil {
		s.opStart = make(map[int]int64, s.cfg.Ops)
	}
	s.opStart[tok] = s.eng.now
	s.inflight++
	if s.mx != nil {
		s.mx.inflight.Set(s.inflight)
	}
	if s.tr != nil {
		span, parent := s.stamp(tok)
		s.tr.Record(obs.Event{T: s.eng.now, Kind: obs.KindEnter, P: int32(p), Tok: int32(tok),
			Node: int32(s.st.At(tok).Node), Value: -1, Span: span, Parent: parent})
	}
	s.arrive(p, tok)
}

// stamp issues the next causal span id for token tok, returning it along
// with the token's previous span (0 for a fresh token) as the parent.
// Call only when tracing is enabled.
func (s *sim) stamp(tok int) (span, parent uint64) {
	s.spanSeq++
	span = s.spanSeq
	if s.lastSpan == nil {
		s.lastSpan = make(map[int]uint64, s.cfg.Procs)
	}
	parent = s.lastSpan[tok]
	s.lastSpan[tok] = span
	return span, parent
}

// memExtra is the global memory-interference cost of one node access: it
// grows linearly with the number of tokens in flight.
func (s *sim) memExtra() int64 {
	if s.m.MemCycles <= 0 || s.inflight <= 1 {
		return 0
	}
	return s.m.MemCycles * (s.inflight - 1) / 256
}

// arrive handles token tok of processor p reaching its next node at the
// current time.
func (s *sim) arrive(p, tok int) {
	node := s.st.At(tok).Node
	kind := s.cfg.Net.KindOf(node)
	if kind == topo.KindBalancer && s.cfg.Diffract && s.cfg.Net.FanOut(node) == 2 {
		s.arrivePrism(p, tok, node)
		return
	}
	occupancy := s.m.ToggleCycles
	if kind == topo.KindCounter {
		occupancy = s.m.CounterCycles
	}
	s.acquire(node, kind, occupancy, s.eng.now, p, tok)
}

// acquire runs token tok through node's lock: FIFO (MCS) by default, or
// barging when Machine.UnfairLocks is set. The lock is approached now (the
// engine's current time); arrival is when the token reached the node and
// anchors the Tog measurement (they differ for tokens that first waited in
// a prism).
func (s *sim) acquire(node topo.NodeID, kind topo.Kind, occupancy, arrival int64, p, tok int) {
	st := &s.stations[node]
	if s.m.UnfairLocks {
		if st.busy {
			st.waiting = append(st.waiting, waiter{proc: p, tok: tok, arrival: arrival})
			return
		}
		st.busy = true
		s.serveUnfair(node, kind, occupancy, arrival, p, tok)
		return
	}
	serviceStart := s.eng.now + s.m.AcquireCycles + s.memExtra()
	if st.nextFree > serviceStart {
		serviceStart = st.nextFree
	}
	serviceEnd := serviceStart + occupancy
	st.nextFree = serviceEnd
	s.eng.at(serviceEnd, func() {
		if kind == topo.KindBalancer {
			s.nodeWaitSum += serviceEnd - arrival
			s.nodeVisits++
			s.toggles++
			s.mx.observeTog(serviceEnd - arrival)
			if s.mx != nil {
				s.mx.toggles.Inc()
			}
		}
		if s.tr != nil {
			k := obs.KindBalancer
			if kind == topo.KindCounter {
				k = obs.KindCounter
			}
			span, parent := s.stamp(tok)
			s.tr.Record(obs.Event{T: serviceEnd, Dur: serviceEnd - arrival, Kind: k,
				P: int32(p), Tok: int32(tok), Node: int32(node), Value: -1,
				Span: span, Parent: parent})
		}
		s.transit(p, tok)
	})
}

// serveUnfair occupies the node for one critical section and, on release,
// admits the most recent waiter.
func (s *sim) serveUnfair(node topo.NodeID, kind topo.Kind, occupancy, arrival int64, p, tok int) {
	st := &s.stations[node]
	serviceEnd := s.eng.now + s.m.AcquireCycles + s.memExtra() + occupancy
	s.eng.at(serviceEnd, func() {
		if kind == topo.KindBalancer {
			s.nodeWaitSum += serviceEnd - arrival
			s.nodeVisits++
			s.toggles++
			s.mx.observeTog(serviceEnd - arrival)
			if s.mx != nil {
				s.mx.toggles.Inc()
			}
		}
		if s.tr != nil {
			k := obs.KindBalancer
			if kind == topo.KindCounter {
				k = obs.KindCounter
			}
			span, parent := s.stamp(tok)
			s.tr.Record(obs.Event{T: serviceEnd, Dur: serviceEnd - arrival, Kind: k,
				P: int32(p), Tok: int32(tok), Node: int32(node), Value: -1,
				Span: span, Parent: parent})
		}
		s.transit(p, tok)
		if len(st.waiting) == 0 {
			st.busy = false
			return
		}
		next := st.waiting[len(st.waiting)-1]
		st.waiting = st.waiting[:len(st.waiting)-1]
		s.serveUnfair(node, kind, occupancy, next.arrival, next.proc, next.tok)
	})
}

// arrivePrism handles a token reaching a diffracting balancer: pair with a
// waiting partner if one is present, otherwise wait PrismWindow for one and
// fall back to the toggle.
func (s *sim) arrivePrism(p, tok int, node topo.NodeID) {
	pr := &s.prisms[node]
	arrival := s.eng.now
	if pr.hasWaiter {
		partner, partnerProc, partnerArr := pr.waiting, pr.waitProc, pr.waitedAt
		pr.hasWaiter = false
		pr.gen++
		done := arrival + s.m.PairCycles + s.memExtra()
		s.eng.at(done, func() {
			s.nodeWaitSum += (done - partnerArr) + (done - arrival)
			s.nodeVisits += 2
			s.diffracted += 2
			s.mx.observeTog(done - partnerArr)
			s.mx.observeTog(done - arrival)
			if s.mx != nil {
				s.mx.diffracted.Add(2)
			}
			if s.tr != nil {
				span, pparent := s.stamp(partner)
				s.tr.Record(obs.Event{T: done, Dur: done - partnerArr, Kind: obs.KindDiffract,
					P: int32(partnerProc), Tok: int32(partner), Node: int32(node), Value: -1,
					Span: span, Parent: pparent})
				span, parent := s.stamp(tok)
				s.tr.Record(obs.Event{T: done, Dur: done - arrival, Kind: obs.KindDiffract,
					P: int32(p), Tok: int32(tok), Node: int32(node), Value: -1,
					Span: span, Parent: parent})
			}
			// The partner diffracts first: two consecutive toggle
			// positions, so the pair leaves on both outputs and the
			// toggle parity is preserved.
			s.transit(partnerProc, partner)
			s.transit(p, tok)
		})
		return
	}
	pr.hasWaiter = true
	pr.waiting = tok
	pr.waitProc = p
	pr.waitedAt = arrival
	pr.gen++
	gen := pr.gen
	s.eng.after(s.m.PrismWindow, func() {
		if !pr.hasWaiter || pr.gen != gen {
			return // already paired
		}
		pr.hasWaiter = false
		pr.gen++
		// Fall back to the toggle's lock.
		s.acquire(node, topo.KindBalancer, s.m.ToggleCycles, arrival, p, tok)
	})
}

// transit performs the instantaneous node transition for tok and schedules
// what follows: the next arrival (after link time plus any injected wait),
// or operation completion.
func (s *sim) transit(p, tok int) {
	from := s.st.At(tok).Node
	done, err := s.st.Step(tok)
	if err != nil {
		// Unreachable by construction; surface loudly in tests.
		panic(fmt.Sprintf("sim: step: %v", err))
	}
	if done {
		v, _ := s.st.Value(tok)
		start := s.opStart[tok]
		delete(s.opStart, tok)
		s.ops = append(s.ops, lincheck.Op{Start: start, End: s.eng.now, Value: v})
		s.completed++
		s.inflight--
		if s.mx != nil {
			s.mx.inflight.Set(s.inflight)
		}
		if s.tr != nil {
			span, parent := s.stamp(tok)
			s.tr.Record(obs.Event{T: s.eng.now, Kind: obs.KindExit,
				P: int32(p), Tok: int32(tok), Node: -1, Value: v,
				Span: span, Parent: parent})
			delete(s.lastSpan, tok)
		}
		if s.eng.now > s.lastDone {
			s.lastDone = s.eng.now
		}
		s.eng.after(s.postNodeWait(p), func() { s.startOp(p) })
		return
	}
	link := s.m.LinkCycles
	if s.m.LinkJitter > 0 {
		link += s.rng.Int63n(s.m.LinkJitter + 1)
	}
	s.mx.observeLink(from, link)
	if s.tr != nil {
		span, parent := s.stamp(tok)
		s.tr.Record(obs.Event{T: s.eng.now + link, Dur: link, Kind: obs.KindLink,
			P: int32(p), Tok: int32(tok), Node: int32(from), Value: -1,
			Span: span, Parent: parent})
	}
	s.eng.after(link+s.postNodeWait(p), func() { s.arrive(p, tok) })
}

// postNodeWait returns processor p's injected wait after traversing a node:
// W for delayed processors, uniform [0, W] in random-wait mode, else 0.
func (s *sim) postNodeWait(p int) int64 {
	if s.cfg.RandomWait {
		if s.cfg.Wait <= 0 {
			return 0
		}
		return s.rng.Int63n(s.cfg.Wait + 1)
	}
	if s.delayed[p] {
		return s.cfg.Wait
	}
	return 0
}
