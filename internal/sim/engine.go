// Package sim is a deterministic discrete-event simulator of a
// shared-memory multiprocessor executing counting-network operations. It
// stands in for the Proteus-simulated MIT Alewife machine of Section 5 of
// "Counting Networks are Practically Linearizable" (see DESIGN.md for the
// substitution argument): n simulated processors repeatedly traverse a
// balancing network whose nodes are protected by FIFO queue locks (the MCS
// model), a fraction F of the processors waits W cycles after traversing
// each node, and the simulator measures the non-linearizability ratio and
// the average toggle wait Tog that the paper's (Tog+W)/Tog measure is built
// from.
//
//countnet:deterministic
package sim

import "container/heap"

// engine is a minimal deterministic discrete-event core: events fire in
// (time, insertion-order) order.
type engine struct {
	now  int64
	seq  int64
	heap evHeap
}

// at schedules fn to run at time t (>= now).
func (e *engine) at(t int64, fn func()) {
	if t < e.now {
		t = e.now
	}
	heap.Push(&e.heap, ev{time: t, seq: e.seq, fn: fn})
	e.seq++
}

// after schedules fn d cycles from now.
func (e *engine) after(d int64, fn func()) { e.at(e.now+d, fn) }

// run drains the event queue.
func (e *engine) run() {
	for e.heap.Len() > 0 {
		it := heap.Pop(&e.heap).(ev)
		e.now = it.time
		it.fn()
	}
}

type ev struct {
	time int64
	seq  int64
	fn   func()
}

type evHeap []ev

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h evHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x any)   { *h = append(*h, x.(ev)) }
func (h *evHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
