package sim

import (
	"fmt"

	"countnet/internal/obs"
	"countnet/internal/topo"
)

// simMetrics is the simulator's live metrics surface: the online
// (Tog+W)/Tog estimator, the toggle-wait latency histogram, traversal
// counters, and per-wire link-time extremes (one MinMax per source node),
// which make the Theorem 3.6 precondition c2 <= 2*c1 observable while a
// run is in flight.
type simMetrics struct {
	tog        *obs.Histogram
	ratio      *obs.Ratio
	toggles    *obs.Counter
	diffracted *obs.Counter
	inflight   *obs.Gauge
	wire       []*obs.MinMax // indexed by the node a wire leaves
	wireAll    *obs.MinMax   // all wires folded together
}

// newSimMetrics registers the simulator metric family on reg. effW is the
// effective injected per-node delay in cycles (the W of the live ratio).
func newSimMetrics(reg *obs.Registry, g *topo.Graph, effW float64) *simMetrics {
	m := &simMetrics{
		tog:        reg.Histogram("sim_tog_wait_cycles"),
		ratio:      reg.Ratio("sim_avg_c2c1", effW),
		toggles:    reg.Counter("sim_toggles_total"),
		diffracted: reg.Counter("sim_diffracted_total"),
		inflight:   reg.Gauge("sim_inflight_tokens"),
		wire:       make([]*obs.MinMax, g.NumNodes()),
		wireAll:    reg.MinMax("sim_wire_cycles"),
	}
	for id := 0; id < g.NumNodes(); id++ {
		m.wire[id] = reg.MinMax(fmt.Sprintf("sim_wire_node%03d_cycles", id))
	}
	return m
}

// observeTog folds one balancer wait into the live Tog estimate.
func (m *simMetrics) observeTog(wait int64) {
	if m == nil {
		return
	}
	m.tog.Observe(wait)
	m.ratio.Observe(wait)
}

// observeLink folds one wire traversal leaving `from` into the per-wire
// extremes.
func (m *simMetrics) observeLink(from topo.NodeID, dur int64) {
	if m == nil {
		return
	}
	m.wire[from].Observe(dur)
	m.wireAll.Observe(dur)
}
