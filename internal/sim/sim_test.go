package sim

import (
	"testing"

	"countnet/internal/bitonic"
	"countnet/internal/dtree"
	"countnet/internal/topo"
)

func mustBitonic(t *testing.T, w int) *topo.Graph {
	t.Helper()
	g, err := bitonic.New(w)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustTree(t *testing.T, w int) *topo.Graph {
	t.Helper()
	g, err := dtree.New(w)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunValidation(t *testing.T) {
	g := mustTree(t, 4)
	bad := []Config{
		{Net: nil, Procs: 1, Ops: 1},
		{Net: g, Procs: 0, Ops: 1},
		{Net: g, Procs: 1, Ops: 0},
		{Net: g, Procs: 1, Ops: 1, DelayedFrac: -0.1},
		{Net: g, Procs: 1, Ops: 1, DelayedFrac: 1.1},
		{Net: g, Procs: 1, Ops: 1, Wait: -5},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRunCompletesExactlyOps(t *testing.T) {
	res, err := Run(Config{Net: mustBitonic(t, 8), Procs: 16, Ops: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) != 500 {
		t.Fatalf("completed %d ops, want 500", len(res.Ops))
	}
	// Values are a permutation of 0..499 (counting correctness end to end).
	seen := make([]bool, 500)
	for _, op := range res.Ops {
		if op.Value < 0 || op.Value >= 500 {
			t.Fatalf("value %d out of range", op.Value)
		}
		if seen[op.Value] {
			t.Fatalf("value %d assigned twice", op.Value)
		}
		seen[op.Value] = true
		if op.End <= op.Start {
			t.Fatalf("op %+v has non-positive duration", op)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Net: mustTree(t, 8), Procs: 32, Ops: 400, DelayedFrac: 0.5, Wait: 1000, Diffract: true, Seed: 7}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Net = mustTree(t, 8) // fresh stepper state
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ops) != len(b.Ops) || a.Tog != b.Tog || a.Report.NonLinearizable != b.Report.NonLinearizable {
		t.Fatalf("non-deterministic: %+v vs %+v", a.Report, b.Report)
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a.Ops[i], b.Ops[i])
		}
	}
}

func TestNoDelayIsLinearizable(t *testing.T) {
	// W=0 and F=0 controls: the paper reports zero violations; with no
	// injected delays the effective c2/c1 stays near 1.
	for name, cfg := range map[string]Config{
		"bitonic W=0": {Net: mustBitonic(t, 8), Procs: 32, Ops: 1000, DelayedFrac: 0.5, Wait: 0, Seed: 3},
		"bitonic F=0": {Net: mustBitonic(t, 8), Procs: 32, Ops: 1000, DelayedFrac: 0, Wait: 10000, Seed: 3},
		"dtree W=0":   {Net: mustTree(t, 8), Procs: 32, Ops: 1000, DelayedFrac: 0.5, Wait: 0, Diffract: true, Seed: 3},
		"dtree F=100": {Net: mustTree(t, 8), Procs: 32, Ops: 1000, DelayedFrac: 1, Wait: 10000, Diffract: true, Seed: 3},
	} {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Report.Linearizable() {
			t.Errorf("%s: %v", name, res.Report)
		}
	}
}

func TestTogCalibration(t *testing.T) {
	// Low-concurrency bitonic toggle wait should be near the uncontended
	// cost Acquire+Toggle = 200 cycles, matching the paper's Figure 7
	// shape (ratio 1.45 at W=100 implies Tog ≈ 222).
	res, err := Run(Config{Net: mustBitonic(t, 32), Procs: 4, Ops: 2000, DelayedFrac: 0.5, Wait: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tog < 190 || res.Tog > 300 {
		t.Errorf("bitonic n=4 Tog = %.1f, want ~200-300", res.Tog)
	}
	if res.AvgRatio < 1.3 || res.AvgRatio > 1.6 {
		t.Errorf("bitonic n=4 W=100 ratio = %.2f, want ~1.45", res.AvgRatio)
	}

	// Diffracting tree: prism path dominates; Tog should be near 900
	// regardless of concurrency (ratio ~1.11 at W=100).
	for _, n := range []int{4, 64} {
		res, err := Run(Config{Net: mustTree(t, 32), Procs: n, Ops: 2000, DelayedFrac: 0.5, Wait: 100, Diffract: true, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Tog < 700 || res.Tog > 1300 {
			t.Errorf("dtree n=%d Tog = %.1f, want ~900", n, res.Tog)
		}
	}
}

func TestDiffractionEngages(t *testing.T) {
	res, err := Run(Config{Net: mustTree(t, 8), Procs: 64, Ops: 2000, Diffract: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diffracted == 0 {
		t.Error("no diffracted traversals at high concurrency")
	}
	if res.Diffracted%2 != 0 {
		t.Errorf("diffracted count %d is odd", res.Diffracted)
	}
	lone, err := Run(Config{Net: mustTree(t, 8), Procs: 1, Ops: 50, Diffract: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if lone.Diffracted != 0 {
		t.Errorf("single processor diffracted %d times", lone.Diffracted)
	}
	if lone.Toggles == 0 {
		t.Error("single processor never toggled")
	}
}

func TestDelayedProcessorsRaiseRatio(t *testing.T) {
	base := Config{Net: mustBitonic(t, 8), Procs: 32, Ops: 1000, DelayedFrac: 0.25, Seed: 11}
	base.Wait = 100
	low, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Net = mustBitonic(t, 8)
	base.Wait = 10000
	high, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if high.AvgRatio <= low.AvgRatio {
		t.Errorf("ratio did not grow with W: %.2f vs %.2f", low.AvgRatio, high.AvgRatio)
	}
	if high.AvgRatio < 2 {
		t.Errorf("W=10000 ratio %.2f unexpectedly below 2", high.AvgRatio)
	}
}
