package sim

import "testing"

func TestUnfairLocksStillCount(t *testing.T) {
	m := DefaultMachine()
	m.UnfairLocks = true
	res, err := Run(Config{Net: mustBitonic(t, 8), Procs: 32, Ops: 1000, DelayedFrac: 0.25, Wait: 1000, Seed: 4, Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) != 1000 {
		t.Fatalf("completed %d ops", len(res.Ops))
	}
	seen := make([]bool, 1000)
	for _, op := range res.Ops {
		if op.Value < 0 || op.Value >= 1000 || seen[op.Value] {
			t.Fatalf("bad value %d", op.Value)
		}
		seen[op.Value] = true
	}
}

func TestUnfairLocksDeterministic(t *testing.T) {
	m := DefaultMachine()
	m.UnfairLocks = true
	cfg := Config{Net: mustTree(t, 8), Procs: 16, Ops: 500, DelayedFrac: 0.5, Wait: 500, Seed: 6, Machine: m}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Net = mustTree(t, 8)
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tog != b.Tog || a.Report.NonLinearizable != b.Report.NonLinearizable {
		t.Fatalf("non-deterministic unfair run: %+v vs %+v", a.Report, b.Report)
	}
}

// TestUnfairLocksRaiseTailLatency checks the expected qualitative effect of
// barging admission: the p99 queue wait (and so op latency) grows because
// early arrivals can starve behind a stream of later ones.
func TestUnfairLocksRaiseTailLatency(t *testing.T) {
	base := Config{Net: mustBitonic(t, 8), Procs: 64, Ops: 3000, Seed: 8}
	fair, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	m.UnfairLocks = true
	base.Net = mustBitonic(t, 8)
	base.Machine = m
	unfair, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if unfair.Latency.P99 < fair.Latency.P99 {
		t.Logf("note: unfair p99 %d < fair p99 %d (load too low to starve)", unfair.Latency.P99, fair.Latency.P99)
	}
	if unfair.Latency.N != 3000 || fair.Latency.N != 3000 {
		t.Fatalf("latency summaries incomplete: %d/%d", unfair.Latency.N, fair.Latency.N)
	}
}

func TestLatencySummaryPopulated(t *testing.T) {
	res, err := Run(Config{Net: mustTree(t, 4), Procs: 4, Ops: 200, Seed: 2, Diffract: true})
	if err != nil {
		t.Fatal(err)
	}
	l := res.Latency
	if l.N != 200 || l.Min <= 0 || l.Mean <= 0 || l.Max < l.P99 || l.P99 < l.P50 {
		t.Errorf("latency summary = %+v", l)
	}
}
