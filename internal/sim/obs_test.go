package sim

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"countnet/internal/bitonic"
	"countnet/internal/obs"
)

// TestTracedRunWidth32 is the tentpole acceptance check: a traced sim run
// of the width-32 bitonic network must (a) export a Chrome-trace file, (b)
// have per-wire min/max link traversals that reproduce the engine's
// configured c1 = LinkCycles and c2 = LinkCycles+LinkJitter, and (c) report
// a live (Tog+W)/Tog gauge matching the offline Result.AvgRatio within 1%.
func TestTracedRunWidth32(t *testing.T) {
	g, err := bitonic.New(32)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	c1 := m.LinkCycles
	c2 := m.LinkCycles + m.LinkJitter
	ring := obs.NewRing(64, 1<<15)
	reg := obs.NewRegistry()
	cfg := Config{
		Net:         g,
		Procs:       64,
		Ops:         1500,
		DelayedFrac: 0.25,
		Wait:        10000,
		Seed:        7,
		Machine:     m,
		Tracer:      ring,
		Metrics:     reg,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// (c) live gauge vs offline computation.
	ratio := reg.Ratio("sim_avg_c2c1", 0) // returns the registered instance
	if got, want := ratio.Value(), res.AvgRatio; math.Abs(got-want)/want > 0.01 {
		t.Fatalf("live (Tog+W)/Tog gauge %f, offline %f: differ by more than 1%%", got, want)
	}
	if got := ratio.Tog(); math.Abs(got-res.Tog)/res.Tog > 0.01 {
		t.Fatalf("live Tog %f, offline %f", got, res.Tog)
	}

	// (b) per-wire extremes from the live metrics...
	wire := reg.MinMax("sim_wire_cycles")
	lo, ok := wire.Min()
	if !ok {
		t.Fatal("no wire traversals observed")
	}
	hi, _ := wire.Max()
	if lo < c1 || hi > c2 {
		t.Fatalf("wire extremes [%d,%d] outside configured [c1=%d,c2=%d]", lo, hi, c1, c2)
	}
	// ...with this many samples the bounds are attained exactly.
	if lo != c1 || hi != c2 {
		t.Fatalf("wire extremes [%d,%d] do not reproduce configured c1=%d, c2=%d", lo, hi, c1, c2)
	}

	// (a) trace export, and per-wire extremes recomputed from the trace
	// file agree with the configured bounds too.
	events := ring.Events()
	if ring.Overwritten() > 0 {
		t.Fatalf("ring overwrote %d events; size the ring up", ring.Overwritten())
	}
	var buf bytes.Buffer
	meta := obs.Meta{Engine: "sim", Unit: "cycles", Net: "bitonic", Width: 32}
	if err := obs.WriteChromeTrace(&buf, meta, events); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty chrome trace")
	}
	linkMin, linkMax := int64(math.MaxInt64), int64(math.MinInt64)
	counts := map[obs.Kind]int{}
	var values []int64
	for _, ev := range events {
		counts[ev.Kind]++
		if ev.Kind == obs.KindLink {
			if ev.Dur < linkMin {
				linkMin = ev.Dur
			}
			if ev.Dur > linkMax {
				linkMax = ev.Dur
			}
		}
		if ev.Kind == obs.KindExit {
			values = append(values, ev.Value)
		}
	}
	if linkMin != c1 || linkMax != c2 {
		t.Fatalf("trace per-wire extremes [%d,%d], want [c1=%d,c2=%d]", linkMin, linkMax, c1, c2)
	}
	if counts[obs.KindEnter] != cfg.Ops || counts[obs.KindExit] != cfg.Ops {
		t.Fatalf("trace has %d enters / %d exits, want %d each", counts[obs.KindEnter], counts[obs.KindExit], cfg.Ops)
	}
	if counts[obs.KindBalancer] == 0 || counts[obs.KindLink] == 0 || counts[obs.KindCounter] != cfg.Ops {
		t.Fatalf("trace kind counts look wrong: %v", counts)
	}
	// Exit values are the full permutation 0..Ops-1 — the trace is a
	// faithful record of the run.
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for i, v := range values {
		if v != int64(i) {
			t.Fatalf("traced exit values are not a permutation at %d: %d", i, v)
		}
	}
}

// TestTracedRunZeroJitter pins the exact-reproduction case: without link
// jitter every wire traversal is exactly LinkCycles.
func TestTracedRunZeroJitter(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMachine()
	m.LinkJitter = 0
	reg := obs.NewRegistry()
	if _, err := Run(Config{Net: g, Procs: 4, Ops: 64, Seed: 1, Machine: m, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	wire := reg.MinMax("sim_wire_cycles")
	lo, ok := wire.Min()
	hi, _ := wire.Max()
	if !ok || lo != m.LinkCycles || hi != m.LinkCycles {
		t.Fatalf("zero-jitter wire extremes [%d,%d], want exactly %d", lo, hi, m.LinkCycles)
	}
}

// TestDiffractTraced covers the prism path: a traced dtree run must emit
// diffract events and count them in the metrics.
func TestDiffractTraced(t *testing.T) {
	g, err := bitonic.New(2) // any 2-output balancer network diffracts
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(16, 1<<12)
	reg := obs.NewRegistry()
	res, err := Run(Config{Net: g, Procs: 16, Ops: 400, Diffract: true, Seed: 3, Tracer: ring, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diffracted == 0 {
		t.Skip("no diffraction happened under this seed")
	}
	if got := reg.Counter("sim_diffracted_total").Value(); got != res.Diffracted {
		t.Fatalf("diffracted counter %d, result says %d", got, res.Diffracted)
	}
	var diffracts int
	for _, ev := range ring.Events() {
		if ev.Kind == obs.KindDiffract {
			diffracts++
		}
	}
	if int64(diffracts) != res.Diffracted {
		t.Fatalf("trace has %d diffract events, result says %d", diffracts, res.Diffracted)
	}
}

// TestUntracedRunUnchanged guards the zero-cost-when-disabled property at
// the behavioural level: the same seed yields the identical result with
// and without tracing.
func TestUntracedRunUnchanged(t *testing.T) {
	g, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Net: g, Procs: 8, Ops: 256, DelayedFrac: 0.25, Wait: 1000, Seed: 11}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	traced := base
	traced.Tracer = obs.NewRing(8, 1<<13)
	traced.Metrics = obs.NewRegistry()
	withObs, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != withObs.Cycles || plain.Tog != withObs.Tog ||
		plain.Report != withObs.Report || len(plain.Ops) != len(withObs.Ops) {
		t.Fatalf("tracing changed the run: %+v vs %+v", plain.Report, withObs.Report)
	}
}

// TestCausalSpansDeterministic checks the simulator's span graph: unique
// ids, each token a single parent chain, the trace causally closed, and —
// because the engine is single-threaded — two runs with the same seed
// produce identical span/parent assignments.
func TestCausalSpansDeterministic(t *testing.T) {
	run := func() []obs.Event {
		g, err := bitonic.New(4)
		if err != nil {
			t.Fatal(err)
		}
		ring := obs.NewRing(8, 1<<14)
		if _, err := Run(Config{Net: g, Procs: 8, Ops: 200, Seed: 3, Tracer: ring}); err != nil {
			t.Fatal(err)
		}
		return ring.Events()
	}
	events := run()
	if closed, orphans := obs.CausalClosure(events); orphans != 0 || len(closed) != len(events) {
		t.Fatalf("sim trace not causally closed: %d orphans", orphans)
	}
	spans := map[uint64]bool{}
	chains := map[int32]uint64{} // token → last span seen walking span order
	var order []obs.Event
	for _, ev := range events {
		if ev.Span == 0 {
			t.Fatalf("unstamped event in traced run: %+v", ev)
		}
		if spans[ev.Span] {
			t.Fatalf("span id %d reused", ev.Span)
		}
		spans[ev.Span] = true
		order = append(order, ev)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Span < order[j].Span })
	for _, ev := range order {
		if ev.Parent != chains[ev.Tok] {
			t.Fatalf("token %d chain broken: event %+v, expected parent %d", ev.Tok, ev, chains[ev.Tok])
		}
		if ev.Kind == obs.KindExit {
			delete(chains, ev.Tok)
		} else {
			chains[ev.Tok] = ev.Span
		}
	}
	if len(chains) != 0 {
		t.Fatalf("%d tokens never exited their span chain", len(chains))
	}

	again := run()
	if len(again) != len(events) {
		t.Fatalf("reruns traced %d vs %d events", len(again), len(events))
	}
	for i := range events {
		if events[i] != again[i] {
			t.Fatalf("sim trace not deterministic at %d: %+v vs %+v", i, events[i], again[i])
		}
	}
}
