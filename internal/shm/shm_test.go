package shm

import (
	"sync"
	"testing"
	"time"

	"countnet/internal/bitonic"
	"countnet/internal/dtree"
	"countnet/internal/topo"
)

func TestNewBalancerValidation(t *testing.T) {
	if _, err := NewBalancer(KindAtomic, 0); err == nil {
		t.Error("fanOut 0 accepted")
	}
	if _, err := NewBalancer(Kind(99), 2); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := NewDiffracting(nil, 4, time.Microsecond); err == nil {
		t.Error("nil inner accepted")
	}
	b, _ := NewBalancer(KindAtomic, 2)
	if _, err := NewDiffracting(b, 4, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindAtomic: "atomic", KindMutex: "mutex", KindMCS: "mcs"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

// TestBalancerStepProperty hammers each balancer implementation and checks
// the quiescent step property on its outputs.
func TestBalancerStepProperty(t *testing.T) {
	const goroutines = 8
	const iters = 2000
	mk := func(t *testing.T, kind Kind, diffract bool) Balancer {
		t.Helper()
		b, err := NewBalancer(kind, 2)
		if err != nil {
			t.Fatal(err)
		}
		if diffract {
			if b, err = NewDiffracting(b, 4, 2*time.Microsecond); err != nil {
				t.Fatal(err)
			}
		}
		return b
	}
	for name, b := range map[string]Balancer{
		"atomic":      mk(t, KindAtomic, false),
		"mutex":       mk(t, KindMutex, false),
		"mcs":         mk(t, KindMCS, false),
		"diffracting": mk(t, KindMCS, true),
	} {
		counts := make([]int64, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					out := b.Traverse()
					if out == 0 {
						counts[g]++
					} else if out != 1 {
						t.Errorf("%s: output %d out of range", name, out)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		var zeros int64
		for _, c := range counts {
			zeros += c
		}
		total := int64(goroutines * iters)
		diff := zeros - (total - zeros)
		if diff < 0 || diff > 1 {
			t.Errorf("%s: port counts %d/%d violate the step property", name, zeros, total-zeros)
		}
	}
}

func TestBalancerFanOutN(t *testing.T) {
	b, err := NewBalancer(KindAtomic, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for i := 0; i < 9; i++ {
		counts[b.Traverse()]++
	}
	for p, c := range counts {
		if c != 3 {
			t.Errorf("port %d count %d", p, c)
		}
	}
}

func compile(t *testing.T, g *topo.Graph, opts Options) *Network {
	t.Helper()
	n, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestNetworkCountsPermutation checks end-to-end counting correctness for
// every toggle kind and both network families under real concurrency.
func TestNetworkCountsPermutation(t *testing.T) {
	gb, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := dtree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*Network{
		"bitonic/atomic": compile(t, gb, Options{Kind: KindAtomic}),
		"bitonic/mutex":  compile(t, gb, Options{Kind: KindMutex}),
		"bitonic/mcs":    compile(t, gb, Options{Kind: KindMCS}),
		"dtree/mcs":      compile(t, gt, Options{Kind: KindMCS}),
		"dtree/diffract": compile(t, gt, Options{Kind: KindMCS, Diffract: true}),
	}
	for name, n := range cases {
		const workers = 8
		const perWorker = 400
		total := workers * perWorker
		got := make([][]int64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				vals := make([]int64, 0, perWorker)
				in := w % n.InWidth()
				for i := 0; i < perWorker; i++ {
					vals = append(vals, n.Traverse(in))
				}
				got[w] = vals
			}(w)
		}
		wg.Wait()
		seen := make([]bool, total)
		for _, vals := range got {
			for _, v := range vals {
				if v < 0 || v >= int64(total) {
					t.Fatalf("%s: value %d out of range", name, v)
				}
				if seen[v] {
					t.Fatalf("%s: value %d duplicated", name, v)
				}
				seen[v] = true
			}
		}
		if !topo.StepPropertyHolds(n.CounterCounts()) {
			t.Errorf("%s: quiescent counter counts %v violate step property", name, n.CounterCounts())
		}
	}
}

// TestSingleWorkerValuesSequential checks the sequential guarantee through
// the real runtime: one goroutine alone must count 0, 1, 2, ...
//
// Note the deliberate contrast: with MULTIPLE goroutines, a worker's own
// successive values need NOT increase on a counting network — that is
// exactly the linearizability violation this paper studies (a goroutine
// preempted mid-traversal plays the role of a token with c2 >> c1), and
// real runs of this package do exhibit it. Only the c2 <= 2*c1 condition
// (or padding) restores the ordering, which wall-clock goroutine scheduling
// cannot promise.
func TestSingleWorkerValuesSequential(t *testing.T) {
	g, err := dtree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	n := compile(t, g, Options{Kind: KindMCS, Diffract: true})
	for k := 0; k < 500; k++ {
		if v := n.Traverse(0); v != int64(k) {
			t.Fatalf("sequential traversal %d returned %d", k, v)
		}
	}
}

func TestCompileValidation(t *testing.T) {
	if _, err := Compile(nil, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestStressBasic(t *testing.T) {
	g, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	n := compile(t, g, Options{Kind: KindMCS})
	res, err := Stress(StressConfig{Net: n, Workers: 8, Ops: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) != 2000 {
		t.Fatalf("recorded %d ops", len(res.Ops))
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput %f", res.Throughput)
	}
	// Values must be exactly 0..1999.
	seen := make([]bool, 2000)
	for _, op := range res.Ops {
		if op.Value < 0 || op.Value >= 2000 || seen[op.Value] {
			t.Fatalf("bad value %d", op.Value)
		}
		seen[op.Value] = true
	}
}

func TestStressValidation(t *testing.T) {
	g, err := dtree.New(2)
	if err != nil {
		t.Fatal(err)
	}
	n := compile(t, g, Options{})
	for _, cfg := range []StressConfig{
		{Net: nil, Workers: 1, Ops: 1},
		{Net: n, Workers: 0, Ops: 1},
		{Net: n, Workers: 1, Ops: 0},
		{Net: n, Workers: 1, Ops: 1, DelayedFrac: 2},
		{Net: n, Workers: 1, Ops: 1, Delay: -time.Second},
	} {
		if _, err := Stress(cfg); err == nil {
			t.Errorf("config accepted: %+v", cfg)
		}
	}
}

func TestStressWithInjectedDelays(t *testing.T) {
	g, err := dtree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	n := compile(t, g, Options{Kind: KindMCS, Diffract: true})
	res, err := Stress(StressConfig{
		Net: n, Workers: 8, Ops: 1000,
		DelayedFrac: 0.25, Delay: 50 * time.Microsecond, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Violations may or may not occur (that is the paper's point); the
	// harness must still account for every operation.
	if res.Report.Total != 1000 {
		t.Fatalf("analyzed %d ops", res.Report.Total)
	}
}
