// Package shm is the real shared-memory runtime for balancing networks:
// goroutine-safe balancers (atomic, mutex, and MCS-queue-lock toggles, plus
// prism-diffracting balancers), compiled networks that goroutines traverse
// directly, and a stress driver with delay injection and real-time
// linearizability monitoring. It is the goroutines-as-processors
// counterpart of the cycle-level simulator in internal/sim.
package shm

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"countnet/internal/shm/mcs"
	"countnet/internal/shm/prism"
)

// Balancer routes one token to an output port, preserving the step property
// on the node's outputs. Implementations are safe for concurrent use.
type Balancer interface {
	Traverse() int
}

// Kind selects a toggle implementation.
type Kind int

// Toggle implementations.
const (
	// KindAtomic implements the toggle with a single atomic fetch-and-add.
	KindAtomic Kind = iota + 1
	// KindMutex protects the toggle with a sync.Mutex.
	KindMutex
	// KindMCS protects the toggle with an MCS queue lock, the paper's
	// balancer implementation.
	KindMCS
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindAtomic:
		return "atomic"
	case KindMutex:
		return "mutex"
	case KindMCS:
		return "mcs"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// NewBalancer returns a balancer of the given kind with fanOut outputs.
func NewBalancer(k Kind, fanOut int) (Balancer, error) {
	if fanOut < 1 {
		return nil, fmt.Errorf("shm: balancer fanOut %d", fanOut)
	}
	switch k {
	case KindAtomic:
		return &atomicBalancer{fanOut: int64(fanOut)}, nil
	case KindMutex:
		return &mutexBalancer{fanOut: fanOut}, nil
	case KindMCS:
		return &mcsBalancer{fanOut: fanOut}, nil
	default:
		return nil, fmt.Errorf("shm: unknown balancer kind %d", int(k))
	}
}

// atomicBalancer distributes tokens round-robin with one fetch-and-add.
type atomicBalancer struct {
	c      atomic.Int64
	fanOut int64
}

func (b *atomicBalancer) Traverse() int {
	return int((b.c.Add(1) - 1) % b.fanOut)
}

// mutexBalancer is the textbook toggle under a mutex.
type mutexBalancer struct {
	mu     sync.Mutex
	toggle int
	fanOut int
}

func (b *mutexBalancer) Traverse() int {
	//countnet:allow hotvet -- KindMutex is the deliberately blocking textbook toggle, kept as the measurement baseline
	b.mu.Lock()
	out := b.toggle
	b.toggle = (b.toggle + 1) % b.fanOut
	b.mu.Unlock()
	return out
}

// mcsBalancer is the paper's balancer: a toggle in a critical section
// protected by an MCS queue lock.
type mcsBalancer struct {
	lock   mcs.Lock
	pool   mcs.Pool
	toggle int
	fanOut int
}

func (b *mcsBalancer) Traverse() int {
	n := b.pool.Get()
	b.lock.Acquire(n)
	out := b.toggle
	b.toggle = (b.toggle + 1) % b.fanOut
	b.lock.Release(n)
	b.pool.Put(n)
	return out
}

// Diffracting wraps a two-output toggle with a prism: concurrent pairs
// collide in the prism and leave on complementary outputs without touching
// the toggle (Shavit-Zemach diffraction).
type Diffracting struct {
	prism  *prism.Prism
	window time.Duration
	inner  Balancer
	rngs   sync.Pool
	seed   atomic.Int64
}

// NewDiffracting returns a diffracting balancer over the given two-output
// toggle. prismWidth is the number of exchanger slots; window how long a
// token waits for a partner before falling back to the toggle.
func NewDiffracting(inner Balancer, prismWidth int, window time.Duration) (*Diffracting, error) {
	if inner == nil {
		return nil, fmt.Errorf("shm: nil inner balancer")
	}
	if window <= 0 {
		return nil, fmt.Errorf("shm: non-positive prism window %v", window)
	}
	d := &Diffracting{
		prism:  prism.New(prismWidth),
		window: window,
		inner:  inner,
	}
	d.rngs.New = func() any {
		return rand.New(rand.NewSource(d.seed.Add(1) * 0x9e3779b9))
	}
	return d, nil
}

// Traverse implements Balancer.
func (d *Diffracting) Traverse() int {
	rng, _ := d.rngs.Get().(*rand.Rand)
	out := d.prism.Exchange(d.window, rng)
	d.rngs.Put(rng)
	switch out {
	case prism.First:
		return 0
	case prism.Second:
		return 1
	default:
		return d.inner.Traverse()
	}
}

// Interface compliance.
var (
	_ Balancer = (*atomicBalancer)(nil)
	_ Balancer = (*mutexBalancer)(nil)
	_ Balancer = (*mcsBalancer)(nil)
	_ Balancer = (*Diffracting)(nil)
)
