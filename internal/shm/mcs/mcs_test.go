package mcs

import (
	"sync"
	"testing"
)

func TestMutualExclusion(t *testing.T) {
	var l Lock
	var pool Pool
	const goroutines = 16
	const iters = 2000
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := pool.Get()
				l.Acquire(n)
				counter++ // data race unless the lock works
				l.Release(n)
				pool.Put(n)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

func TestTryAcquire(t *testing.T) {
	var l Lock
	a, b := new(Node), new(Node)
	if !l.TryAcquire(a) {
		t.Fatal("TryAcquire on a free lock failed")
	}
	if l.TryAcquire(b) {
		t.Fatal("TryAcquire succeeded while held")
	}
	l.Release(a)
	if !l.TryAcquire(b) {
		t.Fatal("TryAcquire after Release failed")
	}
	l.Release(b)
}

func TestUncontendedSequence(t *testing.T) {
	var l Lock
	n := new(Node)
	for i := 0; i < 100; i++ {
		l.Acquire(n)
		l.Release(n)
	}
}

func BenchmarkMCSUncontended(b *testing.B) {
	var l Lock
	n := new(Node)
	for i := 0; i < b.N; i++ {
		l.Acquire(n)
		l.Release(n)
	}
}

func BenchmarkMCSContended(b *testing.B) {
	var l Lock
	var pool Pool
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := pool.Get()
			l.Acquire(n)
			l.Release(n)
			pool.Put(n)
		}
	})
}
