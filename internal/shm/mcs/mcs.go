// Package mcs implements the queue lock of Mellor-Crummey and Scott
// ("Algorithms for Scalable Synchronization on Shared-Memory
// Multiprocessors"), the lock the paper uses to protect every balancer: each
// waiter spins on its own queue node, so admission is FIFO and the lock
// generates constant remote traffic per handoff.
package mcs

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Node is one waiter's queue cell. A Node may be reused after Release
// returns; use a Pool to amortize allocation.
type Node struct {
	next   atomic.Pointer[Node]
	locked atomic.Bool
	_      [40]byte // keep hot fields of different nodes on separate cache lines
}

// Lock is an MCS queue lock. The zero value is an unlocked lock.
type Lock struct {
	tail atomic.Pointer[Node]
}

// Acquire enters the critical section, spinning on n until the predecessor
// hands the lock over. n must not be in use by another Acquire.
func (l *Lock) Acquire(n *Node) {
	n.next.Store(nil)
	n.locked.Store(true)
	pred := l.tail.Swap(n)
	if pred == nil {
		return
	}
	pred.next.Store(n)
	for spins := 0; n.locked.Load(); spins++ {
		if spins%64 == 63 {
			//countnet:allow hotvet -- bounded courtesy yield while the predecessor hands over the MCS lock; pure spinning here starves oversubscribed runs
			runtime.Gosched()
		}
	}
}

// TryAcquire enters the critical section only if the lock is free,
// returning whether it succeeded.
func (l *Lock) TryAcquire(n *Node) bool {
	n.next.Store(nil)
	n.locked.Store(true)
	return l.tail.CompareAndSwap(nil, n)
}

// Release leaves the critical section entered with n.
func (l *Lock) Release(n *Node) {
	next := n.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(n, nil) {
			return
		}
		// A successor is linking itself in; wait for the pointer.
		for spins := 0; ; spins++ {
			if next = n.next.Load(); next != nil {
				break
			}
			if spins%64 == 63 {
				//countnet:allow hotvet -- bounded courtesy yield while the successor finishes linking itself into the queue
				runtime.Gosched()
			}
		}
	}
	next.locked.Store(false)
}

// Pool hands out queue Nodes.
type Pool struct {
	p sync.Pool
}

// Get returns a Node ready for Acquire.
func (p *Pool) Get() *Node {
	if n, ok := p.p.Get().(*Node); ok {
		return n
	}
	//countnet:allow hotvet -- a pool miss allocates one queue node; steady-state traffic recycles nodes through the pool
	return new(Node)
}

// Put returns a Node after Release.
func (p *Pool) Put(n *Node) { p.p.Put(n) }
