package backoff

import (
	"testing"
	"time"
)

func TestBackoffEscalation(t *testing.T) {
	var b Backoff
	if b.Attempts() != 0 {
		t.Fatalf("zero value has %d attempts", b.Attempts())
	}
	// The whole ladder must terminate: spins, yields, then one sleep
	// quantum. Walk past every threshold and check the bookkeeping.
	for i := 1; i <= yieldAttempts+1; i++ {
		b.Wait()
		if b.Attempts() != i {
			t.Fatalf("after %d waits Attempts() = %d", i, b.Attempts())
		}
	}
	b.Reset()
	if b.Attempts() != 0 {
		t.Fatalf("Reset left %d attempts", b.Attempts())
	}
}

func TestBackoffSleepLevelActuallySleeps(t *testing.T) {
	var b Backoff
	for i := 0; i < yieldAttempts; i++ {
		b.Wait()
	}
	start := time.Now()
	b.Wait() // past the yield threshold: one sleep quantum
	if elapsed := time.Since(start); elapsed < sleepQuantum/2 {
		t.Errorf("sleep-level Wait returned after %v, quantum is %v", elapsed, sleepQuantum)
	}
}

func TestPause(t *testing.T) {
	for _, d := range []time.Duration{0, -time.Second} {
		start := time.Now()
		Pause(d)
		if elapsed := time.Since(start); elapsed > time.Millisecond {
			t.Errorf("Pause(%v) took %v", d, elapsed)
		}
	}
	for _, d := range []time.Duration{5 * time.Microsecond, 100 * time.Microsecond, 2 * time.Millisecond} {
		start := time.Now()
		Pause(d)
		elapsed := time.Since(start)
		if elapsed < d {
			t.Errorf("Pause(%v) returned early after %v", d, elapsed)
		}
		// Generous ceiling: the point is that a 5µs pause does not park
		// for a scheduler-quantum-scale sleep, not exact landing.
		if elapsed > d+20*time.Millisecond {
			t.Errorf("Pause(%v) overshot to %v", d, elapsed)
		}
	}
}

func TestBurn(t *testing.T) {
	Burn(0)
	Burn(-time.Microsecond) // must not hang or panic
	for _, d := range []time.Duration{10 * time.Microsecond, 200 * time.Microsecond} {
		start := time.Now()
		Burn(d)
		elapsed := time.Since(start)
		if elapsed < d {
			t.Errorf("Burn(%v) returned early after %v", d, elapsed)
		}
		if elapsed > d+20*time.Millisecond {
			t.Errorf("Burn(%v) overshot to %v", d, elapsed)
		}
	}
}
