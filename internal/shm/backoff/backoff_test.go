package backoff

import (
	"os"
	"testing"
	"time"
)

// strictTiming reports whether wall-clock upper-bound assertions are
// enabled. Lower bounds (a pause must not return early) always hold by
// construction, but overshoot ceilings depend on machine load: a
// preempted runner can stretch any sleep arbitrarily. CI and developer
// machines that want the tight assertions set COUNTNET_STRICT_TIMING=1.
func strictTiming() bool {
	return os.Getenv("COUNTNET_STRICT_TIMING") != ""
}

func TestBackoffEscalation(t *testing.T) {
	var b Backoff
	if b.Attempts() != 0 {
		t.Fatalf("zero value has %d attempts", b.Attempts())
	}
	// The whole ladder must terminate: spins, yields, then one sleep
	// quantum. Walk past every threshold and check the bookkeeping.
	for i := 1; i <= yieldAttempts+1; i++ {
		b.Wait()
		if b.Attempts() != i {
			t.Fatalf("after %d waits Attempts() = %d", i, b.Attempts())
		}
	}
	b.Reset()
	if b.Attempts() != 0 {
		t.Fatalf("Reset left %d attempts", b.Attempts())
	}
}

func TestBackoffSleepLevelActuallySleeps(t *testing.T) {
	var b Backoff
	for i := 0; i < yieldAttempts; i++ {
		b.Wait()
	}
	start := time.Now()
	b.Wait() // past the yield threshold: one sleep quantum
	if elapsed := time.Since(start); elapsed < sleepQuantum/2 {
		t.Errorf("sleep-level Wait returned after %v, quantum is %v", elapsed, sleepQuantum)
	}
}

func TestPause(t *testing.T) {
	for _, d := range []time.Duration{0, -time.Second} {
		start := time.Now()
		Pause(d)
		if elapsed := time.Since(start); strictTiming() && elapsed > time.Millisecond {
			t.Errorf("Pause(%v) took %v", d, elapsed)
		}
	}
	for _, d := range []time.Duration{5 * time.Microsecond, 100 * time.Microsecond, 2 * time.Millisecond} {
		start := time.Now()
		Pause(d)
		elapsed := time.Since(start)
		if elapsed < d {
			t.Errorf("Pause(%v) returned early after %v", d, elapsed)
		}
		// Generous ceiling: the point is that a 5µs pause does not park
		// for a scheduler-quantum-scale sleep, not exact landing. Gated —
		// an overloaded runner can stretch any pause past any ceiling.
		if strictTiming() && elapsed > d+20*time.Millisecond {
			t.Errorf("Pause(%v) overshot to %v", d, elapsed)
		}
	}
}

func TestBurn(t *testing.T) {
	Burn(0)
	Burn(-time.Microsecond) // must not hang or panic
	for _, d := range []time.Duration{10 * time.Microsecond, 200 * time.Microsecond} {
		start := time.Now()
		Burn(d)
		elapsed := time.Since(start)
		if elapsed < d {
			t.Errorf("Burn(%v) returned early after %v", d, elapsed)
		}
		if strictTiming() && elapsed > d+20*time.Millisecond {
			t.Errorf("Burn(%v) overshot to %v", d, elapsed)
		}
	}
}

// TestExp drives the capped exponential through every boundary: zero and
// negative inputs, cap saturation, base >= limit, and shifts that would
// overflow int64 (attempt 61..63 and beyond).
func TestExp(t *testing.T) {
	const maxDur = time.Duration(1<<63 - 1)
	cases := []struct {
		name        string
		base, limit time.Duration
		attempt     int
		want        time.Duration
	}{
		{"zero base", 0, time.Second, 3, 0},
		{"negative base", -time.Microsecond, time.Second, 3, 0},
		{"zero limit", time.Microsecond, 0, 3, 0},
		{"negative limit", time.Microsecond, -time.Second, 3, 0},
		{"zero attempts", 2 * time.Microsecond, 256 * time.Microsecond, 0, 2 * time.Microsecond},
		{"negative attempt clamps to zero", 2 * time.Microsecond, 256 * time.Microsecond, -5, 2 * time.Microsecond},
		{"doubling below cap", 2 * time.Microsecond, 256 * time.Microsecond, 3, 16 * time.Microsecond},
		{"last step under cap", 2 * time.Microsecond, 256 * time.Microsecond, 7, 256 * time.Microsecond},
		{"saturates at cap", 2 * time.Microsecond, 256 * time.Microsecond, 8, 256 * time.Microsecond},
		{"far past cap", 2 * time.Microsecond, 256 * time.Microsecond, 40, 256 * time.Microsecond},
		{"base equals limit", time.Millisecond, time.Millisecond, 0, time.Millisecond},
		{"base above limit", 2 * time.Millisecond, time.Millisecond, 0, time.Millisecond},
		{"shift overflow at 62", 1, maxDur, 62, 1 << 62},
		{"shift overflow at 63", 1, maxDur, 63, maxDur},
		{"shift overflow far past 63", 1, maxDur, 200, maxDur},
		{"wide base large shift", time.Hour, maxDur, 62, maxDur},
		{"max everything", maxDur, maxDur, 1<<31 - 1, maxDur},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Exp(tc.base, tc.limit, tc.attempt); got != tc.want {
				t.Errorf("Exp(%v, %v, %d) = %v, want %v", tc.base, tc.limit, tc.attempt, got, tc.want)
			}
		})
	}
	// Exhaustive non-negativity and monotone saturation over the whole
	// shift range: the retry loop must never receive a negative pause.
	prev := time.Duration(0)
	for attempt := 0; attempt <= 70; attempt++ {
		d := Exp(3*time.Microsecond, time.Second, attempt)
		if d < 0 {
			t.Fatalf("Exp negative at attempt %d: %v", attempt, d)
		}
		if d < prev {
			t.Fatalf("Exp not monotone at attempt %d: %v < %v", attempt, d, prev)
		}
		if d > time.Second {
			t.Fatalf("Exp above cap at attempt %d: %v", attempt, d)
		}
		prev = d
	}
}
