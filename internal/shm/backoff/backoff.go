// Package backoff provides the shared waiting primitives of the
// shared-memory runtime: an exponential spin-then-yield-then-sleep
// backoff for slots and locks that poll under contention, and a
// precision pause used by the stress driver to inject the paper's
// per-node W delays. Centralizing them keeps every busy-wait in the
// runtime on the same escalation policy, which matters on small
// machines where a spinning goroutine steals the quantum from the very
// goroutine it is waiting on.
package backoff

import (
	"runtime"
	"time"
)

// Escalation thresholds of Backoff.Wait: pure spins first (cheapest,
// keeps the cache line hot), cooperative yields next, brief sleeps once
// the wait is clearly not nanosecond-scale.
const (
	spinAttempts  = 8
	yieldAttempts = 64
	sleepQuantum  = 20 * time.Microsecond
)

// Backoff is an escalating waiter for polling loops: the first few
// Waits spin, the next batch yields the processor, and persistent
// waiting sleeps in short quanta so oversubscribed runs stop burning
// scheduler time. The zero value is ready to use; a Backoff is not safe
// for concurrent use.
type Backoff struct {
	attempts int
}

// Wait blocks for the current escalation level and advances it.
func (b *Backoff) Wait() {
	b.attempts++
	switch {
	case b.attempts <= spinAttempts:
		spin(4 << b.attempts)
	case b.attempts <= yieldAttempts:
		//countnet:allow hotvet -- the yield tier of the escalation ladder; handing back the quantum is this primitive's purpose
		runtime.Gosched()
	default:
		//countnet:allow hotvet -- the sleep tier of the escalation ladder; a persistent waiter must stop burning scheduler time
		time.Sleep(sleepQuantum)
	}
}

// Attempts returns how many times Wait has been called since the last
// Reset.
func (b *Backoff) Attempts() int { return b.attempts }

// Reset returns the backoff to the spinning level, for reuse across
// independent waiting episodes.
func (b *Backoff) Reset() { b.attempts = 0 }

// spin busies the CPU for roughly n loop iterations without entering
// the scheduler.
//
//go:noinline
func spin(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}

// Pause delays the calling goroutine for d. The stress driver uses it
// to model the paper's W — local work a simulated processor performs
// between balancer accesses — so sub-millisecond pauses burn the delay
// cooperatively (one clock check per escalating Wait) rather than
// parking on a timer: a processor doing work holds its share of the
// machine, it does not hand it back. The spin levels keep
// sub-microsecond resolution on an idle machine, and the yield levels
// stop a pausing worker from monopolizing its quantum with clock polls
// on an oversubscribed one. Millisecond-scale pauses just sleep.
func Pause(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= time.Millisecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	var b Backoff
	for {
		rem := time.Until(deadline)
		if rem <= 0 {
			return
		}
		if rem > spinHorizon {
			// Far from the deadline no spin ladder can land it: hand
			// the quantum to whoever has real work. On an idle machine
			// Gosched returns immediately and this loop busy-polls at
			// clock-read granularity, which is exactly the simulated
			// work the pause stands in for.
			runtime.Gosched()
			b.Reset()
			continue
		}
		b.Wait()
	}
}

// spinHorizon is how close to its deadline Pause switches from yielding
// to the spin ladder for sub-microsecond landing precision.
const spinHorizon = 2 * time.Microsecond

// Exp returns the capped exponential retry delay for the given attempt:
// base<<attempt, saturating at limit. The msgnet fault-recovery path uses
// it as the per-hop retransmission timeout (Pause(Exp(base, limit, n))
// between re-sends). Saturation is exact: a shift that would overflow —
// or merely exceed the cap — returns limit, never a negative or wrapped
// duration, and non-positive inputs return 0 so a disabled retry policy
// costs nothing.
func Exp(base, limit time.Duration, attempt int) time.Duration {
	if base <= 0 || limit <= 0 {
		return 0
	}
	if base >= limit {
		return limit
	}
	if attempt < 0 {
		attempt = 0
	}
	// Saturate without ever computing an overflowing shift: base<<attempt
	// exceeds limit exactly when base exceeds limit>>attempt (both sides
	// truncate the same low bits).
	if attempt >= 63 || base > limit>>uint(attempt) {
		return limit
	}
	return base << uint(attempt)
}

// Burn occupies the calling goroutine's processor for d without
// yielding it: the stand-in for per-node costs that hold the hardware —
// cache-coherence stalls, spinning in a lock queue — as opposed to
// Pause, which models delays a descheduled process doesn't charge to
// anyone else. The clock is checked every few iterations so the
// overshoot stays well under a microsecond.
func Burn(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		spin(32)
	}
}
