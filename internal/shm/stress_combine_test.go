package shm

import (
	"fmt"
	"testing"
	"time"

	"countnet/internal/bitonic"
	"countnet/internal/lincheck"
	"countnet/internal/topo"
)

// width1Graph builds the degenerate width-1 network — one pass-through
// balancer feeding one counter — which the bitonic constructor rejects
// but the combining funnel must still serve correctly: with a single
// counter every combined walk hands out a contiguous block.
func width1Graph(t *testing.T) *topo.Graph {
	t.Helper()
	b := topo.NewBuilder()
	ins := b.Inputs(1)
	out := b.Balancer11(ins[0])
	b.Terminate([]topo.Out{out})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkPermutation asserts the run handed out exactly the values
// 0..ops-1 — the quiescent no-duplicates/no-gaps contract that must
// hold whether or not tokens combined. On failure it pulls the first
// linearizability witness from the op history for a concrete schedule
// to stare at.
func checkPermutation(t *testing.T, ops []lincheck.Op, n int) {
	t.Helper()
	seen := make([]bool, n)
	for _, op := range ops {
		if op.Value < 0 || op.Value >= int64(n) || seen[op.Value] {
			if w, ok := lincheck.FirstWitness(ops); ok {
				t.Logf("first inversion witness: %s", w)
			}
			t.Fatalf("value %d duplicated or out of range [0,%d)", op.Value, n)
		}
		seen[op.Value] = true
	}
}

// TestStressCombineMatrix runs the combining funnel over the full
// width × processor-count grid the issue calls for and checks that no
// cell duplicates or skips a counter value. Linearizability violations
// are allowed — with injected delays they are the paper's expected
// behaviour, combined or not — but the permutation must be exact, and
// the funnel's disposition counters must account for every token.
func TestStressCombineMatrix(t *testing.T) {
	for _, width := range []int{1, 2, 4, 8} {
		for _, procs := range []int{4, 32, 256} {
			t.Run(fmt.Sprintf("w%d/p%d", width, procs), func(t *testing.T) {
				var g *topo.Graph
				var err error
				if width == 1 {
					g = width1Graph(t)
				} else if g, err = bitonic.New(width); err != nil {
					t.Fatal(err)
				}
				n := compile(t, g, Options{Kind: KindMCS})
				ops := 4 * procs
				if ops < 256 {
					ops = 256
				}
				res, err := Stress(StressConfig{
					Net: n, Workers: procs, Ops: ops, Seed: int64(width*1000 + procs),
					DelayedFrac: 0.25, Delay: 20 * time.Microsecond,
					Combine: true, CombineWindow: 100 * time.Microsecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				checkPermutation(t, res.Ops, ops)
				s := res.Combine
				if s == nil {
					t.Fatal("combined run reported no funnel stats")
				}
				if s.Tokens != int64(ops) {
					t.Fatalf("funnel saw %d tokens, ran %d ops", s.Tokens, ops)
				}
				if got := s.Idle + s.Pairs + s.Partners + s.Timeouts + s.Solo; got != s.Tokens {
					t.Errorf("disposition partition broken: %+v", *s)
				}
			})
		}
	}
}

// TestStressCombineGapProperty is the adversarial property run: every
// worker delayed, with the delay burned as busy work (the regime where
// combining actually pays), at a window long enough that essentially
// every token pairs. Even at hit rates near 1.0 the values must form an
// exact permutation.
func TestStressCombineGapProperty(t *testing.T) {
	g, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	n := compile(t, g, Options{Kind: KindMCS})
	const ops = 4096
	res, err := Stress(StressConfig{
		Net: n, Workers: 128, Ops: ops, Seed: 7,
		DelayedFrac: 1, Delay: 20 * time.Microsecond, BurnDelay: true,
		Combine: true, CombineWidth: 32, CombineWindow: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, res.Ops, ops)
	if res.Report.Total != ops {
		t.Fatalf("analyzed %d ops, ran %d", res.Report.Total, ops)
	}
	if r := res.Combine.HitRate(); r < 0 || r > 1 {
		t.Fatalf("hit rate %f outside [0,1]", r)
	}
}

// TestStressCombineQuiescentLinearizable checks that with no injected
// delays and a single worker the combined engine is fully linearizable:
// the funnel's idle fast path degenerates to plain traversal, so the
// sequential guarantees survive.
func TestStressCombineQuiescentLinearizable(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	n := compile(t, g, Options{Kind: KindMCS})
	res, err := Stress(StressConfig{Net: n, Workers: 1, Ops: 500, Seed: 3, Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, res.Ops, 500)
	if !res.Report.Linearizable() {
		t.Fatalf("sequential combined run not linearizable: %s", res.Report)
	}
	if s := res.Combine; s.Idle != s.Tokens {
		t.Errorf("single worker should always take the idle path: %+v", *s)
	}
}
