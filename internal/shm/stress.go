package shm

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"countnet/internal/core"
	"countnet/internal/lincheck"
	"countnet/internal/obs"
	"countnet/internal/shm/backoff"
	"countnet/internal/shm/combine"
	"countnet/internal/topo"
)

// StressConfig drives a real-goroutine run of the Section 5 benchmark: a
// pool of workers traverses the network until Ops operations complete; a
// fraction of the workers pauses Delay after every node, and every
// operation is timestamped for linearizability analysis.
type StressConfig struct {
	Net     *Network
	Workers int
	Ops     int
	// DelayedFrac is the fraction of workers that pause Delay after each
	// node (the paper's F).
	DelayedFrac float64
	// Delay is the paper's W, as wall-clock time.
	Delay time.Duration
	// RandomDelay makes every worker pause uniform [0, Delay] instead.
	RandomDelay bool
	// BurnDelay burns each delay as busy work that occupies the
	// simulated processor — the model for per-node costs that hold the
	// hardware, like cache-coherence stalls or spinning in a lock queue
	// — instead of the default cooperative pause, which models delays a
	// descheduled process doesn't charge to anyone else. Combining
	// amortizes burned delays across a combined walk exactly as it
	// amortizes real contention.
	BurnDelay bool
	// Seed drives random delays and worker input choice.
	Seed int64
	// Combine enables the elimination/combining funnel in front of the
	// network: concurrent workers rendezvous in an exchanger array and a
	// paired pair sends one representative through the balancers with
	// demand 2, halving concurrent traversals under contention while
	// preserving exact counting (see internal/shm/combine).
	Combine bool
	// CombineWidth is the funnel's exchanger slot count (default
	// combine.DefaultWidth).
	CombineWidth int
	// CombineWindow is how long a token camps for a partner before
	// traversing alone (default combine.DefaultWindow).
	CombineWindow time.Duration
	// Front, when non-nil, is a pluggable counting front-end the workers
	// route every operation through instead of traversing Net directly
	// (the contention-adaptive engine in internal/shm/adaptive is one).
	// Net stays required: it is the front-end's backend and still
	// supplies input width and observability. Mutually exclusive with
	// Combine, which is a specific front-end wired inline.
	Front Front
	// Tracer, when non-nil, receives per-token enter/balancer/counter/exit
	// events on the run's monotonic timeline.
	Tracer obs.Tracer
	// Metrics, when non-nil, receives the live shm metric family (toggle
	// wait histogram, (Tog+W)/Tog ratio, per-balancer depth gauges, prism
	// CAS retries).
	Metrics *obs.Registry
}

// Front is a pluggable counting front-end for the stress driver: Next
// draws one value for the token (proc, tok) entering at the given input
// wire, invoking afterNode per visited node exactly like TraverseHook,
// and the values handed out across a run must form the same gapless
// sequence a direct traversal would produce. Defined here — not in the
// front-end's own package — so shm never imports its front-ends.
type Front interface {
	Next(input int, proc, tok int32, afterNode func(id topo.NodeID)) int64
}

// EffWait returns the effective injected per-node delay in nanoseconds —
// the W of the (Tog+W)/Tog measure — mirroring the simulator's convention:
// the configured Delay, halved under RandomDelay (uniform mean), zero when
// no worker is delayed.
func (cfg StressConfig) EffWait() float64 {
	switch {
	case cfg.Delay <= 0:
		return 0
	case cfg.RandomDelay:
		return float64(cfg.Delay) / 2
	case cfg.DelayedFrac == 0:
		return 0
	default:
		return float64(cfg.Delay)
	}
}

// StressResult reports a stress run.
type StressResult struct {
	Ops        []lincheck.Op
	Report     lincheck.Report
	Elapsed    time.Duration
	Throughput float64 // operations per second
	// Tog is the measured average toggle wait in nanoseconds and AvgRatio
	// the paper's (Tog+W)/Tog; both zero unless Metrics was set.
	Tog      float64
	AvgRatio float64
	// Combine is the funnel's counter snapshot, nil unless the run was
	// configured with Combine.
	Combine *combine.Stats
}

// Stress runs the benchmark. Operation timestamps come from the monotonic
// clock, so "completely precedes" has its real-time meaning.
func Stress(cfg StressConfig) (*StressResult, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("shm: nil network")
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("shm: %d workers", cfg.Workers)
	}
	if cfg.Ops < 1 {
		return nil, fmt.Errorf("shm: %d ops", cfg.Ops)
	}
	if cfg.DelayedFrac < 0 || cfg.DelayedFrac > 1 {
		return nil, fmt.Errorf("shm: delayed fraction %f", cfg.DelayedFrac)
	}
	if cfg.Delay < 0 {
		return nil, fmt.Errorf("shm: negative delay")
	}
	if cfg.Front != nil && cfg.Combine {
		return nil, fmt.Errorf("shm: Front and Combine are mutually exclusive")
	}
	rec := lincheck.NewRecorder(cfg.Ops)
	var remaining atomic.Int64
	remaining.Store(int64(cfg.Ops))
	base := time.Now()
	clock := func() int64 { return int64(time.Since(base)) }
	observed := cfg.Tracer != nil || cfg.Metrics != nil
	if observed {
		cfg.Net.EnableObs(cfg.Tracer, cfg.Metrics, clock, cfg.EffWait())
	}
	spanClock := cfg.Net.SpanClock() // non-nil exactly when tracing is on
	var funnel *combine.Funnel
	if cfg.Combine {
		funnel = combine.New(combine.Options{
			Width:   cfg.CombineWidth,
			Window:  cfg.CombineWindow,
			Metrics: cfg.Metrics,
		})
	}
	nd := int(cfg.DelayedFrac * float64(cfg.Workers))
	var wg sync.WaitGroup
	for wkr := 0; wkr < cfg.Workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(wkr)*0x9e3779b9))
			input := wkr % cfg.Net.InWidth()
			delayed := wkr < nd
			wait := pause
			if cfg.BurnDelay {
				wait = backoff.Burn
			}
			var hook func(topo.NodeID)
			switch {
			case cfg.RandomDelay && cfg.Delay > 0:
				hook = func(topo.NodeID) { wait(time.Duration(rng.Int63n(int64(cfg.Delay) + 1))) }
			case delayed && cfg.Delay > 0:
				hook = func(topo.NodeID) { wait(cfg.Delay) }
			}
			var tok int32
			trav := func(demand int) []int64 {
				return cfg.Net.TraverseBatch(input, demand, int32(wkr), tok, hook)
			}
			for {
				rem := remaining.Add(-1)
				if rem < 0 {
					return
				}
				tok = int32(int64(cfg.Ops) - 1 - rem)
				start := clock()
				var parent uint64
				if observed && cfg.Tracer != nil {
					if spanClock != nil {
						parent = spanClock.Tick()
					}
					cfg.Tracer.Record(obs.Event{T: start, Kind: obs.KindEnter,
						P: int32(wkr), Tok: tok, Node: -1, Value: -1, Span: parent})
				}
				var v int64
				// last is the exit event's causal parent: the counter hop
				// when this worker traversed itself, the enter event when a
				// funnel combiner traversed on its behalf.
				last := parent
				switch {
				case cfg.Front != nil:
					v = cfg.Front.Next(input, int32(wkr), tok, hook)
				case funnel != nil:
					v = funnel.Do(1, trav)[0]
				case observed:
					v, last = cfg.Net.TraverseSpan(input, int32(wkr), tok, parent, hook)
				default:
					v = cfg.Net.TraverseHook(input, hook)
				}
				end := clock()
				if observed && cfg.Tracer != nil {
					ev := obs.Event{T: end, Dur: end - start, Kind: obs.KindExit,
						P: int32(wkr), Tok: tok, Node: -1, Value: v}
					if spanClock != nil {
						ev.Span = spanClock.Tick()
						ev.Parent = last
					}
					cfg.Tracer.Record(ev)
				}
				rec.Record(start, end, v)
			}
		}(wkr)
	}
	wg.Wait()
	elapsed := time.Since(base)
	res := &StressResult{
		Ops:     rec.Ops(),
		Report:  rec.Analyze(),
		Elapsed: elapsed,
	}
	if elapsed > 0 {
		res.Throughput = float64(len(res.Ops)) / elapsed.Seconds()
	}
	if r := cfg.Net.Ratio(); r != nil {
		res.Tog = r.Tog()
		res.AvgRatio = core.AvgRatio(res.Tog, cfg.EffWait())
	}
	if funnel != nil {
		st := funnel.Stats()
		res.Combine = &st
	}
	return res, nil
}

// pause delays the calling goroutine for d: short pauses poll (keeping
// microsecond precision), long ones sleep. The escalation policy is the
// shared backoff helper's, the same one combine slots use.
func pause(d time.Duration) { backoff.Pause(d) }
