package shm

import (
	"sync/atomic"

	"countnet/internal/shm/backoff"
)

// Filter makes a counting network linearizable by waiting, in the spirit of
// the Herlihy-Shavit-Waarts linearizable counting constructions the paper
// contrasts against: a token that received value v from the network holds
// its response until every smaller value has been returned, so responses
// leave in exactly the order 0, 1, 2, ... and the real-time order of
// non-overlapping operations always matches the values.
//
// The guarantee costs what the paper says guaranteed linearizability must
// cost: the waiting serializes responses, so throughput degrades toward a
// sequential bottleneck as concurrency and timing anomalies grow — the
// quantitative version of "low contention linearizable counting needs
// linear depth". See BenchmarkLinearizableFilter. The contention-adaptive
// engine (internal/shm/adaptive) folds the same construction in as its
// switchable ModeLinear regime.
type Filter struct {
	net  *Network
	turn atomic.Int64
}

// NewFilter wraps net with the waiting filter.
func NewFilter(net *Network) *Filter {
	return &Filter{net: net}
}

// Traverse draws a value and holds it until all smaller values have been
// returned.
func (f *Filter) Traverse(input int) int64 {
	return f.release(f.net.Traverse(input))
}

// release holds value v until every smaller value has been returned, then
// returns it and opens the gate for v+1. The wait runs the shared backoff
// ladder — spin, then yield, then sleep — so a long-blocked token stops
// burning its core (on a single-CPU host a raw spin would steal the
// quantum from the very token it is waiting on).
func (f *Filter) release(v int64) int64 {
	if f.turn.Load() != v {
		var bo backoff.Backoff
		for f.turn.Load() != v {
			bo.Wait()
		}
	}
	f.turn.Store(v + 1)
	return v
}

// Returned reports how many values have been handed out so far.
func (f *Filter) Returned() int64 { return f.turn.Load() }
