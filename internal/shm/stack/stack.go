// Package stack implements an elimination-backoff stack in the spirit of
// Shavit and Touitou's elimination trees (reference [20] of the paper — the
// same collision idea the diffracting prisms use): a lock-free Treiber
// stack whose contended operations meet in an elimination array where a
// concurrent push/pop pair cancels out without touching the stack top at
// all.
package stack

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// offer states.
const (
	offerWaiting int32 = iota
	offerClaimed       // a partner is writing the exchanged value
	offerMatched
	offerWithdrawn
)

// offer is one operation camped in the elimination array.
type offer[T any] struct {
	isPush bool
	v      T // pushed value (valid for push offers)
	match  T // value delivered to a pop offer
	state  atomic.Int32
}

// node is one Treiber-stack cell.
type node[T any] struct {
	v    T
	next *node[T]
}

// Stack is a concurrent LIFO with elimination backoff. The zero value is
// not usable; call New.
type Stack[T any] struct {
	top    atomic.Pointer[node[T]]
	slots  []atomic.Pointer[offer[T]]
	window time.Duration
	rngs   sync.Pool
	seed   atomic.Int64

	pushes     atomic.Int64
	pops       atomic.Int64
	eliminated atomic.Int64
}

// New returns a stack with an elimination array of `width` slots and the
// given collision window (how long a contended operation camps waiting for
// a partner). width < 1 is clamped to 1; window <= 0 disables camping
// (operations only match offers already present).
func New[T any](width int, window time.Duration) *Stack[T] {
	if width < 1 {
		width = 1
	}
	s := &Stack[T]{
		slots:  make([]atomic.Pointer[offer[T]], width),
		window: window,
	}
	s.rngs.New = func() any {
		return rand.New(rand.NewSource(s.seed.Add(1) * 0x9e3779b9))
	}
	return s
}

// Push adds v to the stack.
func (s *Stack[T]) Push(v T) {
	s.pushes.Add(1)
	n := &node[T]{v: v}
	for {
		// Cheap peek: complete a camped pop without touching the top.
		if s.matchOnly(&offer[T]{isPush: true, v: v}) {
			return
		}
		top := s.top.Load()
		n.next = top
		if s.top.CompareAndSwap(top, n) {
			return
		}
		if s.campAndWait(&offer[T]{isPush: true, v: v}) {
			return
		}
	}
}

// Pop removes and returns the most recently pushed value; ok is false when
// the stack is empty and no concurrent push eliminated with us.
func (s *Stack[T]) Pop() (v T, ok bool) {
	s.pops.Add(1)
	for {
		// Cheap peek: complete against a camped push without touching the
		// top.
		if o := (&offer[T]{isPush: false}); s.matchOnly(o) {
			return o.match, true
		}
		top := s.top.Load()
		if top == nil {
			o := &offer[T]{isPush: false}
			if s.campAndWait(o) {
				return o.match, true
			}
			return v, false
		}
		if s.top.CompareAndSwap(top, top.next) {
			return top.v, true
		}
		o := &offer[T]{isPush: false}
		if s.campAndWait(o) {
			return o.match, true
		}
	}
}

// Eliminated returns how many operations completed by pairwise elimination.
func (s *Stack[T]) Eliminated() int64 { return s.eliminated.Load() }

// Len walks the stack; it is only meaningful in quiescent states.
func (s *Stack[T]) Len() int {
	n := 0
	for p := s.top.Load(); p != nil; p = p.next {
		n++
	}
	return n
}

// matchOnly attempts to complete `mine` against an already-camped
// complementary offer, without camping itself.
func (s *Stack[T]) matchOnly(mine *offer[T]) bool {
	slot := s.pickSlot()
	if other := slot.Load(); other != nil &&
		other.isPush != mine.isPush && slot.CompareAndSwap(other, nil) {
		return s.tryMatch(other, mine)
	}
	return false
}

// campAndWait parks `mine` in an empty slot for the collision window; it
// reports whether a partner completed the operation.
func (s *Stack[T]) campAndWait(mine *offer[T]) bool {
	if s.matchOnly(mine) {
		return true
	}
	if s.window <= 0 {
		return false
	}
	slot := s.pickSlot()
	if !slot.CompareAndSwap(nil, mine) {
		return false
	}
	deadline := time.Now().Add(s.window)
	for spins := 0; ; spins++ {
		switch mine.state.Load() {
		case offerMatched:
			slot.CompareAndSwap(mine, nil)
			s.eliminated.Add(1)
			return true
		case offerClaimed:
			// Partner committed; wait for the handoff to finish.
		default:
			if time.Now().After(deadline) {
				if mine.state.CompareAndSwap(offerWaiting, offerWithdrawn) {
					slot.CompareAndSwap(mine, nil)
					return false
				}
				continue // lost the race: a partner is completing us
			}
		}
		if spins%32 == 31 {
			runtime.Gosched()
		}
	}
}

// pickSlot returns a random elimination slot.
func (s *Stack[T]) pickSlot() *atomic.Pointer[offer[T]] {
	rng, _ := s.rngs.Get().(*rand.Rand)
	slot := &s.slots[rng.Intn(len(s.slots))]
	s.rngs.Put(rng)
	return slot
}

// tryMatch completes a camped offer `other` with `mine` (of the opposite
// kind); it reports whether the exchange happened.
func (s *Stack[T]) tryMatch(other, mine *offer[T]) bool {
	if !other.state.CompareAndSwap(offerWaiting, offerClaimed) {
		return false // withdrawn or already taken
	}
	if mine.isPush {
		// I push, the camped offer pops: hand it my value.
		other.match = mine.v
	} else {
		// I pop, the camped offer pushes: take its value.
		mine.match = other.v
	}
	other.state.Store(offerMatched)
	s.eliminated.Add(1)
	return true
}
