package stack

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSequentialLIFO(t *testing.T) {
	s := New[int](4, time.Microsecond)
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop on empty returned a value")
	}
	for i := 0; i < 10; i++ {
		s.Push(i)
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 9; i >= 0; i-- {
		v, ok := s.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v, want %d", v, ok, i)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop after drain returned a value")
	}
}

func TestWidthClampAndZeroWindow(t *testing.T) {
	s := New[string](0, 0)
	s.Push("x")
	if v, ok := s.Pop(); !ok || v != "x" {
		t.Fatalf("Pop = %q,%v", v, ok)
	}
}

// TestConcurrentExactlyOnce pushes a known multiset from several goroutines
// while others pop, and verifies nothing is lost or duplicated.
func TestConcurrentExactlyOnce(t *testing.T) {
	s := New[int](8, 50*time.Microsecond)
	const pushers = 8
	const perPusher = 3000
	total := pushers * perPusher
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPusher; i++ {
				s.Push(p*perPusher + i)
			}
		}(p)
	}
	var popped atomic.Int64
	seen := make([]atomic.Bool, total)
	for c := 0; c < pushers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for popped.Load() < int64(total) {
				v, ok := s.Pop()
				if !ok {
					continue
				}
				if v < 0 || v >= total || seen[v].Swap(true) {
					t.Errorf("lost or duplicated %d", v)
					return
				}
				popped.Add(1)
			}
		}()
	}
	wg.Wait()
	if popped.Load() != int64(total) {
		t.Fatalf("popped %d of %d", popped.Load(), total)
	}
	if s.Len() != 0 {
		t.Fatalf("stack not empty: %d", s.Len())
	}
}

// TestEliminationHappens forces collisions through a single slot.
func TestEliminationHappens(t *testing.T) {
	s := New[int](1, 200*time.Microsecond)
	var wg sync.WaitGroup
	stop := time.Now().Add(100 * time.Millisecond)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for time.Now().Before(stop) {
				if g%2 == 0 {
					s.Push(g)
				} else {
					s.Pop()
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Eliminated() == 0 {
		t.Error("no eliminations under sustained push/pop contention")
	}
}

// TestPopEliminatesOnEmpty checks a pop on an empty stack can succeed by
// meeting a camped push.
func TestPopEliminatesOnEmpty(t *testing.T) {
	s := New[int](1, 300*time.Millisecond)
	got := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		// Camp a push in the elimination slot by colliding on an empty
		// stack is not directly forceable; instead keep pushing/popping
		// pairs until one pop reports an elimination.
		for i := 0; i < 100000; i++ {
			s.Push(i)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100000; i++ {
			if v, ok := s.Pop(); ok {
				select {
				case got <- v:
				default:
				}
			}
		}
	}()
	wg.Wait()
	select {
	case <-got:
	default:
		t.Error("no pops succeeded at all")
	}
}

func BenchmarkStackPushPop(b *testing.B) {
	for _, width := range []int{1, 8} {
		s := New[int](width, 5*time.Microsecond)
		b.Run(map[int]string{1: "slots=1", 8: "slots=8"}[width], func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					s.Push(1)
					s.Pop()
				}
			})
		})
	}
}

func BenchmarkMutexStackPushPop(b *testing.B) {
	var mu sync.Mutex
	var st []int
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			st = append(st, 1)
			mu.Unlock()
			mu.Lock()
			if len(st) > 0 {
				st = st[:len(st)-1]
			}
			mu.Unlock()
		}
	})
}
