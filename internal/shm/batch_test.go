package shm

import (
	"sort"
	"sync"
	"testing"

	"countnet/internal/bitonic"
	"countnet/internal/topo"
)

// TestBatchBalancerMatchesSequential checks, per toggle kind, that one
// TraverseBatch critical section routes exactly like the same number of
// back-to-back Traverse calls — including when the batch starts from a
// mid-cycle toggle position.
func TestBatchBalancerMatchesSequential(t *testing.T) {
	const fanOut, warmup, demand = 3, 2, 10
	for _, kind := range []Kind{KindAtomic, KindMutex, KindMCS} {
		t.Run(kind.String(), func(t *testing.T) {
			batched, err := NewBalancer(kind, fanOut)
			if err != nil {
				t.Fatal(err)
			}
			sequential, err := NewBalancer(kind, fanOut)
			if err != nil {
				t.Fatal(err)
			}
			bb, ok := batched.(BatchBalancer)
			if !ok {
				t.Fatalf("%s balancer does not support batching", kind)
			}
			// Skew the toggle off its initial position first.
			for i := 0; i < warmup; i++ {
				batched.Traverse()
				sequential.Traverse()
			}
			got := make([]int, fanOut)
			bb.TraverseBatch(demand, got)
			want := make([]int, fanOut)
			for i := 0; i < demand; i++ {
				want[sequential.Traverse()]++
			}
			for p := range want {
				if got[p] != want[p] {
					t.Fatalf("output %d: batch routed %d, sequential %d (full: %v vs %v)",
						p, got[p], want[p], got, want)
				}
			}
		})
	}
}

// TestTraverseBatchMatchesSequential runs the same demand through two
// identical networks — one batched walk vs. back-to-back single tokens —
// and checks both hand out exactly the values 0..demand-1.
func TestTraverseBatchMatchesSequential(t *testing.T) {
	const demand = 37
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	batched := compile(t, g, Options{Kind: KindMCS})
	sequential := compile(t, g, Options{Kind: KindMCS})

	got := batched.TraverseBatch(0, demand, 0, 0, nil)
	if len(got) != demand {
		t.Fatalf("batch returned %d values for demand %d", len(got), demand)
	}
	want := make([]int64, demand)
	for i := range want {
		want[i] = sequential.Traverse(0)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted values diverge at %d: batch %d, sequential %d", i, got[i], want[i])
		}
	}
}

func TestTraverseBatchZeroDemand(t *testing.T) {
	g, err := bitonic.New(2)
	if err != nil {
		t.Fatal(err)
	}
	n := compile(t, g, Options{})
	if got := n.TraverseBatch(0, 0, 0, 0, nil); got != nil {
		t.Fatalf("demand 0 returned %v", got)
	}
	if got := n.TraverseBatch(0, -3, 0, 0, nil); got != nil {
		t.Fatalf("negative demand returned %v", got)
	}
}

// TestTraverseBatchVisitsEachNodeOnce checks the afterNode contract for
// a single token: the hook fires once per node on the path — the
// network's depth in balancers plus the final counter.
func TestTraverseBatchVisitsEachNodeOnce(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	n := compile(t, g, Options{Kind: KindMCS})
	visits := map[topo.NodeID]int{}
	n.TraverseBatch(0, 1, 0, 0, func(id topo.NodeID) { visits[id]++ })
	if len(visits) != g.Depth()+1 {
		t.Fatalf("visited %d nodes, want depth %d balancers + 1 counter", len(visits), g.Depth())
	}
	for id, c := range visits {
		if c != 1 {
			t.Fatalf("node %d visited %d times by a single token", id, c)
		}
	}
}

// TestTraverseBatchConcurrentWithSingles interleaves batched walks with
// plain traversals on one shared network; the union of everything
// handed out must still be a gapless permutation.
func TestTraverseBatchConcurrentWithSingles(t *testing.T) {
	g, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	n := compile(t, g, Options{Kind: KindMCS})
	const goroutines, rounds, batch = 8, 30, 5
	results := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := w % g.InWidth()
			for r := 0; r < rounds; r++ {
				if w%2 == 0 {
					results[w] = append(results[w], n.TraverseBatch(in, batch, int32(w), 0, nil)...)
				} else {
					for i := 0; i < batch; i++ {
						results[w] = append(results[w], n.Traverse(in))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	total := goroutines * rounds * batch
	seen := make([]bool, total)
	for _, vs := range results {
		for _, v := range vs {
			if v < 0 || v >= int64(total) || seen[v] {
				t.Fatalf("value %d duplicated or out of range [0,%d)", v, total)
			}
			seen[v] = true
		}
	}
}
