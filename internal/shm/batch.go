package shm

import (
	"countnet/internal/obs"
	"countnet/internal/topo"
)

// BatchBalancer is a Balancer that can route several tokens in one
// critical section: TraverseBatch advances the toggle demand times,
// adding one to counts[p] for every token routed to output p. counts
// must have at least fanOut entries and is not cleared. The routing is
// exactly the routing of demand back-to-back Traverse calls, so batch
// traversal preserves the step property verbatim.
type BatchBalancer interface {
	Balancer
	TraverseBatch(demand int, counts []int)
}

func (b *atomicBalancer) TraverseBatch(demand int, counts []int) {
	base := b.c.Add(int64(demand)) - int64(demand)
	for i := int64(0); i < int64(demand); i++ {
		counts[(base+i)%b.fanOut]++
	}
}

func (b *mutexBalancer) TraverseBatch(demand int, counts []int) {
	//countnet:allow hotvet -- KindMutex is the deliberately blocking textbook toggle, kept as the measurement baseline
	b.mu.Lock()
	for i := 0; i < demand; i++ {
		counts[b.toggle]++
		b.toggle = (b.toggle + 1) % b.fanOut
	}
	b.mu.Unlock()
}

func (b *mcsBalancer) TraverseBatch(demand int, counts []int) {
	n := b.pool.Get()
	b.lock.Acquire(n)
	for i := 0; i < demand; i++ {
		counts[b.toggle]++
		b.toggle = (b.toggle + 1) % b.fanOut
	}
	b.lock.Release(n)
	b.pool.Put(n)
}

// batchRoute routes demand tokens through b into counts: one critical
// section for batch-capable balancers, sequential Traverse calls
// otherwise (diffracting balancers, whose prism pairing is per-token).
func batchRoute(b Balancer, demand int, counts []int) {
	if bb, ok := b.(BatchBalancer); ok {
		bb.TraverseBatch(demand, counts)
		return
	}
	for i := 0; i < demand; i++ {
		counts[b.Traverse()]++
	}
}

// batchFrame is one group of tokens travelling together on a wire.
type batchFrame struct {
	p      topo.PortRef
	demand int
}

// TraverseBatch routes demand tokens from the given input as one
// combined trip and returns their counter values (in exit order, not
// sorted). The walk is operationally identical to demand sequential
// tokens: every balancer on the way advances its toggle once per token
// (in a single critical section where the balancer supports it), the
// group splits exactly where the toggles route it, and every counter
// fetch-and-adds once per arriving token — so quiescent counting and
// the step property are preserved for any interleaving with concurrent
// traffic. afterNode is invoked once per visited node, as in
// TraverseHook; proc and tok identify the representative in trace
// events when observability is enabled (they are ignored otherwise).
//
//countnet:hotpath
func (n *Network) TraverseBatch(input, demand int, proc, tok int32, afterNode func(id topo.NodeID)) []int64 {
	if demand < 1 {
		return nil
	}
	if demand == 1 {
		// A one-token batch is a plain traversal; the tight single-token
		// walk skips the worklist and tally machinery, which keeps the
		// combining funnel's idle fast path within a few percent of the
		// uncombined engine.
		return []int64{n.TraverseObs(input, proc, tok, afterNode)}
	}
	o := n.obs
	out := make([]int64, 0, demand)
	var counts [8]int
	// The group only ever splits at balancers, so the worklist is at
	// most demand entries deep.
	stack := make([]batchFrame, 1, 4)
	stack[0] = batchFrame{n.g.Input(input), demand}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		id := f.p.Node
		if b := n.balancers[id]; b != nil {
			fo := n.g.FanOut(id)
			cs := counts[:]
			if fo > len(cs) {
				cs = make([]int, fo)
			}
			for p := 0; p < fo; p++ {
				cs[p] = 0
			}
			var t0 int64
			if o != nil {
				t0 = o.clock()
				if o.depth != nil {
					o.depth[id].Add(1)
				}
			}
			batchRoute(b, f.demand, cs)
			if o != nil {
				t1 := o.clock()
				if o.depth != nil {
					o.depth[id].Add(-1)
				}
				if o.tog != nil {
					o.tog.Observe(t1 - t0)
					o.ratio.Observe(t1 - t0)
				}
				if o.tr != nil {
					o.tr.Record(obs.Event{T: t1, Dur: t1 - t0, Kind: obs.KindBalancer,
						P: proc, Tok: tok, Node: int32(id), Value: -1})
				}
			}
			if afterNode != nil {
				afterNode(id)
			}
			for p := fo - 1; p >= 0; p-- {
				if cs[p] > 0 {
					stack = append(stack, batchFrame{n.g.OutDest(id, p), cs[p]})
				}
			}
			continue
		}
		idx := n.g.CounterIndex(id)
		var t0 int64
		if o != nil {
			t0 = o.clock()
		}
		a := n.counters[idx].v.Add(int64(f.demand)) - int64(f.demand)
		for i := int64(0); i < int64(f.demand); i++ {
			out = append(out, int64(idx)+n.w*(a+i))
		}
		if o != nil {
			t1 := o.clock()
			if o.fai != nil {
				o.fai.Add(int64(f.demand))
			}
			if o.tr != nil {
				o.tr.Record(obs.Event{T: t1, Dur: t1 - t0, Kind: obs.KindCounter,
					P: proc, Tok: tok, Node: int32(id), Value: out[len(out)-f.demand]})
			}
		}
		if afterNode != nil {
			afterNode(id)
		}
	}
	return out
}

// Interface compliance: every toggle kind supports batched routing.
var (
	_ BatchBalancer = (*atomicBalancer)(nil)
	_ BatchBalancer = (*mutexBalancer)(nil)
	_ BatchBalancer = (*mcsBalancer)(nil)
)
