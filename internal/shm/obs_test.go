package shm

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"countnet/internal/bitonic"
	"countnet/internal/obs"
)

// TestStressTraced runs the goroutine stress driver with tracing and
// metrics on and checks the trace is a faithful record: one enter and one
// exit per operation, exit values forming the permutation 0..Ops-1, every
// balancer event carrying a non-negative duration, and the live
// (Tog+W)/Tog surfaced in the result.
func TestStressTraced(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(8, 1<<13)
	reg := obs.NewRegistry()
	const ops = 400
	res, err := Stress(StressConfig{
		Net: n, Workers: 8, Ops: ops,
		DelayedFrac: 0.5, Delay: 5 * time.Microsecond,
		Seed: 42, Tracer: ring, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Total != ops {
		t.Fatalf("analyzed %d ops, want %d", res.Report.Total, ops)
	}
	// Tog is a mean of wall-clock toggle waits: on a platform with coarse
	// clock granularity every sampled wait can legitimately measure zero,
	// so the populated-measure assertion is strict-timing-gated (the PR-5
	// convention) rather than a hard failure.
	if res.Tog <= 0 || res.AvgRatio <= 1 {
		if os.Getenv("COUNTNET_STRICT_TIMING") == "" {
			t.Logf("live timing measure not populated (Tog=%f AvgRatio=%f); coarse clocks can measure zero waits, set COUNTNET_STRICT_TIMING=1 to enforce", res.Tog, res.AvgRatio)
		} else {
			t.Fatalf("live timing measure not populated: Tog=%f AvgRatio=%f", res.Tog, res.AvgRatio)
		}
	}

	events := ring.Events()
	if ring.Overwritten() > 0 {
		t.Fatalf("ring overwrote %d events; size it up", ring.Overwritten())
	}
	counts := map[obs.Kind]int{}
	var values []int64
	for _, ev := range events {
		counts[ev.Kind]++
		if ev.Kind == obs.KindBalancer && ev.Dur < 0 {
			t.Fatalf("negative balancer duration: %+v", ev)
		}
		if ev.Kind == obs.KindExit {
			values = append(values, ev.Value)
		}
	}
	if counts[obs.KindEnter] != ops || counts[obs.KindExit] != ops || counts[obs.KindCounter] != ops {
		t.Fatalf("trace kind counts wrong: %v, want %d enter/exit/counter", counts, ops)
	}
	if counts[obs.KindBalancer] == 0 {
		t.Fatal("no balancer events traced")
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for i, v := range values {
		if v != int64(i) {
			t.Fatalf("traced exit values are not a permutation at %d: %d", i, v)
		}
	}

	// Metrics agree with the trace: the wait histogram saw every balancer
	// traversal, the depth gauges drained back to zero, and the exported
	// ratio matches the result.
	if got := reg.Histogram("shm_tog_wait_ns").Count(); got != int64(counts[obs.KindBalancer]) {
		t.Fatalf("wait histogram has %d samples, trace has %d balancer events", got, counts[obs.KindBalancer])
	}
	if got := reg.Counter("shm_counter_fai_total").Value(); got != ops {
		t.Fatalf("counter fetch-and-adds %d, want %d", got, ops)
	}
	for _, id := range g.Balancers() {
		if d := reg.Gauge(obsGaugeName(int(id))).Value(); d != 0 {
			t.Fatalf("balancer %d depth gauge stuck at %d after quiescence", id, d)
		}
	}
	var txt bytes.Buffer
	reg.WriteText(&txt)
	if !bytes.Contains(txt.Bytes(), []byte("shm_avg_c2c1")) {
		t.Fatalf("metrics text missing ratio gauge:\n%s", txt.String())
	}

	// Chrome export of a wall-clock trace succeeds.
	var buf bytes.Buffer
	meta := obs.Meta{Engine: "shm", Unit: "ns", Net: "bitonic", Width: 4}
	if err := obs.WriteChromeTrace(&buf, meta, events); err != nil {
		t.Fatal(err)
	}
}

// TestStressDiffractRetries checks the prism CAS-retry counter is exported
// when diffracting balancers are compiled in.
func TestStressDiffractRetries(t *testing.T) {
	g, err := bitonic.New(2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Compile(g, Options{Diffract: true})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	if _, err := Stress(StressConfig{Net: n, Workers: 8, Ops: 500, Seed: 1, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	reg.WriteText(&txt)
	if !bytes.Contains(txt.Bytes(), []byte("shm_prism_cas_retries_total")) {
		t.Fatalf("metrics text missing prism retry gauge:\n%s", txt.String())
	}
}

// TestEffWait pins the W convention shared with the simulator.
func TestEffWait(t *testing.T) {
	for _, tc := range []struct {
		cfg  StressConfig
		want float64
	}{
		{StressConfig{Delay: 1000, DelayedFrac: 0.5}, 1000},
		{StressConfig{Delay: 1000, RandomDelay: true}, 500},
		{StressConfig{Delay: 1000, DelayedFrac: 0}, 0},
		{StressConfig{Delay: 0, DelayedFrac: 0.5}, 0},
		// Edge cases: a negative delay is no delay, even randomized;
		// RandomDelay wins over a zero DelayedFrac (every worker draws
		// from [0,W)); burning the delay instead of pausing does not
		// change W itself; a full delayed fraction is just W.
		{StressConfig{Delay: -1000, DelayedFrac: 0.5}, 0},
		{StressConfig{Delay: -1000, RandomDelay: true}, 0},
		{StressConfig{Delay: 1000, RandomDelay: true, DelayedFrac: 0}, 500},
		{StressConfig{Delay: 1000, DelayedFrac: 1}, 1000},
		{StressConfig{Delay: 1000, DelayedFrac: 1, BurnDelay: true}, 1000},
	} {
		if got := tc.cfg.EffWait(); got != tc.want {
			t.Errorf("EffWait(%+v) = %f, want %f", tc.cfg, got, tc.want)
		}
	}
}

// obsGaugeName mirrors EnableObs's per-balancer gauge naming.
func obsGaugeName(id int) string {
	return fmt.Sprintf("shm_bal%03d_depth", id)
}

// TestStressCausalSpans checks the shared-memory trace carries the same
// causal structure msgnet's does: unique span ids, each token a single
// enter → balancers → counter → exit parent chain, and the whole trace
// causally closed.
func TestStressCausalSpans(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(4, 1<<13)
	const ops = 200
	if _, err := Stress(StressConfig{Net: n, Workers: 4, Ops: ops, Seed: 7, Tracer: ring}); err != nil {
		t.Fatal(err)
	}
	events := ring.Events()
	if closed, orphans := obs.CausalClosure(events); orphans != 0 || len(closed) != len(events) {
		t.Fatalf("stress trace not causally closed: %d orphans", orphans)
	}
	spans := map[uint64]bool{}
	byTok := map[int32][]obs.Event{}
	for _, ev := range events {
		if ev.Span == 0 {
			t.Fatalf("unstamped event in traced run: %+v", ev)
		}
		if spans[ev.Span] {
			t.Fatalf("span id %d reused", ev.Span)
		}
		spans[ev.Span] = true
		byTok[ev.Tok] = append(byTok[ev.Tok], ev)
	}
	depth := g.Depth()
	for tok, chain := range byTok {
		sort.Slice(chain, func(i, j int) bool { return chain[i].Span < chain[j].Span })
		if len(chain) != depth+3 {
			t.Fatalf("token %d has %d events, want enter+%d balancers+counter+exit", tok, len(chain), depth)
		}
		if chain[0].Kind != obs.KindEnter || chain[0].Parent != 0 {
			t.Fatalf("token %d chain does not start at a root enter: %+v", tok, chain[0])
		}
		for i := 1; i < len(chain); i++ {
			if chain[i].Parent != chain[i-1].Span {
				t.Fatalf("token %d causal chain broken at %d: %+v after %+v", tok, i, chain[i], chain[i-1])
			}
		}
	}
}

// TestStressCombineSpans pins the funnel path's causal story: a combined
// worker's exit chains straight onto its enter (the traversal ran on the
// combiner's identity), so the trace still closes with zero orphans.
func TestStressCombineSpans(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(8, 1<<13)
	const ops = 200
	if _, err := Stress(StressConfig{
		Net: n, Workers: 8, Ops: ops, Seed: 7, Tracer: ring,
		Combine: true, CombineWidth: 8, CombineWindow: 20 * time.Microsecond,
	}); err != nil {
		t.Fatal(err)
	}
	events := ring.Events()
	if _, orphans := obs.CausalClosure(events); orphans != 0 {
		t.Fatalf("combine trace not causally closed: %d orphans", orphans)
	}
	enterSpan := map[int64]uint64{} // (wkr, tok) key → enter span
	key := func(ev obs.Event) int64 { return int64(ev.P)<<32 | int64(ev.Tok) }
	for _, ev := range events {
		if ev.Kind == obs.KindEnter {
			enterSpan[key(ev)] = ev.Span
		}
	}
	for _, ev := range events {
		if ev.Kind != obs.KindExit {
			continue
		}
		if ev.Parent == 0 {
			t.Fatalf("exit without causal parent: %+v", ev)
		}
		if ev.Parent == enterSpan[key(ev)] {
			continue // combined away: exit chains onto its own enter
		}
	}
}
