package prism

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestExchangeTimeoutWhenAlone(t *testing.T) {
	p := New(4)
	rng := rand.New(rand.NewSource(1))
	if out := p.Exchange(time.Millisecond, rng); out != Timeout {
		t.Fatalf("alone exchange = %v, want Timeout", out)
	}
}

// attemptPair launches two goroutines into the prism with the given window
// and reports how many landed on each outcome.
func attemptPair(p *Prism, window time.Duration, round int) (first, second, timeout int64) {
	var f, s, to atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			switch p.Exchange(window, rng) {
			case First:
				f.Add(1)
			case Second:
				s.Add(1)
			case Timeout:
				to.Add(1)
			}
		}(int64(2*round + g))
	}
	wg.Wait()
	return f.Load(), s.Load(), to.Load()
}

// TestExchangePairs checks that two concurrent tokens on a single-slot
// prism can meet and leave on complementary outputs. A single attempt can
// legitimately time out when the scheduler serializes the two goroutines
// (the first withdraws before the second arrives), so the test retries
// attempts against an overall deadline instead of asserting one fixed
// window; it fails only if no attempt ever pairs.
func TestExchangePairs(t *testing.T) {
	p := New(1) // single slot forces the pair to meet
	deadline := time.Now().Add(5 * time.Second)
	for round := 0; time.Now().Before(deadline); round++ {
		first, second, timeout := attemptPair(p, 50*time.Millisecond, round)
		if first == 1 && second == 1 {
			return // exactly one of each direction: the exchange paired
		}
		if first != second {
			t.Fatalf("first=%d second=%d timeout=%d: unpaired diffraction", first, second, timeout)
		}
	}
	t.Fatal("no attempt paired before the deadline")
}

// TestExchangeComplementary runs concurrent exchanges and checks the
// invariant diffraction relies on: diffracted tokens come in (First,
// Second) pairs, so the two counts are equal. The goroutines loop against
// a shared deadline rather than a fixed iteration count, and the test
// keeps extending the run until some diffraction has been observed (or an
// overall budget expires), so it cannot flake on a machine where a short
// burst happens to never collide.
func TestExchangeComplementary(t *testing.T) {
	p := New(4)
	const goroutines = 8
	var first, second atomic.Int64
	budget := time.Now().Add(10 * time.Second)
	for burst := 0; first.Load() == 0 && time.Now().Before(budget); burst++ {
		stop := time.Now().Add(100 * time.Millisecond)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for time.Now().Before(stop) {
					switch p.Exchange(100*time.Microsecond, rng) {
					case First:
						first.Add(1)
					case Second:
						second.Add(1)
					}
				}
			}(int64(goroutines*burst + g))
		}
		wg.Wait()
		// All exchanges have completed (wg.Wait), so the pair counts are
		// final for this burst and must balance exactly.
		if first.Load() != second.Load() {
			t.Fatalf("first=%d second=%d: diffraction must be pairwise", first.Load(), second.Load())
		}
	}
	if first.Load() == 0 {
		t.Error("no diffraction at all under heavy concurrency")
	}
}

func TestWidthClamp(t *testing.T) {
	if New(0).Width() != 1 {
		t.Error("width 0 not clamped to 1")
	}
	if New(8).Width() != 8 {
		t.Error("width 8 mangled")
	}
}
