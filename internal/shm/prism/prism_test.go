package prism

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestExchangeTimeoutWhenAlone(t *testing.T) {
	p := New(4)
	rng := rand.New(rand.NewSource(1))
	if out := p.Exchange(time.Millisecond, rng); out != Timeout {
		t.Fatalf("alone exchange = %v, want Timeout", out)
	}
}

func TestExchangePairs(t *testing.T) {
	p := New(1) // single slot forces the pair to meet
	var first, second, timeout atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			switch p.Exchange(200*time.Millisecond, rng) {
			case First:
				first.Add(1)
			case Second:
				second.Add(1)
			case Timeout:
				timeout.Add(1)
			}
		}(int64(g))
	}
	wg.Wait()
	if first.Load() != 1 || second.Load() != 1 {
		t.Fatalf("first=%d second=%d timeout=%d, want exactly one of each direction",
			first.Load(), second.Load(), timeout.Load())
	}
}

// TestExchangeComplementary runs many concurrent exchanges and checks the
// invariant diffraction relies on: diffracted tokens come in (First, Second)
// pairs, so the two counts are equal.
func TestExchangeComplementary(t *testing.T) {
	p := New(4)
	const goroutines = 8
	const iters = 500
	var first, second atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				switch p.Exchange(100*time.Microsecond, rng) {
				case First:
					first.Add(1)
				case Second:
					second.Add(1)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if first.Load() != second.Load() {
		t.Fatalf("first=%d second=%d: diffraction must be pairwise", first.Load(), second.Load())
	}
	if first.Load() == 0 {
		t.Error("no diffraction at all under heavy concurrency")
	}
}

func TestWidthClamp(t *testing.T) {
	if New(0).Width() != 1 {
		t.Error("width 0 not clamped to 1")
	}
	if New(8).Width() != 8 {
		t.Error("width 8 mangled")
	}
}
