// Package prism implements the diffraction mechanism of Shavit and Zemach's
// diffracting trees (and the elimination "multi-prism" of Shavit and
// Touitou): an array of exchanger slots in front of a balancer's toggle
// where pairs of concurrent tokens collide and leave on complementary
// outputs without touching the toggle at all. Two tokens taking opposite
// outputs leave the toggle state unchanged, so diffraction preserves the
// balancer's step property while removing the sequential bottleneck.
package prism

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome of an exchange attempt.
type Outcome int

// Exchange outcomes.
const (
	// Timeout means no partner arrived; the caller must fall back to the
	// toggle.
	Timeout Outcome = iota + 1
	// First means the token was diffracted and takes the balancer's first
	// output.
	First
	// Second means the token was diffracted and takes the second output.
	Second
)

// waiter is one token camped in a slot awaiting a partner.
type waiter struct {
	result chan Outcome
}

// Prism is a fixed-width array of exchanger slots.
type Prism struct {
	slots   []atomic.Pointer[waiter]
	pool    sync.Pool
	retries atomic.Int64
}

// New returns a prism with the given number of slots (at least 1).
func New(width int) *Prism {
	if width < 1 {
		width = 1
	}
	p := &Prism{slots: make([]atomic.Pointer[waiter], width)}
	p.pool.New = func() any { return &waiter{result: make(chan Outcome, 1)} }
	return p
}

// Width returns the number of slots.
func (p *Prism) Width() int { return len(p.slots) }

// Retries returns how many CAS races this prism has lost (a take or camp
// attempt that failed because a concurrent token won the slot) — the
// contention signal the observability layer exports per balancer.
func (p *Prism) Retries() int64 { return p.retries.Load() }

// Exchange attempts to diffract with a partner for at most `window`,
// using rng to pick a slot. It returns First or Second when a collision
// happened, Timeout otherwise.
func (p *Prism) Exchange(window time.Duration, rng *rand.Rand) Outcome {
	slot := &p.slots[rng.Intn(len(p.slots))]
	// Partner already waiting? Take it.
	if w := slot.Load(); w != nil {
		if slot.CompareAndSwap(w, nil) {
			//countnet:allow hotvet -- partner channels are buffered (capacity 1) and the CAS made us sole sender, so the send never blocks
			w.result <- First
			return Second
		}
		p.retries.Add(1)
	}
	me, _ := p.pool.Get().(*waiter)
	if !slot.CompareAndSwap(nil, me) {
		// Lost the race to camp; retry against whoever won.
		p.retries.Add(1)
		p.pool.Put(me)
		if w := slot.Load(); w != nil && slot.CompareAndSwap(w, nil) {
			//countnet:allow hotvet -- partner channels are buffered (capacity 1) and the CAS made us sole sender, so the send never blocks
			w.result <- First
			return Second
		}
		return Timeout
	}
	deadline := time.Now().Add(window)
	for spins := 0; ; spins++ {
		//countnet:allow hotvet -- nonblocking poll for a partner during the diffraction window; camping is the prism's pairing mechanism
		select {
		case out := <-me.result:
			p.pool.Put(me)
			return out
		default:
		}
		if time.Now().After(deadline) {
			break
		}
		if spins%32 == 31 {
			//countnet:allow hotvet -- bounded courtesy yield inside the diffraction window poll
			runtime.Gosched()
		}
	}
	// Withdraw; a partner may pair with us at the last instant.
	if slot.CompareAndSwap(me, nil) {
		p.pool.Put(me)
		return Timeout
	}
	//countnet:allow hotvet -- the failed withdrawal CAS proves a partner committed, so the buffered result is already in flight
	out := <-me.result // partner committed; complete the exchange
	p.pool.Put(me)
	return out
}
