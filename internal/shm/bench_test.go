package shm

import (
	"testing"
	"time"

	"countnet/internal/bitonic"
	"countnet/internal/dtree"
)

func benchNetwork(b *testing.B, n *Network) {
	b.Helper()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n.Traverse(0)
		}
	})
}

func BenchmarkBitonic8(b *testing.B) {
	g, err := bitonic.New(8)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []Kind{KindAtomic, KindMutex, KindMCS} {
		n, err := Compile(g, Options{Kind: kind})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind.String(), func(b *testing.B) { benchNetwork(b, n) })
	}
}

func BenchmarkDTree32(b *testing.B) {
	g, err := dtree.New(32)
	if err != nil {
		b.Fatal(err)
	}
	for _, diffract := range []bool{false, true} {
		n, err := Compile(g, Options{Kind: kindFor(diffract), Diffract: diffract, PrismWindow: 2 * time.Microsecond})
		if err != nil {
			b.Fatal(err)
		}
		name := "toggle"
		if diffract {
			name = "prism"
		}
		b.Run(name, func(b *testing.B) { benchNetwork(b, n) })
	}
}

func kindFor(bool) Kind { return KindMCS }

func BenchmarkBalancers(b *testing.B) {
	for _, kind := range []Kind{KindAtomic, KindMutex, KindMCS} {
		bal, err := NewBalancer(kind, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind.String(), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					bal.Traverse()
				}
			})
		})
	}
	inner, err := NewBalancer(KindMCS, 2)
	if err != nil {
		b.Fatal(err)
	}
	d, err := NewDiffracting(inner, 8, 2*time.Microsecond)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("diffracting", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				d.Traverse()
			}
		})
	})
}
