package shm

import (
	"os"
	"testing"
	"time"

	"countnet/internal/bitonic"
	"countnet/internal/dtree"
)

func benchNetwork(b *testing.B, n *Network) {
	b.Helper()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n.Traverse(0)
		}
	})
}

func BenchmarkBitonic8(b *testing.B) {
	g, err := bitonic.New(8)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []Kind{KindAtomic, KindMutex, KindMCS} {
		n, err := Compile(g, Options{Kind: kind})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind.String(), func(b *testing.B) { benchNetwork(b, n) })
	}
}

func BenchmarkDTree32(b *testing.B) {
	g, err := dtree.New(32)
	if err != nil {
		b.Fatal(err)
	}
	for _, diffract := range []bool{false, true} {
		n, err := Compile(g, Options{Kind: kindFor(diffract), Diffract: diffract, PrismWindow: 2 * time.Microsecond})
		if err != nil {
			b.Fatal(err)
		}
		name := "toggle"
		if diffract {
			name = "prism"
		}
		b.Run(name, func(b *testing.B) { benchNetwork(b, n) })
	}
}

func kindFor(bool) Kind { return KindMCS }

// benchStressCell runs one full stress workload per iteration in the
// locked comparison cell for the combining funnel: 256 workers on a
// width-8 bitonic network with MCS toggles, every worker burning
// W=20µs of simulated per-node work that occupies its processor (the
// regime of the paper's Section 5 where contention dominates). The
// combined variant routes every token through the elimination funnel.
func benchStressCell(b *testing.B, combined bool) {
	g, err := bitonic.New(8)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n, err := Compile(g, Options{Kind: KindMCS})
		if err != nil {
			b.Fatal(err)
		}
		cfg := StressConfig{
			Net: n, Workers: 256, Ops: 16000, Seed: 1,
			DelayedFrac: 1, Delay: 20 * time.Microsecond, BurnDelay: true,
		}
		if combined {
			cfg.Combine = true
			cfg.CombineWidth = 32
			cfg.CombineWindow = 500 * time.Microsecond
		}
		b.StartTimer()
		res, err := Stress(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Throughput, "walkops/s")
		if combined {
			b.ReportMetric(res.Combine.HitRate(), "hitrate")
		}
	}
}

func BenchmarkStressBaseline(b *testing.B) { benchStressCell(b, false) }
func BenchmarkStressCombined(b *testing.B) { benchStressCell(b, true) }

// TestCombineIdleOverhead pins the funnel's fast-path cost: with a
// single worker every token takes the idle path (one atomic
// increment and check), so the combined engine must stay within 10% of
// the plain engine. Best-of-N wall times absorb scheduler noise, but a
// relative wall-clock comparison can still flake on an oversubscribed
// runner, so the threshold is only enforced under
// COUNTNET_STRICT_TIMING=1 (the workload itself always runs).
func TestCombineIdleOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	g, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	const ops, runs = 100000, 5
	best := func(combined bool) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for r := 0; r < runs; r++ {
			n := compile(t, g, Options{Kind: KindMCS})
			res, err := Stress(StressConfig{Net: n, Workers: 1, Ops: ops, Seed: 1, Combine: combined})
			if err != nil {
				t.Fatal(err)
			}
			if res.Elapsed < bestD {
				bestD = res.Elapsed
			}
		}
		return bestD
	}
	base := best(false)
	comb := best(true)
	// 10% plus a small absolute allowance so a sub-millisecond baseline
	// cannot fail on clock granularity alone.
	limit := base + base/10 + 2*time.Millisecond
	if comb > limit {
		if os.Getenv("COUNTNET_STRICT_TIMING") == "" {
			t.Logf("combined idle path above limit (baseline %v, combined %v, limit %v); not failing without COUNTNET_STRICT_TIMING", base, comb, limit)
			return
		}
		t.Errorf("combined idle path too slow: baseline %v, combined %v (limit %v)", base, comb, limit)
	}
}

func BenchmarkBalancers(b *testing.B) {
	for _, kind := range []Kind{KindAtomic, KindMutex, KindMCS} {
		bal, err := NewBalancer(kind, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind.String(), func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					bal.Traverse()
				}
			})
		})
	}
	inner, err := NewBalancer(KindMCS, 2)
	if err != nil {
		b.Fatal(err)
	}
	d, err := NewDiffracting(inner, 8, 2*time.Microsecond)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("diffracting", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				d.Traverse()
			}
		})
	})
}
