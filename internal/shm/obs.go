package shm

import (
	"fmt"
	"time"

	"countnet/internal/obs"
	"countnet/internal/topo"
)

// netObs is the observability state attached to a compiled Network by
// EnableObs: tracer, clock, and the live metric family (the (Tog+W)/Tog
// estimator, toggle-wait histogram, per-balancer queue-depth gauges, and
// the prism CAS-retry counter).
type netObs struct {
	tr    obs.Tracer   // nil when tracing disabled
	clock func() int64 // nanoseconds on the run's monotonic timeline
	spans *obs.Clock   // causal span ids; non-nil exactly when tr is
	tog   *obs.Histogram
	ratio *obs.Ratio
	depth []*obs.Gauge // per-balancer concurrent-traverser count; nil entries for counters
	fai   *obs.Counter // output-counter fetch-and-adds
}

// Ratio returns the live (Tog+W)/Tog estimator, or nil when EnableObs has
// not been called with a registry.
func (n *Network) Ratio() *obs.Ratio {
	if n.obs == nil {
		return nil
	}
	return n.obs.ratio
}

// EnableObs attaches a tracer and/or metrics registry to the network.
// clock supplies timestamps in nanoseconds on a monotonic timeline shared
// with the caller's operation records (nil defaults to time-since-now).
// effW is the effective injected per-node delay in nanoseconds, the W of
// the live (Tog+W)/Tog gauge. Call before any traversal; not safe to call
// concurrently with Traverse.
func (n *Network) EnableObs(tr obs.Tracer, reg *obs.Registry, clock func() int64, effW float64) {
	if tr == nil && reg == nil {
		return
	}
	if clock == nil {
		base := time.Now()
		clock = func() int64 { return int64(time.Since(base)) }
	}
	o := &netObs{tr: tr, clock: clock}
	if tr != nil {
		o.spans = obs.NewClock()
	}
	if reg != nil {
		o.tog = reg.Histogram("shm_tog_wait_ns")
		o.ratio = reg.Ratio("shm_avg_c2c1", effW)
		o.fai = reg.Counter("shm_counter_fai_total")
		o.depth = make([]*obs.Gauge, len(n.balancers))
		var prisms int64
		for _, id := range n.g.Balancers() {
			o.depth[id] = reg.Gauge(fmt.Sprintf("shm_bal%03d_depth", id))
			if _, ok := n.balancers[id].(*Diffracting); ok {
				prisms++
			}
		}
		if prisms > 0 {
			reg.GaugeFunc("shm_prism_cas_retries_total", func() float64 {
				var total int64
				for _, b := range n.balancers {
					if d, ok := b.(*Diffracting); ok {
						total += d.Retries()
					}
				}
				return float64(total)
			})
		}
	}
	n.obs = o
}

// SpanClock returns the causal span clock tracing draws ids from, or nil
// when the network runs untraced. Drivers use it to stamp their own
// enter/exit events on the same timeline and chain them through
// TraverseSpan.
func (n *Network) SpanClock() *obs.Clock {
	if n.obs == nil {
		return nil
	}
	return n.obs.spans
}

// TraverseObs routes one token like Traverse while recording per-node
// trace events and metrics under the identity (proc, tok). It falls back
// to the untraced path when EnableObs was not called. afterNode mirrors
// TraverseHook's delay-injection callback.
func (n *Network) TraverseObs(input int, proc, tok int32, afterNode func(id topo.NodeID)) int64 {
	v, _ := n.TraverseSpan(input, proc, tok, 0, afterNode)
	return v
}

// TraverseSpan is TraverseObs with causal stamping: every recorded hop
// gets a span id from the network's Clock, chained parent → child along
// the token's path starting from parent (0 for a root). It returns the
// counter value and the last span id (0 when tracing is off), which the
// caller chains its exit event — or the token's next traversal — onto.
func (n *Network) TraverseSpan(input int, proc, tok int32, parent uint64, afterNode func(id topo.NodeID)) (int64, uint64) {
	o := n.obs
	if o == nil {
		return n.TraverseHook(input, afterNode), 0
	}
	span := uint64(0)
	if o.tr != nil {
		span = parent
	}
	p := n.g.Input(input)
	for {
		id := p.Node
		if b := n.balancers[id]; b != nil {
			t0 := o.clock()
			if o.depth != nil {
				o.depth[id].Add(1)
			}
			out := b.Traverse()
			t1 := o.clock()
			if o.depth != nil {
				o.depth[id].Add(-1)
			}
			if o.tog != nil {
				o.tog.Observe(t1 - t0)
				o.ratio.Observe(t1 - t0)
			}
			if o.tr != nil {
				sp := o.spans.Tick()
				o.tr.Record(obs.Event{T: t1, Dur: t1 - t0, Kind: obs.KindBalancer,
					P: proc, Tok: tok, Node: int32(id), Value: -1,
					Span: sp, Parent: span})
				span = sp
			}
			if afterNode != nil {
				afterNode(id)
			}
			p = n.g.OutDest(id, out)
			continue
		}
		idx := n.g.CounterIndex(id)
		t0 := o.clock()
		a := n.counters[idx].v.Add(1) - 1
		t1 := o.clock()
		v := int64(idx) + n.w*a
		if o.fai != nil {
			o.fai.Inc()
		}
		if o.tr != nil {
			sp := o.spans.Tick()
			o.tr.Record(obs.Event{T: t1, Dur: t1 - t0, Kind: obs.KindCounter,
				P: proc, Tok: tok, Node: int32(id), Value: v,
				Span: sp, Parent: span})
			span = sp
		}
		if afterNode != nil {
			afterNode(id)
		}
		return v, span
	}
}

// Retries returns how many prism CAS races this balancer has lost.
func (d *Diffracting) Retries() int64 { return d.prism.Retries() }
