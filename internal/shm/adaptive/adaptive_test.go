package adaptive_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"countnet/internal/bitonic"
	"countnet/internal/lincheck"
	"countnet/internal/obs"
	"countnet/internal/shm"
	"countnet/internal/shm/adaptive"
	"countnet/internal/topo"
)

// matrixWidths is the width axis of the switch-boundary property tests:
// every power of two from the degenerate single-counter network up to
// twice the paper's width.
var matrixWidths = []int{1, 2, 4, 8, 16, 32, 64}

// buildGraph returns a counting network of the given width: the
// hand-built pass-through graph for width 1 (which the bitonic
// constructor rejects) and Bitonic[w] otherwise.
func buildGraph(t *testing.T, width int) *topo.Graph {
	t.Helper()
	if width == 1 {
		b := topo.NewBuilder()
		ins := b.Inputs(1)
		out := b.Balancer11(ins[0])
		b.Terminate([]topo.Out{out})
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g, err := bitonic.New(width)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// newCounter compiles the width's network and wraps it in an adaptive
// counter with the given options.
func newCounter(t *testing.T, width int, opts adaptive.Options) *adaptive.Counter {
	t.Helper()
	n, err := shm.Compile(buildGraph(t, width), shm.Options{Kind: shm.KindMCS})
	if err != nil {
		t.Fatal(err)
	}
	c, err := adaptive.New(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// checkValues asserts the run handed out exactly 0..n-1 (the gap
// property) and that the per-output tallies implied by value mod width
// are exactly the step-property counts (the step property) — the two
// invariants no mode switch may ever disturb.
func checkValues(t *testing.T, vals []int64, width int) {
	t.Helper()
	seen := make([]bool, len(vals))
	tallies := make([]int64, width)
	for _, v := range vals {
		if v < 0 || v >= int64(len(vals)) || seen[v] {
			t.Fatalf("value %d duplicated or out of range [0,%d)", v, len(vals))
		}
		seen[v] = true
		tallies[int(v)%width]++
	}
	want := topo.StepCounts(int64(len(vals)), width)
	for i := range tallies {
		if tallies[i] != want[i] {
			t.Fatalf("output tallies %v != step counts %v", tallies, want)
		}
	}
	if !topo.StepPropertyHolds(tallies) {
		t.Fatalf("output tallies %v violate the step property", tallies)
	}
}

// checkConservation rolls the live epoch closed and asserts the epoch
// log accounts for every token exactly once.
func checkConservation(t *testing.T, c *adaptive.Counter, total int64) {
	t.Helper()
	if err := c.SwitchTo(c.Mode()); err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, e := range c.Epochs() {
		if e.Tokens < 0 {
			t.Fatalf("epoch %d issued %d tokens", e.Epoch, e.Tokens)
		}
		sum += e.Tokens
	}
	if sum != total {
		t.Fatalf("epoch log accounts for %d of %d tokens: %+v", sum, total, c.Epochs())
	}
	if st := c.Stats(); st.Tokens != total {
		t.Fatalf("Stats.Tokens = %d, issued %d", st.Tokens, total)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[adaptive.Mode]string{
		adaptive.ModeDirect:  "direct",
		adaptive.ModeCombine: "combine",
		adaptive.ModeNetwork: "network",
		adaptive.ModeLinear:  "linear",
		adaptive.Mode(9):     "mode(9)",
	} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int32(m), got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := adaptive.New(nil, adaptive.Options{}); err == nil {
		t.Error("nil network accepted")
	}
	c := newCounter(t, 2, adaptive.Options{})
	if err := c.SwitchTo(adaptive.Mode(7)); err == nil {
		t.Error("unknown mode accepted")
	}
	if c.Mode() != adaptive.ModeDirect {
		t.Errorf("fresh counter in mode %v, want direct", c.Mode())
	}
	n, err := shm.Compile(buildGraph(t, 2), shm.Options{Kind: shm.KindMCS})
	if err != nil {
		t.Fatal(err)
	}
	// An explicitly set CombineMax that cannot order the escalation
	// ladder is rejected, not silently rewritten.
	if _, err := adaptive.New(n, adaptive.Options{DirectMax: 8, CombineMax: 8}); err == nil {
		t.Error("CombineMax == DirectMax accepted")
	}
	if _, err := adaptive.New(n, adaptive.Options{DirectMax: 8, CombineMax: 4}); err == nil {
		t.Error("CombineMax < DirectMax accepted")
	}
	// Defaulted CombineMax still must exceed the explicit DirectMax.
	if _, err := adaptive.New(n, adaptive.Options{DirectMax: 100}); err != nil {
		t.Errorf("zero CombineMax with large DirectMax rejected: %v", err)
	}
}

// TestQuiescentSwitchMatrix walks every width through a full rotation of
// quiescent mode switches — each switch happens with no token in flight
// — and asserts the values issued across all regimes still form one
// gapless step-property sequence, with the epoch log conserving every
// token.
func TestQuiescentSwitchMatrix(t *testing.T) {
	rotation := []adaptive.Mode{
		adaptive.ModeCombine, adaptive.ModeNetwork, adaptive.ModeLinear,
		adaptive.ModeDirect, adaptive.ModeNetwork, adaptive.ModeLinear,
		adaptive.ModeCombine, adaptive.ModeDirect,
	}
	for _, width := range matrixWidths {
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			c := newCounter(t, width, adaptive.Options{})
			per := 3*width + 5
			var vals []int64
			var tok int32
			for phase := 0; phase <= len(rotation); phase++ {
				for i := 0; i < per; i++ {
					vals = append(vals, c.Next(int(tok)%width, 0, tok, nil))
					tok++
				}
				if phase < len(rotation) {
					if err := c.SwitchTo(rotation[phase]); err != nil {
						t.Fatal(err)
					}
				}
			}
			checkValues(t, vals, width)
			checkConservation(t, c, int64(len(vals)))
			if st := c.Stats(); st.Switches < int64(len(rotation)) {
				t.Errorf("forced %d switches, counted %d", len(rotation), st.Switches)
			}
		})
	}
}

// TestConcurrentSwitchMatrix forces mode switches while worker
// goroutines are drawing values: the drain-then-switch gate must make
// every transition invisible — no duplicate, no gap, no step-property
// breach — at every width.
func TestConcurrentSwitchMatrix(t *testing.T) {
	rotation := []adaptive.Mode{
		adaptive.ModeCombine, adaptive.ModeNetwork, adaptive.ModeLinear, adaptive.ModeDirect,
	}
	for _, width := range matrixWidths {
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			c := newCounter(t, width, adaptive.Options{
				CombineWindow: 50 * time.Microsecond,
			})
			const workers = 8
			const per = 64
			vals := make([]int64, workers*per)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						tok := int32(w*per + i)
						vals[tok] = c.Next(w%width, int32(w), tok, nil)
					}
				}(w)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			for i := 0; ; i++ {
				select {
				case <-done:
					checkValues(t, vals, width)
					checkConservation(t, c, workers*per)
					return
				default:
					if err := c.SwitchTo(rotation[i%len(rotation)]); err != nil {
						t.Error(err)
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
		})
	}
}

// TestSwitchStorm oscillates the regime as fast as the drain protocol
// allows — back-to-back forced switches with zero settle time — under
// concurrent load. The storm is the adversarial schedule for the epoch
// gate: every entry races a closing or reopening gate.
func TestSwitchStorm(t *testing.T) {
	const width = 4
	c := newCounter(t, width, adaptive.Options{
		CombineWindow: 20 * time.Microsecond,
	})
	const workers = 4
	const per = 128
	vals := make([]int64, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tok := int32(w*per + i)
				vals[tok] = c.Next(w%width, int32(w), tok, nil)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	storms := 0
storm:
	for {
		for _, m := range []adaptive.Mode{
			adaptive.ModeNetwork, adaptive.ModeLinear, adaptive.ModeDirect, adaptive.ModeCombine,
		} {
			select {
			case <-done:
				break storm
			default:
				if err := c.SwitchTo(m); err != nil {
					t.Error(err)
				}
				storms++
			}
		}
	}
	checkValues(t, vals, width)
	checkConservation(t, c, workers*per)
	t.Logf("survived %d forced switches", storms)
}

// TestLinearizablePadding drives the ratio estimator to a known value
// and checks the Corollary 3.12 decision: k = ceil(ratio) prefix padding
// above 2, clamped at MaxPadK, none at or below 2 — and that counting
// across padded and unpadded epochs stays exact.
func TestLinearizablePadding(t *testing.T) {
	t.Run("k4", func(t *testing.T) {
		c := newCounter(t, 4, adaptive.Options{Linearizable: true, EffWait: 3000})
		c.Ratio().Observe(1000) // (1000+3000)/1000 = 4
		if err := c.SwitchTo(adaptive.ModeNetwork); err != nil {
			t.Fatal(err)
		}
		if st := c.Stats(); st.PadK != 4 {
			t.Fatalf("ratio 4 gave padding k=%d, want 4", st.PadK)
		}
		var vals []int64
		for tok := int32(0); tok < 64; tok++ {
			vals = append(vals, c.Next(int(tok)%4, 0, tok, nil))
		}
		if err := c.SwitchTo(adaptive.ModeDirect); err != nil {
			t.Fatal(err)
		}
		for tok := int32(64); tok < 128; tok++ {
			vals = append(vals, c.Next(int(tok)%4, 0, tok, nil))
		}
		checkValues(t, vals, 4)
		checkConservation(t, c, int64(len(vals)))
	})
	t.Run("clamped", func(t *testing.T) {
		c := newCounter(t, 2, adaptive.Options{Linearizable: true, EffWait: 1e9})
		c.Ratio().Observe(1) // ratio ~1e9: must clamp at MaxPadK
		if err := c.SwitchTo(adaptive.ModeNetwork); err != nil {
			t.Fatal(err)
		}
		if st := c.Stats(); st.PadK != adaptive.DefaultMaxPadK {
			t.Fatalf("huge ratio gave k=%d, want clamp %d", st.PadK, adaptive.DefaultMaxPadK)
		}
	})
	t.Run("under-threshold", func(t *testing.T) {
		c := newCounter(t, 2, adaptive.Options{Linearizable: true, EffWait: 500})
		c.Ratio().Observe(1000) // ratio 1.5 <= 2: Corollary 3.9 already applies
		if err := c.SwitchTo(adaptive.ModeNetwork); err != nil {
			t.Fatal(err)
		}
		if st := c.Stats(); st.PadK != 1 {
			t.Fatalf("ratio 1.5 gave k=%d, want 1 (unpadded)", st.PadK)
		}
	})
	t.Run("off-by-default", func(t *testing.T) {
		c := newCounter(t, 2, adaptive.Options{EffWait: 1e9})
		c.Ratio().Observe(1)
		if err := c.SwitchTo(adaptive.ModeNetwork); err != nil {
			t.Fatal(err)
		}
		if st := c.Stats(); st.PadK != 1 {
			t.Fatalf("Linearizable off but k=%d", st.PadK)
		}
	})
	t.Run("combine-unpadded", func(t *testing.T) {
		// Padding is a network-mode guarantee: a combine epoch runs the
		// plain network even when the ratio implies k > 2.
		c := newCounter(t, 2, adaptive.Options{Linearizable: true, EffWait: 1e9})
		c.Ratio().Observe(1)
		if err := c.SwitchTo(adaptive.ModeCombine); err != nil {
			t.Fatal(err)
		}
		if st := c.Stats(); st.PadK != 1 {
			t.Fatalf("combine epoch got padding k=%d, want 1", st.PadK)
		}
	})
}

// TestMeasuredRatioEngagesPadding drives the estimator through Next with
// a real injected per-node delay W — no synthetic Observe calls — and
// asserts the Corollary 3.12 padding actually engages. This is the
// regression test for the estimator bias where sample() fed the full
// dispatch latency (toggle wait plus injected W) into the estimator:
// with Tog measured as T+W the ratio (Tog+W)/Tog stays below 2 by
// construction and the Linearizable option could never pad from a real
// measurement. W is chosen large against scheduling noise so the
// residual after subtraction stays well under W and the ratio lands
// far above the k = 2 threshold.
func TestMeasuredRatioEngagesPadding(t *testing.T) {
	const wait = 8 * time.Millisecond
	c := newCounter(t, 2, adaptive.Options{
		Linearizable: true,
		EffWait:      float64(wait.Nanoseconds()),
		Window:       1 << 20, // keep the controller out of the way
	})
	inject := func(topo.NodeID) { time.Sleep(wait) }
	var vals []int64
	for tok := int32(0); tok < 65; tok++ { // spans two sampled tokens
		vals = append(vals, c.Next(int(tok)%2, 0, tok, inject))
	}
	if r := c.Ratio().Value(); r <= 2 {
		t.Fatalf("measured ratio %.3f <= 2 with injected W=%v: estimator still counting W as Tog", r, wait)
	}
	if err := c.SwitchTo(adaptive.ModeNetwork); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.PadK <= 2 {
		t.Fatalf("ratio %.3f implies k > 2 but network epoch got k=%d", st.Ratio, st.PadK)
	}
	for tok := int32(65); tok < 129; tok++ {
		vals = append(vals, c.Next(int(tok)%2, 0, tok, nil))
	}
	checkValues(t, vals, 2)
	checkConservation(t, c, int64(len(vals)))
}

// TestControllerEscalates runs enough concurrent load over tiny
// thresholds that the hysteretic controller should escalate away from
// the direct counter on its own. Scheduling noise can in principle keep
// the sampled occupancy low, so the assertion is strict only under
// COUNTNET_STRICT_TIMING (the PR-5 convention); the permutation checks
// are unconditional.
func TestControllerEscalates(t *testing.T) {
	const width = 4
	c := newCounter(t, width, adaptive.Options{
		Window: 64, Hold: 1, DirectMax: 2, CombineMax: 6,
		CombineWindow: 20 * time.Microsecond,
	})
	const workers = 16
	const per = 256
	vals := make([]int64, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hold := func(topo.NodeID) { time.Sleep(2 * time.Microsecond) }
			for i := 0; i < per; i++ {
				tok := int32(w*per + i)
				vals[tok] = c.Next(w%width, int32(w), tok, hold)
			}
		}(w)
	}
	wg.Wait()
	checkValues(t, vals, width)
	checkConservation(t, c, workers*per)
	st := c.Stats()
	t.Logf("controller: %d switches, per-mode tokens %v, ratio %.2f",
		st.Switches, st.PerMode, st.Ratio)
	if st.Switches == 0 {
		if os.Getenv("COUNTNET_STRICT_TIMING") == "" {
			t.Log("controller never escalated (scheduling-dependent); set COUNTNET_STRICT_TIMING=1 to enforce")
			return
		}
		t.Error("16 workers over DirectMax=2 never escalated")
	}
}

// TestStatsPartition checks the per-mode tally partition: every issued
// token is attributed to exactly one regime, across all four regimes.
func TestStatsPartition(t *testing.T) {
	c := newCounter(t, 4, adaptive.Options{})
	var tok int32
	for _, m := range []adaptive.Mode{
		adaptive.ModeDirect, adaptive.ModeCombine, adaptive.ModeNetwork, adaptive.ModeLinear,
	} {
		if err := c.SwitchTo(m); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			c.Next(int(tok)%4, 0, tok, nil)
			tok++
		}
	}
	st := c.Stats()
	if got := st.PerMode[0] + st.PerMode[1] + st.PerMode[2] + st.PerMode[3]; got != st.Tokens || st.Tokens != int64(tok) {
		t.Fatalf("per-mode partition %v sums to %d, issued %d", st.PerMode, got, tok)
	}
	for m, n := range st.PerMode {
		if n != 40 {
			t.Errorf("mode %v served %d tokens, want 40", adaptive.Mode(m), n)
		}
	}
}

// TestAdaptiveStressMatrix is the lincheck stress-matrix entry for the
// adaptive engine: the full stress driver routes every operation through
// the Front seam while the controller runs free, over a width × worker
// grid. Linearizability violations are allowed — with injected delays
// they are the paper's expected behaviour — but the permutation must be
// exact. A flight recorder rides along as the run's tracer; a breach
// trips it, so violations produce flight-recorder dumps like the other
// engines' harnesses.
func TestAdaptiveStressMatrix(t *testing.T) {
	for _, width := range []int{1, 2, 8} {
		for _, procs := range []int{4, 32, 128} {
			t.Run(fmt.Sprintf("w%d/p%d", width, procs), func(t *testing.T) {
				n, err := shm.Compile(buildGraph(t, width), shm.Options{Kind: shm.KindMCS})
				if err != nil {
					t.Fatal(err)
				}
				front, err := adaptive.New(n, adaptive.Options{
					Window: 128, Hold: 1,
					CombineWindow: 50 * time.Microsecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				ops := 4 * procs
				if ops < 256 {
					ops = 256
				}
				flight := obs.NewFlight(obs.Meta{
					Engine: "shm-adaptive", Unit: "ns", Width: width,
				}, procs, 64)
				flight.SetAutoDump(filepath.Join(t.TempDir(), "adaptive.flight.jsonl"))
				res, err := shm.Stress(shm.StressConfig{
					Net: n, Workers: procs, Ops: ops, Seed: int64(width*1000 + procs),
					DelayedFrac: 0.25, Delay: 20 * time.Microsecond,
					Front:  front,
					Tracer: flight,
				})
				if err != nil {
					t.Fatal(err)
				}
				seen := make([]bool, ops)
				for _, op := range res.Ops {
					if op.Value < 0 || op.Value >= int64(ops) || seen[op.Value] {
						if w, ok := lincheck.FirstWitness(res.Ops); ok {
							t.Logf("first inversion witness: %s", w)
						}
						if path, _ := flight.Trip("adaptive-violation"); path != "" {
							t.Logf("flight dump written to %s", path)
						}
						t.Fatalf("value %d duplicated or out of range [0,%d)", op.Value, ops)
					}
					seen[op.Value] = true
				}
				st := front.Stats()
				if st.Tokens != int64(ops) {
					t.Fatalf("front served %d tokens, ran %d ops", st.Tokens, ops)
				}
			})
		}
	}
}

// TestAdaptiveQuiescentLinearizable checks the sequential guarantee: a
// single undelayed worker never leaves the direct counter, and the run
// is fully linearizable.
func TestAdaptiveQuiescentLinearizable(t *testing.T) {
	n, err := shm.Compile(buildGraph(t, 4), shm.Options{Kind: shm.KindMCS})
	if err != nil {
		t.Fatal(err)
	}
	front, err := adaptive.New(n, adaptive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := shm.Stress(shm.StressConfig{Net: n, Workers: 1, Ops: 500, Seed: 3, Front: front})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Linearizable() {
		t.Fatalf("sequential adaptive run not linearizable: %s", res.Report)
	}
	if m := front.Mode(); m != adaptive.ModeDirect {
		t.Errorf("single undelayed worker escalated to %v", m)
	}
}

// drawAll issues tokens [from, to) sequentially with a fast-fail
// watchdog: a mis-seeded ModeLinear turn counter would hang Next forever
// waiting for a turn value the epoch's backend will never issue, and the
// watchdog turns that hang into a prompt failure instead of a package
// timeout.
func drawAll(t *testing.T, c *adaptive.Counter, width int, from, to int32) []int64 {
	t.Helper()
	out := make([]int64, 0, to-from)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for tok := from; tok < to; tok++ {
			out = append(out, c.Next(int(tok)%width, 0, tok, nil))
		}
	}()
	select {
	case <-done:
		return out
	case <-time.After(30 * time.Second):
		t.Fatalf("tokens [%d,%d) hung in mode %v: turn counter not seeded for the epoch", from, to, c.Mode())
		return nil
	}
}

// TestLinearTurnReset checks the per-epoch turn counter across regime
// switches: every re-entry into ModeLinear must reseed the turn from the
// new epoch's backend start, or the first waiting token of the second
// linear epoch would spin on a turn value that already passed.
func TestLinearTurnReset(t *testing.T) {
	const width = 4
	c := newCounter(t, width, adaptive.Options{})
	var vals []int64
	var tok int32
	for _, m := range []adaptive.Mode{
		adaptive.ModeLinear,  // epoch 1: turn seeded from a zero backend
		adaptive.ModeDirect,  // direct tokens advance only the FAA counter
		adaptive.ModeLinear,  // re-entry: backend resumed mid-sequence
		adaptive.ModeNetwork, // network tokens advance the shared backend...
		adaptive.ModeLinear,  // ...so this reseed crosses unwaited values
	} {
		if err := c.SwitchTo(m); err != nil {
			t.Fatal(err)
		}
		vals = append(vals, drawAll(t, c, width, tok, tok+21)...)
		tok += 21
	}
	checkValues(t, vals, width)
	checkConservation(t, c, int64(len(vals)))
}

// TestLinearBelowStartsLinear checks the guaranteed-ordering contract of
// Options.LinearBelow: the counter starts in ModeLinear (the guarantee
// holds from the first token), a negative band is rejected, and the zero
// value leaves the default ModeDirect start untouched.
func TestLinearBelowStartsLinear(t *testing.T) {
	c := newCounter(t, 4, adaptive.Options{LinearBelow: 64})
	if m := c.Mode(); m != adaptive.ModeLinear {
		t.Fatalf("LinearBelow counter starts in %v, want linear", m)
	}
	vals := drawAll(t, c, 4, 0, 32)
	checkValues(t, vals, 4)
	if c2 := newCounter(t, 4, adaptive.Options{}); c2.Mode() != adaptive.ModeDirect {
		t.Errorf("default counter starts in %v, want direct", c2.Mode())
	}
	n, err := shm.Compile(buildGraph(t, 4), shm.Options{Kind: shm.KindMCS})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adaptive.New(n, adaptive.Options{LinearBelow: -1}); err == nil {
		t.Error("negative LinearBelow accepted")
	}
}

// TestLinearBelowNeverVotesUnguaranteed pins the controller's
// guaranteed-ordering override: with LinearBelow far above any reachable
// occupancy, a free-running controller may move between direct and
// linear but must never serve a token from the unguaranteed combine or
// network regimes. Escalation itself is scheduling-dependent on a small
// host, so reaching ModeLinear is asserted only under
// COUNTNET_STRICT_TIMING; the exclusion and the permutation are
// unconditional.
func TestLinearBelowNeverVotesUnguaranteed(t *testing.T) {
	const width = 4
	c := newCounter(t, width, adaptive.Options{
		Window: 64, Hold: 1, DirectMax: 2, CombineMax: 6,
		LinearBelow: 1 << 20,
	})
	const workers = 16
	const per = 256
	vals := make([]int64, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hold := func(topo.NodeID) { time.Sleep(2 * time.Microsecond) }
			for i := 0; i < per; i++ {
				tok := int32(w*per + i)
				vals[tok] = c.Next(w%width, int32(w), tok, hold)
			}
		}(w)
	}
	wg.Wait()
	checkValues(t, vals, width)
	checkConservation(t, c, workers*per)
	st := c.Stats()
	t.Logf("controller: %d switches, per-mode tokens %v", st.Switches, st.PerMode)
	if n := st.PerMode[adaptive.ModeCombine] + st.PerMode[adaptive.ModeNetwork]; n != 0 {
		t.Errorf("guaranteed-ordering run served %d tokens from unguaranteed regimes: %v", n, st.PerMode)
	}
	if st.PerMode[adaptive.ModeLinear] == 0 && os.Getenv("COUNTNET_STRICT_TIMING") != "" {
		t.Error("no token ever served in ModeLinear under 16-worker load")
	}
}

// TestLinearZeroViolations is the lincheck entry for the guaranteed
// regime (the race matrix runs it under -race): under the same per-node
// W-anomaly injection that makes the bare network return values out of
// real-time order, a counter pinned in ModeLinear must produce zero
// non-linearizable operations. The bare-network contrast is reported,
// and enforced under COUNTNET_STRICT_TIMING — whether the anomaly
// actually bites in a given run is scheduling-dependent, the guarantee
// side never is.
func TestLinearZeroViolations(t *testing.T) {
	const width = 8
	const workers = 8
	const ops = 800
	run := func(front shm.Front) *shm.StressResult {
		n, err := shm.Compile(buildGraph(t, width), shm.Options{Kind: shm.KindMCS})
		if err != nil {
			t.Fatal(err)
		}
		// RandomDelay pauses every worker uniform [0, Delay] per node, so
		// tokens cross the network at genuinely different speeds — the
		// anomaly shape that drives the bare network's misordering — and
		// no worker subset can drain the shared op pool undelayed.
		cfg := shm.StressConfig{
			Net: n, Workers: workers, Ops: ops, Seed: 7,
			RandomDelay: true, Delay: 30 * time.Microsecond,
		}
		if front != nil {
			cfg.Front = front
		}
		res, err := shm.Stress(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	n, err := shm.Compile(buildGraph(t, width), shm.Options{Kind: shm.KindMCS})
	if err != nil {
		t.Fatal(err)
	}
	// Window 1<<20 keeps the controller out: every operation runs inside
	// a ModeLinear epoch, so the report is exactly the regime's guarantee.
	front, err := adaptive.New(n, adaptive.Options{LinearBelow: 1, Window: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	linRes := run(front)
	if linRes.Report.NonLinearizable > 0 {
		if w, ok := lincheck.FirstWitness(linRes.Ops); ok {
			t.Logf("witness: %s", w)
		}
		t.Fatalf("ModeLinear produced violations: %s", linRes.Report)
	}
	if m := front.Mode(); m != adaptive.ModeLinear {
		t.Fatalf("pinned counter drifted to %v", m)
	}

	bareRes := run(nil)
	t.Logf("bare network under the same anomalies: %s", bareRes.Report)
	if bareRes.Report.NonLinearizable == 0 && os.Getenv("COUNTNET_STRICT_TIMING") != "" {
		t.Error("W-anomaly injection produced no bare-network violations to contrast against")
	}
}

// TestFrontCombineExclusive checks the driver-level guard: the Front
// seam and the inline funnel cannot both be configured.
func TestFrontCombineExclusive(t *testing.T) {
	n, err := shm.Compile(buildGraph(t, 2), shm.Options{Kind: shm.KindMCS})
	if err != nil {
		t.Fatal(err)
	}
	front, err := adaptive.New(n, adaptive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shm.Stress(shm.StressConfig{
		Net: n, Workers: 1, Ops: 10, Front: front, Combine: true,
	}); err == nil {
		t.Fatal("Front+Combine accepted")
	}
}
