package adaptive_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"countnet/internal/bitonic"
	"countnet/internal/shm"
	"countnet/internal/shm/adaptive"
	"countnet/internal/topo"
)

// directFront is the static low-contention baseline: a single padded
// fetch-and-add counter behind the shm.Front seam, i.e. exactly what the
// adaptive counter's ModeDirect dispatch does but with no epoch gate, no
// sampling, and no controller. The gap between this row and the adaptive
// direct-regime row is therefore the full price of adaptivity.
type directFront struct {
	v atomic.Int64
	_ [56]byte
}

func (d *directFront) Next(input int, proc, tok int32, afterNode func(id topo.NodeID)) int64 {
	v := d.v.Add(1) - 1
	if afterNode != nil {
		afterNode(topo.NodeID(-1))
	}
	return v
}

// BenchmarkAdaptive is the crossover sweep behind BENCH_adaptive.json
// (EXPERIMENTS.md E25): the same fixed workload — 4096 tokens through a
// width-8 bitonic network — driven by worker counts from 1 to 256
// through each static backend (direct fetch-add, combining funnel, full
// network) and through the adaptive front-end, all via the identical
// shm.Stress driver. The acceptance bar is that at every worker count
// the adaptive row lands within 10% of the best static row: it should
// pay only its sampling/gate overhead at 1 worker and track whichever
// backend wins as contention grows.
// BenchmarkAdaptiveLinear quantifies the serialization cliff of the
// guaranteed-linearizable waiting regime (EXPERIMENTS.md E27): the same
// 4096-token width-8 workload with the front-end pinned to ModeLinear
// (LinearBelow far above any reachable occupancy, a huge sampling window
// so the controller never intervenes), against the bare network as the
// no-guarantee baseline. The waiting construction serializes responses —
// token v+1 cannot return before token v — so past the point where the
// network itself stops scaling, added workers only deepen the release
// chain. The sweep lands in BENCH_adaptive.json next to the E25 rows.
func BenchmarkAdaptiveLinear(b *testing.B) {
	g, err := bitonic.New(8)
	if err != nil {
		b.Fatal(err)
	}
	const ops = 4096
	for _, workers := range []int{1, 8, 32, 128, 256} {
		for _, eng := range []string{"network", "linear"} {
			b.Run(fmt.Sprintf("%s/p%d", eng, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					n, err := shm.Compile(g, shm.Options{Kind: shm.KindMCS})
					if err != nil {
						b.Fatal(err)
					}
					cfg := shm.StressConfig{Net: n, Workers: workers, Ops: ops, Seed: 1}
					if eng == "linear" {
						front, err := adaptive.New(n, adaptive.Options{
							LinearBelow: 1 << 20,
							Window:      1 << 20,
							EffWait:     cfg.EffWait(),
						})
						if err != nil {
							b.Fatal(err)
						}
						cfg.Front = front
					}
					b.StartTimer()
					res, err := shm.Stress(cfg)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.Throughput, "walkops/s")
				}
			})
		}
	}
}

func BenchmarkAdaptive(b *testing.B) {
	g, err := bitonic.New(8)
	if err != nil {
		b.Fatal(err)
	}
	const ops = 4096
	engines := []string{"direct", "combine", "network", "adaptive"}
	for _, workers := range []int{1, 8, 32, 128, 256} {
		for _, eng := range engines {
			b.Run(fmt.Sprintf("%s/p%d", eng, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					n, err := shm.Compile(g, shm.Options{Kind: shm.KindMCS})
					if err != nil {
						b.Fatal(err)
					}
					cfg := shm.StressConfig{Net: n, Workers: workers, Ops: ops, Seed: 1}
					switch eng {
					case "direct":
						cfg.Front = &directFront{}
					case "combine":
						cfg.Combine = true
						cfg.CombineWidth = 32
						cfg.CombineWindow = 20 * time.Microsecond
					case "adaptive":
						front, err := adaptive.New(n, adaptive.Options{
							CombineWindow: 20 * time.Microsecond,
							EffWait:       cfg.EffWait(),
						})
						if err != nil {
							b.Fatal(err)
						}
						cfg.Front = front
					}
					b.StartTimer()
					res, err := shm.Stress(cfg)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.Throughput, "walkops/s")
				}
			})
		}
	}
}
