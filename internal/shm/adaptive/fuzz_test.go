package adaptive_test

import (
	"sync"
	"testing"
	"time"

	"countnet/internal/bitonic"
	"countnet/internal/shm"
	"countnet/internal/shm/adaptive"
)

// FuzzAdaptiveSwitch fuzzes the epoch protocol with randomized arrival
// bursts interleaved with forced regime flips: each input byte is either
// a concurrent burst of 1..8 tokens or a forced drain-then-switch into a
// fuzzer-chosen mode. After the schedule, the invariants that define the
// adaptive counter must hold exactly — the issued values are the gapless
// permutation 0..n-1 with step-property tallies, and the closed epoch
// log conserves every token (each one attributed to exactly one epoch).
//
// Byte encoding: b < 0x80 issues a burst of (b&7)+1 tokens from distinct
// goroutines; b >= 0x80 forces SwitchTo(b mod 4) — the four-mode
// alphabet covers the guaranteed ModeLinear regime and its per-epoch
// turn reseed alongside the escalation ladder. Inputs are capped at 48
// actions to bound each case's goroutine count.
func FuzzAdaptiveSwitch(f *testing.F) {
	f.Add([]byte{0x07, 0x80, 0x07, 0x81, 0x07, 0x82, 0x07, 0x83, 0x07})
	f.Add([]byte{0x00, 0x82, 0x00, 0x80, 0x00})
	f.Add([]byte{0x81, 0x81, 0x81, 0x07, 0x07})
	f.Add([]byte{0x07, 0x07, 0x07, 0x07, 0x07, 0x07})
	f.Add([]byte{0x83, 0x07, 0x83, 0x07, 0x82, 0x07, 0x83, 0x07})
	f.Add([]byte{0x83, 0x83, 0x83, 0x07, 0x80, 0x07, 0x83, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		if len(data) > 48 {
			data = data[:48]
		}
		const width = 4
		g, err := bitonic.New(width)
		if err != nil {
			t.Fatal(err)
		}
		n, err := shm.Compile(g, shm.Options{Kind: shm.KindMCS})
		if err != nil {
			t.Fatal(err)
		}
		c, err := adaptive.New(n, adaptive.Options{
			Window: 32, Hold: 1,
			CombineWindow: 20 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		var vals []int64
		for _, b := range data {
			if b >= 0x80 {
				if err := c.SwitchTo(adaptive.Mode(b % 4)); err != nil {
					t.Fatal(err)
				}
				continue
			}
			burst := int(b&7) + 1
			out := make([]int64, burst)
			var wg sync.WaitGroup
			for i := 0; i < burst; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					tok := int32(len(vals) + i)
					out[i] = c.Next(int(tok)%width, int32(i), tok, nil)
				}(i)
			}
			wg.Wait()
			vals = append(vals, out...)
		}
		// Roll the live epoch closed so the log covers the whole run,
		// then check conservation and the permutation.
		if err := c.SwitchTo(c.Mode()); err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, e := range c.Epochs() {
			if e.Tokens < 0 {
				t.Fatalf("epoch %d issued %d tokens", e.Epoch, e.Tokens)
			}
			sum += e.Tokens
		}
		if sum != int64(len(vals)) {
			t.Fatalf("epoch log accounts for %d of %d tokens: %+v", sum, len(vals), c.Epochs())
		}
		seen := make([]bool, len(vals))
		for _, v := range vals {
			if v < 0 || v >= int64(len(vals)) || seen[v] {
				t.Fatalf("value %d duplicated or out of range [0,%d)", v, len(vals))
			}
			seen[v] = true
		}
	})
}
