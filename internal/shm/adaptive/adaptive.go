// Package adaptive is the contention-adaptive counter front-end: one
// shared counter whose internal structure follows the load it actually
// sees. At low contention tokens take a direct padded fetch-and-add
// counter (the fastest structure when nobody collides); at medium
// contention they rendezvous in the elimination/combining funnel
// (internal/shm/combine) in front of the counting network; at high
// contention they traverse the full-width balancing network, whose whole
// point is that no single memory word is hot. The regime choice is driven
// by a lightweight online estimate of the paper's Section 5 measure
// (Tog+W)/Tog — the empirical c2/c1 — together with occupancy and
// CAS-failure signals, with hysteresis so the mode does not flap.
//
// Mode switches preserve exact counting. Every token enters through a
// seqlock-style epoch gate: a switch closes the gate (odd value), waits
// for every in-flight token to drain, rolls the accounting epoch, swaps
// the backend, and reopens the gate (next even value). Each backend keeps
// a cumulative issue sequence, and a token's public value is
//
//	epoch.base + (backend sequence number - backend count at epoch start)
//
// so at every quiescent point the values handed out since creation form
// the gapless permutation 0..n-1 and therefore satisfy the step property
// on any output partition — the invariant the conformance harness checks
// differentially against the seven other engines. Because a switch only
// happens through a drained boundary, no interleaving can observe a
// half-switched structure.
//
// A fourth regime, ModeLinear, buys guaranteed linearizability the way
// the paper says it must be bought — by waiting: tokens traverse the
// network and then hold their responses until every smaller value in the
// epoch has been returned (a per-epoch turn counter seeded from the
// epoch's backend start). Options.LinearBelow makes the regime reachable
// from the controller: whenever the ladder picks a network-family regime
// at occupancy below the band, the engine serializes responses instead
// of running outside the guarantee; above the band it reverts to the
// practically-linearizable plain network.
//
// The Linearizable option implements the honest version of the paper's
// Corollary 3.12 trade: when the measured (Tog+W)/Tog ratio implies
// c2 > 2*c1 (k > 2), network-mode traffic is routed through a padded
// network with h*(k-2) prefix pass-through balancers per input instead of
// silently running a regime in which linearizability is no longer
// guaranteed. The padding costs depth, exactly as the paper says
// guaranteed linearizability must.
package adaptive

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"countnet/internal/core"
	"countnet/internal/obs"
	"countnet/internal/shm"
	"countnet/internal/shm/backoff"
	"countnet/internal/shm/combine"
	"countnet/internal/topo"
)

// Mode names one of the four counting structures.
type Mode int32

// The contention regimes. The first three are the escalation ladder, in
// order; ModeLinear sits beside the ladder as the guaranteed-ordering
// regime the controller enters when the user asked for linearizability
// (Options.LinearBelow) and the occupancy makes waiting affordable.
const (
	// ModeDirect serves tokens from a single padded fetch-and-add
	// counter: optimal when tokens rarely collide.
	ModeDirect Mode = iota
	// ModeCombine routes tokens through the elimination/combining funnel
	// in front of the network: medium contention, where pairing pays for
	// its rendezvous.
	ModeCombine
	// ModeNetwork sends every token through the full-width balancing
	// network: high contention, where only width keeps any one word cool.
	ModeNetwork
	// ModeLinear sends every token through the network and then holds its
	// response until every smaller value issued in the epoch has been
	// returned — the Herlihy-Shavit-Waarts waiting construction the paper
	// contrasts against, as a switchable regime: guaranteed
	// linearizability, paid for by serializing responses.
	ModeLinear
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeDirect:
		return "direct"
	case ModeCombine:
		return "combine"
	case ModeNetwork:
		return "network"
	case ModeLinear:
		return "linear"
	default:
		return fmt.Sprintf("mode(%d)", int32(m))
	}
}

// Defaults for Options.
const (
	// DefaultWindow is the default controller window in tokens.
	DefaultWindow = 512
	// DefaultHold is how many consecutive windows must agree on a regime
	// change before the switch happens (the hysteresis depth).
	DefaultHold = 2
	// DefaultDirectMax is the mean occupancy above which the direct
	// counter escalates to the combining funnel.
	DefaultDirectMax = 6
	// DefaultCombineMax is the mean occupancy above which the funnel
	// escalates to the full network.
	DefaultCombineMax = 48
	// DefaultRaceMax is the funnel CAS-failure-per-token rate above which
	// combine escalates to the network regardless of occupancy.
	DefaultRaceMax = 2.0
	// DefaultMaxPadK caps the Corollary 3.12 padding factor so a wildly
	// noisy ratio estimate cannot compile an unboundedly deep prefix.
	DefaultMaxPadK = 6
)

// sampleShift sets the ratio/occupancy sampling rate: one token in
// 1<<sampleShift is timed. Sampling keeps the hot path free of clock
// reads.
const sampleShift = 6

// stripes is the width of the striped in-flight census. Tokens add to the
// stripe hashed from their processor id, so the epoch gate's drain scan is
// the only place all stripes meet.
const stripes = 32

// Options configures a Counter.
type Options struct {
	// Kind is the toggle implementation used when compiling padded
	// networks (default shm.KindMCS, matching the main network).
	Kind shm.Kind
	// Window is the controller window in tokens (default DefaultWindow).
	Window int
	// Hold is the hysteresis depth in windows (default DefaultHold).
	Hold int
	// DirectMax and CombineMax are the escalation occupancy thresholds
	// (defaults DefaultDirectMax, DefaultCombineMax); de-escalation uses
	// half of each, so the two directions never share an edge. An
	// explicitly set CombineMax must exceed the (possibly defaulted)
	// DirectMax or New rejects the pair; only the zero value takes the
	// silent default.
	DirectMax  int
	CombineMax int
	// RaceMax is the combine-mode CAS-failure-per-token escalation
	// threshold (default DefaultRaceMax).
	RaceMax float64
	// Linearizable routes network-mode traffic through the Corollary 3.12
	// padded network whenever the measured (Tog+W)/Tog ratio implies
	// k > 2, instead of silently degrading.
	Linearizable bool
	// LinearBelow, when positive, asks for guaranteed ordering: whenever
	// the ladder would pick a network-family regime (combine or network)
	// and the mean occupancy sits below this band, the controller enters
	// ModeLinear instead — the network plus the waiting filter, whose
	// serialization cost is affordable exactly when few tokens overlap.
	// Above the band the engine reverts to the practically-linearizable
	// plain network; direct-counter epochs are untouched (a fetch-and-add
	// is already linearizable). A counter built with LinearBelow > 0
	// starts in ModeLinear, so the guarantee holds from the first token.
	LinearBelow int
	// MaxPadK caps the padding factor k (default DefaultMaxPadK).
	MaxPadK int
	// CombineWidth and CombineWindow configure the funnel (zero values
	// mean the combine package defaults).
	CombineWidth  int
	CombineWindow time.Duration
	// EffWait is the effective injected per-node delay in nanoseconds —
	// the W of the (Tog+W)/Tog estimate (0 when the workload injects no
	// delays).
	EffWait float64
	// Metrics, when non-nil, registers the adaptive metric family:
	// shm_adaptive_mode / _epoch gauges, shm_adaptive_switches_total,
	// the shm_adaptive_c2c1 ratio estimator, and the live occupancy
	// gauge.
	Metrics *obs.Registry
}

// EpochStat is the closed accounting record of one epoch.
type EpochStat struct {
	// Epoch is the epoch's sequence number, starting at 0.
	Epoch uint64
	// Mode is the structure that served the epoch.
	Mode Mode
	// Tokens is how many values the epoch handed out.
	Tokens int64
	// PadK is the Corollary 3.12 padding factor in effect (1 when the
	// epoch ran unpadded).
	PadK int
}

// Stats is a live snapshot of the counter.
type Stats struct {
	// Tokens is the total number of values handed out so far.
	Tokens int64
	// Mode is the current regime and Epoch the current epoch number.
	Mode  Mode
	Epoch uint64
	// Switches counts completed drain-then-switch transitions.
	Switches int64
	// PerMode tallies tokens by the mode that served them (closed epochs
	// plus the live one).
	PerMode [4]int64
	// Ratio is the live (Tog+W)/Tog estimate (+Inf before any sample).
	Ratio float64
	// PadK is the padding factor the live epoch runs under (1 = none).
	PadK int
}

// pad64 is an atomic counter on its own cache line.
type pad64 struct {
	v atomic.Int64
	_ [56]byte
}

// epoch is the immutable state tokens read through the gate: the regime,
// the value base, and the backend serving it. A new epoch is installed
// only at a drained boundary, so its fields never change while visible.
type epoch struct {
	id   uint64
	mode Mode
	base int64 // values handed out before this epoch
	strt int64 // backend cumulative issue count at epoch start
	net  *shm.Network
	padK int // Corollary 3.12 factor of net (1 = unpadded)
}

// Counter is the adaptive front-end. Safe for concurrent use by any
// number of goroutines.
type Counter struct {
	// gate is a seqlock: even = open, odd = switching.
	gate     atomic.Int64          //countnet:gate
	cur      atomic.Pointer[epoch] //countnet:gated
	inflight [stripes]pad64        //countnet:gatecensus

	direct pad64 // the ModeDirect backend's cumulative sequence
	// turn is the ModeLinear release counter: the next raw backend value
	// allowed to return. Reseeded from the epoch's backend start at every
	// switch into a linear epoch, which happens at a drained boundary, so
	// token-side loads never race the reseed.
	turn   pad64
	net    *shm.Network
	funnel *combine.Funnel
	opts   Options

	// Sampled-token accumulators feeding the controller; reset each
	// window under ctlMu.
	occSum atomic.Int64
	occN   atomic.Int64
	ratio  *obs.Ratio //countnet:allow obsvet -- never nil; New substitutes an unregistered estimator

	// Controller state, all under ctlMu.
	ctlMu     sync.Mutex
	want      Mode // regime the last disagreeing window voted for
	agree     int  // consecutive windows voting for want
	lastRaces int64
	lastToks  int64

	// Switch state under switchMu: padded-network cache and the epoch
	// log.
	switchMu sync.Mutex //countnet:gatelock
	padded   map[int]paddedNet
	epochs   []EpochStat
	switches atomic.Int64

	// Registry gauges; never nil — New substitutes unregistered no-ops.
	modeGauge  *obs.Gauge //countnet:allow obsvet -- never nil; New substitutes an unregistered no-op
	epochGauge *obs.Gauge //countnet:allow obsvet -- never nil; New substitutes an unregistered no-op
}

// New returns an adaptive counter over the compiled network. The network
// is the high-contention backend and the funnel's downstream; the direct
// counter and any Corollary 3.12 padded variants are created internally.
// The counter starts in ModeDirect (an empty counter has no contention).
func New(n *shm.Network, opts Options) (*Counter, error) {
	if n == nil {
		return nil, fmt.Errorf("adaptive: nil network")
	}
	if opts.Kind == 0 {
		opts.Kind = shm.KindMCS
	}
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	if opts.Hold <= 0 {
		opts.Hold = DefaultHold
	}
	if opts.DirectMax <= 0 {
		opts.DirectMax = DefaultDirectMax
	}
	if opts.CombineMax == 0 {
		opts.CombineMax = DefaultCombineMax
		if opts.CombineMax <= opts.DirectMax {
			opts.CombineMax = 2 * opts.DirectMax
		}
	} else if opts.CombineMax <= opts.DirectMax {
		// An explicit threshold pair that cannot order the ladder is a
		// configuration bug; rewriting it silently would hide the mistake.
		return nil, fmt.Errorf("adaptive: CombineMax (%d) must exceed DirectMax (%d)",
			opts.CombineMax, opts.DirectMax)
	}
	if opts.RaceMax <= 0 {
		opts.RaceMax = DefaultRaceMax
	}
	if opts.MaxPadK < 2 {
		opts.MaxPadK = DefaultMaxPadK
	}
	if opts.LinearBelow < 0 {
		return nil, fmt.Errorf("adaptive: negative LinearBelow (%d)", opts.LinearBelow)
	}
	c := &Counter{
		net:    n,
		opts:   opts,
		padded: map[int]paddedNet{1: {net: n, padK: 1}},
		funnel: combine.New(combine.Options{
			Width:   opts.CombineWidth,
			Window:  opts.CombineWindow,
			Metrics: opts.Metrics,
		}),
	}
	if reg := opts.Metrics; reg != nil {
		c.ratio = reg.Ratio("shm_adaptive_c2c1", opts.EffWait)
		c.modeGauge = reg.Gauge("shm_adaptive_mode")
		c.epochGauge = reg.Gauge("shm_adaptive_epoch")
		reg.GaugeFunc("shm_adaptive_switches_total", func() float64 {
			return float64(c.switches.Load())
		})
		reg.GaugeFunc("shm_adaptive_occupancy", func() float64 {
			return float64(c.census())
		})
	} else {
		c.ratio = obs.NewRatio(opts.EffWait)
		c.modeGauge = &obs.Gauge{}
		c.epochGauge = &obs.Gauge{}
	}
	first := &epoch{mode: ModeDirect, padK: 1}
	if opts.LinearBelow > 0 {
		// The user asked for guaranteed ordering: start in ModeLinear so
		// the guarantee holds from the first token (an empty counter is
		// trivially below the band). The backend starts at zero, so the
		// turn counter's zero value is already correctly seeded.
		first = &epoch{mode: ModeLinear, net: n, padK: 1}
	}
	//countnet:allow gatevet -- the constructor publishes the first epoch before any reader exists, so no gate is needed
	c.cur.Store(first)
	return c, nil
}

// Mode returns the current regime.
//
//countnet:allow gatevet -- advisory snapshot; epochs are immutable once published, only their currency is racy
func (c *Counter) Mode() Mode { return c.cur.Load().mode }

// Epoch returns the current epoch number.
//
//countnet:allow gatevet -- advisory snapshot; epochs are immutable once published, only their currency is racy
func (c *Counter) Epoch() uint64 { return c.cur.Load().id }

// Ratio returns the live (Tog+W)/Tog estimator.
func (c *Counter) Ratio() *obs.Ratio { return c.ratio }

// Next draws the next counter value. input selects the network input wire
// used in the network regimes; proc identifies the calling worker (it
// stripes the in-flight census and trace identities) and tok its
// operation index; afterNode is the paper's W-delay injection hook,
// invoked once per visited node (once, with node -1, in ModeDirect, which
// has a single logical node).
//
//countnet:hotpath
func (c *Counter) Next(input int, proc, tok int32, afterNode func(id topo.NodeID)) int64 {
	slot, ep := c.enter(proc)
	sampled := (uint32(proc)*0x9e3779b9+uint32(tok))&(1<<sampleShift-1) == 0
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	raw := c.dispatch(ep, input, proc, tok, afterNode)
	if sampled {
		c.sample(ep, time.Since(t0))
	}
	c.inflight[slot].v.Add(-1)
	if sampled && c.occN.Load() >= c.windowSamples() {
		c.control()
	}
	return ep.base + raw - ep.strt
}

// enter passes the epoch gate: it registers the token in the striped
// in-flight census and returns the stripe index plus the epoch the token
// runs in. The gate is checked before the census increment, so once a
// switch has closed the gate, newly arriving tokens never touch the
// census — only the bounded set already past their first gate check can
// blip a stripe, which keeps the switcher's drain scan from being held
// nonzero forever by sustained arrivals. The common open-gate path is
// two loads and one RMW. With sequentially consistent atomics, either
// the switcher's drain scan sees the increment (and waits for the
// token), or the re-check after the increment sees the odd gate (and
// the token backs out). Either way no token runs in a retired epoch.
//
//countnet:hotpath
func (c *Counter) enter(proc int32) (int, *epoch) {
	slot := int(uint32(proc) % stripes)
	if c.gate.Load()&1 == 0 {
		c.inflight[slot].v.Add(1)
		if c.gate.Load()&1 == 0 {
			return slot, c.cur.Load()
		}
		c.inflight[slot].v.Add(-1)
	}
	var bo backoff.Backoff
	for {
		bo.Wait()
		if c.gate.Load()&1 == 0 {
			c.inflight[slot].v.Add(1)
			if c.gate.Load()&1 == 0 {
				return slot, c.cur.Load()
			}
			c.inflight[slot].v.Add(-1)
		}
	}
}

// dispatch routes one token through the epoch's structure and returns the
// backend's raw sequence value.
func (c *Counter) dispatch(ep *epoch, input int, proc, tok int32, afterNode func(id topo.NodeID)) int64 {
	switch ep.mode {
	case ModeDirect:
		v := c.direct.v.Add(1) - 1
		if afterNode != nil {
			afterNode(-1)
		}
		return v
	case ModeCombine:
		return c.funnel.Do(1, func(demand int) []int64 {
			return ep.net.TraverseBatch(input, demand, proc, tok, afterNode)
		})[0]
	case ModeLinear:
		v := ep.net.TraverseObs(input, proc, tok, afterNode)
		c.waitTurn(v)
		return v
	default:
		return ep.net.TraverseObs(input, proc, tok, afterNode)
	}
}

// waitTurn holds a ModeLinear response until every smaller raw value in
// the epoch has been released, then releases v itself. The wait runs
// inside dispatch — before Next's census decrement — so a waiting token
// still counts as in-flight and a concurrent drain waits for it. The
// drain always terminates: with the gate closed the in-flight set is
// fixed, each of its tokens obtains a distinct value from the contiguous
// backend sequence, and the holder of the smallest unreleased value is
// never blocked — so the chain releases in value order until the census
// reaches zero.
//
//countnet:hotpath
func (c *Counter) waitTurn(v int64) {
	if c.turn.v.Load() != v {
		var bo backoff.Backoff
		for c.turn.v.Load() != v {
			bo.Wait()
		}
	}
	c.turn.v.Store(v + 1)
}

// sample folds one timed token into the controller's accumulators: the
// per-node wait into the (Tog+W)/Tog estimator and the instantaneous
// census into the occupancy average.
//
// The estimator wants the pure toggle wait Tog, but the dispatch latency
// includes the injected W delay the workload adds at every visited node.
// Feeding (Tog+W) in as Tog would clamp the measured ratio below
// 1 + W/(Tog+W) < 2 and the Corollary 3.12 padding could never engage
// from a real measurement, so the configured effective per-node W is
// subtracted first. EffWait is the workload's *average* injected delay,
// so the subtraction is exact in expectation across samples; the 1ns
// floor keeps an undelayed sample from going negative (and keeps a
// measured near-zero Tog distinct from "no observations yet", which
// padK treats as no data). The floor can only raise the ratio, i.e. pad
// earlier than strictly necessary, never later.
//
// Combine-mode latencies are dominated by the funnel rendezvous window,
// not balancer waits — a waiting token never visits a balancer at all —
// so they are excluded: folding them in would inflate Tog, deflate the
// ratio, and delay padding the measurement does not justify. Linear-mode
// latencies are excluded for the same reason: they are dominated by the
// turn wait, which is serialization cost, not toggle wait.
func (c *Counter) sample(ep *epoch, d time.Duration) {
	if ep.mode != ModeCombine && ep.mode != ModeLinear {
		nodes := int64(1)
		if ep.mode != ModeDirect {
			nodes = int64(ep.net.Graph().Depth()) + 1
		}
		per := d.Nanoseconds()/nodes - int64(c.opts.EffWait)
		if per < 1 {
			per = 1
		}
		c.ratio.Observe(per)
	}
	c.occSum.Add(c.census())
	c.occN.Add(1)
}

// census sums the striped in-flight counters. The value is approximate
// under concurrent traffic, which is all the controller needs.
func (c *Counter) census() int64 {
	var n int64
	for i := range c.inflight {
		n += c.inflight[i].v.Load()
	}
	return n
}

// windowSamples converts the configured token window into a sampled-token
// quota.
func (c *Counter) windowSamples() int64 {
	n := int64(c.opts.Window >> sampleShift)
	if n < 1 {
		n = 1
	}
	return n
}

// backendTotal returns the cumulative issue count of the epoch's backend:
// the direct counter's value, or the sum of the backend network's output
// counters. Exact only at a drained boundary, which is the only place the
// switcher reads it.
func (c *Counter) backendTotal(ep *epoch) int64 {
	if ep.mode == ModeDirect {
		return c.direct.v.Load()
	}
	return netTotal(ep.net)
}

// netTotal sums a network's output counters: its cumulative issue count.
func netTotal(n *shm.Network) int64 {
	var t int64
	for _, v := range n.CounterCounts() {
		t += v
	}
	return t
}

// Stats returns a live snapshot. The per-mode tallies attribute the live
// epoch's tokens by its backend total, so they are exact at quiescence.
func (c *Counter) Stats() Stats {
	c.switchMu.Lock()
	defer c.switchMu.Unlock()
	ep := c.cur.Load()
	live := c.backendTotal(ep) - ep.strt
	s := Stats{
		Tokens:   ep.base + live,
		Mode:     ep.mode,
		Epoch:    ep.id,
		Switches: c.switches.Load(),
		Ratio:    c.ratio.Value(),
		PadK:     ep.padK,
	}
	for _, e := range c.epochs {
		s.PerMode[e.Mode] += e.Tokens
	}
	s.PerMode[ep.mode] += live
	return s
}

// Epochs returns the closed epochs' accounting records. The live epoch is
// not included; roll it with SwitchTo first when a complete log is
// needed.
func (c *Counter) Epochs() []EpochStat {
	c.switchMu.Lock()
	defer c.switchMu.Unlock()
	return append([]EpochStat(nil), c.epochs...)
}

// SwitchTo forces a drain-then-switch transition into the given mode,
// rolling the accounting epoch even when the mode is unchanged (which
// makes it double as a drain point for tests and shutdown accounting).
// It must not be called from inside a Next invocation on the same
// goroutine — the drain would wait for the caller's own census entry.
func (c *Counter) SwitchTo(m Mode) error {
	if m < ModeDirect || m > ModeLinear {
		return fmt.Errorf("adaptive: unknown mode %d", int32(m))
	}
	c.switchMu.Lock()
	defer c.switchMu.Unlock()
	c.switchLocked(m)
	return nil
}

// switchLocked executes the drain-then-switch protocol. Caller holds
// switchMu.
//
//countnet:gateheld
func (c *Counter) switchLocked(m Mode) {
	old := c.cur.Load()
	c.gate.Add(1) // even -> odd: close the gate
	var bo backoff.Backoff
	for c.census() > 0 {
		bo.Wait()
	}
	// Drained: every token that entered epoch `old` has exited, so the
	// backend totals are exact and the step property holds on every
	// structure.
	issued := c.backendTotal(old) - old.strt
	c.epochs = append(c.epochs, EpochStat{
		Epoch: old.id, Mode: old.mode, Tokens: issued, PadK: old.padK,
	})
	next := &epoch{
		id:   old.id + 1,
		mode: m,
		base: old.base + issued,
		padK: 1,
	}
	if m != ModeDirect {
		next.net, next.padK = c.pickNet(m)
		next.strt = netTotal(next.net)
	} else {
		next.strt = c.direct.v.Load()
	}
	if m == ModeLinear {
		// Seed the per-epoch turn counter: the first raw value the new
		// epoch's backend will issue is also the first allowed to return.
		// The gate is closed and the census drained, so no token-side
		// waitTurn can race this store.
		c.turn.v.Store(next.strt)
	}
	c.cur.Store(next)
	if old.mode != m {
		c.switches.Add(1)
	}
	c.modeGauge.Set(int64(m))
	c.epochGauge.Set(int64(next.id))
	c.gate.Add(1) // odd -> next even: reopen
}

// paddedNet is one entry of the padded-network cache: the compiled
// network together with the Corollary 3.12 factor its graph actually
// has. The two can differ from the cache key when a pad/compile failure
// fell back to the plain network — the entry then records padK = 1, so
// no epoch ever reports padding its graph does not have.
type paddedNet struct {
	net  *shm.Network
	padK int
}

// compilePadded is the padded-network compile seam; the padK-fallback
// regression test stubs it to force a deterministic failure.
var compilePadded = func(g *topo.Graph, opts shm.Options) (*shm.Network, error) {
	return shm.Compile(g, opts)
}

// pickNet selects the network the next epoch traverses and the padding
// factor that network really has: the plain one, or — for a ModeNetwork
// epoch under the Linearizable option when the measured ratio implies
// k > 2 — the Corollary 3.12 padded variant for the smallest k covering
// the estimate, compiled once and cached. Combine and linear epochs
// always get the plain network: padding applies to network-mode traffic
// only (matching the Options.Linearizable contract and control()'s repad
// check, which re-rolls only ModeNetwork epochs when the estimate
// moves), and a linear epoch's waiting already guarantees what padding
// buys. Compile failures fall back to the plain network (padding is an
// optimization of the guarantee, never of correctness) — cached under
// the requested key but carrying its true factor 1, so the epoch log
// never claims padding that does not exist and the repad check keeps
// seeing the epoch as unpadded.
func (c *Counter) pickNet(m Mode) (*shm.Network, int) {
	k := 1
	if m == ModeNetwork {
		k = c.padK()
	}
	if p, ok := c.padded[k]; ok {
		return p.net, p.padK
	}
	g := c.net.Graph()
	padded, err := topo.Pad(g, core.PaddingLength(g.Depth(), k))
	if err != nil {
		c.padded[k] = paddedNet{net: c.net, padK: 1}
		return c.net, 1
	}
	n, err := compilePadded(padded, shm.Options{Kind: c.opts.Kind})
	if err != nil {
		c.padded[k] = paddedNet{net: c.net, padK: 1}
		return c.net, 1
	}
	c.padded[k] = paddedNet{net: n, padK: k}
	return n, k
}

// padK returns the Corollary 3.12 factor implied by the live ratio
// estimate: the smallest integer k with ratio <= k, clamped to
// [1, MaxPadK]; 1 (no padding) unless the Linearizable option is set and
// the estimate implies k > 2.
func (c *Counter) padK() int {
	if !c.opts.Linearizable {
		return 1
	}
	r := c.ratio.Value()
	if math.IsInf(r, 1) || math.IsNaN(r) || r <= 2 {
		return 1
	}
	k := int(math.Ceil(r))
	if k > c.opts.MaxPadK {
		k = c.opts.MaxPadK
	}
	if k <= 2 {
		return 1
	}
	return k
}
