// The hysteretic regime controller. It runs on whichever worker
// goroutine happens to close a sampling window (there is no background
// thread — an idle counter makes no decisions), reads the window's mean
// occupancy plus the funnel's CAS-failure rate, votes for a regime, and
// only executes a drain-then-switch once Hold consecutive windows have
// cast the same vote. Escalation and de-escalation use different
// thresholds (the de-escalation edge is half the escalation edge), so a
// load sitting exactly on a boundary cannot make the counter flap.
package adaptive

// control closes one sampling window and maybe switches regime. Called
// from Next after the triggering token has left the in-flight census —
// never before, or the drain below would wait for the caller itself.
// TryLock makes concurrent closers cheap: one worker arbitrates, the
// rest go back to counting.
//
//countnet:coldpath
func (c *Counter) control() {
	if !c.ctlMu.TryLock() {
		return
	}
	defer c.ctlMu.Unlock()
	n := c.occN.Swap(0)
	sum := c.occSum.Swap(0)
	if n == 0 {
		return
	}
	occ := float64(sum) / float64(n)
	//countnet:allow gatevet -- controller snapshot only; the transition re-reads the epoch under switchMu before switching
	ep := c.cur.Load()
	want := c.vote(ep.mode, occ)

	// A same-mode vote normally resets the hysteresis run — except when
	// the Linearizable option finds the live epoch's padding stale: a
	// re-switch into the same mode is then a real transition (it rolls
	// the epoch onto the freshly implied k) and earns the same
	// hysteresis treatment as a mode change.
	repad := want == ep.mode && ep.mode == ModeNetwork &&
		c.opts.Linearizable && c.padK() != ep.padK
	if want == ep.mode && !repad {
		c.agree = 0
		return
	}
	if want == c.want && c.agree > 0 {
		c.agree++
	} else {
		c.want = want
		c.agree = 1
	}
	if c.agree < c.opts.Hold {
		return
	}
	c.agree = 0
	c.switchMu.Lock()
	defer c.switchMu.Unlock()
	// Re-read under switchMu: a forced SwitchTo may have landed between
	// the vote and here, and a stale transition must not undo it.
	if cur := c.cur.Load(); cur.mode == ep.mode && cur.id == ep.id {
		c.switchLocked(want)
	}
}

// vote maps one window's signals to the regime the controller wants.
// The ladder escalates on mean occupancy — DirectMax collisions justify
// the funnel's rendezvous cost, CombineMax justify the network's depth —
// and de-escalates only below half of each edge. In combine mode a
// CAS-failure rate above RaceMax per token escalates regardless of
// occupancy: losing that many claim races means the slots themselves
// have become the hot spot the network exists to avoid.
//
// When the user asked for guaranteed ordering (Options.LinearBelow),
// ModeLinear overrides any network-family vote while the occupancy makes
// waiting affordable: a linear epoch stays linear below the band, and a
// combine/network vote enters ModeLinear only below half the band — the
// same split-edge hysteresis the ladder uses, so the guarantee boundary
// cannot flap either. Direct votes pass through untouched: a single
// fetch-and-add is already linearizable, no waiting required. Within the
// occupancy ladder a linear epoch counts as its network-family cousin
// (it is the network, plus waiting).
func (c *Counter) vote(mode Mode, occ float64) Mode {
	ladder := mode
	if ladder == ModeLinear {
		ladder = ModeNetwork
	}
	want := c.ladderVote(ladder, occ)
	if lb := float64(c.opts.LinearBelow); lb > 0 && want != ModeDirect {
		switch {
		case mode == ModeLinear && occ < lb:
			return ModeLinear // stay: not high enough to abandon the guarantee
		case occ < lb/2:
			return ModeLinear // enter: waiting is clearly affordable
		}
	}
	return want
}

// ladderVote is the three-regime occupancy/race ladder.
func (c *Counter) ladderVote(mode Mode, occ float64) Mode {
	if mode == ModeCombine && c.raceRate() > c.opts.RaceMax {
		return ModeNetwork
	}
	switch {
	case occ >= float64(c.opts.CombineMax):
		return ModeNetwork
	case occ >= float64(c.opts.DirectMax):
		if mode == ModeNetwork && occ >= float64(c.opts.CombineMax)/2 {
			return ModeNetwork // hysteresis band: not low enough to drop
		}
		return ModeCombine
	case occ >= float64(c.opts.DirectMax)/2 && mode != ModeDirect:
		return ModeCombine // hysteresis band: not low enough to go direct
	default:
		return ModeDirect
	}
}

// raceRate returns the funnel's CAS failures per token since the last
// call (0 when no tokens passed). Deltas, not totals: the controller
// judges the window, not the counter's whole history.
func (c *Counter) raceRate() float64 {
	st := c.funnel.Stats()
	dr := st.Races - c.lastRaces
	dt := st.Tokens - c.lastToks
	c.lastRaces = st.Races
	c.lastToks = st.Tokens
	if dt <= 0 {
		return 0
	}
	return float64(dr) / float64(dt)
}
