package adaptive

import (
	"fmt"
	"testing"

	"countnet/internal/bitonic"
	"countnet/internal/shm"
	"countnet/internal/topo"
)

// TestPickNetFallbackPadK is the regression test for the padK-accounting
// bug in pickNet's compile-failure fallback: the plain network used to
// be cached under the padded key k, so every later cache hit returned it
// claiming padK = k — the epoch log reported Corollary 3.12 padding that
// did not exist and control()'s repad check believed the epoch already
// padded. The fallback must report padK = 1 on the first failure, on
// every cache hit after it, and in every epoch record — and the repad
// check must keep re-firing, because the padding the estimate calls for
// is genuinely not in place.
func TestPickNetFallbackPadK(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := shm.Compile(g, shm.Options{Kind: shm.KindMCS})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(n, Options{Linearizable: true, EffWait: 3000})
	if err != nil {
		t.Fatal(err)
	}
	c.Ratio().Observe(1000) // (1000+3000)/1000 = 4: the estimate calls for k = 4

	orig := compilePadded
	defer func() { compilePadded = orig }()
	compiles := 0
	compilePadded = func(g *topo.Graph, opts shm.Options) (*shm.Network, error) {
		compiles++
		return nil, fmt.Errorf("forced compile failure %d", compiles)
	}

	for round := 1; round <= 2; round++ {
		// Round 1 takes the failing compile path; round 2 hits the cache —
		// the call pattern that used to fabricate padK = k.
		if err := c.SwitchTo(ModeNetwork); err != nil {
			t.Fatal(err)
		}
		ep := c.cur.Load()
		if ep.padK != 1 {
			t.Fatalf("round %d: live epoch claims padK = %d for the unpadded fallback", round, ep.padK)
		}
		if st := c.Stats(); st.PadK != 1 {
			t.Fatalf("round %d: Stats.PadK = %d, want 1", round, st.PadK)
		}
		if got := c.padK(); got != 4 || got == ep.padK {
			t.Fatalf("round %d: repad check dead: padK() = %d vs epoch padK = %d", round, got, ep.padK)
		}
		for tok := int32(0); tok < 8; tok++ {
			c.Next(int(tok)%4, 0, tok+int32(round)*8, nil)
		}
	}
	if compiles != 1 {
		t.Fatalf("compile attempted %d times, want 1 (fallback not cached)", compiles)
	}
	if err := c.SwitchTo(ModeDirect); err != nil {
		t.Fatal(err)
	}
	for _, e := range c.Epochs() {
		if e.PadK != 1 {
			t.Fatalf("epoch %d (%v) recorded padK = %d with no padded network compiled", e.Epoch, e.Mode, e.PadK)
		}
	}
}
