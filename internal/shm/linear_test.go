package shm

import (
	"sync"
	"testing"
	"time"

	"countnet/internal/dtree"
	"countnet/internal/lincheck"
	"countnet/internal/topo"
)

func TestFilterSequential(t *testing.T) {
	g, err := dtree.New(4)
	if err != nil {
		t.Fatal(err)
	}
	n := compile(t, g, Options{Kind: KindMCS})
	f := NewFilter(n)
	for k := 0; k < 20; k++ {
		if v := f.Traverse(0); v != int64(k) {
			t.Fatalf("value %d != %d", v, k)
		}
	}
	if f.Returned() != 20 {
		t.Fatalf("Returned = %d", f.Returned())
	}
}

// TestFilterIsLinearizable checks the whole point: under the same injected
// anomalies that make the bare network return out-of-order values, the
// filtered counter never produces a non-linearizable operation.
func TestFilterIsLinearizable(t *testing.T) {
	g, err := dtree.New(8)
	if err != nil {
		t.Fatal(err)
	}
	n := compile(t, g, Options{Kind: KindMCS})
	f := NewFilter(n)
	rec := lincheck.NewRecorder(1600)
	base := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				start := time.Since(base)
				var v int64
				if w == 0 {
					// One chronically slow worker: pause mid-operation by
					// traversing with a stall hook.
					v = f.slowTraverse(0, 5*time.Microsecond)
				} else {
					v = f.Traverse(0)
				}
				rec.Record(int64(start), int64(time.Since(base)), v)
			}
		}(w)
	}
	wg.Wait()
	if rep := rec.Analyze(); !rep.Linearizable() {
		t.Errorf("filtered counter produced violations: %v", rep)
	}
}

// slowTraverse is Traverse with a stall after every node, used to inject
// the paper's W anomaly inside the network. The wait-then-release step is
// the filter's own, so the test path cannot drift from the real one.
func (f *Filter) slowTraverse(input int, stall time.Duration) int64 {
	return f.release(f.net.TraverseHook(input, func(topo.NodeID) {
		deadline := time.Now().Add(stall)
		for time.Now().Before(deadline) {
		}
	}))
}
