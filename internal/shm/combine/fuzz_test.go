package combine

import (
	"testing"
	"time"
)

// FuzzCombineExchange drives the slot pairing protocol — camp, claim,
// withdraw, represent, and the idle Do path — through arbitrary
// single-threaded interleavings decoded from the fuzz input, modelling
// the schedules a representative and its campers can produce (arrive,
// pair, time out, cancel). The model counter is a plain fetch-and-add,
// so the checked invariants are exact:
//
//   - a claim returns only a waiter that camped and was not withdrawn
//   - a withdraw succeeds iff no claim got there first
//   - every delivered share has exactly the waiter's demand
//   - the union of all deliveries is a gapless permutation of the
//     counter's output
//   - all slots are empty at quiescence
//
// Each input byte is one protocol step: the low two bits select the
// operation (claim-and-represent, camp, withdraw, full Do call) and the
// high bits its operand (slot or waiter index, demand).
func FuzzCombineExchange(f *testing.F) {
	f.Add([]byte{0x01, 0x00})                         // camp slot 0, claim it
	f.Add([]byte{0x01, 0x02})                         // camp slot 0, withdraw it
	f.Add([]byte{0x01, 0x05, 0x04, 0x00, 0x03})       // camp 0 and 1, claim both, idle Do
	f.Add([]byte{0x03, 0x07, 0x0b})                   // idle Do calls only
	f.Add([]byte{0x01, 0x05, 0x09, 0x0d, 0x02, 0x00}) // fill slots, withdraw, claim
	f.Add([]byte{0x00, 0x02, 0x01, 0x01})             // claim/withdraw on empty slots first

	f.Fuzz(func(t *testing.T, data []byte) {
		fz := New(Options{Width: 4, Window: time.Millisecond})
		var next int64
		trav := func(demand int) []int64 {
			vals := make([]int64, demand)
			for i := range vals {
				vals[i] = next + int64(i)
			}
			next += int64(demand)
			return vals
		}

		type camped struct {
			slot int
			w    *waiter
		}
		var camps []camped
		var got []int64
		forget := func(w *waiter) {
			for i, c := range camps {
				if c.w == w {
					camps = append(camps[:i], camps[i+1:]...)
					return
				}
			}
			t.Fatal("claimed a waiter that never camped or was already withdrawn")
		}

		for _, b := range data {
			op, arg := int(b&3), int(b>>2)
			switch op {
			case 0: // a colliding token claims at a slot and represents
				if w, ok := fz.tryClaim(arg % fz.Width()); ok {
					forget(w)
					got = append(got, fz.represent([]*waiter{w}, 1+arg%2, trav)...)
					share := <-w.res
					if len(share) != w.demand {
						t.Fatalf("partner got %d values for demand %d", len(share), w.demand)
					}
					got = append(got, share...)
				}
			case 1: // a new token camps
				w := &waiter{demand: 1 + arg%3, res: make(chan []int64, 1)}
				if fz.camp(arg%fz.Width(), w) {
					camps = append(camps, camped{arg % fz.Width(), w})
				}
			case 2: // a camped token's window expires: withdraw, traverse alone
				if len(camps) == 0 {
					continue
				}
				c := camps[arg%len(camps)]
				if !fz.withdraw(c.slot, c.w) {
					// Single-threaded: only case 0 claims, and it forgets the
					// waiter, so a tracked camper must still be withdrawable.
					t.Fatal("withdraw failed for an unclaimed camper")
				}
				forget(c.w)
				got = append(got, fz.run(trav, c.w.demand)...)
			case 3: // a full Do call; alone in the funnel it takes the idle path
				got = append(got, fz.Do(1+arg%2, trav)...)
			}
		}
		// Quiesce: every still-camped token times out and walks alone.
		for len(camps) > 0 {
			c := camps[0]
			if !fz.withdraw(c.slot, c.w) {
				t.Fatal("withdraw failed during drain")
			}
			forget(c.w)
			got = append(got, fz.run(trav, c.w.demand)...)
		}

		if int64(len(got)) != next {
			t.Fatalf("delivered %d values, counter issued %d", len(got), next)
		}
		seen := make([]bool, next)
		for _, v := range got {
			if v < 0 || v >= next || seen[v] {
				t.Fatalf("value %d duplicated or out of range [0,%d)", v, next)
			}
			seen[v] = true
		}
		for i := range fz.slots {
			if fz.slots[i].w.Load() != nil {
				t.Fatalf("slot %d not empty at quiescence", i)
			}
		}
		if s := fz.Stats(); s.Tokens != s.Idle {
			// Only case 3 goes through Do, always alone.
			t.Fatalf("idle-path accounting: %+v", s)
		}
	})
}
