package combine

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"countnet/internal/obs"
)

// counterTraverse returns a Traverse backed by a shared fetch-and-add,
// the simplest exact counter: values handed out are globally unique and
// gapless, so any funnel bug that duplicates or drops a delivery shows
// up as a broken permutation.
func counterTraverse(next *atomic.Int64) Traverse {
	return func(demand int) []int64 {
		base := next.Add(int64(demand)) - int64(demand)
		vals := make([]int64, demand)
		for i := range vals {
			vals[i] = base + int64(i)
		}
		return vals
	}
}

func TestIdleFastPath(t *testing.T) {
	f := New(Options{Width: 4})
	var next atomic.Int64
	vals := f.Do(3, counterTraverse(&next))
	if len(vals) != 3 {
		t.Fatalf("Do returned %d values for demand 3", len(vals))
	}
	for i, v := range vals {
		if v != int64(i) {
			t.Errorf("vals[%d] = %d", i, v)
		}
	}
	s := f.Stats()
	if s.Tokens != 1 || s.Idle != 1 || s.Pairs != 0 || s.Partners != 0 || s.Timeouts != 0 || s.Solo != 0 {
		t.Errorf("stats after idle token: %+v", s)
	}
}

func TestDoRejectsBadDemand(t *testing.T) {
	f := New(Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("demand 0 accepted")
		}
	}()
	f.Do(0, func(int) []int64 { return nil })
}

func TestRunChecksTraverseContract(t *testing.T) {
	f := New(Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("short traversal accepted")
		}
	}()
	f.Do(2, func(int) []int64 { return []int64{7} })
}

// TestRepresentDelivery drives the delivery half of the protocol
// directly: a representative with demand 2 serving partners of demand 1
// and 2 must hand each partner exactly its share of one combined walk.
func TestRepresentDelivery(t *testing.T) {
	f := New(Options{Width: 4})
	var next atomic.Int64
	w1 := &waiter{demand: 1, res: make(chan []int64, 1)}
	w2 := &waiter{demand: 2, res: make(chan []int64, 1)}

	own := f.represent([]*waiter{w1, w2}, 2, counterTraverse(&next))
	got1, got2 := <-w1.res, <-w2.res
	if len(own) != 2 || len(got1) != 1 || len(got2) != 2 {
		t.Fatalf("shares %d/%d/%d for demands 2/1/2", len(own), len(got1), len(got2))
	}
	if cap(got1) != 1 || cap(got2) != 2 {
		t.Errorf("partner shares alias past their demand: caps %d/%d", cap(got1), cap(got2))
	}
	seen := make(map[int64]bool)
	for _, v := range append(append(append([]int64{}, own...), got1...), got2...) {
		if v < 0 || v >= 5 || seen[v] {
			t.Fatalf("value %d outside the combined walk's 0..4", v)
		}
		seen[v] = true
	}
	s := f.Stats()
	if s.Pairs != 1 || s.Partners != 2 {
		t.Errorf("stats after one combined walk with two partners: %+v", s)
	}
}

// TestSlotProtocol exercises the camp/claim/withdraw CAS triangle on a
// single slot.
func TestSlotProtocol(t *testing.T) {
	f := New(Options{Width: 2})
	w := &waiter{demand: 1, res: make(chan []int64, 1)}
	other := &waiter{demand: 1, res: make(chan []int64, 1)}

	if _, ok := f.tryClaim(0); ok {
		t.Fatal("claimed an empty slot")
	}
	if !f.camp(0, w) {
		t.Fatal("camp on empty slot failed")
	}
	if f.camp(0, other) {
		t.Fatal("second camp displaced the first")
	}
	got, ok := f.tryClaim(0)
	if !ok || got != w {
		t.Fatalf("tryClaim = %v, %v; want the camped waiter", got, ok)
	}
	if f.withdraw(0, w) {
		t.Fatal("withdraw succeeded after a claim")
	}
	if !f.camp(0, w) || !f.withdraw(0, w) {
		t.Fatal("camp+withdraw round trip failed")
	}
	if f.slots[0].w.Load() != nil {
		t.Fatal("slot not empty after withdraw")
	}
}

func TestLiveSpread(t *testing.T) {
	f := New(Options{Width: 8})
	for _, tc := range []struct {
		inflight int64
		want     int
	}{
		{0, 1}, {1, 1}, {spreadPerSlot - 1, 1}, {spreadPerSlot, 1},
		{2 * spreadPerSlot, 2}, {4 * spreadPerSlot, 4},
		{8 * spreadPerSlot, 8}, {100 * spreadPerSlot, 8},
	} {
		f.inflight.Store(tc.inflight)
		if got := f.liveSpread(); got != tc.want {
			t.Errorf("liveSpread(inflight=%d) = %d, want %d", tc.inflight, got, tc.want)
		}
	}
}

func TestHitRate(t *testing.T) {
	if r := (Stats{}).HitRate(); r != 0 {
		t.Errorf("zero-traffic hit rate %f", r)
	}
	if r := (Stats{Tokens: 10, Pairs: 2, Partners: 3}).HitRate(); r != 0.5 {
		t.Errorf("hit rate %f, want 0.5", r)
	}
}

func TestWidthAndDefaults(t *testing.T) {
	if f := New(Options{}); f.Width() != DefaultWidth || f.window != DefaultWindow {
		t.Errorf("defaults: width %d window %v", f.Width(), f.window)
	}
	if f := New(Options{Width: 3, Window: time.Millisecond}); f.Width() != 3 || f.window != time.Millisecond {
		t.Errorf("options ignored: width %d window %v", f.Width(), f.window)
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	f := New(Options{Width: 2, Metrics: reg})
	var next atomic.Int64
	f.Do(1, counterTraverse(&next))

	var sb strings.Builder
	reg.WriteText(&sb)
	text := sb.String()
	for _, name := range []string{
		"shm_combine_tokens_total",
		"shm_combine_pairs_total",
		"shm_combine_partners_total",
		"shm_combine_timeouts_total",
		"shm_combine_solo_total",
		"shm_combine_idle_total",
		"shm_combine_cas_races_total",
		"shm_combine_pair_wait_ns",
		"shm_combine_hit_rate",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s not in registry dump", name)
		}
	}
}

// TestConcurrentGapless hammers the funnel from many goroutines with
// mixed demands over a slow shared counter and checks the two load-bearing
// invariants: the delivered values form an exact permutation (no token's
// share is lost, duplicated, or cross-delivered), and every token lands in
// exactly one disposition counter.
func TestConcurrentGapless(t *testing.T) {
	const goroutines, perG = 24, 40
	f := New(Options{Width: 8, Window: 200 * time.Microsecond})
	var next atomic.Int64
	slow := func(demand int) []int64 {
		vals := counterTraverse(&next)(demand)
		time.Sleep(2 * time.Microsecond) // hold walks open so tokens overlap
		return vals
	}

	results := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				demand := 1 + (g+k)%3
				vals := f.Do(demand, slow)
				if len(vals) != demand {
					t.Errorf("goroutine %d op %d: %d values for demand %d", g, k, len(vals), demand)
					return
				}
				results[g] = append(results[g], vals...)
			}
		}(g)
	}
	wg.Wait()

	total := next.Load()
	seen := make([]bool, total)
	n := 0
	for _, vs := range results {
		for _, v := range vs {
			if v < 0 || v >= total || seen[v] {
				t.Fatalf("value %d duplicated or out of range [0,%d)", v, total)
			}
			seen[v] = true
			n++
		}
	}
	if int64(n) != total {
		t.Fatalf("delivered %d values, counter issued %d", n, total)
	}

	s := f.Stats()
	if s.Tokens != goroutines*perG {
		t.Fatalf("tokens %d, want %d", s.Tokens, goroutines*perG)
	}
	if got := s.Idle + s.Pairs + s.Partners + s.Timeouts + s.Solo; got != s.Tokens {
		t.Errorf("disposition partition broken: idle %d + pairs %d + partners %d + timeouts %d + solo %d = %d != tokens %d",
			s.Idle, s.Pairs, s.Partners, s.Timeouts, s.Solo, got, s.Tokens)
	}
	if r := s.HitRate(); r < 0 || r > 1 {
		t.Errorf("hit rate %f outside [0,1]", r)
	}
}
