// Package combine implements an elimination/combining funnel that sits
// in front of a counting network (Shavit and Zemach's combining-funnel
// idea applied to the shm runtime): concurrent tokens rendezvous in a
// sized exchanger array with CAS-based pairing — like the diffracting
// prism, but exchanging *counts* instead of toggling — so that a paired
// pair sends one representative through the balancer network with a
// combined demand and the partner parks until its values arrive.
//
// Combining preserves exact counting for any interleaving because the
// representative's batch traversal is operationally identical to the
// partners' tokens walking the network back to back: every balancer
// toggle advances once per combined token and every output counter is
// fetched once per combined token (see shm.Network.TraverseBatch). What
// combining removes is *contention*: under heavy traffic roughly half
// the goroutines park on a channel instead of queueing on MCS toggles,
// which shortens lock queues, cuts scheduler pressure on oversubscribed
// machines, and degrades to a single atomic check when the funnel is
// idle.
//
// The funnel is generic over the downstream counter: Do takes the
// traversal as a closure, so the package depends only on the
// observability layer and the shared backoff helper.
package combine

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"countnet/internal/obs"
	"countnet/internal/shm/backoff"
)

// Defaults for Options.
const (
	// DefaultWidth is the default exchanger slot count.
	DefaultWidth = 8
	// DefaultWindow is the default partner wait.
	DefaultWindow = 30 * time.Microsecond
)

// Traverse executes one batch traversal of the downstream network for
// the given combined demand and returns exactly that many counter
// values (in any order).
type Traverse func(demand int) []int64

// Options configures a Funnel.
type Options struct {
	// Width is the exchanger slot count (default DefaultWidth).
	Width int
	// Window is how long a camped token waits for a partner before
	// falling back to a plain traversal (default DefaultWindow).
	Window time.Duration
	// Metrics, when non-nil, registers the funnel's metric family:
	// combine pair/timeout/idle/race counters, the pairing-latency
	// histogram shm_combine_pair_wait_ns, and the live
	// shm_combine_hit_rate gauge.
	Metrics *obs.Registry
}

// campSpins bounds the opportunistic backoff phase of a camped token: a
// few escalating inline spins to catch a fast partner cheaply — never a
// yield, which costs a full scheduler turn on oversubscribed machines —
// after which the camper parks on its channel so it costs no CPU while
// the representative walks the network.
const campSpins = 4

// maxPartners bounds how many camped tokens one representative claims
// in a single sweep. Combining degree is the funnel's leverage — a
// batch of k tokens shares every balancer visit until the toggles
// split the group, so per-token cost falls roughly as (tree of the
// batch)/(k full paths) — but an unbounded sweep would let one walk
// starve the exchanger, so claims stop after the funnel's partner cap
// (width-1, at most maxPartners) or one pass over the live slots,
// whichever comes first.
const maxPartners = 31

// spreadPerSlot is the occupancy granularity of the live slot range:
// one exchanger slot is live per spreadPerSlot in-flight tokens.
const spreadPerSlot = 8

// waiter is one token camped in a slot awaiting a representative. The
// result channel is buffered so delivery never blocks the
// representative; the timer is reused across camps by the pool.
type waiter struct {
	demand int
	res    chan []int64
	timer  *time.Timer
}

// slot keeps each exchanger cell on its own cache line.
type slot struct {
	w atomic.Pointer[waiter]
	_ [56]byte
}

// Stats is a snapshot of the funnel's counters.
type Stats struct {
	// Tokens is the number of Do calls.
	Tokens int64
	// Pairs is the number of combined walks: traversals a representative
	// executed on behalf of itself plus at least one parked partner.
	Pairs int64
	// Partners is the number of tokens served while parked — claimed
	// from a slot by a representative and handed their values. Each
	// combined walk covers one representative and one or more partners,
	// so Pairs+Partners tokens in total rode a shared traversal.
	Partners int64
	// Timeouts counts camped tokens whose window expired with no
	// partner; they traversed alone.
	Timeouts int64
	// Solo counts colliding tokens whose claim sweep came up empty
	// (every camper was stolen by a concurrent representative); they
	// traversed alone.
	Solo int64
	// Idle counts tokens that skipped the exchanger because no other
	// token was in flight.
	Idle int64
	// Races counts lost CAS races (a claim or camp attempt beaten by a
	// concurrent token), the funnel's contention signal.
	Races int64
}

// Every token ends in exactly one disposition, so at quiescence
//
//	Tokens == Idle + Pairs + Partners + Timeouts + Solo
//
// which the funnel's tests assert after every concurrent run.

// HitRate returns the fraction of tokens whose value came from a
// shared traversal — (Pairs+Partners)/Tokens, counting each combined
// walk's representative and every partner it served — or 0 before any
// traffic.
func (s Stats) HitRate() float64 {
	if s.Tokens == 0 {
		return 0
	}
	return float64(s.Pairs+s.Partners) / float64(s.Tokens)
}

// Funnel is the elimination/combining exchanger array. Safe for
// concurrent use by any number of goroutines.
type Funnel struct {
	slots  []slot
	window time.Duration

	// inflight counts tokens currently inside Do. A token that finds
	// itself alone skips the exchanger entirely, and the live slot
	// range adapts to this occupancy: light traffic concentrates on
	// slot 0 so tokens actually meet, heavy traffic spreads over the
	// whole array so a representative can sweep up several partners.
	inflight atomic.Int64

	// The metric fields are never nil: New installs either registry
	// metrics or unregistered no-op instances, so the hot path can skip
	// the nil checks (the obsvet allows below record that contract).
	tokens   *obs.Counter   //countnet:allow obsvet -- never nil; New substitutes an unregistered no-op
	pairs    *obs.Counter   //countnet:allow obsvet -- never nil; New substitutes an unregistered no-op
	partners *obs.Counter   //countnet:allow obsvet -- never nil; New substitutes an unregistered no-op
	timeouts *obs.Counter   //countnet:allow obsvet -- never nil; New substitutes an unregistered no-op
	solos    *obs.Counter   //countnet:allow obsvet -- never nil; New substitutes an unregistered no-op
	idle     *obs.Counter   //countnet:allow obsvet -- never nil; New substitutes an unregistered no-op
	races    *obs.Counter   //countnet:allow obsvet -- never nil; New substitutes an unregistered no-op
	pairWait *obs.Histogram //countnet:allow obsvet -- never nil; New substitutes an unregistered no-op

	pool sync.Pool
	rngs sync.Pool
	seed atomic.Int64
}

// New returns a funnel with the given options.
func New(opts Options) *Funnel {
	if opts.Width < 1 {
		opts.Width = DefaultWidth
	}
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	f := &Funnel{
		slots:  make([]slot, opts.Width),
		window: opts.Window,
	}
	if reg := opts.Metrics; reg != nil {
		f.tokens = reg.Counter("shm_combine_tokens_total")
		f.pairs = reg.Counter("shm_combine_pairs_total")
		f.partners = reg.Counter("shm_combine_partners_total")
		f.timeouts = reg.Counter("shm_combine_timeouts_total")
		f.solos = reg.Counter("shm_combine_solo_total")
		f.idle = reg.Counter("shm_combine_idle_total")
		f.races = reg.Counter("shm_combine_cas_races_total")
		f.pairWait = reg.Histogram("shm_combine_pair_wait_ns")
		reg.GaugeFunc("shm_combine_hit_rate", func() float64 { return f.Stats().HitRate() })
	} else {
		f.tokens = &obs.Counter{}
		f.pairs = &obs.Counter{}
		f.partners = &obs.Counter{}
		f.timeouts = &obs.Counter{}
		f.solos = &obs.Counter{}
		f.idle = &obs.Counter{}
		f.races = &obs.Counter{}
		f.pairWait = obs.NewHistogram()
	}
	f.pool.New = func() any { return &waiter{res: make(chan []int64, 1)} }
	f.rngs.New = func() any {
		return rand.New(rand.NewSource(f.seed.Add(1) * 0x9e3779b9))
	}
	return f
}

// Width returns the exchanger slot count.
func (f *Funnel) Width() int { return len(f.slots) }

// Stats returns a snapshot of the funnel's counters.
func (f *Funnel) Stats() Stats {
	return Stats{
		Tokens:   f.tokens.Value(),
		Pairs:    f.pairs.Value(),
		Partners: f.partners.Value(),
		Timeouts: f.timeouts.Value(),
		Solo:     f.solos.Value(),
		Idle:     f.idle.Value(),
		Races:    f.races.Value(),
	}
}

// Do routes one token of the given demand through the funnel: when
// concurrent partners are camped, the token claims up to maxPartners of
// them, executes traverse once with the combined demand, and
// distributes the values; otherwise it camps for a window hoping to be
// claimed itself, falling back to a plain traversal. Do returns exactly
// demand values.
//
//countnet:hotpath
func (f *Funnel) Do(demand int, traverse Traverse) []int64 {
	if demand < 1 {
		badDemand(demand)
	}
	f.tokens.Inc()
	if f.inflight.Add(1) == 1 {
		// Alone in the funnel: degrade to a plain traversal.
		vals := f.run(traverse, demand)
		f.inflight.Add(-1)
		f.idle.Inc()
		return vals
	}
	// The decrement is explicit rather than deferred: exchange cannot
	// panic on the funnel's own account (run re-panics only on a broken
	// traverse contract), and a deferred call is exactly the kind of
	// hot-path frame pinning hotvet exists to reject.
	vals := f.exchange(demand, traverse)
	f.inflight.Add(-1)
	return vals
}

// badDemand panics on an impossible demand. It lives outside Do so the
// panic formatting — which boxes its argument — stays out of the hot
// path's escape profile.
//
//go:noinline
func badDemand(demand int) {
	panic(fmt.Sprintf("combine: demand %d", demand))
}

// exchange is the contended body of Do: camp-or-claim, then either
// represent a swept batch or wait to be represented.
func (f *Funnel) exchange(demand int, traverse Traverse) []int64 {
	rng, _ := f.rngs.Get().(*rand.Rand)
	spread := f.liveSpread()
	i := rng.Intn(spread)
	f.rngs.Put(rng)

	// Tokens prefer to camp: partners accumulate across the live slots,
	// and the first token whose random slot is already taken turns
	// representative — a birthday collision, so the expected number of
	// campers it sweeps up grows with the live spread.
	me, _ := f.pool.Get().(*waiter)
	me.demand = demand
	if !f.camp(i, me) {
		f.pool.Put(me)
		// Claim sweep: gather every camped partner in one pass over the
		// live slots, starting at the collision slot.
		var ps [maxPartners]*waiter
		cap := len(f.slots) - 1
		if cap > maxPartners {
			cap = maxPartners
		}
		if cap < 1 {
			cap = 1
		}
		np := 0
		for j := 0; j < spread && np < cap; j++ {
			if w, ok := f.tryClaim((i + j) % spread); ok {
				ps[np] = w
				np++
			}
		}
		if np > 0 {
			return f.represent(ps[:np], demand, traverse)
		}
		// Every camper was claimed out from under us between the camp
		// attempt and the sweep; traverse alone.
		f.races.Add(1)
		f.solos.Inc()
		return f.run(traverse, demand)
	}
	t0 := time.Now()
	// Phase one: adaptive per-slot backoff, catching fast partners
	// without paying a park/unpark.
	var bo backoff.Backoff
	for bo.Attempts() < campSpins {
		//countnet:allow hotvet -- nonblocking poll for an early partner; parking campers is the funnel's combining mechanism
		select {
		case vals := <-me.res:
			f.pairWait.Observe(time.Since(t0).Nanoseconds())
			f.pool.Put(me)
			return vals
		default:
		}
		bo.Wait()
	}
	// Phase two: park on the channel for the rest of the window, so a
	// camped token costs no CPU while its representative traverses.
	if rem := f.window - time.Since(t0); rem > 0 {
		if me.timer == nil {
			me.timer = time.NewTimer(rem)
		} else {
			me.timer.Reset(rem)
		}
		//countnet:allow hotvet -- camped token parks on its result channel for the window; that CPU hand-back is the point of combining
		select {
		case vals := <-me.res:
			stopTimer(me.timer)
			f.pairWait.Observe(time.Since(t0).Nanoseconds())
			f.pool.Put(me)
			return vals
		case <-me.timer.C:
		}
	}
	if f.withdraw(i, me) {
		f.pool.Put(me)
		f.timeouts.Inc()
		return f.run(traverse, demand)
	}
	// A representative committed to us at the last instant; the values
	// are on their way.
	//countnet:allow hotvet -- delivery already committed by a representative; the receive is bounded by its traversal
	vals := <-me.res
	f.pairWait.Observe(time.Since(t0).Nanoseconds())
	f.pool.Put(me)
	return vals
}

// stopTimer stops and drains t so the pool can reuse it.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		//countnet:allow hotvet -- nonblocking drain of an already-fired pooled timer
		select {
		case <-t.C:
		default:
		}
	}
}

// represent executes one combined traversal for self (demand values)
// plus every claimed partner, delivers each partner's share, and
// returns its own.
func (f *Funnel) represent(ps []*waiter, demand int, traverse Traverse) []int64 {
	total := demand
	for _, w := range ps {
		total += w.demand
	}
	vals := f.run(traverse, total)
	off := demand
	for _, w := range ps {
		//countnet:allow hotvet -- partner channels are buffered (capacity 1), so delivery never blocks the representative
		w.res <- vals[off : off+w.demand : off+w.demand]
		off += w.demand
	}
	f.pairs.Inc()
	f.partners.Add(int64(len(ps)))
	return vals[:demand]
}

// run executes traverse and checks the demand contract, so a buggy
// traversal fails loudly instead of deadlocking a parked partner.
func (f *Funnel) run(traverse Traverse, demand int) []int64 {
	vals := traverse(demand)
	if len(vals) != demand {
		panic(fmt.Sprintf("combine: traverse returned %d values for demand %d", len(vals), demand))
	}
	return vals
}

// liveSpread returns the current live slot range in [1, len(slots)],
// sized to the funnel's occupancy: roughly one slot per spreadPerSlot
// in-flight tokens, so light traffic concentrates and heavy traffic
// fans out.
func (f *Funnel) liveSpread() int {
	n := int(f.inflight.Load()) / spreadPerSlot
	if n < 1 {
		return 1
	}
	if n > len(f.slots) {
		return len(f.slots)
	}
	return n
}

// tryClaim attempts to claim a waiter camped at slot i, returning it on
// success. A lost CAS race is counted as a contention signal.
func (f *Funnel) tryClaim(i int) (*waiter, bool) {
	s := &f.slots[i]
	w := s.w.Load()
	if w == nil {
		return nil, false
	}
	if s.w.CompareAndSwap(w, nil) {
		return w, true
	}
	f.races.Add(1)
	return nil, false
}

// camp installs w at slot i, returning false when a concurrent token
// holds the slot.
func (f *Funnel) camp(i int, w *waiter) bool {
	return f.slots[i].w.CompareAndSwap(nil, w)
}

// withdraw removes w from slot i, returning false when a representative
// already claimed it (the caller must then wait for delivery).
func (f *Funnel) withdraw(i int, w *waiter) bool {
	return f.slots[i].w.CompareAndSwap(w, nil)
}
