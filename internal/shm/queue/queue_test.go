package queue

import (
	"sync"
	"testing"
	"time"

	"countnet/internal/bitonic"
	"countnet/internal/shm"
	"countnet/internal/topo"
)

func build(t *testing.T, capacity int) *Queue[int] {
	t.Helper()
	g, err := bitonic.New(8)
	if err != nil {
		t.Fatal(err)
	}
	q, err := New[int](g, capacity, shm.Options{Kind: shm.KindMCS})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewValidation(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New[int](g, 0, shm.Options{}); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := New[int](nil, 4, shm.Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestSequentialFIFO(t *testing.T) {
	q := build(t, 16)
	if q.Cap() != 16 {
		t.Fatalf("Cap = %d", q.Cap())
	}
	for i := 0; i < 10; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 10; i++ {
		if v := q.Dequeue(); v != i {
			t.Fatalf("Dequeue = %d, want %d", v, i)
		}
	}
}

func TestWrapAround(t *testing.T) {
	q := build(t, 4)
	for round := 0; round < 10; round++ {
		for i := 0; i < 4; i++ {
			q.Enqueue(round*4 + i)
		}
		for i := 0; i < 4; i++ {
			if v := q.Dequeue(); v != round*4+i {
				t.Fatalf("round %d: Dequeue = %d, want %d", round, v, round*4+i)
			}
		}
	}
}

// TestMPMCExactlyOnce hammers the queue with concurrent producers and
// consumers and checks the fundamental guarantee: every enqueued item is
// dequeued exactly once.
func TestMPMCExactlyOnce(t *testing.T) {
	q := build(t, 64)
	const producers = 8
	const consumers = 8
	const perProducer = 2000
	total := producers * perProducer
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(p*perProducer + i)
			}
		}(p)
	}
	got := make([][]int, consumers)
	perConsumer := total / consumers
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			vals := make([]int, 0, perConsumer)
			for i := 0; i < perConsumer; i++ {
				vals = append(vals, q.Dequeue())
			}
			got[c] = vals
		}(c)
	}
	wg.Wait()
	seen := make([]bool, total)
	for _, vals := range got {
		for _, v := range vals {
			if v < 0 || v >= total || seen[v] {
				t.Fatalf("lost or duplicated item %d", v)
			}
			seen[v] = true
		}
	}
}

// TestBlockingEmptyAndFull checks both blocking directions.
func TestBlockingEmptyAndFull(t *testing.T) {
	q := build(t, 2)
	done := make(chan int, 1)
	go func() { done <- q.Dequeue() }()
	// The consumer must block until something arrives.
	time.Sleep(20 * time.Millisecond)
	select {
	case v := <-done:
		t.Fatalf("Dequeue returned %d from an empty queue", v)
	default:
	}
	q.Enqueue(42)
	if v := <-done; v != 42 {
		t.Fatalf("Dequeue = %d", v)
	}

	q.Enqueue(1)
	q.Enqueue(2)
	enqDone := make(chan struct{})
	go func() {
		q.Enqueue(3) // full: must block until a slot frees
		close(enqDone)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-enqDone:
		t.Fatal("Enqueue returned on a full queue")
	default:
	}
	if v := q.Dequeue(); v != 1 {
		t.Fatalf("Dequeue = %d, want 1", v)
	}
	<-enqDone
	if v := q.Dequeue(); v != 2 {
		t.Fatalf("Dequeue = %d, want 2", v)
	}
	if v := q.Dequeue(); v != 3 {
		t.Fatalf("Dequeue = %d, want 3", v)
	}
}

func TestWorksOnTreeTickets(t *testing.T) {
	// Tree-based tickets with diffraction: same guarantees.
	b := topo.NewBuilder()
	in := b.Inputs(1)
	o0, o1 := b.Balancer12(in[0])
	o00, o01 := b.Balancer12(o0)
	o10, o11 := b.Balancer12(o1)
	b.Terminate([]topo.Out{o00, o10, o01, o11})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	q, err := New[string](g, 8, shm.Options{Kind: shm.KindMCS, Diffract: true})
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue("a")
	q.Enqueue("b")
	if v := q.Dequeue(); v != "a" {
		t.Fatalf("Dequeue = %q", v)
	}
	if v := q.Dequeue(); v != "b" {
		t.Fatalf("Dequeue = %q", v)
	}
}

func BenchmarkQueueEnqDeqPairs(b *testing.B) {
	g, err := bitonic.New(8)
	if err != nil {
		b.Fatal(err)
	}
	q, err := New[int](g, 1024, shm.Options{Kind: shm.KindMCS})
	if err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Enqueue(1)
			q.Dequeue()
		}
	})
}
