// Package queue implements the FIFO buffer application of counting
// networks (Aspnes-Herlihy-Shavit; the paper's introduction lists "FIFO
// buffers" among the structures built on linearizable counting): a bounded
// MPMC queue whose enqueue and dequeue tickets are drawn from two counting
// networks, eliminating the head/tail hot spots of a conventional ring.
//
// The queue inherits the counting networks' ordering: it is quiescently
// consistent (every item is delivered exactly once, and in quiescent states
// the order is FIFO) but not linearizable — under timing anomalies two
// items enqueued back-to-back by different producers can be delivered out
// of real-time order, exactly the phenomenon the paper's c2/c1 measure
// bounds.
package queue

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"countnet/internal/shm"
	"countnet/internal/topo"
)

// Queue is a bounded MPMC FIFO buffer. All methods are safe for concurrent
// use.
type Queue[T any] struct {
	enq   *shm.Network
	deq   *shm.Network
	cells []cell[T]
	cap   int64
	enqIn atomic.Int64
	deqIn atomic.Int64
}

// cell is one ring slot. turn advances 2 per generation: 2g means "empty,
// awaiting enqueue ticket of generation g"; 2g+1 means "full, awaiting
// dequeue ticket of generation g".
type cell[T any] struct {
	turn atomic.Int64
	val  T
	_    [40]byte
}

// New builds a queue of the given capacity whose tickets come from two
// counting networks built on g (one instance each for enqueue and
// dequeue). The capacity must be at least 1.
func New[T any](g *topo.Graph, capacity int, opts shm.Options) (*Queue[T], error) {
	if capacity < 1 {
		return nil, fmt.Errorf("queue: capacity %d", capacity)
	}
	enq, err := shm.Compile(g, opts)
	if err != nil {
		return nil, err
	}
	deq, err := shm.Compile(g, opts)
	if err != nil {
		return nil, err
	}
	return &Queue[T]{
		enq:   enq,
		deq:   deq,
		cells: make([]cell[T], capacity),
		cap:   int64(capacity),
	}, nil
}

// Enqueue appends v, blocking while the queue is full.
func (q *Queue[T]) Enqueue(v T) {
	t := q.enq.Traverse(int(q.enqIn.Add(1)-1) % q.enq.InWidth())
	c := &q.cells[t%q.cap]
	gen := t / q.cap
	for spins := 0; c.turn.Load() != 2*gen; spins++ {
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
	c.val = v
	c.turn.Store(2*gen + 1)
}

// Dequeue removes and returns the oldest item, blocking while the queue is
// empty.
func (q *Queue[T]) Dequeue() T {
	t := q.deq.Traverse(int(q.deqIn.Add(1)-1) % q.deq.InWidth())
	c := &q.cells[t%q.cap]
	gen := t / q.cap
	for spins := 0; c.turn.Load() != 2*gen+1; spins++ {
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
	v := c.val
	var zero T
	c.val = zero
	c.turn.Store(2 * (gen + 1))
	return v
}

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return int(q.cap) }
