package shm

import (
	"fmt"
	"sync/atomic"
	"time"

	"countnet/internal/topo"
)

// Options configures network compilation.
type Options struct {
	// Kind selects the toggle implementation; default KindMCS (the
	// paper's).
	Kind Kind
	// Diffract wraps every two-output balancer with a prism.
	Diffract bool
	// PrismWidth is the slot count of each prism (default 4).
	PrismWidth int
	// PrismWindow is the partner wait (default 5µs).
	PrismWindow time.Duration
}

// paddedCounter keeps per-output counters on separate cache lines.
type paddedCounter struct {
	v atomic.Int64
	_ [56]byte
}

// Network is a balancing network compiled for direct traversal by
// goroutines: the paper's shared-memory counting network. It implements a
// w-width shared counter whose Traverse returns globally unique,
// step-property-consistent values.
type Network struct {
	g         *topo.Graph
	balancers []Balancer // indexed by NodeID; nil for counters
	counters  []paddedCounter
	w         int64
	obs       *netObs // nil until EnableObs; read-only afterwards
}

// Compile builds the runtime for g.
func Compile(g *topo.Graph, opts Options) (*Network, error) {
	if g == nil {
		return nil, fmt.Errorf("shm: nil graph")
	}
	if opts.Kind == 0 {
		opts.Kind = KindMCS
	}
	if opts.PrismWidth == 0 {
		opts.PrismWidth = 4
	}
	if opts.PrismWindow == 0 {
		opts.PrismWindow = 5 * time.Microsecond
	}
	n := &Network{
		g:         g,
		balancers: make([]Balancer, g.NumNodes()),
		counters:  make([]paddedCounter, g.OutWidth()),
		w:         int64(g.OutWidth()),
	}
	for _, id := range g.Balancers() {
		b, err := NewBalancer(opts.Kind, g.FanOut(id))
		if err != nil {
			return nil, err
		}
		if opts.Diffract && g.FanOut(id) == 2 {
			if b, err = NewDiffracting(b, opts.PrismWidth, opts.PrismWindow); err != nil {
				return nil, err
			}
		}
		n.balancers[id] = b
	}
	return n, nil
}

// Graph returns the compiled topology.
func (n *Network) Graph() *topo.Graph { return n.g }

// InWidth returns the number of network inputs.
func (n *Network) InWidth() int { return n.g.InWidth() }

// OutWidth returns the number of output counters.
func (n *Network) OutWidth() int { return int(n.w) }

// Traverse routes one token from the given input to a counter and returns
// its value. Safe for concurrent use by any number of goroutines.
//
//countnet:hotpath
func (n *Network) Traverse(input int) int64 {
	return n.TraverseHook(input, nil)
}

// TraverseHook is Traverse with a callback invoked after every node
// transition (balancers and the final counter); the stress driver uses it to
// inject the paper's W-cycle delays.
func (n *Network) TraverseHook(input int, afterNode func(id topo.NodeID)) int64 {
	p := n.g.Input(input)
	for {
		id := p.Node
		if b := n.balancers[id]; b != nil {
			out := b.Traverse()
			if afterNode != nil {
				afterNode(id)
			}
			p = n.g.OutDest(id, out)
			continue
		}
		idx := n.g.CounterIndex(id)
		a := n.counters[idx].v.Add(1) - 1
		if afterNode != nil {
			afterNode(id)
		}
		return int64(idx) + n.w*a
	}
}

// CounterCounts returns the number of tokens that exited each output; in a
// quiescent state they must satisfy the step property.
func (n *Network) CounterCounts() []int64 {
	out := make([]int64, len(n.counters))
	for i := range n.counters {
		out[i] = n.counters[i].v.Load()
	}
	return out
}
