// Package report renders the paper-shaped tables and series produced by the
// benchmark harness: the non-linearizability-ratio series of Figures 5 and
// 6 and the average-c2/c1 table of Figure 7.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Cell is one measured grid cell.
type Cell struct {
	Net      string  // "bitonic" or "dtree"
	Procs    int     // n
	Wait     int64   // W
	Frac     float64 // F
	Ratio    float64 // non-linearizability ratio (0..1)
	AvgRatio float64 // (Tog+W)/Tog
	Tog      float64
}

// Table accumulates cells and renders them.
type Table struct {
	cells []Cell
}

// Add appends a cell.
func (t *Table) Add(c Cell) { t.cells = append(t.cells, c) }

// Cells returns the accumulated cells.
func (t *Table) Cells() []Cell { return t.cells }

func (t *Table) find(net string, procs int, wait int64, frac float64) (Cell, bool) {
	for _, c := range t.cells {
		if c.Net == net && c.Procs == procs && c.Wait == wait && c.Frac == frac {
			return c, true
		}
	}
	return Cell{}, false
}

// WriteFigure renders a Figures 5/6-shaped block for the given F: one line
// per (network, W) series, the non-linearizability percentage per n.
func (t *Table) WriteFigure(w io.Writer, nets []string, procs []int, waits []int64, frac float64) {
	fmt.Fprintf(w, "Non-linearizability ratios, F=%.0f%% delayed processors\n", 100*frac)
	fmt.Fprintf(w, "%-10s %-8s", "network", "W")
	for _, n := range procs {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("n=%d", n))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 19+10*len(procs)))
	for _, net := range nets {
		for _, wait := range waits {
			fmt.Fprintf(w, "%-10s %-8d", net, wait)
			for _, n := range procs {
				if c, ok := t.find(net, n, wait, frac); ok {
					fmt.Fprintf(w, " %8.3f%%", 100*c.Ratio)
				} else {
					fmt.Fprintf(w, " %9s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// WriteCSV emits every cell as CSV for external plotting, one row per
// (network, F, W, n) with the non-linearizability ratio, average c2/c1,
// and Tog.
func (t *Table) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "network,frac,wait,procs,nonlin_ratio,avg_c2c1,tog")
	for _, c := range t.cells {
		fmt.Fprintf(w, "%s,%g,%d,%d,%g,%g,%g\n", c.Net, c.Frac, c.Wait, c.Procs, c.Ratio, c.AvgRatio, c.Tog)
	}
}

// WriteAvgRatio renders the Figure 7-shaped table: average c2/c1 per
// workload row and concurrency column, for both networks side by side.
func (t *Table) WriteAvgRatio(w io.Writer, nets []string, procs []int, waits []int64, fracs []float64) {
	fmt.Fprintln(w, "Average c2/c1 = (Tog+W)/Tog")
	fmt.Fprintf(w, "%-10s", "workload")
	for _, net := range nets {
		for _, n := range procs {
			fmt.Fprintf(w, " %12s", fmt.Sprintf("%s n=%d", net, n))
		}
	}
	fmt.Fprintln(w)
	for _, frac := range fracs {
		fmt.Fprintf(w, "%.0f%%\n", 100*frac)
		for _, wait := range waits {
			fmt.Fprintf(w, "%-10d", wait)
			for _, net := range nets {
				for _, n := range procs {
					if c, ok := t.find(net, n, wait, frac); ok {
						fmt.Fprintf(w, " %12.2f", c.AvgRatio)
					} else {
						fmt.Fprintf(w, " %12s", "-")
					}
				}
			}
			fmt.Fprintln(w)
		}
	}
}
