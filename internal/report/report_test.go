package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	var t Table
	t.Add(Cell{Net: "bitonic", Procs: 4, Wait: 100, Frac: 0.25, Ratio: 0.01, AvgRatio: 1.45, Tog: 222})
	t.Add(Cell{Net: "bitonic", Procs: 16, Wait: 100, Frac: 0.25, Ratio: 0, AvgRatio: 1.39, Tog: 256})
	t.Add(Cell{Net: "dtree", Procs: 4, Wait: 100, Frac: 0.25, Ratio: 0.5, AvgRatio: 1.11, Tog: 909})
	return &t
}

func TestWriteFigure(t *testing.T) {
	tbl := sample()
	var sb strings.Builder
	tbl.WriteFigure(&sb, []string{"bitonic", "dtree"}, []int{4, 16}, []int64{100}, 0.25)
	out := sb.String()
	for _, want := range []string{"F=25%", "n=4", "n=16", "bitonic", "dtree", "1.000%", "50.000%", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteAvgRatio(t *testing.T) {
	tbl := sample()
	var sb strings.Builder
	tbl.WriteAvgRatio(&sb, []string{"bitonic", "dtree"}, []int{4, 16}, []int64{100}, []float64{0.25, 0.5})
	out := sb.String()
	for _, want := range []string{"Average c2/c1", "1.45", "1.11", "25%", "50%", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("ratio table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := sample()
	var sb strings.Builder
	tbl.WriteCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d, want 4", len(lines))
	}
	if lines[0] != "network,frac,wait,procs,nonlin_ratio,avg_c2c1,tog" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "bitonic,0.25,100,4,0.01,1.45,222") {
		t.Errorf("row = %q", lines[1])
	}
	if len(tbl.Cells()) != 3 {
		t.Errorf("Cells = %d", len(tbl.Cells()))
	}
}
