// Package bitonic constructs the bitonic counting networks of Aspnes,
// Herlihy, and Shavit. Bitonic[w] counts on w wires with depth
// log2(w) * (log2(w)+1) / 2; it is the width-32 network evaluated in
// Section 5 of "Counting Networks are Practically Linearizable".
//
// The construction is the classic recursive one: Bitonic[2k] is two parallel
// Bitonic[k] networks followed by a Merger[2k]; Merger[2k] splits the even
// subsequence of its first input half and the odd subsequence of its second
// half into one Merger[k] (and the complementary subsequences into another)
// and recombines with a final row of balancers.
//
//countnet:deterministic
package bitonic

import (
	"fmt"

	"countnet/internal/topo"
)

// New returns the bitonic counting network of width w, which must be a
// power of two and at least 2.
func New(w int) (*topo.Graph, error) {
	if w < 2 || w&(w-1) != 0 {
		return nil, fmt.Errorf("bitonic: width %d is not a power of two >= 2", w)
	}
	b := topo.NewBuilder()
	in := b.Inputs(w)
	out := network(b, in)
	b.Terminate(out)
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("bitonic: width %d: %w", w, err)
	}
	return g, nil
}

// Depth returns the depth of Bitonic[w]: log2(w)*(log2(w)+1)/2.
func Depth(w int) int {
	lg := log2(w)
	return lg * (lg + 1) / 2
}

// network wires Bitonic[len(in)] and returns its ordered outputs.
func network(b *topo.Builder, in []topo.Out) []topo.Out {
	n := len(in)
	if n == 1 {
		return in
	}
	k := n / 2
	top := network(b, in[:k])
	bot := network(b, in[k:])
	return merger(b, append(append(make([]topo.Out, 0, n), top...), bot...))
}

// merger wires Merger[len(in)]: the first half of in carries one sequence
// with the step property, the second half another; the outputs satisfy the
// step property whenever the inputs do.
func merger(b *topo.Builder, in []topo.Out) []topo.Out {
	n := len(in)
	if n == 2 {
		o0, o1 := b.Balancer2(in[0], in[1])
		return []topo.Out{o0, o1}
	}
	k := n / 2
	aIn := make([]topo.Out, 0, k)
	bIn := make([]topo.Out, 0, k)
	for i := 0; i < k; i += 2 { // even subsequence of x, odd of x'
		aIn = append(aIn, in[i])
	}
	for i := k + 1; i < n; i += 2 {
		aIn = append(aIn, in[i])
	}
	for i := 1; i < k; i += 2 { // odd subsequence of x, even of x'
		bIn = append(bIn, in[i])
	}
	for i := k; i < n; i += 2 {
		bIn = append(bIn, in[i])
	}
	y := merger(b, aIn)
	z := merger(b, bIn)
	out := make([]topo.Out, n)
	for i := 0; i < k; i++ {
		o0, o1 := b.Balancer2(y[i], z[i])
		out[2*i] = o0
		out[2*i+1] = o1
	}
	return out
}

func log2(w int) int {
	lg := 0
	for v := w; v > 1; v >>= 1 {
		lg++
	}
	return lg
}
