package bitonic

import (
	"testing"

	"countnet/internal/topo"
)

func TestNewRejectsBadWidth(t *testing.T) {
	for _, w := range []int{0, 1, 3, 6, 12, -4} {
		if _, err := New(w); err == nil {
			t.Errorf("New(%d) succeeded", w)
		}
	}
}

func TestShape(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16, 32} {
		g, err := New(w)
		if err != nil {
			t.Fatalf("New(%d): %v", w, err)
		}
		if g.InWidth() != w || g.OutWidth() != w {
			t.Errorf("width %d: in=%d out=%d", w, g.InWidth(), g.OutWidth())
		}
		if got, want := g.Depth(), Depth(w); got != want {
			t.Errorf("width %d: depth %d, want %d", w, got, want)
		}
		if !g.Uniform() {
			t.Errorf("width %d: not uniform", w)
		}
		// Every layer of a bitonic network covers all w wires with w/2
		// balancers of fan-in/out 2.
		for l := 1; l <= g.Depth(); l++ {
			nodes := g.LayerNodes(l)
			if len(nodes) != w/2 {
				t.Errorf("width %d layer %d: %d balancers, want %d", w, l, len(nodes), w/2)
			}
			for _, id := range nodes {
				if g.FanIn(id) != 2 || g.FanOut(id) != 2 {
					t.Errorf("width %d layer %d: node %d is %dx%d", w, l, id, g.FanIn(id), g.FanOut(id))
				}
			}
		}
		if got, want := g.NumBalancers(), w/2*Depth(w); got != want {
			t.Errorf("width %d: %d balancers, want %d", w, got, want)
		}
	}
}

func TestDepthFormula(t *testing.T) {
	want := map[int]int{2: 1, 4: 3, 8: 6, 16: 10, 32: 15, 64: 21}
	for w, d := range want {
		if got := Depth(w); got != d {
			t.Errorf("Depth(%d) = %d, want %d", w, got, d)
		}
	}
}

func TestCountingProperty(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16} {
		g, err := New(w)
		if err != nil {
			t.Fatal(err)
		}
		if err := topo.VerifyCounting(g, 6*w, 40, int64(w)); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

func TestCountingPropertyWidth32(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g, err := New(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.VerifyCounting(g, 4*32, 15, 99); err != nil {
		t.Error(err)
	}
}

// TestLemma42 verifies Lemma 4.2: after T0 traverses alone via input x0,
// tokens T1 and T2 entering via x0 one after another exit on y1 and y2, and
// share no balancer except the entry balancer.
func TestLemma42(t *testing.T) {
	for _, w := range []int{4, 8, 16, 32} {
		g, err := New(w)
		if err != nil {
			t.Fatal(err)
		}
		s := topo.NewStepper(g)
		s.TrackPaths()
		t0 := s.Inject(0)
		if v, err := s.Run(t0); err != nil || v != 0 {
			t.Fatalf("width %d: T0 value = %d, err %v", w, v, err)
		}
		t1 := s.Inject(0)
		if v, err := s.Run(t1); err != nil || v != 1 {
			t.Fatalf("width %d: T1 value = %d, err %v", w, v, err)
		}
		t2 := s.Inject(0)
		if v, err := s.Run(t2); err != nil || v != 2 {
			t.Fatalf("width %d: T2 value = %d, err %v", w, v, err)
		}
		// Values 1 and 2 exit via outputs y1 and y2 by definition of the
		// counters; check path disjointness.
		p1, p2 := s.Path(t1), s.Path(t2)
		shared := map[topo.NodeID]bool{}
		for _, id := range p1 {
			if g.KindOf(id) == topo.KindBalancer {
				shared[id] = true
			}
		}
		var common []topo.NodeID
		for _, id := range p2 {
			if shared[id] {
				common = append(common, id)
			}
		}
		if len(common) != 1 {
			t.Errorf("width %d: T1 and T2 share %d balancers (%v), want only the entry", w, len(common), common)
		}
		if len(common) == 1 && common[0] != p1[0] {
			t.Errorf("width %d: shared balancer %d is not the entry %d", w, common[0], p1[0])
		}
	}
}

// TestExhaustiveWidth4 model-checks Bitonic[4] over every interleaving of
// up to 5 tokens: the step property holds in every reachable quiescent
// state, not just the sampled ones.
func TestExhaustiveWidth4(t *testing.T) {
	g, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, per := range [][]int64{
		{1, 0, 0, 0}, {2, 1, 0, 0}, {1, 1, 1, 1}, {3, 0, 2, 0}, {2, 1, 1, 1},
	} {
		if err := topo.ExhaustiveCheck(g, per, 5_000_000); err != nil {
			t.Errorf("tokens %v: %v", per, err)
		}
	}
}
