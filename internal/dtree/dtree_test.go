package dtree

import (
	"testing"

	"countnet/internal/topo"
)

func TestNewRejectsBadWidth(t *testing.T) {
	for _, w := range []int{0, 1, 3, 12, -8} {
		if _, err := New(w); err == nil {
			t.Errorf("New(%d) succeeded", w)
		}
	}
}

func TestShape(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16, 32} {
		g, err := New(w)
		if err != nil {
			t.Fatalf("New(%d): %v", w, err)
		}
		if g.InWidth() != 1 {
			t.Errorf("width %d: in=%d, want single root input", w, g.InWidth())
		}
		if g.OutWidth() != w {
			t.Errorf("width %d: out=%d", w, g.OutWidth())
		}
		if got, want := g.Depth(), Depth(w); got != want {
			t.Errorf("width %d: depth %d, want %d", w, got, want)
		}
		if !g.Uniform() {
			t.Errorf("width %d: not uniform", w)
		}
		if got, want := g.NumBalancers(), w-1; got != want {
			t.Errorf("width %d: %d balancers, want %d", w, got, want)
		}
		// Level l has 2^(l-1) one-input two-output nodes.
		for l, want := 1, 1; l <= g.Depth(); l, want = l+1, want*2 {
			nodes := g.LayerNodes(l)
			if len(nodes) != want {
				t.Errorf("width %d level %d: %d nodes, want %d", w, l, len(nodes), want)
			}
			for _, id := range nodes {
				if g.FanIn(id) != 1 || g.FanOut(id) != 2 {
					t.Errorf("width %d level %d: node %d is %dx%d", w, l, id, g.FanIn(id), g.FanOut(id))
				}
			}
		}
	}
}

func TestCountingProperty(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16, 32} {
		g, err := New(w)
		if err != nil {
			t.Fatal(err)
		}
		if err := topo.VerifyCounting(g, 6*w, 40, int64(w)+2); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

// TestLeafOrdering verifies the bit-reversed leaf indexing: the k-th
// sequential token must receive value k, which forces the first toggle to
// select the low-order bit of the leaf index.
func TestLeafOrdering(t *testing.T) {
	g, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	q := topo.NewSequential(g)
	for k := 0; k < 24; k++ {
		v, err := q.Traverse(0)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(k) {
			t.Fatalf("sequential token %d received %d", k, v)
		}
	}
}

// TestExhaustiveWidth4 model-checks the width-4 tree over every
// interleaving of up to 7 tokens.
func TestExhaustiveWidth4(t *testing.T) {
	g, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	for m := int64(1); m <= 7; m++ {
		if err := topo.ExhaustiveCheck(g, []int64{m}, 5_000_000); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}

func TestNewArityValidation(t *testing.T) {
	for _, c := range []struct{ w, a int }{{8, 1}, {8, 0}, {6, 2}, {9, 2}, {8, 3}, {1, 2}, {0, 3}} {
		if _, err := NewArity(c.w, c.a); err == nil {
			t.Errorf("NewArity(%d,%d) accepted", c.w, c.a)
		}
	}
}

func TestArityTrees(t *testing.T) {
	for _, c := range []struct{ w, a, depth int }{
		{9, 3, 2}, {27, 3, 3}, {16, 4, 2}, {64, 4, 3}, {25, 5, 2},
	} {
		g, err := NewArity(c.w, c.a)
		if err != nil {
			t.Fatalf("NewArity(%d,%d): %v", c.w, c.a, err)
		}
		if g.Depth() != c.depth {
			t.Errorf("w=%d a=%d: depth %d, want %d", c.w, c.a, g.Depth(), c.depth)
		}
		if !g.Uniform() {
			t.Errorf("w=%d a=%d: not uniform", c.w, c.a)
		}
		if err := topo.VerifyCounting(g, 4*c.w, 25, int64(c.w)); err != nil {
			t.Errorf("w=%d a=%d: %v", c.w, c.a, err)
		}
	}
}

// TestArityExhaustive model-checks the 9-leaf ternary tree.
func TestArityExhaustive(t *testing.T) {
	g, err := NewArity(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	for m := int64(1); m <= 6; m++ {
		if err := topo.ExhaustiveCheck(g, []int64{m}, 5_000_000); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}
