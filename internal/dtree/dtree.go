// Package dtree constructs counting trees in the sense of Shavit and Zemach
// ("Diffracting Trees"): a complete binary tree of one-input two-output
// balancers whose w leaves are the output counters. The tree has depth
// log2(w) — less than any w-wire counting network — which is why Section 5
// of the paper observes a higher fraction of linearizability violations on
// trees ("less of a padding effect as implied by Theorem 3.6").
//
// The topology here is the *counting* structure; the diffracting "prism"
// optimization changes only how tokens pass each node, and is provided by
// the shm/prism package (real goroutines) and by the sim package's
// diffracting node model.
//
//countnet:deterministic
package dtree

import (
	"fmt"

	"countnet/internal/topo"
)

// New returns the counting tree with w leaves, which must be a power of two
// and at least 2. The tree has a single network input at the root.
//
// The leaf reached by toggle path b1 b2 ... bh from the root (bi = output
// port taken at level i) is output Y_j with j = b1 + 2*b2 + ... + 2^(h-1)*bh:
// the first toggle decides the lowest-order bit of the output index, so
// sequential tokens receive 0, 1, 2, ... in order.
func New(w int) (*topo.Graph, error) {
	return NewArity(w, 2)
}

// NewArity returns a counting tree of 1-input a-output balancers in the
// arbitrary-fan-out spirit of Aharonson and Attiya: w must be a positive
// power of the arity a >= 2. The depth is log_a(w) — trading node fan-out
// against depth, the knob Theorem 3.6's padding effect depends on.
//
// Leaf indexing generalizes the binary digit reversal: the toggle at level
// i contributes digit i (least significant first) of the leaf index in base
// a, so sequential tokens receive 0, 1, 2, ... in order.
func NewArity(w, arity int) (*topo.Graph, error) {
	if arity < 2 {
		return nil, fmt.Errorf("dtree: arity %d < 2", arity)
	}
	if !isPower(w, arity) {
		return nil, fmt.Errorf("dtree: width %d is not a positive power of arity %d", w, arity)
	}
	b := topo.NewBuilder()
	in := b.Inputs(1)
	leaves := make([]topo.Out, w)
	subtree(b, in[0], arity, w, 0, 1, leaves)
	b.Terminate(leaves)
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("dtree: width %d arity %d: %w", w, arity, err)
	}
	return g, nil
}

// isPower reports whether w = arity^k for some k >= 1.
func isPower(w, arity int) bool {
	if w < arity {
		return false
	}
	for w > 1 {
		if w%arity != 0 {
			return false
		}
		w /= arity
	}
	return true
}

// Depth returns the depth of the width-w counting tree: log2(w).
func Depth(w int) int {
	lg := 0
	for v := w; v > 1; v >>= 1 {
		lg++
	}
	return lg
}

// subtree wires the subtree of `width` leaves fed by in. Tokens taking
// output port p at this node extend their leaf index by p*stride; base is
// the index accumulated so far.
func subtree(b *topo.Builder, in topo.Out, arity, width, base, stride int, leaves []topo.Out) {
	if width == 1 {
		leaves[base] = in
		return
	}
	outs := b.BalancerN([]topo.Out{in}, arity)
	for p, o := range outs {
		subtree(b, o, arity, width/arity, base+p*stride, stride*arity, leaves)
	}
}
