package histvar

import (
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Count() != 0 {
		t.Fatalf("fresh Count = %d", b.Count())
	}
	for _, id := range []int{0, 1, 63, 64, 65, 128, 129} {
		b.Add(id)
		if !b.Has(id) {
			t.Errorf("Has(%d) false after Add", id)
		}
	}
	if b.Count() != 7 {
		t.Errorf("Count = %d, want 7", b.Count())
	}
	b.Add(0) // idempotent
	if b.Count() != 7 {
		t.Errorf("Count after re-Add = %d", b.Count())
	}
	// Out-of-range adds are ignored.
	b.Add(-1)
	b.Add(130)
	if b.Count() != 7 || b.Has(-1) || b.Has(130) {
		t.Errorf("out-of-range ids leaked in: %d", b.Count())
	}
}

func TestBitsetUnionCloneForEach(t *testing.T) {
	a := NewBitset(100)
	b := NewBitset(100)
	a.Add(3)
	a.Add(70)
	b.Add(70)
	b.Add(99)
	c := a.Clone()
	c.UnionWith(b)
	want := []int{3, 70, 99}
	var got []int
	c.ForEach(func(id int) { got = append(got, id) })
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", got, want)
		}
	}
	// Clone independence.
	if a.Count() != 2 {
		t.Errorf("clone aliased its source: %d", a.Count())
	}
}

func TestBitsetQuickUnionCount(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := NewBitset(256)
		b := NewBitset(256)
		seen := map[int]bool{}
		for _, x := range xs {
			a.Add(int(x))
			seen[int(x)] = true
		}
		for _, y := range ys {
			b.Add(int(y))
			seen[int(y)] = true
		}
		a.UnionWith(b)
		return a.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
