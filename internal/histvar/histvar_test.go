package histvar_test

import (
	"math/rand"
	"testing"

	"countnet/internal/bitonic"
	"countnet/internal/dtree"
	"countnet/internal/histvar"
	"countnet/internal/schedule"
	"countnet/internal/topo"
)

// runTracked executes a random timing schedule on g while validating both
// knowledge lemmas on every event.
func runTracked(t *testing.T, g *topo.Graph, n int, c1, c2 int64, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	arr := make([]schedule.Arrival, n)
	entry := make([]int64, n)
	for k := range arr {
		arr[k] = schedule.Arrival{
			Time:  int64(rng.Intn(20 * n)),
			Input: rng.Intn(g.InWidth()),
		}
		entry[k] = arr[k].Time
	}
	tr := histvar.New(g, n)
	var lemmaErr error
	obs := func(ev schedule.Event) {
		tr.OnEvent(ev.Tok, ev.Node)
		if lemmaErr != nil {
			return
		}
		if err := tr.CheckLemma32(ev.Node, ev.Time, c1, entry); err != nil {
			lemmaErr = err
			return
		}
		if g.KindOf(ev.Node) == topo.KindCounter {
			if err := tr.CheckLemma31(ev.Tok, ev.Node); err != nil {
				lemmaErr = err
				return
			}
			if err := tr.CheckLemma33(ev.Node, ev.Time, c1, entry); err != nil {
				lemmaErr = err
			}
		}
	}
	if _, err := schedule.Run(g, arr, schedule.UniformRandom(c1, c2, seed), schedule.Options{Observer: obs}); err != nil {
		t.Fatal(err)
	}
	if lemmaErr != nil {
		t.Error(lemmaErr)
	}
}

func TestLemmas31And32OnBitonic(t *testing.T) {
	for _, w := range []int{2, 4, 8} {
		g, err := bitonic.New(w)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 10; seed++ {
			runTracked(t, g, 4*w, 10, 10+seed*5, seed)
		}
	}
}

func TestLemmas31And32OnTree(t *testing.T) {
	for _, w := range []int{2, 8, 16} {
		g, err := dtree.New(w)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 10; seed++ {
			runTracked(t, g, 3*w, 7, 7+seed*7, seed+100)
		}
	}
}

// TestKnowledgeMergesAtSharedNode checks the basic merge semantics: two
// tokens passing the same balancer learn of each other through it.
func TestKnowledgeMergesAtSharedNode(t *testing.T) {
	g, err := dtree.New(2)
	if err != nil {
		t.Fatal(err)
	}
	tr := histvar.New(g, 2)
	root := g.Input(0).Node
	tr.OnEvent(0, root)
	if tr.NodeKnowledge(root).Count() != 1 {
		t.Fatalf("node knowledge after first event = %d", tr.NodeKnowledge(root).Count())
	}
	if tr.TokenKnowledge(1).Has(0) {
		t.Fatal("token 1 knows token 0 before any shared event")
	}
	tr.OnEvent(1, root)
	if !tr.TokenKnowledge(1).Has(0) {
		t.Error("token 1 should have learned token 0 at the shared balancer")
	}
	if tr.TokenKnowledge(0).Has(1) {
		t.Error("token 0 cannot know token 1: its events happened first")
	}
}

func TestCheckLemma31RejectsNonCounter(t *testing.T) {
	g, err := dtree.New(2)
	if err != nil {
		t.Fatal(err)
	}
	tr := histvar.New(g, 1)
	if err := tr.CheckLemma31(0, g.Input(0).Node); err == nil {
		t.Error("CheckLemma31 accepted a balancer node")
	}
	if err := tr.CheckLemma33(g.Input(0).Node, 0, 1, nil); err == nil {
		t.Error("CheckLemma33 accepted a balancer node")
	}
}
