package histvar

import "math/bits"

// Bitset is a fixed-capacity set of token ids, sized at creation. The zero
// value is unusable; call NewBitset.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty set able to hold ids 0..n-1.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Add inserts id. Out-of-range ids are ignored.
func (b *Bitset) Add(id int) {
	if id < 0 || id >= b.n {
		return
	}
	b.words[id>>6] |= 1 << (uint(id) & 63)
}

// Has reports whether id is in the set.
func (b *Bitset) Has(id int) bool {
	if id < 0 || id >= b.n {
		return false
	}
	return b.words[id>>6]&(1<<(uint(id)&63)) != 0
}

// UnionWith adds every element of o to b.
func (b *Bitset) UnionWith(o *Bitset) {
	for i := range b.words {
		if i < len(o.words) {
			b.words[i] |= o.words[i]
		}
	}
}

// Count returns the cardinality of the set.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls fn for every element in increasing order.
func (b *Bitset) ForEach(fn func(id int)) {
	for i, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(i*64 + bit)
			w &= w - 1
		}
	}
}

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}
