// Package histvar implements the history variables of Section 2 of the
// paper: every token T carries a set H_T and every node D a set H_D of token
// ids ("implicit knowledge"). Initially H_T = {T} and H_D = {}; on each
// transition event <T, D> the two sets are merged: H_D = H_T = H_T ∪ H_D.
//
// The tracker makes the information-propagation lemmas of Section 3
// empirically checkable:
//
//   - Lemma 3.1: when T is the a-th token to exit on output Y_i of a network
//     with w outputs, |H_T| >= w*(a-1) + i + 1.
//   - Lemma 3.2: knowledge travels at most one link per c1 time, so every
//     token in H_D after an event at time t at a layer-(g+1) node entered
//     the network no later than t - g*c1.
package histvar

import (
	"fmt"

	"countnet/internal/topo"
)

// Tracker maintains H_T and H_D over an execution of a network.
type Tracker struct {
	g      *topo.Graph
	nodes  []*Bitset // per node
	tokens []*Bitset // per token
	exits  []int64   // per counter node: tokens exited so far
}

// New returns a Tracker for g able to track numTokens tokens.
func New(g *topo.Graph, numTokens int) *Tracker {
	t := &Tracker{
		g:      g,
		nodes:  make([]*Bitset, g.NumNodes()),
		tokens: make([]*Bitset, numTokens),
		exits:  make([]int64, g.NumNodes()),
	}
	for i := range t.nodes {
		t.nodes[i] = NewBitset(numTokens)
	}
	for i := range t.tokens {
		t.tokens[i] = NewBitset(numTokens)
		t.tokens[i].Add(i)
	}
	return t
}

// OnEvent merges knowledge for the transition event <tok, node>. Feed it
// every event of the execution, in execution order (e.g. from
// schedule.Options.Observer).
func (t *Tracker) OnEvent(tok int, node topo.NodeID) {
	ht := t.tokens[tok]
	hd := t.nodes[node]
	ht.UnionWith(hd)
	hd.UnionWith(ht) // hd now equals ht
	if t.g.KindOf(node) == topo.KindCounter {
		t.exits[node]++
	}
}

// TokenKnowledge returns H_T for token tok (a live view, not a copy).
func (t *Tracker) TokenKnowledge(tok int) *Bitset { return t.tokens[tok] }

// NodeKnowledge returns H_D for node id (a live view, not a copy).
func (t *Tracker) NodeKnowledge(id topo.NodeID) *Bitset { return t.nodes[id] }

// ExitOrdinal returns how many tokens have exited through counter node id.
func (t *Tracker) ExitOrdinal(id topo.NodeID) int64 { return t.exits[id] }

// CheckLemma31 verifies the Lemma 3.1 lower bound for a token that just
// exited: it was the a-th token to exit on Y_i, so its knowledge must
// contain at least w*(a-1) + i + 1 tokens.
func (t *Tracker) CheckLemma31(tok int, counter topo.NodeID) error {
	i := t.g.CounterIndex(counter)
	if i < 0 {
		return fmt.Errorf("histvar: node %d is not a counter", counter)
	}
	a := t.exits[counter] // already incremented by OnEvent
	w := int64(t.g.OutWidth())
	want := w*(a-1) + int64(i) + 1
	got := int64(t.tokens[tok].Count())
	if got < want {
		return fmt.Errorf("histvar: token %d exited %d-th on Y_%d with |H_T| = %d < %d (Lemma 3.1)",
			tok, a, i, got, want)
	}
	return nil
}

// CheckLemma33 verifies the combined Lemma 3.3 bound at an exit event: if
// token tok was the a-th to exit counter node at time t, then at least
// w*(a-1)+i+1 tokens entered the network no later than t - h*c1.
func (t *Tracker) CheckLemma33(counter topo.NodeID, now int64, c1 int64, entry []int64) error {
	i := t.g.CounterIndex(counter)
	if i < 0 {
		return fmt.Errorf("histvar: node %d is not a counter", counter)
	}
	a := t.exits[counter] // already incremented by OnEvent
	w := int64(t.g.OutWidth())
	want := w*(a-1) + int64(i) + 1
	limit := now - int64(t.g.Depth())*c1
	var early int64
	for _, e := range entry {
		if e <= limit {
			early++
		}
	}
	if early < want {
		return fmt.Errorf("histvar: exit %d on Y_%d at %d: only %d tokens entered by %d, want >= %d (Lemma 3.3)",
			a, i, now, early, limit, want)
	}
	return nil
}

// CheckLemma32 verifies the Lemma 3.2 bound after an event at time `now` at
// `node`: every token in H_node entered the network no later than
// now - (layer(node)-1)*c1, where entry[k] is token k's entry time.
func (t *Tracker) CheckLemma32(node topo.NodeID, now int64, c1 int64, entry []int64) error {
	g := int64(t.g.Layer(node) - 1)
	limit := now - g*c1
	var err error
	t.nodes[node].ForEach(func(id int) {
		if err == nil && entry[id] > limit {
			err = fmt.Errorf("histvar: node %d (layer %d) at time %d knows token %d which entered at %d > %d (Lemma 3.2)",
				node, g+1, now, id, entry[id], limit)
		}
	})
	return err
}
