package conformance

import (
	"fmt"
	"io"
	"os"

	"countnet/internal/lincheck"
	"countnet/internal/obs"
	"countnet/internal/schedule"
	"countnet/internal/topo"
)

// WitnessTrace is a violation correlated with its execution trace: the
// FirstWitness pair reported by lincheck plus the slice of transition
// events inside the minimal time window covering both operations. Written
// next to a shrunken reproducer it gives every fuzz failure a visual
// timeline.
type WitnessTrace struct {
	Witness  lincheck.Witness
	From, To int64 // the window [From, To] in schedule time units
	Events   []obs.Event
	Meta     obs.Meta

	// all is the full stamped transition trace the window was cut from;
	// DumpFlight preserves it whole so causal chains reaching outside the
	// witness window survive in the black-box artifact.
	all []obs.Event
}

// TraceWitness reruns the concrete schedule with tracing on the timed
// executor and correlates the first linearizability witness with the
// transition trace. ok is false when the schedule has no violation.
func TraceWitness(g *topo.Graph, c *schedule.Concrete) (wt *WitnessTrace, ok bool, err error) {
	res, err := c.Run(g, schedule.Options{Trace: true})
	if err != nil {
		return nil, false, fmt.Errorf("witness trace: %w", err)
	}
	w, ok := lincheck.FirstWitness(res.Ops)
	if !ok {
		return nil, false, nil
	}
	from, to := w.Preceding.Start, w.Violated.End
	if w.Violated.Start < from {
		from = w.Violated.Start
	}
	if w.Preceding.End > to {
		to = w.Preceding.End
	}
	// Stamp causal spans while converting: the executor replays
	// transitions in time order, so a running counter plus each token's
	// previous span reconstructs the per-token chains the engines record
	// natively.
	events := make([]obs.Event, 0, len(res.Events))
	var seq uint64
	last := make(map[int32]uint64)
	for _, ev := range res.Events {
		kind, val := obs.KindBalancer, int64(-1)
		if g.KindOf(ev.Node) == topo.KindCounter {
			kind, val = obs.KindCounter, ev.Value
		}
		tok := int32(ev.Tok)
		seq++
		events = append(events, obs.Event{T: ev.Time, Kind: kind,
			P: tok, Tok: tok, Node: int32(ev.Node), Value: val,
			Span: seq, Parent: last[tok]})
		last[tok] = seq
	}
	return &WitnessTrace{
		Witness: w,
		From:    from,
		To:      to,
		Events:  obs.Window(events, from, to),
		Meta:    obs.Meta{Engine: "schedule", Unit: "cycles", Net: c.Net, Width: c.Width},
		all:     events,
	}, true, nil
}

// DumpFlight writes the violation's black box: the full stamped
// transition trace pushed through a flight recorder and tripped with
// reason "lincheck-violation", so a shrunken fuzz failure leaves the same
// artifact a chaos run's liveness valve would. Returns the path written.
func (wt *WitnessTrace) DumpFlight(path string) (string, error) {
	n := len(wt.all)
	if n == 0 {
		n = 1
	}
	f := obs.NewFlight(wt.Meta, 1, n)
	for _, ev := range wt.all {
		f.Record(ev)
	}
	f.SetAutoDump(path)
	return f.Trip("lincheck-violation")
}

// WriteChrome writes the windowed slice in Chrome trace_event format.
func (wt *WitnessTrace) WriteChrome(w io.Writer) error {
	return obs.WriteChromeTrace(w, wt.Meta, wt.Events)
}

// WriteFile writes the slice to path, picking JSONL or Chrome format from
// the extension as obs.ExportFile does.
func (wt *WitnessTrace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.ExportFile(f, path, wt.Meta, wt.Events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
