package conformance

import (
	"testing"
	"time"

	"countnet/internal/faults"
	"countnet/internal/msgnet"
	"countnet/internal/workload"
)

// decodeFuzzPlan derives a valid fault plan from fuzzer bytes: network
// family, width, seed, default rule, then link-override / partition /
// stall records until the input is exhausted. Every numeric field is
// clamped into Validate's ranges, so the fuzzer explores plan content,
// not rejection paths. Returns nils when the bytes cannot seed a plan.
func decodeFuzzPlan(raw []byte) (workload.Spec, *faults.Plan, bool) {
	if len(raw) < 9 {
		return workload.Spec{}, nil, false
	}
	nets := []workload.NetKind{workload.Bitonic, workload.Periodic, workload.DTree}
	net := nets[int(raw[0])%len(nets)]
	width := []int{2, 4}[int(raw[1])%2]
	g, err := net.Build(width)
	if err != nil {
		return workload.Spec{}, nil, false
	}
	links, nodes := msgnet.NumLinks(g), g.NumNodes()
	rate := func(b byte) float64 { return float64(b) / 255 }
	// Keep injected latency tiny (<= ~6µs) so rate-1.0 delay plans still
	// finish the workload quickly.
	delay := func(b byte) int64 { return int64(b) * 25 }
	p := &faults.Plan{
		Net: string(net), Width: width,
		Seed: int64(raw[2]) | int64(raw[3])<<8,
		Default: faults.Rule{
			Drop: rate(raw[4]), Dup: rate(raw[5]), Reorder: rate(raw[6]),
			DelayNs: delay(raw[7]), JitterNs: delay(raw[8]),
		},
	}
	i := 9
	for i+1 < len(raw) && len(p.Links) < 4 && raw[i]%3 == 0 {
		if i+3 >= len(raw) {
			break
		}
		p.Links = append(p.Links, faults.LinkRule{
			Link: int(raw[i+1]) % links,
			Rule: faults.Rule{Drop: rate(raw[i+2]), Dup: rate(raw[i+3])},
		})
		i += 4
	}
	for i+2 < len(raw) && len(p.Partitions) < 2 && raw[i]%3 == 1 {
		from := int64(raw[i+1])
		p.Partitions = append(p.Partitions, faults.Partition{
			Links: []int{int(raw[i+2]) % links},
			From:  from, To: from + 1 + int64(raw[i+2])%64,
		})
		i += 3
	}
	for i+2 < len(raw) && len(p.Stalls) < 2 {
		from := int64(raw[i+1])
		p.Stalls = append(p.Stalls, faults.Stall{
			Node: int(raw[i]) % nodes,
			From: from, To: from + 1 + int64(raw[i+2])%64,
			Crash:   raw[i+2]%2 == 0,
			PauseNs: delay(raw[i+1]),
		})
		i += 3
	}
	spec := workload.Spec{Net: net, Width: width, Procs: 3, Ops: 36, Seed: p.Seed}
	return spec, p, true
}

// FuzzFaultPlan is the native fuzzing entry point for the fault layer:
// every fuzzer-chosen plan must (a) pass Validate, (b) leave the msgnet
// engine live — the workload completes within the watchdog window instead
// of deadlocking — and (c) preserve the quiescent step-property
// invariants. Run with `go test -fuzz FuzzFaultPlan ./internal/conformance`;
// the seed corpus runs on every plain `go test`.
func FuzzFaultPlan(f *testing.F) {
	// No faults at all; pure drop; everything at once; windowed events.
	f.Add([]byte{0, 0, 1, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 1, 7, 0, 255, 0, 0, 0, 0})
	f.Add([]byte{2, 0, 9, 1, 128, 128, 128, 40, 40, 0, 2, 200, 255, 1, 3, 5, 4, 0, 30})
	f.Add([]byte{0, 1, 3, 2, 60, 60, 60, 10, 10, 1, 0, 7, 2, 50, 9})
	f.Fuzz(func(t *testing.T, raw []byte) {
		spec, plan, ok := decodeFuzzPlan(raw)
		if !ok {
			return
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("decoder produced invalid plan: %v\n%v", err, plan)
		}
		type outcome struct {
			exec *Execution
			err  error
		}
		done := make(chan outcome, 1)
		go func() {
			exec, err := runMsgnet(spec, plan, "msgnet-faults", nil, nil)
			done <- outcome{exec, err}
		}()
		select {
		case o := <-done:
			if o.err != nil {
				t.Fatalf("chaos run failed: %v\nplan: %v", o.err, plan)
			}
			if len(o.exec.Ops) != spec.Ops {
				t.Fatalf("completed %d of %d ops under %v", len(o.exec.Ops), spec.Ops, plan)
			}
			if err := o.exec.CheckUniversal(spec.Width); err != nil {
				t.Fatalf("invariant breach: %v\nplan: %v", err, plan)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("fault plan deadlocked msgnet: %v", plan)
		}
	})
}
