package conformance

import "countnet/internal/schedule"

// Predicate reports whether a candidate schedule still fails — still
// triggers the invariant breach being minimized. Shrinking keeps only
// transformations that preserve failure.
type Predicate func(*schedule.Concrete) bool

// shrinkBudget caps predicate evaluations so shrinking a pathological
// schedule stays fast; greedy minimization converges far below this on
// realistic failures.
const shrinkBudget = 4000

// Shrink greedily minimizes a failing schedule while the predicate keeps
// failing: it removes tokens, pulls arrival times toward zero, simplifies
// per-link delays toward c1, and drops explicit delay lists entirely. The
// result is a small reproducer — for real engine bugs typically the two or
// three tokens whose inversion witnesses the breach — suitable for
// serialization with schedule.WriteConcrete and replay via
// `cmd/adversary -replay`.
func Shrink(c *schedule.Concrete, fails Predicate) *schedule.Concrete {
	cur := c.Clone()
	if !fails(cur) {
		return cur // not failing: nothing to preserve, return as-is
	}
	budget := shrinkBudget
	try := func(cand *schedule.Concrete) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if fails(cand) {
			cur = cand
			return true
		}
		return false
	}
	for improved := true; improved && budget > 0; {
		improved = false
		// Pass 1: drop tokens, highest index first so earlier indices
		// stay stable while iterating.
		for i := len(cur.Tokens) - 1; i >= 0; i-- {
			cand := cur.Clone()
			cand.Tokens = append(cand.Tokens[:i], cand.Tokens[i+1:]...)
			if len(cand.Tokens) == 0 {
				continue
			}
			if try(cand) {
				improved = true
			}
		}
		// Pass 2: pull arrival times toward zero (set to zero, else halve).
		for i := range cur.Tokens {
			if cur.Tokens[i].Time == 0 {
				continue
			}
			cand := cur.Clone()
			cand.Tokens[i].Time = 0
			if try(cand) {
				improved = true
				continue
			}
			cand = cur.Clone()
			cand.Tokens[i].Time /= 2
			if try(cand) {
				improved = true
			}
		}
		// Pass 3: simplify delays — drop the whole list (implicit c1
		// everywhere), else set entries to c1, else halve toward c1.
		for i := range cur.Tokens {
			if cur.Tokens[i].Delays != nil {
				cand := cur.Clone()
				cand.Tokens[i].Delays = nil
				if try(cand) {
					improved = true
					continue
				}
			}
			for l := range cur.Tokens[i].Delays {
				d := cur.Tokens[i].Delays[l]
				if d == cur.C1 {
					continue
				}
				cand := cur.Clone()
				cand.Tokens[i].Delays[l] = cur.C1
				if try(cand) {
					improved = true
					continue
				}
				cand = cur.Clone()
				cand.Tokens[i].Delays[l] = cur.C1 + (d-cur.C1)/2
				if try(cand) {
					improved = true
				}
			}
		}
		// Pass 4: shift every arrival so the earliest is zero. Skip
		// token-less schedules: minT would keep its sentinel and the
		// no-op shift would burn the whole budget re-proving failure.
		var minT int64 = 1<<62 - 1
		for _, tok := range cur.Tokens {
			if tok.Time < minT {
				minT = tok.Time
			}
		}
		if len(cur.Tokens) > 0 && minT > 0 {
			cand := cur.Clone()
			for i := range cand.Tokens {
				cand.Tokens[i].Time -= minT
			}
			if try(cand) {
				improved = true
			}
		}
	}
	return cur
}
