package conformance

import (
	"fmt"
	"math/rand"

	"countnet/internal/schedule"
	"countnet/internal/topo"
	"countnet/internal/workload"
)

// GenOptions tunes the random-schedule generator.
type GenOptions struct {
	// MaxTokens bounds the tokens per schedule (default 16).
	MaxTokens int
	// MaxC1 bounds the minimum link delay (default 50).
	MaxC1 int64
	// Bounded forces c2 <= 2*c1, the Corollary 3.9 regime where zero
	// violations are guaranteed; unbounded schedules draw c2/c1 ratios in
	// (2, 6], the regime the padding check needs.
	Bounded bool
}

func (o GenOptions) withDefaults() GenOptions {
	if o.MaxTokens <= 0 {
		o.MaxTokens = 16
	}
	if o.MaxC1 <= 0 {
		o.MaxC1 = 50
	}
	return o
}

// Generate draws one random concrete schedule for g: random timing bounds,
// random arrival times over a horizon proportional to the network depth,
// and per-token per-link delays uniform over [c1, c2] with a bias toward
// the extremes (worst cases live at the boundary, as in schedule.Search).
func Generate(rng *rand.Rand, net workload.NetKind, width int, g *topo.Graph, opts GenOptions) *schedule.Concrete {
	opts = opts.withDefaults()
	c1 := 1 + rng.Int63n(opts.MaxC1)
	var c2 int64
	if opts.Bounded {
		c2 = c1 + rng.Int63n(c1+1) // c2 <= 2*c1
	} else {
		c2 = 2*c1 + 1 + rng.Int63n(4*c1) // 2 < c2/c1 <= 6
	}
	tokens := 1 + rng.Intn(opts.MaxTokens)
	links := g.Depth()
	horizon := int64(links)*c2*2 + 1
	c := &schedule.Concrete{Net: string(net), Width: width, C1: c1, C2: c2}
	for k := 0; k < tokens; k++ {
		tok := schedule.ConcreteToken{
			Time:   rng.Int63n(horizon),
			Input:  rng.Intn(g.InWidth()),
			Delays: make([]int64, links),
		}
		for l := range tok.Delays {
			switch rng.Intn(4) {
			case 0:
				tok.Delays[l] = c1
			case 1:
				tok.Delays[l] = c2
			default:
				tok.Delays[l] = c1 + rng.Int63n(c2-c1+1)
			}
		}
		c.Tokens = append(c.Tokens, tok)
	}
	return c
}

// FuzzRound generates and checks one random schedule for (net, width):
// bounded rounds assert the full invariant set including Corollary 3.9;
// unbounded rounds assert the interleaving-independent invariants plus the
// Corollary 3.12 padded-network guarantee. On failure it returns the
// offending schedule alongside the error.
func FuzzRound(rng *rand.Rand, net workload.NetKind, width int, g *topo.Graph, bounded bool) (*schedule.Concrete, error) {
	c := Generate(rng, net, width, g, GenOptions{Bounded: bounded})
	if err := CheckConcrete(g, c); err != nil {
		return c, err
	}
	if !bounded {
		if err := CheckPadded(g, c); err != nil {
			return c, err
		}
	}
	return c, nil
}

// SoakConfig configures a long-running fuzzing soak over every network
// family and width in the matrix.
type SoakConfig struct {
	Nets   []workload.NetKind
	Widths []int
	// Rounds is the number of schedules per (net, width, regime) cell.
	Rounds int
	Seed   int64
	// Shrink minimizes any failing schedule before reporting it.
	Shrink bool
	// Progress, when non-nil, receives a line per completed cell.
	Progress func(format string, args ...any)
}

// SoakFailure is one invariant breach found by a soak, with its (possibly
// shrunk) reproducer schedule.
type SoakFailure struct {
	Net     workload.NetKind
	Width   int
	Bounded bool
	Sched   *schedule.Concrete
	Err     error
}

// Soak fuzzes random schedules across the configured matrix and returns
// the first failure, shrunk to a minimal reproducer when cfg.Shrink is
// set, or nil when every round passed. rounds reports how many schedules
// were executed.
func Soak(cfg SoakConfig) (fail *SoakFailure, rounds int, err error) {
	if len(cfg.Nets) == 0 {
		cfg.Nets = []workload.NetKind{workload.Bitonic, workload.Periodic, workload.DTree}
	}
	if len(cfg.Widths) == 0 {
		cfg.Widths = []int{2, 4, 8}
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, net := range cfg.Nets {
		for _, width := range cfg.Widths {
			g, err := net.Build(width)
			if err != nil {
				return nil, rounds, err
			}
			for _, bounded := range []bool{true, false} {
				for r := 0; r < cfg.Rounds; r++ {
					c, err := FuzzRound(rng, net, width, g, bounded)
					rounds++
					if err == nil {
						continue
					}
					f := &SoakFailure{Net: net, Width: width, Bounded: bounded, Sched: c, Err: err}
					if cfg.Shrink {
						f.Sched = Shrink(c, func(cand *schedule.Concrete) bool {
							if checkErr := CheckConcrete(g, cand); checkErr != nil {
								return true
							}
							if !bounded {
								return CheckPadded(g, cand) != nil
							}
							return false
						})
					}
					return f, rounds, nil
				}
				if cfg.Progress != nil {
					regime := "c2<=2c1"
					if !bounded {
						regime = "c2>2c1+pad"
					}
					cfg.Progress("%s[%d] %s: %d rounds ok", net, width, regime, cfg.Rounds)
				}
			}
		}
	}
	return nil, rounds, nil
}

// Error renders the failure with its reproducer size.
func (f *SoakFailure) Error() string {
	return fmt.Sprintf("%s[%d] (bounded=%v): %v [reproducer: %d tokens]",
		f.Net, f.Width, f.Bounded, f.Err, len(f.Sched.Tokens))
}
