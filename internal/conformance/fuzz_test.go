package conformance

import (
	"testing"

	"countnet/internal/schedule"
	"countnet/internal/topo"
	"countnet/internal/workload"
)

// decodeFuzzSchedule derives a bounded (c2 <= 2*c1) concrete schedule from
// fuzzer bytes: network family, width, timing bounds, then per-token
// arrival/input/delay bytes until the input is exhausted (at most 12
// tokens). Returns nils when the bytes cannot seed at least one token.
func decodeFuzzSchedule(raw []byte) (*topo.Graph, *schedule.Concrete) {
	if len(raw) < 6 {
		return nil, nil
	}
	nets := []workload.NetKind{workload.Bitonic, workload.Periodic, workload.DTree}
	net := nets[int(raw[0])%len(nets)]
	width := []int{2, 4, 8}[int(raw[1])%3]
	g, err := net.Build(width)
	if err != nil {
		return nil, nil
	}
	c1 := 1 + int64(raw[2])%50
	c2 := c1 + int64(raw[3])%(c1+1) // bounded: c2 <= 2*c1
	c := &schedule.Concrete{Net: string(net), Width: width, C1: c1, C2: c2}
	links := g.Depth()
	horizon := int64(links)*c2*2 + 1
	i := 4
	for len(c.Tokens) < 12 && i+2+links <= len(raw) {
		tok := schedule.ConcreteToken{
			Time:   (int64(raw[i]) * horizon) / 256,
			Input:  int(raw[i+1]) % g.InWidth(),
			Delays: make([]int64, links),
		}
		for l := 0; l < links; l++ {
			tok.Delays[l] = c1 + int64(raw[i+2+l])%(c2-c1+1)
		}
		i += 2 + links
		c.Tokens = append(c.Tokens, tok)
	}
	if len(c.Tokens) == 0 {
		return nil, nil
	}
	return g, c
}

// FuzzBoundedSchedule is the native fuzzing entry point for the
// conformance harness: every fuzzer-chosen schedule with c2 <= 2*c1 must
// satisfy the full invariant set — gapless permutation, exact step
// tallies, per-balancer step property, analyzer agreement, and zero
// violations (Corollary 3.9). Run with
// `go test -fuzz FuzzBoundedSchedule ./internal/conformance`; the seed
// corpus runs on every plain `go test`.
func FuzzBoundedSchedule(f *testing.F) {
	f.Add([]byte{0, 1, 9, 9, 0, 0, 5, 5, 5, 128, 0, 5, 5, 5})
	f.Add([]byte{1, 2, 49, 49, 10, 1, 1, 1, 1, 1, 1, 20, 0, 9, 9, 9, 9, 9})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 1, 255, 0, 2})
	f.Add([]byte{0, 0, 7, 3, 200, 1, 4, 100, 0, 6, 0, 0, 3, 30, 1, 5})
	f.Fuzz(func(t *testing.T, raw []byte) {
		g, c := decodeFuzzSchedule(raw)
		if c == nil {
			return
		}
		if err := CheckConcrete(g, c); err != nil {
			t.Fatalf("invariant breach: %v\nschedule: %+v", err, c)
		}
	})
}

// FuzzPaddedSchedule fuzzes the Corollary 3.12 guarantee: schedules with
// 2 < c2/c1 <= 3 run violation-free on the padded network.
func FuzzPaddedSchedule(f *testing.F) {
	f.Add([]byte{0, 1, 9, 9, 0, 0, 5, 5, 5, 128, 0, 5, 5, 5})
	f.Add([]byte{2, 0, 3, 200, 0, 0, 1, 90, 0, 2})
	f.Fuzz(func(t *testing.T, raw []byte) {
		g, c := decodeFuzzSchedule(raw)
		if c == nil {
			return
		}
		// Re-bound the delays into [c1, 3*c1]: keep c1, widen c2 to three
		// times it, and stretch each delay proportionally.
		oldSpan := c.C2 - c.C1
		c.C2 = 3 * c.C1
		for k := range c.Tokens {
			for l, d := range c.Tokens[k].Delays {
				if oldSpan == 0 {
					c.Tokens[k].Delays[l] = c.C1
					continue
				}
				c.Tokens[k].Delays[l] = c.C1 + (d-c.C1)*(c.C2-c.C1)/oldSpan
			}
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("rebound produced invalid schedule: %v", err)
		}
		if err := CheckPadded(g, c); err != nil {
			t.Fatalf("padded invariant breach: %v\nschedule: %+v", err, c)
		}
	})
}
