package conformance

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"countnet/internal/bitonic"
	"countnet/internal/obs"
	"countnet/internal/schedule"
)

// violatingSchedule synthesizes a concrete schedule with at least one
// linearizability violation (c2 = 4*c1, where the search provably can find
// one for Bitonic[4]).
func violatingSchedule(t *testing.T) *schedule.Concrete {
	t.Helper()
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := schedule.Search(g, schedule.SearchSpec{
		C1: 10, C2: 40, Tokens: 10, Rounds: 400, Restarts: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations < 1 {
		t.Skip("search found no violation under this seed")
	}
	return res.Concrete("bitonic", 4, 10, 40)
}

// TestTraceWitness checks violation correlation end to end: the witness
// pair exists, the window covers both its operations, every sliced event
// overlaps the window, and the slice survives a Chrome-format export.
func TestTraceWitness(t *testing.T) {
	c := violatingSchedule(t)
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	wt, ok, err := TraceWitness(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("violating schedule produced no witness")
	}
	w := wt.Witness
	if w.Preceding.End >= w.Violated.Start {
		t.Fatalf("witness pair not ordered: %s", w)
	}
	if w.Preceding.Value <= w.Violated.Value {
		t.Fatalf("witness pair is not a violation: %s", w)
	}
	if wt.From > w.Preceding.Start || wt.To < w.Violated.End {
		t.Fatalf("window [%d,%d] does not cover witness pair %s", wt.From, wt.To, w)
	}
	if len(wt.Events) == 0 {
		t.Fatal("empty trace slice")
	}
	for _, ev := range wt.Events {
		if ev.T < wt.From || ev.T > wt.To {
			t.Fatalf("event %+v outside window [%d,%d]", ev, wt.From, wt.To)
		}
	}
	// The violated token's counter event must be inside the slice — that
	// is the point of the correlation.
	var counters int
	for _, ev := range wt.Events {
		if ev.Kind == obs.KindCounter && ev.Value == w.Violated.Value {
			counters++
		}
	}
	if counters != 1 {
		t.Fatalf("violated operation's counter event appears %d times in the slice", counters)
	}

	var buf bytes.Buffer
	if err := wt.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}

	path := filepath.Join(t.TempDir(), "witness.trace.json")
	if err := wt.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, buf.Bytes()) {
		t.Fatal("WriteFile and WriteChrome disagree for a .json path")
	}
}

// TestTraceWitnessCleanSchedule pins ok=false on a violation-free run.
func TestTraceWitnessCleanSchedule(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	c := &schedule.Concrete{Net: "bitonic", Width: 4, C1: 10, C2: 20}
	for k := 0; k < 6; k++ {
		c.Tokens = append(c.Tokens, schedule.ConcreteToken{
			Time: int64(k * 100), Input: k % g.InWidth(),
			Delays: []int64{10, 15, 20},
		})
	}
	if _, ok, err := TraceWitness(g, c); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("c2 <= 2*c1 schedule reported a witness")
	}
}
