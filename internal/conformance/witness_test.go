package conformance

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"countnet/internal/bitonic"
	"countnet/internal/obs"
	"countnet/internal/schedule"
)

// violatingSchedule synthesizes a concrete schedule with at least one
// linearizability violation (c2 = 4*c1, where the search provably can find
// one for Bitonic[4]).
func violatingSchedule(t *testing.T) *schedule.Concrete {
	t.Helper()
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := schedule.Search(g, schedule.SearchSpec{
		C1: 10, C2: 40, Tokens: 10, Rounds: 400, Restarts: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations < 1 {
		t.Skip("search found no violation under this seed")
	}
	return res.Concrete("bitonic", 4, 10, 40)
}

// TestTraceWitness checks violation correlation end to end: the witness
// pair exists, the window covers both its operations, every sliced event
// overlaps the window, and the slice survives a Chrome-format export.
func TestTraceWitness(t *testing.T) {
	c := violatingSchedule(t)
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	wt, ok, err := TraceWitness(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("violating schedule produced no witness")
	}
	w := wt.Witness
	if w.Preceding.End >= w.Violated.Start {
		t.Fatalf("witness pair not ordered: %s", w)
	}
	if w.Preceding.Value <= w.Violated.Value {
		t.Fatalf("witness pair is not a violation: %s", w)
	}
	if wt.From > w.Preceding.Start || wt.To < w.Violated.End {
		t.Fatalf("window [%d,%d] does not cover witness pair %s", wt.From, wt.To, w)
	}
	if len(wt.Events) == 0 {
		t.Fatal("empty trace slice")
	}
	for _, ev := range wt.Events {
		if ev.T < wt.From || ev.T > wt.To {
			t.Fatalf("event %+v outside window [%d,%d]", ev, wt.From, wt.To)
		}
	}
	// The violated token's counter event must be inside the slice — that
	// is the point of the correlation.
	var counters int
	for _, ev := range wt.Events {
		if ev.Kind == obs.KindCounter && ev.Value == w.Violated.Value {
			counters++
		}
	}
	if counters != 1 {
		t.Fatalf("violated operation's counter event appears %d times in the slice", counters)
	}

	var buf bytes.Buffer
	if err := wt.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}

	path := filepath.Join(t.TempDir(), "witness.trace.json")
	if err := wt.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, buf.Bytes()) {
		t.Fatal("WriteFile and WriteChrome disagree for a .json path")
	}
}

// TestTraceWitnessCleanSchedule pins ok=false on a violation-free run.
func TestTraceWitnessCleanSchedule(t *testing.T) {
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	c := &schedule.Concrete{Net: "bitonic", Width: 4, C1: 10, C2: 20}
	for k := 0; k < 6; k++ {
		c.Tokens = append(c.Tokens, schedule.ConcreteToken{
			Time: int64(k * 100), Input: k % g.InWidth(),
			Delays: []int64{10, 15, 20},
		})
	}
	if _, ok, err := TraceWitness(g, c); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("c2 <= 2*c1 schedule reported a witness")
	}
}

// TestWitnessFlightDump is the acceptance check for the violation black
// box: a lincheck violation yields a flight dump whose causal (span)
// order agrees with the witness pair — the preceding operation's counter
// event happens-before the violated one's — and whose trace is causally
// closed with per-token chains intact.
func TestWitnessFlightDump(t *testing.T) {
	c := violatingSchedule(t)
	g, err := bitonic.New(4)
	if err != nil {
		t.Fatal(err)
	}
	wt, ok, err := TraceWitness(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("violating schedule produced no witness")
	}
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	got, err := wt.DumpFlight(path)
	if err != nil || got != path {
		t.Fatalf("DumpFlight = (%q, %v)", got, err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	meta, events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Reason != "lincheck-violation" {
		t.Fatalf("dump reason = %q", meta.Reason)
	}
	if closed, orphans := obs.CausalClosure(events); orphans != 0 || len(closed) != len(events) {
		t.Fatalf("flight dump not causally closed: %d orphans", orphans)
	}
	// Per-token chains: walking in span order, each event's parent is the
	// token's previous span.
	lastSpan := map[int32]uint64{}
	sort.Slice(events, func(i, j int) bool { return events[i].Span < events[j].Span })
	var precedingSpan, violatedSpan uint64
	w := wt.Witness
	for _, ev := range events {
		if ev.Span == 0 {
			t.Fatalf("unstamped event in flight dump: %+v", ev)
		}
		if ev.Parent != lastSpan[ev.Tok] {
			t.Fatalf("token %d chain broken at %+v (want parent %d)", ev.Tok, ev, lastSpan[ev.Tok])
		}
		lastSpan[ev.Tok] = ev.Span
		if ev.Kind == obs.KindCounter {
			switch ev.Value {
			case w.Preceding.Value:
				precedingSpan = ev.Span
			case w.Violated.Value:
				violatedSpan = ev.Span
			}
		}
	}
	if precedingSpan == 0 || violatedSpan == 0 {
		t.Fatalf("witness pair counter events missing from dump (preceding=%d violated=%d)",
			precedingSpan, violatedSpan)
	}
	// The preceding op finished before the violated one started, so its
	// count happens-before the violated count: span order must agree.
	if precedingSpan >= violatedSpan {
		t.Fatalf("dump causal order contradicts witness pair: preceding span %d >= violated span %d",
			precedingSpan, violatedSpan)
	}
}
