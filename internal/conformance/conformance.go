// Package conformance is the cross-engine differential testing harness: it
// runs the same workloads through every execution engine in the repository
// — the quiescent topo executor, the cycle simulator (internal/sim), the
// real-goroutine runtime (internal/shm) plain, behind the
// elimination/combining funnel (internal/shm/combine), and behind the
// contention-adaptive front-end (internal/shm/adaptive), the
// message-passing runtime (internal/msgnet) both fault-free and under
// deterministic fault injection (internal/faults), and the timed schedule
// executor (internal/schedule) —
// and asserts the invariants that must hold in every engine, no matter the
// interleaving:
//
//   - output values form a gapless permutation 0..n-1, equivalently the
//     per-output tallies are exactly the step-property counts (Section 2);
//   - per-balancer output tallies satisfy the step property at quiescence,
//     checked from transition traces where the engine exposes them;
//   - the O(n log n) linearizability sweep agrees with the quadratic
//     oracle (lincheck.Analyze vs AnalyzeBrute);
//   - zero violations whenever c2 <= 2*c1 (Corollary 3.9), for engines
//     with bounded link delays;
//   - padded networks (Corollary 3.12) are violation-free under k-bounded
//     schedules.
//
// Engine disagreement is a test failure, which makes the harness the
// automated form of DESIGN.md's ablation 1 ("violation ratios from both
// engines agree in shape") and the correctness foundation for scaling work:
// any engine bug shows up as an invariant breach with a serializable
// reproducer (a workload.Spec JSON or a shrunk schedule.Concrete JSONL).
package conformance

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"countnet/internal/lincheck"
	"countnet/internal/schedule"
	"countnet/internal/topo"
	"countnet/internal/workload"
)

// Execution is the engine-neutral record of one run: the completed
// operations and, when the engine exposes transitions, each token's node
// sequence.
type Execution struct {
	// Engine names the engine that produced the execution.
	Engine string
	// Ops holds one record per completed operation.
	Ops []lincheck.Op
	// Paths holds each token's transited node sequence, when available
	// (quiescent and schedule engines); nil otherwise.
	Paths [][]topo.NodeID
}

// Values extracts the counter values of the execution's operations.
func (e *Execution) Values() []int64 {
	out := make([]int64, len(e.Ops))
	for i, op := range e.Ops {
		out[i] = op.Value
	}
	return out
}

// CheckUniversal verifies the invariants every engine must satisfy on a
// quiescent execution over a width-w network: gapless permutation, exact
// step tallies per output, and analyzer agreement.
func (e *Execution) CheckUniversal(w int) error {
	if err := checkPermutation(e.Values()); err != nil {
		return fmt.Errorf("%s: %w", e.Engine, err)
	}
	if err := checkTallies(e.Values(), w); err != nil {
		return fmt.Errorf("%s: %w", e.Engine, err)
	}
	if err := checkAnalyzers(e.Ops); err != nil {
		return fmt.Errorf("%s: %w", e.Engine, err)
	}
	return nil
}

// checkPermutation verifies the values are exactly {0, 1, ..., n-1}: the
// counting property at quiescence. Duplicates and gaps are both reported.
func checkPermutation(values []int64) error {
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, v := range sorted {
		if v != int64(i) {
			return fmt.Errorf("values are not a gapless permutation: position %d holds %d (values %v)", i, v, clip(sorted))
		}
	}
	return nil
}

// checkTallies verifies the per-output exit tallies implied by the values
// (value v exited output v mod w) are exactly the step-property counts for
// the total — the strongest form of cross-engine agreement: every engine
// must end in the identical quiescent counter state.
func checkTallies(values []int64, w int) error {
	tallies := make([]int64, w)
	for _, v := range values {
		if v < 0 {
			return fmt.Errorf("negative value %d", v)
		}
		tallies[int(v)%w]++
	}
	want := topo.StepCounts(int64(len(values)), w)
	for i := range tallies {
		if tallies[i] != want[i] {
			return fmt.Errorf("output tallies %v != step counts %v for %d tokens", tallies, want, len(values))
		}
	}
	if !topo.StepPropertyHolds(tallies) {
		return fmt.Errorf("output tallies %v violate the step property", tallies)
	}
	return nil
}

// checkAnalyzers cross-checks the O(n log n) sweep against the quadratic
// oracle on the execution's own operations.
func checkAnalyzers(ops []lincheck.Op) error {
	a, b := lincheck.Analyze(ops), lincheck.AnalyzeBrute(ops)
	if a.NonLinearizable != b.NonLinearizable || a.MaxInversion != b.MaxInversion || a.FirstViolation != b.FirstViolation {
		return fmt.Errorf("lincheck sweep (%v) disagrees with brute oracle (%v)", a, b)
	}
	return nil
}

// checkBalancerStep verifies the step property on every balancer's
// per-output exit counts, reconstructed from token paths: consecutive path
// nodes identify which output each token took. Balancers whose outputs
// cannot be distinguished by destination node (two ports wired to the same
// node) are skipped.
func checkBalancerStep(g *topo.Graph, paths [][]topo.NodeID) error {
	type key struct {
		bal  topo.NodeID
		port int
	}
	destPort := make(map[topo.NodeID]map[topo.NodeID]int)
	ambiguous := make(map[topo.NodeID]bool)
	for _, id := range g.Balancers() {
		m := make(map[topo.NodeID]int, g.FanOut(id))
		for p := 0; p < g.FanOut(id); p++ {
			dest := g.OutDest(id, p).Node
			if _, dup := m[dest]; dup {
				ambiguous[id] = true
			}
			m[dest] = p
		}
		destPort[id] = m
	}
	counts := make(map[key]int64)
	for tok, path := range paths {
		for i := 0; i+1 < len(path); i++ {
			id := path[i]
			if g.KindOf(id) != topo.KindBalancer || ambiguous[id] {
				continue
			}
			p, ok := destPort[id][path[i+1]]
			if !ok {
				return fmt.Errorf("token %d jumped from node %d to unwired node %d", tok, id, path[i+1])
			}
			counts[key{id, p}]++
		}
	}
	for _, id := range g.Balancers() {
		if ambiguous[id] {
			continue
		}
		per := make([]int64, g.FanOut(id))
		for p := range per {
			per[p] = counts[key{id, p}]
		}
		if !topo.StepPropertyHolds(per) {
			return fmt.Errorf("balancer %d output counts %v violate the step property", id, per)
		}
	}
	return nil
}

// clip truncates long value lists for error messages.
func clip(v []int64) []int64 {
	if len(v) > 24 {
		return v[:24]
	}
	return v
}

// RunQuiescent executes `tokens` tokens through g on the topo stepper under
// an rng-chosen interleaving, to quiescence. Operation timestamps are the
// interleaving step indices, so lincheck analysis is meaningful.
func RunQuiescent(g *topo.Graph, tokens int, seed int64) (*Execution, error) {
	rng := rand.New(rand.NewSource(seed))
	s := topo.NewStepper(g)
	s.TrackPaths()
	starts := make([]int64, tokens)
	for k := 0; k < tokens; k++ {
		s.Inject(k % g.InWidth())
	}
	live := make([]int, tokens)
	for k := range live {
		live[k] = k
	}
	exec := &Execution{Engine: "quiescent", Ops: make([]lincheck.Op, tokens)}
	var step int64
	for len(live) > 0 {
		step++
		i := rng.Intn(len(live))
		tok := live[i]
		if starts[tok] == 0 {
			starts[tok] = step
		}
		done, err := s.Step(tok)
		if err != nil {
			return nil, fmt.Errorf("quiescent: %w", err)
		}
		if done {
			v, _ := s.Value(tok)
			exec.Ops[tok] = lincheck.Op{Start: starts[tok], End: step, Value: v}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if !s.Quiescent() {
		return nil, fmt.Errorf("quiescent: executor not quiescent after drain")
	}
	exec.Paths = make([][]topo.NodeID, tokens)
	for k := 0; k < tokens; k++ {
		exec.Paths[k] = s.Path(k)
	}
	return exec, nil
}

// RunSim executes the spec on the cycle simulator.
func RunSim(spec workload.Spec) (*Execution, error) {
	res, err := spec.Run()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return &Execution{Engine: "sim", Ops: res.Ops}, nil
}

// RunSHM executes the spec on the real-goroutine shared-memory runtime,
// mapping W cycles to nanoseconds of wall-clock delay.
func RunSHM(spec workload.Spec) (*Execution, error) {
	real := workload.RealSpec{
		Net:         spec.Net,
		Width:       spec.Width,
		Workers:     spec.Procs,
		Ops:         spec.Ops,
		Frac:        spec.Frac,
		Delay:       time.Duration(spec.Wait) * time.Nanosecond,
		RandomDelay: spec.RandomWait,
		Seed:        spec.Seed,
	}
	res, err := real.Run()
	if err != nil {
		return nil, fmt.Errorf("shm: %w", err)
	}
	return &Execution{Engine: "shm", Ops: res.Ops}, nil
}

// RunSHMCombined executes the spec on the shared-memory runtime with the
// elimination/combining funnel enabled: tokens rendezvous in front of
// the network and combined walks carry several tokens at once. The
// funnel must be invisible in every quiescent invariant — identical
// value multiset, tallies, and analyzer agreement — which is exactly
// what running it as a differential engine asserts.
func RunSHMCombined(spec workload.Spec) (*Execution, error) {
	real := workload.RealSpec{
		Net:         spec.Net,
		Width:       spec.Width,
		Workers:     spec.Procs,
		Ops:         spec.Ops,
		Frac:        spec.Frac,
		Delay:       time.Duration(spec.Wait) * time.Nanosecond,
		RandomDelay: spec.RandomWait,
		Seed:        spec.Seed,
		Combine:     true,
	}
	res, err := real.Run()
	if err != nil {
		return nil, fmt.Errorf("shm-combine: %w", err)
	}
	return &Execution{Engine: "shm-combine", Ops: res.Ops}, nil
}

// RunSHMAdaptive executes the spec on the shared-memory runtime behind
// the contention-adaptive front-end (internal/shm/adaptive), with the
// Linearizable option on so the Corollary 3.12 padding path is exercised
// whenever the measured ratio implies k > 2. Tokens cross direct-counter,
// funnel, and network regimes mid-run; the drain-then-switch epochs must
// make every transition invisible in the quiescent invariants, which is
// what running it as a differential engine asserts.
func RunSHMAdaptive(spec workload.Spec) (*Execution, error) {
	real := workload.RealSpec{
		Net:                  spec.Net,
		Width:                spec.Width,
		Workers:              spec.Procs,
		Ops:                  spec.Ops,
		Frac:                 spec.Frac,
		Delay:                time.Duration(spec.Wait) * time.Nanosecond,
		RandomDelay:          spec.RandomWait,
		Seed:                 spec.Seed,
		Adaptive:             true,
		AdaptiveLinearizable: true,
	}
	res, err := real.Run()
	if err != nil {
		return nil, fmt.Errorf("shm-adaptive: %w", err)
	}
	return &Execution{Engine: "shm-adaptive", Ops: res.Ops}, nil
}

// RunSHMAdaptiveLinear executes the spec on the shared-memory runtime
// behind the adaptive front-end pinned to the guaranteed-linearizable
// waiting regime: LinearBelow is set far above any reachable occupancy,
// so every token either takes the direct counter or traverses the
// network and then waits its turn (ModeLinear). Unlike shm-adaptive,
// whose unpadded network epochs may legitimately misorder under
// injected W, this engine promises full linearizability — CrossCheck
// asserts lincheck finds zero violations on its history.
func RunSHMAdaptiveLinear(spec workload.Spec) (*Execution, error) {
	real := workload.RealSpec{
		Net:                 spec.Net,
		Width:               spec.Width,
		Workers:             spec.Procs,
		Ops:                 spec.Ops,
		Frac:                spec.Frac,
		Delay:               time.Duration(spec.Wait) * time.Nanosecond,
		RandomDelay:         spec.RandomWait,
		Seed:                spec.Seed,
		Adaptive:            true,
		AdaptiveLinearBelow: 1 << 20,
	}
	res, err := real.Run()
	if err != nil {
		return nil, fmt.Errorf("shm-adaptive-linear: %w", err)
	}
	return &Execution{Engine: "shm-adaptive-linear", Ops: res.Ops}, nil
}

// RunMsgnet executes the spec on the message-passing runtime: spec.Procs
// goroutines issue spec.Ops traversals in total, each timestamped with the
// monotonic clock. The shared harness lives in runMsgnet (faults.go),
// which RunMsgnetFaulty reuses under a derived chaos plan.
func RunMsgnet(spec workload.Spec) (*Execution, error) {
	return runMsgnet(spec, nil, "msgnet", nil, nil)
}

// Runner executes a concrete schedule on a graph. The default is the
// schedule executor itself; tests substitute fault-injecting runners to
// prove the harness catches engine bugs.
type Runner func(g *topo.Graph, c *schedule.Concrete) (*schedule.Result, error)

// DefaultRunner runs the schedule on the timed executor with tracing, so
// balancer-level checks see the transitions.
func DefaultRunner(g *topo.Graph, c *schedule.Concrete) (*schedule.Result, error) {
	return c.Run(g, schedule.Options{Trace: true})
}

// CheckConcrete runs the concrete schedule on the timed executor and
// verifies every applicable invariant: the universal quiescent invariants,
// the per-balancer step property (from the transition trace), and — when
// the schedule's bounds satisfy c2 <= 2*c1 — the Corollary 3.9 guarantee
// that no operation is non-linearizable.
func CheckConcrete(g *topo.Graph, c *schedule.Concrete) error {
	return CheckConcreteWith(DefaultRunner, g, c)
}

// CheckConcreteWith is CheckConcrete with a custom runner, the
// fault-injection seam.
func CheckConcreteWith(run Runner, g *topo.Graph, c *schedule.Concrete) error {
	res, err := run(g, c)
	if err != nil {
		return fmt.Errorf("schedule: %w", err)
	}
	exec := &Execution{Engine: "schedule", Ops: res.Ops}
	if err := exec.CheckUniversal(g.OutWidth()); err != nil {
		return err
	}
	if len(res.Events) > 0 {
		paths := make([][]topo.NodeID, len(c.Tokens))
		for _, ev := range res.Events {
			paths[ev.Tok] = append(paths[ev.Tok], ev.Node)
		}
		if err := checkBalancerStep(g, paths); err != nil {
			return fmt.Errorf("schedule: %w", err)
		}
	}
	if c.C2 <= 2*c.C1 {
		if rep := lincheck.Analyze(res.Ops); rep.NonLinearizable > 0 {
			w, _ := lincheck.FirstWitness(res.Ops)
			return fmt.Errorf("schedule: Corollary 3.9 violated with c2=%d <= 2*c1=%d: %v (%s)",
				c.C2, 2*c.C1, rep, w)
		}
	}
	return nil
}

// CheckPadded verifies Corollary 3.12 on the schedule: choosing the
// smallest k with c2 < k*c1 strictly, the padded network (h*(k-2)
// pass-through balancers per input) must execute the same k-bounded
// schedule with zero violations, even when the unpadded network violates.
func CheckPadded(g *topo.Graph, c *schedule.Concrete) error {
	k := int(c.C2/c.C1) + 1
	padLen := g.Depth() * (k - 2)
	if padLen <= 0 {
		return nil // c2 < 2*c1: Corollary 3.9 already applies unpadded
	}
	padded, err := topo.Pad(g, padLen)
	if err != nil {
		return err
	}
	res, err := c.Run(padded, schedule.Options{})
	if err != nil {
		return fmt.Errorf("padded schedule: %w", err)
	}
	exec := &Execution{Engine: "padded-schedule", Ops: res.Ops}
	if err := exec.CheckUniversal(padded.OutWidth()); err != nil {
		return err
	}
	if rep := lincheck.Analyze(res.Ops); rep.NonLinearizable > 0 {
		w, _ := lincheck.FirstWitness(res.Ops)
		return fmt.Errorf("padded: Corollary 3.12 violated: k=%d, pad %d, %v (%s)", k, padLen, rep, w)
	}
	return nil
}

// CrossCheck runs the spec through all eight execution engines —
// quiescent topo, sim, shm, shm with the combining funnel, shm behind the
// contention-adaptive front-end, the same front-end pinned to its
// guaranteed-linearizable waiting regime, msgnet, and msgnet under the
// spec-derived fault plan — and verifies the universal invariants on
// each; any breach is an engine disagreement. The shm-adaptive-linear
// engine additionally promises a linearizable history, so its ops are
// run through lincheck and any violation fails the check. The returned
// error carries the spec's JSON so the failing cell can be replayed
// exactly.
func CrossCheck(spec workload.Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	g, err := spec.Net.Build(spec.Width)
	if err != nil {
		return err
	}
	quiescent, err := RunQuiescent(g, spec.Ops, spec.Seed)
	if err == nil {
		err = quiescent.CheckUniversal(g.OutWidth())
	}
	if err == nil {
		err = checkBalancerStep(g, quiescent.Paths)
	}
	if err != nil {
		return replayable(spec, err)
	}
	for _, run := range []func(workload.Spec) (*Execution, error){RunSim, RunSHM, RunSHMCombined, RunSHMAdaptive, RunSHMAdaptiveLinear, RunMsgnet, RunMsgnetFaulty} {
		exec, err := run(spec)
		if err != nil {
			return replayable(spec, err)
		}
		if len(exec.Ops) != spec.Ops {
			return replayable(spec, fmt.Errorf("%s: completed %d of %d operations", exec.Engine, len(exec.Ops), spec.Ops))
		}
		if err := exec.CheckUniversal(g.OutWidth()); err != nil {
			return replayable(spec, err)
		}
		if exec.Engine == "shm-adaptive-linear" {
			if rep := lincheck.Analyze(exec.Ops); rep.NonLinearizable > 0 {
				w, _ := lincheck.FirstWitness(exec.Ops)
				return replayable(spec, fmt.Errorf("%s: waiting regime misordered: %v (%s)", exec.Engine, rep, w))
			}
		}
	}
	return nil
}

// replayable wraps an engine failure with the spec's JSON reproducer.
func replayable(spec workload.Spec, err error) error {
	data, encErr := workload.EncodeSpec(spec)
	if encErr != nil {
		return fmt.Errorf("%s: %w", spec, err)
	}
	return fmt.Errorf("%w\nreplay spec: %s", err, data)
}
