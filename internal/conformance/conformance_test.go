package conformance

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"countnet/internal/workload"
)

var corpusNets = []workload.NetKind{workload.Bitonic, workload.Periodic, workload.DTree}
var corpusWidths = []int{2, 4, 8}

// TestCrossEngineCorpus is the deterministic conformance corpus: every
// network family at widths 2, 4, 8 through all four execution engines
// (quiescent topo executor, cycle simulator, shared-memory goroutines,
// message passing), asserting the universal invariants on each. Any engine
// disagreement fails with the spec's JSON reproducer attached.
func TestCrossEngineCorpus(t *testing.T) {
	for _, net := range corpusNets {
		for _, width := range corpusWidths {
			net, width := net, width
			t.Run(string(net)+"/"+strconv.Itoa(width), func(t *testing.T) {
				t.Parallel()
				spec := workload.Spec{
					Net:   net,
					Width: width,
					Procs: 4,
					Ops:   8 * width,
					Frac:  0.25,
					Wait:  200,
					Seed:  1,
				}
				if err := CrossCheck(spec); err != nil {
					t.Fatalf("engines disagree: %v", err)
				}
			})
		}
	}
}

// TestCor39RandomBoundedSchedules fuzzes random schedules with c2 <= 2*c1
// through the timed executor: Corollary 3.9 promises zero violations, and
// the permutation/step/analyzer invariants must hold round after round.
func TestCor39RandomBoundedSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	for _, net := range corpusNets {
		for _, width := range corpusWidths {
			g, err := net.Build(width)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 30; round++ {
				if c, err := FuzzRound(rng, net, width, g, true); err != nil {
					t.Fatalf("%s[%d] round %d: %v\nschedule: %+v", net, width, round, err, c)
				}
			}
		}
	}
}

// TestCor312PaddedSchedules fuzzes k-bounded schedules with c2 > 2*c1: the
// unpadded network may violate (that is Section 4), but the Corollary 3.12
// padded network must not.
func TestCor312PaddedSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(312))
	for _, net := range corpusNets {
		for _, width := range corpusWidths {
			g, err := net.Build(width)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 15; round++ {
				c := Generate(rng, net, width, g, GenOptions{Bounded: false})
				if err := CheckPadded(g, c); err != nil {
					t.Fatalf("%s[%d] round %d: %v", net, width, round, err)
				}
			}
		}
	}
}

// TestSoakShortCleanRun exercises the soak loop end to end on a small
// matrix; the engines are correct, so no failure may surface.
func TestSoakShortCleanRun(t *testing.T) {
	var progress []string
	fail, rounds, err := Soak(SoakConfig{
		Nets:   []workload.NetKind{workload.Bitonic},
		Widths: []int{4},
		Rounds: 10,
		Seed:   7,
		Shrink: true,
		Progress: func(format string, args ...any) {
			progress = append(progress, format)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatalf("clean soak reported failure: %v", fail)
	}
	if rounds != 20 { // 10 bounded + 10 unbounded
		t.Errorf("soak ran %d rounds, want 20", rounds)
	}
	if len(progress) != 2 {
		t.Errorf("progress called %d times, want 2", len(progress))
	}
}

// TestUniversalInvariantsRejectBadExecutions pins the failure messages the
// harness produces, so a future refactor cannot silently weaken a check.
func TestUniversalInvariantsRejectBadExecutions(t *testing.T) {
	if err := checkPermutation([]int64{0, 2, 3}); err == nil || !strings.Contains(err.Error(), "permutation") {
		t.Errorf("gap not caught: %v", err)
	}
	if err := checkPermutation([]int64{0, 1, 1}); err == nil {
		t.Errorf("duplicate not caught: %v", err)
	}
	if err := checkTallies([]int64{0, 2, 4}, 2); err == nil || !strings.Contains(err.Error(), "step") {
		t.Errorf("lopsided tallies not caught: %v", err)
	}
	if err := checkPermutation([]int64{0, 1, 2, 3}); err != nil {
		t.Errorf("valid permutation rejected: %v", err)
	}
	if err := checkTallies([]int64{0, 1, 2}, 2); err != nil {
		t.Errorf("valid tallies rejected: %v", err)
	}
}
