package conformance

// Chaos conformance: the msgnet engine run under deterministic fault
// injection (internal/faults) as a sixth differential engine, plus a
// chaos soak that fuzzes whole fault plans the way Soak fuzzes timed
// schedules. The quiescent invariants are interleaving-independent, so
// they must survive any plan: dropped hops are retried, duplicates are
// deduplicated, and the final values still form a gapless permutation
// with exact step tallies.

import (
	"fmt"
	"math/rand"
	"time"

	"countnet/internal/faults"
	"countnet/internal/lincheck"
	"countnet/internal/msgnet"
	"countnet/internal/obs"
	"countnet/internal/workload"
)

// derivePlanSalt decorrelates the fault-plan stream from the workload's
// own seeded randomness (schedule generation, shm delay jitter).
const derivePlanSalt = 0x5eed_fa17

// DerivePlan builds the deterministic chaos plan the fault-injected
// engine runs spec under: a pure function of the spec's seed and the
// network's shape, so every engine-disagreement report can be replayed
// from the spec alone.
func DerivePlan(spec workload.Spec) (*faults.Plan, error) {
	g, err := spec.Net.Build(spec.Width)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ derivePlanSalt))
	p := faults.Generate(rng, msgnet.NumLinks(g), g.NumNodes(), faults.GenOptions{})
	p.Net, p.Width, p.Procs, p.Ops = string(spec.Net), spec.Width, spec.Procs, spec.Ops
	return p, nil
}

// RunMsgnetFaulty executes the spec on the message-passing runtime under
// the spec-derived fault plan: same workload, same invariants, but every
// hop subject to drops (with retransmission), duplication, reordering,
// delays, partitions, and node stall/crash windows.
func RunMsgnetFaulty(spec workload.Spec) (*Execution, error) {
	plan, err := DerivePlan(spec)
	if err != nil {
		return nil, err
	}
	return runMsgnet(spec, plan, "msgnet-faults", nil, nil)
}

// RunMsgnetPlan executes the spec on the message-passing runtime under an
// explicit fault plan (nil for fault-free), the entry point chaos soaks
// and CLI plan replays share.
func RunMsgnetPlan(spec workload.Spec, plan *faults.Plan) (*Execution, error) {
	engine := "msgnet"
	if plan != nil && plan.Active() {
		engine = "msgnet-faults"
	}
	return runMsgnet(spec, plan, engine, nil, nil)
}

// RunMsgnetPlanTraced is RunMsgnetPlan with observability: every hop is
// recorded through tr with a unique per-operation token identity and a
// causal span chain, and flight (when non-nil) rides along as the
// auto-tripping black box. Either may be nil.
func RunMsgnetPlanTraced(spec workload.Spec, plan *faults.Plan, tr obs.Tracer, flight *obs.Flight) (*Execution, error) {
	engine := "msgnet"
	if plan != nil && plan.Active() {
		engine = "msgnet-faults"
	}
	return runMsgnet(spec, plan, engine, tr, flight)
}

// runMsgnet is the shared msgnet worker harness: spec.Procs goroutines
// issue spec.Ops traversals in total, each timestamped with the monotonic
// clock.
func runMsgnet(spec workload.Spec, plan *faults.Plan, engine string, tr obs.Tracer, flight *obs.Flight) (*Execution, error) {
	g, err := spec.Net.Build(spec.Width)
	if err != nil {
		return nil, err
	}
	n, err := msgnet.StartOpts(g, msgnet.Options{Buffer: 1, Faults: plan, Tracer: tr, Flight: flight})
	if err != nil {
		return nil, err
	}
	defer n.Close()
	traced := tr != nil || flight != nil
	rec := lincheck.NewRecorder(spec.Ops)
	base := time.Now()
	errs := make(chan error, spec.Procs)
	per := spec.Ops / spec.Procs
	extra := spec.Ops % spec.Procs
	for p := 0; p < spec.Procs; p++ {
		ops := per
		if p < extra {
			ops++
		}
		// Token ids partition [0, spec.Ops): worker p owns a contiguous
		// block, so traced identities are unique without coordination.
		tokBase := p * per
		if p < extra {
			tokBase += p
		} else {
			tokBase += extra
		}
		go func(p, ops, tokBase int) {
			input := p % g.InWidth()
			for i := 0; i < ops; i++ {
				start := time.Since(base)
				var v int64
				var err error
				if traced {
					v, err = n.TraverseObs(input, int32(p), int32(tokBase+i))
				} else {
					v, err = n.Traverse(input)
				}
				if err != nil {
					errs <- err
					return
				}
				rec.Record(int64(start), int64(time.Since(base)), v)
			}
			errs <- nil
		}(p, ops, tokBase)
	}
	for p := 0; p < spec.Procs; p++ {
		if err := <-errs; err != nil {
			return nil, fmt.Errorf("%s: %w", engine, err)
		}
	}
	return &Execution{Engine: engine, Ops: rec.Ops()}, nil
}

// ChaosConfig configures a chaos soak: random fault plans against fixed
// workloads across the network matrix.
type ChaosConfig struct {
	Nets   []workload.NetKind
	Widths []int
	// Rounds is the number of fault plans per (net, width) cell.
	Rounds int
	Seed   int64
	// Ops and Procs shape the workload each plan runs under (defaults
	// 128 ops, 4 procs).
	Ops, Procs int
	// Shrink minimizes any failing plan before reporting it.
	Shrink bool
	// Progress, when non-nil, receives a line per completed cell.
	Progress func(format string, args ...any)
}

// ChaosFailure is one invariant breach found under fault injection, with
// its (possibly shrunk) plan reproducer.
type ChaosFailure struct {
	Spec workload.Spec
	Plan *faults.Plan
	Err  error
}

// Error renders the failure with its reproducer plan.
func (f *ChaosFailure) Error() string {
	return fmt.Sprintf("%s[%d] under %v: %v", f.Spec.Net, f.Spec.Width, f.Plan, f.Err)
}

// chaosRound runs one plan against one spec and checks the universal
// invariants plus operation-count completeness.
func chaosRound(spec workload.Spec, plan *faults.Plan) error {
	exec, err := runMsgnet(spec, plan, "msgnet-faults", nil, nil)
	if err != nil {
		return err
	}
	if len(exec.Ops) != spec.Ops {
		return fmt.Errorf("msgnet-faults: completed %d of %d operations", len(exec.Ops), spec.Ops)
	}
	return exec.CheckUniversal(spec.Width)
}

// ChaosSoak fuzzes random fault plans across the configured matrix and
// returns the first failure (shrunk to a minimal plan when cfg.Shrink is
// set) or nil when every round passed. rounds reports how many plans were
// executed.
func ChaosSoak(cfg ChaosConfig) (fail *ChaosFailure, rounds int, err error) {
	if len(cfg.Nets) == 0 {
		cfg.Nets = []workload.NetKind{workload.Bitonic, workload.Periodic, workload.DTree}
	}
	if len(cfg.Widths) == 0 {
		cfg.Widths = []int{2, 4}
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 20
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 128
	}
	if cfg.Procs <= 0 {
		cfg.Procs = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, net := range cfg.Nets {
		for _, width := range cfg.Widths {
			g, err := net.Build(width)
			if err != nil {
				return nil, rounds, err
			}
			spec := workload.Spec{
				Net: net, Width: width, Procs: cfg.Procs, Ops: cfg.Ops, Seed: cfg.Seed,
			}
			if err := spec.Validate(); err != nil {
				return nil, rounds, err
			}
			for r := 0; r < cfg.Rounds; r++ {
				plan := faults.Generate(rng, msgnet.NumLinks(g), g.NumNodes(), faults.GenOptions{})
				plan.Net, plan.Width, plan.Procs, plan.Ops = string(net), width, cfg.Procs, cfg.Ops
				rounds++
				roundErr := chaosRound(spec, plan)
				if roundErr == nil {
					continue
				}
				f := &ChaosFailure{Spec: spec, Plan: plan, Err: roundErr}
				if cfg.Shrink {
					f.Plan = faults.Shrink(plan, func(cand *faults.Plan) bool {
						return chaosRound(spec, cand) != nil
					})
				}
				return f, rounds, nil
			}
			if cfg.Progress != nil {
				cfg.Progress("%s[%d] chaos: %d plans ok", net, width, cfg.Rounds)
			}
		}
	}
	return nil, rounds, nil
}
