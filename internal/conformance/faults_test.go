package conformance

import (
	"bytes"
	"testing"
	"time"

	"countnet/internal/faults"
	"countnet/internal/workload"
)

// TestDerivePlanDeterministic: the plan is a pure function of the spec —
// two derivations serialize to identical bytes, the replayability
// contract behind the sixth engine.
func TestDerivePlanDeterministic(t *testing.T) {
	spec := workload.Spec{Net: workload.Bitonic, Width: 4, Procs: 3, Ops: 60, Seed: 21}
	a, err := DerivePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DerivePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := faults.WritePlan(&ba, a); err != nil {
		t.Fatal(err)
	}
	if err := faults.WritePlan(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("same spec derived different plans:\n%s\nvs\n%s", ba.String(), bb.String())
	}
	if a.Net != string(spec.Net) || a.Width != spec.Width || a.Ops != spec.Ops {
		t.Errorf("plan missing workload hints: %+v", a)
	}
	spec.Seed++
	c, err := DerivePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	var bc bytes.Buffer
	if err := faults.WritePlan(&bc, c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ba.Bytes(), bc.Bytes()) {
		t.Error("different seeds derived the same plan")
	}
}

// TestRunMsgnetFaulty: the sixth engine satisfies the universal
// invariants on a representative spec.
func TestRunMsgnetFaulty(t *testing.T) {
	spec := workload.Spec{Net: workload.Periodic, Width: 4, Procs: 4, Ops: 120, Seed: 5}
	exec, err := RunMsgnetFaulty(spec)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Engine != "msgnet-faults" {
		t.Errorf("engine = %q", exec.Engine)
	}
	if len(exec.Ops) != spec.Ops {
		t.Fatalf("completed %d of %d ops", len(exec.Ops), spec.Ops)
	}
	if err := exec.CheckUniversal(spec.Width); err != nil {
		t.Fatal(err)
	}
}

// TestRunMsgnetPlanEngineNames: explicit plans route to the right engine
// label, nil and inactive plans to the fault-free one.
func TestRunMsgnetPlanEngineNames(t *testing.T) {
	spec := workload.Spec{Net: workload.Bitonic, Width: 2, Procs: 2, Ops: 20, Seed: 1}
	for _, tc := range []struct {
		plan *faults.Plan
		want string
	}{
		{nil, "msgnet"},
		{&faults.Plan{Seed: 1}, "msgnet"},
		{faults.Chaos(1, 0.2, 0), "msgnet-faults"},
	} {
		exec, err := RunMsgnetPlan(spec, tc.plan)
		if err != nil {
			t.Fatal(err)
		}
		if exec.Engine != tc.want {
			t.Errorf("plan %v: engine %q, want %q", tc.plan, exec.Engine, tc.want)
		}
		if err := exec.CheckUniversal(spec.Width); err != nil {
			t.Error(err)
		}
	}
}

// TestChaosSoakSmoke: a short chaos soak over the small matrix passes.
func TestChaosSoakSmoke(t *testing.T) {
	fail, rounds, err := ChaosSoak(ChaosConfig{
		Nets:   []workload.NetKind{workload.Bitonic},
		Widths: []int{2, 4},
		Rounds: 4,
		Ops:    48,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatalf("chaos soak failed: %v", fail)
	}
	if rounds != 8 {
		t.Errorf("rounds = %d, want 8", rounds)
	}
}

// TestChaosSoakShrinksInjectedBug: rig the soak's workload so it must
// fail (ops mismatch via an impossible check is not available, so instead
// drive chaosRound directly through Shrink) and confirm the shrinker
// integration produces a failing minimal plan.
func TestChaosShrinkIntegration(t *testing.T) {
	spec := workload.Spec{Net: workload.Bitonic, Width: 2, Procs: 2, Ops: 24, Seed: 3}
	// A synthetic predicate standing in for an invariant breach that only
	// depends on duplication being enabled anywhere in the plan.
	fails := func(p *faults.Plan) bool {
		if p.Default.Dup > 0 {
			return true
		}
		for _, lr := range p.Links {
			if lr.Rule.Dup > 0 {
				return true
			}
		}
		return false
	}
	start := &faults.Plan{
		Seed:    9,
		Default: faults.Rule{Drop: 0.4, Dup: 0.4, DelayNs: 1000},
		Stalls:  []faults.Stall{{Node: 0, From: 0, To: 8, Crash: true}},
	}
	min := faults.Shrink(start, fails)
	if !fails(min) {
		t.Fatal("shrunk plan stopped failing")
	}
	if min.Default.Drop != 0 || min.Default.DelayNs != 0 || len(min.Stalls) != 0 {
		t.Errorf("irrelevant chaos survived shrinking: %+v", min)
	}
	// The minimal plan must still drive a real (passing) chaos round —
	// shrinker output is always runnable.
	if err := chaosRound(spec, min); err != nil {
		t.Fatalf("minimal plan not runnable: %v", err)
	}
}

// TestCrossCheckIncludesFaultEngine: CrossCheck runs the fault-injected
// engine (observable through injected fault tallies on a derived plan
// known to be active) and still agrees across all six engines.
func TestCrossCheckIncludesFaultEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-check in -short")
	}
	spec := workload.Spec{Net: workload.Bitonic, Width: 4, Procs: 4, Ops: 96, Seed: 11}
	done := make(chan error, 1)
	go func() { done <- CrossCheck(spec) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("CrossCheck deadlocked under fault injection")
	}
}
