package conformance

import (
	"reflect"
	"testing"

	"countnet/internal/schedule"
)

// Edge cases of the greedy schedule shrinker: inputs at the boundaries of
// its passes (no tokens, one token, already-minimal) must come back
// well-formed and unchanged where nothing can be removed.

// TestShrinkEmptySchedule: a token-less schedule has nothing to shrink;
// it must come back structurally identical (and not crash the
// drop-tokens pass).
func TestShrinkEmptySchedule(t *testing.T) {
	c := &schedule.Concrete{Net: "bitonic", Width: 2, C1: 1, C2: 2}
	calls := 0
	got := Shrink(c, func(*schedule.Concrete) bool { calls++; return true })
	if len(got.Tokens) != 0 || got.C1 != 1 || got.C2 != 2 {
		t.Errorf("empty schedule changed: %+v", got)
	}
	if calls != 1 {
		t.Errorf("empty schedule evaluated %d times, want 1 (confirmation only)", calls)
	}
}

// TestShrinkSingleOp: the last token is never dropped (an empty
// reproducer reproduces nothing), but its timing still minimizes.
func TestShrinkSingleOp(t *testing.T) {
	c := &schedule.Concrete{
		Net: "bitonic", Width: 2, C1: 1, C2: 2,
		Tokens: []schedule.ConcreteToken{{Time: 40, Input: 1, Delays: []int64{2, 2, 2}}},
	}
	got := Shrink(c, func(cand *schedule.Concrete) bool { return len(cand.Tokens) >= 1 })
	if len(got.Tokens) != 1 {
		t.Fatalf("single op dropped: %+v", got)
	}
	tok := got.Tokens[0]
	if tok.Time != 0 {
		t.Errorf("arrival not pulled to zero: %d", tok.Time)
	}
	if tok.Delays != nil {
		t.Errorf("delay list not simplified away: %v", tok.Delays)
	}
}

// TestShrinkAlreadyMinimalSchedule: a schedule that is already minimal
// for its predicate returns unchanged.
func TestShrinkAlreadyMinimalSchedule(t *testing.T) {
	c := &schedule.Concrete{
		Net: "dtree", Width: 2, C1: 3, C2: 6,
		Tokens: []schedule.ConcreteToken{
			{Time: 0, Input: 0},
			{Time: 0, Input: 1},
		},
	}
	// Failure needs both tokens; nothing else is removable.
	got := Shrink(c, func(cand *schedule.Concrete) bool { return len(cand.Tokens) == 2 })
	if !reflect.DeepEqual(got, c) {
		t.Errorf("minimal schedule changed:\n got %+v\nwant %+v", got, c)
	}
	if got == c {
		t.Error("Shrink returned the input pointer instead of a clone")
	}
}
