package conformance

import (
	"bytes"
	"math/rand"
	"testing"

	"countnet/internal/schedule"
	"countnet/internal/topo"
	"countnet/internal/workload"
)

// miswiredWidth2 builds a width-2 network whose balancer outputs are wired
// to the WRONG counters — the structural form of "one flipped toggle": the
// first token exits with value 1 instead of 0.
func miswiredWidth2(t *testing.T) *topo.Graph {
	t.Helper()
	b := topo.NewBuilder()
	in := b.Inputs(1)
	o0, o1 := b.Balancer12(in[0])
	b.Terminate([]topo.Out{o1, o0}) // swapped on purpose
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSeededMiswiringCaughtAndShrunk seeds a structural engine bug (the
// balancer's outputs swapped, as a scratch-branch toggle flip would do) and
// demonstrates the acceptance pipeline: the fuzzer catches it, the shrinker
// minimizes the failing schedule to <= 8 operations, and the reproducer
// survives JSONL serialization still failing.
func TestSeededMiswiringCaughtAndShrunk(t *testing.T) {
	g := miswiredWidth2(t)
	rng := rand.New(rand.NewSource(1))
	var failing *schedule.Concrete
	for round := 0; round < 200 && failing == nil; round++ {
		c := Generate(rng, workload.Bitonic, 2, g, GenOptions{Bounded: true})
		if CheckConcrete(g, c) != nil {
			failing = c
		}
	}
	if failing == nil {
		t.Fatal("fuzzer did not catch the miswired balancer in 200 rounds")
	}
	fails := func(c *schedule.Concrete) bool { return CheckConcrete(g, c) != nil }
	minimal := Shrink(failing, fails)
	if !fails(minimal) {
		t.Fatal("shrunk schedule no longer fails")
	}
	if got := len(minimal.Tokens); got > 8 {
		t.Fatalf("shrunk reproducer has %d operations, want <= 8", got)
	}
	// The reproducer must survive the serialize/replay round trip.
	var buf bytes.Buffer
	if err := schedule.WriteConcrete(&buf, minimal); err != nil {
		t.Fatal(err)
	}
	replayed, err := schedule.ReadConcrete(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !fails(replayed) {
		t.Fatal("replayed reproducer no longer fails")
	}
	t.Logf("miswiring shrunk to %d token(s): %+v", len(minimal.Tokens), minimal.Tokens)
}

// swappedValuesRunner emulates a timing-side toggle bug: the two tokens
// that received values 0 and 1 have them exchanged, as if the first
// balancer served its first two critical sections in the wrong order.
func swappedValuesRunner(g *topo.Graph, c *schedule.Concrete) (*schedule.Result, error) {
	res, err := DefaultRunner(g, c)
	if err != nil {
		return nil, err
	}
	i0, i1 := -1, -1
	for k, v := range res.Values {
		switch v {
		case 0:
			i0 = k
		case 1:
			i1 = k
		}
	}
	if i0 >= 0 && i1 >= 0 {
		res.Values[i0], res.Values[i1] = res.Values[i1], res.Values[i0]
		res.Ops[i0].Value, res.Ops[i1].Value = res.Ops[i1].Value, res.Ops[i0].Value
	}
	return res, nil
}

// TestSeededValueSwapCaughtAndShrunk seeds the behavioural form of the
// toggle flip — values 0 and 1 exchanged between their tokens. The
// permutation still holds, so only the Corollary 3.9 check can see it; the
// fuzzer finds a bounded schedule where the swap manifests as a
// non-linearizable operation and the shrinker reduces it to the minimal
// two-token witness.
func TestSeededValueSwapCaughtAndShrunk(t *testing.T) {
	g, err := workload.Bitonic.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	fails := func(c *schedule.Concrete) bool {
		return CheckConcreteWith(swappedValuesRunner, g, c) != nil
	}
	rng := rand.New(rand.NewSource(2))
	var failing *schedule.Concrete
	for round := 0; round < 500 && failing == nil; round++ {
		c := Generate(rng, workload.Bitonic, 4, g, GenOptions{Bounded: true})
		if fails(c) {
			failing = c
		}
	}
	if failing == nil {
		t.Fatal("fuzzer did not catch the value swap in 500 rounds")
	}
	minimal := Shrink(failing, fails)
	if !fails(minimal) {
		t.Fatal("shrunk schedule no longer fails")
	}
	if got := len(minimal.Tokens); got > 8 {
		t.Fatalf("shrunk reproducer has %d operations, want <= 8", got)
	}
	t.Logf("value swap shrunk to %d token(s)", len(minimal.Tokens))
}

// TestShrinkReturnsInputWhenNotFailing documents the no-op contract.
func TestShrinkReturnsInputWhenNotFailing(t *testing.T) {
	c := &schedule.Concrete{
		Net: "bitonic", Width: 2, C1: 10, C2: 20,
		Tokens: []schedule.ConcreteToken{{Time: 5, Input: 0, Delays: []int64{15}}},
	}
	out := Shrink(c, func(*schedule.Concrete) bool { return false })
	if len(out.Tokens) != 1 || out.Tokens[0].Time != 5 {
		t.Fatalf("non-failing schedule was mutated: %+v", out)
	}
}
