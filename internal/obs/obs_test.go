package obs

import (
	"sync"
	"testing"
)

// TestNopZeroAlloc locks down the disabled-tracing cost: recording through
// the Tracer interface to a Nop tracer must not allocate.
func TestNopZeroAlloc(t *testing.T) {
	var tr Tracer = Nop{}
	ev := Event{T: 1, Kind: KindBalancer, P: 3, Tok: 7, Node: 2, Value: -1}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Record(ev)
	})
	if allocs != 0 {
		t.Fatalf("Nop.Record allocates %.1f times per call, want 0", allocs)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindEnter; k <= kindMax; k++ {
		s := k.String()
		if s == "" {
			t.Fatalf("kind %d has empty name", k)
		}
		back, err := kindFromString(s)
		if err != nil || back != k {
			t.Fatalf("kindFromString(%q) = %v, %v; want %v", s, back, err, k)
		}
	}
	if _, err := kindFromString("bogus"); err == nil {
		t.Fatal("kindFromString accepted a bogus kind")
	}
}

func TestWindow(t *testing.T) {
	events := []Event{
		{T: 10, Kind: KindEnter},             // before window
		{T: 60, Dur: 20, Kind: KindBalancer}, // span [40,60] overlaps
		{T: 75, Kind: KindLink},              // inside
		{T: 120, Dur: 30, Kind: KindExit},    // span [90,120] overlaps end
		{T: 200, Kind: KindExit},             // after window
	}
	got := Window(events, 50, 100)
	if len(got) != 3 {
		t.Fatalf("Window kept %d events (%v), want 3", len(got), got)
	}
	if got[0].T != 60 || got[1].T != 75 || got[2].T != 120 {
		t.Fatalf("Window kept wrong events: %v", got)
	}
	if len(Window(events, 300, 400)) != 0 {
		t.Fatal("empty window returned events")
	}
}

func TestRingBasicAndOrder(t *testing.T) {
	r := NewRing(2, 8)
	r.Record(Event{T: 5, P: 0, Kind: KindEnter})
	r.Record(Event{T: 1, P: 1, Kind: KindEnter})
	r.Record(Event{T: 5, P: 1, Kind: KindExit})
	evs := r.Events()
	if len(evs) != 3 || r.Len() != 3 {
		t.Fatalf("got %d events, Len %d, want 3", len(evs), r.Len())
	}
	// Sorted by T; tie at T=5 broken by shard (P=0 first).
	if evs[0].T != 1 || evs[1].P != 0 || evs[2].P != 1 {
		t.Fatalf("bad merge order: %+v", evs)
	}
	if r.Overwritten() != 0 {
		t.Fatalf("Overwritten = %d, want 0", r.Overwritten())
	}
}

func TestRingWraparoundKeepsNewest(t *testing.T) {
	r := NewRing(1, 4)
	for i := 0; i < 10; i++ {
		r.Record(Event{T: int64(i), P: 0})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.T != int64(6+i) {
			t.Fatalf("retained window %v, want T=6..9 in order", evs)
		}
	}
	if r.Overwritten() != 6 {
		t.Fatalf("Overwritten = %d, want 6", r.Overwritten())
	}
}

// TestRingConcurrent exercises the single-writer-per-processor contract
// under the race detector.
func TestRingConcurrent(t *testing.T) {
	const procs, events = 8, 1000
	r := NewRing(procs, events)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				r.Record(Event{T: int64(i), P: int32(p), Tok: int32(i)})
			}
		}(p)
	}
	wg.Wait()
	if got := r.Len(); got != procs*events {
		t.Fatalf("Len = %d, want %d", got, procs*events)
	}
	evs := r.Events()
	if len(evs) != procs*events {
		t.Fatalf("Events = %d, want %d", len(evs), procs*events)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatalf("events out of time order at %d: %d < %d", i, evs[i].T, evs[i-1].T)
		}
	}
}

// BenchmarkNopRecord measures the disabled-tracing hot path; report shows
// 0 allocs/op.
func BenchmarkNopRecord(b *testing.B) {
	var tr Tracer = Nop{}
	ev := Event{T: 1, Kind: KindBalancer, P: 3, Tok: 7, Node: 2, Value: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(ev)
	}
}

// BenchmarkRingRecord measures the enabled-tracing hot path.
func BenchmarkRingRecord(b *testing.B) {
	r := NewRing(1, 1<<16)
	ev := Event{T: 1, Kind: KindBalancer, P: 0, Tok: 7, Node: 2, Value: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.T = int64(i)
		r.Record(ev)
	}
}
