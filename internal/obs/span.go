package obs

import (
	"sort"
	"sync/atomic"
)

// Causal span model. Every traced engine draws span ids for its events
// from one shared Clock — a Lamport clock whose Tick is a single atomic
// increment, so ids are unique within a run and every id a message could
// have carried when an event was stamped is strictly smaller than the
// event's own id. Each event records the id of its causal predecessor in
// Event.Parent (the token's previous hop, the send a retransmission
// repeats, the original delivery a duplicate shadows), which turns the
// flat per-processor ring streams into a forest of per-token span trees
// with cross-node edges: exactly the happens-before order linearizability
// monitoring reconstructs violations from, rather than wall clock.

// Clock is the run-wide Lamport clock causal span ids are drawn from.
// All methods are lock-free and allocation-free; the zero value is ready
// to use (NewClock exists for symmetry with the other obs constructors).
type Clock struct{ v atomic.Uint64 }

// NewClock returns a clock whose first Tick returns 1.
func NewClock() *Clock { return &Clock{} }

// Tick advances the clock and returns the new value — a fresh span id.
func (c *Clock) Tick() uint64 { return c.v.Add(1) }

// Witness folds a remotely observed clock value in (the Lamport max-join
// rule): after Witness(r), Tick returns values greater than r. Receivers
// call it with the span id a message carries; with one shared in-process
// clock it is a no-op by construction, but it keeps the stamping protocol
// correct if the engines ever span OS processes.
func (c *Clock) Witness(remote uint64) {
	for {
		cur := c.v.Load()
		if remote <= cur || c.v.CompareAndSwap(cur, remote) {
			return
		}
	}
}

// Now returns the current clock value without advancing it.
func (c *Clock) Now() uint64 { return c.v.Load() }

// CausalClosure filters events down to the causally closed subset: an
// event is kept when its whole ancestor chain is present (span ids
// increase along causal edges, so one pass in span order suffices).
// Events without span ids are kept unconditionally — an uncausal trace
// passes through unchanged. The input order is preserved; orphans reports
// how many events were dropped for referencing an absent ancestor (the
// part of a wrapped ring the overwritten prefix took with it).
func CausalClosure(events []Event) (closed []Event, orphans int) {
	kept := make(map[uint64]bool, len(events))
	// Spans are unique and parents precede children numerically, so
	// resolving in ascending span order needs no fixpoint iteration.
	order := make([]int, 0, len(events))
	for i, ev := range events {
		if ev.Span != 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return events[order[i]].Span < events[order[j]].Span
	})
	for _, i := range order {
		ev := events[i]
		if ev.Parent == 0 || kept[ev.Parent] {
			kept[ev.Span] = true
		} else {
			orphans++
		}
	}
	closed = make([]Event, 0, len(events)-orphans)
	for _, ev := range events {
		if ev.Span == 0 || kept[ev.Span] {
			closed = append(closed, ev)
		}
	}
	return closed, orphans
}
