package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Meta describes the run a trace came from: which engine produced it, the
// timestamp unit ("cycles" or "ns"), the workload identity, and — on
// flight-recorder dumps — the reason the recorder fired.
type Meta struct {
	Engine string `json:"engine"`
	Unit   string `json:"unit"`
	Net    string `json:"net,omitempty"`
	Width  int    `json:"width,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// jsonlEvent is the JSONL wire form of one event.
type jsonlEvent struct {
	T      int64  `json:"t"`
	Dur    int64  `json:"dur,omitempty"`
	Kind   string `json:"kind"`
	P      int32  `json:"p"`
	Tok    int32  `json:"tok"`
	Node   int32  `json:"node"`
	Value  *int64 `json:"value,omitempty"`
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
}

// kindFromString inverts Kind.String.
func kindFromString(s string) (Kind, error) {
	for k := KindEnter; k <= kindMax; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

// WriteJSONL emits the trace as JSON Lines: a meta header line
// {"meta": {...}} followed by one event object per line, in slice order.
func WriteJSONL(w io.Writer, meta Meta, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(struct {
		Meta Meta `json:"meta"`
	}{meta}); err != nil {
		return err
	}
	for _, ev := range events {
		rec := jsonlEvent{T: ev.T, Dur: ev.Dur, Kind: ev.Kind.String(), P: ev.P, Tok: ev.Tok, Node: ev.Node,
			Span: ev.Span, Parent: ev.Parent}
		if ev.Value >= 0 {
			v := ev.Value
			rec.Value = &v
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace written by WriteJSONL, preserving event order.
func ReadJSONL(r io.Reader) (Meta, []Event, error) {
	dec := json.NewDecoder(r)
	var header struct {
		Meta *Meta `json:"meta"`
	}
	if err := dec.Decode(&header); err != nil {
		return Meta{}, nil, fmt.Errorf("obs: trace header: %w", err)
	}
	if header.Meta == nil {
		return Meta{}, nil, fmt.Errorf("obs: trace missing meta header line")
	}
	var out []Event
	for {
		var rec jsonlEvent
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return Meta{}, nil, fmt.Errorf("obs: trace line %d: %w", len(out)+2, err)
		}
		k, err := kindFromString(rec.Kind)
		if err != nil {
			return Meta{}, nil, fmt.Errorf("obs: trace line %d: %w", len(out)+2, err)
		}
		ev := Event{T: rec.T, Dur: rec.Dur, Kind: k, P: rec.P, Tok: rec.Tok, Node: rec.Node, Value: -1,
			Span: rec.Span, Parent: rec.Parent}
		if rec.Value != nil {
			ev.Value = *rec.Value
		}
		out = append(out, ev)
	}
	return *header.Meta, out, nil
}

// chromeEvent is one entry of the Chrome trace_event "traceEvents" array.
// Spanned events are complete events (ph "X"), instants are ph "i".
// Timestamps are microseconds per the format; the original native-unit
// timestamp rides along losslessly in args.t (and args.dur).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int32          `json:"tid"`
	ID    uint64         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeScale converts a native timestamp to trace_event microseconds:
// nanoseconds are divided by 1000; cycles map 1:1 onto microseconds (only
// relative durations matter in a simulation).
func chromeScale(unit string) float64 {
	if unit == "ns" {
		return 1.0 / 1000
	}
	return 1
}

// WriteChromeTrace emits the trace in Chrome trace_event format (a JSON
// object with a traceEvents array), which Perfetto and chrome://tracing
// open directly. One track (tid) per processor; spanned events become
// complete events whose slice covers [T-Dur, T]. Causal edges (Parent
// span ids whose parent event is in the trace) are additionally emitted
// as flow events (ph "s"/"f"), so Perfetto draws arrows between the hops
// of a token's journey across tracks and nodes.
func WriteChromeTrace(w io.Writer, meta Meta, events []Event) error {
	bw := bufio.NewWriter(w)
	scale := chromeScale(meta.Unit)
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":%s,\"traceEvents\":[\n", metaJSON)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	first := true
	emit := func(ce chromeEvent) error {
		if !first {
			fmt.Fprint(bw, ",")
		}
		first = false
		return enc.Encode(ce)
	}
	bySpan := make(map[uint64]Event)
	for _, ev := range events {
		if ev.Span != 0 {
			bySpan[ev.Span] = ev
		}
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name:  ev.Kind.String(),
			Phase: "i",
			Scope: "t",
			TS:    float64(ev.T) * scale,
			PID:   1,
			TID:   ev.P,
			Args:  map[string]any{"t": ev.T, "tok": ev.Tok},
		}
		if ev.Node >= 0 {
			ce.Name = fmt.Sprintf("%s n%d", ev.Kind, ev.Node)
			ce.Args["node"] = ev.Node
		}
		if ev.Value >= 0 {
			ce.Args["value"] = ev.Value
		}
		if ev.Span != 0 {
			ce.Args["span"] = ev.Span
			if ev.Parent != 0 {
				ce.Args["parent"] = ev.Parent
			}
		}
		if ev.Dur > 0 {
			ce.Phase = "X"
			ce.Scope = ""
			ce.TS = float64(ev.T-ev.Dur) * scale
			d := float64(ev.Dur) * scale
			ce.Dur = &d
			ce.Args["dur"] = ev.Dur
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	// Flow section: one s/f pair per causal edge whose parent is present.
	// The start binds to the parent's slice at its end timestamp, the
	// finish ("bp":"e") to the enclosing child slice at its start, which
	// is what makes Perfetto draw the arrow parent -> child. The child's
	// span id keys the pair (edges are 1:1 with child events, so ids
	// never collide).
	for _, ev := range events {
		if ev.Span == 0 || ev.Parent == 0 {
			continue
		}
		parent, ok := bySpan[ev.Parent]
		if !ok {
			continue
		}
		childStart := ev.T
		if ev.Dur > 0 {
			childStart = ev.T - ev.Dur
		}
		if err := emit(chromeEvent{
			Name: "causal", Cat: "causal", Phase: "s", ID: ev.Span,
			TS: float64(parent.T) * scale, PID: 1, TID: parent.P,
			Args: map[string]any{"span": ev.Parent},
		}); err != nil {
			return err
		}
		if err := emit(chromeEvent{
			Name: "causal", Cat: "causal", Phase: "f", BP: "e", ID: ev.Span,
			TS: float64(childStart) * scale, PID: 1, TID: ev.P,
			Args: map[string]any{"span": ev.Span},
		}); err != nil {
			return err
		}
	}
	fmt.Fprint(bw, "]}\n")
	return bw.Flush()
}

// ExportFile writes events to w in the format implied by the file name:
// ".jsonl" means JSON Lines, anything else Chrome trace_event.
func ExportFile(w io.Writer, name string, meta Meta, events []Event) error {
	if strings.HasSuffix(name, ".jsonl") {
		return WriteJSONL(w, meta, events)
	}
	return WriteChromeTrace(w, meta, events)
}
