package obs

import (
	"sort"
	"sync/atomic"
)

// ringShard is one processor's private event buffer. Only the owning
// processor writes buf and n; the count is published atomically so Len can
// be sampled live, but slot contents are only safe to read once the run has
// quiesced (e.g. after the workers' WaitGroup).
type ringShard struct {
	buf []Event
	n   atomic.Int64 // total events recorded (monotone; may exceed len(buf))
	_   [40]byte     // keep shards off each other's cache lines
}

// Ring is a lock-free per-processor ring-buffer recorder: each processor id
// maps to its own shard, so Record is a single bounds check, a slot write,
// and an atomic publish — no locks, no allocation, no sharing between
// processors. When a shard fills, the oldest events of that shard are
// overwritten (the newest window survives, which is the part a violation
// witness needs).
type Ring struct {
	shards []ringShard
}

// NewRing returns a recorder with one shard per processor id in [0, procs)
// and capacity perProc events per shard.
func NewRing(procs, perProc int) *Ring {
	if procs < 1 {
		procs = 1
	}
	if perProc < 1 {
		perProc = 1
	}
	r := &Ring{shards: make([]ringShard, procs)}
	for i := range r.shards {
		r.shards[i].buf = make([]Event, perProc)
	}
	return r
}

// Record implements Tracer. Events with out-of-range P are folded onto a
// shard by modulus; correctness then relies on the caller's single-writer-
// per-processor contract.
func (r *Ring) Record(ev Event) {
	p := int(ev.P)
	if p < 0 {
		p = -p
	}
	s := &r.shards[p%len(r.shards)]
	n := s.n.Load()
	s.buf[n%int64(len(s.buf))] = ev
	s.n.Store(n + 1)
}

// Len returns the number of events currently retained across all shards.
func (r *Ring) Len() int {
	total := 0
	for i := range r.shards {
		n := r.shards[i].n.Load()
		if c := int64(len(r.shards[i].buf)); n > c {
			n = c
		}
		total += int(n)
	}
	return total
}

// Overwritten returns how many events were lost to ring wraparound.
func (r *Ring) Overwritten() int64 {
	var total int64
	for i := range r.shards {
		n := r.shards[i].n.Load()
		if over := n - int64(len(r.shards[i].buf)); over > 0 {
			total += over
		}
	}
	return total
}

// Events returns the retained events of all shards merged into one slice
// sorted by timestamp (ties broken by shard then recording order, so the
// result is deterministic). It must only be called after the traced run has
// quiesced — concurrent Record calls race with it.
func (r *Ring) Events() []Event {
	type tagged struct {
		ev    Event
		shard int
		seq   int64
	}
	var all []tagged
	for i := range r.shards {
		s := &r.shards[i]
		n := s.n.Load()
		c := int64(len(s.buf))
		start := int64(0)
		if n > c {
			start = n - c
		}
		for seq := start; seq < n; seq++ {
			all = append(all, tagged{ev: s.buf[seq%c], shard: i, seq: seq})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].ev.T != all[j].ev.T {
			return all[i].ev.T < all[j].ev.T
		}
		if all[i].shard != all[j].shard {
			return all[i].shard < all[j].shard
		}
		return all[i].seq < all[j].seq
	})
	out := make([]Event, len(all))
	for i, t := range all {
		out[i] = t.ev
	}
	return out
}
