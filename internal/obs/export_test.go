package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{T: 100, Kind: KindEnter, P: 0, Tok: 0, Node: 0, Value: -1},
		{T: 350, Dur: 250, Kind: KindBalancer, P: 0, Tok: 0, Node: 0, Value: -1},
		{T: 360, Dur: 10, Kind: KindLink, P: 0, Tok: 0, Node: 0, Value: -1},
		{T: 610, Dur: 250, Kind: KindDiffract, P: 1, Tok: 1, Node: 1, Value: -1},
		{T: 700, Dur: 40, Kind: KindCounter, P: 0, Tok: 0, Node: 2, Value: 0},
		{T: 700, Kind: KindExit, P: 0, Tok: 0, Node: -1, Value: 0},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	meta := Meta{Engine: "sim", Unit: "cycles", Net: "bitonic", Width: 4}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, meta, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	gotMeta, got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta round-trip: got %+v, want %+v", gotMeta, meta)
	}
	want := sampleEvents()
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d round-trip: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, _, err := ReadJSONL(strings.NewReader("not json")); err == nil {
		t.Fatal("ReadJSONL accepted garbage")
	}
	if _, _, err := ReadJSONL(strings.NewReader(`{"t":1,"kind":"enter","p":0,"tok":0,"node":0}`)); err == nil {
		t.Fatal("ReadJSONL accepted a trace without a meta header")
	}
	if _, _, err := ReadJSONL(strings.NewReader(
		`{"meta":{"engine":"sim","unit":"cycles"}}` + "\n" + `{"t":1,"kind":"bogus","p":0,"tok":0,"node":0}`)); err == nil {
		t.Fatal("ReadJSONL accepted an unknown event kind")
	}
}

// TestChromeTraceLossless verifies the JSONL → Chrome conversion is
// lossless for event ordering and timestamps: the traceEvents array keeps
// the input order and carries every native timestamp (and duration)
// verbatim in args.
func TestChromeTraceLossless(t *testing.T) {
	for _, unit := range []string{"cycles", "ns"} {
		meta := Meta{Engine: "shm", Unit: unit, Net: "dtree", Width: 8}
		events := sampleEvents()

		// The JSONL → Chrome pipeline: serialize, re-read, convert.
		var jsonl bytes.Buffer
		if err := WriteJSONL(&jsonl, meta, events); err != nil {
			t.Fatal(err)
		}
		meta2, events2, err := ReadJSONL(&jsonl)
		if err != nil {
			t.Fatal(err)
		}
		var chrome bytes.Buffer
		if err := WriteChromeTrace(&chrome, meta2, events2); err != nil {
			t.Fatal(err)
		}

		var doc struct {
			TraceEvents []struct {
				Name  string         `json:"name"`
				Phase string         `json:"ph"`
				TS    float64        `json:"ts"`
				Args  map[string]any `json:"args"`
			} `json:"traceEvents"`
			OtherData Meta `json:"otherData"`
		}
		if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
			t.Fatalf("chrome trace is not valid JSON (%s): %v", unit, err)
		}
		if doc.OtherData != meta {
			t.Fatalf("meta lost in conversion: got %+v, want %+v", doc.OtherData, meta)
		}
		if len(doc.TraceEvents) != len(events) {
			t.Fatalf("chrome trace has %d events, want %d", len(doc.TraceEvents), len(events))
		}
		for i, ce := range doc.TraceEvents {
			ev := events[i]
			gotT := int64(ce.Args["t"].(float64))
			if gotT != ev.T {
				t.Fatalf("event %d: args.t = %d, want %d (order or timestamp lost)", i, gotT, ev.T)
			}
			if ev.Dur > 0 {
				if ce.Phase != "X" {
					t.Fatalf("event %d: spanned event has phase %q, want X", i, ce.Phase)
				}
				if int64(ce.Args["dur"].(float64)) != ev.Dur {
					t.Fatalf("event %d: args.dur = %v, want %d", i, ce.Args["dur"], ev.Dur)
				}
			} else if ce.Phase != "i" {
				t.Fatalf("event %d: instant event has phase %q, want i", i, ce.Phase)
			}
			if !strings.HasPrefix(ce.Name, ev.Kind.String()) {
				t.Fatalf("event %d: name %q does not carry kind %q", i, ce.Name, ev.Kind)
			}
		}
		// ts values must be monotone when the native timestamps are —
		// ordering survives the unit scaling.
		for i := 1; i < len(doc.TraceEvents); i++ {
			a, b := doc.TraceEvents[i-1], doc.TraceEvents[i]
			sa, sb := events[i-1].T-events[i-1].Dur, events[i].T-events[i].Dur
			if sa <= sb && a.TS > b.TS {
				t.Fatalf("ts ordering inverted at %d: %f > %f (%s)", i, a.TS, b.TS, unit)
			}
		}
	}
}

func TestExportFilePicksFormat(t *testing.T) {
	meta := Meta{Engine: "sim", Unit: "cycles"}
	var buf bytes.Buffer
	if err := ExportFile(&buf, "trace.jsonl", meta, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("jsonl suffix did not produce JSONL: %v", err)
	}
	buf.Reset()
	if err := ExportFile(&buf, "trace.json", meta, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("json suffix did not produce a chrome trace: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("chrome trace missing traceEvents")
	}
}

// TestJSONLSpanRoundTrip pins the causal fields on the wire: span/parent
// survive a JSONL round trip and stay absent (omitempty) on uncausal
// events, so traces from unstamped runs are byte-identical to before.
func TestJSONLSpanRoundTrip(t *testing.T) {
	meta := Meta{Engine: "msgnet", Unit: "ns", Reason: "liveness-valve"}
	events := []Event{
		{T: 1, Kind: KindEnter, P: 0, Tok: 0, Node: -1, Value: -1, Span: 7},
		{T: 2, Dur: 1, Kind: KindRetry, P: 0, Tok: 0, Node: 3, Value: 1, Span: 9, Parent: 7},
		{T: 3, Kind: KindDedup, P: 1, Tok: 0, Node: 1, Value: -1, Span: 12, Parent: 9},
		{T: 4, Kind: KindExit, P: 0, Tok: 0, Node: -1, Value: 0},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, meta, events); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"kind":"exit","p":0,"tok":0,"node":-1,"value":0,"span"`) ||
		strings.Count(buf.String(), `"span"`) != 3 {
		t.Fatalf("span fields not omitted on uncausal events:\n%s", buf.String())
	}
	gotMeta, got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta round-trip: got %+v, want %+v", gotMeta, meta)
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d round-trip: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

// TestChromeTraceFlowEvents checks causal edges become flow-event pairs:
// ph "s" anchored on the parent's track and timestamp, ph "f" with
// bp "e" on the child's, keyed by the child's span id. Edges whose
// parent is missing from the trace emit nothing.
func TestChromeTraceFlowEvents(t *testing.T) {
	meta := Meta{Engine: "msgnet", Unit: "ns"}
	events := []Event{
		{T: 100, Kind: KindBalancer, P: 0, Tok: 0, Node: 0, Value: -1, Span: 5},
		{T: 300, Dur: 50, Kind: KindCounter, P: 2, Tok: 0, Node: 4, Value: 1, Span: 8, Parent: 5},
		{T: 400, Kind: KindDedup, P: 1, Tok: 0, Node: 4, Value: -1, Span: 9, Parent: 99}, // parent absent
	}
	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, meta, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Cat   string  `json:"cat"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			TID   int32   `json:"tid"`
			ID    uint64  `json:"id"`
			BP    string  `json:"bp"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var starts, finishes []int
	for i, ce := range doc.TraceEvents {
		switch ce.Phase {
		case "s":
			starts = append(starts, i)
		case "f":
			finishes = append(finishes, i)
		}
	}
	if len(starts) != 1 || len(finishes) != 1 {
		t.Fatalf("got %d flow starts, %d finishes; want 1 each (orphan edge must emit none)", len(starts), len(finishes))
	}
	s, f := doc.TraceEvents[starts[0]], doc.TraceEvents[finishes[0]]
	if s.ID != 8 || f.ID != 8 {
		t.Fatalf("flow pair keyed by ids %d/%d, want the child span 8", s.ID, f.ID)
	}
	if s.Cat != "causal" || f.Cat != "causal" || f.BP != "e" {
		t.Fatalf("flow pair malformed: start %+v finish %+v", s, f)
	}
	// Start binds to the parent's track/time; finish to the child slice
	// start (T-Dur) on the child's track.
	scale := chromeScale(meta.Unit)
	if s.TID != 0 || s.TS != 100*scale {
		t.Fatalf("flow start at tid %d ts %f, want parent track 0 ts %f", s.TID, s.TS, 100*scale)
	}
	if f.TID != 2 || f.TS != 250*scale {
		t.Fatalf("flow finish at tid %d ts %f, want child track 2 ts %f", f.TID, f.TS, 250*scale)
	}
}
