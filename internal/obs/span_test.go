package obs

import (
	"sync"
	"testing"
)

// TestClockTickUniqueMonotone drives concurrent tickers and checks ids
// are unique — the property span identity rests on.
func TestClockTickUniqueMonotone(t *testing.T) {
	c := NewClock()
	const workers, per = 8, 1000
	ids := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ids[w] = append(ids[w], c.Tick())
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool, workers*per)
	for w := range ids {
		last := uint64(0)
		for _, id := range ids[w] {
			if id == 0 {
				t.Fatal("Tick returned 0; 0 is the no-span sentinel")
			}
			if id <= last {
				t.Fatalf("ids not monotone within one goroutine: %d after %d", id, last)
			}
			last = id
			if seen[id] {
				t.Fatalf("span id %d issued twice", id)
			}
			seen[id] = true
		}
	}
	if c.Now() != uint64(workers*per) {
		t.Fatalf("Now = %d, want %d", c.Now(), workers*per)
	}
}

// TestClockWitness pins the Lamport max-join: witnessing a remote value
// pushes later ticks past it, witnessing the past is a no-op.
func TestClockWitness(t *testing.T) {
	c := NewClock()
	c.Tick()
	c.Witness(100)
	if got := c.Tick(); got != 101 {
		t.Fatalf("Tick after Witness(100) = %d, want 101", got)
	}
	c.Witness(5) // behind; must not rewind
	if got := c.Tick(); got != 102 {
		t.Fatalf("Tick after stale Witness = %d, want 102", got)
	}
}

// TestCausalClosure checks orphan chains (parents lost to wraparound) are
// dropped transitively while intact chains and uncausal events survive.
func TestCausalClosure(t *testing.T) {
	events := []Event{
		{T: 1, Span: 1},            // root, kept
		{T: 2, Span: 2, Parent: 1}, // kept
		{T: 3, Span: 4, Parent: 3}, // parent 3 absent: orphan
		{T: 4, Span: 5, Parent: 4}, // ancestor orphaned: dropped too
		{T: 5, Span: 6, Parent: 2}, // kept
		{T: 6},                     // no span: kept as-is
		{T: 7, Span: 8, Parent: 7}, // orphan
	}
	closed, orphans := CausalClosure(events)
	if orphans != 3 {
		t.Fatalf("orphans = %d, want 3", orphans)
	}
	if len(closed) != 4 {
		t.Fatalf("closure kept %d events (%v), want 4", len(closed), closed)
	}
	wantT := []int64{1, 2, 5, 6}
	for i, ev := range closed {
		if ev.T != wantT[i] {
			t.Fatalf("closure kept wrong events (order not preserved?): %v", closed)
		}
	}
}

// TestCausalClosureUnsortedInput feeds children before parents: span
// order, not input order, must drive resolution.
func TestCausalClosureUnsortedInput(t *testing.T) {
	events := []Event{
		{T: 9, Span: 3, Parent: 2},
		{T: 8, Span: 2, Parent: 1},
		{T: 7, Span: 1},
	}
	closed, orphans := CausalClosure(events)
	if orphans != 0 || len(closed) != 3 {
		t.Fatalf("closure = %v, orphans %d; want all 3 kept", closed, orphans)
	}
}

// TestTee checks fan-out and the nil-dropping contract.
func TestTee(t *testing.T) {
	a, b := NewRing(1, 8), NewRing(1, 8)
	tr := Tee(a, b)
	tr.Record(Event{T: 1, Kind: KindEnter})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("tee did not fan out: %d/%d", a.Len(), b.Len())
	}
	if got := Tee(a, nil); got != Tracer(a) {
		t.Fatal("Tee(a, nil) should be a itself")
	}
	if got := Tee(nil, b); got != Tracer(b) {
		t.Fatal("Tee(nil, b) should be b itself")
	}
	if got := Tee(nil, nil); got != nil {
		t.Fatal("Tee(nil, nil) should be nil")
	}
}
