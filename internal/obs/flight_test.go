package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestFlightSnapshotClosedAndOrdered fills a shard past capacity and
// checks the snapshot is the causally closed newest window in span order.
func TestFlightSnapshotClosedAndOrdered(t *testing.T) {
	f := NewFlight(Meta{Engine: "test", Unit: "ns"}, 1, 4)
	// One chain of six events on one shard: spans 1..6, each parented on
	// the previous. Capacity 4 retains spans 3..6, but span 3's parent
	// (2) was overwritten, so the whole retained chain is orphaned and
	// closure drops all four.
	for i := 1; i <= 6; i++ {
		f.Record(Event{T: int64(i), Span: uint64(i), Parent: uint64(i - 1), Kind: KindBalancer, P: 0})
	}
	events, orphans := f.Snapshot()
	if len(events) != 0 || orphans != 4 {
		t.Fatalf("broken-chain snapshot kept %d events (%d orphans), want 0 (4)", len(events), orphans)
	}

	// Fresh roots inside the window survive.
	f2 := NewFlight(Meta{}, 2, 4)
	f2.Record(Event{T: 1, Span: 1, Kind: KindEnter, P: 0})
	f2.Record(Event{T: 3, Span: 3, Parent: 1, Kind: KindExit, P: 0})
	f2.Record(Event{T: 2, Span: 2, Kind: KindEnter, P: 1})
	events, orphans = f2.Snapshot()
	if orphans != 0 || len(events) != 3 {
		t.Fatalf("snapshot = %v (%d orphans), want 3 events", events, orphans)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Span < events[i-1].Span {
			t.Fatalf("snapshot not in span order: %v", events)
		}
	}
}

// TestFlightDumpReadsBack round-trips a dump through ReadJSONL and checks
// the reason lands in the meta header.
func TestFlightDumpReadsBack(t *testing.T) {
	f := NewFlight(Meta{Engine: "msgnet", Unit: "ns", Net: "bitonic", Width: 4}, 2, 16)
	f.Record(Event{T: 1, Span: 1, Kind: KindEnter, P: 0, Tok: 0, Node: -1, Value: -1})
	f.Record(Event{T: 2, Dur: 1, Span: 2, Parent: 1, Kind: KindBalancer, P: 0, Tok: 0, Node: 3, Value: -1})
	var buf bytes.Buffer
	if err := f.Dump(&buf, "lincheck-violation"); err != nil {
		t.Fatal(err)
	}
	meta, events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Reason != "lincheck-violation" || meta.Engine != "msgnet" {
		t.Fatalf("dump meta = %+v", meta)
	}
	if len(events) != 2 || events[1].Parent != 1 || events[1].Span != 2 {
		t.Fatalf("dump events = %+v", events)
	}
}

// TestFlightTripOnce checks the black-box contract: first Trip dumps to
// the armed path, later trips are no-ops, unarmed recorders never write.
func TestFlightTripOnce(t *testing.T) {
	f := NewFlight(Meta{Engine: "test", Unit: "ns"}, 1, 8)
	f.Record(Event{T: 1, Span: 1, Kind: KindEnter})
	if path, err := f.Trip("liveness-valve"); err != nil || path != "" {
		t.Fatalf("unarmed Trip = (%q, %v), want no-op", path, err)
	}
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	f.SetAutoDump(path)
	got, err := f.Trip("liveness-valve")
	if err != nil || got != path {
		t.Fatalf("armed Trip = (%q, %v), want %q", got, err, path)
	}
	if f.Tripped() != "liveness-valve" {
		t.Fatalf("Tripped = %q", f.Tripped())
	}
	if got, err := f.Trip("panic"); err != nil || got != "" {
		t.Fatalf("second Trip = (%q, %v), want no-op", got, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"reason":"liveness-valve"`) {
		t.Fatalf("dump missing reason: %s", data)
	}
}

// TestFlightRecoverDump checks the panic hook dumps and re-panics.
func TestFlightRecoverDump(t *testing.T) {
	f := NewFlight(Meta{Engine: "test", Unit: "ns"}, 1, 8)
	path := filepath.Join(t.TempDir(), "crash.jsonl")
	f.SetAutoDump(path)
	f.Record(Event{T: 1, Span: 1, Kind: KindEnter})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RecoverDump swallowed the panic")
			}
		}()
		defer f.RecoverDump()
		panic("boom")
	}()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"reason":"panic"`) {
		t.Fatalf("crash dump missing reason: %s", data)
	}
}

// TestFlightSnapshotDuringRecording snapshots while writers are live —
// the property Ring cannot offer and Flight exists for. Run under -race.
func TestFlightSnapshotDuringRecording(t *testing.T) {
	const procs = 4
	f := NewFlight(Meta{}, procs, 64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Each writer wraps its shard at least twice before it starts
			// honoring stop, so the final snapshot is guaranteed full even
			// if the snapshotting goroutine finishes first.
			for i := 0; ; i++ {
				if i >= 200 {
					select {
					case <-stop:
						return
					default:
					}
				}
				f.Record(Event{T: int64(i), P: int32(p), Kind: KindBalancer})
			}
		}(p)
	}
	for i := 0; i < 50; i++ {
		f.Snapshot()
	}
	close(stop)
	wg.Wait()
	if events, _ := f.Snapshot(); len(events) != procs*64 {
		t.Fatalf("final snapshot has %d events, want %d", len(events), procs*64)
	}
}
