package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	g := r.Gauge("depth")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 || g.Value() != 5 {
		t.Fatalf("counter %d gauge %d, want 5 and 5", c.Value(), g.Value())
	}
	// Re-registration under the same name returns the same instance.
	if r.Counter("ops") != c {
		t.Fatal("duplicate Counter registration created a new instance")
	}
}

func TestMinMaxConcurrent(t *testing.T) {
	m := NewMinMax()
	if _, ok := m.Min(); ok {
		t.Fatal("empty MinMax claims an observation")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	lo, _ := m.Min()
	hi, _ := m.Max()
	if lo != 0 || hi != 7999 || m.Count() != 8000 {
		t.Fatalf("min=%d max=%d n=%d, want 0, 7999, 8000", lo, hi, m.Count())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d, want 1000", h.Count())
	}
	if mean := h.Mean(); math.Abs(mean-500.5) > 0.001 {
		t.Fatalf("mean %f, want 500.5", mean)
	}
	// Log-bucket quantiles are lower bounds within 2^-5 relative error.
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}} {
		got := h.Quantile(tc.q)
		if got > tc.want || float64(got) < float64(tc.want)*(1-1.0/32)-1 {
			t.Fatalf("q%.2f = %d, want within 3.2%% below %d", tc.q, got, tc.want)
		}
	}
	if h.Quantile(math.NaN()) != h.Quantile(0) {
		t.Fatal("NaN quantile should clamp to 0")
	}
	h.Observe(-5) // counts as 0
	if h.Quantile(0) != 0 {
		t.Fatalf("q0 after negative observe = %d, want 0", h.Quantile(0))
	}
}

func TestRatioEstimator(t *testing.T) {
	r := NewRatio(1000)
	if !math.IsInf(r.Value(), 1) {
		t.Fatal("ratio before observations should be +Inf")
	}
	for i := 0; i < 10; i++ {
		r.Observe(500)
	}
	if got := r.Tog(); got != 500 {
		t.Fatalf("Tog = %f, want 500", got)
	}
	if got := r.Value(); math.Abs(got-3.0) > 1e-12 {
		t.Fatalf("(Tog+W)/Tog = %f, want 3.0", got)
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_ops").Add(3)
	r.Gauge("a_depth").Set(2)
	r.GaugeFunc("c_ratio", func() float64 { return 1.5 })
	mm := r.MinMax("wire")
	mm.Observe(10)
	mm.Observe(90)
	r.Histogram("lat").Observe(64)
	rt := r.Ratio("avg_c2c1", 100)
	rt.Observe(50)
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"a_depth 2", "b_ops 3", "c_ratio 1.5",
		"wire_min 10", "wire_max 90", "wire_count 2",
		"lat_count 1", "lat_p99 64",
		"avg_c2c1_tog 50", "avg_c2c1 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: a_depth before b_ops before c_ratio.
	if strings.Index(out, "a_depth") > strings.Index(out, "b_ops") ||
		strings.Index(out, "b_ops") > strings.Index(out, "c_ratio") {
		t.Fatalf("WriteText not sorted:\n%s", out)
	}
}
