// Package obs is the shared observability layer of the three execution
// engines (internal/sim, internal/shm, internal/msgnet): a low-overhead
// structured-event tracer with a lock-free per-processor ring recorder, an
// online metrics registry (counters, gauges, min/max trackers, log-bucketed
// latency histograms, and a live (Tog+W)/Tog estimator), and exporters to
// JSON Lines and the Chrome trace_event format so any run opens directly in
// Perfetto (https://ui.perfetto.dev).
//
// The design goal is that tracing disabled costs nothing on the hot path:
// engines hold a nil Tracer (or the value type Nop) and guard every Record
// with a nil check, and Nop.Record compiles to an empty inlined call with
// zero allocations (locked down by an AllocsPerRun test).
package obs

import "fmt"

// Kind classifies one trace event.
type Kind uint8

// Event kinds. The lifecycle of one counting operation is Enter, then for
// every network node either Balancer (toggle critical section), Diffract
// (prism pairing), or Counter (output fetch-and-increment), interleaved
// with Link events for the wire hops between nodes, and finally Exit with
// the returned counter value.
const (
	// KindEnter marks a token entering the network.
	KindEnter Kind = iota + 1
	// KindBalancer marks a token passing a balancer's toggle; Dur is the
	// time from arrival at the node to leaving the critical section — the
	// paper's Tog contribution of this traversal.
	KindBalancer
	// KindDiffract marks a token leaving a balancer by prism pairing
	// instead of the toggle; Dur is the prism wait plus pairing time.
	KindDiffract
	// KindCounter marks a token taking a value from an output counter.
	KindCounter
	// KindLink marks a wire hop between nodes; Node is the node the wire
	// leaves and Dur the traversal time (the quantity c1/c2 bound).
	KindLink
	// KindExit marks operation completion; Value holds the counter value.
	KindExit
	// KindRetry marks one retransmission of a dropped hop on the faulty
	// message-passing send path: Dur is the backoff pause before the
	// retry, Node the node the delivery was headed for, and Value the
	// link id of the dropped wire (fault verdicts carry span ids through
	// these events).
	KindRetry
	// KindDedup marks a receiver suppressing a faulty duplicate delivery;
	// Node is the receiver. The duplicate's causal chain ends here.
	KindDedup
)

// kindMax is the highest defined Kind, the upper bound of kind loops.
const kindMax = KindDedup

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindEnter:
		return "enter"
	case KindBalancer:
		return "balancer"
	case KindDiffract:
		return "diffract"
	case KindCounter:
		return "counter"
	case KindLink:
		return "link"
	case KindExit:
		return "exit"
	case KindRetry:
		return "retry"
	case KindDedup:
		return "dedup"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one structured trace record. Timestamps are in the engine's
// native unit — simulator cycles or wall-clock nanoseconds (Meta.Unit says
// which); only their relative order and differences matter.
type Event struct {
	// T is the event timestamp (for spanned events, the end of the span).
	T int64
	// Dur is the duration of the spanned work; 0 for instant events.
	Dur int64
	// Kind classifies the event.
	Kind Kind
	// P is the processor (simulated processor, worker goroutine, or node
	// goroutine) that produced the event; it selects the recorder shard.
	P int32
	// Tok is the token (operation) id, -1 when not applicable.
	Tok int32
	// Node is the network node id, -1 when not applicable.
	Node int32
	// Value is the counter value on Exit/Counter events, the link id on
	// Retry events, and -1 otherwise.
	Value int64
	// Span is the event's causal span id: a Lamport timestamp drawn from
	// the run's shared Clock, unique within the trace and strictly greater
	// than Parent. 0 when causal stamping is off.
	Span uint64
	// Parent is the span id of the event that causally precedes this one
	// on the token's path — the previous hop, the send a retry
	// retransmits, or the original delivery a duplicate shadows. 0 for
	// chain roots (Enter events) and uncausal traces.
	Parent uint64
}

// Tracer receives trace events. Implementations must tolerate concurrent
// Record calls from distinct P values; events with the same P are always
// recorded by at most one goroutine at a time (each processor records only
// its own actions).
type Tracer interface {
	Record(Event)
}

// Nop is the disabled tracer: Record does nothing, allocates nothing, and
// inlines to nothing.
type Nop struct{}

// Record implements Tracer.
func (Nop) Record(Event) {}

// Tee returns a tracer forwarding every event to both a and b, dropping
// nil branches: Tee(a, nil) is a itself, so the extra dispatch is only
// paid when both sinks are live. It is how an engine feeds a full-trace
// ring and a flight recorder from one Record stream.
func Tee(a, b Tracer) Tracer {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return tee{a, b}
}

// tee is the two-sink fan-out tracer built by Tee.
type tee struct{ a, b Tracer }

// Record implements Tracer.
func (t tee) Record(ev Event) {
	t.a.Record(ev)
	t.b.Record(ev)
}

// Window returns the events whose span overlaps the closed interval
// [from, to] — the minimal trace slice covering a time window, used to cut
// a violation witness out of a full run. The input order is preserved.
func Window(events []Event, from, to int64) []Event {
	var out []Event
	for _, ev := range events {
		dur := ev.Dur
		if dur < 0 {
			dur = 0
		}
		// Span is [T-Dur, T]; keep events whose span overlaps [from, to].
		if ev.T >= from && ev.T-dur <= to {
			out = append(out, ev)
		}
	}
	return out
}

// Interface compliance.
var _ Tracer = Nop{}
var _ Tracer = (*Ring)(nil)
