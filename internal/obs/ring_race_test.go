package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRingOverwrittenUnderContention pins the wraparound accounting while
// writers on every shard race live Len/Overwritten readers: both counters
// are served from the shards' atomically published counts, so sampling
// them mid-run must be race-free (this test is part of the CI race
// matrix) and monotone, and the final figures must be exact.
func TestRingOverwrittenUnderContention(t *testing.T) {
	const procs, perProc, events = 8, 128, 2000
	r := NewRing(procs, perProc)
	var wg sync.WaitGroup
	var writersDone atomic.Bool
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				r.Record(Event{T: int64(i), P: int32(p), Tok: int32(i), Kind: KindBalancer})
			}
		}(p)
	}
	// Concurrent observer: Len and Overwritten must never regress while
	// the writers run (each shard's count is monotone and published
	// atomically).
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		lastLen, lastOver := 0, int64(0)
		for !writersDone.Load() {
			if l := r.Len(); l < lastLen {
				t.Errorf("Len regressed mid-run: %d after %d", l, lastLen)
				return
			} else {
				lastLen = l
			}
			if o := r.Overwritten(); o < lastOver {
				t.Errorf("Overwritten regressed mid-run: %d after %d", o, lastOver)
				return
			} else {
				lastOver = o
			}
		}
	}()
	wg.Wait()
	writersDone.Store(true)
	<-readerDone

	if got, want := r.Len(), procs*perProc; got != want {
		t.Fatalf("Len after wraparound = %d, want %d", got, want)
	}
	if got, want := r.Overwritten(), int64(procs*(events-perProc)); got != want {
		t.Fatalf("Overwritten = %d, want %d", got, want)
	}
	evs := r.Events()
	if len(evs) != procs*perProc {
		t.Fatalf("Events retained %d, want %d", len(evs), procs*perProc)
	}
	// Every shard must have kept exactly its newest window.
	perShardMin := map[int32]int64{}
	for _, ev := range evs {
		if cur, ok := perShardMin[ev.P]; !ok || ev.T < cur {
			perShardMin[ev.P] = ev.T
		}
	}
	for p, min := range perShardMin {
		if min != events-perProc {
			t.Fatalf("shard %d oldest retained T = %d, want %d (newest window)", p, min, events-perProc)
		}
	}
}

// TestRingFoldedShardsAccounting pins the out-of-range-P folding: tokens
// recorded with negative or oversized processor ids land on a shard by
// modulus and are still counted by Len/Overwritten.
func TestRingFoldedShardsAccounting(t *testing.T) {
	r := NewRing(2, 4)
	for i := 0; i < 6; i++ {
		r.Record(Event{T: int64(i), P: -7}) // folds onto shard 1
	}
	r.Record(Event{T: 100, P: 4}) // folds onto shard 0
	if got := r.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5 (4 retained on shard 1, 1 on shard 0)", got)
	}
	if got := r.Overwritten(); got != 2 {
		t.Fatalf("Overwritten = %d, want 2", got)
	}
}
