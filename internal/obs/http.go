package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Serve starts an HTTP server on addr exposing net/http/pprof under
// /debug/pprof/ and, when reg is non-nil, the plain-text metrics dump at
// /metrics. It returns the bound address (useful with ":0") and a function
// that shuts the listener down.
func Serve(addr string, reg *Registry) (bound string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), ln.Close, nil
}
