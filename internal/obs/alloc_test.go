package obs

import "testing"

// Allocation guards for the span path (enforced, not just reported):
// stamping must stay free when tracing is disabled and allocation-free
// when enabled — the flight recorder and clock write into preallocated
// shards, so a traced chaos run's hot loop never touches the heap.

// TestDisabledSpanStampZeroAlloc pins the disabled path: the engines
// guard stamping behind a nil check on their obs handle, so the cost of
// compiled-in-but-off spans is one branch and zero allocations.
func TestDisabledSpanStampZeroAlloc(t *testing.T) {
	var c *Clock // disabled: engines never call Tick through a nil clock
	var tr Tracer = Nop{}
	ev := Event{T: 1, Kind: KindBalancer, P: 0, Tok: 7, Node: 2, Value: -1}
	allocs := testing.AllocsPerRun(1000, func() {
		if c != nil {
			ev.Span = c.Tick()
		}
		tr.Record(ev)
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f times per op, want 0", allocs)
	}
}

// TestSpanPathAllocs pins the enabled path: Tick plus a Tee fan-out into
// a ring and a flight recorder is allocation-free per event.
func TestSpanPathAllocs(t *testing.T) {
	c := NewClock()
	r := NewRing(1, 1<<12)
	f := NewFlight(Meta{Engine: "test", Unit: "ns"}, 1, 1<<10)
	tr := Tee(r, f)
	ev := Event{T: 1, Kind: KindBalancer, P: 0, Tok: 7, Node: 2, Value: -1}
	allocs := testing.AllocsPerRun(1000, func() {
		ev.Parent = ev.Span
		ev.Span = c.Tick()
		tr.Record(ev)
	})
	if allocs != 0 {
		t.Fatalf("enabled span path allocates %.1f times per op, want 0", allocs)
	}
}

func BenchmarkClockTick(b *testing.B) {
	c := NewClock()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Tick()
	}
}

// BenchmarkSpanStampRing is the enabled hot path of a traced engine:
// draw a span id, chain the parent, record into the ring.
func BenchmarkSpanStampRing(b *testing.B) {
	c := NewClock()
	r := NewRing(1, 1<<16)
	ev := Event{Kind: KindBalancer, P: 0, Tok: 7, Node: 2, Value: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.T = int64(i)
		ev.Parent = ev.Span
		ev.Span = c.Tick()
		r.Record(ev)
	}
}

// BenchmarkFlightRecord measures the mutex-guarded flight-recorder shard
// write (uncontended, as on the single-writer-per-processor hot path).
func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlight(Meta{Engine: "bench", Unit: "ns"}, 1, 1<<10)
	ev := Event{Kind: KindBalancer, P: 0, Tok: 7, Node: 2, Value: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.T = int64(i)
		f.Record(ev)
	}
}

// BenchmarkTeeRecord measures the ring+flight fan-out engines run with
// both a live trace and a black box armed.
func BenchmarkTeeRecord(b *testing.B) {
	tr := Tee(NewRing(1, 1<<16), NewFlight(Meta{Engine: "bench", Unit: "ns"}, 1, 1<<10))
	ev := Event{Kind: KindBalancer, P: 0, Tok: 7, Node: 2, Value: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.T = int64(i)
		tr.Record(ev)
	}
}
