package obs

import (
	"io"
	"os"
	"sort"
	"sync"
)

// Flight is a bounded-memory flight recorder: a per-processor ring of the
// most recent causally stamped events that can be snapshotted while the
// run is still in motion, then dumped as a causally closed JSONL slice
// the first time something goes wrong — a lincheck violation, a fault
// plan's liveness valve forcing a delivery through, or a panic. Unlike
// Ring (whose Events contract requires quiescence), every Flight shard is
// mutex-guarded, so a dump taken mid-flight is race-free; the lock is
// uncontended on the hot path because each processor still writes only
// its own shard.
type Flight struct {
	shards []flightShard
	meta   Meta

	mu      sync.Mutex
	auto    string // SetAutoDump destination; "" disables Trip dumps
	tripped string // reason of the first Trip, "" until then
}

// flightShard is one processor's guarded window of recent events.
type flightShard struct {
	mu  sync.Mutex
	buf []Event
	n   int64 // total events recorded (monotone; may exceed len(buf))
	_   [32]byte
}

// NewFlight returns a recorder with one shard per processor id in
// [0, procs) holding the last perProc events each. meta describes the run
// and is written into every dump.
func NewFlight(meta Meta, procs, perProc int) *Flight {
	if procs < 1 {
		procs = 1
	}
	if perProc < 1 {
		perProc = 1
	}
	f := &Flight{shards: make([]flightShard, procs), meta: meta}
	for i := range f.shards {
		f.shards[i].buf = make([]Event, perProc)
	}
	return f
}

// Record implements Tracer. Out-of-range P folds onto a shard by modulus,
// like Ring.
func (f *Flight) Record(ev Event) {
	p := int(ev.P)
	if p < 0 {
		p = -p
	}
	s := &f.shards[p%len(f.shards)]
	s.mu.Lock()
	s.buf[s.n%int64(len(s.buf))] = ev
	s.n++
	s.mu.Unlock()
}

// Snapshot returns the retained window of every shard, causally closed
// (ancestor chains cut by ring wraparound are dropped) and merged in span
// order so the dump reads as a happens-before story. Safe to call while
// other goroutines keep recording.
func (f *Flight) Snapshot() (events []Event, orphans int) {
	var all []Event
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		c := int64(len(s.buf))
		start := int64(0)
		if s.n > c {
			start = s.n - c
		}
		for seq := start; seq < s.n; seq++ {
			all = append(all, s.buf[seq%c])
		}
		s.mu.Unlock()
	}
	sortEvents(all)
	return CausalClosure(all)
}

// sortEvents orders a merged snapshot deterministically: by span id when
// both events carry one (causal order), by timestamp otherwise.
func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Span != 0 && b.Span != 0 {
			return a.Span < b.Span
		}
		return a.T < b.T
	})
}

// Dump writes the current snapshot as JSONL, with reason recorded in the
// meta header.
func (f *Flight) Dump(w io.Writer, reason string) error {
	events, _ := f.Snapshot()
	meta := f.meta
	meta.Reason = reason
	return WriteJSONL(w, meta, events)
}

// DumpFile writes the snapshot to path (JSONL regardless of extension —
// a flight dump is an analysis artifact, not a Perfetto view).
func (f *Flight) DumpFile(path, reason string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Dump(file, reason); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// SetAutoDump arms the recorder: the first Trip after it writes the
// snapshot to path.
func (f *Flight) SetAutoDump(path string) {
	f.mu.Lock()
	f.auto = path
	f.mu.Unlock()
}

// Trip fires the recorder once: the first call dumps the snapshot to the
// SetAutoDump path under the given reason and returns the path; later
// calls (and calls on an unarmed recorder) are no-ops returning "". This
// is the hook engines call on a liveness-valve trip and drivers call on
// violation, so a long chaos run leaves exactly one black-box artifact.
func (f *Flight) Trip(reason string) (string, error) {
	f.mu.Lock()
	if f.tripped != "" || f.auto == "" {
		f.mu.Unlock()
		return "", nil
	}
	f.tripped = reason
	path := f.auto
	f.mu.Unlock()
	return path, f.DumpFile(path, reason)
}

// Tripped returns the reason of the first Trip, or "" if the recorder has
// not fired.
func (f *Flight) Tripped() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// RecoverDump is the panic hook: deferred at the top of a driver, it
// dumps the flight window (reason "panic") to the auto-dump path before
// re-panicking, so a crash leaves the same artifact a violation would.
func (f *Flight) RecoverDump() {
	if r := recover(); r != nil {
		f.Trip("panic")
		panic(r)
	}
}

// Interface compliance.
var _ Tracer = (*Flight)(nil)
