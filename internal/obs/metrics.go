package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"countnet/internal/core"
	"countnet/internal/stats"
)

// histSubBits sets the log-linear histogram resolution: 2^5 = 32
// sub-buckets per power of two, a ≤3.2% relative quantization error.
const histSubBits = 5

// Counter is a monotone atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous integer level (queue depth, tokens in flight).
type Gauge struct{ v atomic.Int64 }

// Set stores the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by d (use negative d to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// MinMax tracks the extremes of an observed stream — per-wire traversal
// times, so the run's empirical c1/c2 is readable at runtime. Use NewMinMax
// (or Registry.MinMax); the zero value is not ready.
type MinMax struct {
	min atomic.Int64
	max atomic.Int64
	n   atomic.Int64
}

// NewMinMax returns an empty tracker with sentinel extremes, so concurrent
// first observations need no special case.
func NewMinMax() *MinMax {
	m := &MinMax{}
	m.min.Store(math.MaxInt64)
	m.max.Store(math.MinInt64)
	return m
}

// Observe folds v into the extremes with lock-free CAS races.
func (m *MinMax) Observe(v int64) {
	m.n.Add(1)
	for {
		cur := m.min.Load()
		if v >= cur || m.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := m.max.Load()
		if v <= cur || m.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Min returns the smallest observation; ok is false before any Observe.
func (m *MinMax) Min() (v int64, ok bool) { return m.min.Load(), m.n.Load() > 0 }

// Max returns the largest observation; ok is false before any Observe.
func (m *MinMax) Max() (v int64, ok bool) { return m.max.Load(), m.n.Load() > 0 }

// Count returns the number of observations.
func (m *MinMax) Count() int64 { return m.n.Load() }

// Histogram is a concurrent log-bucketed (HDR-style) latency histogram
// over non-negative int64 samples, using the bucket boundaries of
// stats.LogBucket. Observe is wait-free (one atomic add per bucket plus
// sum/count), and quantiles are estimated from bucket lower bounds.
type Histogram struct {
	buckets []atomic.Int64
	sum     atomic.Int64
	n       atomic.Int64
}

// NewHistogram returns an empty histogram covering all of int64.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Int64, stats.NumLogBuckets(histSubBits))}
}

// Observe tallies one sample; negative samples count as zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[stats.LogBucket(v, histSubBits)].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Mean returns the sample mean, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-th quantile (q in [0,1], clamped; NaN treated
// as 0) as the lower bound of the bucket holding the rank, 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return stats.LogBucketLower(i, histSubBits)
		}
	}
	return stats.LogBucketLower(len(h.buckets)-1, histSubBits)
}

// Ratio is the online estimator of the paper's Figure 7 measure
// (Tog + W)/Tog: Observe every balancer wait as it happens and Value
// reports the live average ratio for the configured effective W.
type Ratio struct {
	togSum atomic.Int64
	togN   atomic.Int64
	w      float64
}

// NewRatio returns an estimator for effective per-node delay w (in the
// engine's time unit).
func NewRatio(w float64) *Ratio { return &Ratio{w: w} }

// Observe folds in one balancer wait (the token's arrival-to-departure
// time at the toggle or prism — one Tog sample).
func (r *Ratio) Observe(wait int64) {
	r.togSum.Add(wait)
	r.togN.Add(1)
}

// Tog returns the average balancer wait so far, 0 before any observation.
func (r *Ratio) Tog() float64 {
	n := r.togN.Load()
	if n == 0 {
		return 0
	}
	return float64(r.togSum.Load()) / float64(n)
}

// W returns the configured effective per-node delay.
func (r *Ratio) W() float64 { return r.w }

// Value returns the live (Tog+W)/Tog estimate (+Inf before the first
// observation, matching core.AvgRatio's convention for Tog = 0).
func (r *Ratio) Value() float64 { return core.AvgRatio(r.Tog(), r.w) }

// metric is one named registry entry.
type metric struct {
	name  string
	write func(w io.Writer, name string)
}

// Registry is a process-local metrics registry: engines register named
// counters, gauges, min/max trackers, histograms, and ratio estimators at
// setup time, keep the returned pointers for wait-free hot-path updates,
// and the registry renders a plain-text snapshot on demand (the -metrics
// endpoint and the CLIs' end-of-run dumps).
type Registry struct {
	mu     sync.Mutex
	byName map[string]any
	items  []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]any)}
}

// register files the instance under name, returning an existing instance
// of the same type when the name is already taken (so idempotent engine
// setup is safe).
func register[T any](r *Registry, name string, v T, write func(w io.Writer, name string)) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[name]; ok {
		if t, ok := prev.(T); ok {
			return t
		}
		panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
	}
	r.byName[name] = v
	r.items = append(r.items, metric{name: name, write: write})
	return v
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	return register(r, name, c, func(w io.Writer, name string) {
		fmt.Fprintf(w, "%s %d\n", name, c.Value())
	})
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	return register(r, name, g, func(w io.Writer, name string) {
		fmt.Fprintf(w, "%s %d\n", name, g.Value())
	})
}

// GaugeFunc registers a computed gauge rendered by calling fn at snapshot
// time.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	register(r, name, fn, func(w io.Writer, name string) {
		fmt.Fprintf(w, "%s %g\n", name, fn())
	})
}

// MinMax returns the named min/max tracker, creating it if needed.
func (r *Registry) MinMax(name string) *MinMax {
	m := NewMinMax()
	return register(r, name, m, func(w io.Writer, name string) {
		if lo, ok := m.Min(); ok {
			hi, _ := m.Max()
			fmt.Fprintf(w, "%s_min %d\n%s_max %d\n%s_count %d\n", name, lo, name, hi, name, m.Count())
		} else {
			fmt.Fprintf(w, "%s_count 0\n", name)
		}
	})
}

// Histogram returns the named latency histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	h := NewHistogram()
	return register(r, name, h, func(w io.Writer, name string) {
		fmt.Fprintf(w, "%s_count %d\n%s_mean %.1f\n%s_p50 %d\n%s_p90 %d\n%s_p99 %d\n",
			name, h.Count(), name, h.Mean(),
			name, h.Quantile(0.50), name, h.Quantile(0.90), name, h.Quantile(0.99))
	})
}

// Ratio returns the named (Tog+W)/Tog estimator for effective delay w,
// creating it if needed.
func (r *Registry) Ratio(name string, w float64) *Ratio {
	rt := NewRatio(w)
	return register(r, name, rt, func(wr io.Writer, name string) {
		fmt.Fprintf(wr, "%s_tog %.1f\n%s_w %g\n%s %g\n", name, rt.Tog(), name, rt.W(), name, rt.Value())
	})
}

// WriteText renders every metric as plain "name value" lines, sorted by
// name for stable output.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	items := make([]metric, len(r.items))
	copy(items, r.items)
	r.mu.Unlock()
	sort.Slice(items, func(i, j int) bool { return items[i].name < items[j].name })
	for _, it := range items {
		it.write(w, it.name)
	}
}

// Handler serves the registry as a plain-text HTTP endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
}
