package workload

import (
	"reflect"
	"testing"
)

func TestSpecRoundTrip(t *testing.T) {
	specs := []Spec{
		{Net: Bitonic, Width: 8, Procs: 4, Ops: 100, Frac: 0.25, Wait: 1000, Seed: 7},
		{Net: DTree, Width: 4, Procs: 16, Ops: 50, Frac: 0.5, Wait: 0, RandomWait: true, Seed: 1},
		{Net: Periodic, Width: 2, Procs: 1, Ops: 1, Frac: 0, Wait: 0, Seed: 0},
	}
	for _, s := range specs {
		data, err := EncodeSpec(s)
		if err != nil {
			t.Fatalf("%s: encode: %v", s, err)
		}
		got, err := DecodeSpec(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", s, err)
		}
		if !reflect.DeepEqual(s, got) {
			t.Errorf("round trip mangled spec:\nwrote %+v\nread  %+v", s, got)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Net: Bitonic, Width: 8, Procs: 4, Ops: 100, Frac: 0.25, Wait: 1000}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"unknown net", func(s *Spec) { s.Net = "torus" }},
		{"bad width", func(s *Spec) { s.Width = 3 }},
		{"no procs", func(s *Spec) { s.Procs = 0 }},
		{"no ops", func(s *Spec) { s.Ops = 0 }},
		{"frac too big", func(s *Spec) { s.Frac = 1.5 }},
		{"negative wait", func(s *Spec) { s.Wait = -1 }},
	}
	for _, tc := range cases {
		s := good
		tc.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
		if _, err := EncodeSpec(s); err == nil {
			t.Errorf("%s: encode accepted invalid spec", tc.name)
		}
	}
}

func TestDecodeSpecRejectsGarbage(t *testing.T) {
	if _, err := DecodeSpec([]byte(`{"Net":"bitonic"`)); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := DecodeSpec([]byte(`{"Net":"bitonic","Width":7,"Procs":1,"Ops":1}`)); err == nil {
		t.Error("invalid width accepted")
	}
}
