package workload

import (
	"fmt"
	"time"

	"countnet/internal/shm"
	"countnet/internal/shm/adaptive"
)

// RealSpec is the wall-clock, real-goroutine analogue of Spec: the same
// benchmark (a fraction F of workers pauses W after every node) run on the
// shm runtime instead of the cycle simulator — extension experiment E13.
type RealSpec struct {
	Net         NetKind
	Width       int
	Workers     int
	Ops         int
	Frac        float64
	Delay       time.Duration
	RandomDelay bool
	Seed        int64
	// BurnDelay burns W as busy work occupying the simulated processor
	// (the model for coherence stalls) instead of a cooperative pause.
	BurnDelay bool
	// Combine routes tokens through the elimination/combining funnel in
	// front of the network (internal/shm/combine); CombineWidth and
	// CombineWindow configure it, zero values meaning the funnel
	// defaults.
	Combine       bool
	CombineWidth  int
	CombineWindow time.Duration
	// Adaptive routes tokens through the contention-adaptive front-end
	// (internal/shm/adaptive), which switches between a direct counter,
	// the combining funnel, and the full network as load changes.
	// Mutually exclusive with Combine (the adaptive engine owns its own
	// funnel). AdaptiveLinearizable enables its Corollary 3.12 padding.
	// AdaptiveLinearBelow forwards adaptive.Options.LinearBelow: when
	// positive, the front-end starts in — and below that occupancy stays
	// in — the guaranteed-linearizable ModeLinear waiting regime.
	Adaptive             bool
	AdaptiveLinearizable bool
	AdaptiveLinearBelow  int
}

// String names the spec compactly.
func (s RealSpec) String() string {
	tail := ""
	if s.RandomDelay {
		tail = "/random"
	}
	if s.BurnDelay {
		tail += "/burn"
	}
	if s.Combine {
		tail += "/combine"
	}
	if s.Adaptive {
		tail += "/adaptive"
		if s.AdaptiveLinearizable {
			tail += "+lin"
		}
		if s.AdaptiveLinearBelow > 0 {
			tail += "+wait"
		}
	}
	return fmt.Sprintf("%s%d/g=%d/W=%v/F=%.0f%%%s", s.Net, s.Width, s.Workers, s.Delay, 100*s.Frac, tail)
}

// Run compiles the network (diffracting prisms for the tree, as in the
// paper) and executes the stress benchmark.
func (s RealSpec) Run() (*shm.StressResult, error) {
	g, err := s.Net.Build(s.Width)
	if err != nil {
		return nil, err
	}
	n, err := shm.Compile(g, shm.Options{
		Kind:     shm.KindMCS,
		Diffract: s.Net == DTree,
	})
	if err != nil {
		return nil, err
	}
	cfg := shm.StressConfig{
		Net:           n,
		Workers:       s.Workers,
		Ops:           s.Ops,
		DelayedFrac:   s.Frac,
		Delay:         s.Delay,
		RandomDelay:   s.RandomDelay,
		BurnDelay:     s.BurnDelay,
		Seed:          s.Seed,
		Combine:       s.Combine,
		CombineWidth:  s.CombineWidth,
		CombineWindow: s.CombineWindow,
	}
	if s.Adaptive {
		if s.Combine {
			return nil, fmt.Errorf("workload: Adaptive and Combine are mutually exclusive")
		}
		front, err := adaptive.New(n, adaptive.Options{
			Linearizable:  s.AdaptiveLinearizable,
			LinearBelow:   s.AdaptiveLinearBelow,
			CombineWidth:  s.CombineWidth,
			CombineWindow: s.CombineWindow,
			EffWait:       cfg.EffWait(),
		})
		if err != nil {
			return nil, err
		}
		cfg.Front = front
	}
	return shm.Stress(cfg)
}

// RealGridWorkers is the goroutine-count axis of the real grid.
var RealGridWorkers = []int{4, 16, 64}

// RealGridDelays is the W axis of the real grid.
var RealGridDelays = []time.Duration{0, 50 * time.Microsecond, 500 * time.Microsecond}

// RealGrid returns the wall-clock benchmark grid at the given delayed
// fraction.
func RealGrid(frac float64, ops int, seed int64) []RealSpec {
	var specs []RealSpec
	for _, net := range []NetKind{Bitonic, DTree} {
		for _, d := range RealGridDelays {
			for _, workers := range RealGridWorkers {
				specs = append(specs, RealSpec{
					Net:     net,
					Width:   PaperWidth,
					Workers: workers,
					Ops:     ops,
					Frac:    frac,
					Delay:   d,
					Seed:    seed,
				})
			}
		}
	}
	return specs
}
