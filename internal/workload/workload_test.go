package workload

import (
	"strings"
	"testing"
	"time"
)

func TestNetKindBuild(t *testing.T) {
	for _, k := range []NetKind{Bitonic, DTree, Periodic} {
		g, err := k.Build(8)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if g.OutWidth() != 8 {
			t.Errorf("%s: OutWidth = %d", k, g.OutWidth())
		}
	}
	if _, err := NetKind("nonsense").Build(8); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Net: Bitonic, Width: 32, Procs: 64, Wait: 10000, Frac: 0.25}
	if got := s.String(); got != "bitonic32/n=64/W=10000/F=25%" {
		t.Errorf("String = %q", got)
	}
	s.RandomWait = true
	if !strings.HasSuffix(s.String(), "/random") {
		t.Errorf("String = %q, want /random suffix", s.String())
	}
}

func TestFigureGridShape(t *testing.T) {
	specs := FigureGrid(0.25, 1)
	if len(specs) != 2*len(PaperWaits)*len(PaperProcs) {
		t.Fatalf("grid size %d", len(specs))
	}
	for _, s := range specs {
		if s.Frac != 0.25 || s.Width != PaperWidth || s.Ops != PaperOps {
			t.Errorf("bad spec %+v", s)
		}
	}
}

func TestControlGridLinearizable(t *testing.T) {
	for _, spec := range ControlGrid(3) {
		spec.Ops = 300 // keep the test fast; full runs in cmd/figures
		spec.Procs = 16
		res, err := spec.Run()
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if res.Report.Ratio() > 0.01 {
			t.Errorf("%s: non-linearizability ratio %.4f in a control run", spec, res.Report.Ratio())
		}
	}
}

func TestSpecConfigDiffractsOnlyTree(t *testing.T) {
	cfg, err := Spec{Net: DTree, Width: 8, Procs: 4, Ops: 10}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Diffract {
		t.Error("tree spec should diffract")
	}
	cfg, err = Spec{Net: Bitonic, Width: 8, Procs: 4, Ops: 10}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Diffract {
		t.Error("bitonic spec should not diffract")
	}
}

func TestRunSeeds(t *testing.T) {
	spec := Spec{Net: DTree, Width: 8, Procs: 8, Ops: 200, Frac: 0.5, Wait: 1000, Seed: 1}
	agg, err := spec.RunSeeds(3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Seeds != 3 || agg.TotalOps != 600 {
		t.Fatalf("agg = %+v", agg)
	}
	if agg.RatioMean < 0 || agg.RatioMean > 1 || agg.RatioStddev < 0 {
		t.Errorf("ratio stats out of range: %+v", agg)
	}
	if agg.TogMean <= 0 || agg.AvgC2C1Mean <= 0 {
		t.Errorf("means not populated: %+v", agg)
	}
	if _, err := spec.RunSeeds(0); err == nil {
		t.Error("0 seeds accepted")
	}
}

func TestRealSpec(t *testing.T) {
	spec := RealSpec{Net: DTree, Width: 8, Workers: 8, Ops: 500, Frac: 0.25, Delay: 10 * time.Microsecond, Seed: 1}
	if got := spec.String(); got != "dtree8/g=8/W=10µs/F=25%" {
		t.Errorf("String = %q", got)
	}
	res, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) != 500 {
		t.Fatalf("ops = %d", len(res.Ops))
	}
	spec.Net = "bogus"
	if _, err := spec.Run(); err == nil {
		t.Error("bogus net accepted")
	}
}

func TestRealGridShape(t *testing.T) {
	specs := RealGrid(0.25, 100, 1)
	if len(specs) != 2*len(RealGridDelays)*len(RealGridWorkers) {
		t.Fatalf("grid size %d", len(specs))
	}
	for _, s := range specs {
		if s.Frac != 0.25 || s.Ops != 100 {
			t.Errorf("bad spec %+v", s)
		}
	}
}
