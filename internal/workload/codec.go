package workload

import (
	"encoding/json"
	"fmt"
)

// Validate checks that the spec describes a runnable workload: a known
// network family, a power-of-two-compatible width (delegated to the
// constructor), and sane counts. It builds the network once to surface
// width errors eagerly.
func (s Spec) Validate() error {
	switch s.Net {
	case Bitonic, DTree, Periodic:
	default:
		return fmt.Errorf("workload: unknown network kind %q", s.Net)
	}
	if _, err := s.Net.Build(s.Width); err != nil {
		return err
	}
	if s.Procs < 1 {
		return fmt.Errorf("workload: %d processors", s.Procs)
	}
	if s.Ops < 1 {
		return fmt.Errorf("workload: %d operations", s.Ops)
	}
	if s.Frac < 0 || s.Frac > 1 {
		return fmt.Errorf("workload: delayed fraction %f outside [0, 1]", s.Frac)
	}
	if s.Wait < 0 {
		return fmt.Errorf("workload: negative wait %d", s.Wait)
	}
	return nil
}

// EncodeSpec renders the spec as one-line JSON, the replay token printed by
// the conformance harness when a cross-engine run fails.
func EncodeSpec(s Spec) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s)
}

// DecodeSpec parses a spec serialized by EncodeSpec and validates it, so a
// failure reproducer survives the JSON round trip exactly.
func DecodeSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("workload: decode spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
