// Package workload defines the benchmark parameter grids of Section 5 of
// the paper and builds the corresponding networks and simulator
// configurations, so that the figure harness, the benchmarks, and the tests
// all run exactly the same experiments.
package workload

import (
	"fmt"
	"math"

	"countnet/internal/bitonic"
	"countnet/internal/dtree"
	"countnet/internal/periodic"
	"countnet/internal/sim"
	"countnet/internal/topo"
)

// NetKind names a network family.
type NetKind string

// Network families used in the paper's evaluation (periodic is an
// extension; the paper evaluates bitonic and dtree).
const (
	Bitonic  NetKind = "bitonic"
	DTree    NetKind = "dtree"
	Periodic NetKind = "periodic"
)

// Build constructs the network of the given kind and width.
func (k NetKind) Build(width int) (*topo.Graph, error) {
	switch k {
	case Bitonic:
		return bitonic.New(width)
	case DTree:
		return dtree.New(width)
	case Periodic:
		return periodic.New(width)
	default:
		return nil, fmt.Errorf("workload: unknown network kind %q", k)
	}
}

// Paper's Section 5 parameters.
const (
	// PaperWidth is the width of both evaluated networks.
	PaperWidth = 32
	// PaperOps is the per-run operation count.
	PaperOps = 5000
)

// PaperProcs is the concurrency axis of Figures 5-7.
var PaperProcs = []int{4, 16, 64, 128, 256}

// PaperWaits is the W axis of Figures 5-7, in cycles.
var PaperWaits = []int64{100, 1000, 10000, 100000}

// PaperFracs is the delayed-processor fraction axis (Figure 5: 25%,
// Figure 6: 50%).
var PaperFracs = []float64{0.25, 0.50}

// Spec is one cell of the benchmark grid.
type Spec struct {
	Net        NetKind
	Width      int
	Procs      int
	Ops        int
	Frac       float64 // F: fraction of delayed processors
	Wait       int64   // W cycles
	RandomWait bool
	Seed       int64
}

// String names the spec compactly, e.g. "bitonic32/n=64/W=10000/F=25%".
func (s Spec) String() string {
	tail := ""
	if s.RandomWait {
		tail = "/random"
	}
	return fmt.Sprintf("%s%d/n=%d/W=%d/F=%.0f%%%s", s.Net, s.Width, s.Procs, s.Wait, 100*s.Frac, tail)
}

// Config builds the simulator configuration for the spec. The diffracting
// prism model is enabled exactly for the tree, as in the paper.
func (s Spec) Config() (sim.Config, error) {
	g, err := s.Net.Build(s.Width)
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{
		Net:         g,
		Procs:       s.Procs,
		Ops:         s.Ops,
		DelayedFrac: s.Frac,
		Wait:        s.Wait,
		RandomWait:  s.RandomWait,
		Diffract:    s.Net == DTree,
		Seed:        s.Seed,
	}, nil
}

// Run builds and executes the spec on the simulator.
func (s Spec) Run() (*sim.Result, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	return sim.Run(cfg)
}

// Aggregate is the multi-seed measurement of one spec: mean and standard
// deviation of the non-linearizability ratio and of the average c2/c1
// measure across independent seeds.
type Aggregate struct {
	Spec        Spec
	Seeds       int
	RatioMean   float64
	RatioStddev float64
	AvgC2C1Mean float64
	TogMean     float64
	Violations  int // total across seeds
	TotalOps    int
}

// RunSeeds runs the spec under `seeds` different seeds (spec.Seed,
// spec.Seed+1, ...) and aggregates; single-seed figures are point
// estimates, this gives their spread.
func (s Spec) RunSeeds(seeds int) (Aggregate, error) {
	if seeds < 1 {
		return Aggregate{}, fmt.Errorf("workload: %d seeds", seeds)
	}
	agg := Aggregate{Spec: s, Seeds: seeds}
	var ratios []float64
	for i := 0; i < seeds; i++ {
		spec := s
		spec.Seed = s.Seed + int64(i)
		res, err := spec.Run()
		if err != nil {
			return Aggregate{}, err
		}
		r := res.Report.Ratio()
		ratios = append(ratios, r)
		agg.RatioMean += r
		agg.AvgC2C1Mean += res.AvgRatio
		agg.TogMean += res.Tog
		agg.Violations += res.Report.NonLinearizable
		agg.TotalOps += res.Report.Total
	}
	n := float64(seeds)
	agg.RatioMean /= n
	agg.AvgC2C1Mean /= n
	agg.TogMean /= n
	var sq float64
	for _, r := range ratios {
		d := r - agg.RatioMean
		sq += d * d
	}
	agg.RatioStddev = math.Sqrt(sq / n)
	return agg, nil
}

// FigureGrid returns the specs for one of the paper's figures: frac 0.25
// reproduces Figure 5, 0.50 Figure 6 (same grid underlies the Figure 7
// table). Order: for each network, for each W, for each n.
func FigureGrid(frac float64, seed int64) []Spec {
	var specs []Spec
	for _, net := range []NetKind{Bitonic, DTree} {
		for _, w := range PaperWaits {
			for _, n := range PaperProcs {
				specs = append(specs, Spec{
					Net:   net,
					Width: PaperWidth,
					Procs: n,
					Ops:   PaperOps,
					Frac:  frac,
					Wait:  w,
					Seed:  seed,
				})
			}
		}
	}
	return specs
}

// ControlGrid returns the paper's control runs, all of which must be
// perfectly linearizable: F=0%, F=100%, W=0, and the random-wait variant.
func ControlGrid(seed int64) []Spec {
	var specs []Spec
	for _, net := range []NetKind{Bitonic, DTree} {
		specs = append(specs,
			Spec{Net: net, Width: PaperWidth, Procs: 64, Ops: PaperOps, Frac: 0, Wait: 10000, Seed: seed},
			Spec{Net: net, Width: PaperWidth, Procs: 64, Ops: PaperOps, Frac: 1, Wait: 10000, Seed: seed},
			Spec{Net: net, Width: PaperWidth, Procs: 64, Ops: PaperOps, Frac: 0.5, Wait: 0, Seed: seed},
			Spec{Net: net, Width: PaperWidth, Procs: 64, Ops: PaperOps, Frac: 0.5, Wait: 10000, RandomWait: true, Seed: seed},
		)
	}
	return specs
}
