package topo

import "testing"

func TestPadWidth2(t *testing.T) {
	g := width2(t)
	for _, length := range []int{0, 1, 5} {
		p, err := Pad(g, length)
		if err != nil {
			t.Fatalf("Pad(%d): %v", length, err)
		}
		if got, want := p.Depth(), g.Depth()+length; got != want {
			t.Errorf("Pad(%d).Depth = %d, want %d", length, got, want)
		}
		if !p.Uniform() {
			t.Errorf("Pad(%d) not uniform", length)
		}
		if got, want := p.NumBalancers(), g.NumBalancers()+length*g.InWidth(); got != want {
			t.Errorf("Pad(%d).NumBalancers = %d, want %d", length, got, want)
		}
		if err := VerifyCounting(p, 16, 20, 7); err != nil {
			t.Errorf("Pad(%d) is not a counting network: %v", length, err)
		}
	}
}

func TestPadNegative(t *testing.T) {
	g := width2(t)
	if _, err := Pad(g, -1); err == nil {
		t.Fatal("Pad(-1) succeeded")
	}
}

func TestPadPreservesSequentialValues(t *testing.T) {
	g := width2(t)
	p, err := Pad(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequential(p)
	for k := 0; k < 8; k++ {
		v, err := q.Traverse(k % p.InWidth())
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(k) {
			t.Errorf("token %d got %d", k, v)
		}
	}
}
