package topo

import (
	"strings"
	"testing"
)

func TestRenderWidth2(t *testing.T) {
	g := width2(t)
	out := Render(g)
	for _, want := range []string{"layer 1:", "x0,x1", "Y0,Y1", "counters: Y0..Y1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderChained(t *testing.T) {
	g := width2(t)
	c, err := Cascade(g, g)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(c)
	if !strings.Contains(out, "layer 2:") || !strings.Contains(out, "b0.0,b0.1") {
		t.Errorf("chained render:\n%s", out)
	}
}

func TestCertifySmall(t *testing.T) {
	g := width2(t)
	how, err := Certify(g, 1_000_000, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(how, "exhaustive") {
		t.Errorf("small network not certified exhaustively: %q", how)
	}
}

func TestCertifyFallsBackOnBudget(t *testing.T) {
	g := width2(t)
	how, err := Certify(g, 2, 10, 1) // budget too small for exhaustive
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(how, "randomized") {
		t.Errorf("budget exhaustion did not fall back: %q", how)
	}
}

func TestCertifyRejectsNonCounting(t *testing.T) {
	b := NewBuilder()
	in := b.Inputs(4)
	a0, a1 := b.Balancer2(in[0], in[1])
	c0, c1 := b.Balancer2(in[2], in[3])
	b.Terminate([]Out{a0, a1, c0, c1})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Certify(g, 1_000_000, 10, 1); err == nil {
		t.Error("non-counting network certified")
	}
}
