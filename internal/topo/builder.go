package topo

import (
	"errors"
	"fmt"
)

// Out is an open wire end produced by the Builder: either a network input
// that no balancer consumes yet, or an unconsumed balancer output port.
// Every Out must be consumed exactly once, by a balancer or by Terminate.
type Out struct {
	node NodeID // InvalidNode for a network input
	port int    // output port, or network input index
	b    *Builder
}

// Builder incrementally constructs a Graph. Usage:
//
//	b := topo.NewBuilder()
//	in := b.Inputs(2)
//	o0, o1 := b.Balancer2(in[0], in[1])
//	b.Terminate([]topo.Out{o0, o1})
//	g, err := b.Build()
//
// Errors (double consumption, foreign Outs, dangling wires) are latched and
// reported by Build, so construction code can stay assignment-shaped.
type Builder struct {
	nodes    []node
	inputs   []PortRef
	counters []NodeID
	consumed map[Src]bool
	err      error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{consumed: make(map[Src]bool)}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Inputs declares v ordered network inputs and returns their wire ends.
// It may be called multiple times; indices continue from previous calls.
func (b *Builder) Inputs(v int) []Out {
	if b.err != nil {
		return make([]Out, v)
	}
	outs := make([]Out, v)
	for i := range outs {
		idx := len(b.inputs)
		b.inputs = append(b.inputs, PortRef{Node: InvalidNode}) // patched on consumption
		outs[i] = Out{node: InvalidNode, port: idx, b: b}
	}
	return outs
}

// consume marks an Out as used and returns its Src, recording the
// destination so network inputs learn their entry port.
func (b *Builder) consume(o Out, dst PortRef) Src {
	if b.err != nil {
		return Src{Node: InvalidNode}
	}
	if o.b == nil {
		b.fail("topo: zero Out consumed at node %d port %d", dst.Node, dst.Port)
		return Src{Node: InvalidNode}
	}
	if o.b != b {
		b.fail("topo: Out from a different Builder consumed at node %d", dst.Node)
		return Src{Node: InvalidNode}
	}
	s := Src{Node: o.node, Port: o.port}
	if b.consumed[s] {
		b.fail("topo: wire %+v consumed twice", s)
		return s
	}
	b.consumed[s] = true
	if s.IsInput() {
		b.inputs[s.Port] = dst
	} else {
		b.nodes[s.Node].out[s.Port] = dst
	}
	return s
}

// BalancerN creates a balancing node consuming the given wire ends as its
// ordered inputs, with fanOut ordered outputs, and returns the new open
// output wires.
func (b *Builder) BalancerN(ins []Out, fanOut int) []Out {
	if b.err != nil {
		return make([]Out, max(fanOut, 0))
	}
	if len(ins) < 1 {
		b.fail("topo: balancer with no inputs")
		return nil
	}
	if fanOut < 1 {
		b.fail("topo: balancer with fanOut %d", fanOut)
		return nil
	}
	id := NodeID(len(b.nodes))
	n := node{
		kind:   KindBalancer,
		fanIn:  len(ins),
		fanOut: fanOut,
		in:     make([]Src, len(ins)),
		out:    make([]PortRef, fanOut),
	}
	for p := range n.out {
		n.out[p] = PortRef{Node: InvalidNode}
	}
	b.nodes = append(b.nodes, n)
	for p, o := range ins {
		b.nodes[id].in[p] = b.consume(o, PortRef{Node: id, Port: p})
	}
	outs := make([]Out, fanOut)
	for p := range outs {
		outs[p] = Out{node: id, port: p, b: b}
	}
	return outs
}

// Balancer2 creates the ubiquitous 2-input 2-output balancer.
func (b *Builder) Balancer2(in0, in1 Out) (Out, Out) {
	outs := b.BalancerN([]Out{in0, in1}, 2)
	if len(outs) != 2 {
		return Out{}, Out{}
	}
	return outs[0], outs[1]
}

// Balancer12 creates a 1-input 2-output balancer (a counting-tree node).
func (b *Builder) Balancer12(in Out) (Out, Out) {
	outs := b.BalancerN([]Out{in}, 2)
	if len(outs) != 2 {
		return Out{}, Out{}
	}
	return outs[0], outs[1]
}

// Balancer11 creates a 1-input 1-output pass-through balancer, the padding
// node of Corollary 3.12.
func (b *Builder) Balancer11(in Out) Out {
	outs := b.BalancerN([]Out{in}, 1)
	if len(outs) != 1 {
		return Out{}
	}
	return outs[0]
}

// Terminate attaches an atomic counter to each wire end, in order: outs[i]
// becomes network output Y_i. It may be called once.
func (b *Builder) Terminate(outs []Out) {
	if b.err != nil {
		return
	}
	if len(b.counters) != 0 {
		b.fail("topo: Terminate called twice")
		return
	}
	if len(outs) == 0 {
		b.fail("topo: Terminate with no outputs")
		return
	}
	for i, o := range outs {
		id := NodeID(len(b.nodes))
		b.nodes = append(b.nodes, node{
			kind:  KindCounter,
			fanIn: 1,
			in:    make([]Src, 1),
			index: i,
		})
		b.nodes[id].in[0] = b.consume(o, PortRef{Node: id, Port: 0})
		b.counters = append(b.counters, id)
	}
}

// Build validates the network and returns the immutable Graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.inputs) == 0 {
		return nil, errors.New("topo: network has no inputs")
	}
	if len(b.counters) == 0 {
		return nil, errors.New("topo: network has no output counters (missing Terminate)")
	}
	for i, p := range b.inputs {
		if p.Node == InvalidNode {
			return nil, fmt.Errorf("topo: network input %d is not consumed by any node", i)
		}
	}
	for id := range b.nodes {
		n := &b.nodes[id]
		if n.kind != KindBalancer {
			continue
		}
		for p, dst := range n.out {
			if dst.Node == InvalidNode {
				return nil, fmt.Errorf("topo: balancer %d output %d is dangling", id, p)
			}
		}
	}
	g := &Graph{
		nodes:    b.nodes,
		inputs:   b.inputs,
		counters: b.counters,
	}
	if err := g.computeLayers(); err != nil {
		return nil, err
	}
	// The Graph now owns the node slices; latch the Builder so further use
	// cannot mutate the published network.
	b.err = errors.New("topo: Builder already built")
	return g, nil
}
