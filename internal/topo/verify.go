package topo

import (
	"fmt"
	"math/rand"
)

// StepPropertyHolds reports whether the tallies satisfy the step property:
// 0 <= counts[i] - counts[j] <= 1 for all i < j.
func StepPropertyHolds(counts []int64) bool {
	for i := 1; i < len(counts); i++ {
		d := counts[i-1] - counts[i]
		if d < 0 || d > 1 {
			return false
		}
	}
	return true
}

// StepCounts returns the unique step-property tallies a_0..a_{w-1} summing
// to m: a_i = ceil((m-i)/w) for m >= 0.
func StepCounts(m int64, w int) []int64 {
	out := make([]int64, w)
	for i := range out {
		q := m - int64(i)
		if q <= 0 {
			continue
		}
		out[i] = (q + int64(w) - 1) / int64(w)
	}
	return out
}

// CheckQuiescentStep runs an execution injecting perInput[i] tokens at each
// network input, interleaved one transition at a time under rng's control,
// runs it to quiescence, and verifies the step property on the outputs.
// A counting network must pass for every interleaving (Section 2).
func CheckQuiescentStep(g *Graph, perInput []int64, rng *rand.Rand) error {
	if len(perInput) != g.InWidth() {
		return fmt.Errorf("topo: %d token counts for %d inputs", len(perInput), g.InWidth())
	}
	s := NewStepper(g)
	var total int64
	for in, c := range perInput {
		for k := int64(0); k < c; k++ {
			s.Inject(in)
			total++
		}
	}
	live := make([]int, 0, total)
	for tok := 0; tok < int(total); tok++ {
		live = append(live, tok)
	}
	for len(live) > 0 {
		i := rng.Intn(len(live))
		done, err := s.Step(live[i])
		if err != nil {
			return err
		}
		if done {
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	counts := s.OutputCounts()
	if !StepPropertyHolds(counts) {
		return fmt.Errorf("topo: quiescent step property violated: outputs %v for %d tokens", counts, total)
	}
	want := StepCounts(total, g.OutWidth())
	for i := range counts {
		if counts[i] != want[i] {
			return fmt.Errorf("topo: output %d saw %d tokens, want %d (of %d total)", i, counts[i], want[i], total)
		}
	}
	return nil
}

// VerifyCounting performs `trials` randomized quiescent step-property checks
// with random input distributions of up to maxTokens tokens each, plus one
// deterministic sequential check. It returns the first violation found.
// Passing is strong randomized evidence that g is a counting network.
func VerifyCounting(g *Graph, maxTokens int, trials int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	if err := verifySequential(g, min(maxTokens, 4*g.OutWidth())); err != nil {
		return err
	}
	for t := 0; t < trials; t++ {
		per := make([]int64, g.InWidth())
		n := 1 + rng.Intn(maxTokens)
		for k := 0; k < n; k++ {
			per[rng.Intn(len(per))]++
		}
		if err := CheckQuiescentStep(g, per, rng); err != nil {
			return fmt.Errorf("trial %d: %w", t, err)
		}
	}
	return nil
}

// verifySequential checks that m tokens traversing one after another receive
// exactly the values 0..m-1 in order, regardless of which inputs they use.
func verifySequential(g *Graph, m int) error {
	q := NewSequential(g)
	for k := 0; k < m; k++ {
		v, err := q.Traverse(k % g.InWidth())
		if err != nil {
			return err
		}
		if v != int64(k) {
			return fmt.Errorf("topo: sequential token %d received value %d", k, v)
		}
	}
	return nil
}
