package topo

import "fmt"

// cloneBalancers rebuilds g's balancers (not its counters) inside b, with
// network input i of g fed by feeds[i]. It returns the wires that fed g's
// counters, in output order.
func cloneBalancers(b *Builder, g *Graph, feeds []Out) ([]Out, error) {
	if len(feeds) != g.InWidth() {
		return nil, fmt.Errorf("topo: %d feeds for %d inputs", len(feeds), g.InWidth())
	}
	wires := make(map[Src]Out, len(g.nodes)*2)
	for i, f := range feeds {
		wires[Src{Node: InvalidNode, Port: i}] = f
	}
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		n := &g.nodes[id]
		if n.kind != KindBalancer {
			continue
		}
		ins := make([]Out, n.fanIn)
		for p, s := range n.in {
			o, ok := wires[s]
			if !ok {
				return nil, fmt.Errorf("topo: clone: unmapped wire %+v into node %d", s, id)
			}
			ins[p] = o
		}
		outs := b.BalancerN(ins, n.fanOut)
		for p, o := range outs {
			wires[Src{Node: id, Port: p}] = o
		}
	}
	term := make([]Out, g.OutWidth())
	for i, c := range g.counters {
		s := g.nodes[c].in[0]
		o, ok := wires[s]
		if !ok {
			return nil, fmt.Errorf("topo: clone: unmapped wire %+v into counter %d", s, i)
		}
		term[i] = o
	}
	return term, nil
}

// Cascade composes two balancing networks in series: output Y_i of `first`
// feeds network input i of `second`. The cascade of two counting networks
// is a counting network (the first's quiescent outputs satisfy the step
// property, which the second preserves), and the cascade of uniform
// networks is uniform when the first's depth is well-defined.
func Cascade(first, second *Graph) (*Graph, error) {
	if first == nil || second == nil {
		return nil, fmt.Errorf("topo: cascade of nil graph")
	}
	if first.OutWidth() != second.InWidth() {
		return nil, fmt.Errorf("topo: cascade width mismatch: %d outputs into %d inputs",
			first.OutWidth(), second.InWidth())
	}
	b := NewBuilder()
	ins := b.Inputs(first.InWidth())
	mid, err := cloneBalancers(b, first, ins)
	if err != nil {
		return nil, err
	}
	out, err := cloneBalancers(b, second, mid)
	if err != nil {
		return nil, err
	}
	b.Terminate(out)
	return b.Build()
}
