package topo

import "fmt"

// EventFunc observes one instantaneous transition event <T, D>: token tok
// passed through node id. Counters fire it too, with the assigned value
// (value is -1 for balancer transitions).
type EventFunc func(tok int, id NodeID, value int64)

// Stepper executes a balancing network one instantaneous node transition at
// a time, in any interleaving the caller chooses. It is the execution-model
// core shared by the sequential executor, the timed schedule engine, and the
// verification helpers: an execution E = e1, e2, ... of events <T, D> is
// exactly a sequence of Step calls.
//
// Balancers route tokens to their ordered outputs round-robin (the toggle
// implementation), which preserves the step property on each node's outputs.
// Counters assign the a-th exiting token on output Y_i the value i + w*a.
//
// Stepper is not safe for concurrent use; the shm package provides the
// goroutine-safe runtime.
type Stepper struct {
	g       *Graph
	toggle  []int32
	counts  []int64
	pos     []PortRef // per token: input port the token waits at
	val     []int64   // per token: assigned value, -1 while in flight
	visited [][]NodeID
	track   bool
	onEvent EventFunc
}

// NewStepper returns a Stepper for g with all balancer toggles in their
// initial state (first token exits on output 0).
func NewStepper(g *Graph) *Stepper {
	return &Stepper{
		g:      g,
		toggle: make([]int32, len(g.nodes)),
		counts: make([]int64, len(g.nodes)),
	}
}

// Graph returns the network being executed.
func (s *Stepper) Graph() *Graph { return s.g }

// SetObserver installs fn to be called on every transition event.
func (s *Stepper) SetObserver(fn EventFunc) { s.onEvent = fn }

// TrackPaths records, for every token, the sequence of nodes it transits.
// Must be called before the first Inject.
func (s *Stepper) TrackPaths() { s.track = true }

// NumTokens returns how many tokens have been injected.
func (s *Stepper) NumTokens() int { return len(s.pos) }

// Inject admits a new token at network input port `input` and returns the
// token id. The token waits at the input node; it transitions on Step.
func (s *Stepper) Inject(input int) int {
	tok := len(s.pos)
	s.pos = append(s.pos, s.g.inputs[input])
	s.val = append(s.val, -1)
	if s.track {
		s.visited = append(s.visited, nil)
	}
	return tok
}

// Done reports whether token tok has exited through a counter.
func (s *Stepper) Done(tok int) bool { return s.val[tok] >= 0 }

// Value returns the value assigned to token tok and whether it has exited.
func (s *Stepper) Value(tok int) (int64, bool) {
	v := s.val[tok]
	return v, v >= 0
}

// At returns the input port token tok currently waits at. Undefined once
// the token is done.
func (s *Stepper) At(tok int) PortRef { return s.pos[tok] }

// Path returns the nodes token tok has transited, if TrackPaths was enabled.
func (s *Stepper) Path(tok int) []NodeID {
	if !s.track {
		return nil
	}
	return s.visited[tok]
}

// CounterCount returns the number of tokens that have exited output Y_i.
func (s *Stepper) CounterCount(i int) int64 { return s.counts[s.g.counters[i]] }

// OutputCounts returns the per-output exit tallies Y_0..Y_{w-1}.
func (s *Stepper) OutputCounts() []int64 {
	out := make([]int64, s.g.OutWidth())
	for i := range out {
		out[i] = s.CounterCount(i)
	}
	return out
}

// BalancerOutCount returns how many tokens have left balancer id in total.
func (s *Stepper) BalancerOutCount(id NodeID) int64 { return s.counts[id] }

// Step performs the instantaneous transition of the node token tok waits at.
// It returns done=true when the transition was through a counter, in which
// case the token has received its value. Stepping a finished token is an
// error.
func (s *Stepper) Step(tok int) (done bool, err error) {
	if tok < 0 || tok >= len(s.pos) {
		return false, fmt.Errorf("topo: step of unknown token %d", tok)
	}
	if s.val[tok] >= 0 {
		return false, fmt.Errorf("topo: step of finished token %d", tok)
	}
	p := s.pos[tok]
	id := p.Node
	n := &s.g.nodes[id]
	if s.track {
		s.visited[tok] = append(s.visited[tok], id)
	}
	switch n.kind {
	case KindBalancer:
		t := s.toggle[id]
		s.toggle[id] = (t + 1) % int32(n.fanOut)
		s.counts[id]++
		s.pos[tok] = n.out[t]
		if s.onEvent != nil {
			s.onEvent(tok, id, -1)
		}
		return false, nil
	case KindCounter:
		a := s.counts[id]
		s.counts[id] = a + 1
		v := int64(n.index) + int64(s.g.OutWidth())*a
		s.val[tok] = v
		if s.onEvent != nil {
			s.onEvent(tok, id, v)
		}
		return true, nil
	default:
		return false, fmt.Errorf("topo: token %d at node %d of unknown kind %d", tok, id, n.kind)
	}
}

// Run steps token tok to completion and returns its value. It models a
// token traversing the network with no interleaving from other tokens.
func (s *Stepper) Run(tok int) (int64, error) {
	for {
		done, err := s.Step(tok)
		if err != nil {
			return 0, err
		}
		if done {
			v, _ := s.Value(tok)
			return v, nil
		}
	}
}

// Quiescent reports whether every injected token has exited; in a quiescent
// state the step property must hold on the output counts (Section 2).
func (s *Stepper) Quiescent() bool {
	for _, v := range s.val {
		if v < 0 {
			return false
		}
	}
	return true
}

// Sequential is a convenience wrapper running whole-token traversals, which
// models tokens traversing the network one after another.
type Sequential struct {
	s *Stepper
}

// NewSequential returns a sequential executor over a fresh Stepper for g.
func NewSequential(g *Graph) *Sequential {
	return &Sequential{s: NewStepper(g)}
}

// Traverse injects a token at input and runs it to completion.
func (q *Sequential) Traverse(input int) (int64, error) {
	return q.s.Run(q.s.Inject(input))
}

// Stepper exposes the underlying stepper for inspection.
func (q *Sequential) Stepper() *Stepper { return q.s }
