package topo

import (
	"encoding/json"
	"fmt"
)

// wireJSON is one consumed wire end in the serialized form: either a
// network input (Input >= 0) or output port Port of balancer Node.
type wireJSON struct {
	Input int   `json:"input"`          // network input index, or -1
	Node  int32 `json:"node,omitempty"` // balancer index into nodes
	Port  int   `json:"port,omitempty"`
}

// balancerJSON is one balancer: its ordered input wire sources and fan-out.
type balancerJSON struct {
	In     []wireJSON `json:"in"`
	FanOut int        `json:"fanOut"`
}

// graphJSON is the serialized network: balancers in topological (creation)
// order plus the wires feeding each output counter, in output order.
type graphJSON struct {
	Inputs    int            `json:"inputs"`
	Balancers []balancerJSON `json:"balancers"`
	Counters  []wireJSON     `json:"counters"`
}

// Encode serializes g to JSON. The encoding records, for every balancer
// and counter, where each of its inputs comes from; Decode rebuilds the
// network through a Builder, so a decoded graph is re-validated from
// scratch.
func Encode(g *Graph) ([]byte, error) {
	if g == nil {
		return nil, fmt.Errorf("topo: encode nil graph")
	}
	order, err := g.topoOrder()
	if err != nil {
		return nil, err
	}
	// Balancer id -> position in serialized order.
	pos := make(map[NodeID]int32, len(order))
	out := graphJSON{Inputs: g.InWidth()}
	for _, id := range order {
		n := &g.nodes[id]
		if n.kind != KindBalancer {
			continue
		}
		pos[id] = int32(len(out.Balancers))
		bj := balancerJSON{FanOut: n.fanOut, In: make([]wireJSON, n.fanIn)}
		for p, src := range n.in {
			bj.In[p], err = encodeSrc(src, pos)
			if err != nil {
				return nil, err
			}
		}
		out.Balancers = append(out.Balancers, bj)
	}
	out.Counters = make([]wireJSON, g.OutWidth())
	for i, c := range g.counters {
		out.Counters[i], err = encodeSrc(g.nodes[c].in[0], pos)
		if err != nil {
			return nil, err
		}
	}
	return json.MarshalIndent(out, "", " ")
}

func encodeSrc(s Src, pos map[NodeID]int32) (wireJSON, error) {
	if s.IsInput() {
		return wireJSON{Input: s.Port}, nil
	}
	p, ok := pos[s.Node]
	if !ok {
		return wireJSON{}, fmt.Errorf("topo: encode: source node %d not yet serialized", s.Node)
	}
	return wireJSON{Input: -1, Node: p, Port: s.Port}, nil
}

// Decode rebuilds a Graph from Encode's output, re-running all Builder
// validation. Untrusted input yields an error, never a malformed Graph.
func Decode(data []byte) (*Graph, error) {
	var gj graphJSON
	if err := json.Unmarshal(data, &gj); err != nil {
		return nil, fmt.Errorf("topo: decode: %w", err)
	}
	if gj.Inputs < 1 {
		return nil, fmt.Errorf("topo: decode: %d inputs", gj.Inputs)
	}
	b := NewBuilder()
	ins := b.Inputs(gj.Inputs)
	outs := make([][]Out, len(gj.Balancers))
	resolve := func(wj wireJSON) (Out, error) {
		if wj.Input >= 0 {
			if wj.Input >= len(ins) {
				return Out{}, fmt.Errorf("topo: decode: input %d out of range", wj.Input)
			}
			return ins[wj.Input], nil
		}
		if wj.Node < 0 || int(wj.Node) >= len(outs) || outs[wj.Node] == nil {
			return Out{}, fmt.Errorf("topo: decode: node %d not yet defined (non-topological order?)", wj.Node)
		}
		if wj.Port < 0 || wj.Port >= len(outs[wj.Node]) {
			return Out{}, fmt.Errorf("topo: decode: port %d out of range for node %d", wj.Port, wj.Node)
		}
		return outs[wj.Node][wj.Port], nil
	}
	for i, bj := range gj.Balancers {
		insB := make([]Out, len(bj.In))
		for p, wj := range bj.In {
			o, err := resolve(wj)
			if err != nil {
				return nil, err
			}
			insB[p] = o
		}
		outs[i] = b.BalancerN(insB, bj.FanOut)
	}
	term := make([]Out, len(gj.Counters))
	for i, wj := range gj.Counters {
		o, err := resolve(wj)
		if err != nil {
			return nil, err
		}
		term[i] = o
	}
	b.Terminate(term)
	return b.Build()
}
