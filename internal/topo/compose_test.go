package topo

import "testing"

func TestCascadeWidth2(t *testing.T) {
	a := width2(t)
	b := width2(t)
	g, err := Cascade(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Depth() != 2 {
		t.Errorf("depth = %d, want 2", g.Depth())
	}
	if !g.Uniform() {
		t.Error("cascade of uniform networks not uniform")
	}
	if g.NumBalancers() != 2 {
		t.Errorf("balancers = %d", g.NumBalancers())
	}
	if err := VerifyCounting(g, 12, 20, 3); err != nil {
		t.Error(err)
	}
	if err := ExhaustiveCheck(g, []int64{3, 2}, 1_000_000); err != nil {
		t.Error(err)
	}
}

func TestCascadeSelfComposition(t *testing.T) {
	// A network cascaded with itself (as the periodic construction does
	// with blocks) must still count.
	a := width2(t)
	g, err := Cascade(a, a)
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequential(g)
	for k := 0; k < 6; k++ {
		v, err := q.Traverse(k % 2)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(k) {
			t.Errorf("token %d got %d", k, v)
		}
	}
}

func TestCascadeMismatch(t *testing.T) {
	a := width2(t)
	b := NewBuilder()
	in := b.Inputs(1)
	o0, o1 := b.Balancer12(in[0])
	b.Terminate([]Out{o0, o1})
	oneIn, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Cascade(a, oneIn); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := Cascade(nil, a); err == nil {
		t.Error("nil graph accepted")
	}
	// 2-wide into 2-wide-single-input is a mismatch the other way too.
	if _, err := Cascade(oneIn, a); err != nil {
		t.Errorf("2-output into 2-input rejected: %v", err)
	}
}
