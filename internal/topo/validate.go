package topo

import "fmt"

// computeLayers assigns 1-based layers by longest distance from the network
// inputs, records per-layer node lists, the network depth, and whether the
// network is uniform in the sense of Definition 2.1: every node lies on an
// input-to-output path (guaranteed by the Builder) and all such paths have
// equal length, which holds exactly when every node's predecessors share a
// single layer and all counters land on the same layer.
func (g *Graph) computeLayers() error {
	uniform := true
	order, err := g.topoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		n := &g.nodes[id]
		lo, hi := -1, -1
		for _, s := range n.in {
			var l int
			if s.IsInput() {
				l = 0
			} else {
				l = g.nodes[s.Node].layer
			}
			if lo == -1 || l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
		if lo != hi {
			uniform = false
		}
		n.layer = hi + 1
	}
	counterLayer := -1
	for _, c := range g.counters {
		l := g.nodes[c].layer
		if counterLayer == -1 {
			counterLayer = l
		} else if l != counterLayer {
			uniform = false
			if l > counterLayer {
				counterLayer = l
			}
		}
	}
	g.depth = counterLayer - 1
	g.uniform = uniform
	g.layers = make([][]NodeID, counterLayer)
	for id := range g.nodes {
		l := g.nodes[id].layer
		if l >= 1 && l <= counterLayer {
			g.layers[l-1] = append(g.layers[l-1], NodeID(id))
		}
	}
	return nil
}

// topoOrder returns the node ids in a topological order. The Builder can
// only produce DAGs, but the check guards hand-constructed graphs and future
// transforms.
func (g *Graph) topoOrder() ([]NodeID, error) {
	indeg := make([]int, len(g.nodes))
	for id := range g.nodes {
		for _, s := range g.nodes[id].in {
			if !s.IsInput() {
				indeg[id]++
			}
		}
	}
	queue := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		if indeg[id] == 0 {
			queue = append(queue, NodeID(id))
		}
	}
	order := make([]NodeID, 0, len(g.nodes))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		n := &g.nodes[id]
		if n.kind != KindBalancer {
			continue
		}
		for _, dst := range n.out {
			indeg[dst.Node]--
			if indeg[dst.Node] == 0 {
				queue = append(queue, dst.Node)
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("topo: network contains a cycle (%d of %d nodes ordered)", len(order), len(g.nodes))
	}
	return order, nil
}
