package topo

import (
	"errors"
	"testing"
)

func TestExhaustiveWidth2(t *testing.T) {
	g := width2(t)
	for m := int64(1); m <= 6; m++ {
		if err := ExhaustiveCheck(g, []int64{m, m / 2}, 1_000_000); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}

func TestExhaustiveRejectsNonCountingNetwork(t *testing.T) {
	// Two independent balancers feeding four counters: a balancing network
	// that is NOT a counting network (output 2 can exceed output 1).
	b := NewBuilder()
	in := b.Inputs(4)
	a0, a1 := b.Balancer2(in[0], in[1])
	c0, c1 := b.Balancer2(in[2], in[3])
	b.Terminate([]Out{a0, a1, c0, c1})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// All tokens into the second balancer: outputs (0,0,1,1) breaks the
	// step property.
	if err := ExhaustiveCheck(g, []int64{0, 0, 2, 0}, 1_000_000); err == nil {
		t.Fatal("non-counting network passed the exhaustive check")
	}
}

func TestExhaustiveStateBudget(t *testing.T) {
	g := width2(t)
	err := ExhaustiveCheck(g, []int64{5, 5}, 3)
	if !errors.Is(err, ErrStateSpace) {
		t.Fatalf("err = %v, want ErrStateSpace", err)
	}
}

func TestExhaustiveValidation(t *testing.T) {
	g := width2(t)
	if err := ExhaustiveCheck(g, []int64{1}, 100); err == nil {
		t.Error("wrong perInput length accepted")
	}
	if err := ExhaustiveCheck(g, []int64{-1, 0}, 100); err == nil {
		t.Error("negative token count accepted")
	}
	if err := ExhaustiveCheck(g, []int64{0, 0}, 100); err != nil {
		t.Errorf("zero tokens: %v", err)
	}
}
