// Package topo models balancing networks as immutable directed acyclic
// graphs of balancers and output counters, in the style of Aspnes, Herlihy,
// and Shavit ("Counting Networks and Multi-Processor Coordination") and of
// the multi-input/multi-output balancing nodes of Aharonson and Attiya used
// by Lynch, Shavit, Shvartsman, and Touitou ("Counting Networks are
// Practically Linearizable", PODC 1996).
//
// A Graph has v ordered network inputs, a set of balancing nodes, and w
// ordered output counters. Tokens enter at an input, are routed through
// balancers (each of which preserves the step property on its ordered
// outputs), and finally reach an atomic counter: the a-th token to exit on
// output Y_i is assigned the value i + w*a.
//
// Graphs are built with a Builder, which makes ill-formed networks
// unrepresentable: a balancer's inputs are fixed at creation from existing
// outputs, so the result is acyclic and fully wired by construction.
//
//countnet:deterministic
package topo

import "fmt"

// NodeID identifies a node (balancer or counter) within a Graph.
type NodeID int32

// InvalidNode is the zero-like sentinel for "no node".
const InvalidNode NodeID = -1

// Kind distinguishes the two node types of a balancing network.
type Kind uint8

// Node kinds.
const (
	// KindBalancer is a balancing node: e inputs, d ordered outputs, and
	// the step property 0 <= y_i - y_j <= 1 for i < j on its outputs.
	KindBalancer Kind = iota + 1
	// KindCounter is an atomic counter attached to one network output
	// port. It has a single input and no outputs.
	KindCounter
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindBalancer:
		return "balancer"
	case KindCounter:
		return "counter"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// PortRef names one input port of a node: tokens "waiting at" a PortRef are
// about to transition through that node.
type PortRef struct {
	Node NodeID
	Port int
}

// Src names the source feeding a wire: either a network input (Node ==
// InvalidNode, Port == input index) or an output port of a balancer.
type Src struct {
	Node NodeID // InvalidNode when the wire starts at a network input
	Port int    // output port index, or the network input index
}

// IsInput reports whether the source is a network input.
func (s Src) IsInput() bool { return s.Node == InvalidNode }

// node is the internal representation shared by balancers and counters.
type node struct {
	kind   Kind
	fanIn  int
	fanOut int
	in     []Src     // in[p] = source feeding input port p
	out    []PortRef // out[p] = destination of output port p (balancers only)
	layer  int       // 1-based balancer layer; counters sit at depth+1
	index  int       // counters only: output port index Y_index
}

// Graph is an immutable balancing network.
//
// The zero Graph is not useful; construct one with a Builder or one of the
// network constructors (bitonic, periodic, dtree packages).
type Graph struct {
	nodes    []node
	inputs   []PortRef // inputs[i] = entry port of network input i
	counters []NodeID  // counters[i] = counter node for output Y_i
	depth    int       // number of links from an input node to a counter
	uniform  bool      // all input->output paths have equal length
	layers   [][]NodeID
}

// NumNodes returns the total number of nodes (balancers plus counters).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumBalancers returns the number of balancing nodes.
func (g *Graph) NumBalancers() int { return len(g.nodes) - len(g.counters) }

// InWidth returns v, the number of network input ports.
func (g *Graph) InWidth() int { return len(g.inputs) }

// OutWidth returns w, the number of output counters.
func (g *Graph) OutWidth() int { return len(g.counters) }

// Depth returns the number of links between an input node and an output
// counter (Definition 2.1 of the paper). For a non-uniform network it is the
// longest such path.
func (g *Graph) Depth() int { return g.depth }

// Uniform reports whether every node lies on an input-to-output path and all
// such paths have equal length (Definition 2.1).
func (g *Graph) Uniform() bool { return g.uniform }

// Input returns the entry port for network input i.
func (g *Graph) Input(i int) PortRef { return g.inputs[i] }

// CounterNode returns the node id of the counter on output Y_i.
func (g *Graph) CounterNode(i int) NodeID { return g.counters[i] }

// KindOf returns the kind of node id.
func (g *Graph) KindOf(id NodeID) Kind { return g.nodes[id].kind }

// FanIn returns the number of input ports of node id.
func (g *Graph) FanIn(id NodeID) int { return g.nodes[id].fanIn }

// FanOut returns the number of output ports of node id.
func (g *Graph) FanOut(id NodeID) int { return g.nodes[id].fanOut }

// Layer returns the 1-based layer of node id. Balancers occupy layers
// 1..Depth(); counters report Depth()+1. For non-uniform graphs the layer is
// the length of the longest path from the inputs.
func (g *Graph) Layer(id NodeID) int { return g.nodes[id].layer }

// CounterIndex returns the output index Y_i served by counter id, or -1 if
// id is not a counter.
func (g *Graph) CounterIndex(id NodeID) int {
	n := &g.nodes[id]
	if n.kind != KindCounter {
		return -1
	}
	return n.index
}

// OutDest returns the destination input port of output port p of node id.
func (g *Graph) OutDest(id NodeID, p int) PortRef { return g.nodes[id].out[p] }

// InSrc returns the source feeding input port p of node id.
func (g *Graph) InSrc(id NodeID, p int) Src { return g.nodes[id].in[p] }

// LayerNodes returns the node ids at 1-based layer l, in creation order.
// Layer Depth()+1 holds the counters.
func (g *Graph) LayerNodes(l int) []NodeID {
	if l < 1 || l > len(g.layers) {
		return nil
	}
	return g.layers[l-1]
}

// Balancers returns the ids of all balancing nodes in creation order.
func (g *Graph) Balancers() []NodeID {
	ids := make([]NodeID, 0, g.NumBalancers())
	for i := range g.nodes {
		if g.nodes[i].kind == KindBalancer {
			ids = append(ids, NodeID(i))
		}
	}
	return ids
}
