package topo

import (
	"errors"
	"fmt"
	"strings"
)

// Render returns a layer-by-layer ASCII description of the network: for
// each layer, its balancers with their input sources and output
// destinations, and finally the counters. It is meant for eyeballing small
// networks in a terminal (use Dot for anything wide).
func Render(g *Graph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", Summary(g))
	for l := 1; l <= g.Depth(); l++ {
		fmt.Fprintf(&sb, "layer %d:\n", l)
		for _, id := range g.LayerNodes(l) {
			if g.KindOf(id) != KindBalancer {
				continue
			}
			ins := make([]string, g.FanIn(id))
			for p := range ins {
				s := g.InSrc(id, p)
				if s.IsInput() {
					ins[p] = fmt.Sprintf("x%d", s.Port)
				} else {
					ins[p] = fmt.Sprintf("b%d.%d", s.Node, s.Port)
				}
			}
			outs := make([]string, g.FanOut(id))
			for p := range outs {
				d := g.OutDest(id, p)
				if g.KindOf(d.Node) == KindCounter {
					outs[p] = fmt.Sprintf("Y%d", g.CounterIndex(d.Node))
				} else {
					outs[p] = fmt.Sprintf("b%d.%d", d.Node, d.Port)
				}
			}
			fmt.Fprintf(&sb, "  b%-4d %s -> %s\n", id, strings.Join(ins, ","), strings.Join(outs, ","))
		}
	}
	fmt.Fprintf(&sb, "counters: Y0..Y%d\n", g.OutWidth()-1)
	return sb.String()
}

// Certify runs the strongest verification that fits the budget: the
// exhaustive all-interleavings model check when the state space allows it,
// otherwise the randomized counting check, always preceded by the
// deterministic sequential check. It returns a description of what was
// proven along with any failure.
func Certify(g *Graph, stateBudget int, trials int, seed int64) (string, error) {
	// Small networks: exhaustive over a couple of token loads.
	if g.NumBalancers() <= 16 {
		per := make([]int64, g.InWidth())
		total := int64(g.OutWidth() + 2)
		for i := int64(0); i < total; i++ {
			per[int(i)%g.InWidth()]++
		}
		err := ExhaustiveCheck(g, per, stateBudget)
		switch {
		case err == nil:
			if rErr := VerifyCounting(g, 4*g.OutWidth(), trials, seed); rErr != nil {
				return "", rErr
			}
			return fmt.Sprintf("exhaustive over %d tokens (all interleavings) + %d randomized trials", total, trials), nil
		case !errors.Is(err, ErrStateSpace):
			return "", err
		}
		// Fall through to randomized when the budget was exceeded.
	}
	if err := VerifyCounting(g, 4*g.OutWidth(), trials, seed); err != nil {
		return "", err
	}
	return fmt.Sprintf("randomized (%d trials); too large for the exhaustive check", trials), nil
}
