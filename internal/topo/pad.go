package topo

import "fmt"

// Pad returns a copy of g whose every network input is prefixed by a path of
// `length` one-input one-output balancers, the construction of Corollary
// 3.12: given c2 < k*c1 for a known k >= 2, padding a depth-h uniform
// counting network with h*(k-2) pass-through nodes per input yields a
// linearizable uniform counting network of depth h*(k-1).
//
// length == 0 returns an identical copy.
func Pad(g *Graph, length int) (*Graph, error) {
	if length < 0 {
		return nil, fmt.Errorf("topo: negative padding length %d", length)
	}
	b := NewBuilder()
	ins := b.Inputs(g.InWidth())
	feeds := make([]Out, len(ins))
	for i, in := range ins {
		o := in
		for j := 0; j < length; j++ {
			o = b.Balancer11(o)
		}
		feeds[i] = o
	}
	term, err := cloneBalancers(b, g, feeds)
	if err != nil {
		return nil, err
	}
	b.Terminate(term)
	return b.Build()
}
