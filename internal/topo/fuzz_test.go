package topo

import "testing"

// FuzzDecode feeds arbitrary bytes to the network decoder: it must never
// panic, and anything it accepts must be a well-formed graph that survives
// an encode/decode round trip.
func FuzzDecode(f *testing.F) {
	g, err := func() (*Graph, error) {
		b := NewBuilder()
		in := b.Inputs(2)
		o0, o1 := b.Balancer2(in[0], in[1])
		b.Terminate([]Out{o0, o1})
		return b.Build()
	}()
	if err != nil {
		f.Fatal(err)
	}
	valid, err := Encode(g)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{"inputs":1,"balancers":[],"counters":[{"input":0}]}`))
	f.Add([]byte(`{"inputs":-1}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		g, err := Decode(raw)
		if err != nil {
			return
		}
		if g.InWidth() < 1 || g.OutWidth() < 1 {
			t.Fatalf("decoded degenerate graph: %s", Summary(g))
		}
		re, err := Encode(g)
		if err != nil {
			t.Fatalf("re-encode of accepted graph failed: %v", err)
		}
		g2, err := Decode(re)
		if err != nil {
			t.Fatalf("round trip of accepted graph failed: %v", err)
		}
		if g2.Depth() != g.Depth() || g2.NumBalancers() != g.NumBalancers() {
			t.Fatalf("round trip changed shape: %s vs %s", Summary(g), Summary(g2))
		}
	})
}

// FuzzStepCounts checks the closed form against its defining properties.
func FuzzStepCounts(f *testing.F) {
	f.Add(uint16(7), uint8(3))
	f.Fuzz(func(t *testing.T, mRaw uint16, wRaw uint8) {
		m := int64(mRaw)
		w := int(wRaw)%128 + 1
		counts := StepCounts(m, w)
		var sum int64
		for _, c := range counts {
			sum += c
		}
		if sum != m {
			t.Fatalf("sum %d != %d", sum, m)
		}
		if !StepPropertyHolds(counts) {
			t.Fatalf("step property fails: %v", counts)
		}
	})
}
