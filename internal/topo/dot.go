package topo

import (
	"fmt"
	"strings"
)

// Dot renders the network in Graphviz dot format, one rank per layer, for
// inspection with the netinfo tool.
func Dot(g *Graph, name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n", name)
	for i := range g.inputs {
		fmt.Fprintf(&sb, "  x%d [shape=plaintext, label=\"x%d\"];\n", i, i)
	}
	for id := range g.nodes {
		n := &g.nodes[id]
		switch n.kind {
		case KindBalancer:
			label := fmt.Sprintf("b%d\\n%dx%d L%d", id, n.fanIn, n.fanOut, n.layer)
			fmt.Fprintf(&sb, "  n%d [label=\"%s\"];\n", id, label)
		case KindCounter:
			fmt.Fprintf(&sb, "  n%d [shape=ellipse, label=\"Y%d\"];\n", id, n.index)
		}
	}
	for i, p := range g.inputs {
		fmt.Fprintf(&sb, "  x%d -> n%d [label=\"p%d\"];\n", i, p.Node, p.Port)
	}
	for id := range g.nodes {
		n := &g.nodes[id]
		for p, dst := range n.out {
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"y%d>p%d\"];\n", id, dst.Node, p, dst.Port)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Summary returns a one-paragraph human-readable description of the network.
func Summary(g *Graph) string {
	uniform := "non-uniform"
	if g.Uniform() {
		uniform = "uniform"
	}
	return fmt.Sprintf("%d inputs, %d outputs, %d balancers, depth %d, %s",
		g.InWidth(), g.OutWidth(), g.NumBalancers(), g.Depth(), uniform)
}
