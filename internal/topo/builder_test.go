package topo

import (
	"strings"
	"testing"
)

// width2 builds the Section 1 network: one balancer B and two counters.
func width2(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	in := b.Inputs(2)
	o0, o1 := b.Balancer2(in[0], in[1])
	b.Terminate([]Out{o0, o1})
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderWidth2(t *testing.T) {
	g := width2(t)
	if got := g.InWidth(); got != 2 {
		t.Errorf("InWidth = %d, want 2", got)
	}
	if got := g.OutWidth(); got != 2 {
		t.Errorf("OutWidth = %d, want 2", got)
	}
	if got := g.NumBalancers(); got != 1 {
		t.Errorf("NumBalancers = %d, want 1", got)
	}
	if got := g.Depth(); got != 1 {
		t.Errorf("Depth = %d, want 1", got)
	}
	if !g.Uniform() {
		t.Error("width-2 network should be uniform")
	}
	bal := g.Balancers()
	if len(bal) != 1 {
		t.Fatalf("Balancers = %v, want one node", bal)
	}
	if g.KindOf(bal[0]) != KindBalancer {
		t.Errorf("KindOf(balancer) = %v", g.KindOf(bal[0]))
	}
	if g.Layer(bal[0]) != 1 {
		t.Errorf("balancer layer = %d, want 1", g.Layer(bal[0]))
	}
	for i := 0; i < 2; i++ {
		c := g.CounterNode(i)
		if g.KindOf(c) != KindCounter {
			t.Errorf("counter %d kind = %v", i, g.KindOf(c))
		}
		if g.CounterIndex(c) != i {
			t.Errorf("CounterIndex = %d, want %d", g.CounterIndex(c), i)
		}
		if g.Layer(c) != 2 {
			t.Errorf("counter layer = %d, want 2", g.Layer(c))
		}
	}
	if g.CounterIndex(bal[0]) != -1 {
		t.Error("CounterIndex of a balancer should be -1")
	}
}

func TestBuilderDoubleConsume(t *testing.T) {
	b := NewBuilder()
	in := b.Inputs(2)
	o0, _ := b.Balancer2(in[0], in[1])
	b.Balancer2(o0, o0) // same wire twice
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded despite double-consumed wire")
	}
}

func TestBuilderDanglingOutput(t *testing.T) {
	b := NewBuilder()
	in := b.Inputs(2)
	o0, _ := b.Balancer2(in[0], in[1]) // o1 dangling
	b.Terminate([]Out{o0})
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded with a dangling balancer output")
	}
}

func TestBuilderUnconsumedInput(t *testing.T) {
	b := NewBuilder()
	in := b.Inputs(2)
	o := b.Balancer11(in[0]) // in[1] never consumed
	b.Terminate([]Out{o})
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded with an unconsumed network input")
	}
}

func TestBuilderMissingTerminate(t *testing.T) {
	b := NewBuilder()
	in := b.Inputs(2)
	b.Balancer2(in[0], in[1])
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded without Terminate")
	}
}

func TestBuilderNoInputs(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded on an empty builder")
	}
}

func TestBuilderZeroOut(t *testing.T) {
	b := NewBuilder()
	b.Inputs(1)
	b.Balancer11(Out{})
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded after consuming a zero Out")
	}
}

func TestBuilderForeignOut(t *testing.T) {
	b1 := NewBuilder()
	b2 := NewBuilder()
	in1 := b1.Inputs(1)
	b2.Inputs(1)
	b2.Balancer11(in1[0])
	if _, err := b2.Build(); err == nil {
		t.Fatal("Build succeeded after consuming a foreign Out")
	}
}

func TestBuilderTerminateTwice(t *testing.T) {
	b := NewBuilder()
	in := b.Inputs(2)
	o0, o1 := b.Balancer2(in[0], in[1])
	b.Terminate([]Out{o0})
	b.Terminate([]Out{o1})
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded despite double Terminate")
	}
}

func TestBuilderSingleUse(t *testing.T) {
	b := NewBuilder()
	in := b.Inputs(2)
	o0, o1 := b.Balancer2(in[0], in[1])
	b.Terminate([]Out{o0, o1})
	if _, err := b.Build(); err != nil {
		t.Fatalf("first Build: %v", err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("second Build succeeded; Builder must be single-use")
	}
	// Post-build construction calls must be inert, not corrupting.
	extra := b.Inputs(1)
	b.Balancer11(extra[0])
}

func TestBuilderBadBalancerShape(t *testing.T) {
	for name, build := range map[string]func(b *Builder, in []Out){
		"no inputs":   func(b *Builder, in []Out) { b.BalancerN(nil, 2) },
		"zero fanout": func(b *Builder, in []Out) { b.BalancerN(in, 0) },
	} {
		b := NewBuilder()
		in := b.Inputs(1)
		build(b, in)
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: Build succeeded", name)
		}
	}
}

func TestNonUniformDetected(t *testing.T) {
	// in0 passes one balancer, in1 passes two, then they merge: paths of
	// unequal length reach the merging balancer.
	b := NewBuilder()
	in := b.Inputs(2)
	a := b.Balancer11(in[0])
	c := b.Balancer11(b.Balancer11(in[1]))
	o0, o1 := b.Balancer2(a, c)
	b.Terminate([]Out{o0, o1})
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.Uniform() {
		t.Error("network with unequal-length paths reported uniform")
	}
	if g.Depth() != 3 {
		t.Errorf("Depth = %d, want 3 (longest path)", g.Depth())
	}
}

func TestDirectInputToCounter(t *testing.T) {
	b := NewBuilder()
	in := b.Inputs(1)
	b.Terminate([]Out{in[0]})
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.Depth() != 0 {
		t.Errorf("Depth = %d, want 0", g.Depth())
	}
	q := NewSequential(g)
	for k := 0; k < 3; k++ {
		v, err := q.Traverse(0)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(k) {
			t.Errorf("token %d got value %d", k, v)
		}
	}
}

func TestDotAndSummary(t *testing.T) {
	g := width2(t)
	dot := Dot(g, "w2")
	for _, want := range []string{"digraph", "x0", "x1", "Y0", "Y1", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q:\n%s", want, dot)
		}
	}
	s := Summary(g)
	if !strings.Contains(s, "depth 1") || !strings.Contains(s, "uniform") {
		t.Errorf("Summary = %q", s)
	}
}
