package topo

import (
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := width2(t)
	data, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.InWidth() != g.InWidth() || g2.OutWidth() != g.OutWidth() ||
		g2.Depth() != g.Depth() || g2.NumBalancers() != g.NumBalancers() ||
		g2.Uniform() != g.Uniform() {
		t.Fatalf("round trip changed shape: %s vs %s", Summary(g), Summary(g2))
	}
	// Behavioural equality: same sequential values.
	q1, q2 := NewSequential(g), NewSequential(g2)
	for k := 0; k < 8; k++ {
		v1, err1 := q1.Traverse(k % g.InWidth())
		v2, err2 := q2.Traverse(k % g.InWidth())
		if err1 != nil || err2 != nil || v1 != v2 {
			t.Fatalf("traversal diverged at %d: %d vs %d", k, v1, v2)
		}
	}
}

func TestEncodeDecodeComplexGraphs(t *testing.T) {
	// Padded non-trivial graph exercises chains and layer structure.
	g := width2(t)
	p, err := Pad(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Depth() != p.Depth() || p2.NumBalancers() != p.NumBalancers() {
		t.Fatalf("round trip changed padded shape")
	}
	if err := VerifyCounting(p2, 12, 10, 1); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":        "}{",
		"no inputs":       `{"inputs":0,"balancers":[],"counters":[]}`,
		"bad input ref":   `{"inputs":1,"balancers":[{"in":[{"input":5}],"fanOut":1}],"counters":[{"input":-1,"node":0,"port":0}]}`,
		"forward ref":     `{"inputs":1,"balancers":[{"in":[{"input":-1,"node":1,"port":0}],"fanOut":1}],"counters":[{"input":-1,"node":0,"port":0}]}`,
		"bad port":        `{"inputs":1,"balancers":[{"in":[{"input":0}],"fanOut":1}],"counters":[{"input":-1,"node":0,"port":7}]}`,
		"double consume":  `{"inputs":1,"balancers":[{"in":[{"input":0},{"input":0}],"fanOut":2}],"counters":[{"input":-1,"node":0,"port":0},{"input":-1,"node":0,"port":1}]}`,
		"dangling output": `{"inputs":2,"balancers":[{"in":[{"input":0},{"input":1}],"fanOut":2}],"counters":[{"input":-1,"node":0,"port":0}]}`,
	}
	for name, data := range cases {
		if _, err := Decode([]byte(data)); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
}

func TestEncodeNil(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Error("Encode(nil) succeeded")
	}
}

func TestEncodeIsJSON(t *testing.T) {
	g := width2(t)
	data, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"balancers"`) {
		t.Errorf("unexpected encoding: %s", data)
	}
}
