package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStepperSequentialValues(t *testing.T) {
	g := width2(t)
	q := NewSequential(g)
	for k := 0; k < 10; k++ {
		v, err := q.Traverse(k % 2)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(k) {
			t.Errorf("token %d received %d", k, v)
		}
	}
	st := q.Stepper()
	if !st.Quiescent() {
		t.Error("all tokens done but not quiescent")
	}
	if got := st.CounterCount(0); got != 5 {
		t.Errorf("counter 0 count = %d, want 5", got)
	}
	if got := st.OutputCounts(); got[0] != 5 || got[1] != 5 {
		t.Errorf("OutputCounts = %v", got)
	}
}

// TestStepperSection1Example replays the non-linearizable execution from the
// paper's introduction on the width-2 network: T0 toggles the balancer
// toward A0 and stalls; T1 passes to A1 and returns 1; T2 passes to A0 ahead
// of T0 and returns 0; T0 finally returns 2.
func TestStepperSection1Example(t *testing.T) {
	g := width2(t)
	s := NewStepper(g)
	t0 := s.Inject(0)
	t1 := s.Inject(0)
	t2 := s.Inject(0)

	step := func(tok int) {
		t.Helper()
		if _, err := s.Step(tok); err != nil {
			t.Fatal(err)
		}
	}
	step(t0) // T0 through balancer toward y0, then delayed on the link
	step(t1) // T1 through balancer toward y1
	step(t1) // T1 reaches A1
	step(t2) // T2 through balancer toward y0
	step(t2) // T2 reaches A0 ahead of T0
	step(t0) // T0 finally reaches A0

	want := map[int]int64{t0: 2, t1: 1, t2: 0}
	for tok, w := range want {
		v, done := s.Value(tok)
		if !done || v != w {
			t.Errorf("token %d value = %d (done=%v), want %d", tok, v, done, w)
		}
	}
}

func TestStepperErrors(t *testing.T) {
	g := width2(t)
	s := NewStepper(g)
	if _, err := s.Step(0); err == nil {
		t.Error("Step of unknown token succeeded")
	}
	tok := s.Inject(0)
	if _, err := s.Run(tok); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(tok); err == nil {
		t.Error("Step of finished token succeeded")
	}
	if v, done := s.Value(tok); !done || v != 0 {
		t.Errorf("Value = %d, %v", v, done)
	}
}

func TestStepperTrackPathsAndObserver(t *testing.T) {
	g := width2(t)
	s := NewStepper(g)
	s.TrackPaths()
	var events int
	var counterValues []int64
	s.SetObserver(func(tok int, id NodeID, value int64) {
		events++
		if value >= 0 {
			counterValues = append(counterValues, value)
		}
	})
	tok := s.Inject(0)
	if _, err := s.Run(tok); err != nil {
		t.Fatal(err)
	}
	path := s.Path(tok)
	if len(path) != 2 {
		t.Fatalf("path = %v, want balancer+counter", path)
	}
	if g.KindOf(path[0]) != KindBalancer || g.KindOf(path[1]) != KindCounter {
		t.Errorf("path kinds wrong: %v", path)
	}
	if events != 2 {
		t.Errorf("observer saw %d events, want 2", events)
	}
	if len(counterValues) != 1 || counterValues[0] != 0 {
		t.Errorf("counter values = %v", counterValues)
	}
	if s.BalancerOutCount(path[0]) != 1 {
		t.Errorf("BalancerOutCount = %d", s.BalancerOutCount(path[0]))
	}
}

func TestStepPropertyHolds(t *testing.T) {
	cases := []struct {
		counts []int64
		want   bool
	}{
		{[]int64{}, true},
		{[]int64{5}, true},
		{[]int64{2, 2, 1, 1}, true},
		{[]int64{2, 1, 2, 1}, false},
		{[]int64{1, 2}, false},
		{[]int64{3, 1}, false},
		{[]int64{0, 0, 0}, true},
	}
	for _, c := range cases {
		if got := StepPropertyHolds(c.counts); got != c.want {
			t.Errorf("StepPropertyHolds(%v) = %v, want %v", c.counts, got, c.want)
		}
	}
}

func TestStepCountsProperty(t *testing.T) {
	f := func(mRaw uint16, wRaw uint8) bool {
		m := int64(mRaw)
		w := int(wRaw)%64 + 1
		counts := StepCounts(m, w)
		var sum int64
		for _, c := range counts {
			sum += c
		}
		return sum == m && StepPropertyHolds(counts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRandomInterleavingsPermutation checks on the width-2 network that any
// interleaving hands out a permutation of 0..m-1 once quiescent.
func TestRandomInterleavingsPermutation(t *testing.T) {
	g := width2(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		s := NewStepper(g)
		m := 1 + rng.Intn(12)
		live := make([]int, m)
		for i := range live {
			live[i] = s.Inject(rng.Intn(2))
		}
		seen := make(map[int64]bool, m)
		for len(live) > 0 {
			i := rng.Intn(len(live))
			done, err := s.Step(live[i])
			if err != nil {
				t.Fatal(err)
			}
			if done {
				v, _ := s.Value(live[i])
				if seen[v] {
					t.Fatalf("value %d assigned twice", v)
				}
				seen[v] = true
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for k := 0; k < m; k++ {
			if !seen[int64(k)] {
				t.Fatalf("trial %d: value %d missing from %d tokens", trial, k, m)
			}
		}
	}
}
