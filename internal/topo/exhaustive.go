package topo

import (
	"fmt"
	"sort"
	"strings"
)

// ErrStateSpace is returned by ExhaustiveCheck when the interleaving state
// space exceeds the caller's budget.
var ErrStateSpace = fmt.Errorf("topo: state space exceeds budget")

// ExhaustiveCheck verifies the quiescent step property over EVERY possible
// interleaving of node transitions, for perInput[i] tokens entering network
// input i. Tokens are anonymous, so states are (toggle vector, counter
// tallies, multiset of waiting positions); the search memoizes visited
// states and fails fast on the first terminal state violating the step
// property. maxStates bounds the search; exceeding it returns
// ErrStateSpace.
//
// This is model checking in miniature: for small widths it upgrades the
// randomized VerifyCounting evidence to a proof over the bounded token
// count.
func ExhaustiveCheck(g *Graph, perInput []int64, maxStates int) error {
	if len(perInput) != g.InWidth() {
		return fmt.Errorf("topo: %d token counts for %d inputs", len(perInput), g.InWidth())
	}
	var total int64
	init := xstate{
		toggles: make([]int32, g.NumNodes()),
		counts:  make([]int64, g.OutWidth()),
		tokens:  map[PortRef]int64{},
	}
	for i, c := range perInput {
		if c < 0 {
			return fmt.Errorf("topo: negative token count %d", c)
		}
		if c > 0 {
			init.tokens[g.inputs[i]] += c
		}
		total += c
	}
	want := StepCounts(total, g.OutWidth())
	seen := map[string]bool{}
	stack := []xstate{init}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		key := st.key()
		if seen[key] {
			continue
		}
		if len(seen) >= maxStates {
			return fmt.Errorf("%w (%d states, budget %d)", ErrStateSpace, len(seen), maxStates)
		}
		seen[key] = true
		if len(st.tokens) == 0 {
			for i := range st.counts {
				if st.counts[i] != want[i] {
					return fmt.Errorf("topo: interleaving reaches quiescent outputs %v, want %v", st.counts, want)
				}
			}
			continue
		}
		// Sorted positions keep the DFS push order — and therefore which
		// violating interleaving is reported first — identical across runs.
		for _, pos := range sortedPositions(st.tokens) {
			stack = append(stack, st.step(g, pos))
		}
	}
	return nil
}

// xstate is one configuration of the anonymous-token transition system.
type xstate struct {
	toggles []int32
	counts  []int64
	tokens  map[PortRef]int64
}

// step advances one token waiting at pos through its node.
func (s xstate) step(g *Graph, pos PortRef) xstate {
	n := xstate{
		toggles: append([]int32(nil), s.toggles...),
		counts:  append([]int64(nil), s.counts...),
		tokens:  make(map[PortRef]int64, len(s.tokens)+1),
	}
	//countnet:allow detvet -- map-to-map copy; insertion order cannot affect the result
	for p, c := range s.tokens {
		n.tokens[p] = c
	}
	if n.tokens[pos] == 1 {
		delete(n.tokens, pos)
	} else {
		n.tokens[pos]--
	}
	id := pos.Node
	node := &g.nodes[id]
	switch node.kind {
	case KindBalancer:
		t := n.toggles[id]
		n.toggles[id] = (t + 1) % int32(node.fanOut)
		n.tokens[node.out[t]]++
	case KindCounter:
		n.counts[node.index]++
	}
	return n
}

// key canonically encodes the state (waiting positions sorted by node then
// port via deterministic iteration over a sorted slice).
func (s xstate) key() string {
	var sb strings.Builder
	for _, t := range s.toggles {
		fmt.Fprintf(&sb, "%d,", t)
	}
	sb.WriteByte('|')
	for _, c := range s.counts {
		fmt.Fprintf(&sb, "%d,", c)
	}
	sb.WriteByte('|')
	for _, p := range sortedPositions(s.tokens) {
		fmt.Fprintf(&sb, "%d:%d=%d,", p.Node, p.Port, s.tokens[p])
	}
	return sb.String()
}

// sortedPositions returns the waiting positions in node/port order, the
// one place map iteration is funneled through so its randomized order
// never leaks into DFS push order or state keys.
func sortedPositions(tokens map[PortRef]int64) []PortRef {
	out := make([]PortRef, 0, len(tokens))
	//countnet:allow detvet -- collection pass; the slice is sorted before any use
	for p := range tokens {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

func less(a, b PortRef) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Port < b.Port
}
