package lincheck

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestAnalyzeEmpty(t *testing.T) {
	r := Analyze(nil)
	if r.Total != 0 || r.NonLinearizable != 0 || !r.Linearizable() || r.Ratio() != 0 {
		t.Errorf("empty analysis = %+v", r)
	}
	if r.FirstViolation != -1 {
		t.Errorf("FirstViolation = %d, want -1", r.FirstViolation)
	}
}

func TestAnalyzeSequentialCounting(t *testing.T) {
	// Perfectly sequential counting: op k runs [2k, 2k+1] and returns k.
	ops := make([]Op, 100)
	for k := range ops {
		ops[k] = Op{Start: int64(2 * k), End: int64(2*k + 1), Value: int64(k)}
	}
	r := Analyze(ops)
	if !r.Linearizable() {
		t.Errorf("sequential counting flagged: %v", r)
	}
}

func TestAnalyzeSection1Example(t *testing.T) {
	// The introduction's example: T1 returns 1 and completely precedes T2,
	// which returns 0. T0 overlaps everything and returns 2.
	ops := []Op{
		{Start: 0, End: 100, Value: 2}, // T0, delayed
		{Start: 1, End: 10, Value: 1},  // T1
		{Start: 20, End: 30, Value: 0}, // T2: non-linearizable
	}
	r := Analyze(ops)
	if r.NonLinearizable != 1 {
		t.Fatalf("NonLinearizable = %d, want 1 (%v)", r.NonLinearizable, r)
	}
	if r.MaxInversion != 1 {
		t.Errorf("MaxInversion = %d, want 1", r.MaxInversion)
	}
	v := Violations(ops)
	if len(v) != 1 || v[0].Op.Value != 0 || v[0].PrecedingMax != 1 {
		t.Errorf("Violations = %+v", v)
	}
}

func TestAnalyzeOverlapIsNotViolation(t *testing.T) {
	// Two overlapping ops may return values in either order.
	ops := []Op{
		{Start: 0, End: 10, Value: 1},
		{Start: 5, End: 15, Value: 0},
	}
	if r := Analyze(ops); !r.Linearizable() {
		t.Errorf("overlapping ops flagged: %v", r)
	}
}

func TestAnalyzeTouchingEndpointsStrict(t *testing.T) {
	// "Completely precedes" is strict: End == Start does not count.
	ops := []Op{
		{Start: 0, End: 10, Value: 5},
		{Start: 10, End: 20, Value: 0},
	}
	if r := Analyze(ops); !r.Linearizable() {
		t.Errorf("touching endpoints flagged: %v", r)
	}
	ops[1].Start = 11
	if r := Analyze(ops); r.NonLinearizable != 1 {
		t.Errorf("strictly separated inversion missed: %v", Analyze(ops))
	}
}

func TestAnalyzeMultipleViolations(t *testing.T) {
	ops := []Op{
		{Start: 0, End: 1, Value: 10},
		{Start: 2, End: 3, Value: 4}, // violated by 10
		{Start: 4, End: 5, Value: 3}, // violated by 10
		{Start: 6, End: 7, Value: 11},
		{Start: 8, End: 9, Value: 12},
	}
	r := Analyze(ops)
	if r.NonLinearizable != 2 {
		t.Errorf("NonLinearizable = %d, want 2", r.NonLinearizable)
	}
	if r.MaxInversion != 7 {
		t.Errorf("MaxInversion = %d, want 7", r.MaxInversion)
	}
	if r.FirstViolation != 1 {
		t.Errorf("FirstViolation = %d, want 1", r.FirstViolation)
	}
}

// TestAnalyzeMatchesBrute cross-checks the sweep against the quadratic
// oracle on random executions.
func TestAnalyzeMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(60)
		ops := make([]Op, n)
		for i := range ops {
			s := int64(rng.Intn(100))
			ops[i] = Op{
				Start: s,
				End:   s + 1 + int64(rng.Intn(50)),
				Value: int64(rng.Intn(40)),
			}
		}
		a, b := Analyze(ops), AnalyzeBrute(ops)
		if a.NonLinearizable != b.NonLinearizable || a.MaxInversion != b.MaxInversion ||
			a.FirstViolation != b.FirstViolation {
			t.Fatalf("trial %d: sweep %+v != brute %+v (ops %v)", trial, a, b, ops)
		}
		if len(Violations(ops)) != a.NonLinearizable {
			t.Fatalf("trial %d: Violations len %d != %d", trial, len(Violations(ops)), a.NonLinearizable)
		}
	}
}

// TestAnalyzeQuick is a property-based variant with adversarial small value
// ranges to force heavy collisions on times and values.
func TestAnalyzeQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		ops := make([]Op, 0, len(raw)/3)
		for i := 0; i+2 < len(raw); i += 3 {
			s := int64(raw[i] % 16)
			ops = append(ops, Op{
				Start: s,
				End:   s + int64(raw[i+1]%16),
				Value: int64(raw[i+2] % 8),
			})
		}
		a, b := Analyze(ops), AnalyzeBrute(ops)
		return a.NonLinearizable == b.NonLinearizable && a.MaxInversion == b.MaxInversion
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(0)
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				v := int64(p*100 + k)
				rec.Record(2*v, 2*v+1, v)
			}
		}(p)
	}
	wg.Wait()
	if rec.Len() != 800 {
		t.Fatalf("Len = %d, want 800", rec.Len())
	}
	if r := rec.Analyze(); !r.Linearizable() {
		t.Errorf("recorder analysis flagged consistent ops: %v", r)
	}
	ops := rec.Ops()
	ops[0].Value = -99 // mutating the copy must not affect the recorder
	if r := rec.Analyze(); !r.Linearizable() {
		t.Errorf("Ops returned an aliased slice")
	}
}

func TestReportString(t *testing.T) {
	r := Report{Total: 10, NonLinearizable: 3, MaxInversion: 5}
	if s := r.String(); s == "" {
		t.Error("empty String()")
	}
}
