package lincheck

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzAnalyzeMatchesBrute cross-checks the sweep against the quadratic
// oracle on fuzzer-chosen executions. Run with
// `go test -fuzz FuzzAnalyzeMatchesBrute ./internal/lincheck`; the seed
// corpus runs on every plain `go test`.
func FuzzAnalyzeMatchesBrute(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{7}, 60))
	// Regression: ties at interval boundaries. Op A is [0,5], op B starts
	// exactly at A's end (start == end of a neighbor): End < Start is
	// strict, so B is NOT preceded by A; and op C starts at 6, one past it.
	f.Add([]byte{0, 5, 9, 5, 2, 3, 6, 1, 3})
	// Regression: zero-length intervals touching (start == end == 4).
	f.Add([]byte{4, 0, 8, 4, 0, 2, 4, 3, 1})
	// Regression: duplicate values across ordered ops (equal values never
	// violate: the check is strictly greater).
	f.Add([]byte{0, 1, 7, 2, 1, 7, 4, 1, 7, 6, 1, 2})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ops := decodeOps(raw)
		a, b := Analyze(ops), AnalyzeBrute(ops)
		if a.NonLinearizable != b.NonLinearizable {
			t.Fatalf("count: sweep %d != brute %d (ops %v)", a.NonLinearizable, b.NonLinearizable, ops)
		}
		if a.MaxInversion != b.MaxInversion {
			t.Fatalf("inversion: sweep %d != brute %d (ops %v)", a.MaxInversion, b.MaxInversion, ops)
		}
		if a.FirstViolation != b.FirstViolation {
			t.Fatalf("first: sweep %d != brute %d (ops %v)", a.FirstViolation, b.FirstViolation, ops)
		}
		viols := Violations(ops)
		if got := len(viols); got != a.NonLinearizable {
			t.Fatalf("Violations len %d != %d", got, a.NonLinearizable)
		}
		// Every witness must be genuine: some op completely precedes the
		// violated one with exactly the reported value, and the inversion
		// is positive.
		for _, v := range viols {
			if v.PrecedingMax <= v.Op.Value {
				t.Fatalf("witness not a violation: %+v", v)
			}
			ok := false
			for _, prior := range ops {
				if prior.End < v.Op.Start && prior.Value == v.PrecedingMax {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("witness preceding value %d unrealized (ops %v)", v.PrecedingMax, ops)
			}
		}
		w, ok := FirstWitness(ops)
		if ok != (a.NonLinearizable > 0) {
			t.Fatalf("FirstWitness ok=%v but %d violations", ok, a.NonLinearizable)
		}
		if ok {
			if w.Preceding.End >= w.Violated.Start || w.Preceding.Value <= w.Violated.Value {
				t.Fatalf("FirstWitness inconsistent: %s", w)
			}
		}
	})
}

// decodeOps derives a small-op execution from fuzzer bytes, with tight
// value/time ranges to force collisions.
func decodeOps(raw []byte) []Op {
	ops := make([]Op, 0, len(raw)/3)
	for i := 0; i+2 < len(raw); i += 3 {
		s := int64(raw[i] % 32)
		ops = append(ops, Op{
			Start: s,
			End:   s + int64(raw[i+1]%32),
			Value: int64(raw[i+2] % 16),
		})
	}
	return ops
}

// FuzzAnalyzeNoPanicsWide exercises the full int64 range for robustness
// (overflow-adjacent values must not panic or disagree on emptiness).
func FuzzAnalyzeNoPanicsWide(f *testing.F) {
	seed := make([]byte, 48)
	binary.LittleEndian.PutUint64(seed, ^uint64(0)>>1)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		ops := make([]Op, 0, len(raw)/24)
		for i := 0; i+24 <= len(raw); i += 24 {
			ops = append(ops, Op{
				Start: int64(binary.LittleEndian.Uint64(raw[i:])),
				End:   int64(binary.LittleEndian.Uint64(raw[i+8:])),
				Value: int64(binary.LittleEndian.Uint64(raw[i+16:])),
			})
		}
		r := Analyze(ops)
		if r.Total != len(ops) {
			t.Fatalf("total %d != %d", r.Total, len(ops))
		}
		if r.NonLinearizable < 0 || r.NonLinearizable > r.Total {
			t.Fatalf("count out of range: %+v", r)
		}
	})
}
