package lincheck

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzAnalyzeMatchesBrute cross-checks the sweep against the quadratic
// oracle on fuzzer-chosen executions. Run with
// `go test -fuzz FuzzAnalyzeMatchesBrute ./internal/lincheck`; the seed
// corpus runs on every plain `go test`.
func FuzzAnalyzeMatchesBrute(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{7}, 60))
	f.Fuzz(func(t *testing.T, raw []byte) {
		ops := decodeOps(raw)
		a, b := Analyze(ops), AnalyzeBrute(ops)
		if a.NonLinearizable != b.NonLinearizable {
			t.Fatalf("count: sweep %d != brute %d (ops %v)", a.NonLinearizable, b.NonLinearizable, ops)
		}
		if a.MaxInversion != b.MaxInversion {
			t.Fatalf("inversion: sweep %d != brute %d (ops %v)", a.MaxInversion, b.MaxInversion, ops)
		}
		if a.FirstViolation != b.FirstViolation {
			t.Fatalf("first: sweep %d != brute %d (ops %v)", a.FirstViolation, b.FirstViolation, ops)
		}
		if got := len(Violations(ops)); got != a.NonLinearizable {
			t.Fatalf("Violations len %d != %d", got, a.NonLinearizable)
		}
	})
}

// decodeOps derives a small-op execution from fuzzer bytes, with tight
// value/time ranges to force collisions.
func decodeOps(raw []byte) []Op {
	ops := make([]Op, 0, len(raw)/3)
	for i := 0; i+2 < len(raw); i += 3 {
		s := int64(raw[i] % 32)
		ops = append(ops, Op{
			Start: s,
			End:   s + int64(raw[i+1]%32),
			Value: int64(raw[i+2] % 16),
		})
	}
	return ops
}

// FuzzAnalyzeNoPanicsWide exercises the full int64 range for robustness
// (overflow-adjacent values must not panic or disagree on emptiness).
func FuzzAnalyzeNoPanicsWide(f *testing.F) {
	seed := make([]byte, 48)
	binary.LittleEndian.PutUint64(seed, ^uint64(0)>>1)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		ops := make([]Op, 0, len(raw)/24)
		for i := 0; i+24 <= len(raw); i += 24 {
			ops = append(ops, Op{
				Start: int64(binary.LittleEndian.Uint64(raw[i:])),
				End:   int64(binary.LittleEndian.Uint64(raw[i+8:])),
				Value: int64(binary.LittleEndian.Uint64(raw[i+16:])),
			})
		}
		r := Analyze(ops)
		if r.Total != len(ops) {
			t.Fatalf("total %d != %d", r.Total, len(ops))
		}
		if r.NonLinearizable < 0 || r.NonLinearizable > r.Total {
			t.Fatalf("count out of range: %+v", r)
		}
	})
}
