// Package lincheck measures how linearizable a counting execution was, in
// the sense of Definitions 2.3 and 2.4 of "Counting Networks are Practically
// Linearizable": an operation O is non-linearizable if some other operation
// O' completely precedes O in time (O'.End < O.Start) yet returned a higher
// counter value. The non-linearizability ratio of an execution is the
// fraction of non-linearizable operations — the quantity plotted in
// Figures 5 and 6 of the paper.
//
//countnet:deterministic
package lincheck

import (
	"fmt"
	"sort"
	"sync"
)

// Op is one completed counting operation: the token entered the network at
// Start, exited with Value at End. Times are in whatever monotone unit the
// execution engine uses (simulator cycles or nanoseconds); only their order
// matters.
type Op struct {
	Start int64
	End   int64
	Value int64
}

// Report summarizes the linearizability analysis of an execution.
type Report struct {
	// Total is the number of operations analyzed.
	Total int
	// NonLinearizable is the number of operations for which some
	// completely-preceding operation returned a higher value.
	NonLinearizable int
	// MaxInversion is the largest value gap observed: max over violated
	// operations O of (max preceding value) - O.Value. Zero when there are
	// no violations.
	MaxInversion int64
	// FirstViolation indexes (into the analyzed slice, sorted by start
	// time) the earliest-starting violated operation, or -1.
	FirstViolation int
}

// Ratio returns the fraction of non-linearizable operations.
func (r Report) Ratio() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.NonLinearizable) / float64(r.Total)
}

// Linearizable reports whether no violations were observed.
func (r Report) Linearizable() bool { return r.NonLinearizable == 0 }

// String renders the report in one line.
func (r Report) String() string {
	return fmt.Sprintf("%d/%d non-linearizable (%.3f%%), max inversion %d",
		r.NonLinearizable, r.Total, 100*r.Ratio(), r.MaxInversion)
}

// opLess is the canonical operation order: by start, then end, then value.
// Using a total order keeps indices such as Report.FirstViolation
// deterministic under ties.
func opLess(a, b Op) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.End != b.End {
		return a.End < b.End
	}
	return a.Value < b.Value
}

// Analyze computes the Report for an execution in O(n log n) time: sweep
// operations in start-time order while maintaining the maximum value among
// operations that ended strictly before the sweep point.
//
// The input slice is not modified.
func Analyze(ops []Op) Report {
	r := Report{Total: len(ops), FirstViolation: -1}
	if len(ops) == 0 {
		return r
	}
	byStart := make([]Op, len(ops))
	copy(byStart, ops)
	sort.Slice(byStart, func(i, j int) bool { return opLess(byStart[i], byStart[j]) })
	byEnd := make([]Op, len(ops))
	copy(byEnd, ops)
	sort.Slice(byEnd, func(i, j int) bool { return byEnd[i].End < byEnd[j].End })

	var maxEnded int64
	haveEnded := false
	j := 0
	for i, op := range byStart {
		for j < len(byEnd) && byEnd[j].End < op.Start {
			if !haveEnded || byEnd[j].Value > maxEnded {
				maxEnded = byEnd[j].Value
				haveEnded = true
			}
			j++
		}
		if haveEnded && maxEnded > op.Value {
			r.NonLinearizable++
			if inv := maxEnded - op.Value; inv > r.MaxInversion {
				r.MaxInversion = inv
			}
			if r.FirstViolation == -1 {
				r.FirstViolation = i
			}
		}
	}
	return r
}

// AnalyzeBrute computes the same Report by the O(n^2) definition. It exists
// as a cross-checking oracle for Analyze and for tests.
func AnalyzeBrute(ops []Op) Report {
	r := Report{Total: len(ops), FirstViolation: -1}
	byStart := make([]Op, len(ops))
	copy(byStart, ops)
	sort.Slice(byStart, func(i, j int) bool { return opLess(byStart[i], byStart[j]) })
	for i, op := range byStart {
		violated := false
		for _, prior := range byStart {
			if prior.End < op.Start && prior.Value > op.Value {
				violated = true
				if inv := prior.Value - op.Value; inv > r.MaxInversion {
					r.MaxInversion = inv
				}
			}
		}
		if violated {
			r.NonLinearizable++
			if r.FirstViolation == -1 {
				r.FirstViolation = i
			}
		}
	}
	return r
}

// Violations returns the violated operations (sorted by start time),
// each paired with the highest value returned by an operation that
// completely preceded it.
func Violations(ops []Op) []Violation {
	byStart := make([]Op, len(ops))
	copy(byStart, ops)
	sort.Slice(byStart, func(i, j int) bool { return opLess(byStart[i], byStart[j]) })
	byEnd := make([]Op, len(ops))
	copy(byEnd, ops)
	sort.Slice(byEnd, func(i, j int) bool { return byEnd[i].End < byEnd[j].End })

	var out []Violation
	var maxEnded int64
	haveEnded := false
	j := 0
	for _, op := range byStart {
		for j < len(byEnd) && byEnd[j].End < op.Start {
			if !haveEnded || byEnd[j].Value > maxEnded {
				maxEnded = byEnd[j].Value
				haveEnded = true
			}
			j++
		}
		if haveEnded && maxEnded > op.Value {
			out = append(out, Violation{Op: op, PrecedingMax: maxEnded})
		}
	}
	return out
}

// Violation describes one non-linearizable operation.
type Violation struct {
	Op           Op
	PrecedingMax int64 // highest value returned by a completely-preceding op
}

// Witness pairs a violated operation with a concrete operation that proves
// the violation: Preceding ended strictly before Violated started yet
// returned a higher value. The conformance shrinker keys its minimization
// on witnesses — a two-operation reproducer is exactly one witness.
type Witness struct {
	Violated  Op
	Preceding Op
}

// String renders the witness in one line.
func (w Witness) String() string {
	return fmt.Sprintf("op [%d,%d]->%d violated by preceding [%d,%d]->%d",
		w.Violated.Start, w.Violated.End, w.Violated.Value,
		w.Preceding.Start, w.Preceding.End, w.Preceding.Value)
}

// FirstWitness returns a witness for the earliest-starting violated
// operation (the one Report.FirstViolation indexes), choosing as Preceding
// the completely-preceding operation with the highest value. ok is false
// when the execution is linearizable.
func FirstWitness(ops []Op) (w Witness, ok bool) {
	viols := Violations(ops)
	if len(viols) == 0 {
		return Witness{}, false
	}
	v := viols[0]
	w.Violated = v.Op
	found := false
	for _, prior := range ops {
		if prior.End < v.Op.Start && prior.Value == v.PrecedingMax {
			if !found || opLess(prior, w.Preceding) {
				w.Preceding = prior
				found = true
			}
		}
	}
	return w, found
}

// Recorder collects operations from concurrently running workers. The zero
// value is ready to use.
type Recorder struct {
	mu  sync.Mutex
	ops []Op
}

// NewRecorder returns a Recorder pre-sized for n operations.
func NewRecorder(n int) *Recorder {
	return &Recorder{ops: make([]Op, 0, n)}
}

// Record appends one completed operation. Safe for concurrent use.
func (r *Recorder) Record(start, end, value int64) {
	r.mu.Lock()
	r.ops = append(r.ops, Op{Start: start, End: end, Value: value})
	r.mu.Unlock()
}

// Len returns the number of recorded operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// Ops returns a copy of the recorded operations.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// Analyze runs Analyze over the recorded operations.
func (r *Recorder) Analyze() Report { return Analyze(r.Ops()) }
