// Package faults is the deterministic fault-injection layer for the
// message-passing engine (internal/msgnet): a Plan describes, per link and
// per node, which message deliveries are dropped, duplicated, delayed, or
// reordered, which links are partitioned over which windows, and which
// processors stall or crash-restart. Plans are plain data — serializable
// as JSONL (WritePlan/ReadPlan), generatable from a seed (Generate),
// fuzzable, and shrinkable (Shrink) — so a chaos run is replayable
// bit-for-bit the way a schedule.Concrete reproducer is.
//
// Every fault decision is a pure function of (plan seed, link id, link
// clock): the Injector draws no wall-clock time and no global randomness,
// so the same plan issues the same verdict sequence on every link in every
// run. Which token meets which verdict still depends on goroutine
// scheduling — msgnet is a real concurrent engine — but the quiescent
// invariants the conformance harness checks (gapless permutation, exact
// step tallies) are interleaving-independent, which is exactly what makes
// chaos runs checkable.
//
// Faults are transient by construction: an Injector never fails the same
// delivery more than MaxAttempts times in a row (the verdict is forced to
// deliver afterwards), so any plan — including a fuzzer-generated drop
// rate of 1.0 or a long partition — leaves the engine live. A permanently
// dead link cannot count; a flaky one can, and the retry machinery in
// msgnet is what this package exists to exercise.
package faults

import (
	"fmt"
	"sort"
)

// Limits every Validate-accepted plan respects, chosen so arbitrary
// (fuzzer-built) plans keep chaos runs fast and live: delays and stall
// pauses stay well under a scheduler quantum pile-up, and fault windows
// end after a bounded number of link-clock ticks.
const (
	// MaxDelayNs bounds per-delivery injected latency and stall pauses.
	MaxDelayNs = int64(50_000_000) // 50ms
	// MaxWindow bounds the length (in link-clock ticks) of partition and
	// stall windows.
	MaxWindow = int64(1 << 16)
	// MaxAttempts is the number of consecutive times the Injector may
	// fail one delivery before forcing it through — the transient-fault
	// guarantee that keeps every plan deadlock-free.
	MaxAttempts = 12
)

// Rule is the per-link fault distribution: independent probabilities for
// dropping, duplicating, and reordering a delivery, plus a deterministic
// extra latency of DelayNs + uniform[0, JitterNs).
type Rule struct {
	Drop    float64 `json:"drop,omitempty"`
	Dup     float64 `json:"dup,omitempty"`
	Reorder float64 `json:"reorder,omitempty"`
	DelayNs int64   `json:"delay_ns,omitempty"`
	// JitterNs widens DelayNs to a uniform band; 0 means the fixed delay
	// only.
	JitterNs int64 `json:"jitter_ns,omitempty"`
}

// Zero reports whether the rule injects no faults at all.
func (r Rule) Zero() bool {
	return r.Drop == 0 && r.Dup == 0 && r.Reorder == 0 && r.DelayNs == 0 && r.JitterNs == 0
}

func (r Rule) validate(what string) error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", r.Drop}, {"dup", r.Dup}, {"reorder", r.Reorder}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s %s rate %g outside [0, 1]", what, p.name, p.v)
		}
	}
	if r.DelayNs < 0 || r.DelayNs > MaxDelayNs {
		return fmt.Errorf("faults: %s delay %dns outside [0, %d]", what, r.DelayNs, MaxDelayNs)
	}
	if r.JitterNs < 0 || r.JitterNs > MaxDelayNs {
		return fmt.Errorf("faults: %s jitter %dns outside [0, %d]", what, r.JitterNs, MaxDelayNs)
	}
	return nil
}

// LinkRule overrides the plan's default rule on one link.
type LinkRule struct {
	Link int  `json:"link"`
	Rule Rule `json:"rule"`
}

// Partition cuts a set of links for a window of their link clocks: every
// delivery attempt with clock in [From, To) is dropped. Because retries
// advance the clock, a partition always ends from the sender's point of
// view — it models a transient outage, not a severed wire.
type Partition struct {
	Links []int `json:"links"`
	From  int64 `json:"from"`
	To    int64 `json:"to"`
}

// Stall models a slow or crashed processor over a window of the node's
// inbound-delivery clock: deliveries in [From, To) are delayed by PauseNs
// (a stalled node working through a GC pause or preemption), or dropped
// entirely when Crash is set (the node is down; the sender's retries carry
// the token across the restart).
type Stall struct {
	Node    int   `json:"node"`
	From    int64 `json:"from"`
	To      int64 `json:"to"`
	PauseNs int64 `json:"pause_ns,omitempty"`
	Crash   bool  `json:"crash,omitempty"`
}

// Plan is a complete serializable chaos scenario. Net/Width/Procs/Ops are
// replay hints naming the workload the plan was generated against (the
// way schedule.Concrete carries Net/Width); the fault content is Seed,
// Default, Links, Partitions, and Stalls.
type Plan struct {
	Net   string
	Width int
	Procs int
	Ops   int
	// Seed drives every probabilistic verdict; two runs of the same plan
	// issue identical verdict sequences per link.
	Seed int64
	// Default applies to every link without an override in Links.
	Default Rule
	// Links holds per-link overrides, sorted by link id.
	Links []LinkRule
	// Partitions and Stalls are the windowed outage events.
	Partitions []Partition
	Stalls     []Stall
}

// Validate checks rates, delays, and windows against the package limits.
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("faults: nil plan")
	}
	if err := p.Default.validate("default"); err != nil {
		return err
	}
	for _, lr := range p.Links {
		if lr.Link < 0 {
			return fmt.Errorf("faults: negative link id %d", lr.Link)
		}
		if err := lr.Rule.validate(fmt.Sprintf("link %d", lr.Link)); err != nil {
			return err
		}
	}
	for i, part := range p.Partitions {
		if len(part.Links) == 0 {
			return fmt.Errorf("faults: partition %d cuts no links", i)
		}
		for _, l := range part.Links {
			if l < 0 {
				return fmt.Errorf("faults: partition %d cuts negative link %d", i, l)
			}
		}
		if err := window(part.From, part.To, fmt.Sprintf("partition %d", i)); err != nil {
			return err
		}
	}
	for i, s := range p.Stalls {
		if s.Node < 0 {
			return fmt.Errorf("faults: stall %d on negative node %d", i, s.Node)
		}
		if s.PauseNs < 0 || s.PauseNs > MaxDelayNs {
			return fmt.Errorf("faults: stall %d pause %dns outside [0, %d]", i, s.PauseNs, MaxDelayNs)
		}
		if err := window(s.From, s.To, fmt.Sprintf("stall %d", i)); err != nil {
			return err
		}
	}
	return nil
}

func window(from, to int64, what string) error {
	if from < 0 || to < from {
		return fmt.Errorf("faults: %s window [%d, %d) is not a valid interval", what, from, to)
	}
	if to-from > MaxWindow {
		return fmt.Errorf("faults: %s window length %d exceeds %d", what, to-from, MaxWindow)
	}
	return nil
}

// RuleFor returns the effective rule on the given link.
func (p *Plan) RuleFor(link int) Rule {
	for _, lr := range p.Links {
		if lr.Link == link {
			return lr.Rule
		}
	}
	return p.Default
}

// Active reports whether the plan can inject any fault at all; msgnet
// skips the injection path entirely for inactive plans.
func (p *Plan) Active() bool {
	if !p.Default.Zero() || len(p.Partitions) > 0 || len(p.Stalls) > 0 {
		return true
	}
	for _, lr := range p.Links {
		if !lr.Rule.Zero() {
			return true
		}
	}
	return false
}

// Clone deep-copies the plan; the shrinker mutates clones.
func (p *Plan) Clone() *Plan {
	out := &Plan{
		Net: p.Net, Width: p.Width, Procs: p.Procs, Ops: p.Ops,
		Seed: p.Seed, Default: p.Default,
	}
	out.Links = append([]LinkRule(nil), p.Links...)
	out.Partitions = make([]Partition, len(p.Partitions))
	for i, part := range p.Partitions {
		out.Partitions[i] = Partition{
			Links: append([]int(nil), part.Links...),
			From:  part.From, To: part.To,
		}
	}
	out.Stalls = append([]Stall(nil), p.Stalls...)
	return out
}

// normalize sorts the override and event lists so serialization is
// canonical: two equal plans always write identical bytes.
func (p *Plan) normalize() {
	sort.Slice(p.Links, func(i, j int) bool { return p.Links[i].Link < p.Links[j].Link })
	sort.Slice(p.Partitions, func(i, j int) bool {
		a, b := p.Partitions[i], p.Partitions[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	for i := range p.Partitions {
		sort.Ints(p.Partitions[i].Links)
	}
	sort.Slice(p.Stalls, func(i, j int) bool {
		a, b := p.Stalls[i], p.Stalls[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.From < b.From
	})
}

// String summarizes the plan for log lines.
func (p *Plan) String() string {
	return fmt.Sprintf("plan{seed %d, drop %.3g/dup %.3g/reorder %.3g, delay %d+%dns, %d link rules, %d partitions, %d stalls}",
		p.Seed, p.Default.Drop, p.Default.Dup, p.Default.Reorder,
		p.Default.DelayNs, p.Default.JitterNs, len(p.Links), len(p.Partitions), len(p.Stalls))
}
