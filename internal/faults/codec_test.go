package faults

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func samplePlan() *Plan {
	return &Plan{
		Net: "bitonic", Width: 4, Procs: 3, Ops: 200, Seed: 77,
		Default: Rule{Drop: 0.2, DelayNs: 1000},
		Links: []LinkRule{
			{Link: 5, Rule: Rule{Dup: 0.4}},
			{Link: 1, Rule: Rule{Reorder: 0.1, JitterNs: 30}},
		},
		Partitions: []Partition{
			{Links: []int{3, 0}, From: 10, To: 20},
			{Links: []int{2}, From: 0, To: 5},
		},
		Stalls: []Stall{
			{Node: 4, From: 0, To: 8, Crash: true},
			{Node: 1, From: 2, To: 3, PauseNs: 500},
		},
	}
}

func TestPlanRoundTrip(t *testing.T) {
	p := samplePlan()
	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := samplePlan()
	want.normalize()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestCanonicalBytes: equal plans — regardless of section ordering —
// serialize to identical bytes, and re-serializing a read plan is a fixed
// point. This is the byte-for-byte reproducibility contract the chaos CI
// job checks end to end.
func TestCanonicalBytes(t *testing.T) {
	a := samplePlan()
	b := samplePlan()
	// Scramble b's section order; normalize must undo it.
	b.Links[0], b.Links[1] = b.Links[1], b.Links[0]
	b.Stalls[0], b.Stalls[1] = b.Stalls[1], b.Stalls[0]
	var ba, bb bytes.Buffer
	if err := WritePlan(&ba, a); err != nil {
		t.Fatal(err)
	}
	if err := WritePlan(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("equal plans serialized differently:\n%s\nvs\n%s", ba.String(), bb.String())
	}
	rt, err := ReadPlan(bytes.NewReader(ba.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var bc bytes.Buffer
	if err := WritePlan(&bc, rt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bc.Bytes()) {
		t.Error("write-read-write is not a fixed point")
	}
}

// TestGeneratedPlansRoundTrip fuzz-lite: every generated plan must survive
// the codec unchanged.
func TestGeneratedPlansRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for k := 0; k < 50; k++ {
		p := Generate(rng, 12, 6, GenOptions{})
		var buf bytes.Buffer
		if err := WritePlan(&buf, p); err != nil {
			t.Fatal(err)
		}
		got, err := ReadPlan(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("plan %d: %v\n%s", k, err, buf.String())
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("plan %d round trip mismatch", k)
		}
	}
}

func TestReadPlanRejects(t *testing.T) {
	good := func() string {
		var buf bytes.Buffer
		if err := WritePlan(&buf, samplePlan()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()
	cases := []struct {
		name, input string
	}{
		{"empty", ""},
		{"garbage header", "not json\n"},
		{"trailing data", good + "{\"link\":9,\"rule\":{}}\n"},
		{"truncated sections", strings.SplitAfter(good, "\n")[0]},
		{"negative count", `{"seed":1,"default":{},"links":-1,"partitions":0,"stalls":0}` + "\n"},
		{"invalid content", `{"seed":1,"default":{"drop":7},"links":0,"partitions":0,"stalls":0}` + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadPlan(strings.NewReader(tc.input)); err == nil {
				t.Error("accepted")
			}
		})
	}
	if err := WritePlan(&bytes.Buffer{}, nil); err == nil {
		t.Error("WritePlan accepted nil plan")
	}
}
