package faults

// Predicate reports whether a candidate plan still fails — still triggers
// the invariant breach being minimized.
type Predicate func(*Plan) bool

// shrinkBudget caps predicate evaluations, mirroring the conformance
// schedule shrinker: greedy minimization converges far below this on real
// failures, and each evaluation reruns a whole chaos workload.
const shrinkBudget = 600

// Shrink greedily minimizes a failing plan while the predicate keeps
// failing, using the same pass structure as the conformance schedule
// shrinker (conformance.Shrink): it drops whole sections first (stalls,
// partitions, link overrides), then zeroes or halves the default rule's
// fields, then narrows the surviving windows. The result is a minimal
// chaos reproducer — typically the one fault ingredient that triggers the
// breach — suitable for WritePlan and replay via `adversary -faults`.
func Shrink(p *Plan, fails Predicate) *Plan {
	cur := p.Clone()
	if !fails(cur) {
		return cur // not failing: nothing to preserve, return as-is
	}
	budget := shrinkBudget
	try := func(cand *Plan) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if fails(cand) {
			cur = cand
			return true
		}
		return false
	}
	for improved := true; improved && budget > 0; {
		improved = false
		// Pass 1: drop whole events and overrides, highest index first so
		// earlier indices stay stable while iterating.
		for i := len(cur.Stalls) - 1; i >= 0; i-- {
			cand := cur.Clone()
			cand.Stalls = append(cand.Stalls[:i], cand.Stalls[i+1:]...)
			if try(cand) {
				improved = true
			}
		}
		for i := len(cur.Partitions) - 1; i >= 0; i-- {
			cand := cur.Clone()
			cand.Partitions = append(cand.Partitions[:i], cand.Partitions[i+1:]...)
			if try(cand) {
				improved = true
			}
		}
		for i := len(cur.Links) - 1; i >= 0; i-- {
			cand := cur.Clone()
			cand.Links = append(cand.Links[:i], cand.Links[i+1:]...)
			if try(cand) {
				improved = true
			}
		}
		// Pass 2: simplify the default rule — zero each field, else halve
		// it toward zero.
		if shrinkRule(&cur, try, func(c *Plan) *Rule { return &c.Default }) {
			improved = true
		}
		for i := range cur.Links {
			i := i
			if shrinkRule(&cur, try, func(c *Plan) *Rule { return &c.Links[i].Rule }) {
				improved = true
			}
		}
		// Pass 3: narrow surviving windows (halve the length) and pull
		// them toward clock zero.
		for i := range cur.Partitions {
			if shrinkWindow(&cur, try,
				func(c *Plan) (*int64, *int64) { return &c.Partitions[i].From, &c.Partitions[i].To }) {
				improved = true
			}
		}
		for i := range cur.Stalls {
			if shrinkWindow(&cur, try,
				func(c *Plan) (*int64, *int64) { return &c.Stalls[i].From, &c.Stalls[i].To }) {
				improved = true
			}
		}
	}
	return cur
}

// shrinkRule minimizes one rule in place: each non-zero field is first
// zeroed, then halved, keeping only transformations that preserve failure.
func shrinkRule(cur **Plan, try func(*Plan) bool, rule func(*Plan) *Rule) bool {
	improved := false
	zero := func(get func(*Rule) *float64) {
		if *get(rule(*cur)) == 0 {
			return
		}
		cand := (*cur).Clone()
		*get(rule(cand)) = 0
		if try(cand) {
			improved = true
			return
		}
		cand = (*cur).Clone()
		*get(rule(cand)) /= 2
		if try(cand) {
			improved = true
		}
	}
	zero(func(r *Rule) *float64 { return &r.Drop })
	zero(func(r *Rule) *float64 { return &r.Dup })
	zero(func(r *Rule) *float64 { return &r.Reorder })
	zeroInt := func(get func(*Rule) *int64) {
		if *get(rule(*cur)) == 0 {
			return
		}
		cand := (*cur).Clone()
		*get(rule(cand)) = 0
		if try(cand) {
			improved = true
			return
		}
		cand = (*cur).Clone()
		*get(rule(cand)) /= 2
		if try(cand) {
			improved = true
		}
	}
	zeroInt(func(r *Rule) *int64 { return &r.DelayNs })
	zeroInt(func(r *Rule) *int64 { return &r.JitterNs })
	return improved
}

// shrinkWindow halves a window's length, then shifts it toward clock zero.
func shrinkWindow(cur **Plan, try func(*Plan) bool, win func(*Plan) (*int64, *int64)) bool {
	improved := false
	if from, to := win(*cur); *to-*from > 1 {
		length := *to - *from
		cand := (*cur).Clone()
		_, cto := win(cand)
		*cto -= length / 2
		if try(cand) {
			improved = true
		}
	}
	if from, _ := win(*cur); *from > 0 {
		cand := (*cur).Clone()
		cfrom, cto := win(cand)
		*cto -= *cfrom
		*cfrom = 0
		if try(cand) {
			improved = true
		}
	}
	return improved
}
