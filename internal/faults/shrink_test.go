package faults

import "testing"

// TestShrinkToSingleIngredient: when only one fault ingredient triggers
// the failure, the shrinker must strip everything else.
func TestShrinkToSingleIngredient(t *testing.T) {
	p := &Plan{
		Seed:    1,
		Default: Rule{Drop: 0.8, Dup: 0.5, Reorder: 0.5, DelayNs: 100, JitterNs: 100},
		Links: []LinkRule{
			{Link: 0, Rule: Rule{Dup: 0.9}},
			{Link: 3, Rule: Rule{Drop: 0.9}},
		},
		Partitions: []Partition{{Links: []int{1}, From: 0, To: 10}},
		Stalls:     []Stall{{Node: 0, From: 0, To: 10, Crash: true}},
	}
	// The "bug" only needs a default drop rate above 0.05.
	fails := func(c *Plan) bool { return c.Default.Drop > 0.05 }
	min := Shrink(p, fails)
	if !fails(min) {
		t.Fatal("shrunk plan no longer fails")
	}
	if len(min.Links) != 0 || len(min.Partitions) != 0 || len(min.Stalls) != 0 {
		t.Errorf("sections not stripped: %+v", min)
	}
	if min.Default.Dup != 0 || min.Default.Reorder != 0 || min.Default.DelayNs != 0 || min.Default.JitterNs != 0 {
		t.Errorf("unrelated default fields not zeroed: %+v", min.Default)
	}
	if min.Default.Drop >= p.Default.Drop {
		t.Errorf("drop rate not reduced: %g", min.Default.Drop)
	}
}

// TestShrinkNonFailingReturnsClone: a plan the predicate passes comes back
// unchanged (and not aliased to the input).
func TestShrinkNonFailingReturnsClone(t *testing.T) {
	p := &Plan{Seed: 2, Default: Rule{Drop: 0.5}, Stalls: []Stall{{Node: 0, From: 0, To: 3}}}
	got := Shrink(p, func(*Plan) bool { return false })
	if got == p {
		t.Error("Shrink returned the input pointer")
	}
	if got.Default != p.Default || len(got.Stalls) != 1 {
		t.Errorf("non-failing plan mutated: %+v", got)
	}
}

// TestShrinkAlreadyMinimal: a minimal failing plan survives shrinking
// intact.
func TestShrinkAlreadyMinimal(t *testing.T) {
	p := &Plan{Seed: 3, Partitions: []Partition{{Links: []int{0}, From: 0, To: 1}}}
	min := Shrink(p, func(c *Plan) bool { return len(c.Partitions) == 1 })
	if len(min.Partitions) != 1 || min.Partitions[0].To-min.Partitions[0].From != 1 {
		t.Errorf("minimal plan changed: %+v", min)
	}
}

// TestShrinkWindowNarrows: a window-dependent failure keeps a window but
// gets it shortened and pulled toward clock zero.
func TestShrinkWindowNarrows(t *testing.T) {
	p := &Plan{
		Seed:       4,
		Partitions: []Partition{{Links: []int{0}, From: 40, To: 200}},
		Stalls:     []Stall{{Node: 0, From: 8, To: 16, PauseNs: 100}},
	}
	fails := func(c *Plan) bool {
		return len(c.Partitions) == 1 && c.Partitions[0].To > c.Partitions[0].From
	}
	min := Shrink(p, fails)
	if len(min.Stalls) != 0 {
		t.Errorf("irrelevant stall kept: %+v", min.Stalls)
	}
	win := min.Partitions[0]
	if win.From != 0 || win.To-win.From >= 160 {
		t.Errorf("window not narrowed/shifted: [%d, %d)", win.From, win.To)
	}
	if err := min.Validate(); err != nil {
		t.Error(err)
	}
}

// TestShrinkRespectsBudget: the shrinker terminates against an
// always-failing predicate without exceeding its evaluation budget.
func TestShrinkRespectsBudget(t *testing.T) {
	p := &Plan{Seed: 5, Default: Rule{Drop: 1, Dup: 1, Reorder: 1, DelayNs: MaxDelayNs, JitterNs: MaxDelayNs}}
	calls := 0
	min := Shrink(p, func(*Plan) bool { calls++; return true })
	if calls > shrinkBudget+1 { // +1 for the initial confirmation run
		t.Errorf("predicate evaluated %d times, budget %d", calls, shrinkBudget)
	}
	if !min.Default.Zero() {
		t.Errorf("always-failing plan should shrink to the zero rule, got %+v", min.Default)
	}
}
