package faults

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestGenerateValidAndDeterministic: generated plans always validate, and
// a fixed-seed rng reproduces the identical plan sequence.
func TestGenerateValidAndDeterministic(t *testing.T) {
	a := rand.New(rand.NewSource(17))
	b := rand.New(rand.NewSource(17))
	active := 0
	for k := 0; k < 100; k++ {
		pa := Generate(a, 10, 5, GenOptions{})
		pb := Generate(b, 10, 5, GenOptions{})
		if err := pa.Validate(); err != nil {
			t.Fatalf("plan %d invalid: %v", k, err)
		}
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("plan %d diverged across same-seed rngs", k)
		}
		if pa.Active() {
			active++
		}
		for _, lr := range pa.Links {
			if lr.Link >= 10 {
				t.Fatalf("plan %d link override %d out of range", k, lr.Link)
			}
		}
		for _, s := range pa.Stalls {
			if s.Node >= 5 {
				t.Fatalf("plan %d stall node %d out of range", k, s.Node)
			}
		}
	}
	if active == 0 {
		t.Error("100 generated plans, none active")
	}
}

// TestGenerateDegenerateNetwork: zero links/nodes must not panic and must
// produce a plan with no per-link or per-node content.
func TestGenerateDegenerateNetwork(t *testing.T) {
	p := Generate(rand.New(rand.NewSource(1)), 0, 0, GenOptions{})
	if len(p.Links) != 0 || len(p.Partitions) != 0 || len(p.Stalls) != 0 {
		t.Errorf("degenerate network grew sections: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestChaosClamps(t *testing.T) {
	p := Chaos(1, 2.5, MaxDelayNs*3)
	if p.Default.Drop != 1 || p.Default.Dup != 0.5 || p.Default.DelayNs != MaxDelayNs {
		t.Errorf("over-range inputs not clamped: %+v", p.Default)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	p = Chaos(1, -3, -5)
	if p.Active() {
		t.Errorf("negative intensity produced an active plan: %+v", p.Default)
	}
	if got := Chaos(9, 0.2, 100); got.Default.Drop != 0.2 || got.Default.Reorder != 0.1 || got.Seed != 9 {
		t.Errorf("in-range chaos plan wrong: %+v", got)
	}
}
