package faults

import "testing"

// TestVerdictSequenceDeterministic: two injectors built from the same plan
// issue identical verdict sequences per link, the property every fixed-seed
// chaos reproducer depends on.
func TestVerdictSequenceDeterministic(t *testing.T) {
	plan := &Plan{
		Seed:       1234,
		Default:    Rule{Drop: 0.4, Dup: 0.3, Reorder: 0.3, DelayNs: 100, JitterNs: 700},
		Links:      []LinkRule{{Link: 1, Rule: Rule{Drop: 0.9}}},
		Partitions: []Partition{{Links: []int{2}, From: 3, To: 9}},
		Stalls:     []Stall{{Node: 0, From: 0, To: 5, PauseNs: 50}},
	}
	dests := []int{0, 1, 1, 2}
	a := NewInjector(plan, dests)
	b := NewInjector(plan, dests)
	for link := 0; link < len(dests); link++ {
		for k := 0; k < 200; k++ {
			va, vb := a.Next(link, 0), b.Next(link, 0)
			if va != vb {
				t.Fatalf("link %d step %d: verdicts diverge: %+v vs %+v", link, k, va, vb)
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestSeedChangesVerdicts: different seeds must produce different decision
// sequences (with overwhelming probability at these sample sizes).
func TestSeedChangesVerdicts(t *testing.T) {
	mk := func(seed int64) *Injector {
		return NewInjector(&Plan{Seed: seed, Default: Rule{Drop: 0.5}}, []int{0})
	}
	a, b := mk(1), mk(2)
	same := true
	for k := 0; k < 64; k++ {
		if a.Next(0, 0).Drop != b.Next(0, 0).Drop {
			same = false
		}
	}
	if same {
		t.Error("64 verdicts identical across different seeds")
	}
}

// TestMaxAttemptsForcesDelivery: once attempt reaches MaxAttempts, no
// verdict source — rule drop, partition, crash stall — may lose the
// message.
func TestMaxAttemptsForcesDelivery(t *testing.T) {
	plan := &Plan{
		Seed:       5,
		Default:    Rule{Drop: 1},
		Partitions: []Partition{{Links: []int{0}, From: 0, To: MaxWindow}},
		Stalls:     []Stall{{Node: 0, From: 0, To: MaxWindow, Crash: true}},
	}
	in := NewInjector(plan, []int{0})
	forced := 0
	for k := 0; k < 50; k++ {
		v := in.Next(0, MaxAttempts)
		if v.Drop {
			t.Fatalf("attempt %d at MaxAttempts still dropped", k)
		}
		if v.Forced {
			forced++
		}
	}
	if in.Stats().Forced == 0 {
		t.Error("forced deliveries not tallied")
	}
	// Every overridden loss here fires the valve; the verdict must say so,
	// because engines trip the flight recorder on it.
	if forced != 50 {
		t.Errorf("Forced set on %d of 50 valve verdicts, want all", forced)
	}
	if v := in.Next(0, 0); v.Forced && !v.Drop {
		t.Error("Forced set on a verdict the valve did not override")
	}
}

// TestInjectorDest pins the link→destination accessor tracers label retry
// events with.
func TestInjectorDest(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1}, []int{3, 0, 7})
	for l, want := range []int{3, 0, 7} {
		if got := in.Dest(l); got != want {
			t.Errorf("Dest(%d) = %d, want %d", l, got, want)
		}
	}
	if in.Dest(-1) != -1 || in.Dest(3) != -1 {
		t.Error("out-of-range Dest should be -1")
	}
}

// TestPartitionWindowEnds: drop verdicts stop once the link clock passes
// the partition's To — retries advancing the clock is the liveness
// mechanism.
func TestPartitionWindowEnds(t *testing.T) {
	plan := &Plan{Seed: 9, Partitions: []Partition{{Links: []int{0}, From: 0, To: 10}}}
	in := NewInjector(plan, []int{0})
	drops := 0
	for k := 0; k < 30; k++ {
		if in.Next(0, 0).Drop {
			drops++
		}
	}
	if drops != 10 {
		t.Errorf("partition [0,10) dropped %d of 30 deliveries, want exactly 10", drops)
	}
	if got := in.Stats().PartitionDrops; got != 10 {
		t.Errorf("PartitionDrops = %d, want 10", got)
	}
}

// TestStallWindows: a non-crash stall delays, a crash stall drops, both on
// the destination node's clock.
func TestStallWindows(t *testing.T) {
	plan := &Plan{Seed: 2, Stalls: []Stall{
		{Node: 0, From: 0, To: 4, PauseNs: 123},
		{Node: 1, From: 0, To: 4, Crash: true},
	}}
	in := NewInjector(plan, []int{0, 1})
	for k := 0; k < 4; k++ {
		if v := in.Next(0, 0); v.Drop || v.DelayNs != 123 {
			t.Fatalf("stalled delivery %d: %+v", k, v)
		}
		if v := in.Next(1, 0); !v.Drop {
			t.Fatalf("crashed-node delivery %d not dropped: %+v", k, v)
		}
	}
	if v := in.Next(0, 0); v.DelayNs != 0 {
		t.Errorf("stall leaked past window: %+v", v)
	}
	if v := in.Next(1, 0); v.Drop {
		t.Errorf("crash leaked past window: %+v", v)
	}
	st := in.Stats()
	if st.Stalled != 4 || st.CrashDrops != 4 {
		t.Errorf("stats = %+v, want Stalled 4 CrashDrops 4", st)
	}
}

// TestRateExtremes: rate 1 always faults, rate 0 never does.
func TestRateExtremes(t *testing.T) {
	in := NewInjector(&Plan{Seed: 8, Default: Rule{Dup: 1, Reorder: 1}}, []int{0})
	for k := 0; k < 100; k++ {
		v := in.Next(0, 0)
		if !v.Dup || !v.Reorder {
			t.Fatalf("rate-1 delivery %d missing faults: %+v", k, v)
		}
		if v.Drop || v.DelayNs != 0 {
			t.Fatalf("rate-0 fault fired on delivery %d: %+v", k, v)
		}
	}
	st := in.Stats()
	if st.Dups != 100 || st.Reorders != 100 || st.Drops != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestJitterBounded: injected delay stays within [DelayNs, DelayNs+JitterNs).
func TestJitterBounded(t *testing.T) {
	in := NewInjector(&Plan{Seed: 4, Default: Rule{DelayNs: 100, JitterNs: 50}}, []int{0})
	varied := false
	for k := 0; k < 200; k++ {
		v := in.Next(0, 0)
		if v.DelayNs < 100 || v.DelayNs >= 150 {
			t.Fatalf("delivery %d delay %d outside [100, 150)", k, v.DelayNs)
		}
		if v.DelayNs != 100 {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter never varied the delay")
	}
}

// TestOutOfRangeEntriesIgnored: plan content referring past the network's
// links/nodes must not panic or fault anything.
func TestOutOfRangeEntriesIgnored(t *testing.T) {
	plan := &Plan{
		Seed:       6,
		Links:      []LinkRule{{Link: 99, Rule: Rule{Drop: 1}}},
		Partitions: []Partition{{Links: []int{99}, From: 0, To: 5}},
		Stalls:     []Stall{{Node: 99, From: 0, To: 5, Crash: true}},
	}
	in := NewInjector(plan, []int{0})
	for k := 0; k < 20; k++ {
		if v := in.Next(0, 0); v.Drop || v.Dup || v.Reorder || v.DelayNs != 0 {
			t.Fatalf("out-of-range plan entry faulted delivery %d: %+v", k, v)
		}
	}
}

func TestStatsFaults(t *testing.T) {
	s := Stats{Drops: 1, Dups: 2, Delays: 3, Reorders: 4, PartitionDrops: 5, CrashDrops: 6, Stalled: 7, Forced: 100}
	if got := s.Faults(); got != 28 {
		t.Errorf("Faults() = %d, want 28 (Forced excluded)", got)
	}
}
