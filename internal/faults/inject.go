package faults

import "sync/atomic"

// Verdict is the injector's decision for one delivery attempt.
type Verdict struct {
	// Drop means the message is lost; the sender should back off and
	// retry.
	Drop bool
	// Dup means a second copy of the message is delivered; the receiver
	// deduplicates by token identity.
	Dup bool
	// Reorder means delivery should happen asynchronously so later sends
	// on the link can overtake this message.
	Reorder bool
	// DelayNs is extra latency to impose before delivery (rule delay,
	// jitter, and any stall pause, summed).
	DelayNs int64
	// Forced means a loss verdict was overridden because the sender
	// exhausted MaxAttempts — the liveness valve fired. The delivery goes
	// through; observers treat it as a black-box moment worth dumping.
	Forced bool
}

// Stats is a snapshot of the injector's fault tallies.
type Stats struct {
	// Attempts counts every verdict issued.
	Attempts int64
	// Drops, Dups, Delays, Reorders count rule-driven faults.
	Drops, Dups, Delays, Reorders int64
	// PartitionDrops and CrashDrops count window-driven losses; Stalled
	// counts deliveries a stall window delayed.
	PartitionDrops, CrashDrops, Stalled int64
	// Forced counts deliveries pushed through after MaxAttempts
	// consecutive failures — the transient-fault liveness valve.
	Forced int64
}

// Faults returns the total number of injected fault events.
func (s Stats) Faults() int64 {
	return s.Drops + s.Dups + s.Delays + s.Reorders + s.PartitionDrops + s.CrashDrops + s.Stalled
}

// Injector issues deterministic fault verdicts for a running network. One
// injector serves all links concurrently; every method is lock-free.
type Injector struct {
	plan  *Plan
	rules []Rule         // effective rule per link
	dests []int          // destination node per link
	links []atomic.Int64 // per-link delivery clocks
	nodes []atomic.Int64 // per-node inbound clocks
	parts [][]Partition  // partitions indexed by link
	stall [][]Stall      // stalls indexed by node

	attempts, drops, dups, delays, reorders atomic.Int64
	partDrops, crashDrops, stalled, forced  atomic.Int64
}

// NewInjector builds an injector for a network whose link l delivers into
// node dests[l]. Rules, partitions, and stalls referring to links or nodes
// beyond the table are ignored (a plan generated for a larger network
// degrades gracefully). The plan must be validated by the caller.
func NewInjector(p *Plan, dests []int) *Injector {
	nodes := 0
	for _, d := range dests {
		if d+1 > nodes {
			nodes = d + 1
		}
	}
	in := &Injector{
		plan:  p,
		rules: make([]Rule, len(dests)),
		dests: append([]int(nil), dests...),
		links: make([]atomic.Int64, len(dests)),
		nodes: make([]atomic.Int64, nodes),
		parts: make([][]Partition, len(dests)),
		stall: make([][]Stall, nodes),
	}
	for l := range in.rules {
		in.rules[l] = p.RuleFor(l)
	}
	for _, part := range p.Partitions {
		for _, l := range part.Links {
			if l < len(dests) {
				in.parts[l] = append(in.parts[l], part)
			}
		}
	}
	for _, s := range p.Stalls {
		if s.Node < nodes {
			in.stall[s.Node] = append(in.stall[s.Node], s)
		}
	}
	return in
}

// Hash streams separating the independent per-delivery decisions.
const (
	streamDrop = iota
	streamDup
	streamReorder
	streamJitter
)

// Next issues the verdict for one delivery attempt on link. attempt is the
// sender's consecutive-failure count for this message: once it reaches
// MaxAttempts the verdict can no longer be a loss, so every message is
// eventually delivered under any plan. Each call advances the link (and
// destination node) clock, which is what ends partition and stall windows
// even under pure retry traffic.
func (in *Injector) Next(link, attempt int) Verdict {
	in.attempts.Add(1)
	lc := in.links[link].Add(1) - 1
	node := in.dests[link]
	nc := in.nodes[node].Add(1) - 1
	exhausted := attempt >= MaxAttempts

	v := Verdict{}
	for _, part := range in.parts[link] {
		if lc >= part.From && lc < part.To {
			if exhausted {
				in.forced.Add(1)
				v.Forced = true
				break
			}
			in.partDrops.Add(1)
			v.Drop = true
			return v
		}
	}
	for _, s := range in.stall[node] {
		if nc >= s.From && nc < s.To {
			if s.Crash {
				if exhausted {
					in.forced.Add(1)
					v.Forced = true
					continue
				}
				in.crashDrops.Add(1)
				v.Drop = true
				return v
			}
			in.stalled.Add(1)
			v.DelayNs += s.PauseNs
		}
	}
	r := in.rules[link]
	if r.Drop > 0 && in.uniform(link, lc, streamDrop) < r.Drop {
		if exhausted {
			in.forced.Add(1)
			v.Forced = true
		} else {
			in.drops.Add(1)
			v.Drop = true
			return v
		}
	}
	if r.Dup > 0 && in.uniform(link, lc, streamDup) < r.Dup {
		in.dups.Add(1)
		v.Dup = true
	}
	if r.Reorder > 0 && in.uniform(link, lc, streamReorder) < r.Reorder {
		in.reorders.Add(1)
		v.Reorder = true
	}
	if r.DelayNs > 0 || r.JitterNs > 0 {
		d := r.DelayNs
		if r.JitterNs > 0 {
			d += int64(in.uniform(link, lc, streamJitter) * float64(r.JitterNs))
		}
		if d > 0 {
			in.delays.Add(1)
			v.DelayNs += d
		}
	}
	return v
}

// Links returns the number of links the injector serves.
func (in *Injector) Links() int { return len(in.dests) }

// Dest returns the destination node of link, or -1 if link is out of
// range. Tracers use it to label retry events with the hop they stalled
// on.
func (in *Injector) Dest(link int) int {
	if link < 0 || link >= len(in.dests) {
		return -1
	}
	return in.dests[link]
}

// Plan returns the plan the injector executes.
func (in *Injector) Plan() *Plan { return in.plan }

// Stats snapshots the fault tallies.
func (in *Injector) Stats() Stats {
	return Stats{
		Attempts: in.attempts.Load(),
		Drops:    in.drops.Load(), Dups: in.dups.Load(),
		Delays: in.delays.Load(), Reorders: in.reorders.Load(),
		PartitionDrops: in.partDrops.Load(), CrashDrops: in.crashDrops.Load(),
		Stalled: in.stalled.Load(), Forced: in.forced.Load(),
	}
}

// uniform derives a deterministic uniform in [0, 1) for one decision
// stream of one delivery: a pure function of (seed, link, clock, stream),
// independent of goroutine scheduling and wall time.
func (in *Injector) uniform(link int, clock int64, stream uint64) float64 {
	h := mix(uint64(in.plan.Seed) ^ uint64(link)*0x9E3779B97F4A7C15 ^ uint64(clock)*0xBF58476D1CE4E5B9 ^ stream*0x94D049BB133111EB)
	return float64(h>>11) / (1 << 53)
}

// mix is the splitmix64 finalizer: a strong, allocation-free 64-bit
// mixer.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
