package faults

import "math/rand"

// GenOptions tunes the random-plan generator.
type GenOptions struct {
	// MaxRate bounds each drop/dup/reorder probability (default 0.25).
	MaxRate float64
	// MaxDelayNs bounds injected delays and stall pauses (default 20µs —
	// large enough to scramble channel scheduling, small enough that
	// chaos soaks stay fast).
	MaxDelayNs int64
	// MaxWindow bounds partition and stall window lengths in link-clock
	// ticks (default 48).
	MaxWindow int64
	// MaxLinkRules, MaxPartitions, MaxStalls bound the section sizes
	// (defaults 4, 2, 2).
	MaxLinkRules, MaxPartitions, MaxStalls int
}

func (o GenOptions) withDefaults() GenOptions {
	if o.MaxRate <= 0 {
		o.MaxRate = 0.25
	}
	if o.MaxDelayNs <= 0 {
		o.MaxDelayNs = 20_000
	}
	if o.MaxWindow <= 0 {
		o.MaxWindow = 48
	}
	if o.MaxLinkRules <= 0 {
		o.MaxLinkRules = 4
	}
	if o.MaxPartitions <= 0 {
		o.MaxPartitions = 2
	}
	if o.MaxStalls <= 0 {
		o.MaxStalls = 2
	}
	return o
}

// genRule draws one fault rule; each field is zero half the time so the
// generator covers sparse plans (single fault kind) as well as dense ones.
func genRule(rng *rand.Rand, opts GenOptions) Rule {
	var r Rule
	if rng.Intn(2) == 0 {
		r.Drop = rng.Float64() * opts.MaxRate
	}
	if rng.Intn(2) == 0 {
		r.Dup = rng.Float64() * opts.MaxRate
	}
	if rng.Intn(2) == 0 {
		r.Reorder = rng.Float64() * opts.MaxRate
	}
	if rng.Intn(2) == 0 {
		r.DelayNs = rng.Int63n(opts.MaxDelayNs + 1)
	}
	if rng.Intn(2) == 0 {
		r.JitterNs = rng.Int63n(opts.MaxDelayNs + 1)
	}
	return r
}

// Generate draws one random, valid chaos plan for a network with the given
// link and node counts. The result is a deterministic function of the
// rng's state, so a fixed-seed rng reproduces the same plan sequence
// byte-for-byte (after WritePlan's normalization).
func Generate(rng *rand.Rand, links, nodes int, opts GenOptions) *Plan {
	opts = opts.withDefaults()
	p := &Plan{Seed: rng.Int63(), Default: genRule(rng, opts)}
	if links > 0 {
		for k, n := 0, rng.Intn(opts.MaxLinkRules+1); k < n; k++ {
			p.Links = append(p.Links, LinkRule{Link: rng.Intn(links), Rule: genRule(rng, opts)})
		}
		for k, n := 0, rng.Intn(opts.MaxPartitions+1); k < n; k++ {
			cut := 1 + rng.Intn(links)
			seen := make([]int, 0, cut)
			for len(seen) < cut {
				seen = append(seen, rng.Intn(links))
			}
			from := rng.Int63n(4 * opts.MaxWindow)
			p.Partitions = append(p.Partitions, Partition{
				Links: seen, From: from, To: from + 1 + rng.Int63n(opts.MaxWindow),
			})
		}
	}
	if nodes > 0 {
		for k, n := 0, rng.Intn(opts.MaxStalls+1); k < n; k++ {
			from := rng.Int63n(4 * opts.MaxWindow)
			s := Stall{
				Node: rng.Intn(nodes),
				From: from, To: from + 1 + rng.Int63n(opts.MaxWindow),
				Crash: rng.Intn(2) == 0,
			}
			if !s.Crash {
				s.PauseNs = rng.Int63n(opts.MaxDelayNs + 1)
			}
			p.Stalls = append(p.Stalls, s)
		}
	}
	p.normalize()
	return p
}

// Chaos builds the uniform all-links plan the CLIs expose as a single
// intensity knob: drop rate = intensity, duplication and reordering at
// half of it, plus delayNs of fixed per-delivery latency (the driver's
// injected W). Intensity is clamped into [0, 1].
func Chaos(seed int64, intensity float64, delayNs int64) *Plan {
	if intensity < 0 {
		intensity = 0
	}
	if intensity > 1 {
		intensity = 1
	}
	if delayNs < 0 {
		delayNs = 0
	}
	if delayNs > MaxDelayNs {
		delayNs = MaxDelayNs
	}
	return &Plan{
		Seed: seed,
		Default: Rule{
			Drop: intensity, Dup: intensity / 2, Reorder: intensity / 2,
			DelayNs: delayNs,
		},
	}
}
