package faults

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		ok   bool
	}{
		{"empty", &Plan{}, true},
		{"full valid", &Plan{
			Default:    Rule{Drop: 0.5, Dup: 1, Reorder: 0, DelayNs: MaxDelayNs, JitterNs: 1},
			Links:      []LinkRule{{Link: 3, Rule: Rule{Drop: 1}}},
			Partitions: []Partition{{Links: []int{0, 1}, From: 0, To: MaxWindow}},
			Stalls:     []Stall{{Node: 2, From: 5, To: 6, PauseNs: 10}, {Node: 0, From: 0, To: 1, Crash: true}},
		}, true},
		{"drop above one", &Plan{Default: Rule{Drop: 1.001}}, false},
		{"negative dup", &Plan{Default: Rule{Dup: -0.1}}, false},
		{"delay above cap", &Plan{Default: Rule{DelayNs: MaxDelayNs + 1}}, false},
		{"negative jitter", &Plan{Default: Rule{JitterNs: -1}}, false},
		{"negative link id", &Plan{Links: []LinkRule{{Link: -1}}}, false},
		{"bad link rule", &Plan{Links: []LinkRule{{Link: 0, Rule: Rule{Reorder: 2}}}}, false},
		{"partition no links", &Plan{Partitions: []Partition{{From: 0, To: 1}}}, false},
		{"partition negative link", &Plan{Partitions: []Partition{{Links: []int{-2}, From: 0, To: 1}}}, false},
		{"inverted window", &Plan{Partitions: []Partition{{Links: []int{0}, From: 5, To: 4}}}, false},
		{"negative window start", &Plan{Partitions: []Partition{{Links: []int{0}, From: -1, To: 4}}}, false},
		{"window too long", &Plan{Partitions: []Partition{{Links: []int{0}, From: 0, To: MaxWindow + 1}}}, false},
		{"stall negative node", &Plan{Stalls: []Stall{{Node: -1, From: 0, To: 1}}}, false},
		{"stall pause above cap", &Plan{Stalls: []Stall{{Node: 0, From: 0, To: 1, PauseNs: MaxDelayNs + 1}}}, false},
		{"stall inverted window", &Plan{Stalls: []Stall{{Node: 0, From: 3, To: 2}}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("invalid plan accepted")
			}
		})
	}
	var nilPlan *Plan
	if nilPlan.Validate() == nil {
		t.Error("nil plan accepted")
	}
}

func TestRuleFor(t *testing.T) {
	p := &Plan{
		Default: Rule{Drop: 0.1},
		Links:   []LinkRule{{Link: 2, Rule: Rule{Dup: 0.5}}},
	}
	if got := p.RuleFor(2); got.Dup != 0.5 || got.Drop != 0 {
		t.Errorf("override link: got %+v", got)
	}
	if got := p.RuleFor(7); got.Drop != 0.1 {
		t.Errorf("default link: got %+v", got)
	}
}

func TestActive(t *testing.T) {
	if (&Plan{Seed: 99}).Active() {
		t.Error("empty plan active")
	}
	if (&Plan{Links: []LinkRule{{Link: 0}}}).Active() {
		t.Error("zero-rule override counted as active")
	}
	for _, p := range []*Plan{
		{Default: Rule{Drop: 0.01}},
		{Default: Rule{JitterNs: 1}},
		{Links: []LinkRule{{Link: 4, Rule: Rule{Reorder: 0.2}}}},
		{Partitions: []Partition{{Links: []int{0}, From: 0, To: 1}}},
		{Stalls: []Stall{{Node: 0, From: 0, To: 1}}},
	} {
		if !p.Active() {
			t.Errorf("plan %v not active", p)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := &Plan{
		Net: "bitonic", Width: 4, Procs: 2, Ops: 100, Seed: 7,
		Default:    Rule{Drop: 0.3},
		Links:      []LinkRule{{Link: 1, Rule: Rule{Dup: 0.2}}},
		Partitions: []Partition{{Links: []int{0, 2}, From: 1, To: 9}},
		Stalls:     []Stall{{Node: 3, From: 0, To: 4, Crash: true}},
	}
	c := p.Clone()
	c.Links[0].Rule.Dup = 0.9
	c.Partitions[0].Links[0] = 5
	c.Stalls[0].Crash = false
	c.Default.Drop = 0
	if p.Links[0].Rule.Dup != 0.2 || p.Partitions[0].Links[0] != 0 ||
		!p.Stalls[0].Crash || p.Default.Drop != 0.3 {
		t.Error("Clone shares state with the original")
	}
}

func TestString(t *testing.T) {
	s := (&Plan{Seed: 3, Default: Rule{Drop: 0.25}}).String()
	if !strings.Contains(s, "seed 3") || !strings.Contains(s, "0.25") {
		t.Errorf("String() = %q", s)
	}
}
