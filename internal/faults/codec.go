package faults

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// planHeader is the first JSONL line of a serialized plan.
type planHeader struct {
	Net        string `json:"net,omitempty"`
	Width      int    `json:"width,omitempty"`
	Procs      int    `json:"procs,omitempty"`
	Ops        int    `json:"ops,omitempty"`
	Seed       int64  `json:"seed"`
	Default    Rule   `json:"default"`
	Links      int    `json:"links"`
	Partitions int    `json:"partitions"`
	Stalls     int    `json:"stalls"`
}

// WritePlan serializes the plan as JSON Lines: a header with the workload
// hints, seed, default rule, and section counts, then one line per link
// override, partition, and stall, in that order. The plan is normalized
// (sections sorted) first, so equal plans serialize to identical bytes —
// the property behind the fixed-fault-seed reproducibility guarantee.
func WritePlan(w io.Writer, p *Plan) error {
	if p == nil {
		return fmt.Errorf("faults: nil plan")
	}
	p.normalize()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(planHeader{
		Net: p.Net, Width: p.Width, Procs: p.Procs, Ops: p.Ops,
		Seed: p.Seed, Default: p.Default,
		Links: len(p.Links), Partitions: len(p.Partitions), Stalls: len(p.Stalls),
	}); err != nil {
		return err
	}
	for i := range p.Links {
		if err := enc.Encode(&p.Links[i]); err != nil {
			return err
		}
	}
	for i := range p.Partitions {
		if err := enc.Encode(&p.Partitions[i]); err != nil {
			return err
		}
	}
	for i := range p.Stalls {
		if err := enc.Encode(&p.Stalls[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPlan parses a plan serialized by WritePlan and validates it.
func ReadPlan(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	var hdr planHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("faults: plan header: %w", err)
	}
	if hdr.Links < 0 || hdr.Partitions < 0 || hdr.Stalls < 0 {
		return nil, fmt.Errorf("faults: negative section count in header")
	}
	p := &Plan{
		Net: hdr.Net, Width: hdr.Width, Procs: hdr.Procs, Ops: hdr.Ops,
		Seed: hdr.Seed, Default: hdr.Default,
	}
	for k := 0; k < hdr.Links; k++ {
		var lr LinkRule
		if err := dec.Decode(&lr); err != nil {
			return nil, fmt.Errorf("faults: link rule %d: %w", k, err)
		}
		p.Links = append(p.Links, lr)
	}
	for k := 0; k < hdr.Partitions; k++ {
		var part Partition
		if err := dec.Decode(&part); err != nil {
			return nil, fmt.Errorf("faults: partition %d: %w", k, err)
		}
		p.Partitions = append(p.Partitions, part)
	}
	for k := 0; k < hdr.Stalls; k++ {
		var s Stall
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("faults: stall %d: %w", k, err)
		}
		p.Stalls = append(p.Stalls, s)
	}
	// A hand-edited file whose header counts disagree with its lines would
	// otherwise be silently truncated.
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return nil, fmt.Errorf("faults: trailing data after declared sections (header count mismatch?)")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
