package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.String() != "n=0" {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]int64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-9 {
		t.Errorf("mean = %f", s.Mean)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %f", s.Stddev)
	}
	if s.P50 != 3 {
		t.Errorf("p50 = %d", s.P50)
	}
	if s.P99 != 5 {
		t.Errorf("p99 = %d", s.P99)
	}
	if !strings.Contains(s.String(), "mean=3.0") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []int64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []int64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want int64
	}{{0, 10}, {25, 10}, {50, 20}, {75, 30}, {100, 40}, {-5, 10}, {200, 40}}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile not zero")
	}
}

func TestSummaryInvariantsQuick(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]int64, len(raw))
		for i, v := range raw {
			samples[i] = int64(v)
		}
		s := Summarize(samples)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 &&
			s.P99 <= s.Max && float64(s.Min) <= s.Mean && s.Mean <= float64(s.Max) &&
			s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 4)
	for _, v := range []int64{0, 5, 9, 10, 25, 39, 1000, -3} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	// buckets: [0,10): 0,5,9,-3 -> 4; [10,20): 10 -> 1; [20,30): 25 -> 1;
	// [30,..]: 39, 1000 -> 2.
	want := []int64{4, 1, 1, 2}
	for i, b := range h.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, b, want[i])
		}
	}
	if !strings.Contains(h.String(), "%") {
		t.Errorf("String = %q", h.String())
	}
	if NewHistogram(0, 0).Width != 1 {
		t.Error("degenerate histogram not clamped")
	}
	if (&Histogram{Width: 1, Buckets: make([]int64, 1)}).String() != "(empty)" {
		t.Error("empty histogram rendering")
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name   string
		sorted []int64
		p      float64
		want   int64
	}{
		{"empty", nil, 50, 0},
		{"empty-nan", nil, math.NaN(), 0},
		{"single-p0", []int64{7}, 0, 7},
		{"single-p50", []int64{7}, 50, 7},
		{"single-p100", []int64{7}, 100, 7},
		{"single-nan", []int64{7}, math.NaN(), 7},
		{"nan-clamps-low", []int64{1, 2, 3}, math.NaN(), 1},
		{"negative-clamps", []int64{1, 2, 3}, -10, 1},
		{"over-clamps", []int64{1, 2, 3}, 250, 3},
	} {
		if got := Percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: Percentile(%v, %v) = %d, want %d", tc.name, tc.sorted, tc.p, got, tc.want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(10, 5)
	b := NewHistogram(10, 5)
	a.Add(5)
	a.Add(15)
	b.Add(15)
	b.Add(49)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 4 || a.Buckets[1] != 2 || a.Buckets[4] != 1 {
		t.Fatalf("merged buckets %v (total %d)", a.Buckets, a.Total())
	}
	// Merging nil or an empty histogram is a no-op.
	if err := a.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(NewHistogram(99, 2)); err != nil {
		t.Fatal("empty mismatched histogram should be a no-op merge")
	}
	if a.Total() != 4 {
		t.Fatalf("no-op merges changed total to %d", a.Total())
	}
	// A non-empty layout mismatch is an error.
	c := NewHistogram(20, 5)
	c.Add(1)
	if err := a.Merge(c); err == nil {
		t.Fatal("Merge accepted mismatched widths")
	}
	d := NewHistogram(10, 9)
	d.Add(1)
	if err := a.Merge(d); err == nil {
		t.Fatal("Merge accepted mismatched bucket counts")
	}
}

// TestLogBucketBoundaries locks down the log-linear bucket layout used by
// the online latency histograms in internal/obs.
func TestLogBucketBoundaries(t *testing.T) {
	const subBits = 5
	sub := int64(1) << subBits
	for _, tc := range []struct {
		v    int64
		want int
	}{
		{-3, 0},
		{0, 0},
		{1, 1},
		{sub - 1, int(sub - 1)},     // last exact bucket
		{sub, int(sub)},             // first log bucket
		{2*sub - 1, int(2*sub - 1)}, // still unit-wide at shift 0
		{2 * sub, int(2 * sub)},     // shift 1 begins
		{2*sub + 1, int(2 * sub)},   // width-2 bucket swallows the odd value
		{4 * sub, int(3 * sub)},     // shift 2 begins
		{math.MaxInt64, NumLogBuckets(subBits) - 1},
	} {
		if got := LogBucket(tc.v, subBits); got != tc.want {
			t.Errorf("LogBucket(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// Boundary inversion: every bucket's lower bound maps back to itself,
	// and lower bounds are strictly increasing.
	prev := int64(-1)
	for i := 0; i < NumLogBuckets(subBits); i++ {
		lo := LogBucketLower(i, subBits)
		if lo <= prev {
			t.Fatalf("bucket %d lower bound %d not increasing (prev %d)", i, lo, prev)
		}
		prev = lo
		if got := LogBucket(lo, subBits); got != i {
			t.Fatalf("LogBucket(LogBucketLower(%d)) = %d", i, got)
		}
	}
}

func TestLogBucketMonotone(t *testing.T) {
	const subBits = 5
	prev := 0
	for v := int64(0); v < 1<<14; v++ {
		b := LogBucket(v, subBits)
		if b < prev {
			t.Fatalf("LogBucket not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
	}
}
