package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.String() != "n=0" {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]int64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-9 {
		t.Errorf("mean = %f", s.Mean)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %f", s.Stddev)
	}
	if s.P50 != 3 {
		t.Errorf("p50 = %d", s.P50)
	}
	if s.P99 != 5 {
		t.Errorf("p99 = %d", s.P99)
	}
	if !strings.Contains(s.String(), "mean=3.0") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []int64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []int64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want int64
	}{{0, 10}, {25, 10}, {50, 20}, {75, 30}, {100, 40}, {-5, 10}, {200, 40}}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile not zero")
	}
}

func TestSummaryInvariantsQuick(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]int64, len(raw))
		for i, v := range raw {
			samples[i] = int64(v)
		}
		s := Summarize(samples)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 &&
			s.P99 <= s.Max && float64(s.Min) <= s.Mean && s.Mean <= float64(s.Max) &&
			s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 4)
	for _, v := range []int64{0, 5, 9, 10, 25, 39, 1000, -3} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	// buckets: [0,10): 0,5,9,-3 -> 4; [10,20): 10 -> 1; [20,30): 25 -> 1;
	// [30,..]: 39, 1000 -> 2.
	want := []int64{4, 1, 1, 2}
	for i, b := range h.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, b, want[i])
		}
	}
	if !strings.Contains(h.String(), "%") {
		t.Errorf("String = %q", h.String())
	}
	if NewHistogram(0, 0).Width != 1 {
		t.Error("degenerate histogram not clamped")
	}
	if (&Histogram{Width: 1, Buckets: make([]int64, 1)}).String() != "(empty)" {
		t.Error("empty histogram rendering")
	}
}
