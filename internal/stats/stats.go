// Package stats provides the small set of descriptive statistics the
// benchmark harness reports: mean, standard deviation, min/max,
// percentiles, and fixed-width histograms over int64 samples (cycles or
// nanoseconds).
//
//countnet:deterministic
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Summary describes a sample set.
type Summary struct {
	N      int
	Min    int64
	Max    int64
	Mean   float64
	Stddev float64
	P50    int64
	P90    int64
	P99    int64
}

// Summarize computes a Summary. An empty input yields a zero Summary.
func Summarize(samples []int64) Summary {
	var s Summary
	s.N = len(samples)
	if s.N == 0 {
		return s
	}
	sorted := make([]int64, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	var sum, sumSq float64
	for _, v := range sorted {
		f := float64(v)
		sum += f
		sumSq += f * f
	}
	n := float64(s.N)
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance > 0 {
		s.Stddev = math.Sqrt(variance)
	}
	s.P50 = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	s.P99 = Percentile(sorted, 99)
	return s
}

// Percentile returns the p-th percentile (nearest-rank) of an ascending
// sorted sample. p is clamped to [0, 100]; a NaN p is treated as 0 (every
// comparison against NaN is false, so without the explicit check it would
// fall through to an undefined float-to-int conversion).
func Percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	if math.IsNaN(p) || p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// String renders the summary in one line.
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%d mean=%.1f p50=%d p90=%d p99=%d max=%d sd=%.1f",
		s.N, s.Min, s.Mean, s.P50, s.P90, s.P99, s.Max, s.Stddev)
}

// Histogram tallies samples into width-sized buckets starting at 0;
// samples beyond the last bucket land in it.
type Histogram struct {
	Width   int64
	Buckets []int64
}

// NewHistogram returns a histogram with n buckets of the given width.
func NewHistogram(width int64, n int) *Histogram {
	if width < 1 {
		width = 1
	}
	if n < 1 {
		n = 1
	}
	return &Histogram{Width: width, Buckets: make([]int64, n)}
}

// Add tallies one sample; negative samples land in bucket 0.
func (h *Histogram) Add(v int64) {
	i := int(v / h.Width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
}

// Merge adds other's tallies into h. The histograms must have identical
// bucket layouts (same width, same bucket count); merging a nil or empty
// histogram is a no-op.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil || other.Total() == 0 {
		return nil
	}
	if other.Width != h.Width || len(other.Buckets) != len(h.Buckets) {
		return fmt.Errorf("stats: merge of mismatched histograms (width %d/%d, buckets %d/%d)",
			h.Width, other.Width, len(h.Buckets), len(other.Buckets))
	}
	for i, b := range other.Buckets {
		h.Buckets[i] += b
	}
	return nil
}

// Total returns the number of samples tallied.
func (h *Histogram) Total() int64 {
	var t int64
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// String renders an ASCII bar chart, one row per non-empty bucket.
func (h *Histogram) String() string {
	total := h.Total()
	if total == 0 {
		return "(empty)"
	}
	var max int64
	for _, b := range h.Buckets {
		if b > max {
			max = b
		}
	}
	var sb strings.Builder
	for i, b := range h.Buckets {
		if b == 0 {
			continue
		}
		bar := int(40 * b / max)
		fmt.Fprintf(&sb, "%10d..%-10d %6.2f%% %s\n",
			int64(i)*h.Width, int64(i+1)*h.Width,
			100*float64(b)/float64(total), strings.Repeat("#", bar))
	}
	return sb.String()
}

// Log-linear (HDR-style) bucket layout shared with the online latency
// histograms in internal/obs: values below 2^subBits get exact unit
// buckets; above that, each power-of-two range is split into 2^subBits
// equal sub-buckets, bounding the relative quantization error by
// 2^-subBits while covering the whole non-negative int64 range in
// (64-subBits)*2^subBits buckets.

// NumLogBuckets returns the bucket count of the log-linear layout.
func NumLogBuckets(subBits uint) int {
	return (64 - int(subBits)) << subBits
}

// LogBucket returns the bucket index of v in the log-linear layout.
// Negative values land in bucket 0.
func LogBucket(v int64, subBits uint) int {
	if v <= 0 {
		return 0
	}
	sub := int64(1) << subBits
	if v < sub {
		return int(v)
	}
	msb := bits.Len64(uint64(v)) - 1
	shift := uint(msb) - subBits
	return int(sub + int64(shift)*sub + (v>>shift - sub))
}

// LogBucketLower returns the inclusive lower bound of bucket i — the
// inverse of LogBucket on bucket boundaries.
func LogBucketLower(i int, subBits uint) int64 {
	sub := int64(1) << subBits
	if int64(i) < sub {
		return int64(i)
	}
	off := int64(i) - sub
	shift := uint(off / sub)
	return (sub + off%sub) << shift
}
