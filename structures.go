package countnet

import (
	"fmt"
	"sync/atomic"
	"time"

	"countnet/internal/shm"
	"countnet/internal/shm/queue"
	"countnet/internal/shm/stack"
)

// Queue is a bounded MPMC FIFO buffer whose enqueue and dequeue tickets are
// drawn from two counting networks — the "FIFO buffers" application the
// paper's introduction lists for linearizable counting. It is quiescently
// consistent: every item is delivered exactly once, but under timing
// anomalies two items enqueued back-to-back by different producers can be
// delivered out of real-time order, exactly the phenomenon the c2/c1
// measure bounds.
type Queue[T any] struct {
	q *queue.Queue[T]
}

// NewQueue builds a queue of the given capacity whose tickets come from
// counting networks with topology t (one instance each for enqueue and
// dequeue).
func NewQueue[T any](t Topology, capacity int, opts ...CounterOption) (*Queue[T], error) {
	if !t.Valid() {
		return nil, errZeroTopology
	}
	shmOpts, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	q, err := queue.New[T](t.g, capacity, shmOpts)
	if err != nil {
		return nil, err
	}
	return &Queue[T]{q: q}, nil
}

// Enqueue appends v, blocking while the queue is full.
func (q *Queue[T]) Enqueue(v T) { q.q.Enqueue(v) }

// Dequeue removes and returns the oldest item, blocking while the queue is
// empty.
func (q *Queue[T]) Dequeue() T { return q.q.Dequeue() }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return q.q.Cap() }

// Stack is a lock-free LIFO with elimination backoff, after Shavit and
// Touitou's elimination trees (the collision idea behind the paper's
// diffracting prisms): contended push/pop pairs cancel in an elimination
// array without touching the stack top.
type Stack[T any] struct {
	s *stack.Stack[T]
}

// NewStack returns a stack with an elimination array of `width` slots and
// the given collision window.
func NewStack[T any](width int, window time.Duration) *Stack[T] {
	return &Stack[T]{s: stack.New[T](width, window)}
}

// Push adds v to the stack.
func (s *Stack[T]) Push(v T) { s.s.Push(v) }

// Pop removes and returns the most recently pushed value; ok is false when
// the stack is empty.
func (s *Stack[T]) Pop() (v T, ok bool) { return s.s.Pop() }

// Eliminated returns how many operations completed by pairwise elimination
// rather than through the stack top.
func (s *Stack[T]) Eliminated() int64 { return s.s.Eliminated() }

// Len walks the stack; it is only meaningful in quiescent states.
func (s *Stack[T]) Len() int { return s.s.Len() }

// LinearizableCounter is a counting network wrapped in a waiting filter, in
// the spirit of the Herlihy-Shavit-Waarts linearizable counting
// constructions the paper contrasts against: a value is returned only after
// every smaller value has been returned, so the counter is linearizable in
// every execution — at the serialization cost the paper argues is usually
// not worth paying ("an unnecessary burden on applications that are willing
// to trade-off occasional non-linearizability for speed and parallelism").
type LinearizableCounter struct {
	f    *shm.Filter
	next atomic.Int64
	in   int
}

// NewLinearizableCounter compiles t and wraps it in the waiting filter.
func NewLinearizableCounter(t Topology, opts ...CounterOption) (*LinearizableCounter, error) {
	if !t.Valid() {
		return nil, errZeroTopology
	}
	shmOpts, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	net, err := shm.Compile(t.g, shmOpts)
	if err != nil {
		return nil, err
	}
	return &LinearizableCounter{f: shm.NewFilter(net), in: t.InWidth()}, nil
}

// Next draws the next value; values are returned in exactly increasing
// real-time order across all goroutines.
func (c *LinearizableCounter) Next() int64 {
	in := int(c.next.Add(1)-1) % c.in
	if in < 0 {
		in += c.in
	}
	return c.f.Traverse(in)
}

// NextAt draws the next value entering at a specific network input.
func (c *LinearizableCounter) NextAt(input int) (int64, error) {
	if input < 0 || input >= c.in {
		return 0, fmt.Errorf("countnet: input %d out of range [0,%d)", input, c.in)
	}
	return c.f.Traverse(input), nil
}

// buildOptions resolves CounterOptions into the runtime's shm.Options.
func buildOptions(opts []CounterOption) (shm.Options, error) {
	cfg := counterConfig{impl: MCS}
	for _, o := range opts {
		o(&cfg)
	}
	var kind shm.Kind
	switch cfg.impl {
	case MCS:
		kind = shm.KindMCS
	case Mutex:
		kind = shm.KindMutex
	case Atomic:
		kind = shm.KindAtomic
	default:
		return shm.Options{}, fmt.Errorf("countnet: unknown balancer implementation %d", int(cfg.impl))
	}
	return shm.Options{
		Kind:        kind,
		Diffract:    cfg.diffract,
		PrismWidth:  cfg.prismW,
		PrismWindow: cfg.window,
	}, nil
}
