GO ?= go

# Pinned third-party linter versions. `make lint` runs them via
# `go run pkg@version`, so CI and local runs agree by construction; bump
# the pin here and the workflow follows. When the module proxy is
# unreachable (offline dev containers) the third-party passes are
# skipped with a notice — set LINT_STRICT=1 (CI does) to make
# unavailability a hard failure instead, so a download hiccup cannot
# masquerade as a clean run.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4
LINT_STRICT ?=

.PHONY: all build vet countnetvet escvet-selftest lint test race chaos bench clean

all: lint build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# countnetvet runs the domain analyzers only (stock vet is the `vet`
# target); `go run ./cmd/countnetvet` with no -novet runs both.
# LINT_STRICT reaches escvet: without it, a toolchain that cannot
# replay `go build -gcflags=-m` skips the allocation gate with a notice
# instead of failing.
countnetvet:
	LINT_STRICT=$(LINT_STRICT) $(GO) run ./cmd/countnetvet -novet ./...

# escvet-selftest proves the allocation gate has teeth before a clean
# run is trusted: the seeded escape regression in the analyzer's own
# testdata must produce an escvet finding. When the toolchain cannot
# produce -m output the gate is off anyway (countnetvet said so above)
# and the self-test reports the skip; LINT_STRICT=1 already made that
# skip fatal in the countnetvet target.
escvet-selftest:
	@out=$$(LINT_STRICT=$(LINT_STRICT) $(GO) run ./cmd/countnetvet -novet ./internal/analysis/testdata/src/escvet 2>&1); \
	if echo "$$out" | grep -q '\[escvet\]'; then \
		echo "escvet self-test: seeded escape regression caught"; \
	elif echo "$$out" | grep -q 'escvet skipped'; then \
		echo "escvet self-test: skipped (toolchain cannot replay -gcflags=-m)"; \
	else \
		echo "escvet self-test FAILED: seeded escape regression not reported:"; \
		echo "$$out"; exit 1; \
	fi

# lint is the full static-analysis gate: gofmt drift, stock vet, the
# countnetvet domain analyzers (plus the escvet teeth check), then the
# pinned third-party tools.
lint: vet countnetvet escvet-selftest
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	elif [ -n "$(LINT_STRICT)" ]; then \
		echo "staticcheck@$(STATICCHECK_VERSION) unavailable and LINT_STRICT set"; exit 1; \
	else \
		echo "skipping staticcheck (module proxy unreachable; set LINT_STRICT=1 to fail instead)"; \
	fi
	@if $(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...; \
	elif [ -n "$(LINT_STRICT)" ]; then \
		echo "govulncheck@$(GOVULNCHECK_VERSION) unavailable and LINT_STRICT set"; exit 1; \
	else \
		echo "skipping govulncheck (module proxy unreachable; set LINT_STRICT=1 to fail instead)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/shm/... ./internal/msgnet/... ./internal/conformance/...

# chaos is the CI chaos job locally: a race-checked fault-plan soak on
# the msgnet engine with a fixed seed (byte-for-byte reproducible); a
# breach leaves a shrunken plan in chaos-plan.jsonl for
# `adversary -faults chaos-plan.jsonl`.
chaos:
	$(GO) run -race ./cmd/conformance -mode chaos -rounds 10 -fault-seed 1 -shrink -out chaos-plan.jsonl

# bench runs the root (simulator-facing), internal/shm, adaptive-engine,
# and internal/obs benchmarks and writes the machine-readable
# BENCH_sim.json / BENCH_shm.json / BENCH_adaptive.json / BENCH_obs.json
# files whose format is documented in EXPERIMENTS.md (E20). The adaptive
# run is the E25 crossover sweep (static engines vs the adaptive
# front-end, 1..256 workers) plus the E27 serialization-cliff sweep
# (bare network vs the ModeLinear-pinned waiting regime,
# BenchmarkAdaptiveLinear); the obs run doubles as the
# measurement-cost record: span stamping and flight recording are
# 0 allocs/op.
bench:
	$(GO) test -run '^$$' -bench . -benchmem . | $(GO) run ./cmd/benchfmt -o BENCH_sim.json
	$(GO) test -run '^$$' -bench . -benchmem ./internal/shm | $(GO) run ./cmd/benchfmt -o BENCH_shm.json
	$(GO) test -run '^$$' -bench . -benchmem ./internal/shm/adaptive | $(GO) run ./cmd/benchfmt -o BENCH_adaptive.json
	$(GO) test -run '^$$' -bench . -benchmem ./internal/obs | $(GO) run ./cmd/benchfmt -o BENCH_obs.json

clean:
	rm -f BENCH_sim.json BENCH_shm.json BENCH_adaptive.json BENCH_obs.json chaos-plan.jsonl
