GO ?= go

.PHONY: all build vet test race bench clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/shm/... ./internal/msgnet/... ./internal/conformance/...

# bench runs the root (simulator-facing) and internal/shm benchmarks and
# writes the machine-readable BENCH_sim.json / BENCH_shm.json files whose
# format is documented in EXPERIMENTS.md (E20).
bench:
	$(GO) test -run '^$$' -bench . -benchmem . | $(GO) run ./cmd/benchfmt -o BENCH_sim.json
	$(GO) test -run '^$$' -bench . -benchmem ./internal/shm | $(GO) run ./cmd/benchfmt -o BENCH_shm.json

clean:
	rm -f BENCH_sim.json BENCH_shm.json
